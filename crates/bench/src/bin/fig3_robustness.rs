//! Figure 3a–c: detection robustness.
//!
//! (a, b) F1 of a panel of detectors while the injected *error rate*
//! sweeps upward on the Adult and Power datasets (outliers + missing
//! values at outlier degree 4, as §6.2.1 specifies);
//! (c) F1 while the *outlier degree* sweeps on Smart Factory at a fixed
//! 30% error rate.

// Benchmark bins emit their report tables on stdout by design.
#![allow(clippy::print_stdout)]

use rein_bench::{conclude, dataset, f, header, phase};
use rein_core::{DetectorHarness, VersionTable};
use rein_data::diff::diff_mask;
use rein_datasets::{DatasetId, GeneratedDataset};
use rein_detect::DetectorKind;
use rein_errors::compose::{compose, ErrorSpec};

/// Re-corrupts a dataset's clean table with outliers + missing values at
/// the given rate and degree (the robustness experiment's injection).
fn reinject(ds: &GeneratedDataset, rate: f64, degree: f64, seed: u64) -> GeneratedDataset {
    let numeric = ds.clean.schema().numeric_indices();
    let specs = [
        ErrorSpec::Outliers { cols: numeric.clone(), rate: rate / 2.0, degree },
        ErrorSpec::ExplicitMissing { cols: numeric, rate: rate / 2.0 },
    ];
    let dirty = compose(&ds.clean, &specs, seed);
    GeneratedDataset {
        info: ds.info.clone(),
        clean: ds.clean.clone(),
        mask: diff_mask(&ds.clean, &dirty.dirty),
        dirty: dirty.dirty,
        duplicate_pairs: vec![],
        fds: ds.fds.clone(),
        key_columns: ds.key_columns.clone(),
    }
}

const PANEL: [DetectorKind; 7] = [
    DetectorKind::Raha,
    DetectorKind::Ed2,
    DetectorKind::MinK,
    DetectorKind::MaxEntropy,
    DetectorKind::DBoost,
    DetectorKind::Sd,
    DetectorKind::MetadataDriven,
];

fn sweep_error_rate(id: DatasetId, seed: u64) {
    let setup = phase("setup");
    let base = dataset(id, seed);
    header(&format!("Figure 3 — F1 vs error rate ({})", base.info.name));
    let rates = [0.01, 0.02, 0.05, 0.1, 0.2, 0.3, 0.4, 0.5];
    print!("{:<18}", "detector");
    for r in rates {
        print!("{:>8}", format!("{r}"));
    }
    println!();
    drop(setup);
    let sweep = phase(&format!("sweep:error-rate-{}", base.info.name));
    let mut results: Vec<(DetectorKind, Vec<f64>)> =
        PANEL.iter().map(|&k| (k, Vec::new())).collect();
    for (ri, &rate) in rates.iter().enumerate() {
        let ds = reinject(&base, rate, 4.0, seed * 100 + ri as u64);
        let harness = DetectorHarness::new(&ds, 100, seed);
        for (kind, series) in results.iter_mut() {
            let run = harness.run(&ds, *kind);
            series.push(run.quality.f1);
        }
    }
    drop(sweep);
    let _report = phase("report");
    for (kind, series) in &results {
        print!("{:<18}", kind.name());
        for v in series {
            print!("{:>8}", f(*v));
        }
        println!();
    }
    // Suppress the unused import lint for VersionTable on some cfgs.
    let _ = VersionTable::identity;
}

fn sweep_outlier_degree(seed: u64) {
    let setup = phase("setup");
    let base = dataset(DatasetId::SmartFactory, seed);
    header("Figure 3c — F1 vs outlier degree (smart_factory, rate 0.3)");
    let degrees = [0.5, 1.0, 2.0, 3.0, 4.0, 6.0, 8.0];
    print!("{:<18}", "detector");
    for d in degrees {
        print!("{:>8}", format!("{d}"));
    }
    println!();
    drop(setup);
    let sweep = phase("sweep:outlier-degree");
    let panel: Vec<DetectorKind> = PANEL
        .iter()
        .copied()
        .chain([DetectorKind::Iqr, DetectorKind::IsolationForest, DetectorKind::MvDetector])
        .collect();
    let mut results: Vec<(DetectorKind, Vec<f64>)> =
        panel.iter().map(|&k| (k, Vec::new())).collect();
    for (di, &degree) in degrees.iter().enumerate() {
        let numeric = base.clean.schema().numeric_indices();
        let specs = [ErrorSpec::Outliers { cols: numeric, rate: 0.3, degree }];
        let dirty = compose(&base.clean, &specs, seed * 31 + di as u64);
        let ds = GeneratedDataset {
            info: base.info.clone(),
            clean: base.clean.clone(),
            mask: diff_mask(&base.clean, &dirty.dirty),
            dirty: dirty.dirty,
            duplicate_pairs: vec![],
            fds: base.fds.clone(),
            key_columns: base.key_columns.clone(),
        };
        let harness = DetectorHarness::new(&ds, 100, seed);
        for (kind, series) in results.iter_mut() {
            series.push(harness.run(&ds, *kind).quality.f1);
        }
    }
    drop(sweep);
    let _report = phase("report");
    for (kind, series) in &results {
        print!("{:<18}", kind.name());
        for v in series {
            print!("{:>8}", f(*v));
        }
        println!();
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--outlier-degree") {
        sweep_outlier_degree(7);
        conclude("fig3_robustness", 7, 100);
    }
    sweep_error_rate(DatasetId::Adult, 3);
    sweep_error_rate(DatasetId::Power, 5);
    sweep_outlier_degree(7);
    conclude("fig3_robustness", 7, 100);
}
