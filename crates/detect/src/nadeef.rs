//! NADEEF (Dallachiesa et al.): holistic rule-violation detection — FD
//! rules, syntactic pattern rules inferred per column, and user-defined
//! unary constraints, all evaluated under one interface.

use rein_constraints::{fd, pattern};
use rein_data::CellMask;

use crate::context::{DetectContext, Detector};

/// NADEEF detector.
#[derive(Debug, Clone)]
pub struct Nadeef {
    /// Minimum support for a column's dominant pattern before deviations
    /// are treated as pattern-rule violations.
    pub pattern_support: f64,
}

impl Default for Nadeef {
    fn default() -> Self {
        Self { pattern_support: 0.8 }
    }
}

impl Detector for Nadeef {
    fn name(&self) -> &'static str {
        "nadeef"
    }

    fn detect(&self, ctx: &DetectContext<'_>) -> CellMask {
        let _span = rein_telemetry::span("detect:nadeef");
        let t = ctx.dirty;
        let mut mask = CellMask::new(t.n_rows(), t.n_cols());

        // FD rules.
        mask.union_with(&fd::all_fd_violations(t, ctx.fds));

        // Unary DCs provided as user-defined rules.
        for dc in ctx.dcs.iter().filter(|dc| !dc.binary) {
            mask.union_with(&dc.violations(t));
        }

        // Pattern rules: every column with a dominant syntactic pattern.
        for c in 0..t.n_cols() {
            for r in pattern::pattern_outliers(t, c, self.pattern_support) {
                mask.set(r, c, true);
            }
        }
        mask
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rein_constraints::dc::{CmpOp, DenialConstraint, Operand, Predicate};
    use rein_constraints::fd::FunctionalDependency;
    use rein_data::{ColumnMeta, ColumnType, Schema, Table, Value};

    fn table() -> Table {
        let schema = Schema::new(vec![
            ColumnMeta::new("zip", ColumnType::Str),
            ColumnMeta::new("city", ColumnType::Str),
            ColumnMeta::new("age", ColumnType::Int),
        ]);
        let mut rows: Vec<Vec<Value>> = (0..40)
            .map(|i| {
                vec![
                    Value::str(["10115", "80331"][i % 2]),
                    Value::str(["Berlin", "Munich"][i % 2]),
                    Value::Int(20 + (i % 50) as i64),
                ]
            })
            .collect();
        rows[5][1] = Value::str("Potsdam"); // FD violation (zip 80331)
        rows[9][0] = Value::str("1O115"); // pattern violation (letter O)
        rows[12][2] = Value::Int(-3); // DC violation (negative age)
        Table::from_rows(schema, rows)
    }

    #[test]
    fn detects_all_three_rule_kinds() {
        let t = table();
        let fds = [FunctionalDependency::new([0], 1)];
        let dcs = [DenialConstraint::unary(
            "age_nonneg",
            vec![Predicate::new(Operand::First(2), CmpOp::Lt, Operand::Const(Value::Int(0)))],
        )];
        let ctx = DetectContext { fds: &fds, dcs: &dcs, ..DetectContext::bare(&t) };
        let m = Nadeef::default().detect(&ctx);
        assert!(m.get(5, 1), "FD violation");
        assert!(m.get(9, 0), "pattern violation");
        assert!(m.get(12, 2), "DC violation");
    }

    #[test]
    fn without_rules_only_patterns_fire() {
        let t = table();
        let m = Nadeef::default().detect(&DetectContext::bare(&t));
        assert!(m.get(9, 0));
        assert!(!m.get(5, 1));
    }

    #[test]
    fn clean_table_yields_nothing() {
        let schema = Schema::new(vec![ColumnMeta::new("a", ColumnType::Str)]);
        let t = Table::from_rows(
            schema,
            (0..20).map(|i| vec![Value::str(format!("{:05}", 10000 + i))]).collect(),
        );
        assert!(Nadeef::default().detect(&DetectContext::bare(&t)).is_empty());
    }
}
