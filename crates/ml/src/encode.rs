//! Table → feature-matrix encoding.
//!
//! The paper trains scikit-learn models, which need complete numeric
//! matrices. This module provides the equivalent preparation: numeric
//! columns are standardised (nulls and non-numeric cells fall back to the
//! training mean — mean imputation at the model boundary), categorical
//! columns are one-hot encoded over their top categories (unknowns map to
//! the all-zero vector). Fitting happens on training data only; the same
//! transform is then applied to any compatible table.

use std::collections::BTreeMap;

use rein_data::{Table, Value};

use crate::linalg::Matrix;

/// Maximum number of one-hot categories per column; rarer values share the
/// all-zero "other" encoding. Keeps width bounded on high-cardinality text.
pub const MAX_ONE_HOT: usize = 20;

#[derive(Debug, Clone)]
enum ColumnPlan {
    Numeric { mean: f64, std: f64 },
    OneHot { categories: Vec<String> },
}

/// A fitted feature encoder.
#[derive(Debug, Clone)]
pub struct Encoder {
    feature_cols: Vec<usize>,
    plans: Vec<ColumnPlan>,
    width: usize,
}

impl Encoder {
    /// Fits an encoder on `table`, using the given feature columns.
    ///
    /// A column is treated as numeric when the majority of its non-null
    /// values convert to `f64` (so typo-shifted numeric columns still
    /// encode numerically, with the typo cells mean-imputed).
    pub fn fit(table: &Table, feature_cols: &[usize]) -> Self {
        let mut plans = Vec::with_capacity(feature_cols.len());
        let mut width = 0;
        for &c in feature_cols {
            let non_null: Vec<&Value> = table.column(c).iter().filter(|v| !v.is_null()).collect();
            let numeric = non_null.iter().filter(|v| v.as_f64().is_some()).count();
            let is_numeric = !non_null.is_empty() && numeric * 2 >= non_null.len();
            if is_numeric {
                let xs = table.numeric_values(c);
                let mean =
                    if xs.is_empty() { 0.0 } else { xs.iter().sum::<f64>() / xs.len() as f64 };
                let var = if xs.is_empty() {
                    1.0
                } else {
                    xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / xs.len() as f64
                };
                plans.push(ColumnPlan::Numeric { mean, std: var.sqrt().max(1e-9) });
                width += 1;
            } else {
                let categories: Vec<String> = table
                    .value_counts(c)
                    .into_iter()
                    .take(MAX_ONE_HOT)
                    .map(|(v, _)| v.as_key().into_owned())
                    .collect();
                width += categories.len();
                plans.push(ColumnPlan::OneHot { categories });
            }
        }
        Self { feature_cols: feature_cols.to_vec(), plans, width }
    }

    /// Encoded feature width.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Encodes one row of `table` into `out` (must have length `width`).
    fn encode_row(&self, table: &Table, row: usize, out: &mut [f64]) {
        let mut pos = 0;
        for (&c, plan) in self.feature_cols.iter().zip(&self.plans) {
            match plan {
                ColumnPlan::Numeric { mean, std } => {
                    let v = table.cell(row, c).as_f64().unwrap_or(*mean);
                    out[pos] = (v - mean) / std;
                    pos += 1;
                }
                ColumnPlan::OneHot { categories } => {
                    let key = table.cell(row, c).as_key();
                    for (i, cat) in categories.iter().enumerate() {
                        out[pos + i] = if key.as_ref() == cat { 1.0 } else { 0.0 };
                    }
                    pos += categories.len();
                }
            }
        }
    }

    /// Encodes a whole table into a feature matrix (one row per table row).
    pub fn transform(&self, table: &Table) -> Matrix {
        let mut m = Matrix::zeros(table.n_rows(), self.width);
        for r in 0..table.n_rows() {
            self.encode_row(table, r, m.row_mut(r));
        }
        m
    }
}

/// A fitted label map for classification targets.
#[derive(Debug, Clone, Default)]
pub struct LabelMap {
    classes: Vec<String>,
    index: BTreeMap<String, usize>,
}

impl LabelMap {
    /// Fits a label map over the non-null values of `col` in the given
    /// tables (fit it over every data version so dirty/clean labels share
    /// ids).
    pub fn fit<'a>(tables: impl IntoIterator<Item = &'a Table>, col: usize) -> Self {
        let mut map = LabelMap::default();
        for t in tables {
            for v in t.column(col) {
                if v.is_null() {
                    continue;
                }
                let key = v.as_key().into_owned();
                if !map.index.contains_key(&key) {
                    map.index.insert(key.clone(), map.classes.len());
                    map.classes.push(key);
                }
            }
        }
        map
    }

    /// Number of classes.
    pub fn n_classes(&self) -> usize {
        self.classes.len()
    }

    /// Class id of a value, if known.
    pub fn id_of(&self, v: &Value) -> Option<usize> {
        self.index.get(v.as_key().as_ref()).copied()
    }

    /// Class name of an id.
    pub fn name_of(&self, id: usize) -> &str {
        &self.classes[id]
    }

    /// Encodes the label column: `(row_indices_kept, class_ids)`; rows whose
    /// label is null or unknown are dropped.
    pub fn encode(&self, table: &Table, col: usize) -> (Vec<usize>, Vec<usize>) {
        let mut rows = Vec::new();
        let mut ys = Vec::new();
        for r in 0..table.n_rows() {
            if let Some(id) = self.id_of(table.cell(r, col)) {
                rows.push(r);
                ys.push(id);
            }
        }
        (rows, ys)
    }
}

/// Extracts a regression target: `(row_indices_kept, values)`; rows with a
/// non-numeric target are dropped.
pub fn regression_target(table: &Table, col: usize) -> (Vec<usize>, Vec<f64>) {
    let mut rows = Vec::new();
    let mut ys = Vec::new();
    for r in 0..table.n_rows() {
        if let Some(y) = table.cell(r, col).as_f64() {
            rows.push(r);
            ys.push(y);
        }
    }
    (rows, ys)
}

/// Selects a subset of matrix rows (for aligning features with kept labels).
pub fn select_matrix_rows(m: &Matrix, rows: &[usize]) -> Matrix {
    let mut out = Matrix::zeros(rows.len(), m.cols());
    for (i, &r) in rows.iter().enumerate() {
        out.row_mut(i).copy_from_slice(m.row(r));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rein_data::{ColumnMeta, ColumnType, Schema};

    fn table() -> Table {
        let schema = Schema::new(vec![
            ColumnMeta::new("num", ColumnType::Float),
            ColumnMeta::new("cat", ColumnType::Str),
            ColumnMeta::new("y", ColumnType::Str).label(),
        ]);
        Table::from_rows(
            schema,
            vec![
                vec![Value::Float(1.0), Value::str("a"), Value::str("pos")],
                vec![Value::Float(2.0), Value::str("b"), Value::str("neg")],
                vec![Value::Float(3.0), Value::str("a"), Value::str("pos")],
                vec![Value::Float(4.0), Value::str("c"), Value::str("neg")],
            ],
        )
    }

    #[test]
    fn numeric_columns_standardise() {
        let t = table();
        let enc = Encoder::fit(&t, &[0]);
        let m = enc.transform(&t);
        assert_eq!(m.cols(), 1);
        let mean: f64 = (0..4).map(|r| m[(r, 0)]).sum::<f64>() / 4.0;
        assert!(mean.abs() < 1e-12);
        let var: f64 = (0..4).map(|r| m[(r, 0)].powi(2)).sum::<f64>() / 4.0;
        assert!((var - 1.0).abs() < 1e-9);
    }

    #[test]
    fn categorical_columns_one_hot() {
        let t = table();
        let enc = Encoder::fit(&t, &[1]);
        let m = enc.transform(&t);
        assert_eq!(m.cols(), 3); // a, b, c
        for r in 0..4 {
            let s: f64 = m.row(r).iter().sum();
            assert_eq!(s, 1.0, "one-hot row sums to 1");
        }
        // Rows 0 and 2 share the "a" category.
        assert_eq!(m.row(0), m.row(2));
    }

    #[test]
    fn nulls_impute_to_training_mean() {
        let mut t = table();
        t.set_cell(0, 0, Value::Null);
        let enc = Encoder::fit(&t, &[0]);
        let m = enc.transform(&t);
        // Mean imputation -> standardised 0.
        assert_eq!(m[(0, 0)], 0.0);
    }

    #[test]
    fn unknown_categories_encode_to_zero_vector() {
        let t = table();
        let enc = Encoder::fit(&t, &[1]);
        let mut t2 = t.clone();
        t2.set_cell(0, 1, Value::str("NEW"));
        let m = enc.transform(&t2);
        assert!(m.row(0).iter().all(|&v| v == 0.0));
    }

    #[test]
    fn typo_shifted_numeric_column_stays_numeric() {
        let mut t = table();
        t.set_cell(0, 0, Value::str("1.o")); // typo
        let enc = Encoder::fit(&t, &[0]);
        let m = enc.transform(&t);
        assert_eq!(m.cols(), 1);
        assert!(m.as_slice().iter().all(|v| v.is_finite()));
    }

    #[test]
    fn label_map_roundtrip() {
        let t = table();
        let lm = LabelMap::fit([&t], 2);
        assert_eq!(lm.n_classes(), 2);
        let (rows, ys) = lm.encode(&t, 2);
        assert_eq!(rows, vec![0, 1, 2, 3]);
        assert_eq!(lm.name_of(ys[0]), "pos");
        assert_eq!(lm.name_of(ys[1]), "neg");
    }

    #[test]
    fn label_encode_drops_null_labels() {
        let mut t = table();
        t.set_cell(1, 2, Value::Null);
        let lm = LabelMap::fit([&t], 2);
        let (rows, _) = lm.encode(&t, 2);
        assert_eq!(rows, vec![0, 2, 3]);
    }

    #[test]
    fn regression_target_drops_non_numeric() {
        let schema = Schema::new(vec![ColumnMeta::new("y", ColumnType::Float).label()]);
        let t = Table::from_rows(
            schema,
            vec![vec![Value::Float(1.5)], vec![Value::str("bad")], vec![Value::Float(2.5)]],
        );
        let (rows, ys) = regression_target(&t, 0);
        assert_eq!(rows, vec![0, 2]);
        assert_eq!(ys, vec![1.5, 2.5]);
    }

    #[test]
    fn select_matrix_rows_aligns() {
        let t = table();
        let enc = Encoder::fit(&t, &[0, 1]);
        let m = enc.transform(&t);
        let sub = select_matrix_rows(&m, &[2, 0]);
        assert_eq!(sub.rows(), 2);
        assert_eq!(sub.row(0), m.row(2));
        assert_eq!(sub.row(1), m.row(0));
    }

    #[test]
    fn high_cardinality_capped() {
        let schema = Schema::new(vec![ColumnMeta::new("c", ColumnType::Str)]);
        let t = Table::from_rows(
            schema,
            (0..100).map(|i| vec![Value::str(format!("cat{i}"))]).collect(),
        );
        let enc = Encoder::fit(&t, &[0]);
        assert_eq!(enc.width(), MAX_ONE_HOT);
    }
}
