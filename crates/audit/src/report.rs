//! Workspace walking and report assembly.
//!
//! The walker visits every `.rs` file under `crates/`, `src/`, `tests/`
//! and `examples/` (skipping `vendor/`, `target/` and the audit's own
//! rule fixtures) in **sorted** order — the report must itself be
//! byte-deterministic, so directory enumeration order cannot leak in.
//! The report carries no timestamps for the same reason.

use std::collections::{BTreeMap, BTreeSet};
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use serde::Serialize;

use crate::rules::{audit_source, Violation, RULES};
use crate::semantic::{analyze, WorkspaceModel};

/// Directories (workspace-relative) the walker descends into.
const SCAN_ROOTS: [&str; 4] = ["crates", "src", "tests", "examples"];

/// Workspace-relative prefixes the walker never enters. The audit's rule
/// fixtures are deliberate violations and must not fail the real run.
const SKIP_PREFIXES: [&str; 3] = ["vendor", "target", "crates/audit/tests/fixtures"];

/// Per-rule tallies for the report catalog.
#[derive(Debug, Clone, Serialize)]
pub struct RuleSummary {
    pub id: &'static str,
    pub description: &'static str,
    /// Documentation anchor for the rule (SARIF `helpUri`).
    pub help_uri: &'static str,
    pub violations: usize,
    /// Non-blocking findings for this rule.
    pub advisories: usize,
}

/// The machine-readable audit report written to
/// `artifacts/audit/report.json`.
#[derive(Debug, Serialize)]
pub struct Report {
    pub schema_version: u32,
    pub tool: &'static str,
    pub files_scanned: usize,
    /// Would-be violations silenced by valid `audit:allow` annotations.
    pub suppressed: usize,
    pub rules: Vec<RuleSummary>,
    /// Sorted by (path, line, rule).
    pub violations: Vec<Violation>,
    /// Non-blocking findings (ranked reports: `hot-loop-alloc`,
    /// `stale-allow`), sorted like `violations`. Never fail the run
    /// unless promoted (`--deny-stale`).
    pub advisories: Vec<Violation>,
}

impl Report {
    /// `true` when the workspace passes the audit (advisories do not
    /// block).
    pub fn clean(&self) -> bool {
        self.violations.is_empty()
    }

    /// Restricts the report to the given rule ids (`--only`): the rule
    /// catalog and the finding lists are filtered; file/suppression
    /// tallies stay untouched.
    pub fn retain_rules(&mut self, only: &[String]) {
        if only.is_empty() {
            return;
        }
        self.rules.retain(|r| only.iter().any(|o| o == r.id));
        self.violations.retain(|v| only.iter().any(|o| *o == v.rule));
        self.advisories.retain(|v| only.iter().any(|o| *o == v.rule));
    }

    /// Promotes `stale-allow` advisories to blocking violations
    /// (`--deny-stale`): CI runs with this on, so dead suppressions
    /// cannot accumulate.
    pub fn deny_stale(&mut self) {
        let (stale, rest): (Vec<Violation>, Vec<Violation>) =
            self.advisories.drain(..).partition(|v| v.rule == "stale-allow");
        self.advisories = rest;
        self.violations.extend(stale);
        self.violations.sort();
    }

    /// Serializes to pretty JSON (deterministic field order).
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).unwrap_or_else(|e|
            // audit:allow(panic, report serialization has no fallible fields; a failure is a bug in the vendored serializer)
            panic!("report serializes: {e}"))
    }

    /// Renders the human-readable report.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "rein-audit: {} file(s) scanned, {} violation(s), {} advisory(ies), {} suppressed\n",
            self.files_scanned,
            self.violations.len(),
            self.advisories.len(),
            self.suppressed
        ));
        let mut by_rule: BTreeMap<&str, Vec<&Violation>> = BTreeMap::new();
        for v in &self.violations {
            by_rule.entry(v.rule.as_str()).or_default().push(v);
        }
        for (rule, vs) in &by_rule {
            out.push_str(&format!("\n[{rule}] {} violation(s)\n", vs.len()));
            if let Some(info) = RULES.iter().find(|r| r.id == *rule) {
                out.push_str(&format!("  {}\n", info.description));
            }
            for v in vs {
                out.push_str(&format!("  {}:{}  {}\n", v.path, v.line, v.message));
            }
        }
        let mut adv_by_rule: BTreeMap<&str, Vec<&Violation>> = BTreeMap::new();
        for v in &self.advisories {
            adv_by_rule.entry(v.rule.as_str()).or_default().push(v);
        }
        for (rule, vs) in &adv_by_rule {
            out.push_str(&format!("\n[{rule}] {} advisory finding(s) (non-blocking)\n", vs.len()));
            if let Some(info) = RULES.iter().find(|r| r.id == *rule) {
                out.push_str(&format!("  {}\n", info.description));
            }
            for v in vs {
                out.push_str(&format!("  {}:{}  {}\n", v.path, v.line, v.message));
            }
        }
        if self.clean() {
            out.push_str("workspace is clean.\n");
        } else {
            out.push_str(
                "\nsuppress a finding with `// audit:allow(rule, reason)` on or \
                 above the line; see DESIGN.md for the rule catalog.\n",
            );
        }
        out
    }
}

fn skipped(rel: &str) -> bool {
    SKIP_PREFIXES.iter().any(|p| rel == *p || rel.starts_with(&format!("{p}/")))
}

/// Collects all auditable `.rs` files under `root`, workspace-relative,
/// sorted.
pub fn collect_sources(root: &Path) -> io::Result<Vec<PathBuf>> {
    let mut out = Vec::new();
    for scan in SCAN_ROOTS {
        let dir = root.join(scan);
        if dir.is_dir() {
            walk(root, &dir, &mut out)?;
        }
    }
    out.sort();
    Ok(out)
}

fn walk(root: &Path, dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    let mut entries: Vec<PathBuf> =
        fs::read_dir(dir)?.map(|e| e.map(|e| e.path())).collect::<io::Result<_>>()?;
    entries.sort();
    for path in entries {
        let rel = path.strip_prefix(root).unwrap_or(&path).to_string_lossy().replace('\\', "/");
        if skipped(&rel) {
            continue;
        }
        if path.is_dir() {
            walk(root, &path, out)?;
        } else if rel.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Audits the whole workspace rooted at `root`: the per-file token
/// rules plus the semantic pass over the parsed call graph.
pub fn audit_workspace(root: &Path) -> io::Result<Report> {
    let files = collect_sources(root)?;
    let mut sources: Vec<(String, String)> = Vec::with_capacity(files.len());
    for path in &files {
        let rel = path.strip_prefix(root).unwrap_or(path).to_string_lossy().replace('\\', "/");
        let source = fs::read_to_string(path)?;
        sources.push((rel, source));
    }
    Ok(audit_sources(sources))
}

/// Audits an in-memory workspace of `(workspace-relative path, source)`
/// pairs. Exposed so the fixture tests can assemble synthetic
/// multi-file workspaces.
pub fn audit_sources(sources: Vec<(String, String)>) -> Report {
    let mut violations = Vec::new();
    let mut suppressed = 0usize;
    // Annotation keys that suppressed at least one finding, per file.
    let mut consumed: BTreeMap<String, BTreeSet<(usize, String, bool)>> = BTreeMap::new();
    for (rel, source) in &sources {
        let audit = audit_source(rel, source);
        violations.extend(audit.violations);
        suppressed += audit.suppressed;
        consumed.entry(rel.clone()).or_default().extend(audit.consumed);
    }
    let model = WorkspaceModel::build(&sources);
    let semantic = analyze(&model);
    violations.extend(semantic.violations);
    suppressed += semantic.suppressed;
    let mut advisories = semantic.advisories;
    for (path, keys) in semantic.consumed {
        consumed.entry(path).or_default().extend(keys);
    }
    // Stale-allow pass: every well-formed annotation that suppressed
    // nothing in either pass is dead weight — it documents a finding
    // that no longer exists and would silently mask a future one.
    // `panic` annotations double as panic-reachability waivers through
    // the same per-site consumption, so they are never falsely stale.
    for f in &model.files {
        let is_live = |consumed: &BTreeMap<String, BTreeSet<(usize, String, bool)>>,
                       key: &(usize, String, bool)| {
            consumed.get(&f.path).is_some_and(|k| k.contains(key))
        };
        let candidates: Vec<_> =
            f.allows.entries().iter().filter(|e| !is_live(&consumed, &e.key())).cloned().collect();
        // First let stale-allow suppressions fire (consuming their own
        // annotation), then report what is still dead.
        for e in &candidates {
            if f.allows.allows(e.line, "stale-allow") {
                suppressed += 1;
                consumed
                    .entry(f.path.clone())
                    .or_default()
                    .extend(f.allows.match_keys(e.line, "stale-allow"));
            }
        }
        for e in &candidates {
            if is_live(&consumed, &e.key()) || f.allows.allows(e.line, "stale-allow") {
                continue;
            }
            let marker = if e.file_level { "audit:allow-file" } else { "audit:allow" };
            advisories.push(Violation {
                path: f.path.clone(),
                line: e.line,
                rule: "stale-allow".to_string(),
                message: format!(
                    "{marker}({rule}, …) no longer suppresses any finding — \
                     remove the annotation (or fix the regression it used \
                     to cover)",
                    rule = e.rule
                ),
            });
        }
    }
    violations.sort();
    violations.dedup();
    advisories.sort();
    advisories.dedup();
    let rules = RULES
        .iter()
        .map(|r| RuleSummary {
            id: r.id,
            description: r.description,
            help_uri: r.help_uri,
            violations: violations.iter().filter(|v| v.rule == r.id).count(),
            advisories: advisories.iter().filter(|v| v.rule == r.id).count(),
        })
        .collect();
    Report {
        schema_version: 3,
        tool: "rein-audit",
        files_scanned: sources.len(),
        suppressed,
        rules,
        violations,
        advisories,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn skip_prefixes_cover_vendor_and_fixtures() {
        assert!(skipped("vendor/rand/src/lib.rs"));
        assert!(skipped("target/debug/x.rs"));
        assert!(skipped("crates/audit/tests/fixtures/bad_rng.rs"));
        assert!(!skipped("crates/audit/tests/rules.rs"));
        assert!(!skipped("crates/core/src/lib.rs"));
    }

    #[test]
    fn report_json_is_deterministic() {
        let r = Report {
            schema_version: 1,
            tool: "rein-audit",
            files_scanned: 2,
            suppressed: 0,
            rules: Vec::new(),
            violations: Vec::new(),
            advisories: Vec::new(),
        };
        assert_eq!(r.to_json(), r.to_json());
        assert!(r.clean());
        assert!(r.render_text().contains("workspace is clean"));
    }
}
