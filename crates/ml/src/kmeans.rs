//! Lloyd's k-means with k-means++ initialisation.

use rand::prelude::*;
use rand::rngs::StdRng;
use rein_data::rng::weighted_index;

use crate::linalg::{sq_dist, Matrix};
use crate::model::Clusterer;

/// k-means clusterer.
#[derive(Debug, Clone)]
pub struct KMeans {
    /// Number of clusters.
    pub k: usize,
    /// Maximum Lloyd iterations.
    pub max_iter: usize,
    seed: u64,
    centroids: Vec<Vec<f64>>,
}

impl KMeans {
    /// Builds a k-means clusterer.
    pub fn new(k: usize, seed: u64) -> Self {
        Self { k: k.max(1), max_iter: 100, seed, centroids: Vec::new() }
    }

    /// Fitted centroids (empty before fit).
    pub fn centroids(&self) -> &[Vec<f64>] {
        &self.centroids
    }

    /// k-means++ seeding.
    fn init_centroids(&self, x: &Matrix, rng: &mut StdRng) -> Vec<Vec<f64>> {
        let n = x.rows();
        let mut centroids: Vec<Vec<f64>> = Vec::with_capacity(self.k);
        centroids.push(x.row(rng.random_range(0..n)).to_vec());
        while centroids.len() < self.k.min(n) {
            let weights: Vec<f64> = (0..n)
                .map(|r| {
                    centroids.iter().map(|c| sq_dist(x.row(r), c)).fold(f64::INFINITY, f64::min)
                })
                .collect();
            let next = weighted_index(rng, &weights);
            centroids.push(x.row(next).to_vec());
        }
        centroids
    }

    /// Assigns each row to its nearest centroid.
    pub fn assign(&self, x: &Matrix) -> Vec<usize> {
        (0..x.rows())
            .map(|r| {
                self.centroids
                    .iter()
                    .enumerate()
                    .min_by(|(_, a), (_, b)| sq_dist(x.row(r), a).total_cmp(&sq_dist(x.row(r), b)))
                    .map_or(0, |(i, _)| i)
            })
            .collect()
    }

    /// Total within-cluster sum of squares (inertia) of an assignment.
    pub fn inertia(&self, x: &Matrix, labels: &[usize]) -> f64 {
        labels.iter().enumerate().map(|(r, &l)| sq_dist(x.row(r), &self.centroids[l])).sum()
    }
}

impl Clusterer for KMeans {
    fn fit_predict(&mut self, x: &Matrix) -> Vec<usize> {
        let n = x.rows();
        if n == 0 {
            self.centroids.clear();
            return Vec::new();
        }
        let mut rng = StdRng::seed_from_u64(self.seed);
        self.centroids = self.init_centroids(x, &mut rng);
        let mut labels = vec![0usize; n];
        for _ in 0..self.max_iter {
            rein_guard::checkpoint(n as u64);
            let new_labels = self.assign(x);
            // Update centroids.
            let d = x.cols();
            let mut sums = vec![vec![0.0; d]; self.centroids.len()];
            let mut counts = vec![0usize; self.centroids.len()];
            for (r, &l) in new_labels.iter().enumerate() {
                counts[l] += 1;
                for (s, &v) in sums[l].iter_mut().zip(x.row(r)) {
                    *s += v;
                }
            }
            for (c, (sum, &count)) in self.centroids.iter_mut().zip(sums.iter().zip(&counts)) {
                if count > 0 {
                    for (cv, &sv) in c.iter_mut().zip(sum) {
                        *cv = sv / count as f64;
                    }
                }
            }
            let converged = new_labels == labels;
            labels = new_labels;
            if converged {
                break;
            }
        }
        labels
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::blob_classification;

    #[test]
    fn recovers_separated_blobs() {
        let (x, truth) = blob_classification(150, 3, 151);
        let mut km = KMeans::new(3, 1);
        let labels = km.fit_predict(&x);
        // Cluster ids are arbitrary: check that each true class maps to one
        // dominant cluster (purity > 0.9).
        let mut purity = 0usize;
        for class in 0..3 {
            let members: Vec<usize> = (0..truth.len()).filter(|&i| truth[i] == class).collect();
            let mut counts = std::collections::BTreeMap::new();
            for &m in &members {
                *counts.entry(labels[m]).or_insert(0usize) += 1;
            }
            purity += counts.values().copied().max().unwrap_or(0);
        }
        assert!(purity as f64 / truth.len() as f64 > 0.9);
    }

    #[test]
    fn labels_are_in_range() {
        let (x, _) = blob_classification(60, 2, 157);
        let mut km = KMeans::new(4, 2);
        let labels = km.fit_predict(&x);
        assert!(labels.iter().all(|&l| l < 4));
        assert_eq!(labels.len(), 60);
    }

    #[test]
    fn inertia_decreases_with_more_clusters() {
        let (x, _) = blob_classification(120, 3, 163);
        let mut k2 = KMeans::new(2, 3);
        let l2 = k2.fit_predict(&x);
        let mut k5 = KMeans::new(5, 3);
        let l5 = k5.fit_predict(&x);
        assert!(k5.inertia(&x, &l5) < k2.inertia(&x, &l2));
    }

    #[test]
    fn deterministic_per_seed() {
        let (x, _) = blob_classification(80, 2, 167);
        let a = KMeans::new(3, 5).fit_predict(&x);
        let b = KMeans::new(3, 5).fit_predict(&x);
        assert_eq!(a, b);
    }

    #[test]
    fn k_exceeding_points_is_clamped() {
        let x = Matrix::from_rows(&[vec![0.0], vec![1.0]]);
        let mut km = KMeans::new(10, 1);
        let labels = km.fit_predict(&x);
        assert_eq!(labels.len(), 2);
        assert!(km.centroids().len() <= 2);
    }

    #[test]
    fn empty_input() {
        let mut km = KMeans::new(3, 1);
        assert!(km.fit_predict(&Matrix::zeros(0, 2)).is_empty());
    }
}
