//! The strategy-failure registry.
//!
//! rein-guard appends one [`FailureRecord`] per degraded grid cell;
//! [`RunManifest::collect`](crate::RunManifest::collect) snapshots the
//! registry into the manifest's `failures` array. Snapshots are sorted by
//! cell identity (never by insertion order or elapsed time), so the same
//! failures produce the same manifest bytes no matter which rayon worker
//! recorded them first.

use std::sync::{Mutex, OnceLock};

use serde::{Deserialize, Serialize};

/// One degraded grid cell, as recorded in the run manifest.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FailureRecord {
    /// Grid phase (`detect`, `repair`, `model`).
    pub phase: String,
    /// Strategy name.
    pub strategy: String,
    /// Dataset name.
    pub dataset: String,
    /// Sub-grid scope (detector name for repair cells; empty otherwise).
    pub scope: String,
    /// Rendered failure cause.
    pub cause: String,
    /// Attempts made (1 = no retry).
    pub attempts: u32,
    /// Wall-clock time spent across attempts, in milliseconds.
    pub elapsed_ms: f64,
    /// 16-hex trace id of the owning cell trace (the `CellKey` digest),
    /// empty for records written before trace propagation (PR 9) or
    /// outside any cell span.
    #[serde(default)]
    pub trace_id: String,
}

impl FailureRecord {
    /// The stable sort key: everything except the timing.
    fn key(&self) -> (&str, &str, &str, &str, &str, u32) {
        (&self.phase, &self.strategy, &self.dataset, &self.scope, &self.cause, self.attempts)
    }
}

fn registry() -> &'static Mutex<Vec<FailureRecord>> {
    static REGISTRY: OnceLock<Mutex<Vec<FailureRecord>>> = OnceLock::new();
    REGISTRY.get_or_init(|| Mutex::new(Vec::new()))
}

/// Appends a failure to the process-global registry.
pub fn record_failure(record: FailureRecord) {
    // audit:allow(panic, failure list lock poisoning only follows another panic)
    registry().lock().expect("failure list lock").push(record);
}

/// Copies out every recorded failure, sorted by cell identity so the
/// order is deterministic under parallel recording.
pub fn failures_snapshot() -> Vec<FailureRecord> {
    // audit:allow(panic, failure list lock poisoning only follows another panic)
    let mut out = registry().lock().expect("failure list lock").clone();
    out.sort_by(|a, b| a.key().cmp(&b.key()));
    out
}

pub(crate) fn reset_failures() {
    // audit:allow(panic, failure list lock poisoning only follows another panic)
    registry().lock().expect("failure list lock").clear();
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(strategy: &str, elapsed_ms: f64) -> FailureRecord {
        FailureRecord {
            phase: "detect".into(),
            strategy: strategy.into(),
            dataset: "beers".into(),
            scope: String::new(),
            cause: "panic: boom".into(),
            attempts: 1,
            elapsed_ms,
            trace_id: String::new(),
        }
    }

    #[test]
    fn pre_trace_failure_records_deserialize_with_empty_trace_id() {
        let old = r#"{"phase":"detect","strategy":"Raha","dataset":"beers",
                      "scope":"","cause":"panic: boom","attempts":2,"elapsed_ms":1.5}"#;
        let f: FailureRecord = serde_json::from_str(old).expect("pre-trace record parses");
        assert_eq!(f.trace_id, "");
        assert_eq!(f.attempts, 2);
    }

    #[test]
    fn snapshot_is_sorted_by_identity_not_insertion() {
        reset_failures();
        record_failure(record("zeta", 9.0));
        record_failure(record("alpha", 1.0));
        let snap = failures_snapshot();
        let strategies: Vec<&str> = snap
            .iter()
            .map(|f| f.strategy.as_str())
            .filter(|s| *s == "zeta" || *s == "alpha")
            .collect();
        let alpha = strategies.iter().position(|s| *s == "alpha");
        let zeta = strategies.iter().position(|s| *s == "zeta");
        assert!(alpha < zeta, "alpha must sort before zeta: {strategies:?}");
    }
}
