//! Reproducibility: every stage of the benchmark is a pure function of its
//! seed — same seed, same bytes.

use rein::core::{eval_classifier, run_repair, DetectorHarness, Scenario, VersionTable};
use rein::datasets::{DatasetId, Params};
use rein::detect::DetectorKind;
use rein::ml::model::ClassifierKind;
use rein::repair::RepairKind;

#[test]
fn dataset_generation_is_deterministic() {
    for id in [DatasetId::Beers, DatasetId::Nasa, DatasetId::Water] {
        let a = id.generate(&Params::scaled(0.1, 99));
        let b = id.generate(&Params::scaled(0.1, 99));
        assert_eq!(a.clean, b.clean, "{}", id.name());
        assert_eq!(a.dirty, b.dirty, "{}", id.name());
        assert_eq!(a.mask, b.mask, "{}", id.name());
    }
}

#[test]
fn different_seeds_give_different_data() {
    // The master seed drives both the clean generation and the corruption,
    // so two seeds give genuinely independent benchmark instances.
    let a = DatasetId::Beers.generate(&Params::scaled(0.1, 1));
    let b = DatasetId::Beers.generate(&Params::scaled(0.1, 2));
    assert_ne!(a.clean, b.clean);
    assert_ne!(a.dirty, b.dirty);
}

#[test]
fn same_clean_table_different_injection_seeds_differ() {
    use rein::errors::compose::{compose, ErrorSpec};
    let ds = DatasetId::Beers.generate(&Params::scaled(0.1, 3));
    let spec = [ErrorSpec::ExplicitMissing { cols: vec![6, 7], rate: 0.2 }];
    let a = compose(&ds.clean, &spec, 1);
    let b = compose(&ds.clean, &spec, 2);
    assert_ne!(a.dirty, b.dirty, "corruption must vary with the injection seed");
    assert_eq!(a.mask.count(), b.mask.count(), "same spec, same volume");
}

#[test]
fn detection_is_deterministic() {
    let ds = DatasetId::Beers.generate(&Params::scaled(0.1, 3));
    for kind in [DetectorKind::DBoost, DetectorKind::Raha, DetectorKind::Ed2] {
        let run = || {
            let h = DetectorHarness::new(&ds, 60, 42);
            h.run(&ds, kind).mask
        };
        assert_eq!(run(), run(), "{}", kind.name());
    }
}

#[test]
fn repair_is_deterministic() {
    let ds = DatasetId::Beers.generate(&Params::scaled(0.1, 4));
    for kind in [RepairKind::MissMix, RepairKind::Baran, RepairKind::HoloClean] {
        let run = || run_repair(&ds, &ds.mask, kind, 7).version.expect("generic repair").table;
        assert_eq!(run(), run(), "{}", kind.name());
    }
}

#[test]
fn model_evaluation_is_deterministic() {
    let ds = DatasetId::BreastCancer.generate(&Params::scaled(0.3, 5));
    let version = VersionTable::identity(ds.dirty.clone());
    let a = eval_classifier(Scenario::S1, &ds, &version, ClassifierKind::RandomForest, 3, 11);
    let b = eval_classifier(Scenario::S1, &ds, &version, ClassifierKind::RandomForest, 3, 11);
    assert_eq!(a, b);
}

/// The double-run invariant the audit's determinism rules protect: a full
/// seeded detect-then-repair pass, executed twice from scratch, must
/// produce *byte-identical* artefacts — the serialized forms that would
/// land on disk, not merely `Eq`-equal values. Any hash-order or wall-clock
/// leak in the pipeline shows up here as a byte diff.
#[test]
fn seeded_detect_repair_double_run_is_byte_identical() {
    use rein::data::csv;
    let render = || {
        let ds = DatasetId::Beers.generate(&Params::scaled(0.1, 11));
        let harness = DetectorHarness::new(&ds, 60, 42);
        let mask = harness.run(&ds, DetectorKind::Raha).mask;
        let cells: Vec<String> = mask.iter().map(|c| format!("{}:{}", c.row, c.col)).collect();
        let repaired =
            run_repair(&ds, &mask, RepairKind::Baran, 7).version.expect("generic repair").table;
        format!("mask {}\n{}", cells.join(","), csv::write_str(&repaired))
    };
    assert_eq!(render(), render());
}
