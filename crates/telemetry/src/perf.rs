//! Performance primitives: the one sanctioned wall-clock source, an
//! optional counting global allocator, and a span-tree profiler.
//!
//! The audit's `wallclock` rule bans `Instant::now`/`SystemTime`
//! everywhere except this file — every other module (including the rest
//! of `rein-telemetry`) obtains time through [`now`] or [`Stopwatch`],
//! so wall-clock reads stay quarantined in one reviewable place.
//!
//! Three pieces:
//!
//! * **Monotonic timers** — [`now`] returns a monotonic [`Instant`];
//!   [`Stopwatch`] wraps start/elapsed for callers that only want a
//!   duration.
//! * **Allocation tracking** — [`CountingAllocator`] is a `GlobalAlloc`
//!   wrapper over the system allocator that counts allocations and
//!   bytes. A binary opts in with
//!   `#[global_allocator] static A: CountingAllocator = CountingAllocator;`
//!   and reads [`alloc_snapshot`] deltas around the phases it measures.
//!   When no binary installs it, all counts stay zero and
//!   [`alloc_tracking_active`] reports `false`.
//! * **Span-tree profiles** — [`span_profile`] folds a flat list of
//!   [`SpanRecord`]s into per-span-path statistics (total time, self
//!   time, call count), flamegraph-style: the path of a span is the
//!   `/`-joined chain of span names from its root to itself.

use std::alloc::{GlobalAlloc, Layout, System};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

use serde::{Deserialize, Serialize};

use crate::span::SpanRecord;

/// The sanctioned monotonic-clock read. All timing in the workspace
/// flows through here (or [`Stopwatch`], which calls it).
#[inline]
pub fn now() -> Instant {
    Instant::now()
}

/// A started monotonic timer.
#[derive(Debug, Clone, Copy)]
pub struct Stopwatch {
    start: Instant,
}

impl Stopwatch {
    /// Starts timing now.
    #[inline]
    pub fn start() -> Self {
        Stopwatch { start: now() }
    }

    /// Wall-clock time elapsed since [`Stopwatch::start`].
    #[inline]
    pub fn elapsed(&self) -> Duration {
        self.start.elapsed()
    }

    /// Elapsed time in fractional milliseconds.
    #[inline]
    pub fn elapsed_ms(&self) -> f64 {
        self.elapsed().as_secs_f64() * 1e3
    }
}

// Allocation counters. Module-level statics (not fields of the
// allocator) so `alloc_snapshot` works without a handle to the
// installed `#[global_allocator]` static.
static ALLOC_CALLS: AtomicU64 = AtomicU64::new(0);
static DEALLOC_CALLS: AtomicU64 = AtomicU64::new(0);
static BYTES_ALLOCATED: AtomicU64 = AtomicU64::new(0);
static CURRENT_BYTES: AtomicU64 = AtomicU64::new(0);
static PEAK_BYTES: AtomicU64 = AtomicU64::new(0);

#[inline]
fn record_alloc(size: u64) {
    ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
    BYTES_ALLOCATED.fetch_add(size, Ordering::Relaxed);
    let current = CURRENT_BYTES.fetch_add(size, Ordering::Relaxed) + size;
    PEAK_BYTES.fetch_max(current, Ordering::Relaxed);
}

#[inline]
fn record_dealloc(size: u64) {
    DEALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
    // Saturating: a binary may install the allocator after some frees'
    // matching allocations were never counted.
    let _ = CURRENT_BYTES
        .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |c| Some(c.saturating_sub(size)));
}

/// A counting wrapper over the system allocator. Install it from a
/// binary to light up allocation statistics:
///
/// ```ignore
/// #[global_allocator]
/// static ALLOC: rein_telemetry::perf::CountingAllocator =
///     rein_telemetry::perf::CountingAllocator;
/// ```
///
/// Overhead per allocation is a handful of relaxed atomic adds.
pub struct CountingAllocator;

// SAFETY: every method delegates directly to `System`, which upholds the
// GlobalAlloc contract; the atomic bookkeeping never touches the
// returned memory.
unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let ptr = unsafe { System.alloc(layout) };
        if !ptr.is_null() {
            record_alloc(layout.size() as u64);
        }
        ptr
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        let ptr = unsafe { System.alloc_zeroed(layout) };
        if !ptr.is_null() {
            record_alloc(layout.size() as u64);
        }
        ptr
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) };
        record_dealloc(layout.size() as u64);
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        let new_ptr = unsafe { System.realloc(ptr, layout, new_size) };
        if !new_ptr.is_null() {
            record_dealloc(layout.size() as u64);
            record_alloc(new_size as u64);
        }
        new_ptr
    }
}

/// A point-in-time reading of the allocation counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct AllocSnapshot {
    /// Total `alloc`/`alloc_zeroed` calls (plus the alloc half of each
    /// `realloc`).
    pub allocs: u64,
    /// Total `dealloc` calls (plus the dealloc half of each `realloc`).
    pub deallocs: u64,
    /// Cumulative bytes requested across all allocations.
    pub bytes_allocated: u64,
    /// Bytes currently outstanding (approximate before install).
    pub current_bytes: u64,
    /// High-water mark of `current_bytes` since process start (or the
    /// last [`reset_alloc_peak`]).
    pub peak_bytes: u64,
}

impl AllocSnapshot {
    /// Allocation activity between `earlier` and `self`.
    pub fn since(&self, earlier: &AllocSnapshot) -> AllocDelta {
        AllocDelta {
            allocs: self.allocs.saturating_sub(earlier.allocs),
            bytes_allocated: self.bytes_allocated.saturating_sub(earlier.bytes_allocated),
        }
    }
}

/// Allocation activity over an interval.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct AllocDelta {
    /// Allocation calls in the interval.
    pub allocs: u64,
    /// Bytes requested in the interval.
    pub bytes_allocated: u64,
}

/// Reads the current allocation counters. All-zero when no binary
/// installed the [`CountingAllocator`].
pub fn alloc_snapshot() -> AllocSnapshot {
    AllocSnapshot {
        allocs: ALLOC_CALLS.load(Ordering::Relaxed),
        deallocs: DEALLOC_CALLS.load(Ordering::Relaxed),
        bytes_allocated: BYTES_ALLOCATED.load(Ordering::Relaxed),
        current_bytes: CURRENT_BYTES.load(Ordering::Relaxed),
        peak_bytes: PEAK_BYTES.load(Ordering::Relaxed),
    }
}

/// Resets the peak-bytes high-water mark to the current outstanding
/// bytes, so a measured phase reports its own peak rather than the
/// process-lifetime one.
pub fn reset_alloc_peak() {
    PEAK_BYTES.store(CURRENT_BYTES.load(Ordering::Relaxed), Ordering::Relaxed);
}

/// Whether the [`CountingAllocator`] is actually installed: performs a
/// probe allocation and checks that the counters moved.
pub fn alloc_tracking_active() -> bool {
    let before = ALLOC_CALLS.load(Ordering::Relaxed);
    let probe = std::hint::black_box(vec![0u8; 64]);
    drop(std::hint::black_box(probe));
    ALLOC_CALLS.load(Ordering::Relaxed) != before
}

/// Aggregated statistics of one span path.
///
/// The *path* of a span is the `/`-joined chain of span names from its
/// root ancestor down to itself (e.g. `"phase:detect/detect:raha"`); a
/// span whose parent already finished and was drained is treated as a
/// root. All identically-pathed spans fold into one entry.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SpanPathStat {
    /// `/`-joined span-name chain.
    pub path: String,
    /// How many spans had this path.
    pub count: u64,
    /// Sum of wall-clock durations of those spans.
    pub total_ms: f64,
    /// Total time minus the time spent in direct children — the
    /// flamegraph "self" time. Clamped at zero.
    pub self_ms: f64,
    /// Largest single span duration on this path.
    pub max_ms: f64,
}

/// Folds a flat span list into per-path statistics, sorted by path.
///
/// Sorting makes the output deterministic even though rayon fan-outs
/// finish spans in scheduling order; counts and paths depend only on
/// the span *tree*, which seeded runs reproduce exactly.
pub fn span_profile(spans: &[SpanRecord]) -> Vec<SpanPathStat> {
    let by_id: BTreeMap<u64, &SpanRecord> = spans.iter().map(|s| (s.id, s)).collect();

    // Direct-children time per parent id, for self-time computation.
    let mut child_ms: BTreeMap<u64, f64> = BTreeMap::new();
    for s in spans {
        if s.parent_id != 0 && by_id.contains_key(&s.parent_id) {
            *child_ms.entry(s.parent_id).or_insert(0.0) += s.duration_ms;
        }
    }

    // Memoized root-to-span paths.
    let mut paths: BTreeMap<u64, String> = BTreeMap::new();
    for s in spans {
        if paths.contains_key(&s.id) {
            continue;
        }
        // Walk up to the first ancestor with a memoized path (or a root).
        let mut chain: Vec<&SpanRecord> = vec![s];
        let mut cursor = s;
        while let Some(parent) = by_id.get(&cursor.parent_id) {
            if paths.contains_key(&parent.id) {
                break;
            }
            chain.push(parent);
            cursor = parent;
        }
        let mut prefix = by_id
            .get(&cursor.parent_id)
            .and_then(|p| paths.get(&p.id))
            .cloned()
            .unwrap_or_default();
        for link in chain.into_iter().rev() {
            if prefix.is_empty() {
                prefix = link.name.clone();
            } else {
                prefix = format!("{prefix}/{}", link.name);
            }
            paths.insert(link.id, prefix.clone());
        }
    }

    let mut agg: BTreeMap<String, SpanPathStat> = BTreeMap::new();
    for s in spans {
        let path = &paths[&s.id];
        let self_ms = (s.duration_ms - child_ms.get(&s.id).copied().unwrap_or(0.0)).max(0.0);
        let entry = agg.entry(path.clone()).or_insert_with(|| SpanPathStat {
            path: path.clone(),
            count: 0,
            total_ms: 0.0,
            self_ms: 0.0,
            max_ms: 0.0,
        });
        entry.count += 1;
        entry.total_ms += s.duration_ms;
        entry.self_ms += self_ms;
        entry.max_ms = entry.max_ms.max(s.duration_ms);
    }
    agg.into_values().collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(name: &str, id: u64, parent_id: u64, duration_ms: f64) -> SpanRecord {
        SpanRecord {
            name: name.into(),
            id,
            parent_id,
            depth: 0,
            start_ms: 0.0,
            duration_ms,
            trace_id: 0,
            instant: false,
        }
    }

    #[test]
    fn stopwatch_is_monotone() {
        let sw = Stopwatch::start();
        let a = sw.elapsed_ms();
        let b = sw.elapsed_ms();
        assert!(b >= a && a >= 0.0);
    }

    #[test]
    fn profile_folds_paths_and_computes_self_time() {
        let spans = vec![
            rec("root", 1, 0, 10.0),
            rec("child", 2, 1, 4.0),
            rec("child", 3, 1, 2.0),
            rec("leaf", 4, 2, 1.0),
        ];
        let profile = span_profile(&spans);
        let paths: Vec<&str> = profile.iter().map(|p| p.path.as_str()).collect();
        assert_eq!(paths, ["root", "root/child", "root/child/leaf"]);
        let by_path = |p: &str| profile.iter().find(|s| s.path == p).unwrap();
        assert_eq!(by_path("root/child").count, 2);
        assert!((by_path("root/child").total_ms - 6.0).abs() < 1e-12);
        // Self time of root = 10 - (4 + 2); child self = 6 - 1.
        assert!((by_path("root").self_ms - 4.0).abs() < 1e-12);
        assert!((by_path("root/child").self_ms - 5.0).abs() < 1e-12);
        assert!((by_path("root/child").max_ms - 4.0).abs() < 1e-12);
    }

    #[test]
    fn orphaned_parent_becomes_root() {
        // Parent id 99 was drained earlier: the span roots itself.
        let profile = span_profile(&[rec("late", 5, 99, 3.0)]);
        assert_eq!(profile.len(), 1);
        assert_eq!(profile[0].path, "late");
        assert!((profile[0].self_ms - 3.0).abs() < 1e-12);
    }

    #[test]
    fn alloc_snapshot_delta_is_saturating() {
        let a = AllocSnapshot {
            allocs: 10,
            deallocs: 2,
            bytes_allocated: 100,
            current_bytes: 50,
            peak_bytes: 80,
        };
        let b = AllocSnapshot { allocs: 25, bytes_allocated: 300, ..a };
        let d = b.since(&a);
        assert_eq!(d, AllocDelta { allocs: 15, bytes_allocated: 200 });
        // Reversed order saturates instead of wrapping.
        assert_eq!(a.since(&b), AllocDelta { allocs: 0, bytes_allocated: 0 });
    }
}
