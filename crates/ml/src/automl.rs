//! AutoML searchers — the Auto-Sklearn and TPOT substitutes (Table 2).
//!
//! [`AutoSelect`] mimics Auto-Sklearn's portfolio + successive-halving
//! strategy: every model family starts on a small data fraction, the best
//! half survives each rung, and the final survivors are compared on the
//! full training set with a holdout. [`GeneticPipeline`] mimics TPOT: a
//! small genetic algorithm over (model kind, hyperparameter) genomes with
//! mutation and tournament selection.

use rand::prelude::*;
use rand::rngs::StdRng;
use rein_data::rng::derive_seed;
use rein_data::split::train_test_indices;

use crate::encode::select_matrix_rows;
use crate::linalg::Matrix;
use crate::metrics::{accuracy, rmse};
use crate::model::{Classifier, ClassifierKind, Regressor, RegressorKind};

/// Result of an AutoML run.
pub struct AutoMlOutcome<M: ?Sized> {
    /// The winning trained model.
    pub model: Box<M>,
    /// Name of the winning family.
    pub family: String,
    /// Validation score of the winner (accuracy or −RMSE).
    pub score: f64,
    /// Leaderboard of `(family, score)` for every family evaluated.
    pub leaderboard: Vec<(String, f64)>,
}

/// Portfolio + successive-halving model selection (Auto-Sklearn stand-in).
pub struct AutoSelect {
    /// Random seed controlling splits and model seeds.
    pub seed: u64,
    /// Successive-halving rungs (data fractions double each rung).
    pub rungs: usize,
}

impl AutoSelect {
    /// Builds an AutoSelect searcher.
    pub fn new(seed: u64) -> Self {
        Self { seed, rungs: 3 }
    }

    /// Selects and trains the best classifier for `(x, y)`.
    pub fn fit_classifier(
        &self,
        x: &Matrix,
        y: &[usize],
        n_classes: usize,
    ) -> AutoMlOutcome<dyn Classifier> {
        let split = train_test_indices(x.rows(), 0.25, self.seed);
        let xtr = select_matrix_rows(x, &split.train);
        let ytr: Vec<usize> = split.train.iter().map(|&i| y[i]).collect();
        let xval = select_matrix_rows(x, &split.test);
        let yval: Vec<usize> = split.test.iter().map(|&i| y[i]).collect();

        let mut candidates: Vec<ClassifierKind> = ClassifierKind::ALL.to_vec();
        let mut leaderboard = Vec::new();
        let mut rung_fraction = 1.0 / 2f64.powi(self.rungs.saturating_sub(1) as i32);
        for rung in 0..self.rungs {
            let n_sub = ((xtr.rows() as f64 * rung_fraction) as usize)
                .clamp((n_classes * 2).min(xtr.rows()), xtr.rows());
            let sub: Vec<usize> = (0..n_sub).collect();
            let xs = select_matrix_rows(&xtr, &sub);
            let ys: Vec<usize> = sub.iter().map(|&i| ytr[i]).collect();
            let mut scored: Vec<(ClassifierKind, f64)> = candidates
                .iter()
                .map(|&kind| {
                    let mut model = kind.build(derive_seed(self.seed, rung as u64));
                    model.fit(&xs, &ys, n_classes);
                    let acc = accuracy(&yval, &model.predict(&xval));
                    (kind, acc)
                })
                .collect();
            scored.sort_by(|a, b| b.1.total_cmp(&a.1));
            if rung == self.rungs - 1 {
                leaderboard = scored.iter().map(|(k, s)| (k.name().to_string(), *s)).collect();
            }
            let keep = (scored.len() / 2).max(1);
            candidates = scored.into_iter().take(keep).map(|(k, _)| k).collect();
            rung_fraction = (rung_fraction * 2.0).min(1.0);
        }

        let winner = candidates[0];
        let mut model = winner.build(self.seed);
        model.fit(&xtr, &ytr, n_classes);
        let score = accuracy(&yval, &model.predict(&xval));
        // Refit on everything for deployment.
        let mut deployed = winner.build(self.seed);
        deployed.fit(x, y, n_classes);
        AutoMlOutcome { model: deployed, family: winner.name().to_string(), score, leaderboard }
    }

    /// Selects and trains the best regressor for `(x, y)`.
    pub fn fit_regressor(&self, x: &Matrix, y: &[f64]) -> AutoMlOutcome<dyn Regressor> {
        let split = train_test_indices(x.rows(), 0.25, self.seed);
        let xtr = select_matrix_rows(x, &split.train);
        let ytr: Vec<f64> = split.train.iter().map(|&i| y[i]).collect();
        let xval = select_matrix_rows(x, &split.test);
        let yval: Vec<f64> = split.test.iter().map(|&i| y[i]).collect();

        let mut candidates: Vec<RegressorKind> = RegressorKind::ALL.to_vec();
        let mut leaderboard = Vec::new();
        let mut rung_fraction = 1.0 / 2f64.powi(self.rungs.saturating_sub(1) as i32);
        for rung in 0..self.rungs {
            let n_sub =
                ((xtr.rows() as f64 * rung_fraction) as usize).clamp(4.min(xtr.rows()), xtr.rows());
            let sub: Vec<usize> = (0..n_sub).collect();
            let xs = select_matrix_rows(&xtr, &sub);
            let ys: Vec<f64> = sub.iter().map(|&i| ytr[i]).collect();
            let mut scored: Vec<(RegressorKind, f64)> = candidates
                .iter()
                .map(|&kind| {
                    let mut model = kind.build(derive_seed(self.seed, rung as u64));
                    model.fit(&xs, &ys);
                    let score = -rmse(&yval, &model.predict(&xval));
                    (kind, score)
                })
                .collect();
            scored.sort_by(|a, b| b.1.total_cmp(&a.1));
            if rung == self.rungs - 1 {
                leaderboard = scored.iter().map(|(k, s)| (k.name().to_string(), *s)).collect();
            }
            let keep = (scored.len() / 2).max(1);
            candidates = scored.into_iter().take(keep).map(|(k, _)| k).collect();
            rung_fraction = (rung_fraction * 2.0).min(1.0);
        }

        let winner = candidates[0];
        let mut model = winner.build(self.seed);
        model.fit(&xtr, &ytr);
        let score = -rmse(&yval, &model.predict(&xval));
        let mut deployed = winner.build(self.seed);
        deployed.fit(x, y);
        AutoMlOutcome { model: deployed, family: winner.name().to_string(), score, leaderboard }
    }
}

/// One genome of the genetic pipeline search.
#[derive(Debug, Clone, Copy, PartialEq)]
struct Genome {
    kind: ClassifierKind,
    /// Seed perturbation acting as a cheap hyperparameter dimension.
    variant: u64,
}

/// Genetic pipeline search over classifier genomes (TPOT stand-in).
pub struct GeneticPipeline {
    /// Random seed.
    pub seed: u64,
    /// Population size.
    pub population: usize,
    /// Generations.
    pub generations: usize,
}

impl GeneticPipeline {
    /// Builds a genetic searcher.
    pub fn new(seed: u64) -> Self {
        Self { seed, population: 8, generations: 3 }
    }

    /// Evolves classifiers for `(x, y)`; returns the winner refit on all data.
    pub fn fit_classifier(
        &self,
        x: &Matrix,
        y: &[usize],
        n_classes: usize,
    ) -> AutoMlOutcome<dyn Classifier> {
        let mut rng = StdRng::seed_from_u64(self.seed);
        let split = train_test_indices(x.rows(), 0.25, self.seed);
        let xtr = select_matrix_rows(x, &split.train);
        let ytr: Vec<usize> = split.train.iter().map(|&i| y[i]).collect();
        let xval = select_matrix_rows(x, &split.test);
        let yval: Vec<usize> = split.test.iter().map(|&i| y[i]).collect();

        let fitness = |g: &Genome| -> f64 {
            let mut m = g.kind.build(derive_seed(self.seed, g.variant));
            m.fit(&xtr, &ytr, n_classes);
            accuracy(&yval, &m.predict(&xval))
        };

        let random_genome = |rng: &mut StdRng| Genome {
            kind: ClassifierKind::ALL[rng.random_range(0..ClassifierKind::ALL.len())],
            variant: rng.random_range(0..1000),
        };

        let mut pop: Vec<(Genome, f64)> = (0..self.population)
            .map(|_| {
                let g = random_genome(&mut rng);
                let f = fitness(&g);
                (g, f)
            })
            .collect();

        for _ in 0..self.generations {
            pop.sort_by(|a, b| b.1.total_cmp(&a.1));
            let elite = pop[0];
            let mut next = vec![elite];
            while next.len() < self.population {
                // Tournament selection of a parent from the top half.
                let parent = pop[rng.random_range(0..(pop.len() / 2).max(1))].0;
                // Mutate: change family or variant.
                let child = if rng.random_bool(0.5) {
                    Genome { kind: random_genome(&mut rng).kind, ..parent }
                } else {
                    Genome { variant: rng.random_range(0..1000), ..parent }
                };
                let f = fitness(&child);
                next.push((child, f));
            }
            pop = next;
        }
        pop.sort_by(|a, b| b.1.total_cmp(&a.1));
        let (winner, score) = pop[0];
        let leaderboard = pop.iter().map(|(g, s)| (g.kind.name().to_string(), *s)).collect();
        let mut deployed = winner.kind.build(derive_seed(self.seed, winner.variant));
        deployed.fit(x, y, n_classes);
        AutoMlOutcome {
            model: deployed,
            family: winner.kind.name().to_string(),
            score,
            leaderboard,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{blob_classification, linear_regression_data};

    #[test]
    fn auto_select_classifier_finds_strong_model() {
        let (x, y) = blob_classification(160, 3, 241);
        let outcome = AutoSelect::new(1).fit_classifier(&x, &y, 3);
        assert!(outcome.score > 0.85, "score {}", outcome.score);
        assert!(!outcome.family.is_empty());
        assert!(!outcome.leaderboard.is_empty());
        // The deployed model predicts sensibly.
        let preds = outcome.model.predict(&x);
        assert!(accuracy(&y, &preds) > 0.85);
    }

    #[test]
    fn auto_select_regressor_finds_strong_model() {
        let (x, y) = linear_regression_data(200, 0.1, 251);
        let outcome = AutoSelect::new(2).fit_regressor(&x, &y);
        assert!(outcome.score > -0.8, "score {}", outcome.score);
        let preds = outcome.model.predict(&x);
        assert!(rmse(&y, &preds) < 1.0);
    }

    #[test]
    fn genetic_pipeline_improves_over_generations() {
        let (x, y) = blob_classification(120, 2, 261);
        let outcome = GeneticPipeline::new(3).fit_classifier(&x, &y, 2);
        assert!(outcome.score > 0.85, "score {}", outcome.score);
    }

    #[test]
    fn automl_is_deterministic_per_seed() {
        let (x, y) = blob_classification(100, 2, 271);
        let a = AutoSelect::new(5).fit_classifier(&x, &y, 2);
        let b = AutoSelect::new(5).fit_classifier(&x, &y, 2);
        assert_eq!(a.family, b.family);
        assert_eq!(a.score, b.score);
    }
}
