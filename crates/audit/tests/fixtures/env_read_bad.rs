//! Fixture: an environment read in library code. A violation anywhere
//! except rein-bench's config layer (the allowlisted module).

pub fn scale_override() -> usize {
    std::env::var("REIN_SCALE").ok().and_then(|v| v.parse().ok()).unwrap_or(1)
}
