//! The data cleaning toolbox: the pool of detectors and repairers with the
//! capability metadata the controller uses to prune experiments.

use rein_data::{ErrorProfile, MlTask};
use rein_detect::{DetectorKind, Signal};
use rein_repair::{RepairCategory, RepairKind};

/// Signals available for a dataset (what the benchmark can supply).
#[derive(Debug, Clone, Copy, Default)]
pub struct AvailableSignals {
    /// FD rules exist.
    pub fds: bool,
    /// A knowledge base can be provided.
    pub knowledge_base: bool,
    /// Key columns are designated.
    pub key_columns: bool,
    /// A labelling oracle is available (ground truth known).
    pub oracle: bool,
    /// The dataset has a label column.
    pub label_column: bool,
}

/// Whether a detector's signal requirements are satisfiable.
pub fn signals_satisfied(kind: DetectorKind, avail: &AvailableSignals) -> bool {
    kind.required_signals().iter().all(|s| match s {
        Signal::FdRules | Signal::DenialConstraints => avail.fds,
        Signal::KnowledgeBase => avail.knowledge_base,
        Signal::KeyColumns => avail.key_columns,
        Signal::Labels => avail.oracle,
        Signal::LabelColumn => avail.label_column,
    })
}

/// Detectors applicable to a dataset: the method must tackle at least one
/// of the error types present *and* have its signals available — the
/// design-time pruning of §2 ("if a dataset is known to have duplicates,
/// it is meaningless to run rule violation or outlier detection").
pub fn applicable_detectors(errors: &ErrorProfile, avail: &AvailableSignals) -> Vec<DetectorKind> {
    DetectorKind::ALL
        .iter()
        .copied()
        .filter(|kind| {
            kind.tackled_errors().iter().any(|t| errors.has(*t)) && signals_satisfied(*kind, avail)
        })
        .collect()
}

/// Repairers applicable to a dataset/task combination.
///
/// ML-oriented methods need a classification task with a label column; the
/// CleanLab relabeller needs class errors; everything else is generic.
pub fn applicable_repairers(
    errors: &ErrorProfile,
    task: MlTask,
    avail: &AvailableSignals,
) -> Vec<RepairKind> {
    RepairKind::ALL
        .iter()
        .copied()
        .filter(|kind| match kind.category() {
            RepairCategory::MlOriented => {
                task == MlTask::Classification && avail.label_column && avail.oracle
            }
            RepairCategory::Generic => match kind {
                RepairKind::GroundTruth => avail.oracle,
                RepairKind::CleanLab => avail.label_column && errors.has_class_errors(),
                RepairKind::HoloClean => true, // degrades to co-occurrence voting
                _ => true,
            },
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rein_data::ErrorType;

    fn all_signals() -> AvailableSignals {
        AvailableSignals {
            fds: true,
            knowledge_base: true,
            key_columns: true,
            oracle: true,
            label_column: true,
        }
    }

    #[test]
    fn duplicate_only_dataset_skips_outlier_and_rule_detectors() {
        let errors = ErrorProfile::new([ErrorType::Duplicate, ErrorType::Mislabel], 0.2);
        let dets = applicable_detectors(&errors, &all_signals());
        assert!(dets.contains(&DetectorKind::KeyCollision));
        assert!(dets.contains(&DetectorKind::ZeroEr));
        assert!(dets.contains(&DetectorKind::CleanLab));
        assert!(!dets.contains(&DetectorKind::Sd), "outlier detection pruned");
        assert!(!dets.contains(&DetectorKind::Nadeef), "rule detection pruned");
    }

    #[test]
    fn outlier_dataset_runs_outlier_detectors_and_holistics() {
        let errors = ErrorProfile::new([ErrorType::Outlier, ErrorType::MissingValue], 0.15);
        let dets = applicable_detectors(&errors, &all_signals());
        assert!(dets.contains(&DetectorKind::Sd));
        assert!(dets.contains(&DetectorKind::IsolationForest));
        assert!(dets.contains(&DetectorKind::MvDetector));
        assert!(dets.contains(&DetectorKind::Raha), "holistic methods always apply");
        assert!(!dets.contains(&DetectorKind::KeyCollision));
    }

    #[test]
    fn missing_signals_prune_dependent_detectors() {
        let errors = ErrorProfile::new([ErrorType::RuleViolation, ErrorType::Outlier], 0.1);
        let none = AvailableSignals::default();
        let dets = applicable_detectors(&errors, &none);
        assert!(!dets.contains(&DetectorKind::Nadeef));
        assert!(!dets.contains(&DetectorKind::Katara));
        assert!(!dets.contains(&DetectorKind::Raha), "needs oracle labels");
        assert!(dets.contains(&DetectorKind::Sd), "configuration-free methods survive");
        assert!(dets.contains(&DetectorKind::Picket), "self-supervised survives");
    }

    #[test]
    fn ml_oriented_repairers_require_classification() {
        let errors = ErrorProfile::new([ErrorType::Outlier], 0.1);
        let cls = applicable_repairers(&errors, MlTask::Classification, &all_signals());
        assert!(cls.contains(&RepairKind::ActiveClean));
        let reg = applicable_repairers(&errors, MlTask::Regression, &all_signals());
        assert!(!reg.contains(&RepairKind::ActiveClean));
        assert!(!reg.contains(&RepairKind::BoostClean));
        assert!(!reg.contains(&RepairKind::CpClean));
        assert!(reg.contains(&RepairKind::ImputeMeanMode));
    }

    #[test]
    fn cleanlab_repair_requires_class_errors() {
        let no_mislabels = ErrorProfile::new([ErrorType::Outlier], 0.1);
        let reps = applicable_repairers(&no_mislabels, MlTask::Classification, &all_signals());
        assert!(!reps.contains(&RepairKind::CleanLab));
        let with = ErrorProfile::new([ErrorType::Mislabel], 0.1);
        let reps = applicable_repairers(&with, MlTask::Classification, &all_signals());
        assert!(reps.contains(&RepairKind::CleanLab));
    }

    #[test]
    fn ground_truth_requires_oracle() {
        let errors = ErrorProfile::new([ErrorType::Outlier], 0.1);
        let no_oracle = AvailableSignals { label_column: true, ..Default::default() };
        let reps = applicable_repairers(&errors, MlTask::Classification, &no_oracle);
        assert!(!reps.contains(&RepairKind::GroundTruth));
    }
}
