//! Offline vendored stand-in for `criterion`.
//!
//! Implements the benchmarking subset the REIN-RS `benches/` directory
//! uses — `criterion_group!` / `criterion_main!`, benchmark groups with
//! `sample_size`, `bench_function` / `bench_with_input`, and
//! `Bencher::iter` — with a straightforward warmup + timed-samples
//! runner that reports min/mean/max per benchmark on stdout in a
//! stable, machine-greppable format:
//!
//! ```text
//! bench <group>/<id>  min <t>  mean <t>  max <t>  (N samples)
//! ```

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Opaque value barrier — prevents the optimiser from deleting the
/// benchmarked computation.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Benchmark identifier inside a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Id from a function name and a parameter.
    pub fn new(function: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId { id: format!("{}/{}", function.into(), parameter) }
    }

    /// Id from a parameter alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId { id: parameter.to_string() }
    }
}

/// The benchmark harness entry point.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 20 }
    }
}

impl Criterion {
    /// Default sample size for subsequently created groups.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup {
        BenchmarkGroup { name: name.into(), sample_size: self.sample_size }
    }

    /// Runs a single ungrouped benchmark.
    pub fn bench_function<F>(&mut self, name: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(&name.into(), self.sample_size, |b| f(b));
        self
    }
}

/// A group of related benchmarks.
pub struct BenchmarkGroup {
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup {
    /// Samples per benchmark in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Benchmarks `f` with an input value.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.id);
        run_benchmark(&label, self.sample_size, |b| f(b, input));
        self
    }

    /// Benchmarks a closure without an input.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id.into());
        run_benchmark(&label, self.sample_size, |b| f(b));
        self
    }

    /// Ends the group (layout compatibility; nothing to flush).
    pub fn finish(self) {}
}

/// Timing context passed to benchmark closures.
pub struct Bencher {
    samples: Vec<Duration>,
    iters_per_sample: u64,
}

impl Bencher {
    /// Times `sample_size` executions of `routine` (after one warmup).
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        black_box(routine()); // warmup, and lets the closure touch its captures
        for _ in 0..self.samples.capacity() {
            let start = Instant::now();
            for _ in 0..self.iters_per_sample {
                black_box(routine());
            }
            self.samples.push(start.elapsed() / self.iters_per_sample as u32);
        }
    }
}

fn run_benchmark(label: &str, sample_size: usize, mut f: impl FnMut(&mut Bencher)) {
    let mut bencher = Bencher { samples: Vec::with_capacity(sample_size), iters_per_sample: 1 };
    f(&mut bencher);
    if bencher.samples.is_empty() {
        println!("bench {label}  (no samples)");
        return;
    }
    let min = bencher.samples.iter().min().copied().unwrap_or_default();
    let max = bencher.samples.iter().max().copied().unwrap_or_default();
    let total: Duration = bencher.samples.iter().sum();
    let mean = total / bencher.samples.len() as u32;
    println!(
        "bench {label}  min {}  mean {}  max {}  ({} samples)",
        fmt_duration(min),
        fmt_duration(mean),
        fmt_duration(max),
        bencher.samples.len()
    );
}

fn fmt_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos < 1_000 {
        format!("{nanos}ns")
    } else if nanos < 1_000_000 {
        format!("{:.2}us", nanos as f64 / 1e3)
    } else if nanos < 1_000_000_000 {
        format!("{:.2}ms", nanos as f64 / 1e6)
    } else {
        format!("{:.3}s", nanos as f64 / 1e9)
    }
}

/// Declares a benchmark group runner function.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the benchmark binary's `main`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_runs_and_reports() {
        let mut c = Criterion::default();
        c.sample_size(3);
        let mut group = c.benchmark_group("g");
        group.sample_size(3);
        let mut runs = 0u32;
        group.bench_with_input(BenchmarkId::from_parameter("x"), &2u64, |b, &two| {
            b.iter(|| {
                runs += 1;
                two * two
            });
        });
        group.finish();
        assert!(runs >= 4, "warmup + samples should run the routine");
    }
}
