//! SGD classifier: per-sample stochastic gradient descent on the logistic
//! loss with an inverse-scaling learning rate (scikit-learn's
//! `SGDClassifier(loss="log_loss")`).

use rand::prelude::*;
use rand::rngs::StdRng;

use crate::linalg::Matrix;
use crate::logistic::softmax_in_place;
use crate::model::Classifier;

/// SGD hyperparameters.
#[derive(Debug, Clone)]
pub struct SgdParams {
    /// Initial learning rate.
    pub eta0: f64,
    /// L2 penalty.
    pub alpha: f64,
    /// Epochs.
    pub epochs: usize,
}

impl Default for SgdParams {
    fn default() -> Self {
        Self { eta0: 0.1, alpha: 1e-4, epochs: 25 }
    }
}

/// Multinomial SGD classifier (log loss).
#[derive(Debug, Clone)]
pub struct SgdClassifier {
    params: SgdParams,
    seed: u64,
    weights: Matrix, // (d + 1) × classes
    n_classes: usize,
}

impl SgdClassifier {
    /// Builds an SGD classifier.
    pub fn new(params: SgdParams, seed: u64) -> Self {
        Self { params, seed, weights: Matrix::zeros(0, 0), n_classes: 0 }
    }

    fn scores(&self, xr: &[f64]) -> Vec<f64> {
        let d = xr.len();
        (0..self.n_classes)
            .map(|c| {
                let mut z = self.weights[(d, c)];
                for (f, &xv) in xr.iter().enumerate() {
                    z += xv * self.weights[(f, c)];
                }
                z
            })
            .collect()
    }
}

impl Classifier for SgdClassifier {
    fn fit(&mut self, x: &Matrix, y: &[usize], n_classes: usize) {
        self.n_classes = n_classes.max(1);
        let d = x.cols();
        self.weights = Matrix::zeros(d + 1, self.n_classes);
        let n = x.rows();
        if n == 0 {
            return;
        }
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut order: Vec<usize> = (0..n).collect();
        let mut t = 0usize;
        for _ in 0..self.params.epochs {
            order.shuffle(&mut rng);
            for &i in &order {
                t += 1;
                // Inverse-scaling learning rate.
                let eta =
                    self.params.eta0 / (1.0 + self.params.eta0 * self.params.alpha * t as f64);
                let xr = x.row(i);
                let mut probs = self.scores(xr);
                softmax_in_place(&mut probs);
                for c in 0..self.n_classes {
                    let err = probs[c] - if y[i] == c { 1.0 } else { 0.0 };
                    if err == 0.0 {
                        continue;
                    }
                    for (f, &xv) in xr.iter().enumerate() {
                        let w = &mut self.weights[(f, c)];
                        *w -= eta * (err * xv + self.params.alpha * *w);
                    }
                    self.weights[(d, c)] -= eta * err;
                }
            }
        }
    }

    fn predict(&self, x: &Matrix) -> Vec<usize> {
        (0..x.rows()).map(|r| crate::linalg::argmax(&self.scores(x.row(r)))).collect()
    }

    fn predict_proba(&self, x: &Matrix, n_classes: usize) -> Matrix {
        let mut p = Matrix::zeros(x.rows(), n_classes);
        for r in 0..x.rows() {
            let mut s = self.scores(x.row(r));
            softmax_in_place(&mut s);
            p.row_mut(r)[..s.len().min(n_classes)].copy_from_slice(&s[..s.len().min(n_classes)]);
        }
        p
    }
}

/// Convenience alias used by ActiveClean, which requires a model trainable
/// by incremental gradient steps on convex losses.
pub type ConvexSgdModel = SgdClassifier;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{blob_classification, train_test_accuracy};

    #[test]
    fn learns_blobs() {
        let (x, y) = blob_classification(150, 3, 23);
        let mut m = SgdClassifier::new(SgdParams::default(), 1);
        let acc = train_test_accuracy(&mut m, &x, &y, 3);
        assert!(acc > 0.9, "accuracy {acc}");
    }

    #[test]
    fn proba_rows_normalised() {
        let (x, y) = blob_classification(60, 2, 29);
        let mut m = SgdClassifier::new(SgdParams::default(), 2);
        m.fit(&x, &y, 2);
        let p = m.predict_proba(&x, 2);
        for r in 0..p.rows() {
            assert!((p.row(r).iter().sum::<f64>() - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn seeded_training_is_reproducible() {
        let (x, y) = blob_classification(80, 2, 31);
        let mut a = SgdClassifier::new(SgdParams::default(), 7);
        let mut b = SgdClassifier::new(SgdParams::default(), 7);
        a.fit(&x, &y, 2);
        b.fit(&x, &y, 2);
        assert_eq!(a.predict(&x), b.predict(&x));
    }
}
