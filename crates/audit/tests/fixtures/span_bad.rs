//! Fixture: a detector module that never opens a telemetry span.
pub fn detect(xs: &[f64]) -> Vec<bool> {
    xs.iter().map(|x| x.is_nan()).collect()
}
