//! Error-profile composition: chains individual injectors to produce a
//! dirty dataset with a controlled mix of error types, the way the paper
//! prepares its 12 synthetic-error datasets offline with BART + the
//! error-generator library.

use rein_constraints::fd::FunctionalDependency;
use rein_data::rng::derive_seed;
use rein_data::{diff::diff_mask, CellMask, ErrorType, Table};

use crate::duplicates::inject_duplicates;
use crate::inconsistencies::inject_inconsistencies;
use crate::mislabels::inject_mislabels;
use crate::missing::{inject_disguised_missing, inject_explicit_missing, inject_implicit_missing};
use crate::outliers::{inject_gaussian_noise, inject_outliers};
use crate::rules::inject_fd_violations;
use crate::swaps::inject_value_swaps;
use crate::typos::inject_typos;

/// One step of an error profile.
#[derive(Debug, Clone)]
pub enum ErrorSpec {
    /// Explicit NULLs at `rate` of the cells of `cols`.
    ExplicitMissing { cols: Vec<usize>, rate: f64 },
    /// Implicit placeholders ("?", "unknown") at `rate` of `cols`.
    ImplicitMissing { cols: Vec<usize>, rate: f64 },
    /// Disguised sentinels (999999, -1) in numeric `cols`.
    DisguisedMissing { cols: Vec<usize>, rate: f64 },
    /// Outliers `degree` standard deviations out.
    Outliers { cols: Vec<usize>, rate: f64, degree: f64 },
    /// Additive Gaussian noise scaled by `sigma_scale · σ`.
    GaussianNoise { cols: Vec<usize>, rate: f64, sigma_scale: f64 },
    /// Keyboard typos.
    Typos { cols: Vec<usize>, rate: f64 },
    /// Value swaps within attributes.
    ValueSwaps { cols: Vec<usize>, rate: f64 },
    /// FD violations for a dependency holding on the clean data.
    FdViolations { fd: FunctionalDependency, rate: f64 },
    /// Variant spellings in string columns.
    Inconsistencies { cols: Vec<usize>, rate: f64 },
    /// Label flips in `label_col`.
    Mislabels { label_col: usize, rate: f64 },
    /// Fuzzy duplicate rows (always applied last).
    Duplicates { rate: f64, fuzz: f64 },
}

impl ErrorSpec {
    /// The error type this spec injects (for controller capability checks).
    pub fn error_type(&self) -> ErrorType {
        match self {
            ErrorSpec::ExplicitMissing { .. } => ErrorType::MissingValue,
            ErrorSpec::ImplicitMissing { .. } | ErrorSpec::DisguisedMissing { .. } => {
                ErrorType::ImplicitMissingValue
            }
            ErrorSpec::Outliers { .. } => ErrorType::Outlier,
            ErrorSpec::GaussianNoise { .. } => ErrorType::GaussianNoise,
            ErrorSpec::Typos { .. } => ErrorType::Typo,
            ErrorSpec::ValueSwaps { .. } => ErrorType::ValueSwap,
            ErrorSpec::FdViolations { .. } => ErrorType::RuleViolation,
            ErrorSpec::Inconsistencies { .. } => ErrorType::Inconsistency,
            ErrorSpec::Mislabels { .. } => ErrorType::Mislabel,
            ErrorSpec::Duplicates { .. } => ErrorType::Duplicate,
        }
    }

    fn scale_rate(&mut self, factor: f64) {
        let rate = match self {
            ErrorSpec::ExplicitMissing { rate, .. }
            | ErrorSpec::ImplicitMissing { rate, .. }
            | ErrorSpec::DisguisedMissing { rate, .. }
            | ErrorSpec::Outliers { rate, .. }
            | ErrorSpec::GaussianNoise { rate, .. }
            | ErrorSpec::Typos { rate, .. }
            | ErrorSpec::ValueSwaps { rate, .. }
            | ErrorSpec::FdViolations { rate, .. }
            | ErrorSpec::Inconsistencies { rate, .. }
            | ErrorSpec::Mislabels { rate, .. }
            | ErrorSpec::Duplicates { rate, .. } => rate,
        };
        *rate = (*rate * factor).clamp(0.0, 1.0);
    }
}

/// A corrupted dataset with its ground truth and error bookkeeping.
#[derive(Debug, Clone)]
pub struct DirtyDataset {
    /// The clean ground truth.
    pub clean: Table,
    /// The corrupted version (may have more rows than `clean` when
    /// duplicates were injected).
    pub dirty: Table,
    /// Exact mask of erroneous cells, sized to `dirty`.
    pub mask: CellMask,
    /// Ground-truth duplicate pairs (original, injected).
    pub duplicate_pairs: Vec<(usize, usize)>,
    /// Error types present.
    pub error_types: Vec<ErrorType>,
}

impl DirtyDataset {
    /// Realised overall cell error rate.
    pub fn error_rate(&self) -> f64 {
        if self.dirty.n_cells() == 0 {
            0.0
        } else {
            self.mask.count() as f64 / self.dirty.n_cells() as f64
        }
    }
}

/// Applies an error profile to a clean table.
///
/// Specs are applied in order, each on the output of the previous one;
/// duplicate injection is deferred to the end so cell masks keep a single
/// geometry. The final error mask is the exact diff against the clean
/// table, so overlapping injections are never double-counted.
pub fn compose(clean: &Table, specs: &[ErrorSpec], seed: u64) -> DirtyDataset {
    let mut dirty = clean.clone();
    let mut duplicate_pairs = Vec::new();
    let mut error_types: Vec<ErrorType> = Vec::new();

    let (dup_specs, cell_specs): (Vec<&ErrorSpec>, Vec<&ErrorSpec>) =
        specs.iter().partition(|s| matches!(s, ErrorSpec::Duplicates { .. }));

    for (i, spec) in cell_specs.iter().enumerate() {
        let s = derive_seed(seed, i as u64);
        dirty = match spec {
            ErrorSpec::ExplicitMissing { cols, rate } => {
                inject_explicit_missing(&dirty, cols, *rate, s).table
            }
            ErrorSpec::ImplicitMissing { cols, rate } => {
                inject_implicit_missing(&dirty, cols, *rate, s).table
            }
            ErrorSpec::DisguisedMissing { cols, rate } => {
                inject_disguised_missing(&dirty, cols, *rate, s).table
            }
            ErrorSpec::Outliers { cols, rate, degree } => {
                inject_outliers(&dirty, cols, *rate, *degree, s).table
            }
            ErrorSpec::GaussianNoise { cols, rate, sigma_scale } => {
                inject_gaussian_noise(&dirty, cols, *rate, *sigma_scale, s).table
            }
            ErrorSpec::Typos { cols, rate } => inject_typos(&dirty, cols, *rate, s).table,
            ErrorSpec::ValueSwaps { cols, rate } => {
                inject_value_swaps(&dirty, cols, *rate, s).table
            }
            ErrorSpec::FdViolations { fd, rate } => {
                inject_fd_violations(&dirty, fd, *rate, s).table
            }
            ErrorSpec::Inconsistencies { cols, rate } => {
                inject_inconsistencies(&dirty, cols, *rate, s).table
            }
            ErrorSpec::Mislabels { label_col, rate } => {
                inject_mislabels(&dirty, *label_col, *rate, s).table
            }
            // audit:allow(panic, duplicates are partitioned out by the caller above)
            ErrorSpec::Duplicates { .. } => unreachable!("partitioned"),
        };
        error_types.push(spec.error_type());
    }

    for (i, spec) in dup_specs.iter().enumerate() {
        if let ErrorSpec::Duplicates { rate, fuzz } = spec {
            let s = derive_seed(seed, 1000 + i as u64);
            let inj = inject_duplicates(&dirty, *rate, *fuzz, s);
            dirty = inj.table;
            duplicate_pairs.extend(inj.pairs);
            error_types.push(ErrorType::Duplicate);
        }
    }

    error_types.sort();
    error_types.dedup();
    let mask = diff_mask(clean, &dirty);
    DirtyDataset { clean: clean.clone(), dirty, mask, duplicate_pairs, error_types }
}

/// Composes a profile, then rescales all spec rates once so the realised
/// cell error rate lands near `target_rate` (±20% relative) when feasible.
///
/// Matching Table 4's per-dataset error rates exactly is impossible in one
/// shot because injectors overlap and skip infeasible cells; one corrective
/// iteration is what the original offline preparation does.
pub fn compose_with_target_rate(
    clean: &Table,
    specs: &[ErrorSpec],
    target_rate: f64,
    seed: u64,
) -> DirtyDataset {
    let first = compose(clean, specs, seed);
    let realised = first.error_rate();
    if realised <= 0.0 || target_rate <= 0.0 {
        return first;
    }
    let ratio = target_rate / realised;
    if (0.8..=1.25).contains(&ratio) {
        return first;
    }
    let mut scaled: Vec<ErrorSpec> = specs.to_vec();
    for s in &mut scaled {
        s.scale_rate(ratio);
    }
    compose(clean, &scaled, seed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rein_data::{ColumnMeta, ColumnType, Schema, Value};

    fn clean() -> Table {
        let schema = Schema::new(vec![
            ColumnMeta::new("num", ColumnType::Float),
            ColumnMeta::new("cat", ColumnType::Str),
            ColumnMeta::new("label", ColumnType::Str).label(),
        ]);
        let cats = ["alpha", "beta", "gamma"];
        Table::from_rows(
            schema,
            (0..120)
                .map(|i| {
                    vec![
                        Value::Float(50.0 + (i % 10) as f64),
                        Value::str(cats[i % 3]),
                        Value::str(if i % 2 == 0 { "yes" } else { "no" }),
                    ]
                })
                .collect(),
        )
    }

    #[test]
    fn composed_mask_is_exact_diff() {
        let c = clean();
        let d = compose(
            &c,
            &[
                ErrorSpec::ExplicitMissing { cols: vec![0], rate: 0.1 },
                ErrorSpec::Typos { cols: vec![1], rate: 0.1 },
                ErrorSpec::Mislabels { label_col: 2, rate: 0.05 },
            ],
            7,
        );
        assert_eq!(d.mask, diff_mask(&c, &d.dirty));
        assert!(d.error_rate() > 0.0);
        assert_eq!(
            d.error_types,
            vec![ErrorType::MissingValue, ErrorType::Typo, ErrorType::Mislabel]
                .into_iter()
                .collect::<std::collections::BTreeSet<_>>()
                .into_iter()
                .collect::<Vec<_>>()
        );
    }

    #[test]
    fn duplicates_enlarge_table_and_mask() {
        let c = clean();
        let d = compose(
            &c,
            &[
                ErrorSpec::Outliers { cols: vec![0], rate: 0.05, degree: 4.0 },
                ErrorSpec::Duplicates { rate: 0.1, fuzz: 0.2 },
            ],
            3,
        );
        assert_eq!(d.dirty.n_rows(), 132);
        assert_eq!(d.mask.rows(), 132);
        assert_eq!(d.duplicate_pairs.len(), 12);
        // Injected rows are fully dirty in the mask.
        for &(_, dup) in &d.duplicate_pairs {
            assert!((0..d.dirty.n_cols()).all(|c2| d.mask.get(dup, c2)));
        }
    }

    #[test]
    fn compose_is_deterministic() {
        let c = clean();
        let specs = [
            ErrorSpec::ExplicitMissing { cols: vec![0], rate: 0.1 },
            ErrorSpec::Inconsistencies { cols: vec![1], rate: 0.1 },
        ];
        let a = compose(&c, &specs, 99);
        let b = compose(&c, &specs, 99);
        assert_eq!(a.dirty, b.dirty);
        assert_eq!(a.mask, b.mask);
    }

    #[test]
    fn target_rate_rescaling_moves_towards_target() {
        let c = clean();
        let specs = [ErrorSpec::ExplicitMissing { cols: vec![0, 1], rate: 0.02 }];
        let d = compose_with_target_rate(&c, &specs, 0.10, 5);
        // 2 of 3 columns injectable: ceiling is 2/3; target 0.10 reachable.
        assert!(d.error_rate() > 0.05, "rate = {}", d.error_rate());
    }

    #[test]
    fn error_rate_close_to_requested_simple_case() {
        let c = clean();
        let d = compose(&c, &[ErrorSpec::ExplicitMissing { cols: vec![0, 1, 2], rate: 0.15 }], 2);
        assert!((d.error_rate() - 0.15).abs() < 0.02, "rate = {}", d.error_rate());
    }
}
