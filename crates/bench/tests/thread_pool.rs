//! The `REIN_THREADS` plumbing: scoped pools must actually govern the
//! width of parallel stages (including nested ones running on worker
//! threads), the override must not leak out of `install`, and the
//! global installer must tolerate repeated calls — the properties
//! `parallel_smoke` and the bench binaries build on.

use rayon::prelude::*;

#[test]
fn scoped_pool_width_governs_nested_stages() {
    let pool = rayon::ThreadPoolBuilder::new().num_threads(3).build().expect("build pool");
    assert_eq!(pool.current_num_threads(), 3);
    let widths: Vec<usize> = pool
        .install(|| (0..8usize).into_par_iter().map(|_| rayon::current_num_threads()).collect());
    assert!(widths.iter().all(|&w| w == 3), "workers inherit the scoped width: {widths:?}");
}

#[test]
fn scoped_pools_nest_and_restore() {
    let outer = rayon::ThreadPoolBuilder::new().num_threads(2).build().expect("build pool");
    let inner = rayon::ThreadPoolBuilder::new().num_threads(5).build().expect("build pool");
    outer.install(|| {
        assert_eq!(rayon::current_num_threads(), 2);
        inner.install(|| assert_eq!(rayon::current_num_threads(), 5));
        // The outer override is restored when the inner scope ends.
        assert_eq!(rayon::current_num_threads(), 2);
    });
}

#[test]
fn install_thread_pool_is_idempotent() {
    // The first global configuration wins; repeat calls are harmless
    // no-ops — bench binaries call this unconditionally.
    rein_bench::install_thread_pool();
    rein_bench::install_thread_pool();
    assert!(rayon::current_num_threads() >= 1);
}

#[test]
fn scoped_width_preserves_parallel_results() {
    let data: Vec<u64> = (0..100).collect();
    let serial: Vec<u64> = data.iter().map(|&x| x * 3).collect();
    for threads in [1usize, 4, 7] {
        let pool =
            rayon::ThreadPoolBuilder::new().num_threads(threads).build().expect("build pool");
        let parallel: Vec<u64> = pool.install(|| data.par_iter().map(|&x| x * 3).collect());
        assert_eq!(parallel, serial, "order must not depend on the pool width ({threads})");
    }
}
