//! Concurrency fixture (positive): parallel combination routed through
//! registered deterministic merges (`merge_entries` in the fold
//! combiner, `merge_shards` as the reduce operator) and an
//! order-preserving `collect`. `par-merge-registered` must stay silent.

pub fn totals(xs: &[Vec<u64>]) -> Vec<u64> {
    xs.par_iter()
        .fold(Vec::new, |acc, x| merge_entries(acc, x))
        .reduce(Vec::new, merge_shards)
}

pub fn doubled(xs: &[u64]) -> Vec<u64> {
    xs.par_iter().map(|x| x * 2).collect()
}

pub fn merge_shards(a: Vec<u64>, b: Vec<u64>) -> Vec<u64> {
    let mut out = a;
    out.extend(b);
    out.sort_unstable();
    out
}

pub fn merge_entries(a: Vec<u64>, b: &Vec<u64>) -> Vec<u64> {
    let mut out = a;
    out.extend(b.iter().copied());
    out.sort_unstable();
    out
}
