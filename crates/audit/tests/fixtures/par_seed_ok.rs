//! Concurrency fixture (positive): the per-cell seed derives from the
//! closure's own enumeration index, so every worker gets a distinct
//! stream. Both `par-seed-derivation` and `seed-provenance` pass.

pub fn shard_scores(xs: &[u64], seed: u64) -> Vec<u64> {
    xs.par_iter()
        .enumerate()
        .map(|(i, x)| {
            let cell_seed = derive_seed(seed, i as u64);
            let mut rng = StdRng::seed_from_u64(cell_seed);
            step(&mut rng, *x)
        })
        .collect()
}

pub fn derive_seed(seed: u64, stream: u64) -> u64 {
    seed.rotate_left(17) ^ stream
}

fn step(rng: &mut StdRng, x: u64) -> u64 {
    x
}
