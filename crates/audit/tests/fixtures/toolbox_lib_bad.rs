//! Negative toolbox fixture: `orphan` is declared but never referenced
//! by the registry, a bench binary or a test.

pub mod good;
pub mod orphan;

use crate::good::Detector;

/// The registry wires `good` in; `orphan` is left dangling.
pub fn default_detector() -> Detector {
    good::Detector::new()
}
