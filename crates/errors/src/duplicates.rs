//! Duplicate-record injection.
//!
//! Appends fuzzy copies of existing rows: each duplicate optionally mangles
//! a few attribute values (typos / case changes) so that exact-match
//! detection is insufficient and similarity-based matchers (ZeroER) have
//! something to do. Injected rows are recorded both as whole-row entries in
//! the mask and as an explicit row-pair list for entity-resolution ground
//! truth.

use rand::prelude::*;
use rand::rngs::StdRng;
use rein_data::{CellMask, Table, Value};

use crate::typos;

/// Result of duplicate injection: the enlarged table, the mask (injected
/// rows fully flagged), and the ground-truth match pairs
/// `(original_row, duplicate_row)`.
#[derive(Debug, Clone)]
pub struct DuplicateInjection {
    /// Table with duplicates appended.
    pub table: Table,
    /// Mask sized to the enlarged table; injected rows are fully set.
    pub cells: CellMask,
    /// Ground-truth duplicate pairs (original index, appended index).
    pub pairs: Vec<(usize, usize)>,
}

/// Appends `rate × n_rows` fuzzy duplicates.
///
/// `fuzz` is the probability that each cell of a duplicate is perturbed
/// (typo for strings, small relative shift for numbers); `0.0` yields exact
/// duplicates.
pub fn inject_duplicates(table: &Table, rate: f64, fuzz: f64, seed: u64) -> DuplicateInjection {
    let mut rng = StdRng::seed_from_u64(seed);
    let n = table.n_rows();
    let n_dups = (n as f64 * rate).round() as usize;
    let mut out = table.clone();
    let mut pairs = Vec::with_capacity(n_dups);

    for d in 0..n_dups {
        let src = rng.random_range(0..n);
        let mut row = table.row(src);
        for v in row.iter_mut() {
            if rng.random::<f64>() >= fuzz {
                continue;
            }
            match v {
                Value::Str(s) => {
                    // Reuse the typo machinery for realistic string fuzz.
                    *v = Value::Str(typos_fuzz(s, &mut rng));
                }
                Value::Float(x) => {
                    *v = Value::float(*x * (1.0 + 0.001 * (rng.random::<f64>() - 0.5)));
                }
                _ => {}
            }
        }
        out.push_row(row);
        pairs.push((src, n + d));
    }

    let mut cells = CellMask::new(out.n_rows(), out.n_cols());
    for r in n..out.n_rows() {
        cells.set_row(r, true);
    }
    DuplicateInjection { table: out, cells, pairs }
}

fn typos_fuzz(s: &str, rng: &mut StdRng) -> String {
    // Random case flip or typo.
    if rng.random_bool(0.5) && !s.is_empty() {
        let mut chars: Vec<char> = s.chars().collect();
        let i = rng.random_range(0..chars.len());
        chars[i] = if chars[i].is_ascii_uppercase() {
            chars[i].to_ascii_lowercase()
        } else {
            chars[i].to_ascii_uppercase()
        };
        chars.into_iter().collect()
    } else {
        typos::fuzz_once(s, rng).unwrap_or_else(|| s.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rein_data::{ColumnMeta, ColumnType, Schema};

    fn table() -> Table {
        let schema = Schema::new(vec![
            ColumnMeta::new("name", ColumnType::Str),
            ColumnMeta::new("x", ColumnType::Float),
        ]);
        Table::from_rows(
            schema,
            (0..40)
                .map(|i| vec![Value::str(format!("record number {i}")), Value::Float(i as f64)])
                .collect(),
        )
    }

    #[test]
    fn duplicates_are_appended() {
        let t = table();
        let inj = inject_duplicates(&t, 0.25, 0.0, 3);
        assert_eq!(inj.table.n_rows(), 50);
        assert_eq!(inj.pairs.len(), 10);
        // Exact duplicates equal their source rows.
        for &(src, dup) in &inj.pairs {
            assert_eq!(inj.table.row(src), inj.table.row(dup));
        }
    }

    #[test]
    fn mask_covers_exactly_the_new_rows() {
        let t = table();
        let inj = inject_duplicates(&t, 0.1, 0.0, 5);
        assert_eq!(inj.cells.count(), 4 * t.n_cols());
        assert_eq!(inj.cells.dirty_rows(), (40..44).collect::<Vec<_>>());
    }

    #[test]
    fn fuzzed_duplicates_differ_slightly() {
        let t = table();
        let inj = inject_duplicates(&t, 0.5, 0.9, 7);
        let mut fuzzy = 0;
        for &(src, dup) in &inj.pairs {
            if inj.table.row(src) != inj.table.row(dup) {
                fuzzy += 1;
            }
        }
        assert!(fuzzy > inj.pairs.len() / 2, "most duplicates should be fuzzed");
    }

    #[test]
    fn deterministic_by_seed() {
        let t = table();
        assert_eq!(
            inject_duplicates(&t, 0.2, 0.5, 9).table,
            inject_duplicates(&t, 0.2, 0.5, 9).table
        );
    }

    #[test]
    fn zero_rate_adds_nothing() {
        let t = table();
        let inj = inject_duplicates(&t, 0.0, 0.5, 1);
        assert_eq!(inj.table.n_rows(), t.n_rows());
        assert!(inj.pairs.is_empty());
        assert!(inj.cells.is_empty());
    }
}
