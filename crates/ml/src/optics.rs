//! OPTICS density-based cluster ordering with DBSCAN-style extraction.
//!
//! Computes the reachability ordering (Ankerst et al.) and extracts
//! clusters by thresholding reachability at `eps_extract` (the `cluster_
//! method="dbscan"` mode of scikit-learn's OPTICS). Points never reached
//! within the threshold are noise ([`crate::model::NOISE_LABEL`]).

use crate::linalg::{euclid, Matrix};
use crate::model::{Clusterer, NOISE_LABEL};

/// OPTICS parameters.
#[derive(Debug, Clone)]
pub struct Optics {
    /// Core-point neighbourhood size.
    pub min_pts: usize,
    /// Extraction threshold as a quantile of finite reachabilities
    /// (`0.75` reproduces a permissive DBSCAN cut).
    pub extract_quantile: f64,
}

impl Default for Optics {
    fn default() -> Self {
        // The 0.9 quantile keeps all within-cluster reachabilities below the
        // threshold while genuine density gaps (orders of magnitude larger)
        // still spike above it.
        Self { min_pts: 5, extract_quantile: 0.9 }
    }
}

impl Optics {
    /// The OPTICS ordering with reachability distances
    /// (`f64::INFINITY` for never-reached points).
    pub fn ordering(&self, x: &Matrix) -> (Vec<usize>, Vec<f64>) {
        let n = x.rows();
        let min_pts = self.min_pts.min(n.max(1));
        // Core distance of each point: distance to its min_pts-th neighbour.
        let mut core = vec![f64::INFINITY; n];
        let mut dists = vec![0.0f64; n];
        for i in 0..n {
            for j in 0..n {
                dists[j] = euclid(x.row(i), x.row(j));
            }
            let mut sorted = dists.clone();
            sorted.sort_by(|a, b| a.total_cmp(b));
            if min_pts <= n {
                core[i] = sorted[min_pts - 1];
            }
        }

        let mut processed = vec![false; n];
        let mut reach = vec![f64::INFINITY; n];
        let mut order = Vec::with_capacity(n);
        for start in 0..n {
            if processed[start] {
                continue;
            }
            // Expand from this seed using a simple priority selection.
            let mut seeds: Vec<usize> = vec![start];
            while let Some(pos) = seeds
                .iter()
                .enumerate()
                .min_by(|(_, &a), (_, &b)| reach[a].total_cmp(&reach[b]))
                .map(|(p, _)| p)
            {
                let current = seeds.swap_remove(pos);
                if processed[current] {
                    continue;
                }
                processed[current] = true;
                order.push(current);
                // Update reachability of unprocessed neighbours.
                for j in 0..n {
                    if processed[j] {
                        continue;
                    }
                    let d = euclid(x.row(current), x.row(j));
                    let new_reach = core[current].max(d);
                    if new_reach < reach[j] {
                        reach[j] = new_reach;
                        if !seeds.contains(&j) {
                            seeds.push(j);
                        }
                    }
                }
            }
        }
        let reach_in_order: Vec<f64> = order.iter().map(|&i| reach[i]).collect();
        (order, reach_in_order)
    }
}

impl Clusterer for Optics {
    fn fit_predict(&mut self, x: &Matrix) -> Vec<usize> {
        let n = x.rows();
        if n == 0 {
            return Vec::new();
        }
        let (order, reach) = self.ordering(x);
        // Threshold: quantile of the finite reachabilities.
        let mut finite: Vec<f64> = reach.iter().copied().filter(|r| r.is_finite()).collect();
        if finite.is_empty() {
            return vec![NOISE_LABEL; n];
        }
        finite.sort_by(|a, b| a.total_cmp(b));
        let q = self.extract_quantile.clamp(0.0, 1.0);
        let idx = ((finite.len() - 1) as f64 * q) as usize;
        // ×2 headroom: within-cluster reachability varies by small factors
        // (edge vs interior points) while true density gaps are orders of
        // magnitude — the multiplier absorbs the former, not the latter.
        let eps = finite[idx] * 2.0;

        let mut labels = vec![NOISE_LABEL; n];
        let mut cluster = 0usize;
        let mut open = false;
        for (pos, &point) in order.iter().enumerate() {
            // A reachability spike closes the current cluster and starts a
            // new (provisional, possibly singleton) one.
            if reach[pos] > eps && open {
                cluster += 1;
            }
            labels[point] = cluster;
            open = true;
        }
        // Demote singleton clusters to noise.
        let max_label = labels.iter().copied().filter(|&l| l != NOISE_LABEL).max();
        if let Some(max_label) = max_label {
            let mut counts = vec![0usize; max_label + 1];
            for &l in &labels {
                if l != NOISE_LABEL {
                    counts[l] += 1;
                }
            }
            for l in labels.iter_mut() {
                if *l != NOISE_LABEL && counts[*l] < self.min_pts.min(2) {
                    *l = NOISE_LABEL;
                }
            }
        }
        labels
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::blob_classification;

    #[test]
    fn ordering_visits_every_point_once() {
        let (x, _) = blob_classification(60, 2, 221);
        let (order, reach) = Optics::default().ordering(&x);
        assert_eq!(order.len(), 60);
        assert_eq!(reach.len(), 60);
        let mut sorted = order.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..60).collect::<Vec<_>>());
    }

    #[test]
    fn dense_blobs_get_separate_clusters() {
        let (x, truth) = blob_classification(120, 2, 223);
        let labels = Optics::default().fit_predict(&x);
        // Most points of each true blob should share a cluster id.
        for class in 0..2 {
            let ids: Vec<usize> = (0..truth.len())
                .filter(|&i| truth[i] == class && labels[i] != NOISE_LABEL)
                .map(|i| labels[i])
                .collect();
            assert!(!ids.is_empty());
            let mut counts = std::collections::BTreeMap::new();
            for id in &ids {
                *counts.entry(*id).or_insert(0usize) += 1;
            }
            let dominant = counts.values().copied().max().unwrap();
            assert!(dominant as f64 / ids.len() as f64 > 0.8);
        }
        // The two blobs do not share their dominant cluster.
        let dom = |class: usize| -> usize {
            let mut counts = std::collections::BTreeMap::new();
            for i in 0..truth.len() {
                if truth[i] == class && labels[i] != NOISE_LABEL {
                    *counts.entry(labels[i]).or_insert(0usize) += 1;
                }
            }
            counts.into_iter().max_by_key(|(_, c)| *c).map(|(l, _)| l).unwrap()
        };
        assert_ne!(dom(0), dom(1));
    }

    #[test]
    fn isolated_point_is_noise() {
        let mut rows: Vec<Vec<f64>> = (0..20).map(|i| vec![i as f64 * 0.01, 0.0]).collect();
        rows.push(vec![1e6, 1e6]);
        let x = Matrix::from_rows(&rows);
        let labels = Optics { min_pts: 4, extract_quantile: 0.9 }.fit_predict(&x);
        assert_eq!(labels[20], NOISE_LABEL);
        assert!(labels[..20].iter().all(|&l| l != NOISE_LABEL));
    }

    #[test]
    fn empty_input() {
        assert!(Optics::default().fit_predict(&Matrix::zeros(0, 2)).is_empty());
    }
}
