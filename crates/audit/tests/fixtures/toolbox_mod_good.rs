//! A detector module that is registered, benched and tested.

pub struct Detector {
    pub threshold: f64,
}

impl Detector {
    pub fn new() -> Detector {
        Detector { threshold: 0.5 }
    }

    pub fn detect(&self, values: &[f64]) -> Vec<bool> {
        values.iter().map(|v| *v > self.threshold).collect()
    }
}
