//! JSON run manifests.
//!
//! A [`RunManifest`] is the durable record of one benchmark binary
//! invocation: the effective configuration, every finished span, and the
//! final value of every counter and histogram. Binaries write one as
//! their last act so any run can be audited (and diffed against another
//! seed or scale) without re-running it.

use std::collections::BTreeMap;
use std::io;
use std::path::{Path, PathBuf};

use serde::{Deserialize, Serialize};

use crate::failures::{failures_snapshot, FailureRecord};
use crate::metrics::{counters_snapshot, histograms_snapshot, HistogramSummary};
use crate::span::{snapshot_spans, SpanRecord};

/// The effective run configuration, echoed into the manifest so a result
/// file is self-describing.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunConfig {
    /// Dataset scale factor (`REIN_SCALE`).
    pub scale: f64,
    /// Repeats per configuration (`REIN_REPEATS`).
    pub repeats: u32,
    /// Base RNG seed.
    pub seed: u64,
    /// Labelling budget (cells the oracle may reveal).
    pub label_budget: u64,
}

/// Snapshot of one run's telemetry.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunManifest {
    /// Name of the benchmark binary that produced this run.
    pub binary: String,
    /// Effective configuration.
    pub config: RunConfig,
    /// Every finished span, in completion order.
    pub spans: Vec<SpanRecord>,
    /// Final counter values.
    pub counters: BTreeMap<String, u64>,
    /// Final histogram summaries.
    pub histograms: BTreeMap<String, HistogramSummary>,
    /// Degraded grid cells, sorted by cell identity (absent in
    /// pre-guard manifests, hence the serde default).
    #[serde(default)]
    pub failures: Vec<FailureRecord>,
}

/// Directory manifests are written to, relative to the working
/// directory: `artifacts/telemetry`.
pub fn manifest_dir() -> PathBuf {
    Path::new("artifacts").join("telemetry")
}

impl RunManifest {
    /// Snapshots the global span list and metric registries into a
    /// manifest for `binary`.
    pub fn collect(binary: &str, config: RunConfig) -> Self {
        RunManifest {
            binary: binary.to_string(),
            config,
            spans: snapshot_spans(),
            counters: counters_snapshot(),
            histograms: histograms_snapshot(),
            failures: failures_snapshot(),
        }
    }

    /// The file this manifest belongs at:
    /// `artifacts/telemetry/<binary>-<seed>.json`.
    pub fn path(&self) -> PathBuf {
        manifest_dir().join(format!("{}-{}.json", self.binary, self.config.seed))
    }

    /// Serializes to pretty JSON.
    pub fn to_json(&self) -> String {
        // audit:allow(panic, serializing plain owned data cannot fail)
        serde_json::to_string_pretty(self).expect("manifest serializes")
    }

    /// Writes the manifest to [`RunManifest::path`], creating the
    /// directory if needed, and returns the path written.
    pub fn write(&self) -> io::Result<PathBuf> {
        let path = self.path();
        if let Some(dir) = path.parent() {
            std::fs::create_dir_all(dir)?;
        }
        std::fs::write(&path, self.to_json())?;
        crate::info!("wrote run manifest {}", path.display());
        Ok(path)
    }

    /// Parses a manifest back from JSON.
    pub fn from_json(json: &str) -> Result<Self, String> {
        serde_json::from_str(json).map_err(|e| e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn manifest_path_includes_binary_and_seed() {
        let m = RunManifest {
            binary: "fig2_detection".into(),
            config: RunConfig { scale: 0.05, repeats: 3, seed: 42, label_budget: 100 },
            spans: Vec::new(),
            counters: BTreeMap::new(),
            histograms: BTreeMap::new(),
            failures: Vec::new(),
        };
        assert!(m.path().ends_with("artifacts/telemetry/fig2_detection-42.json"));
    }
}
