//! Positive fixture: Results are handled, and discarding a non-Result
//! is allowed.

fn persist(path: &str, payload: &str) -> Result<(), String> {
    std::fs::write(path, payload).map_err(|e| e.to_string())
}

fn tidy(path: &str) -> usize {
    path.len()
}

pub fn flush(path: &str, payload: &str) -> Result<(), String> {
    persist(path, payload)
}

pub fn cleanup(path: &str) {
    // Discarding a plain value is fine — only Results are guarded.
    let _ = tidy(path);
}
