//! End-to-end integration: dirty data → detection → repair → modeling,
//! asserting the qualitative findings the paper reports.

use rein::core::{
    eval_classifier, eval_regressor, run_repair, Controller, DetectorHarness, Scenario,
    VersionTable,
};
use rein::datasets::{DatasetId, Params};
use rein::detect::DetectorKind;
use rein::ml::model::{ClassifierKind, RegressorKind};
use rein::repair::RepairKind;

fn mean(v: &[f64]) -> f64 {
    let f: Vec<f64> = v.iter().copied().filter(|x| x.is_finite()).collect();
    f.iter().sum::<f64>() / f.len().max(1) as f64
}

#[test]
fn full_pipeline_on_beers_improves_over_dirty() {
    let ds = DatasetId::Beers.generate(&Params::scaled(0.15, 5));
    let harness = DetectorHarness::new(&ds, 100, 1);
    let det = harness.run(&ds, DetectorKind::Raha);
    assert!(det.quality.f1 > 0.5, "raha f1 {}", det.quality.f1);

    let run = run_repair(&ds, &det.mask, RepairKind::MissMix, 1);
    let repaired = run.version.expect("generic repair");

    let dirty = VersionTable::identity(ds.dirty.clone());
    let f1_dirty = mean(&eval_classifier(Scenario::S1, &ds, &dirty, ClassifierKind::Logit, 3, 7));
    let f1_rep = mean(&eval_classifier(Scenario::S1, &ds, &repaired, ClassifierKind::Logit, 3, 7));
    let f1_gt = mean(&eval_classifier(Scenario::S4, &ds, &dirty, ClassifierKind::Logit, 3, 7));
    assert!(f1_rep >= f1_dirty - 0.02, "repair must not hurt: dirty {f1_dirty} repaired {f1_rep}");
    assert!(f1_gt >= f1_rep - 0.05, "ground truth is the upper bound");
}

#[test]
fn ground_truth_repair_reaches_s4_for_regression() {
    let ds = DatasetId::Nasa.generate(&Params::scaled(0.3, 3));
    let run = run_repair(&ds, &ds.mask, RepairKind::GroundTruth, 1);
    let repaired = run.version.unwrap();
    let dirty = VersionTable::identity(ds.dirty.clone());
    let rmse_gtrep =
        mean(&eval_regressor(Scenario::S1, &ds, &repaired, RegressorKind::Ridge, 3, 9));
    let rmse_s4 = mean(&eval_regressor(Scenario::S4, &ds, &dirty, RegressorKind::Ridge, 3, 9));
    assert!(
        (rmse_gtrep - rmse_s4).abs() < 0.2 * rmse_s4.max(1.0),
        "GT-repaired S1 ({rmse_gtrep}) should match S4 ({rmse_s4})"
    );
}

#[test]
fn controller_end_to_end_on_breast_cancer() {
    let ds = DatasetId::BreastCancer.generate(&Params::scaled(0.4, 7));
    let ctrl = Controller { label_budget: 60, seed: 1, ..Controller::default() };
    let detections = ctrl.run_detection(&ds);
    assert!(detections.len() >= 5, "only {} detectors planned", detections.len());
    let best =
        detections.iter().max_by(|a, b| a.quality.f1.total_cmp(&b.quality.f1)).expect("non-empty");
    assert!(best.quality.f1 > 0.5, "best detector f1 {}", best.quality.f1);

    let repairs = ctrl.run_repairs(&ds, best);
    let records = ctrl.repair_records(&ds, best.kind, &repairs);
    // Ground-truth repair has the lowest RMSE of all strategies.
    let gt_rmse = records
        .iter()
        .find(|r| r.repairer == "ground_truth")
        .and_then(|r| r.rmse)
        .expect("gt rmse");
    for rec in &records {
        if let Some(rmse) = rec.rmse {
            assert!(gt_rmse <= rmse + 1e-9, "{} beat GT ({rmse} < {gt_rmse})", rec.repairer);
        }
    }
}

#[test]
fn dirty_version_rmse_is_upper_bound_for_good_strategies() {
    let ds = DatasetId::SmartFactory.generate(&Params::scaled(0.02, 9));
    let harness = DetectorHarness::new(&ds, 60, 2);
    let det = harness.run(&ds, DetectorKind::MaxEntropy);
    let run = run_repair(&ds, &det.mask, RepairKind::MissMix, 3);
    let (repaired, dirty) =
        rein::core::evaluate::repair_quality_numerical(&ds, &run).expect("same-shape repair");
    assert!(
        repaired.rmse < dirty.rmse,
        "miss_mix repaired RMSE {} must beat dirty {}",
        repaired.rmse,
        dirty.rmse
    );
}

#[test]
fn ml_oriented_repair_produces_deployable_model() {
    let ds = DatasetId::BreastCancer.generate(&Params::scaled(0.4, 11));
    let run = run_repair(&ds, &ds.mask, RepairKind::BoostClean, 1);
    let pipeline = run.pipeline.expect("boostclean outputs a model");
    let f1 = pipeline.f1_on(&ds.clean);
    assert!(f1 > 0.8, "boostclean pipeline f1 on clean data {f1}");
}
