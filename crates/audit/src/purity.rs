//! Key-purity certification: every cell-compute entry point is proven
//! **key-pure** — all value-influencing inputs trace to the declared
//! cache-key tuple (`rein_core::cache_key::CellKey`) — or the audit
//! fails with the concrete taint source and call path named.
//!
//! Purity lattice: a region function is `KeyPure` unless it (or
//! anything it transitively calls inside the region) reads an ambient
//! channel — environment, filesystem, wall-clock, global state — in
//! which case it is `Tainted`. Entry-point parameters are key-derived
//! by construction (dataset/version, strategy, seed, scale and guard
//! policy all arrive as arguments), so "no ambient reads" is exactly
//! "all inputs flow through the key". A reasoned `audit:allow`
//! *cleanses* a taint: the annotation is the human proof that the read
//! does not influence the cell's value (e.g. a telemetry toggle), and
//! the certificate is computed over unsuppressed taints only.
//!
//! Four rules live here (catalog in DESIGN.md §6h):
//! `cache-key-completeness` and `env-read-confinement` (blocking),
//! plus the dataflow module's `hot-loop-alloc` (advisory) and
//! `float-reduce-order` (blocking), orchestrated from one pass.

use std::collections::BTreeMap;

use crate::callgraph::CallGraph;
use crate::dataflow::{
    call_path, compute_region, compute_region_from, display_name, entry_nodes, env_read,
    float_reduce_order, hot_loop_alloc, taint_sources, workspace_statics,
};
use crate::lexer::{lex, SourceLine};
use crate::parser::ParsedFile;
use crate::rules::AllowTable;
use crate::semantic::{Sink, WorkspaceModel};

/// The declared cache-key tuple, in [`CellKey`] field order. The
/// `cache-key-completeness` rule flags any `CellKey` literal that
/// initializes a field outside this list, so adding a key component
/// forces this table (and the §6h docs) to move in lockstep with the
/// struct — the certificate is always relative to the real key.
///
/// [`CellKey`]: https://docs.rs/rein-core (crates/core/src/cache_key.rs)
pub const CACHE_KEY_FIELDS: [&str; 6] =
    ["dataset", "dataset_version", "strategy", "seed", "scale", "guard_policy"];

/// The declared key tuple, exposed for docs and the dogfood tests.
pub fn cache_key_fields() -> &'static [&'static str] {
    &CACHE_KEY_FIELDS
}

/// The one module allowed to read environment variables in library
/// code: rein-bench's config layer, which snapshots `REIN_SCALE` &co.
/// once into `OnceLock` statics. Everywhere else a `std::env::var`
/// couples behavior to ambient process state the cache key cannot see.
/// Binaries stay exempt (they are the CLI surface).
pub const ENV_READ_ALLOWED: [&str; 1] = ["crates/bench/src/lib.rs"];

/// The env-read allowlist, exposed so the dogfood test pins its size.
pub fn env_read_allowlist() -> &'static [&'static str] {
    &ENV_READ_ALLOWED
}

/// Purity verdict for one entry point, for the public certificate API.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EntryCertificate {
    /// Entry-point display name (`Controller::run_grid`).
    pub entry: String,
    /// File and line of the entry-point definition.
    pub file: String,
    pub line: usize,
    /// `true` when no unsuppressed ambient read is reachable.
    pub key_pure: bool,
    /// Human-readable descriptions of the unsuppressed taints
    /// (empty when key-pure), sorted.
    pub taints: Vec<String>,
}

/// Certifies every entry point against the declared cache key:
/// recomputes the per-entry compute region and lists the ambient reads
/// that survive suppression. The workspace dogfood test asserts every
/// certificate comes back `key_pure` — which, combined with zero
/// unsuppressed `cache-key-completeness` findings, is the proof the
/// incremental store's replay is sound.
pub fn certify(model: &WorkspaceModel) -> Vec<EntryCertificate> {
    let parsed: Vec<(String, &ParsedFile)> =
        model.files.iter().map(|f| (f.path.clone(), &f.parsed)).collect();
    let g = CallGraph::build(&parsed);
    let statics = workspace_statics(model);
    let allows: BTreeMap<&str, &AllowTable> =
        model.files.iter().map(|f| (f.path.as_str(), &f.allows)).collect();
    let lines: BTreeMap<&str, Vec<SourceLine>> =
        model.files.iter().map(|f| (f.path.as_str(), lex(&f.source))).collect();
    let mut out = Vec::new();
    for entry in entry_nodes(&g) {
        let region = compute_region_from(&g, &[entry]);
        let mut taints = Vec::new();
        for (ix, n) in g.nodes.iter().enumerate() {
            if !region.member[ix] {
                continue;
            }
            let Some(ls) = lines.get(n.file.as_str()) else { continue };
            for t in taint_sources(n, &statics, ls) {
                let suppressed = allows
                    .get(n.file.as_str())
                    .is_some_and(|a| a.allows(t.line, "cache-key-completeness"));
                if suppressed {
                    continue;
                }
                taints.push(format!(
                    "{} read of {} at {}:{} via {}",
                    t.kind,
                    t.what,
                    n.file,
                    t.line,
                    call_path(&g, &region, ix)
                ));
            }
        }
        taints.sort();
        taints.dedup();
        let n = &g.nodes[entry];
        out.push(EntryCertificate {
            entry: display_name(n),
            file: n.file.clone(),
            line: n.func.line,
            key_pure: taints.is_empty(),
            taints,
        });
    }
    out
}

/// Runs the purity rules. Called from `semantic::analyze`.
pub(crate) fn analyze_purity(model: &WorkspaceModel, g: &CallGraph, sink: &mut Sink) {
    let region = compute_region(g);
    let statics = workspace_statics(model);
    let lines: BTreeMap<&str, Vec<SourceLine>> =
        model.files.iter().map(|f| (f.path.as_str(), lex(&f.source))).collect();

    // cache-key-completeness: ambient reads inside the compute region.
    for (ix, n) in g.nodes.iter().enumerate() {
        if !region.member[ix] {
            continue;
        }
        let Some(ls) = lines.get(n.file.as_str()) else { continue };
        for t in taint_sources(n, &statics, ls) {
            sink.emit(
                &n.file,
                t.line,
                "cache-key-completeness",
                format!(
                    "{} read of {} reaches the cell computation without \
                     flowing through the declared cache key \
                     (CellKey: {}) — call path: {}; thread the value \
                     through the key or cleanse with a reasoned audit:allow",
                    t.kind,
                    t.what,
                    CACHE_KEY_FIELDS.join("/"),
                    call_path(g, &region, ix),
                ),
            );
        }
    }

    // Key drift: a CellKey literal initializing a field the audit does
    // not know about means the struct grew and the certificate is
    // stale.
    for n in &g.nodes {
        for sl in &n.func.struct_lits {
            if sl.name != "CellKey" {
                continue;
            }
            for (field, _) in &sl.fields {
                if !CACHE_KEY_FIELDS.contains(&field.as_str()) {
                    sink.emit(
                        &n.file,
                        sl.line,
                        "cache-key-completeness",
                        format!(
                            "CellKey literal initializes field `{field}` that \
                             is not in the audit's declared key tuple — update \
                             purity::CACHE_KEY_FIELDS (and DESIGN.md §6h) so \
                             the certificate covers the new component"
                        ),
                    );
                }
            }
        }
    }

    // env-read-confinement: every env read in library code outside the
    // config allowlist module, region or not.
    for n in &g.nodes {
        if !n.lib_scope() || ENV_READ_ALLOWED.contains(&n.file.as_str()) {
            continue;
        }
        for call in &n.func.calls {
            if let Some(what) = env_read(call) {
                sink.emit(
                    &n.file,
                    call.line,
                    "env-read-confinement",
                    format!(
                        "`{what}` outside the config allowlist module \
                         ({}) — snapshot the value once in rein-bench's \
                         config layer and pass it down as a parameter",
                        ENV_READ_ALLOWED.join(", "),
                    ),
                );
            }
        }
    }

    hot_loop_alloc(model, sink);
    float_reduce_order(g, sink);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model(files: &[(&str, &str)]) -> WorkspaceModel {
        let owned: Vec<(String, String)> =
            files.iter().map(|(p, s)| (p.to_string(), s.to_string())).collect();
        WorkspaceModel::build(&owned)
    }

    #[test]
    fn certify_names_taint_and_path() {
        let m = model(&[(
            "crates/core/src/controller.rs",
            "impl Controller { pub fn run_grid(&self) { helper(); } }\n\
             fn helper() { let v = std::env::var(\"REIN_X\"); }\n",
        )]);
        let certs = certify(&m);
        assert_eq!(certs.len(), 1);
        let c = &certs[0];
        assert_eq!(c.entry, "Controller::run_grid");
        assert!(!c.key_pure);
        assert_eq!(c.taints.len(), 1);
        assert!(c.taints[0].contains("environment read of env::var"));
        assert!(c.taints[0].contains("Controller::run_grid -> helper"), "{}", c.taints[0]);
    }

    #[test]
    fn allow_cleanses_the_certificate() {
        let m = model(&[(
            "crates/core/src/controller.rs",
            "impl Controller { pub fn run_grid(&self) { helper(); } }\n\
             // audit:allow(cache-key-completeness, toggle is render-only, never a value input)\n\
             fn helper() { let v = std::env::var(\"REIN_X\"); }\n",
        )]);
        let certs = certify(&m);
        assert!(certs[0].key_pure, "{:?}", certs[0].taints);
    }

    #[test]
    fn pure_entry_certifies_clean() {
        let m = model(&[(
            "crates/core/src/evaluate.rs",
            "pub fn detect_with_context(seed: u64, scale: f64) -> u64 { seed + scale as u64 }\n",
        )]);
        let certs = certify(&m);
        assert_eq!(certs.len(), 1);
        assert!(certs[0].key_pure);
        assert_eq!(certs[0].entry, "detect_with_context");
    }
}
