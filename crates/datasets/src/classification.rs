//! Generators for the classification datasets of Table 4: Beers, Citation,
//! Adult, Breast Cancer and Smart Factory.

use rand::prelude::*;
use rand::rngs::StdRng;
use rein_constraints::fd::FunctionalDependency;
use rein_data::rng::{derive_seed, randn};
use rein_data::{ColumnRole, ColumnType, MlTask, Value};
use rein_errors::compose::ErrorSpec;

use crate::common::{finish, GeneratedDataset};
use crate::gen::*;

/// Beers (2410 × 11, business, C): craft-beer catalogue with FDs
/// `brewery_id → brewery_name` and `city → state`; errors are missing
/// values, rule violations and typos at rate 0.16 (Table 4).
pub fn beers(p: &Params) -> GeneratedDataset {
    let n = p.rows(2410);
    let mut rng = StdRng::seed_from_u64(derive_seed(p.seed, 1));

    let breweries = [
        ("Hop Works", "Portland", "OR"),
        ("Iron Kettle", "Denver", "CO"),
        ("Blue Harbor", "San Diego", "CA"),
        ("North Peak", "Seattle", "WA"),
        ("Old Mill", "Austin", "TX"),
        ("River Bend", "Chicago", "IL"),
        ("Granite Top", "Boston", "MA"),
        ("Sunset Valley", "Phoenix", "AZ"),
    ];
    let mut id = Vec::with_capacity(n);
    let mut brewery_id = Vec::with_capacity(n);
    let mut brewery_name = Vec::with_capacity(n);
    let mut city = Vec::with_capacity(n);
    let mut state = Vec::with_capacity(n);
    let mut name = Vec::with_capacity(n);
    let mut abv = Vec::with_capacity(n);
    let mut ibu = Vec::with_capacity(n);
    let mut ounces = Vec::with_capacity(n);
    let mut rating = Vec::with_capacity(n);
    let mut style = Vec::with_capacity(n);

    let adjectives = ["Golden", "Dark", "Hazy", "Wild", "Smooth", "Bold"];
    let nouns = ["Trail", "Anchor", "Summit", "Harvest", "Ember", "Tide"];
    for i in 0..n {
        let b = rng.random_range(0..breweries.len());
        let (bname, bcity, bstate) = breweries[b];
        // Style drives abv/ibu (so the label is learnable from features).
        let s = rng.random_range(0..3u8);
        let (style_name, abv_mean, ibu_mean) = match s {
            0 => ("IPA", 6.8, 65.0),
            1 => ("Stout", 8.2, 35.0),
            _ => ("Lager", 4.8, 18.0),
        };
        id.push(Value::Int(i as i64));
        brewery_id.push(Value::Int(b as i64));
        brewery_name.push(Value::str(bname));
        city.push(Value::str(bcity));
        state.push(Value::str(bstate));
        name.push(Value::str(format!(
            "{} {} {}",
            adjectives[rng.random_range(0..adjectives.len())],
            nouns[rng.random_range(0..nouns.len())],
            i
        )));
        abv.push(Value::float(abv_mean + 0.5 * randn(&mut rng)));
        ibu.push(Value::float((ibu_mean + 6.0 * randn(&mut rng)).max(1.0)));
        ounces.push(Value::float(if rng.random_bool(0.7) { 12.0 } else { 16.0 }));
        rating.push(Value::float((3.5 + 0.6 * randn(&mut rng)).clamp(1.0, 5.0)));
        style.push(Value::str(style_name));
    }

    let clean = TableBuilder::new()
        .column("id", ColumnType::Int, ColumnRole::Id, id)
        .column("brewery_id", ColumnType::Int, ColumnRole::Feature, brewery_id)
        .column("brewery_name", ColumnType::Str, ColumnRole::Feature, brewery_name)
        .column("city", ColumnType::Str, ColumnRole::Feature, city)
        .column("state", ColumnType::Str, ColumnRole::Feature, state)
        .column("name", ColumnType::Str, ColumnRole::Feature, name)
        .column("abv", ColumnType::Float, ColumnRole::Feature, abv)
        .column("ibu", ColumnType::Float, ColumnRole::Feature, ibu)
        .column("ounces", ColumnType::Float, ColumnRole::Feature, ounces)
        .column("rating", ColumnType::Float, ColumnRole::Feature, rating)
        .column("style", ColumnType::Str, ColumnRole::Label, style)
        .build();

    let fds = vec![FunctionalDependency::new([1], 2), FunctionalDependency::new([3], 4)];
    let specs = [
        ErrorSpec::ExplicitMissing { cols: vec![6, 7], rate: 0.25 },
        ErrorSpec::FdViolations { fd: fds[0].clone(), rate: 0.18 },
        ErrorSpec::FdViolations { fd: fds[1].clone(), rate: 0.18 },
        ErrorSpec::Typos { cols: vec![5, 8, 9], rate: 0.2 },
    ];
    finish("beers", "Business", MlTask::Classification, clean, &specs, 0.16, p.seed, fds, vec![0])
}

/// Citation (5005 × 3, research, C): publication records with fuzzy
/// duplicates and mislabels at rate 0.2. (The real dataset has 2 columns;
/// a label column is added so the classification task is self-contained —
/// recorded as a substitution in DESIGN.md.)
pub fn citation(p: &Params) -> GeneratedDataset {
    let n = p.rows(5005);
    let mut rng = StdRng::seed_from_u64(derive_seed(p.seed, 2));
    let topics = [
        ("data cleaning", "databases"),
        ("query optimization", "databases"),
        ("transaction processing", "databases"),
        ("neural networks", "machine learning"),
        ("gradient boosting", "machine learning"),
        ("active learning", "machine learning"),
    ];
    let mut title = Vec::with_capacity(n);
    let mut year = Vec::with_capacity(n);
    let mut venue = Vec::with_capacity(n);
    for i in 0..n {
        let (topic, field) = topics[rng.random_range(0..topics.len())];
        // Year correlates with field so the classifier has signal beyond
        // the title words.
        let base_year: i64 = if field == "databases" { 2005 } else { 2015 };
        title.push(Value::str(format!("A study of {topic} volume {i}")));
        year.push(Value::Int(base_year + rng.random_range(0..8i64)));
        venue.push(Value::str(field));
    }
    let clean = TableBuilder::new()
        .column("title", ColumnType::Str, ColumnRole::Feature, title)
        .column("year", ColumnType::Int, ColumnRole::Feature, year)
        .column("field", ColumnType::Str, ColumnRole::Label, venue)
        .build();

    let specs = [
        ErrorSpec::Duplicates { rate: 0.35, fuzz: 0.4 },
        ErrorSpec::Mislabels { label_col: 2, rate: 0.12 },
    ];
    finish(
        "citation",
        "Research",
        MlTask::Classification,
        clean,
        &specs,
        0.2,
        p.seed,
        vec![],
        vec![0],
    )
}

/// Adult (45223 × 15, social, C): census records with the
/// `education → education_num` FD; rule violations and outliers at the
/// paper's unusually high 0.58 error rate.
pub fn adult(p: &Params) -> GeneratedDataset {
    let n = p.rows(45223);
    let mut rng = StdRng::seed_from_u64(derive_seed(p.seed, 3));

    let educations = [
        ("Bachelors", 13i64),
        ("HS-grad", 9),
        ("Masters", 14),
        ("Some-college", 10),
        ("Doctorate", 16),
        ("11th", 7),
    ];
    let workclasses = ["Private", "Self-emp", "Federal-gov", "Local-gov"];
    let maritals = ["Married", "Never-married", "Divorced", "Widowed"];
    let occupations = ["Tech", "Sales", "Exec", "Craft", "Service", "Clerical"];
    let relationships = ["Husband", "Wife", "Own-child", "Not-in-family"];
    let races = ["White", "Black", "Asian", "Other"];
    let countries = ["United-States", "Mexico", "Germany", "India", "Canada"];

    let mut cols: Vec<Vec<Value>> = (0..15).map(|_| Vec::with_capacity(n)).collect();
    for _ in 0..n {
        let age = rng.random_range(17..80i64);
        let edu = rng.random_range(0..educations.len());
        let hours = rng.random_range(20..60i64);
        let gain = if rng.random_bool(0.1) { rng.random_range(1000.0..20000.0) } else { 0.0 };
        let loss = if rng.random_bool(0.05) { rng.random_range(500.0..4000.0) } else { 0.0 };
        let fnlwgt = 100_000.0 + 50_000.0 * randn(&mut rng).abs();
        // Planted income rule: education, age, hours and gains matter.
        let z = 0.25 * educations[edu].1 as f64
            + 0.03 * age as f64
            + 0.05 * hours as f64
            + gain / 4000.0
            - 7.5
            + randn(&mut rng);
        let income = if z > 0.0 { ">50K" } else { "<=50K" };
        let sex = if rng.random_bool(0.66) { "Male" } else { "Female" };

        cols[0].push(Value::Int(age));
        cols[1].push(Value::str(workclasses[rng.random_range(0..workclasses.len())]));
        cols[2].push(Value::float(fnlwgt));
        cols[3].push(Value::str(educations[edu].0));
        cols[4].push(Value::Int(educations[edu].1));
        cols[5].push(Value::str(maritals[rng.random_range(0..maritals.len())]));
        cols[6].push(Value::str(occupations[rng.random_range(0..occupations.len())]));
        cols[7].push(Value::str(relationships[rng.random_range(0..relationships.len())]));
        cols[8].push(Value::str(races[rng.random_range(0..races.len())]));
        cols[9].push(Value::str(sex));
        cols[10].push(Value::float(gain));
        cols[11].push(Value::float(loss));
        cols[12].push(Value::Int(hours));
        cols[13].push(Value::str(countries[rng.random_range(0..countries.len())]));
        cols[14].push(Value::str(income));
    }
    let mut it = cols.into_iter();
    // audit:allow(panic, the loop above filled exactly 15 columns)
    let mut col = move || it.next().expect("15 columns");
    let clean = TableBuilder::new()
        .column("age", ColumnType::Int, ColumnRole::Feature, col())
        .column("workclass", ColumnType::Str, ColumnRole::Feature, col())
        .column("fnlwgt", ColumnType::Float, ColumnRole::Feature, col())
        .column("education", ColumnType::Str, ColumnRole::Feature, col())
        .column("education_num", ColumnType::Int, ColumnRole::Feature, col())
        .column("marital_status", ColumnType::Str, ColumnRole::Feature, col())
        .column("occupation", ColumnType::Str, ColumnRole::Feature, col())
        .column("relationship", ColumnType::Str, ColumnRole::Feature, col())
        .column("race", ColumnType::Str, ColumnRole::Feature, col())
        .column("sex", ColumnType::Str, ColumnRole::Feature, col())
        .column("capital_gain", ColumnType::Float, ColumnRole::Feature, col())
        .column("capital_loss", ColumnType::Float, ColumnRole::Feature, col())
        .column("hours_per_week", ColumnType::Int, ColumnRole::Feature, col())
        .column("native_country", ColumnType::Str, ColumnRole::Feature, col())
        .column("income", ColumnType::Str, ColumnRole::Label, col())
        .build();

    let fds = vec![FunctionalDependency::new([3], 4)];
    let specs = [
        ErrorSpec::FdViolations { fd: fds[0].clone(), rate: 0.8 },
        ErrorSpec::Outliers { cols: vec![0, 2, 10, 11, 12], rate: 0.9, degree: 4.0 },
    ];
    finish("adult", "Social", MlTask::Classification, clean, &specs, 0.58, p.seed, fds, vec![])
}

/// Breast Cancer (700 × 12, healthcare, C): cytology measurements with a
/// planted benign/malignant cluster structure; missing values, typos and
/// outliers at rate 0.08. The label column is numeric-coded (2 = benign,
/// 4 = malignant), as in the UCI original.
pub fn breast_cancer(p: &Params) -> GeneratedDataset {
    let n = p.rows(700);
    let mut rng = StdRng::seed_from_u64(derive_seed(p.seed, 4));
    let feature_names = [
        "clump_thickness",
        "cell_size_uniformity",
        "cell_shape_uniformity",
        "marginal_adhesion",
        "single_epi_cell_size",
        "bare_nuclei",
        "bland_chromatin",
        "normal_nucleoli",
        "mitoses",
        "nucleus_density",
        "border_irregularity",
    ];
    let mut features: Vec<Vec<Value>> =
        (0..feature_names.len()).map(|_| Vec::with_capacity(n)).collect();
    let mut label = Vec::with_capacity(n);
    for _ in 0..n {
        let malignant = rng.random_bool(0.35);
        let centre = if malignant { 7.0 } else { 3.0 };
        for f in features.iter_mut() {
            f.push(Value::float((centre + 1.5 * randn(&mut rng)).clamp(1.0, 10.0)));
        }
        label.push(Value::Int(if malignant { 4 } else { 2 }));
    }
    let mut b = TableBuilder::new();
    for (name, values) in feature_names.iter().zip(features) {
        b = b.column(name, ColumnType::Float, ColumnRole::Feature, values);
    }
    let clean = b.column("class", ColumnType::Int, ColumnRole::Label, label).build();

    let feature_cols: Vec<usize> = (0..11).collect();
    let specs = [
        ErrorSpec::ExplicitMissing { cols: feature_cols.clone(), rate: 0.03 },
        ErrorSpec::Typos { cols: feature_cols.clone(), rate: 0.02 },
        ErrorSpec::Outliers { cols: feature_cols, rate: 0.03, degree: 4.0 },
    ];
    finish(
        "breast_cancer",
        "Healthcare",
        MlTask::Classification,
        clean,
        &specs,
        0.08,
        p.seed,
        vec![],
        vec![],
    )
}

/// Smart Factory (23645 × 19, manufacturing, C): high-storage-system
/// sensor channels with a planted machine-state cluster structure; missing
/// values and outliers at rate 0.153.
pub fn smart_factory(p: &Params) -> GeneratedDataset {
    let n = p.rows(23645);
    let mut rng = StdRng::seed_from_u64(derive_seed(p.seed, 5));
    let d = 18;
    let (features, assignment) = cluster_features(&mut rng, n, d, 4, 1.2);
    let mut b = TableBuilder::new();
    for (i, f) in features.into_iter().enumerate() {
        b = b.column(&format!("sensor_{i:02}"), ColumnType::Float, ColumnRole::Feature, floats(f));
    }
    let labels: Vec<Value> = assignment.into_iter().map(|c| Value::Int(c as i64)).collect();
    let clean = b.column("machine_state", ColumnType::Int, ColumnRole::Label, labels).build();

    let sensor_cols: Vec<usize> = (0..18).collect();
    let specs = [
        ErrorSpec::ExplicitMissing { cols: sensor_cols.clone(), rate: 0.09 },
        ErrorSpec::Outliers { cols: sensor_cols, rate: 0.08, degree: 4.0 },
    ];
    finish(
        "smart_factory",
        "Manufacturing",
        MlTask::Classification,
        clean,
        &specs,
        0.153,
        p.seed,
        vec![],
        vec![],
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use rein_constraints::fd;

    fn small() -> Params {
        Params::scaled(0.05, 42)
    }

    #[test]
    fn beers_shape_and_signals() {
        let d = beers(&small());
        assert_eq!(d.clean.n_cols(), 11);
        assert_eq!(d.clean.schema().numeric_indices().len(), 6);
        assert_eq!(d.clean.schema().label_index(), Some(10));
        // FDs hold on the clean data.
        for f in &d.fds {
            assert!(fd::holds(&d.clean, f), "{:?} violated on clean data", f);
        }
        // Error rate near target.
        assert!((d.error_rate() - 0.16).abs() < 0.08, "rate {}", d.error_rate());
        assert_eq!(d.info.task, rein_data::MlTask::Classification);
    }

    #[test]
    fn beers_dirty_violates_fds() {
        let d = beers(&small());
        let violations = fd::all_fd_violations(&d.dirty, &d.fds);
        assert!(!violations.is_empty(), "injected rule violations must be detectable");
    }

    #[test]
    fn citation_has_duplicates_and_mislabels() {
        let d = citation(&small());
        assert!(!d.duplicate_pairs.is_empty());
        assert!(d.dirty.n_rows() > d.clean.n_rows());
        assert!((d.error_rate() - 0.2).abs() < 0.15, "rate {}", d.error_rate());
        assert_eq!(d.key_columns, vec![0]);
    }

    #[test]
    fn adult_high_error_rate() {
        let d = adult(&Params::scaled(0.01, 7));
        assert_eq!(d.clean.n_cols(), 15);
        assert!(d.error_rate() > 0.35, "rate {}", d.error_rate());
        assert!(fd::holds(&d.clean, &d.fds[0]));
    }

    #[test]
    fn breast_cancer_low_error_rate() {
        let d = breast_cancer(&Params::scaled(0.5, 9));
        assert_eq!(d.clean.n_cols(), 12);
        assert!((d.error_rate() - 0.08).abs() < 0.05, "rate {}", d.error_rate());
        // Label is numeric 2/4.
        let label_col = d.clean.schema().label_index().unwrap();
        for v in d.clean.column(label_col) {
            let x = v.as_i64().unwrap();
            assert!(x == 2 || x == 4);
        }
    }

    #[test]
    fn smart_factory_clusters_are_learnable() {
        let d = smart_factory(&Params::scaled(0.02, 11));
        assert_eq!(d.clean.n_cols(), 19);
        assert!((d.error_rate() - 0.153).abs() < 0.08, "rate {}", d.error_rate());
    }

    #[test]
    fn generators_are_deterministic() {
        let a = beers(&small());
        let b = beers(&small());
        assert_eq!(a.clean, b.clean);
        assert_eq!(a.dirty, b.dirty);
    }
}
