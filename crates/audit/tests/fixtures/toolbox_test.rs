//! Integration-test stub that exercises the registered detector.

use rein_detect::good;

#[test]
fn detector_flags_outliers() {
    let d = good::Detector::new();
    assert_eq!(d.detect(&[0.1, 0.9]), vec![false, true]);
}
