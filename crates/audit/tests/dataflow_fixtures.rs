//! Fixture-based tests for the purity/taint dataflow rules: each rule
//! has a negative fixture it must flag, a positive fixture it must
//! pass, and a suppressed variant, plus the two interprocedural cases
//! the engine exists for — taint through a closure capture and taint
//! through a struct-literal field initializer.

use std::path::Path;

use rein_audit::report::audit_sources;
use rein_audit::semantic::SemanticOutcome;
use rein_audit::{analyze, certify, Violation, WorkspaceModel};

/// Parses the named fixtures under their virtual workspace paths and
/// runs the semantic pass (which includes the dataflow rules).
fn analyze_fixtures(files: &[(&str, &str)]) -> SemanticOutcome {
    let sources: Vec<(String, String)> = files
        .iter()
        .map(|(fixture, vpath)| {
            let path = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures").join(fixture);
            let source = std::fs::read_to_string(&path)
                .unwrap_or_else(|e| panic!("read {}: {e}", path.display()));
            (vpath.to_string(), source)
        })
        .collect();
    let model = WorkspaceModel::build(&sources);
    let errors = model.parse_errors();
    assert!(errors.is_empty(), "fixtures must parse cleanly: {errors:?}");
    analyze(&model)
}

fn analyze_inline(files: &[(&str, &str)]) -> SemanticOutcome {
    let sources: Vec<(String, String)> =
        files.iter().map(|(p, s)| (p.to_string(), s.to_string())).collect();
    let model = WorkspaceModel::build(&sources);
    let errors = model.parse_errors();
    assert!(errors.is_empty(), "inline sources must parse cleanly: {errors:?}");
    analyze(&model)
}

fn of_rule<'a>(violations: &'a [Violation], rule: &str) -> Vec<&'a Violation> {
    violations.iter().filter(|v| v.rule == rule).collect()
}

// --------------------------------------------------- cache-key-completeness

#[test]
fn cache_key_flags_ambient_reads_reaching_the_entry_point() {
    let out = analyze_fixtures(&[("cachekey_bad.rs", "crates/core/src/fixture.rs")]);
    let hits = of_rule(&out.violations, "cache-key-completeness");
    // The env read in `helper` and the static read in `tally`.
    assert_eq!(hits.len(), 2, "got {:?}", out.violations);
    assert!(hits.iter().any(|v| v.message.contains("environment")), "got {hits:?}");
    assert!(hits.iter().any(|v| v.message.contains("DRAWS")), "got {hits:?}");
    // Every finding names the concrete call path from the entry point.
    assert!(hits.iter().all(|v| v.message.contains("Controller::run_grid ->")), "got {hits:?}");
}

#[test]
fn cache_key_traces_taint_through_closure_captures() {
    let out = analyze_fixtures(&[("cachekey_closure_bad.rs", "crates/core/src/fixture.rs")]);
    let hits = of_rule(&out.violations, "cache-key-completeness");
    assert_eq!(hits.len(), 1, "got {:?}", out.violations);
    assert!(hits[0].message.contains("env::var"), "got {hits:?}");
}

#[test]
fn cache_key_traces_taint_through_struct_literal_fields() {
    let out = analyze_fixtures(&[("cachekey_field_bad.rs", "crates/core/src/fixture.rs")]);
    let hits = of_rule(&out.violations, "cache-key-completeness");
    assert_eq!(hits.len(), 1, "got {:?}", out.violations);
    assert!(hits[0].message.contains("BUMP"), "got {hits:?}");
}

#[test]
fn cache_key_passes_a_parameter_pure_entry_point() {
    let out = analyze_fixtures(&[("cachekey_ok.rs", "crates/core/src/fixture.rs")]);
    assert!(of_rule(&out.violations, "cache-key-completeness").is_empty(), "{:?}", out.violations);
}

#[test]
fn cache_key_suppression_cleanses_the_taint() {
    let out = analyze_inline(&[(
        "crates/core/src/fixture.rs",
        "pub fn detect_with_context() -> u64 {\n\
         // audit:allow(cache-key-completeness, value only picks a log label)\n\
         std::env::var(\"X\").map(|v| v.len() as u64).unwrap_or(0)\n\
         }\n",
    )]);
    assert!(of_rule(&out.violations, "cache-key-completeness").is_empty(), "{:?}", out.violations);
    assert!(out.suppressed >= 1);
}

#[test]
fn certify_reports_the_same_fixture_taint() {
    let sources = vec![(
        "crates/core/src/fixture.rs".to_string(),
        std::fs::read_to_string(
            Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/cachekey_bad.rs"),
        )
        .expect("fixture exists"),
    )];
    let model = WorkspaceModel::build(&sources);
    let certs = certify(&model);
    assert_eq!(certs.len(), 1);
    assert_eq!(certs[0].entry, "Controller::run_grid");
    assert!(!certs[0].key_pure);
    assert_eq!(certs[0].taints.len(), 2, "got {:?}", certs[0].taints);
}

// ----------------------------------------------------- env-read-confinement

#[test]
fn env_read_flags_library_code_outside_the_allowlist() {
    let out = analyze_fixtures(&[("env_read_bad.rs", "crates/repair/src/fixture.rs")]);
    let hits = of_rule(&out.violations, "env-read-confinement");
    assert_eq!(hits.len(), 1, "got {:?}", out.violations);
    assert!(hits[0].message.contains("env::var"), "got {hits:?}");
}

#[test]
fn env_read_passes_the_bench_config_layer_and_binaries() {
    for vpath in ["crates/bench/src/lib.rs", "crates/bench/src/bin/fixture.rs"] {
        let out = analyze_fixtures(&[("env_read_bad.rs", vpath)]);
        assert!(
            of_rule(&out.violations, "env-read-confinement").is_empty(),
            "{vpath}: {:?}",
            out.violations
        );
    }
}

#[test]
fn env_read_suppression_works() {
    let out = analyze_inline(&[(
        "crates/repair/src/fixture.rs",
        "pub fn scale_override() -> usize {\n\
         // audit:allow(env-read-confinement, read once at startup, documented)\n\
         std::env::var(\"S\").ok().and_then(|v| v.parse().ok()).unwrap_or(1)\n\
         }\n",
    )]);
    assert!(of_rule(&out.violations, "env-read-confinement").is_empty(), "{:?}", out.violations);
}

// --------------------------------------------------------- hot-loop-alloc

#[test]
fn hot_loop_alloc_is_a_non_blocking_advisory() {
    let out = analyze_fixtures(&[("hotloop_bad.rs", "crates/detect/src/fixture.rs")]);
    // Advisory, never a violation.
    assert!(of_rule(&out.violations, "hot-loop-alloc").is_empty(), "{:?}", out.violations);
    let hits = of_rule(&out.advisories, "hot-loop-alloc");
    assert_eq!(hits.len(), 1, "got {:?}", out.advisories);
    assert!(hits[0].message.contains(".to_string()"), "got {hits:?}");
    // The Vec::new before the loop is not flagged.
    assert!(hits.iter().all(|v| v.line != 4), "got {hits:?}");
}

#[test]
fn hot_loop_alloc_ignores_code_outside_kernel_crates() {
    let out = analyze_fixtures(&[("hotloop_bad.rs", "crates/core/src/fixture.rs")]);
    assert!(of_rule(&out.advisories, "hot-loop-alloc").is_empty(), "{:?}", out.advisories);
}

// ------------------------------------------------------- float-reduce-order

#[test]
fn float_reduce_flags_sum_off_a_parallel_iterator() {
    let out = analyze_fixtures(&[("float_reduce_bad.rs", "crates/core/src/fixture.rs")]);
    let hits = of_rule(&out.violations, "float-reduce-order");
    assert_eq!(hits.len(), 1, "got {:?}", out.violations);
    assert!(hits[0].message.contains("sum"), "got {hits:?}");
}

#[test]
fn float_reduce_passes_collect_plus_registered_merge() {
    let out = analyze_fixtures(&[("float_reduce_ok.rs", "crates/core/src/fixture.rs")]);
    assert!(of_rule(&out.violations, "float-reduce-order").is_empty(), "{:?}", out.violations);
}

#[test]
fn float_reduce_suppression_works() {
    let out = analyze_inline(&[(
        "crates/core/src/fixture.rs",
        "pub fn mean(xs: &[f64]) -> f64 {\n\
         // audit:allow(float-reduce-order, inputs are sanitized to exact dyadics)\n\
         xs.par_iter().map(|x| x * 0.5).sum::<f64>()\n\
         }\n",
    )]);
    assert!(of_rule(&out.violations, "float-reduce-order").is_empty(), "{:?}", out.violations);
}

// ------------------------------------------------------------- stale-allow

#[test]
fn stale_allow_reports_annotations_that_suppress_nothing() {
    let report = audit_sources(vec![(
        "crates/core/src/x.rs".to_string(),
        "// audit:allow(hash-iter, a reason that outlived its finding)\npub fn f() {}\n"
            .to_string(),
    )]);
    let stale: Vec<_> = report.advisories.iter().filter(|v| v.rule == "stale-allow").collect();
    assert_eq!(stale.len(), 1, "got {:?}", report.advisories);
    assert_eq!(stale[0].line, 1);
    assert!(report.clean(), "stale-allow is non-blocking by default");
}

#[test]
fn stale_allow_stays_quiet_for_consumed_annotations() {
    let report = audit_sources(vec![(
        "crates/core/src/x.rs".to_string(),
        "// audit:allow(hash-iter, counting only, never iterated)\n\
         use std::collections::HashMap;\npub fn f() {}\n"
            .to_string(),
    )]);
    assert!(
        report.advisories.iter().all(|v| v.rule != "stale-allow"),
        "got {:?}",
        report.advisories
    );
    assert_eq!(report.suppressed, 1);
}

#[test]
fn stale_allow_is_itself_suppressible() {
    let report = audit_sources(vec![(
        "crates/core/src/x.rs".to_string(),
        "// audit:allow(stale-allow, kept as a template for the next port)\n\
         // audit:allow(hash-iter, a reason that outlived its finding)\npub fn f() {}\n"
            .to_string(),
    )]);
    assert!(
        report.advisories.iter().all(|v| v.rule != "stale-allow"),
        "got {:?}",
        report.advisories
    );
}

#[test]
fn deny_stale_promotes_the_advisory_to_blocking() {
    let mut report = audit_sources(vec![(
        "crates/core/src/x.rs".to_string(),
        "// audit:allow(hash-iter, a reason that outlived its finding)\npub fn f() {}\n"
            .to_string(),
    )]);
    assert!(report.clean());
    report.deny_stale();
    assert!(!report.clean());
    assert_eq!(report.violations.len(), 1);
    assert_eq!(report.violations[0].rule, "stale-allow");
    assert!(report.advisories.iter().all(|v| v.rule != "stale-allow"));
}

// ----------------------------------------------------------- determinism

/// Two runs over the same sources produce byte-identical JSON and SARIF,
/// advisories included.
#[test]
fn extended_report_is_byte_identical_across_runs() {
    let sources = || {
        vec![
            (
                "crates/detect/src/fixture.rs".to_string(),
                std::fs::read_to_string(
                    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/hotloop_bad.rs"),
                )
                .expect("fixture exists"),
            ),
            (
                "crates/core/src/x.rs".to_string(),
                "// audit:allow(hash-iter, a reason that outlived its finding)\npub fn f() {}\n"
                    .to_string(),
            ),
        ]
    };
    let a = audit_sources(sources());
    let b = audit_sources(sources());
    assert!(!a.advisories.is_empty(), "fixture must produce advisories");
    assert_eq!(a.to_json(), b.to_json());
    assert_eq!(rein_audit::to_sarif(&a), rein_audit::to_sarif(&b));
}
