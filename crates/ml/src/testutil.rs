//! Shared test fixtures for the model zoo (compiled only for tests).

use rand::prelude::*;
use rand::rngs::StdRng;
use rein_data::rng::randn;

use crate::linalg::Matrix;
use crate::model::{Classifier, Regressor};

/// Well-separated Gaussian blobs in 2-D: one blob per class, centres on a
/// coarse grid, σ = 0.5.
pub fn blob_classification(n: usize, n_classes: usize, seed: u64) -> (Matrix, Vec<usize>) {
    let mut rng = StdRng::seed_from_u64(seed);
    // Non-collinear grid: collinear centres would mask middle classes for
    // least-squares one-vs-rest classifiers (Hastie et al., ESL §4.2).
    let centres: Vec<(f64, f64)> =
        (0..n_classes).map(|c| ((c % 2) as f64 * 8.0, (c / 2) as f64 * 8.0)).collect();
    let mut rows = Vec::with_capacity(n);
    let mut ys = Vec::with_capacity(n);
    for i in 0..n {
        let c = i % n_classes;
        let (cx, cy) = centres[c];
        rows.push(vec![cx + 0.5 * randn(&mut rng), cy + 0.5 * randn(&mut rng)]);
        ys.push(c);
    }
    (Matrix::from_rows(&rows), ys)
}

/// Noisy linear regression data `y = 3x₀ - 2x₁ + 1 + ε`.
pub fn linear_regression_data(n: usize, noise: f64, seed: u64) -> (Matrix, Vec<f64>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut rows = Vec::with_capacity(n);
    let mut ys = Vec::with_capacity(n);
    for _ in 0..n {
        let x0 = rng.random_range(-3.0..3.0);
        let x1 = rng.random_range(-3.0..3.0);
        rows.push(vec![x0, x1]);
        ys.push(3.0 * x0 - 2.0 * x1 + 1.0 + noise * randn(&mut rng));
    }
    (Matrix::from_rows(&rows), ys)
}

/// Fits on the first 75% and returns accuracy on the remaining 25%.
pub fn train_test_accuracy<C: Classifier + ?Sized>(
    model: &mut C,
    x: &Matrix,
    y: &[usize],
    n_classes: usize,
) -> f64 {
    let n_train = x.rows() * 3 / 4;
    let train_rows: Vec<usize> = (0..n_train).collect();
    let test_rows: Vec<usize> = (n_train..x.rows()).collect();
    let xtr = crate::encode::select_matrix_rows(x, &train_rows);
    let xte = crate::encode::select_matrix_rows(x, &test_rows);
    let ytr: Vec<usize> = train_rows.iter().map(|&i| y[i]).collect();
    let yte: Vec<usize> = test_rows.iter().map(|&i| y[i]).collect();
    model.fit(&xtr, &ytr, n_classes);
    crate::metrics::accuracy(&yte, &model.predict(&xte))
}

/// Fits on the first 75% and returns test RMSE on the rest.
pub fn train_test_rmse<R: Regressor + ?Sized>(model: &mut R, x: &Matrix, y: &[f64]) -> f64 {
    let n_train = x.rows() * 3 / 4;
    let train_rows: Vec<usize> = (0..n_train).collect();
    let test_rows: Vec<usize> = (n_train..x.rows()).collect();
    let xtr = crate::encode::select_matrix_rows(x, &train_rows);
    let xte = crate::encode::select_matrix_rows(x, &test_rows);
    let ytr: Vec<f64> = train_rows.iter().map(|&i| y[i]).collect();
    let yte: Vec<f64> = test_rows.iter().map(|&i| y[i]).collect();
    model.fit(&xtr, &ytr);
    crate::metrics::rmse(&yte, &model.predict(&xte))
}
