//! Call-graph closure fixture (negative, cross-file): the public API
//! reaches a panic in *another file* only through a `spawn` closure —
//! proving closure edges resolve across the workspace like any call.

pub fn launch(xs: Vec<u64>) {
    spawn(move || remote_step(&xs));
}

fn spawn<F: FnOnce()>(f: F) {
    f();
}
