//! Random forests: bagged CART trees with √d feature subsampling, trained
//! in parallel with rayon.

use rayon::prelude::*;
use rein_data::rng::derive_seed;
use rein_data::split::bootstrap_indices;

use crate::encode::select_matrix_rows;
use crate::linalg::Matrix;
use crate::model::{Classifier, Regressor};
use crate::tree::{DecisionTreeClassifier, DecisionTreeRegressor, TreeParams};

/// Forest hyperparameters.
#[derive(Debug, Clone)]
pub struct ForestParams {
    /// Number of trees.
    pub n_trees: usize,
    /// Per-tree growth limits (feature subsampling is set automatically to
    /// √d when `max_features` is `None`).
    pub tree: TreeParams,
}

impl Default for ForestParams {
    fn default() -> Self {
        Self { n_trees: 40, tree: TreeParams::default() }
    }
}

fn tree_params_for(d: usize, base: &TreeParams, seed: u64, index: usize) -> TreeParams {
    let mut p = base.clone();
    if p.max_features.is_none() {
        p.max_features = Some(((d as f64).sqrt().round() as usize).max(1));
    }
    p.seed = derive_seed(seed, index as u64);
    p
}

/// Random forest classifier (probability averaging).
pub struct RandomForestClassifier {
    params: ForestParams,
    seed: u64,
    trees: Vec<DecisionTreeClassifier>,
    n_classes: usize,
}

impl RandomForestClassifier {
    /// Builds an (unfitted) forest.
    pub fn new(params: ForestParams, seed: u64) -> Self {
        Self { params, seed, trees: Vec::new(), n_classes: 0 }
    }
}

impl Classifier for RandomForestClassifier {
    fn fit(&mut self, x: &Matrix, y: &[usize], n_classes: usize) {
        self.n_classes = n_classes.max(1);
        if x.rows() == 0 {
            self.trees.clear();
            return;
        }
        let seed = self.seed;
        let params = &self.params;
        self.trees = (0..params.n_trees)
            .into_par_iter()
            .map(|i| {
                let boot =
                    bootstrap_indices(x.rows(), x.rows(), derive_seed(seed, 10_000 + i as u64));
                let xb = select_matrix_rows(x, &boot);
                let yb: Vec<usize> = boot.iter().map(|&r| y[r]).collect();
                let mut t =
                    DecisionTreeClassifier::new(tree_params_for(x.cols(), &params.tree, seed, i));
                t.fit(&xb, &yb, n_classes);
                t
            })
            .collect();
    }

    fn predict(&self, x: &Matrix) -> Vec<usize> {
        let p = self.predict_proba(x, self.n_classes.max(1));
        (0..x.rows()).map(|r| crate::linalg::argmax(p.row(r))).collect()
    }

    fn predict_proba(&self, x: &Matrix, n_classes: usize) -> Matrix {
        let mut out = Matrix::zeros(x.rows(), n_classes);
        if self.trees.is_empty() {
            return out;
        }
        for t in &self.trees {
            for r in 0..x.rows() {
                let p = t.proba_row(x.row(r));
                for (o, &v) in out.row_mut(r).iter_mut().zip(p.iter()) {
                    *o += v;
                }
            }
        }
        let k = self.trees.len() as f64;
        for r in 0..x.rows() {
            for v in out.row_mut(r) {
                *v /= k;
            }
        }
        out
    }
}

/// Random forest regressor (mean of tree predictions).
pub struct RandomForestRegressor {
    params: ForestParams,
    seed: u64,
    trees: Vec<DecisionTreeRegressor>,
}

impl RandomForestRegressor {
    /// Builds an (unfitted) forest regressor.
    pub fn new(params: ForestParams, seed: u64) -> Self {
        Self { params, seed, trees: Vec::new() }
    }
}

impl Regressor for RandomForestRegressor {
    fn fit(&mut self, x: &Matrix, y: &[f64]) {
        if x.rows() == 0 {
            self.trees.clear();
            return;
        }
        let seed = self.seed;
        let params = &self.params;
        self.trees = (0..params.n_trees)
            .into_par_iter()
            .map(|i| {
                let boot =
                    bootstrap_indices(x.rows(), x.rows(), derive_seed(seed, 20_000 + i as u64));
                let xb = select_matrix_rows(x, &boot);
                let yb: Vec<f64> = boot.iter().map(|&r| y[r]).collect();
                let mut t =
                    DecisionTreeRegressor::new(tree_params_for(x.cols(), &params.tree, seed, i));
                t.fit(&xb, &yb);
                t
            })
            .collect();
    }

    fn predict(&self, x: &Matrix) -> Vec<f64> {
        if self.trees.is_empty() {
            return vec![0.0; x.rows()];
        }
        let mut out = vec![0.0; x.rows()];
        for t in &self.trees {
            for (o, p) in out.iter_mut().zip(t.predict(x)) {
                *o += p;
            }
        }
        let k = self.trees.len() as f64;
        out.iter_mut().for_each(|v| *v /= k);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{
        blob_classification, linear_regression_data, train_test_accuracy, train_test_rmse,
    };

    #[test]
    fn forest_classifier_learns_blobs() {
        let (x, y) = blob_classification(150, 3, 61);
        let mut m =
            RandomForestClassifier::new(ForestParams { n_trees: 15, ..Default::default() }, 1);
        let acc = train_test_accuracy(&mut m, &x, &y, 3);
        assert!(acc > 0.9, "accuracy {acc}");
    }

    #[test]
    fn forest_beats_single_shallow_tree_on_noisy_data() {
        // Noisy nonlinear target.
        let (x, _) = linear_regression_data(400, 0.0, 67);
        let y: Vec<f64> =
            (0..x.rows()).map(|r| (x[(r, 0)] * 1.3).sin() * 3.0 + x[(r, 1)].powi(2)).collect();
        let mut forest =
            RandomForestRegressor::new(ForestParams { n_trees: 30, ..Default::default() }, 2);
        let forest_rmse = train_test_rmse(&mut forest, &x, &y);
        assert!(forest_rmse < 1.5, "forest rmse {forest_rmse}");
    }

    #[test]
    fn forest_probabilities_are_distributions() {
        let (x, y) = blob_classification(90, 3, 71);
        let mut m =
            RandomForestClassifier::new(ForestParams { n_trees: 10, ..Default::default() }, 4);
        m.fit(&x, &y, 3);
        let p = m.predict_proba(&x, 3);
        for r in 0..p.rows() {
            let s: f64 = p.row(r).iter().sum();
            assert!((s - 1.0).abs() < 1e-9, "row sum {s}");
        }
    }

    #[test]
    fn forest_is_seed_deterministic() {
        let (x, y) = blob_classification(80, 2, 73);
        let mut a =
            RandomForestClassifier::new(ForestParams { n_trees: 8, ..Default::default() }, 9);
        let mut b =
            RandomForestClassifier::new(ForestParams { n_trees: 8, ..Default::default() }, 9);
        a.fit(&x, &y, 2);
        b.fit(&x, &y, 2);
        assert_eq!(a.predict(&x), b.predict(&x));
    }

    #[test]
    fn empty_fit_safe() {
        let mut m = RandomForestClassifier::new(ForestParams::default(), 1);
        m.fit(&Matrix::zeros(0, 2), &[], 2);
        assert_eq!(m.predict(&Matrix::zeros(2, 2)).len(), 2);
    }
}
