//! Positive toolbox fixture: every declared module is registered.

pub mod good;

use crate::good::Detector;

pub fn default_detector() -> Detector {
    good::Detector::new()
}
