//! JSON run manifests.
//!
//! A [`RunManifest`] is the durable record of one benchmark binary
//! invocation: the effective configuration, every finished span, and the
//! final value of every counter and histogram. Binaries write one as
//! their last act so any run can be audited (and diffed against another
//! seed or scale) without re-running it.

use std::collections::BTreeMap;
use std::io;
use std::path::{Path, PathBuf};

use serde::{Deserialize, Serialize};

use crate::failures::{failures_snapshot, FailureRecord};
use crate::metrics::{counters_snapshot, histograms_snapshot, HistogramSummary};
use crate::span::{snapshot_spans, SpanRecord};

/// The effective run configuration, echoed into the manifest so a result
/// file is self-describing.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunConfig {
    /// Dataset scale factor (`REIN_SCALE`).
    pub scale: f64,
    /// Repeats per configuration (`REIN_REPEATS`).
    pub repeats: u32,
    /// Base RNG seed.
    pub seed: u64,
    /// Labelling budget (cells the oracle may reveal).
    pub label_budget: u64,
    /// Configured worker-thread count the run executed with. `0` in
    /// manifests recorded before the echo existed (the serde default);
    /// real runs plumb the value from `rein_bench::worker_threads`.
    #[serde(default)]
    pub threads: u32,
}

/// How much span detail a manifest carries (`REIN_MANIFEST`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ManifestMode {
    /// Every finished span, verbatim — the historical format.
    #[default]
    Full,
    /// Per-span-name rollups plus a capped sample of spans per name,
    /// for artifacts whose full stream would be tens of thousands of
    /// lines. Deterministic: the sample is the first
    /// [`SUMMARY_SPANS_PER_NAME`] spans of each name in merged order.
    Summary,
}

impl ManifestMode {
    /// The string stored in the manifest's `mode` field.
    pub fn as_str(self) -> &'static str {
        match self {
            ManifestMode::Full => "full",
            ManifestMode::Summary => "summary",
        }
    }
}

/// Reads `REIN_MANIFEST` (default [`ManifestMode::Full`]). A value that
/// is set but neither `full` nor `summary` is a hard error, never a
/// silent default — consistent with the other environment overrides.
pub fn manifest_mode() -> ManifestMode {
    // audit:allow(env-read-confinement, REIN_MANIFEST only chooses how much the run manifest records; the manifest is observer output, never an input)
    match std::env::var("REIN_MANIFEST") {
        Err(_) => ManifestMode::Full,
        Ok(raw) => match raw.as_str() {
            "full" => ManifestMode::Full,
            "summary" => ManifestMode::Summary,
            _ => {
                // audit:allow(print, a bad environment must fail loudly before any telemetry exists)
                eprintln!(
                    "error: REIN_MANIFEST={raw:?} is invalid: want `full` or `summary` \
                     (unset it to keep full span streams)"
                );
                std::process::exit(2);
            }
        },
    }
}

/// Spans kept per span name in a summary-mode manifest.
pub const SUMMARY_SPANS_PER_NAME: usize = 4;

/// One span name's aggregate in a summary-mode manifest. The rollup
/// always covers *every* span of that name, including the sampled ones
/// still present in `spans`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SpanRollup {
    /// Span name, e.g. `"detect:raha"`.
    pub name: String,
    /// Spans with this name.
    pub count: u64,
    /// Sum of their wall-clock durations.
    pub total_ms: f64,
    /// Largest single duration.
    pub max_ms: f64,
    /// Spans dropped from the `spans` sample (count minus kept).
    pub dropped: u64,
}

/// Folds a full span stream into per-name rollups (sorted by name) and
/// the capped per-name sample that summary mode keeps, preserving the
/// merged stream order within the sample.
pub fn summarize_spans(spans: &[SpanRecord]) -> (Vec<SpanRecord>, Vec<SpanRollup>) {
    let mut rollups: BTreeMap<&str, SpanRollup> = BTreeMap::new();
    let mut kept: Vec<SpanRecord> = Vec::new();
    for s in spans {
        let r = rollups.entry(s.name.as_str()).or_insert_with(|| SpanRollup {
            name: s.name.clone(),
            count: 0,
            total_ms: 0.0,
            max_ms: 0.0,
            dropped: 0,
        });
        r.count += 1;
        r.total_ms += s.duration_ms;
        r.max_ms = r.max_ms.max(s.duration_ms);
        if (r.count as usize) <= SUMMARY_SPANS_PER_NAME {
            kept.push(s.clone());
        } else {
            r.dropped += 1;
        }
    }
    (kept, rollups.into_values().collect())
}

/// Snapshot of one run's telemetry.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunManifest {
    /// Name of the benchmark binary that produced this run.
    pub binary: String,
    /// Effective configuration.
    pub config: RunConfig,
    /// Span detail mode: `"full"` or `"summary"`. Empty in manifests
    /// recorded before the mode existed (they are full streams).
    #[serde(default)]
    pub mode: String,
    /// Finished spans in merged completion order — every span in full
    /// mode, the first [`SUMMARY_SPANS_PER_NAME`] per name in summary
    /// mode.
    pub spans: Vec<SpanRecord>,
    /// Per-span-name rollups covering the *complete* stream; empty in
    /// full mode and in pre-mode manifests.
    #[serde(default)]
    pub span_rollup: Vec<SpanRollup>,
    /// Final counter values.
    pub counters: BTreeMap<String, u64>,
    /// Final histogram summaries.
    pub histograms: BTreeMap<String, HistogramSummary>,
    /// Degraded grid cells, sorted by cell identity (absent in
    /// pre-guard manifests, hence the serde default).
    #[serde(default)]
    pub failures: Vec<FailureRecord>,
}

/// Directory manifests are written to, relative to the working
/// directory: `artifacts/telemetry`.
pub fn manifest_dir() -> PathBuf {
    Path::new("artifacts").join("telemetry")
}

impl RunManifest {
    /// Snapshots the global span sink and metric registries into a
    /// manifest for `binary`, at the detail mode configured by
    /// `REIN_MANIFEST` (default full).
    pub fn collect(binary: &str, config: RunConfig) -> Self {
        Self::collect_with_mode(binary, config, manifest_mode())
    }

    /// [`RunManifest::collect`] at an explicit mode (tests and tools).
    pub fn collect_with_mode(binary: &str, config: RunConfig, mode: ManifestMode) -> Self {
        let full = snapshot_spans();
        let (spans, span_rollup) = match mode {
            ManifestMode::Full => (full, Vec::new()),
            ManifestMode::Summary => summarize_spans(&full),
        };
        RunManifest {
            binary: binary.to_string(),
            config,
            mode: mode.as_str().to_string(),
            spans,
            span_rollup,
            counters: counters_snapshot(),
            histograms: histograms_snapshot(),
            failures: failures_snapshot(),
        }
    }

    /// The file this manifest belongs at:
    /// `artifacts/telemetry/<binary>-<seed>.json`.
    pub fn path(&self) -> PathBuf {
        manifest_dir().join(format!("{}-{}.json", self.binary, self.config.seed))
    }

    /// Serializes to pretty JSON.
    pub fn to_json(&self) -> String {
        // audit:allow(panic, serializing plain owned data cannot fail)
        serde_json::to_string_pretty(self).expect("manifest serializes")
    }

    /// Writes the manifest to [`RunManifest::path`], creating the
    /// directory if needed, and returns the path written.
    pub fn write(&self) -> io::Result<PathBuf> {
        let path = self.path();
        if let Some(dir) = path.parent() {
            std::fs::create_dir_all(dir)?;
        }
        std::fs::write(&path, self.to_json())?;
        crate::info!("wrote run manifest {}", path.display());
        Ok(path)
    }

    /// Parses a manifest back from JSON.
    pub fn from_json(json: &str) -> Result<Self, String> {
        serde_json::from_str(json).map_err(|e| e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn manifest_path_includes_binary_and_seed() {
        let m = RunManifest {
            binary: "fig2_detection".into(),
            config: RunConfig { scale: 0.05, repeats: 3, seed: 42, label_budget: 100, threads: 1 },
            mode: "full".into(),
            spans: Vec::new(),
            span_rollup: Vec::new(),
            counters: BTreeMap::new(),
            histograms: BTreeMap::new(),
            failures: Vec::new(),
        };
        assert!(m.path().ends_with("artifacts/telemetry/fig2_detection-42.json"));
    }

    #[test]
    fn pre_mode_manifests_still_parse() {
        // A manifest recorded before `threads`, `mode` and `span_rollup`
        // existed: the serde defaults must fill them in.
        let old = r#"{
            "binary": "fig2_detection",
            "config": { "scale": 0.05, "repeats": 3, "seed": 42, "label_budget": 100 },
            "spans": [],
            "counters": {},
            "histograms": {},
            "failures": []
        }"#;
        let m = RunManifest::from_json(old).expect("old manifest parses");
        assert_eq!(m.config.threads, 0, "pre-echo manifests report 0 (unrecorded)");
        assert_eq!(m.mode, "");
        assert!(m.span_rollup.is_empty());
    }

    #[test]
    fn pre_trace_manifests_still_parse() {
        // A manifest recorded before trace propagation (PR 9): spans
        // lack `trace_id`/`instant`, histograms lack `p95_ms`, failures
        // lack `trace_id` — every one must fill from serde defaults.
        let old = r#"{
            "binary": "chaos_smoke",
            "config": { "scale": 0.05, "repeats": 1, "seed": 29, "label_budget": 100, "threads": 1 },
            "mode": "full",
            "spans": [
                { "name": "detect:raha", "id": 3, "parent_id": 1, "depth": 1,
                  "start_ms": 0.5, "duration_ms": 2.5 }
            ],
            "counters": { "strategy_failures": 2 },
            "histograms": {
                "detect_ms": { "count": 4, "mean_ms": 1.0, "p50_ms": 1.0,
                               "p90_ms": 2.0, "p99_ms": 3.0, "max_ms": 3.0 }
            },
            "failures": [
                { "phase": "detect", "strategy": "Raha", "dataset": "beers",
                  "scope": "", "cause": "panic: boom", "attempts": 2, "elapsed_ms": 1.5 }
            ]
        }"#;
        let m = RunManifest::from_json(old).expect("pre-trace manifest parses");
        assert_eq!(m.spans[0].trace_id, 0, "pre-trace spans are ambient");
        assert!(!m.spans[0].instant);
        assert_eq!(m.histograms["detect_ms"].p95_ms, 0.0);
        assert_eq!(m.failures[0].trace_id, "");
    }

    #[test]
    fn summarize_caps_per_name_and_rolls_up_everything() {
        let span = |name: &str, id: u64, ms: f64| SpanRecord {
            name: name.into(),
            id,
            parent_id: 0,
            depth: 0,
            start_ms: 0.0,
            duration_ms: ms,
            trace_id: 0,
            instant: false,
        };
        let mut spans = Vec::new();
        for i in 0..10u64 {
            spans.push(span("detect:raha", i, 1.0 + i as f64));
        }
        spans.push(span("phase:setup", 100, 5.0));
        let (kept, rollup) = summarize_spans(&spans);
        // detect:raha capped at SUMMARY_SPANS_PER_NAME, phase:setup kept whole.
        assert_eq!(kept.iter().filter(|s| s.name == "detect:raha").count(), SUMMARY_SPANS_PER_NAME);
        assert_eq!(kept.iter().filter(|s| s.name == "phase:setup").count(), 1);
        // Sample preserves stream order: the *first* K spans of the name.
        let ids: Vec<u64> = kept.iter().filter(|s| s.name == "detect:raha").map(|s| s.id).collect();
        assert_eq!(ids, [0, 1, 2, 3]);
        // Rollup covers all 10 spans, sorted by name.
        assert_eq!(rollup.len(), 2);
        assert_eq!(rollup[0].name, "detect:raha");
        assert_eq!(rollup[0].count, 10);
        assert_eq!(rollup[0].dropped, 10 - SUMMARY_SPANS_PER_NAME as u64);
        assert!((rollup[0].total_ms - (10.0 + 45.0)).abs() < 1e-9);
        assert_eq!(rollup[0].max_ms, 10.0);
        assert_eq!(rollup[1].name, "phase:setup");
        assert_eq!(rollup[1].dropped, 0);
        // Deterministic: same input, same bytes.
        let again = summarize_spans(&spans);
        assert_eq!(
            serde_json::to_string(&(kept, rollup)).expect("serializes"),
            serde_json::to_string(&again).expect("serializes")
        );
    }
}
