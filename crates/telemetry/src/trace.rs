//! Causal trace trees keyed by cell identity, and their canonical
//! exports (DESIGN.md §6i).
//!
//! The sharded span sink (PR 6) yields a flat merged stream; this
//! module folds that stream back into one tree per **cell trace** — all
//! spans and instant events whose `trace_id` is the FNV-1a-64 digest of
//! the owning cell's `CellKey` identity. Because a cell executes
//! sequentially on one worker, the relative order of its records in the
//! merged stream is scheduling-invariant, so the reconstructed trees
//! are identical at any `REIN_THREADS` or `REIN_SPAN_SHARDS` setting.
//!
//! Three canonical exports are derived from the forest, all
//! byte-stable across double runs *and* across thread/shard counts:
//!
//! * **Chrome trace-event JSON** ([`chrome_trace_json`]) — openable in
//!   Perfetto / `chrome://tracing`. Wall-clock timestamps and real
//!   worker ids vary run to run, so the export uses *virtual lanes*:
//!   `pid` is a deterministic round-robin virtual shard, `tid` a
//!   virtual worker unique to the cell, and `ts`/`dur` are tick counts
//!   assigned by depth-first walk (1 tick = 1 span or instant).
//! * **Flamegraph SVG** ([`flamegraph_svg`]) — dependency-free,
//!   self-contained; frames are name-paths folded across every trace,
//!   widths proportional to tick counts, colors hashed from names.
//! * **Per-cell cost/failure table** ([`cell_costs`]) — one row per
//!   trace ranked by failures then ticks: the machine-readable worklist
//!   the columnar-rewrite ROADMAP item consumes.

use std::collections::{BTreeMap, BTreeSet};

use serde::{Deserialize, Serialize};

use crate::span::SpanRecord;

/// One node of a reconstructed cell trace: a span or instant event with
/// its children in deterministic (stream) order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceNode {
    /// Span name.
    pub name: String,
    /// True for zero-duration instant events.
    pub instant: bool,
    /// Children in merged-stream order (deterministic: a cell runs
    /// sequentially on one worker, so sibling order never depends on
    /// scheduling).
    pub children: Vec<TraceNode>,
}

impl TraceNode {
    /// Total records in this subtree (self included): the tick count
    /// the canonical exports use as deterministic "cost".
    pub fn ticks(&self) -> u64 {
        1 + self.children.iter().map(TraceNode::ticks).sum::<u64>()
    }

    /// Maximum depth below this node (0 for a leaf).
    pub fn max_depth(&self) -> u32 {
        self.children.iter().map(|c| 1 + c.max_depth()).max().unwrap_or(0)
    }
}

/// A span whose parent could not be resolved inside its trace: either a
/// second root candidate or a record pointing at a missing id. A clean
/// run has none — the orphan tests pin exactly that.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct OrphanSpan {
    /// Trace the record claimed.
    pub trace_id: u64,
    /// Record name.
    pub name: String,
    /// Record id.
    pub id: u64,
    /// The unresolved parent id.
    pub parent_id: u64,
}

/// One cell's reconstructed trace tree.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CellTrace {
    /// The `CellKey` digest every record carried.
    pub trace_id: u64,
    /// The cell root (the `cell:…` span the controller opened).
    pub root: TraceNode,
}

impl CellTrace {
    /// The trace id as the ledger's 16-hex content-key rendering.
    pub fn trace_hex(&self) -> String {
        format!("{:016x}", self.trace_id)
    }
}

/// Every cell trace reconstructed from a merged span stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceForest {
    /// Traces sorted by trace id (the canonical order every export
    /// walks, so exports cannot depend on completion interleaving).
    pub traces: Vec<CellTrace>,
    /// Records whose parent could not be resolved (empty on clean runs).
    pub orphans: Vec<OrphanSpan>,
    /// Count of ambient records (`trace_id == 0`) outside any cell.
    pub ambient: u64,
}

/// Reconstructs the per-cell trace forest from a merged span stream.
///
/// Records are grouped by `trace_id`; within a group the unique span
/// whose parent lies outside the group is the cell root, every other
/// record must resolve its parent inside the group (violations land in
/// [`TraceForest::orphans`]). Child order is merged-stream order, which
/// for a sequentially-executed cell is the deterministic close order.
pub fn build_traces(spans: &[SpanRecord]) -> TraceForest {
    let mut ambient = 0u64;
    let mut groups: BTreeMap<u64, Vec<&SpanRecord>> = BTreeMap::new();
    for r in spans {
        if r.trace_id == 0 {
            ambient += 1;
        } else {
            groups.entry(r.trace_id).or_default().push(r);
        }
    }
    let mut traces = Vec::new();
    let mut orphans = Vec::new();
    for (trace_id, records) in groups {
        let span_ids: BTreeSet<u64> = records.iter().filter(|r| !r.instant).map(|r| r.id).collect();
        // The root is the unique non-instant record parented outside the
        // group; later such records (and instants with unresolvable
        // parents) are orphans.
        let mut root_id: Option<u64> = None;
        let mut children: BTreeMap<u64, Vec<&SpanRecord>> = BTreeMap::new();
        for r in &records {
            if span_ids.contains(&r.parent_id) {
                children.entry(r.parent_id).or_default().push(r);
            } else if !r.instant && root_id.is_none() {
                root_id = Some(r.id);
            } else {
                orphans.push(OrphanSpan {
                    trace_id,
                    name: r.name.clone(),
                    id: r.id,
                    parent_id: r.parent_id,
                });
            }
        }
        let Some(root_id) = root_id else { continue };
        // audit:allow(panic, root_id was taken from this very record set)
        let root_rec = records.iter().find(|r| r.id == root_id).expect("root record present");
        traces.push(CellTrace { trace_id, root: assemble(root_rec, &children) });
    }
    TraceForest { traces, orphans, ambient }
}

/// Builds the owned tree below `rec` from the per-parent child lists.
fn assemble(rec: &SpanRecord, children: &BTreeMap<u64, Vec<&SpanRecord>>) -> TraceNode {
    let kids = children
        .get(&rec.id)
        .map(|list| list.iter().map(|c| assemble(c, children)).collect())
        .unwrap_or_default();
    TraceNode { name: rec.name.clone(), instant: rec.instant, children: kids }
}

// ------------------------------------------------- Chrome trace events

/// Virtual shard lanes the Chrome export round-robins traces over. Real
/// shard/worker ids vary run to run; the virtual assignment depends
/// only on the trace's position in the canonical (trace-id-sorted)
/// order, keeping the export byte-stable.
const VIRTUAL_SHARDS: usize = 8;

/// Escapes a string for a JSON string literal.
fn json_esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Renders the forest as Chrome trace-event JSON (Perfetto /
/// `chrome://tracing`). `pid` = virtual shard, `tid` = virtual worker
/// (one per cell, so each cell renders as its own named track);
/// `ts`/`dur` are deterministic tick counts, *not* wall-clock — the
/// export trades real timing for byte-identity across thread and shard
/// counts (DESIGN.md §6i discusses the trade). The JSON is emitted
/// one event per line in a fixed key order, so the bytes are canonical
/// by construction.
pub fn chrome_trace_json(forest: &TraceForest) -> String {
    let mut events: Vec<String> = Vec::new();
    for (i, t) in forest.traces.iter().enumerate() {
        let pid = 1 + (i % VIRTUAL_SHARDS) as u64;
        let tid = 1 + i as u64;
        events.push(format!(
            r#"{{"ph":"M","name":"process_name","pid":{pid},"tid":0,"args":{{"name":"vshard-{pid}"}}}}"#
        ));
        events.push(format!(
            r#"{{"ph":"M","name":"thread_name","pid":{pid},"tid":{tid},"args":{{"name":"{}"}}}}"#,
            json_esc(&t.root.name)
        ));
        let mut tick = 0u64;
        let mut next_id = 1u64;
        emit_events(&t.root, 0, t, pid, tid, &mut tick, &mut next_id, &mut events);
    }
    let mut out = String::from("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n");
    for (i, e) in events.iter().enumerate() {
        out.push_str(e);
        if i + 1 < events.len() {
            out.push(',');
        }
        out.push('\n');
    }
    out.push_str("]}\n");
    out
}

/// Depth-first event emission: each record consumes one tick; a span's
/// duration is its subtree's tick count. Span ids are renumbered per
/// trace in walk order, erasing the process-global allocation order.
#[allow(clippy::too_many_arguments)]
fn emit_events(
    node: &TraceNode,
    parent_new_id: u64,
    trace: &CellTrace,
    pid: u64,
    tid: u64,
    tick: &mut u64,
    next_id: &mut u64,
    events: &mut Vec<String>,
) {
    let my_id = *next_id;
    *next_id += 1;
    let ts = *tick;
    *tick += 1;
    let args =
        format!(r#"{{"trace":"{}","span":{my_id},"parent":{parent_new_id}}}"#, trace.trace_hex());
    if node.instant {
        events.push(format!(
            r#"{{"ph":"i","s":"t","name":"{}","pid":{pid},"tid":{tid},"ts":{ts},"args":{args}}}"#,
            json_esc(&node.name)
        ));
        return;
    }
    for child in &node.children {
        emit_events(child, my_id, trace, pid, tid, tick, next_id, events);
    }
    events.push(format!(
        r#"{{"ph":"X","name":"{}","pid":{pid},"tid":{tid},"ts":{ts},"dur":{},"args":{args}}}"#,
        json_esc(&node.name),
        *tick - ts
    ));
}

// ------------------------------------------------------ flamegraph SVG

/// A merged flamegraph frame: name-paths aggregated across every trace,
/// children in alphabetical (BTreeMap) order.
struct Frame {
    self_ticks: u64,
    children: BTreeMap<String, Frame>,
}

impl Frame {
    fn new() -> Frame {
        Frame { self_ticks: 0, children: BTreeMap::new() }
    }

    fn total(&self) -> u64 {
        self.self_ticks + self.children.values().map(Frame::total).sum::<u64>()
    }

    fn depth(&self) -> usize {
        self.children.values().map(|c| 1 + c.depth()).max().unwrap_or(0)
    }

    fn fold(&mut self, node: &TraceNode) {
        let frame = self.children.entry(node.name.clone()).or_insert_with(Frame::new);
        frame.self_ticks += 1;
        for child in &node.children {
            frame.fold(child);
        }
    }
}

/// FNV-1a-64 over a frame name, for deterministic coloring.
fn name_hash(name: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.as_bytes() {
        h ^= *b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Deterministic warm fill color for a frame name.
fn frame_color(name: &str) -> String {
    let h = name_hash(name);
    let r = 205 + (h % 50) as u8;
    let g = 90 + ((h >> 8) % 120) as u8;
    let b = ((h >> 16) % 60) as u8;
    format!("rgb({r},{g},{b})")
}

/// Escapes text for SVG/XML attribute and element content.
fn xml_esc(s: &str) -> String {
    s.replace('&', "&amp;").replace('<', "&lt;").replace('>', "&gt;").replace('"', "&quot;")
}

/// Renders a dependency-free, self-contained flamegraph SVG folded from
/// the trace forest. Frame widths are proportional to deterministic
/// tick counts (1 tick = 1 span/instant), so the image is byte-stable
/// double-run and across thread/shard counts. Hover titles carry the
/// full frame path and tick count; no scripting is embedded.
pub fn flamegraph_svg(forest: &TraceForest) -> String {
    const WIDTH: f64 = 1200.0;
    const FRAME_H: f64 = 17.0;
    const PAD: f64 = 10.0;
    let mut root = Frame::new();
    for t in &forest.traces {
        root.fold(&t.root);
    }
    let total = root.total().max(1);
    let levels = root.depth();
    let height = PAD * 2.0 + 24.0 + (levels.max(1) as f64) * FRAME_H;
    let mut out = String::new();
    out.push_str(&format!(
        "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"{WIDTH}\" height=\"{height}\" \
         font-family=\"monospace\" font-size=\"11\">\n\
         <rect width=\"100%\" height=\"100%\" fill=\"#fdf6ec\"/>\n\
         <text x=\"{PAD}\" y=\"18\">rein trace flamegraph — {} cell trace(s), {} tick(s)</text>\n",
        forest.traces.len(),
        total
    ));
    let base_y = height - PAD;
    render_frames(&root.children, "", 0.0, WIDTH, total, base_y, FRAME_H, &mut out);
    out.push_str("</svg>\n");
    out
}

/// Recursive frame layout: siblings in alphabetical order, x-extents
/// proportional to subtree ticks, each level one frame height above its
/// parent (root at the bottom).
#[allow(clippy::too_many_arguments)]
fn render_frames(
    frames: &BTreeMap<String, Frame>,
    path: &str,
    x0: f64,
    x_extent: f64,
    scale_total: u64,
    y: f64,
    frame_h: f64,
    out: &mut String,
) {
    let mut x = x0;
    for (name, frame) in frames {
        let w = x_extent * frame.total() as f64 / scale_total as f64;
        let full = if path.is_empty() { name.clone() } else { format!("{path};{name}") };
        let label_chars = ((w - 6.0) / 7.0).max(0.0) as usize;
        let label = if name.len() > label_chars {
            name.chars().take(label_chars).collect::<String>()
        } else {
            name.clone()
        };
        out.push_str(&format!(
            "<g><title>{} ({} ticks)</title>\
             <rect x=\"{:.2}\" y=\"{:.2}\" width=\"{:.2}\" height=\"{:.2}\" \
             fill=\"{}\" stroke=\"#fdf6ec\" stroke-width=\"0.5\"/>",
            xml_esc(&full),
            frame.total(),
            x,
            y - frame_h,
            w,
            frame_h,
            frame_color(name),
        ));
        if !label.is_empty() {
            out.push_str(&format!(
                "<text x=\"{:.2}\" y=\"{:.2}\">{}</text>",
                x + 3.0,
                y - 4.5,
                xml_esc(&label)
            ));
        }
        out.push_str("</g>\n");
        render_frames(
            &frame.children,
            &full,
            x,
            w,
            frame.total().max(1),
            y - frame_h,
            frame_h,
            out,
        );
        x += w;
    }
}

// -------------------------------------------------- per-cell cost table

/// One row of the deterministic per-cell cost/failure table.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CellCost {
    /// 16-hex trace id (`CellKey` content key).
    pub trace: String,
    /// Cell root span name (`cell:<grid coordinate>`).
    pub cell: String,
    /// Deterministic cost: total spans + instants in the trace.
    pub ticks: u64,
    /// Non-instant spans.
    pub spans: u64,
    /// Instant events.
    pub instants: u64,
    /// `guard:fail:*` instants (degraded attempts).
    pub failures: u64,
    /// `guard:retry` instants.
    pub retries: u64,
    /// Maximum tree depth below the cell root.
    pub depth: u32,
}

fn count_nodes(node: &TraceNode, cost: &mut CellCost) {
    if node.instant {
        cost.instants += 1;
        if node.name.starts_with("guard:fail:") {
            cost.failures += 1;
        } else if node.name == "guard:retry" {
            cost.retries += 1;
        }
    } else {
        cost.spans += 1;
    }
    for c in &node.children {
        count_nodes(c, cost);
    }
}

/// The per-cell cost/failure table, ranked for the columnar-rewrite
/// worklist: cells with failures first, then by descending tick count,
/// name-tiebroken — a total, deterministic order.
pub fn cell_costs(forest: &TraceForest) -> Vec<CellCost> {
    let mut rows: Vec<CellCost> = forest
        .traces
        .iter()
        .map(|t| {
            let mut cost = CellCost {
                trace: t.trace_hex(),
                cell: t.root.name.clone(),
                ticks: t.root.ticks(),
                spans: 0,
                instants: 0,
                failures: 0,
                retries: 0,
                depth: t.root.max_depth(),
            };
            count_nodes(&t.root, &mut cost);
            cost
        })
        .collect();
    rows.sort_by(|a, b| {
        b.failures
            .cmp(&a.failures)
            .then_with(|| b.ticks.cmp(&a.ticks))
            .then_with(|| a.cell.cmp(&b.cell))
            .then_with(|| a.trace.cmp(&b.trace))
    });
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(name: &str, id: u64, parent_id: u64, trace_id: u64, instant: bool) -> SpanRecord {
        SpanRecord {
            name: name.to_string(),
            id,
            parent_id,
            depth: 0,
            start_ms: id as f64,
            duration_ms: if instant { 0.0 } else { 1.0 },
            trace_id,
            instant,
        }
    }

    /// Two cell traces plus ambient spans, in close (stream) order:
    /// children close before parents, cells interleave.
    fn stream() -> Vec<SpanRecord> {
        vec![
            rec("guard:retry", 11, 10, 0xB, true),
            rec("detect:raha", 10, 9, 0xB, false),
            rec("repair:mean", 21, 20, 0xA, false),
            rec("cell:detect:raha", 9, 1, 0xB, false),
            rec("guard:fail:panic", 22, 20, 0xA, true),
            rec("repair:mode", 23, 20, 0xA, false),
            rec("cell:repair:mean#raha", 20, 1, 0xA, false),
            rec("controller:grid", 1, 0, 0, false),
        ]
    }

    #[test]
    fn traces_reconstruct_with_roots_children_and_instants() {
        let forest = build_traces(&stream());
        assert_eq!(forest.ambient, 1);
        assert!(forest.orphans.is_empty(), "{:?}", forest.orphans);
        assert_eq!(forest.traces.len(), 2);
        // Sorted by trace id: 0xA before 0xB.
        let a = &forest.traces[0];
        assert_eq!(a.trace_id, 0xA);
        assert_eq!(a.root.name, "cell:repair:mean#raha");
        let names: Vec<&str> = a.root.children.iter().map(|c| c.name.as_str()).collect();
        assert_eq!(names, ["repair:mean", "guard:fail:panic", "repair:mode"]);
        assert!(a.root.children[1].instant);
        let b = &forest.traces[1];
        assert_eq!(b.root.name, "cell:detect:raha");
        assert_eq!(b.root.children.len(), 1);
        assert_eq!(b.root.children[0].children[0].name, "guard:retry");
        assert_eq!(b.root.ticks(), 3);
        assert_eq!(b.root.max_depth(), 2);
    }

    #[test]
    fn orphans_are_detected_not_silently_dropped() {
        let mut s = stream();
        // A span claiming trace 0xA but parented at a missing id.
        s.push(rec("detect:lost", 30, 999, 0xA, false));
        let forest = build_traces(&s);
        assert_eq!(forest.orphans.len(), 1);
        assert_eq!(forest.orphans[0].name, "detect:lost");
        assert_eq!(forest.orphans[0].parent_id, 999);
        // The healthy trees are unaffected.
        assert_eq!(forest.traces.len(), 2);
    }

    /// The same logical stream re-recorded with different raw ids and
    /// interleaving (as another thread count would produce) must export
    /// byte-identically.
    fn renumbered_stream() -> Vec<SpanRecord> {
        vec![
            rec("repair:mean", 105, 101, 0xA, false),
            rec("guard:retry", 203, 202, 0xB, true),
            rec("guard:fail:panic", 106, 101, 0xA, true),
            rec("detect:raha", 202, 201, 0xB, false),
            rec("repair:mode", 107, 101, 0xA, false),
            rec("cell:detect:raha", 201, 7, 0xB, false),
            rec("cell:repair:mean#raha", 101, 7, 0xA, false),
            rec("controller:grid", 7, 0, 0, false),
        ]
    }

    #[test]
    fn exports_are_invariant_under_id_and_interleaving_changes() {
        let one = build_traces(&stream());
        let two = build_traces(&renumbered_stream());
        assert_eq!(chrome_trace_json(&one), chrome_trace_json(&two));
        assert_eq!(flamegraph_svg(&one), flamegraph_svg(&two));
        assert_eq!(cell_costs(&one), cell_costs(&two));
    }

    /// One sink shard vs N: the deterministic shard merge feeds the
    /// canonical exporter, so re-sharding the same records cannot
    /// change a single exported byte.
    #[test]
    fn exports_are_invariant_under_span_shard_count() {
        let entries: Vec<(u64, SpanRecord)> =
            stream().into_iter().enumerate().map(|(i, r)| (i as u64, r)).collect();
        let one = build_traces(&crate::span::merge_shards(vec![entries.clone()]));
        for n in [2, 3, 5] {
            let mut shards = vec![Vec::new(); n];
            for (i, e) in entries.iter().enumerate() {
                shards[i % n].push(e.clone());
            }
            let sharded = build_traces(&crate::span::merge_shards(shards));
            assert_eq!(
                chrome_trace_json(&one),
                chrome_trace_json(&sharded),
                "{n}-shard Chrome export diverged"
            );
            assert_eq!(
                flamegraph_svg(&one),
                flamegraph_svg(&sharded),
                "{n}-shard flamegraph diverged"
            );
            assert_eq!(cell_costs(&one), cell_costs(&sharded), "{n}-shard cost table diverged");
        }
    }

    #[test]
    fn chrome_export_has_events_on_virtual_lanes() {
        let forest = build_traces(&stream());
        let json = chrome_trace_json(&forest);
        assert!(json.starts_with("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n"));
        assert!(json.ends_with("]}\n"));
        let count = |needle: &str| json.matches(needle).count();
        // 2 metadata events per trace, 5 complete spans, 2 instants.
        assert_eq!(count("\"ph\":\"M\""), 4);
        assert_eq!(count("\"ph\":\"X\""), 5);
        assert_eq!(count("\"ph\":\"i\""), 2);
        // Traces land on distinct virtual lanes named for the cell root.
        assert_eq!(count("\"vshard-1\""), 1);
        assert_eq!(count("\"vshard-2\""), 1);
        assert!(json.contains(
            r#"{"ph":"M","name":"thread_name","pid":2,"tid":2,"args":{"name":"cell:detect:raha"}}"#
        ));
        // Every non-metadata event cites its 16-hex trace id.
        assert_eq!(count(&format!("\"trace\":\"{:016x}\"", 0xA)), 4);
        assert_eq!(count(&format!("\"trace\":\"{:016x}\"", 0xB)), 3);
        // The cell root's duration covers its whole subtree (3 ticks),
        // renumbered span ids starting at 1 per trace.
        assert!(json.contains(
            &format!(
                r#"{{"ph":"X","name":"cell:detect:raha","pid":2,"tid":2,"ts":0,"dur":3,"args":{{"trace":"{:016x}","span":1,"parent":0}}}}"#,
                0xB
            )
        ));
        // Instants carry no duration.
        let instant_line = json
            .lines()
            .find(|l| l.contains("\"ph\":\"i\"") && l.contains("guard:retry"))
            .expect("retry instant present");
        assert!(!instant_line.contains("\"dur\""));
    }

    #[test]
    fn flamegraph_is_self_contained_svg() {
        let svg = flamegraph_svg(&build_traces(&stream()));
        assert!(svg.starts_with("<svg"));
        assert!(svg.ends_with("</svg>\n"));
        assert!(!svg.contains("<script"), "must stay dependency-free");
        assert!(svg.contains("cell:detect:raha"));
        assert!(svg.contains("guard:fail:panic"));
        // Double render is byte-identical.
        assert_eq!(svg, flamegraph_svg(&build_traces(&stream())));
    }

    #[test]
    fn cost_table_ranks_failures_then_ticks() {
        let costs = cell_costs(&build_traces(&stream()));
        assert_eq!(costs.len(), 2);
        // Trace 0xA carries the guard:fail:panic instant — ranked first.
        assert_eq!(costs[0].cell, "cell:repair:mean#raha");
        assert_eq!(costs[0].failures, 1);
        assert_eq!(costs[0].spans, 3);
        assert_eq!(costs[0].instants, 1);
        assert_eq!(costs[1].cell, "cell:detect:raha");
        assert_eq!(costs[1].retries, 1);
        assert_eq!(costs[1].failures, 0);
        assert_eq!(costs[1].trace, format!("{:016x}", 0xB));
    }
}
