//! Core toolbox stub: enumerates both registries.

use crate::detect::DetectorKind;
use crate::repair::RepairKind;

pub fn grid() -> Vec<(DetectorKind, RepairKind)> {
    Vec::new()
}
