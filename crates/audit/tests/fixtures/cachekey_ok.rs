//! Positive fixture: the entry point computes purely from its
//! parameters — every input is key-derived by construction.

pub fn eval_classifier_guarded(seed: u64, scale: u64) -> u64 {
    mix(seed, scale)
}

fn mix(a: u64, b: u64) -> u64 {
    a ^ b.rotate_left(7)
}
