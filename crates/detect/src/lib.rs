//! # rein-detect
//!
//! The 19 error detection methods of the paper's Table 1, re-implemented
//! from scratch behind one [`context::Detector`] trait. Category I
//! (non-learning) methods run from rules, statistics or knowledge bases;
//! category II (ML-supported) methods learn a cell classifier, using a
//! ground-truth-backed [`context::Oracle`] to simulate the human annotator
//! exactly as the original benchmark does.

// Numeric kernels index several parallel arrays at once; iterator zips
// would obscure them.
#![allow(clippy::needless_range_loop)]

pub mod cleanlab;
pub mod context;
pub mod dboost;
pub mod duplicates;
pub mod ed2;
pub mod ensemble;
pub mod fahes;
pub mod features;
pub mod holoclean;
pub mod isolation_forest;
pub mod katara;
pub mod metadata;
pub mod nadeef;
pub mod openrefine;
pub mod picket;
pub mod raha;
pub mod simple;

pub use context::{DetectContext, Detector, KnowledgeBase, Oracle};

use rein_data::ErrorType;
use serde::{Deserialize, Serialize};

/// Methodology category (Table 1's "Cat." column).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DetectorCategory {
    /// Non-learning: rules, statistics, knowledge bases.
    NonLearning,
    /// ML-supported: formulate detection as classification.
    MlSupported,
}

/// Cleaning signals a detector requires (Table 1's "Configs" column).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Signal {
    /// FD rules / patterns.
    FdRules,
    /// Denial constraints.
    DenialConstraints,
    /// Knowledge base.
    KnowledgeBase,
    /// Key columns.
    KeyColumns,
    /// Oracle labels.
    Labels,
    /// A label column in the dataset.
    LabelColumn,
}

/// The 19 detectors of Table 1, keyed by the paper's index letter.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DetectorKind {
    /// K — KATARA.
    Katara,
    /// N — NADEEF.
    Nadeef,
    /// F — FAHES.
    Fahes,
    /// H — HoloClean (detection stage).
    HoloClean,
    /// B — dBoost.
    DBoost,
    /// O — OpenRefine.
    OpenRefine,
    /// I — Isolation Forest.
    IsolationForest,
    /// S — Standard deviation rule.
    Sd,
    /// Q — IQR rule.
    Iqr,
    /// V — Missing-value detector.
    MvDetector,
    /// D — Key collision.
    KeyCollision,
    /// Z — ZeroER.
    ZeroEr,
    /// C — CleanLab.
    CleanLab,
    /// M — Min-K ensemble.
    MinK,
    /// X — Max-Entropy ensemble.
    MaxEntropy,
    /// T — Metadata-driven.
    MetadataDriven,
    /// R — RAHA.
    Raha,
    /// E — ED2.
    Ed2,
    /// P — Picket.
    Picket,
}

impl DetectorKind {
    /// All 19 detectors in Table 1 order.
    pub const ALL: [DetectorKind; 19] = [
        DetectorKind::Katara,
        DetectorKind::Nadeef,
        DetectorKind::Fahes,
        DetectorKind::HoloClean,
        DetectorKind::DBoost,
        DetectorKind::OpenRefine,
        DetectorKind::IsolationForest,
        DetectorKind::Sd,
        DetectorKind::Iqr,
        DetectorKind::MvDetector,
        DetectorKind::KeyCollision,
        DetectorKind::ZeroEr,
        DetectorKind::CleanLab,
        DetectorKind::MinK,
        DetectorKind::MaxEntropy,
        DetectorKind::MetadataDriven,
        DetectorKind::Raha,
        DetectorKind::Ed2,
        DetectorKind::Picket,
    ];

    /// The paper's single-letter index (Table 1).
    pub fn index_letter(self) -> char {
        match self {
            DetectorKind::Katara => 'K',
            DetectorKind::Nadeef => 'N',
            DetectorKind::Fahes => 'F',
            DetectorKind::HoloClean => 'H',
            DetectorKind::DBoost => 'B',
            DetectorKind::OpenRefine => 'O',
            DetectorKind::IsolationForest => 'I',
            DetectorKind::Sd => 'S',
            DetectorKind::Iqr => 'Q',
            DetectorKind::MvDetector => 'V',
            DetectorKind::KeyCollision => 'D',
            DetectorKind::ZeroEr => 'Z',
            DetectorKind::CleanLab => 'C',
            DetectorKind::MinK => 'M',
            DetectorKind::MaxEntropy => 'X',
            DetectorKind::MetadataDriven => 'T',
            DetectorKind::Raha => 'R',
            DetectorKind::Ed2 => 'E',
            DetectorKind::Picket => 'P',
        }
    }

    /// Canonical name.
    pub fn name(self) -> &'static str {
        match self {
            DetectorKind::Katara => "katara",
            DetectorKind::Nadeef => "nadeef",
            DetectorKind::Fahes => "fahes",
            DetectorKind::HoloClean => "holoclean",
            DetectorKind::DBoost => "dboost",
            DetectorKind::OpenRefine => "openrefine",
            DetectorKind::IsolationForest => "isolation_forest",
            DetectorKind::Sd => "sd",
            DetectorKind::Iqr => "iqr",
            DetectorKind::MvDetector => "mv_detector",
            DetectorKind::KeyCollision => "key_collision",
            DetectorKind::ZeroEr => "zeroer",
            DetectorKind::CleanLab => "cleanlab",
            DetectorKind::MinK => "min_k",
            DetectorKind::MaxEntropy => "max_entropy",
            DetectorKind::MetadataDriven => "metadata_driven",
            DetectorKind::Raha => "raha",
            DetectorKind::Ed2 => "ed2",
            DetectorKind::Picket => "picket",
        }
    }

    /// Methodology category (Table 1).
    pub fn category(self) -> DetectorCategory {
        match self {
            DetectorKind::MetadataDriven
            | DetectorKind::Raha
            | DetectorKind::Ed2
            | DetectorKind::Picket => DetectorCategory::MlSupported,
            _ => DetectorCategory::NonLearning,
        }
    }

    /// Error types the method tackles (Table 1's "Tackled Errors"; holistic
    /// methods list everything except duplicates/mislabels where the paper
    /// notes they do not apply).
    pub fn tackled_errors(self) -> Vec<ErrorType> {
        use ErrorType::*;
        match self {
            DetectorKind::Katara => vec![PatternViolation, Inconsistency, Typo],
            DetectorKind::Nadeef => vec![RuleViolation, PatternViolation, Typo],
            DetectorKind::Fahes => vec![ImplicitMissingValue],
            DetectorKind::HoloClean => vec![RuleViolation, MissingValue],
            DetectorKind::DBoost => vec![Outlier, GaussianNoise],
            DetectorKind::OpenRefine => vec![Inconsistency],
            DetectorKind::IsolationForest | DetectorKind::Sd | DetectorKind::Iqr => {
                vec![Outlier, GaussianNoise]
            }
            DetectorKind::MvDetector => vec![MissingValue],
            DetectorKind::KeyCollision | DetectorKind::ZeroEr => vec![Duplicate],
            DetectorKind::CleanLab => vec![Mislabel],
            DetectorKind::MinK
            | DetectorKind::MaxEntropy
            | DetectorKind::MetadataDriven
            | DetectorKind::Raha
            | DetectorKind::Ed2
            | DetectorKind::Picket => vec![
                MissingValue,
                ImplicitMissingValue,
                Outlier,
                Typo,
                RuleViolation,
                PatternViolation,
                Inconsistency,
                GaussianNoise,
                ValueSwap,
            ],
        }
    }

    /// Signals the method needs (Table 1's "Configs").
    pub fn required_signals(self) -> Vec<Signal> {
        match self {
            DetectorKind::Katara => vec![Signal::KnowledgeBase],
            DetectorKind::Nadeef => vec![Signal::FdRules],
            DetectorKind::HoloClean => vec![Signal::DenialConstraints],
            DetectorKind::KeyCollision => vec![Signal::KeyColumns],
            DetectorKind::ZeroEr => vec![Signal::KeyColumns],
            DetectorKind::CleanLab => vec![Signal::LabelColumn],
            DetectorKind::MetadataDriven | DetectorKind::Raha | DetectorKind::Ed2 => {
                vec![Signal::Labels]
            }
            _ => vec![],
        }
    }

    /// Builds the detector with its default configuration.
    pub fn build(self) -> Box<dyn Detector> {
        match self {
            DetectorKind::Katara => Box::new(katara::Katara::default()),
            DetectorKind::Nadeef => Box::new(nadeef::Nadeef::default()),
            DetectorKind::Fahes => Box::new(fahes::Fahes::default()),
            DetectorKind::HoloClean => Box::new(holoclean::HoloCleanDetect),
            DetectorKind::DBoost => Box::new(dboost::DBoost::default()),
            DetectorKind::OpenRefine => Box::new(openrefine::OpenRefine),
            DetectorKind::IsolationForest => Box::new(isolation_forest::IsolationForest::default()),
            DetectorKind::Sd => Box::new(simple::SdDetector::default()),
            DetectorKind::Iqr => Box::new(simple::IqrDetector::default()),
            DetectorKind::MvDetector => Box::new(simple::MvDetector),
            DetectorKind::KeyCollision => Box::new(duplicates::KeyCollision),
            DetectorKind::ZeroEr => Box::new(duplicates::ZeroEr::default()),
            DetectorKind::CleanLab => Box::new(cleanlab::CleanLab::default()),
            DetectorKind::MinK => Box::new(ensemble::MinK::new(2)),
            DetectorKind::MaxEntropy => Box::new(ensemble::MaxEntropy::default()),
            DetectorKind::MetadataDriven => Box::new(metadata::MetadataDriven::default()),
            DetectorKind::Raha => Box::new(raha::Raha::default()),
            DetectorKind::Ed2 => Box::new(ed2::Ed2::default()),
            DetectorKind::Picket => Box::new(picket::Picket::default()),
        }
    }
}

#[cfg(test)]
mod registry_tests {
    use super::*;

    #[test]
    fn nineteen_detectors_with_unique_letters() {
        assert_eq!(DetectorKind::ALL.len(), 19);
        let mut letters: Vec<char> = DetectorKind::ALL.iter().map(|d| d.index_letter()).collect();
        letters.sort_unstable();
        letters.dedup();
        assert_eq!(letters.len(), 19);
    }

    #[test]
    fn four_ml_supported_detectors() {
        let ml = DetectorKind::ALL
            .iter()
            .filter(|d| d.category() == DetectorCategory::MlSupported)
            .count();
        assert_eq!(ml, 4); // Meta, RAHA, ED2, Picket
    }

    #[test]
    fn every_kind_builds_and_names_match() {
        for kind in DetectorKind::ALL {
            let d = kind.build();
            assert_eq!(d.name(), kind.name());
        }
    }

    #[test]
    fn every_kind_runs_on_a_bare_context() {
        use rein_data::{ColumnMeta, ColumnType, Schema, Table, Value};
        let schema = Schema::new(vec![
            ColumnMeta::new("x", ColumnType::Float),
            ColumnMeta::new("c", ColumnType::Str),
        ]);
        let t = Table::from_rows(
            schema,
            (0..40)
                .map(|i| vec![Value::Float(1.0 + (i % 4) as f64), Value::str(["p", "q"][i % 2])])
                .collect(),
        );
        let ctx = context::DetectContext::bare(&t);
        for kind in DetectorKind::ALL {
            let mask = kind.build().detect(&ctx);
            assert_eq!(mask.rows(), 40, "{}", kind.name());
        }
    }

    #[test]
    fn capability_tables_are_consistent() {
        for kind in DetectorKind::ALL {
            assert!(!kind.tackled_errors().is_empty(), "{}", kind.name());
        }
        // Duplicate detectors and only they tackle duplicates.
        for kind in DetectorKind::ALL {
            let dups = kind.tackled_errors().contains(&rein_data::ErrorType::Duplicate);
            let is_dup_detector = matches!(kind, DetectorKind::KeyCollision | DetectorKind::ZeroEr);
            assert_eq!(dups, is_dup_detector, "{}", kind.name());
        }
    }
}
