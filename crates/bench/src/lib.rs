//! # rein-bench
//!
//! The experiment harness reproducing every table and figure of the
//! paper's evaluation (§6). Each `src/bin/` binary regenerates one
//! artefact and prints the same rows/series the paper reports; the
//! `benches/` directory holds the Criterion runtime benchmarks.
//!
//! All binaries honour the `REIN_SCALE` environment variable (default
//! `0.05`): dataset row counts are `REIN_SCALE ×` the paper's Table 4
//! sizes, so a laptop run finishes in minutes while `REIN_SCALE=1` runs
//! the full-size study.

pub mod perf;

use rein_core::{DetectorHarness, DetectorRun, GuardPolicy};
use rein_datasets::{DatasetId, GeneratedDataset, Params};
use rein_detect::DetectorKind;
pub use rein_telemetry::{RunConfig, RunManifest, Span};

/// Default for `REIN_SCALE`.
pub const DEFAULT_SCALE: f64 = 0.05;

/// Default for `REIN_REPEATS` (the paper uses 10).
pub const DEFAULT_REPEATS: usize = 3;

/// Default repeats for the perf suite when `REIN_REPEATS` is unset. The
/// regression gate runs a paired Wilcoxon over the repeat timings and
/// the exact test cannot reach p < 0.05 with fewer than 6 pairs, so the
/// perf default is higher than [`DEFAULT_REPEATS`].
pub const DEFAULT_PERF_REPEATS: usize = 7;

/// Terminates the process over an unusable environment override. A
/// typo'd `REIN_SCALE=0.5x` silently running the full-size study (or a
/// tiny one) produces misleading artefacts, so a value that is set but
/// unparsable is a hard error, never a silent default.
fn reject_env(var: &str, raw: &str, want: &str) -> ! {
    eprintln!("error: {var}={raw:?} is invalid: want {want} (unset it to use the default)");
    std::process::exit(2);
}

/// Reads the global scale factor (`REIN_SCALE`, default
/// [`DEFAULT_SCALE`]). A value that is set but not a positive finite
/// number terminates the process with a clear message — see
/// [`reject_env`]. Parsed once per process — the bins call this in
/// every loop iteration.
pub fn scale() -> f64 {
    static SCALE: std::sync::OnceLock<f64> = std::sync::OnceLock::new();
    *SCALE.get_or_init(|| match std::env::var("REIN_SCALE") {
        Err(_) => DEFAULT_SCALE,
        Ok(raw) => match raw.parse::<f64>() {
            Ok(s) if s > 0.0 && s.is_finite() => s,
            _ => reject_env("REIN_SCALE", &raw, "a positive finite number"),
        },
    })
}

/// Reads the repeat count for stochastic experiments (`REIN_REPEATS`,
/// default [`DEFAULT_REPEATS`]). A value that is set but not a positive
/// integer terminates the process with a clear message — see
/// [`reject_env`]. Parsed once per process, like [`scale`].
pub fn repeats() -> usize {
    static REPEATS: std::sync::OnceLock<usize> = std::sync::OnceLock::new();
    *REPEATS.get_or_init(|| match std::env::var("REIN_REPEATS") {
        Err(_) => DEFAULT_REPEATS,
        Ok(raw) => match raw.parse::<usize>() {
            Ok(r) if r > 0 => r,
            _ => reject_env("REIN_REPEATS", &raw, "a positive integer"),
        },
    })
}

/// Whether the opt-in grid progress heartbeat is enabled
/// (`REIN_PROGRESS`, default off). The controller prints one
/// deterministic-content line per completed grid phase on stderr when
/// this is set — useful for watching a long full-scale run without
/// perturbing any artefact. Accepts `1`/`true` (on) and `0`/`false`/
/// empty (off); anything else is rejected like the other overrides.
pub fn progress() -> bool {
    static PROGRESS: std::sync::OnceLock<bool> = std::sync::OnceLock::new();
    *PROGRESS.get_or_init(|| match std::env::var("REIN_PROGRESS") {
        Err(_) => false,
        Ok(raw) => match raw.as_str() {
            "" | "0" | "false" => false,
            "1" | "true" => true,
            _ => reject_env("REIN_PROGRESS", &raw, "1/true to enable or 0/false to disable"),
        },
    })
}

/// Repeat count for the perf suite: `REIN_REPEATS` when set (validated
/// like [`repeats`]), otherwise [`DEFAULT_PERF_REPEATS`].
pub fn perf_repeats() -> usize {
    if std::env::var_os("REIN_REPEATS").is_some() {
        repeats()
    } else {
        DEFAULT_PERF_REPEATS
    }
}

/// The configured worker-thread count, plumbed from exactly one place
/// so every artifact echoes the same number: `REIN_THREADS` when set
/// (validated like the other overrides), otherwise the rayon pool width
/// ([`rayon::current_num_threads`]). Both `BENCH_*.json` reports and
/// run manifests echo this value — the parallelism speedup curve is
/// only readable if the thread axis is recorded honestly.
pub fn worker_threads() -> u32 {
    static THREADS: std::sync::OnceLock<u32> = std::sync::OnceLock::new();
    *THREADS.get_or_init(|| match std::env::var("REIN_THREADS") {
        Err(_) => rayon::current_num_threads() as u32,
        Ok(raw) => match raw.parse::<u32>() {
            Ok(t) if t > 0 => t,
            _ => reject_env("REIN_THREADS", &raw, "a positive integer"),
        },
    })
}

/// Installs the global rayon pool sized by [`worker_threads`], so grid
/// execution actually honours `REIN_THREADS` instead of merely echoing
/// it into the run manifest. Called by [`controller`], which every
/// bench binary goes through. Harmless when a pool already exists —
/// rayon forbids re-configuration, so the first installer wins — which
/// is exactly what scoped-pool callers like `parallel_smoke` rely on.
pub fn install_thread_pool() {
    // An Err means a global pool is already installed; its size wins.
    let _ = rayon::ThreadPoolBuilder::new().num_threads(worker_threads() as usize).build_global();
}

/// Opens a top-level phase span (named `phase:<name>`) for a section of
/// a benchmark binary. Phases land in the run manifest with their
/// durations; under `REIN_LOG=debug` they print open/close events.
pub fn phase(name: &str) -> Span {
    rein_telemetry::span(format!("phase:{name}"))
}

/// The counters every run manifest should carry, even when a phase that
/// would increment them did not run.
const STANDARD_COUNTERS: [&str; 5] =
    ["cells_scanned", "detector_invocations", "model_fits", "repair_applications", "rng_draws"];

/// Collects the run's telemetry into a manifest for `binary` and writes
/// it to `artifacts/telemetry/<binary>-<seed>.json`, printing the path
/// it wrote so every benchmark run names its artefacts. Failures are
/// reported on stderr, not panics — a missing manifest must not fail a
/// benchmark run that already printed its report.
#[allow(clippy::print_stdout)] // the artifact-path announcement is part of the report surface
pub fn write_run_manifest(binary: &str, seed: u64, label_budget: u64) {
    for name in STANDARD_COUNTERS {
        rein_telemetry::counter(name);
    }
    let config = RunConfig {
        scale: scale(),
        repeats: repeats() as u32,
        seed,
        label_budget,
        threads: worker_threads(),
    };
    let manifest = RunManifest::collect(binary, config);
    match manifest.write() {
        Ok(path) => {
            rein_telemetry::info!(
                "{} spans, {} counters -> {}",
                manifest.spans.len(),
                manifest.counters.len(),
                path.display()
            );
            println!("telemetry manifest: {}", path.display());
            // Register the run in the cross-run ledger so the report
            // generator sees it without a full rescan. Registration is
            // idempotent: re-running the same configuration maps to the
            // same content key and leaves the index untouched.
            match rein_ledger::register_run(std::path::Path::new("."), &manifest, &path) {
                Ok(true) => println!("ledger: registered {}", path.display()),
                Ok(false) => println!("ledger: already known, index unchanged"),
                Err(e) => eprintln!("warning: ledger registration failed for {binary}: {e}"),
            }
        }
        Err(e) => eprintln!("warning: failed to write run manifest for {binary}: {e}"),
    }
}

/// Writes a grid's serialized cells (see `Controller::run_grid`) to a
/// stable text file: a `== <key> (<len> bytes)` header per cell followed
/// by the cell's bytes. Byte-identical grids produce byte-identical
/// files, so CI compares dumps across `REIN_THREADS` settings by hash.
pub fn dump_cells(
    path: &std::path::Path,
    cells: &std::collections::BTreeMap<String, String>,
) -> std::io::Result<()> {
    if let Some(dir) = path.parent() {
        if !dir.as_os_str().is_empty() {
            std::fs::create_dir_all(dir)?;
        }
    }
    let mut out = String::new();
    for (key, bytes) in cells {
        out.push_str(&format!("== {key} ({} bytes)\n", bytes.len()));
        out.push_str(bytes);
        out.push('\n');
    }
    std::fs::write(path, out)
}

/// Exit code for a run that completed but degraded at least one grid
/// cell (distinct from `2` = bad environment and `1` = crash).
pub const FAILURE_EXIT: i32 = 3;

/// The supervision policy for bench binaries: chaos injection from the
/// `REIN_CHAOS` environment variable and crash injection from
/// `REIN_CRASH` (both empty when unset), default retries and budgets.
/// A set-but-unparsable spec is rejected like any other bad
/// environment override.
pub fn guard_policy() -> GuardPolicy {
    let chaos = match rein_core::ChaosSpec::from_env() {
        Ok(chaos) => chaos,
        Err(e) => reject_env(
            "REIN_CHAOS",
            &std::env::var("REIN_CHAOS").unwrap_or_default(),
            &format!("a chaos spec like detect:raha=panic ({e})"),
        ),
    };
    let crash = match rein_core::CrashSpec::from_env() {
        Ok(crash) => crash,
        Err(e) => reject_env(
            "REIN_CRASH",
            &std::env::var("REIN_CRASH").unwrap_or_default(),
            &format!("a crash spec like detect:raha=before ({e})"),
        ),
    };
    let mut policy = GuardPolicy::with_chaos(chaos);
    policy.crash = crash;
    policy
}

/// Reads the durable cell-store selector (`REIN_STORE`, default off):
/// unset, empty, `0` or `off` runs store-less; `1`/`on` selects the
/// standard `artifacts/store` root; any other value is used as the
/// store root path directly. Parsed once per process.
pub fn store_root() -> Option<std::path::PathBuf> {
    static ROOT: std::sync::OnceLock<Option<std::path::PathBuf>> = std::sync::OnceLock::new();
    ROOT.get_or_init(|| match std::env::var("REIN_STORE") {
        Err(_) => None,
        Ok(raw) => match raw.as_str() {
            "" | "0" | "off" => None,
            "1" | "on" => Some(std::path::PathBuf::from("artifacts/store")),
            path => Some(std::path::PathBuf::from(path)),
        },
    })
    .clone()
}

/// Opens (once per process) the durable cell store selected by
/// `REIN_STORE`, running write-ahead-journal recovery. `None` when the
/// store is off. An unopenable root is a hard environment error like
/// any other bad override — silently running store-less would make a
/// "resumed" run recompute everything while claiming to resume.
/// Recovery that quarantined corrupt records is reported on stderr
/// (the store also writes `quarantine/report.json`), never silent.
pub fn open_store() -> Option<std::sync::Arc<rein_store::Store>> {
    static STORE: std::sync::OnceLock<Option<std::sync::Arc<rein_store::Store>>> =
        std::sync::OnceLock::new();
    STORE
        .get_or_init(|| {
            let root = store_root()?;
            match rein_store::Store::open(&root) {
                Ok(store) => {
                    let recovery = store.recovery();
                    if !recovery.quarantined.is_empty() {
                        eprintln!(
                            "warning: store recovery quarantined {} corrupt record stretch(es); \
                             see {}",
                            recovery.quarantined.len(),
                            rein_store::Store::quarantine_report_path(store.store_root()).display()
                        );
                    }
                    Some(std::sync::Arc::new(store))
                }
                Err(e) => reject_env(
                    "REIN_STORE",
                    &root.display().to_string(),
                    &format!("an openable store root ({e})"),
                ),
            }
        })
        .clone()
}

/// A controller wired with the environment's chaos/crash policy, the
/// environment's durable store (if any) and the given seed/budget —
/// the standard way bench binaries obtain one.
pub fn controller(label_budget: usize, seed: u64) -> rein_core::Controller {
    install_thread_pool();
    rein_core::Controller {
        label_budget,
        seed,
        policy: guard_policy(),
        scale: scale(),
        progress: progress(),
        store: open_store(),
    }
}

/// Finishes a benchmark binary: writes the run manifest and exits with
/// [`FAILURE_EXIT`] when any guarded strategy degraded during the run
/// (the manifest's `failures` array holds the details), `0` otherwise.
/// Binaries call this instead of returning from `main` so partial
/// results are always accompanied by an honest exit status.
#[allow(clippy::print_stdout)] // the failure summary is part of the report surface
pub fn conclude(binary: &str, seed: u64, label_budget: u64) -> ! {
    write_run_manifest(binary, seed, label_budget);
    let failures = rein_telemetry::failures_snapshot();
    if failures.is_empty() {
        std::process::exit(0);
    }
    println!("\n{} strategy failure(s) degraded this run:", failures.len());
    for f in &failures {
        let scope = if f.scope.is_empty() { String::new() } else { format!("#{}", f.scope) };
        println!(
            "  {}:{}@{}{}: {} (attempts {})",
            f.phase, f.strategy, f.dataset, scope, f.cause, f.attempts
        );
    }
    std::process::exit(FAILURE_EXIT);
}

/// Generates a dataset at the global scale.
pub fn dataset(id: DatasetId, seed: u64) -> GeneratedDataset {
    id.generate(&Params::scaled(scale(), seed))
}

/// Generates a dataset at an explicit scale.
pub fn dataset_at(id: DatasetId, size_factor: f64, seed: u64) -> GeneratedDataset {
    id.generate(&Params::scaled(size_factor, seed))
}

/// Runs a list of detectors on a dataset (planned signals supplied).
/// Each detector runs guarded under the chaos policy from the
/// environment ([`guard_policy`]).
pub fn run_detectors(
    ds: &GeneratedDataset,
    kinds: &[DetectorKind],
    budget: usize,
    seed: u64,
) -> Vec<DetectorRun> {
    let harness = DetectorHarness::new(ds, budget, seed).with_policy(guard_policy());
    kinds.iter().map(|&k| harness.run(ds, k)).collect()
}

/// Section header in the emitted reports.
#[allow(clippy::print_stdout)] // the one sanctioned stdout emitter for benchmark reports
pub fn header(title: &str) {
    println!("\n=== {title} ===");
}

/// Prints a row of fixed-width cells.
#[allow(clippy::print_stdout)] // the one sanctioned stdout emitter for benchmark reports
pub fn row(cells: &[String]) {
    let line: Vec<String> = cells.iter().map(|c| format!("{c:>12}")).collect();
    println!("{}", line.join(" "));
}

/// Formats a float for report output.
pub fn f(v: f64) -> String {
    if v.is_nan() {
        "-".to_string()
    } else if v.abs() >= 1000.0 {
        format!("{v:.0}")
    } else {
        format!("{v:.3}")
    }
}

/// Formats an optional float.
pub fn fo(v: Option<f64>) -> String {
    v.map_or("-".to_string(), f)
}

/// Formats a duration in seconds with millisecond resolution.
pub fn secs(d: std::time::Duration) -> String {
    format!("{:.3}s", d.as_secs_f64())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_default_and_override() {
        // Default path (env var may be absent in tests).
        let s = scale();
        assert!(s > 0.0);
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(f(0.5), "0.500");
        assert_eq!(f(f64::NAN), "-");
        assert_eq!(f(12345.0), "12345");
        assert_eq!(fo(None), "-");
        assert_eq!(fo(Some(1.0)), "1.000");
    }

    #[test]
    fn dataset_helper_generates() {
        let ds = dataset_at(DatasetId::BreastCancer, 0.2, 1);
        assert!(ds.clean.n_rows() >= 20);
    }

    #[test]
    fn store_off_selector_runs_the_grid_store_less() {
        // Back-compat: REIN_STORE=off (and unset) must behave exactly
        // like the pre-store harness — no store opened, no journal
        // touched, controller in direct mode.
        std::env::set_var("REIN_STORE", "off");
        assert!(store_root().is_none());
        assert!(open_store().is_none());
        let ctrl = controller(10, 1);
        assert!(ctrl.store.is_none(), "REIN_STORE=off must run store-less");
    }
}
