//! Ablation: rule-based detectors vs the number of provided rules.
//!
//! The paper reports HoloClean's F1 on Adult dropping from 0.51 to 0.12
//! when the rule set shrinks from 17 to 7 rules. This harness plants a
//! configurable number of FDs into a wide synthetic table, violates all of
//! them, and hands the rule-based detectors progressively larger rule
//! subsets.

// Benchmark bins emit their report tables on stdout by design.
#![allow(clippy::print_stdout)]

use rand::prelude::*;
use rand::rngs::StdRng;
use rein_bench::{conclude, f, header, phase};
use rein_constraints::fd::FunctionalDependency;
use rein_data::diff::diff_mask;
use rein_data::{ColumnMeta, ColumnRole, ColumnType, Schema, Table, Value};
use rein_detect::{DetectContext, DetectorKind};
use rein_errors::compose::{compose, ErrorSpec};
use rein_stats::evaluate_detection;

/// Builds a table with `n_fds` independent FD pairs (code_i → name_i).
fn build(n_rows: usize, n_fds: usize, seed: u64) -> (Table, Vec<FunctionalDependency>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut metas = Vec::new();
    let mut cols: Vec<Vec<Value>> = Vec::new();
    for i in 0..n_fds {
        metas.push(ColumnMeta::new(format!("code_{i}"), ColumnType::Str));
        metas.push(ColumnMeta::new(format!("name_{i}"), ColumnType::Str));
        let mut code = Vec::with_capacity(n_rows);
        let mut name = Vec::with_capacity(n_rows);
        for _ in 0..n_rows {
            let v = rng.random_range(0..5u8);
            code.push(Value::str(format!("c{i}_{v}")));
            name.push(Value::str(format!("n{i}_{v}")));
        }
        cols.push(code);
        cols.push(name);
    }
    let mut schema_cols = metas;
    for c in &mut schema_cols {
        c.role = ColumnRole::Feature;
    }
    let table = Table::from_columns(Schema::new(schema_cols), cols);
    let fds = (0..n_fds).map(|i| FunctionalDependency::new([2 * i], 2 * i + 1)).collect();
    (table, fds)
}

fn main() {
    let setup = phase("setup");
    let n_fds = 16usize;
    let (clean, fds) = build(1500, n_fds, 3);
    // Violate every FD at a uniform rate.
    let specs: Vec<ErrorSpec> =
        fds.iter().map(|fd| ErrorSpec::FdViolations { fd: fd.clone(), rate: 0.08 }).collect();
    let dirty = compose(&clean, &specs, 11);
    let actual = diff_mask(&clean, &dirty.dirty);
    drop(setup);

    header("Ablation — rule-based detection F1 vs number of provided rules");
    println!("(planted FDs: {n_fds}, all violated; detectors see the first k rules)");
    println!("{:<12} {:>10} {:>10}", "k rules", "holoclean", "nadeef");
    let policy = rein_bench::guard_policy();
    let sweep = phase("sweep");
    for k in [1, 3, 5, 7, 10, 13, 16] {
        let subset = &fds[..k.min(fds.len())];
        let ctx = DetectContext { fds: subset, ..DetectContext::bare(&dirty.dirty) };
        let empty = || rein_data::CellMask::new(dirty.dirty.n_rows(), dirty.dirty.n_cols());
        let (holo_mask, _) =
            rein_core::detect_with_context(DetectorKind::HoloClean, &ctx, "synthetic", &policy);
        let holo = evaluate_detection(&holo_mask.unwrap_or_else(|_| empty()), &actual);
        let (nadeef_mask, _) =
            rein_core::detect_with_context(DetectorKind::Nadeef, &ctx, "synthetic", &policy);
        let nadeef = evaluate_detection(&nadeef_mask.unwrap_or_else(|_| empty()), &actual);
        println!("{:<12} {:>10} {:>10}", k, f(holo.f1), f(nadeef.f1));
    }
    drop(sweep);
    let report = phase("report");
    println!("\nF1 grows with the rule budget — the paper's HoloClean 17→7 rule finding.");
    drop(report);
    conclude("ablation_rules", 3, 0);
}
