//! # rein-repair
//!
//! The 19 data repair methods of the paper's Table 1 (right half) behind a
//! single [`context::Repairer`] trait. Generic methods (category I) return
//! a repaired table; ML-oriented methods (category II — ActiveClean,
//! BoostClean, CPClean) return a [`context::TrainedPipeline`] evaluated
//! under scenario S5.

// Numeric kernels index several parallel arrays at once; iterator zips
// would obscure them.
#![allow(clippy::needless_range_loop)]

pub mod baran;
pub mod cleanlab;
pub mod context;
pub mod generic;
pub mod imputers;
pub mod ml_oriented;
pub mod rulebased;

pub use context::{RepairContext, RepairOutcome, Repairer, TrainedPipeline};

use serde::{Deserialize, Serialize};

/// Intervention category (Table 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum RepairCategory {
    /// Generic: directly modifies the dirty dataset.
    Generic,
    /// ML-oriented: jointly optimises cleaning and modelling; outputs a
    /// model.
    MlOriented,
}

/// The 19 repair methods of Table 1 (indices 1–19).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum RepairKind {
    /// 1 — ground truth (upper bound).
    GroundTruth,
    /// 2 — delete flagged rows.
    Delete,
    /// 3 — mean-mode imputation.
    ImputeMeanMode,
    /// 4 — median-mode imputation.
    ImputeMedianMode,
    /// 5 — mode-mode imputation.
    ImputeModeMode,
    /// 6 — missForest, mixed mode.
    MissMix,
    /// 7 — DataWig, mixed mode.
    DataWigMix,
    /// 8 — missForest, separate mode.
    MissSep,
    /// 9 — missForest + DataWig.
    MissDataWig,
    /// 10 — decision tree + missForest.
    DtMiss,
    /// 11 — Bayesian ridge + missForest.
    BayesMiss,
    /// 12 — k-NN + missForest.
    KnnMiss,
    /// 13 — HoloClean repair.
    HoloClean,
    /// 14 — OpenRefine repair.
    OpenRefine,
    /// 15 — BARAN.
    Baran,
    /// 16 — CleanLab relabelling.
    CleanLab,
    /// 17 — ActiveClean.
    ActiveClean,
    /// 18 — BoostClean.
    BoostClean,
    /// 19 — CPClean.
    CpClean,
}

impl RepairKind {
    /// All 19 methods in Table 1 order.
    pub const ALL: [RepairKind; 19] = [
        RepairKind::GroundTruth,
        RepairKind::Delete,
        RepairKind::ImputeMeanMode,
        RepairKind::ImputeMedianMode,
        RepairKind::ImputeModeMode,
        RepairKind::MissMix,
        RepairKind::DataWigMix,
        RepairKind::MissSep,
        RepairKind::MissDataWig,
        RepairKind::DtMiss,
        RepairKind::BayesMiss,
        RepairKind::KnnMiss,
        RepairKind::HoloClean,
        RepairKind::OpenRefine,
        RepairKind::Baran,
        RepairKind::CleanLab,
        RepairKind::ActiveClean,
        RepairKind::BoostClean,
        RepairKind::CpClean,
    ];

    /// Table 1 index (1-based).
    pub fn index(self) -> usize {
        // audit:allow(panic, every RepairKind is listed in ALL)
        RepairKind::ALL.iter().position(|k| *k == self).expect("in ALL") + 1
    }

    /// Canonical name.
    pub fn name(self) -> &'static str {
        match self {
            RepairKind::GroundTruth => "ground_truth",
            RepairKind::Delete => "delete",
            RepairKind::ImputeMeanMode => "impute_mean_mode",
            RepairKind::ImputeMedianMode => "impute_median_mode",
            RepairKind::ImputeModeMode => "impute_mode_mode",
            RepairKind::MissMix => "miss_mix",
            RepairKind::DataWigMix => "datawig_mix",
            RepairKind::MissSep => "miss_sep",
            RepairKind::MissDataWig => "miss_datawig",
            RepairKind::DtMiss => "dt_miss",
            RepairKind::BayesMiss => "bayes_miss",
            RepairKind::KnnMiss => "knn_miss",
            RepairKind::HoloClean => "holoclean",
            RepairKind::OpenRefine => "openrefine",
            RepairKind::Baran => "baran",
            RepairKind::CleanLab => "cleanlab",
            RepairKind::ActiveClean => "activeclean",
            RepairKind::BoostClean => "boostclean",
            RepairKind::CpClean => "cpclean",
        }
    }

    /// Intervention category (Table 1).
    pub fn category(self) -> RepairCategory {
        match self {
            RepairKind::ActiveClean | RepairKind::BoostClean | RepairKind::CpClean => {
                RepairCategory::MlOriented
            }
            _ => RepairCategory::Generic,
        }
    }

    /// Whether the method needs a dataset label column.
    pub fn needs_label_column(self) -> bool {
        matches!(
            self,
            RepairKind::CleanLab
                | RepairKind::ActiveClean
                | RepairKind::BoostClean
                | RepairKind::CpClean
        )
    }

    /// Builds the repairer with default configuration.
    pub fn build(self) -> Box<dyn Repairer> {
        match self {
            RepairKind::GroundTruth => Box::new(generic::GroundTruthRepair),
            RepairKind::Delete => Box::new(generic::DeleteRows),
            RepairKind::ImputeMeanMode => Box::new(generic::StandardImpute::mean_mode()),
            RepairKind::ImputeMedianMode => Box::new(generic::StandardImpute::median_mode()),
            RepairKind::ImputeModeMode => Box::new(generic::StandardImpute::mode_mode()),
            RepairKind::MissMix => Box::new(imputers::MlImputer::miss_mix()),
            RepairKind::DataWigMix => Box::new(imputers::MlImputer::datawig_mix()),
            RepairKind::MissSep => Box::new(imputers::MlImputer::miss_sep()),
            RepairKind::MissDataWig => Box::new(imputers::MlImputer::miss_datawig()),
            RepairKind::DtMiss => Box::new(imputers::MlImputer::dt_miss()),
            RepairKind::BayesMiss => Box::new(imputers::MlImputer::bayes_miss()),
            RepairKind::KnnMiss => Box::new(imputers::MlImputer::knn_miss()),
            RepairKind::HoloClean => Box::new(rulebased::HoloCleanRepair),
            RepairKind::OpenRefine => Box::new(rulebased::OpenRefineRepair),
            RepairKind::Baran => Box::new(baran::Baran::default()),
            RepairKind::CleanLab => Box::new(cleanlab::CleanLabRepair),
            RepairKind::ActiveClean => Box::new(ml_oriented::ActiveClean::default()),
            RepairKind::BoostClean => Box::new(ml_oriented::BoostClean::default()),
            RepairKind::CpClean => Box::new(ml_oriented::CpClean::default()),
        }
    }
}

#[cfg(test)]
mod registry_tests {
    use super::*;
    use rein_data::diff::diff_mask;
    use rein_data::{ColumnMeta, ColumnType, Schema, Table, Value};

    fn dataset() -> (Table, Table, rein_data::CellMask) {
        let schema = Schema::new(vec![
            ColumnMeta::new("x", ColumnType::Float),
            ColumnMeta::new("c", ColumnType::Str),
            ColumnMeta::new("y", ColumnType::Str).label(),
        ]);
        let clean = Table::from_rows(
            schema,
            (0..60)
                .map(|i| {
                    vec![
                        Value::Float((i % 6) as f64),
                        Value::str(["a", "b", "c"][i % 3]),
                        Value::str(if i % 2 == 0 { "p" } else { "n" }),
                    ]
                })
                .collect(),
        );
        let mut dirty = clean.clone();
        dirty.set_cell(3, 0, Value::Float(400.0));
        dirty.set_cell(8, 1, Value::str("zzz"));
        dirty.set_cell(12, 2, Value::str("n"));
        let det = diff_mask(&clean, &dirty);
        (clean, dirty, det)
    }

    #[test]
    fn nineteen_methods_registered() {
        assert_eq!(RepairKind::ALL.len(), 19);
        assert_eq!(RepairKind::GroundTruth.index(), 1);
        assert_eq!(RepairKind::CpClean.index(), 19);
    }

    #[test]
    fn three_ml_oriented_methods() {
        let n =
            RepairKind::ALL.iter().filter(|k| k.category() == RepairCategory::MlOriented).count();
        assert_eq!(n, 3);
    }

    #[test]
    fn every_method_builds_and_runs() {
        let (clean, dirty, det) = dataset();
        for kind in RepairKind::ALL {
            let ctx = RepairContext {
                clean: Some(&clean),
                label_col: Some(2),
                ..RepairContext::new(&dirty, &det)
            };
            let repairer = kind.build();
            assert_eq!(repairer.name(), kind.name());
            let out = repairer.repair(&ctx);
            match (kind.category(), out) {
                (RepairCategory::Generic, RepairOutcome::Repaired { table, .. }) => {
                    assert!(table.n_rows() > 0, "{}", kind.name());
                }
                (RepairCategory::MlOriented, RepairOutcome::Model(p)) => {
                    assert!(!p.predict(&dirty).is_empty(), "{}", kind.name());
                }
                _ => panic!("{}: outcome kind mismatch", kind.name()),
            }
        }
    }

    #[test]
    fn generic_methods_never_modify_undetected_cells() {
        let (clean, dirty, det) = dataset();
        for kind in RepairKind::ALL {
            if kind.category() != RepairCategory::Generic || kind == RepairKind::Delete {
                continue;
            }
            let ctx = RepairContext {
                clean: Some(&clean),
                label_col: Some(2),
                ..RepairContext::new(&dirty, &det)
            };
            if let RepairOutcome::Repaired { table, row_map, .. } = kind.build().repair(&ctx) {
                for (out_r, &orig_r) in row_map.iter().enumerate() {
                    for c in 0..dirty.n_cols() {
                        if !det.get(orig_r, c) {
                            assert_eq!(
                                table.cell(out_r, c),
                                dirty.cell(orig_r, c),
                                "{} modified undetected cell ({orig_r},{c})",
                                kind.name()
                            );
                        }
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;
    use rein_data::{CellMask, ColumnMeta, ColumnType, Schema, Table, Value};

    /// Random small mixed table + detection mask.
    fn arb_case() -> impl Strategy<Value = (Table, CellMask)> {
        (10usize..40, prop::collection::vec((0usize..40, 0usize..2), 1..20)).prop_map(
            |(n, cells)| {
                let schema = Schema::new(vec![
                    ColumnMeta::new("x", ColumnType::Float),
                    ColumnMeta::new("c", ColumnType::Str),
                ]);
                let table = Table::from_rows(
                    schema,
                    (0..n)
                        .map(|i| {
                            vec![Value::Float((i % 7) as f64), Value::str(["a", "b", "c"][i % 3])]
                        })
                        .collect(),
                );
                let mask = CellMask::from_cells(
                    n,
                    2,
                    cells
                        .into_iter()
                        .filter(|&(r, _)| r < n)
                        .map(|(r, c)| rein_data::CellRef::new(r, c)),
                );
                (table, mask)
            },
        )
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]

        #[test]
        fn imputers_fill_all_detected_cells((table, mask) in arb_case()) {
            let ctx = RepairContext::new(&table, &mask);
            for kind in [
                RepairKind::ImputeMeanMode,
                RepairKind::ImputeMedianMode,
                RepairKind::ImputeModeMode,
            ] {
                if let RepairOutcome::Repaired { table: out, .. } = kind.build().repair(&ctx) {
                    for cell in mask.iter() {
                        prop_assert!(
                            !out.cell(cell.row, cell.col).is_null(),
                            "{} left a null at ({},{})", kind.name(), cell.row, cell.col
                        );
                    }
                } else {
                    prop_assert!(false, "imputer returned a model");
                }
            }
        }

        #[test]
        fn delete_keeps_only_clean_rows((table, mask) in arb_case()) {
            let ctx = RepairContext::new(&table, &mask);
            if let RepairOutcome::Repaired { table: out, row_map, .. } =
                RepairKind::Delete.build().repair(&ctx)
            {
                prop_assert_eq!(out.n_rows(), row_map.len());
                for &orig in &row_map {
                    for c in 0..table.n_cols() {
                        prop_assert!(!mask.get(orig, c));
                    }
                }
                let flagged_rows = mask.dirty_rows().len();
                prop_assert_eq!(out.n_rows(), table.n_rows() - flagged_rows);
            } else {
                prop_assert!(false, "delete returned a model");
            }
        }

        #[test]
        fn ground_truth_repair_is_idempotent((table, mask) in arb_case()) {
            // With clean == dirty (no actual errors), GT repair must be a
            // no-op that still reports the touched cells.
            let ctx = RepairContext { clean: Some(&table), ..RepairContext::new(&table, &mask) };
            if let RepairOutcome::Repaired { table: out, .. } =
                RepairKind::GroundTruth.build().repair(&ctx)
            {
                prop_assert_eq!(&out, &table);
            }
        }

        #[test]
        fn generic_repairs_preserve_untouched_cells((table, mask) in arb_case()) {
            let ctx = RepairContext { clean: Some(&table), ..RepairContext::new(&table, &mask) };
            for kind in [RepairKind::ImputeMeanMode, RepairKind::HoloClean, RepairKind::Baran] {
                if let RepairOutcome::Repaired { table: out, row_map, .. } =
                    kind.build().repair(&ctx)
                {
                    for (out_r, &orig) in row_map.iter().enumerate() {
                        for c in 0..table.n_cols() {
                            if !mask.get(orig, c) {
                                prop_assert_eq!(
                                    out.cell(out_r, c), table.cell(orig, c),
                                    "{} touched clean cell ({},{})", kind.name(), orig, c
                                );
                            }
                        }
                    }
                }
            }
        }
    }
}
