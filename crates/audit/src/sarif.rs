//! SARIF 2.1.0 export of the audit report, so CI can surface findings
//! as code-scanning annotations.
//!
//! The vendored serializer has no field-renaming support, and SARIF
//! needs keys like `$schema` and `ruleId`, so the document is built as
//! an explicit [`serde_json::Value`] tree. Key order is fixed by
//! construction, which keeps the output byte-stable across runs.

use serde::Serialize;
use serde_json::Value;

use crate::report::Report;

/// The vendored serializer takes `impl Serialize`, and `Value` is the
/// serializer's own content type — this wrapper hands it back as-is.
struct Doc(Value);

impl Serialize for Doc {
    fn serialize_content(&self) -> Value {
        self.0.clone()
    }
}

const SCHEMA: &str =
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/Schemata/sarif-schema-2.1.0.json";

fn s(v: &str) -> Value {
    Value::Str(v.to_string())
}

fn map(entries: Vec<(&str, Value)>) -> Value {
    Value::Map(entries.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
}

/// Renders the report as a SARIF 2.1.0 document (pretty-printed, with a
/// trailing newline; byte-identical for identical reports).
pub fn to_sarif(report: &Report) -> String {
    let rules: Vec<Value> = report
        .rules
        .iter()
        .map(|r| {
            map(vec![
                ("id", s(r.id)),
                ("shortDescription", map(vec![("text", s(r.description))])),
                ("helpUri", s(r.help_uri)),
            ])
        })
        .collect();
    let result = |v: &crate::rules::Violation, level: &str| {
        map(vec![
            ("ruleId", s(&v.rule)),
            ("level", s(level)),
            ("message", map(vec![("text", s(&v.message))])),
            (
                "locations",
                Value::Seq(vec![map(vec![(
                    "physicalLocation",
                    map(vec![
                        ("artifactLocation", map(vec![("uri", s(&v.path))])),
                        ("region", map(vec![("startLine", Value::U64(v.line.max(1) as u64))])),
                    ]),
                )])]),
            ),
        ])
    };
    // Blocking findings surface as errors, advisories as notes — code
    // scanning shows both without the notes failing the check.
    let results: Vec<Value> = report
        .violations
        .iter()
        .map(|v| result(v, "error"))
        .chain(report.advisories.iter().map(|v| result(v, "note")))
        .collect();
    let doc = map(vec![
        ("$schema", s(SCHEMA)),
        ("version", s("2.1.0")),
        (
            "runs",
            Value::Seq(vec![map(vec![
                (
                    "tool",
                    map(vec![(
                        "driver",
                        map(vec![("name", s(report.tool)), ("rules", Value::Seq(rules))]),
                    )]),
                ),
                ("results", Value::Seq(results)),
            ])]),
        ),
    ]);
    let mut out = serde_json::to_string_pretty(&Doc(doc)).unwrap_or_else(|e|
        // audit:allow(panic, the SARIF tree contains only strings and integers; serialization cannot fail)
        panic!("sarif serializes: {e}"));
    out.push('\n');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::RuleSummary;
    use crate::rules::Violation;

    fn sample() -> Report {
        Report {
            schema_version: 2,
            tool: "rein-audit",
            files_scanned: 3,
            suppressed: 1,
            rules: vec![RuleSummary {
                id: "panic",
                description: "no panics",
                help_uri: "DESIGN.md#6b",
                violations: 1,
                advisories: 0,
            }],
            violations: vec![Violation {
                path: "crates/core/src/x.rs".into(),
                line: 7,
                rule: "panic".into(),
                message: "`.unwrap()` in library code".into(),
            }],
            advisories: vec![Violation {
                path: "crates/detect/src/k.rs".into(),
                line: 3,
                rule: "hot-loop-alloc".into(),
                message: "`.clone()` inside a kernel loop".into(),
            }],
        }
    }

    #[test]
    fn sarif_has_required_keys() {
        let doc = to_sarif(&sample());
        for key in ["\"$schema\"", "\"2.1.0\"", "\"ruleId\"", "\"startLine\"", "\"rein-audit\""] {
            assert!(doc.contains(key), "missing {key} in:\n{doc}");
        }
    }

    #[test]
    fn advisories_export_at_note_level() {
        let doc = to_sarif(&sample());
        assert_eq!(doc.matches("\"level\": \"error\"").count(), 1);
        assert_eq!(doc.matches("\"level\": \"note\"").count(), 1);
        assert!(doc.contains("hot-loop-alloc"));
    }

    #[test]
    fn sarif_is_byte_stable() {
        assert_eq!(to_sarif(&sample()), to_sarif(&sample()));
    }

    /// The SARIF rule table and the catalog stay in sync: every catalog
    /// rule appears exactly once with its description and helpUri.
    #[test]
    fn sarif_rule_table_matches_catalog() {
        let report = crate::report::audit_sources(vec![(
            "crates/core/src/lib.rs".to_string(),
            "pub fn ok() {}\n".to_string(),
        )]);
        let doc = to_sarif(&report);
        assert_eq!(report.rules.len(), crate::rules::RULES.len());
        for r in &crate::rules::RULES {
            assert!(!r.description.is_empty(), "{} needs a description", r.id);
            assert!(r.help_uri.starts_with("DESIGN.md#"), "{} needs a doc anchor", r.id);
            assert_eq!(doc.matches(&format!("\"id\": \"{}\"", r.id)).count(), 1, "{}", r.id);
            assert!(doc.contains(&format!("\"helpUri\": \"{}\"", r.help_uri)), "{}", r.id);
        }
        assert_eq!(doc.matches("\"helpUri\"").count(), crate::rules::RULES.len());
    }

    #[test]
    fn sarif_parses_back() {
        struct Raw(Value);
        impl serde::Deserialize for Raw {
            fn deserialize_content(content: &Value) -> Result<Self, serde::DeError> {
                Ok(Raw(content.clone()))
            }
        }
        let doc = to_sarif(&sample());
        let Raw(v) = serde_json::from_str(&doc).expect("valid JSON");
        match v {
            Value::Map(entries) => {
                assert!(entries.iter().any(|(k, _)| k == "runs"));
            }
            other => panic!("expected object, got {other:?}"),
        }
    }
}
