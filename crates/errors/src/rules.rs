//! BART-style rule-violation injection.
//!
//! Given an FD `lhs → rhs` that holds on the clean table, the injector
//! corrupts RHS cells so that the FD is violated *detectably*: the corrupted
//! row's LHS group must contain at least one other row, otherwise no
//! rule-based detector could ever witness the violation (BART's
//! "detectable error" guarantee).

use rand::prelude::*;
use rand::rngs::StdRng;
use rein_constraints::fd::FunctionalDependency;
use rein_data::{CellMask, Table, Value};

use crate::common::Injection;

/// Injects FD violations at `rate` of the rows that belong to multi-row LHS
/// groups. The corrupted RHS value is drawn from a *different* LHS group's
/// RHS domain (realistic wrong-but-plausible values), falling back to a
/// mangled string when the domain has a single value.
pub fn inject_fd_violations(
    table: &Table,
    fd: &FunctionalDependency,
    rate: f64,
    seed: u64,
) -> Injection {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut out = table.clone();
    let mut mask = CellMask::new(table.n_rows(), table.n_cols());

    // Group rows by LHS key.
    let mut groups: std::collections::BTreeMap<String, Vec<usize>> = Default::default();
    'rows: for r in 0..table.n_rows() {
        let mut key = String::new();
        for &c in &fd.lhs {
            let v = table.cell(r, c);
            if v.is_null() {
                continue 'rows;
            }
            key.push_str(&v.as_key());
            key.push('\u{1f}');
        }
        groups.entry(key).or_default().push(r);
    }

    // Candidate rows: members of groups with >= 2 rows (detectable).
    let mut candidates: Vec<usize> =
        groups.values().filter(|g| g.len() >= 2).flat_map(|g| g.iter().copied()).collect();
    candidates.sort_unstable();
    if candidates.is_empty() || rate <= 0.0 {
        return Injection::unchanged(out);
    }

    // Domain of RHS values for cross-group replacement.
    let domain: Vec<Value> = table.value_counts(fd.rhs).into_iter().map(|(v, _)| v).collect();

    candidates.shuffle(&mut rng);
    let k = ((candidates.len() as f64 * rate).round() as usize).clamp(1, candidates.len());
    for &r in &candidates[..k] {
        let current = table.cell(r, fd.rhs).clone();
        let replacement = domain
            .iter()
            .filter(|v| **v != current)
            .nth(rng.random_range(0..domain.len().max(1)).min(domain.len().saturating_sub(2)))
            .cloned()
            .unwrap_or_else(|| Value::str(format!("{current}_violation")));
        out.set_cell(r, fd.rhs, replacement);
        mask.set(r, fd.rhs, true);
    }
    Injection { table: out, cells: mask }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rein_constraints::fd::fd_violations;
    use rein_data::diff::diff_mask;
    use rein_data::{ColumnMeta, ColumnType, Schema};

    fn table() -> Table {
        let schema = Schema::new(vec![
            ColumnMeta::new("zip", ColumnType::Str),
            ColumnMeta::new("city", ColumnType::Str),
        ]);
        let zips = ["10115", "80331", "20095"];
        let cities = ["Berlin", "Munich", "Hamburg"];
        Table::from_rows(
            schema,
            (0..60).map(|i| vec![Value::str(zips[i % 3]), Value::str(cities[i % 3])]).collect(),
        )
    }

    #[test]
    fn violations_are_detectable_by_the_fd() {
        let t = table();
        let fd = FunctionalDependency::new([0], 1);
        let inj = inject_fd_violations(&t, &fd, 0.1, 7);
        assert!(!inj.cells.is_empty());
        let detected = fd_violations(&inj.table, &fd);
        // Every injected cell is caught by the FD scan.
        for c in inj.cells.iter() {
            assert!(detected.get(c.row, c.col), "injected cell not detectable");
        }
        assert_eq!(diff_mask(&t, &inj.table), inj.cells);
    }

    #[test]
    fn only_rhs_cells_are_corrupted() {
        let t = table();
        let fd = FunctionalDependency::new([0], 1);
        let inj = inject_fd_violations(&t, &fd, 0.2, 3);
        for c in inj.cells.iter() {
            assert_eq!(c.col, 1);
        }
    }

    #[test]
    fn replacement_comes_from_domain_when_possible() {
        let t = table();
        let fd = FunctionalDependency::new([0], 1);
        let inj = inject_fd_violations(&t, &fd, 0.3, 11);
        let cities = ["Berlin", "Munich", "Hamburg"];
        for c in inj.cells.iter() {
            let v = inj.table.cell(c.row, c.col).to_string();
            assert!(cities.contains(&v.as_str()), "unexpected replacement {v}");
            assert_ne!(&v, &t.cell(c.row, c.col).to_string());
        }
    }

    #[test]
    fn zero_rate_is_identity() {
        let t = table();
        let fd = FunctionalDependency::new([0], 1);
        let inj = inject_fd_violations(&t, &fd, 0.0, 1);
        assert!(inj.cells.is_empty());
        assert_eq!(inj.table, t);
    }

    #[test]
    fn singleton_groups_are_never_corrupted() {
        let schema = Schema::new(vec![
            ColumnMeta::new("key", ColumnType::Int),
            ColumnMeta::new("val", ColumnType::Str),
        ]);
        // Every key unique -> no detectable violation possible.
        let t = Table::from_rows(
            schema,
            (0..20).map(|i| vec![Value::Int(i), Value::str(format!("v{i}"))]).collect(),
        );
        let fd = FunctionalDependency::new([0], 1);
        let inj = inject_fd_violations(&t, &fd, 0.5, 1);
        assert!(inj.cells.is_empty());
    }
}
