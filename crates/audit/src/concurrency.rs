//! Concurrency-determinism rules: certify that everything reachable
//! from a rayon parallel region is safe to shard without changing a
//! single output byte.
//!
//! The parser records every closure (parameters, enclosing call,
//! member calls, ident occurrences), which lets the call graph treat
//! code passed into `spawn`/`par_iter().map(…)`/`scope` as traversable
//! call edges. A closure counts as *parallel* when it is the argument
//! of a parallel entry point (`spawn`, `scope`, `join`, `install`,
//! `broadcast`), or the argument of an iterator adapter (`map`,
//! `for_each`, `fold`, …) in a function that has already opened a
//! parallel iterator (`par_iter`, `into_par_iter`, …). The *parallel
//! region* is everything reachable from the member calls of parallel
//! closures — over-approximate on purpose: a rule that fires on a
//! serial look-alike costs one `audit:allow`, a rule that misses a
//! shared mutation costs a nondeterministic benchmark.
//!
//! Six blocking rules run over that region (catalog in DESIGN.md §6g,
//! trace-context in §6i): `par-shared-mutable`, `par-seed-derivation`,
//! `par-merge-registered`, `par-atomic-ordering`, `par-lock-discipline`
//! and `trace-context`.

use std::collections::{BTreeMap, BTreeSet};

use crate::callgraph::CallGraph;
use crate::lexer::{has_token, lex, SourceLine};
use crate::parser::{Callee, Closure, Function};
use crate::semantic::{backward_slice, is_rng_construction, Sink, WorkspaceModel};

/// Higher-order entry points whose closure argument runs on another
/// worker thread.
const PAR_ENTRY: [&str; 6] = ["spawn", "scope", "join", "install", "broadcast", "spawn_broadcast"];

/// Calls that turn an iterator chain parallel. Shared with the
/// dataflow module's `float-reduce-order` rule.
pub(crate) const PAR_MARKERS: [&str; 7] = [
    "par_iter",
    "into_par_iter",
    "par_iter_mut",
    "par_chunks",
    "par_windows",
    "par_bridge",
    "par_drain",
];

/// Iterator adapters whose closure runs on worker threads once a
/// parallel marker has appeared earlier in the same function.
const PAR_ADAPTERS: [&str; 14] = [
    "map",
    "for_each",
    "filter",
    "filter_map",
    "flat_map",
    "fold",
    "reduce",
    "inspect",
    "map_init",
    "map_with",
    "for_each_with",
    "for_each_init",
    "try_for_each",
    "update",
];

/// Deterministic merges registered with the analyzer: proven
/// associative + commutative by test (rein-telemetry's sharded span
/// merge, PR 6), so a parallel fold/reduce routed through them cannot
/// depend on worker interleaving.
const REGISTERED_MERGES: [&str; 3] = ["merge_shards", "merge_entries", "merge_sorted"];

/// Files allowed to use `Ordering::Relaxed`: monotone telemetry
/// counters whose values never feed a serialized artifact without a
/// deterministic aggregation step.
const PAR_ATOMIC_ALLOWED: [&str; 4] = [
    "crates/telemetry/src/perf.rs",
    "crates/telemetry/src/log.rs",
    "crates/telemetry/src/metrics.rs",
    "crates/telemetry/src/span.rs",
];

/// The `Ordering::Relaxed` allowlist, exposed for the catalog tests.
pub fn par_atomic_allowlist() -> &'static [&'static str] {
    &PAR_ATOMIC_ALLOWED
}

/// The registered deterministic merge names, exposed for docs/tests.
pub fn registered_merges() -> &'static [&'static str] {
    &REGISTERED_MERGES
}

/// True when `c` (a closure of `f`) runs on rayon worker threads.
fn is_parallel_closure(f: &Function, c: &Closure) -> bool {
    let Some(ix) = c.arg_of else { return false };
    let Some(call) = f.calls.get(ix) else { return false };
    let name = call.callee.name();
    if PAR_ENTRY.contains(&name) {
        return true;
    }
    PAR_ADAPTERS.contains(&name)
        && f.calls[..ix].iter().any(|k| PAR_MARKERS.contains(&k.callee.name()))
}

/// Parallel sites and the call-graph region reachable from them.
struct ParRegion {
    /// node index → closure indices classified parallel.
    sites: BTreeMap<usize, Vec<usize>>,
    /// node reachable from inside some parallel closure (or hosting one).
    member: Vec<bool>,
}

fn parallel_region(g: &CallGraph) -> ParRegion {
    let mut sites: BTreeMap<usize, Vec<usize>> = BTreeMap::new();
    let mut roots: Vec<usize> = Vec::new();
    for (ix, n) in g.nodes.iter().enumerate() {
        for (ci, c) in n.func.closures.iter().enumerate() {
            if !is_parallel_closure(&n.func, c) {
                continue;
            }
            sites.entry(ix).or_default().push(ci);
            for &call_ix in &c.calls {
                if let Some(call) = n.func.calls.get(call_ix) {
                    roots.extend(g.resolve(ix, call));
                }
            }
        }
    }
    let mut member = g.reachable_from(&roots);
    for &ix in sites.keys() {
        member[ix] = true;
    }
    ParRegion { sites, member }
}

/// Runs the six concurrency rules. Called from `semantic::analyze`.
pub(crate) fn analyze_concurrency(model: &WorkspaceModel, g: &CallGraph, sink: &mut Sink) {
    let region = parallel_region(g);
    par_shared_mutable(model, g, &region, sink);
    par_seed_derivation(g, &region, sink);
    par_merge_registered(g, &region, sink);
    par_atomic_ordering(model, sink);
    par_lock_discipline(model, g, sink);
    trace_context(g, &region, sink);
}

// --------------------------------------------------------- trace-context

/// Span constructors that inherit the thread-local ambient context
/// instead of carrying an explicit trace id. Fine in serial code (the
/// ambient stack is the enclosing span); on a worker thread the stack
/// starts empty, so the span falls outside every causal cell trace.
const AMBIENT_SPAN_CTORS: [&str; 2] = ["span", "span_under"];

fn trace_context(g: &CallGraph, region: &ParRegion, sink: &mut Sink) {
    for (&ix, closure_ixs) in &region.sites {
        let n = &g.nodes[ix];
        if n.class.is_test_support || n.func.in_test {
            continue;
        }
        for &ci in closure_ixs {
            let c = &n.func.closures[ci];
            for &call_ix in &c.calls {
                let Some(call) = n.func.calls.get(call_ix) else { continue };
                if !AMBIENT_SPAN_CTORS.contains(&call.callee.name()) {
                    continue;
                }
                sink.emit(
                    &n.file,
                    call.line,
                    "trace-context",
                    format!(
                        "`{}` opens a span directly inside a parallel \
                         closure without a cell-derived TraceContext — the \
                         worker's ambient parent stack is empty, so the \
                         span becomes an unattributable ambient root; open \
                         the cell root with span_traced(name, parent, \
                         trace_id) keyed on the CellKey digest",
                        call.callee.name()
                    ),
                );
            }
        }
    }
}

// --------------------------------------------------- par-shared-mutable

/// Per-line mask of `thread_local! { … }` regions (per-thread storage
/// is not shared and therefore exempt), tracked by brace depth like the
/// test-region mask.
fn thread_local_mask(lines: &[SourceLine]) -> Vec<bool> {
    let mut mask = Vec::with_capacity(lines.len());
    let mut depth: i64 = 0;
    let mut pending = false;
    let mut stack: Vec<i64> = Vec::new();
    for line in lines {
        if has_token(&line.code, "thread_local") {
            pending = true;
        }
        let mut inside = !stack.is_empty() || pending;
        for c in line.code.chars() {
            match c {
                '{' => {
                    if pending {
                        stack.push(depth);
                        pending = false;
                        inside = true;
                    }
                    depth += 1;
                }
                '}' => {
                    depth -= 1;
                    if stack.last() == Some(&depth) {
                        stack.pop();
                    }
                }
                _ => {}
            }
        }
        mask.push(inside || !stack.is_empty());
    }
    mask
}

fn par_shared_mutable(model: &WorkspaceModel, g: &CallGraph, region: &ParRegion, sink: &mut Sink) {
    // Files hosting at least one parallel-region function.
    let region_files: BTreeSet<&str> = g
        .nodes
        .iter()
        .enumerate()
        .filter(|(i, _)| region.member[*i])
        .map(|(_, n)| n.file.as_str())
        .collect();
    for f in &model.files {
        if f.class.is_test_support || !region_files.contains(f.path.as_str()) {
            continue;
        }
        let lines = lex(&f.source);
        let tests = crate::rules::test_region_mask(&lines);
        let locals = thread_local_mask(&lines);
        for (i, line) in lines.iter().enumerate() {
            if tests[i] || locals[i] {
                continue;
            }
            // Imports of cell types are fine; only uses count.
            if line.code.trim_start().starts_with("use ") {
                continue;
            }
            let offender = if has_token(&line.code, "static") && has_token(&line.code, "mut") {
                Some("static mut")
            } else if has_token(&line.code, "RefCell") {
                Some("RefCell")
            } else if has_token(&line.code, "Cell") {
                Some("Cell")
            } else {
                None
            };
            if let Some(what) = offender {
                sink.emit(
                    &f.path,
                    i + 1,
                    "par-shared-mutable",
                    format!(
                        "`{what}` in a file reachable from a parallel region — \
                         unsynchronized interior mutability is not shard-safe; \
                         use an atomic, a Mutex, or thread_local! storage"
                    ),
                );
            }
        }
    }
}

// -------------------------------------------------- par-seed-derivation

/// True when `call` consumes seed material: an RNG construction, or a
/// resolved target with a parameter named `seed`/`*_seed`.
fn is_seed_sink(g: &CallGraph, caller: usize, call: &crate::parser::Call) -> bool {
    if is_rng_construction(call) {
        return true;
    }
    g.resolve(caller, call).into_iter().any(|t| {
        g.nodes[t]
            .func
            .params
            .iter()
            .any(|p| p.names.iter().any(|nm| nm == "seed" || nm.ends_with("_seed")))
    })
}

fn par_seed_derivation(g: &CallGraph, region: &ParRegion, sink: &mut Sink) {
    for (&ix, closure_ixs) in &region.sites {
        let n = &g.nodes[ix];
        if n.class.is_test_support || n.func.in_test {
            continue;
        }
        for &ci in closure_ixs {
            let c = &n.func.closures[ci];
            // Worker-varying idents: the closure's own parameters,
            // propagated through the function's `let` bindings.
            let mut varying: BTreeSet<String> = c.params.iter().cloned().collect();
            for _ in 0..2 {
                for l in &n.func.lets {
                    if l.init_idents.iter().any(|i| varying.contains(i)) {
                        varying.extend(l.names.iter().cloned());
                    }
                }
            }
            for &call_ix in &c.calls {
                let Some(call) = n.func.calls.get(call_ix) else { continue };
                if !is_seed_sink(g, ix, call) {
                    continue;
                }
                let arg_idents: BTreeSet<String> =
                    call.args.iter().flat_map(|a| a.idents.iter().cloned()).collect();
                let slice = backward_slice(&n.func, arg_idents);
                if slice.is_disjoint(&varying) {
                    sink.emit(
                        &n.file,
                        call.line,
                        "par-seed-derivation",
                        format!(
                            "`{}` inside a parallel closure sees the same seed \
                             on every worker — derive a per-cell seed from the \
                             closure's own parameter (e.g. derive_seed(seed, i))",
                            call.callee.name()
                        ),
                    );
                }
            }
        }
    }
}

// ------------------------------------------------- par-merge-registered

fn par_merge_registered(g: &CallGraph, region: &ParRegion, sink: &mut Sink) {
    for (&ix, closure_ixs) in &region.sites {
        let n = &g.nodes[ix];
        if n.class.is_test_support || n.func.in_test {
            continue;
        }
        // One finding per fold/reduce call, not per closure argument.
        let mut flagged: BTreeSet<usize> = BTreeSet::new();
        for &ci in closure_ixs {
            let c = &n.func.closures[ci];
            let Some(call_ix) = c.arg_of else { continue };
            let Some(call) = n.func.calls.get(call_ix) else { continue };
            if !matches!(call.callee.name(), "fold" | "reduce" | "sum") {
                continue;
            }
            // Registered merge in the arguments (`reduce(Vec::new,
            // merge_shards)`) or called from the combiner closure.
            let registered = call
                .args
                .iter()
                .flat_map(|a| a.idents.iter())
                .any(|i| REGISTERED_MERGES.contains(&i.as_str()))
                || c.calls
                    .iter()
                    .filter_map(|&k| n.func.calls.get(k))
                    .any(|k| REGISTERED_MERGES.contains(&k.callee.name()));
            if !registered && flagged.insert(call_ix) {
                sink.emit(
                    &n.file,
                    call.line,
                    "par-merge-registered",
                    format!(
                        "parallel `{}` combines worker results without a \
                         registered deterministic merge ({}) — float folds and \
                         order-sensitive reductions depend on worker \
                         interleaving; collect() into an ordered container or \
                         route through a registered merge",
                        call.callee.name(),
                        REGISTERED_MERGES.join("/"),
                    ),
                );
            }
        }
    }
}

// -------------------------------------------------- par-atomic-ordering

fn par_atomic_ordering(model: &WorkspaceModel, sink: &mut Sink) {
    for f in &model.files {
        if f.class.is_test_support || PAR_ATOMIC_ALLOWED.contains(&f.path.as_str()) {
            continue;
        }
        let lines = lex(&f.source);
        let tests = crate::rules::test_region_mask(&lines);
        for (i, line) in lines.iter().enumerate() {
            if tests[i] || !has_token(&line.code, "Relaxed") {
                continue;
            }
            sink.emit(
                &f.path,
                i + 1,
                "par-atomic-ordering",
                "`Ordering::Relaxed` outside the allowlisted telemetry counter \
                 sites — relaxed cross-thread reads are not deterministic; use \
                 Acquire/Release (or keep the atomic in rein-telemetry)"
                    .to_string(),
            );
        }
    }
}

// -------------------------------------------------- par-lock-discipline

/// Extracts the receiver ident of the `k`-th `.lock` occurrence on
/// `line` (0-based), walking back over a call suffix (`registry()`)
/// and, when the chain is line-wrapped, up to `prev` earlier lines.
fn lock_receiver(lines: &[SourceLine], line_ix: usize, k: usize) -> Option<String> {
    let code = &lines.get(line_ix)?.code;
    let mut pos = None;
    let mut seen = 0usize;
    let mut from = 0usize;
    while let Some(off) = code[from..].find(".lock") {
        if seen == k {
            pos = Some(from + off);
            break;
        }
        seen += 1;
        from += off + 5;
    }
    // `.lock()` opening a wrapped chain line: receiver sits on an
    // earlier line.
    let mut text: String = code[..pos?].to_string();
    let mut back = line_ix;
    for _ in 0..3 {
        if let Some(name) = receiver_from_suffix(&text) {
            return Some(name);
        }
        if back == 0 {
            break;
        }
        back -= 1;
        text = format!("{}{}", lines[back].code, text);
    }
    receiver_from_suffix(&text)
}

/// The last receiver ident in `text`, skipping one trailing balanced
/// call suffix: `…counter_registry()` → `counter_registry`.
fn receiver_from_suffix(text: &str) -> Option<String> {
    let cs: Vec<char> = text.chars().collect();
    let mut i = cs.len();
    while i > 0 && (cs[i - 1].is_whitespace() || cs[i - 1] == '.') {
        i -= 1;
    }
    if i > 0 && cs[i - 1] == ')' {
        let mut depth = 0i64;
        while i > 0 {
            match cs[i - 1] {
                ')' => depth += 1,
                '(' => {
                    depth -= 1;
                    if depth == 0 {
                        i -= 1;
                        break;
                    }
                }
                _ => {}
            }
            i -= 1;
        }
    }
    let end = i;
    while i > 0 && (cs[i - 1].is_alphanumeric() || cs[i - 1] == '_') {
        i -= 1;
    }
    if i == end {
        return None;
    }
    let name: String = cs[i..end].iter().collect();
    name.chars().next().filter(|c| c.is_alphabetic() || *c == '_').map(|_| name)
}

fn par_lock_discipline(model: &WorkspaceModel, g: &CallGraph, sink: &mut Sink) {
    let sources: BTreeMap<&str, Vec<SourceLine>> =
        model.files.iter().map(|f| (f.path.as_str(), lex(&f.source))).collect();
    // Order edges: receiver a → receiver b when a's guard is let-bound
    // (held) and b is locked later in the same function.
    let mut edges: BTreeMap<(String, String), (String, usize)> = BTreeMap::new();
    for n in &g.nodes {
        if n.class.is_test_support || n.func.in_test {
            continue;
        }
        let Some(lines) = sources.get(n.file.as_str()) else { continue };
        let lock_ixs: Vec<usize> = n
            .func
            .calls
            .iter()
            .enumerate()
            .filter(|(_, c)| matches!(&c.callee, Callee::Method(m) if m == "lock"))
            .map(|(i, _)| i)
            .collect();
        if lock_ixs.len() < 2 {
            continue;
        }
        let held: BTreeSet<usize> = n
            .func
            .lets
            .iter()
            .flat_map(|l| l.init_top_calls.iter().copied())
            .filter(|i| lock_ixs.contains(i))
            .collect();
        let mut per_line: BTreeMap<usize, usize> = BTreeMap::new();
        let receivers: Vec<(usize, Option<String>)> = lock_ixs
            .iter()
            .map(|&i| {
                let line = n.func.calls[i].line;
                let k = *per_line.entry(line).and_modify(|k| *k += 1).or_insert(0);
                (i, lock_receiver(lines, line.saturating_sub(1), k))
            })
            .collect();
        for (ai, (a, ra)) in receivers.iter().enumerate() {
            if !held.contains(a) {
                continue;
            }
            let Some(ra) = ra else { continue };
            for (b, rb) in receivers.iter().skip(ai + 1) {
                let Some(rb) = rb else { continue };
                if ra != rb {
                    edges
                        .entry((ra.clone(), rb.clone()))
                        .or_insert((n.file.clone(), n.func.calls[*b].line));
                }
            }
        }
    }
    // A cycle in the order graph is a potential deadlock and a
    // scheduling-dependent execution order.
    let reaches = |from: &str, to: &str| -> bool {
        let mut seen: BTreeSet<&str> = BTreeSet::new();
        let mut stack = vec![from];
        while let Some(cur) = stack.pop() {
            if cur == to {
                return true;
            }
            for ((a, b), _) in edges.iter() {
                if a == cur && seen.insert(b) {
                    stack.push(b);
                }
            }
        }
        false
    };
    let findings: Vec<(String, usize, String)> = edges
        .iter()
        .filter(|((a, b), _)| reaches(b, a))
        .map(|((a, b), (file, line))| {
            (
                file.clone(),
                *line,
                format!(
                    "lock on `{b}` is acquired while `{a}` is held, but the \
                     reverse order also exists — pick one global acquisition \
                     order to keep parallel call paths deadlock-free"
                ),
            )
        })
        .collect();
    for (file, line, msg) in findings {
        sink.emit(&file, line, "par-lock-discipline", msg);
    }
}
