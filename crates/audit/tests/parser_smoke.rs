//! Parser smoke test: every first-party `.rs` file in the workspace
//! must go through the Rust-subset parser without recovery errors —
//! the semantic rules are only as trustworthy as the parse they see.

use std::path::Path;

use rein_audit::{collect_sources, WorkspaceModel};

#[test]
fn every_workspace_source_parses_cleanly() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let root = std::fs::canonicalize(&root).expect("workspace root exists");
    let paths = collect_sources(&root).expect("walk workspace sources");
    assert!(paths.len() > 100, "walker found only {} files", paths.len());
    let sources: Vec<(String, String)> = paths
        .iter()
        .map(|p| {
            let rel = p.strip_prefix(&root).unwrap_or(p).to_string_lossy().replace('\\', "/");
            let src =
                std::fs::read_to_string(p).unwrap_or_else(|e| panic!("read {}: {e}", p.display()));
            (rel, src)
        })
        .collect();
    let model = WorkspaceModel::build(&sources);
    let errors = model.parse_errors();
    assert!(
        errors.is_empty(),
        "{} file(s) hit parser recovery:\n{}",
        errors.len(),
        errors.iter().map(|(p, e)| format!("  {p}: {e}")).collect::<Vec<_>>().join("\n")
    );
    // The parse must be substantive, not vacuous: the workspace model
    // sees thousands of functions and calls.
    let fns: usize = model.files.iter().map(|f| f.parsed.functions.len()).sum();
    let calls: usize =
        model.files.iter().flat_map(|f| &f.parsed.functions).map(|f| f.calls.len()).sum();
    assert!(fns > 500, "only {fns} functions parsed across the workspace");
    assert!(calls > 2000, "only {calls} calls extracted across the workspace");
}
