//! Seeded macro-benchmark suite: the producer of the repo-root
//! `BENCH_<n>.json` perf baselines.
//!
//! Runs the fixed workload suite from `rein_bench::perf` — representative
//! detectors, repairs, one ML fit and one end-to-end S1 scenario — at the
//! `REIN_SCALE`-controlled dataset sizes, `REIN_REPEATS` (default 7)
//! repeats each, and writes the timings, throughput, allocation stats and
//! span-path profile as a deterministic-ordered JSON report. The report
//! also carries the parallel-grid threads axis: the controller grid
//! timed under scoped pools of 1, 2, 4 and `REIN_THREADS` workers, with
//! speedups relative to the serial run.
//!
//! ```text
//! cargo run --release -p rein-bench --bin perf_baseline [-- --out PATH]
//! ```
//!
//! Without `--out` the report lands at the first free `BENCH_<n>.json`
//! at the current directory. Compare two baselines with `bench_compare`.
#![allow(clippy::print_stdout)]

use rein_bench::perf::{next_bench_path, run_perf_suite};
use rein_telemetry::perf::CountingAllocator;

// The counting allocator makes the report's allocation columns real;
// every other binary runs on the system allocator untouched.
#[global_allocator]
static ALLOC: CountingAllocator = CountingAllocator;

/// Master seed of the suite; fixed so baselines are comparable.
const SUITE_SEED: u64 = 90;

fn parse_args() -> Result<Option<std::path::PathBuf>, String> {
    let mut out = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--out" => {
                let path = args.next().ok_or("--out requires a path".to_string())?;
                out = Some(std::path::PathBuf::from(path));
            }
            other => return Err(format!("unknown argument {other:?} (expected --out PATH)")),
        }
    }
    Ok(out)
}

fn main() {
    let out = match parse_args() {
        Ok(out) => out,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    };

    let setup = rein_bench::phase("setup");
    let scale = rein_bench::scale();
    let repeats = rein_bench::perf_repeats();
    let path = out.unwrap_or_else(|| next_bench_path(std::path::Path::new(".")));
    rein_bench::header("perf baseline");
    println!("scale {scale}, {repeats} repeats, seed {SUITE_SEED}");
    drop(setup);

    let measure = rein_bench::phase("measure");
    // The threads axis is only worth recording when the host can
    // actually run pools wider than one worker: on a single-core host
    // every width measures the same serial grid plus pool overhead, and
    // `bench_compare` would refuse to pair the rows against a multi-core
    // baseline anyway.
    let widths: Vec<u32> = if rein_bench::perf::single_core_host() {
        println!("single-core host: skipping the parallel-grid threads axis");
        Vec::new()
    } else {
        vec![1, 2, 4, rein_bench::worker_threads()]
    };
    let report = run_perf_suite("perf_baseline", scale, repeats, SUITE_SEED, &widths);
    drop(measure);

    let emit = rein_bench::phase("report");
    rein_bench::row(&["benchmark".into(), "median ms".into(), "cells/s".into(), "allocs".into()]);
    for b in &report.benchmarks {
        rein_bench::row(&[
            b.id.clone(),
            rein_bench::f(b.timing.median_ms),
            rein_bench::f(b.cells_per_sec),
            b.alloc.allocs_per_repeat.first().copied().unwrap_or(0).to_string(),
        ]);
    }
    if !report.thread_axis.is_empty() {
        println!("\nparallel grid, by pool width:");
        rein_bench::row(&["threads".into(), "median ms".into(), "speedup".into()]);
        for p in &report.thread_axis {
            rein_bench::row(&[
                p.threads.to_string(),
                rein_bench::f(p.timing.median_ms),
                rein_bench::f(p.speedup),
            ]);
        }
    }
    if let Err(e) = report.write_to(&path) {
        eprintln!("error: write {}: {e}", path.display());
        std::process::exit(2);
    }
    println!("perf report: {}", path.display());
    drop(emit);

    rein_bench::conclude("perf_baseline", SUITE_SEED, 0);
}
