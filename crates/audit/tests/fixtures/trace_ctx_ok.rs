//! Concurrency fixture (positive): the cell root is opened with
//! `span_traced`, carrying the parent link and the cell-derived trace
//! id, so the whole subtree hangs off a causal cell trace and
//! `trace-context` stays quiet.

pub fn shard_cells(xs: &[u64], parent: u64) -> Vec<u64> {
    xs.par_iter()
        .enumerate()
        .map(|(i, x)| {
            let trace = cell_trace_id(i as u64);
            let _cell = span_traced("cell", parent, trace);
            step(i as u64, *x)
        })
        .collect()
}

pub fn cell_trace_id(i: u64) -> u64 {
    i.rotate_left(11) ^ 0x9e37_79b9
}

fn step(i: u64, x: u64) -> u64 {
    i + x
}
