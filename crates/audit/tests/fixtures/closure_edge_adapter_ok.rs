//! Call-graph closure fixture (positive): the closure-reached panic is
//! annotated, so `panic-reachability` stays silent for the public API.

pub fn grid(xs: &[u64]) -> Vec<u64> {
    xs.iter().map(|x| risky(*x)).collect()
}

fn risky(x: u64) -> u64 {
    if x == 0 {
        // audit:allow(panic, zero cells are rejected at parse time; this is unreachable)
        panic!("zero cell");
    }
    x
}
