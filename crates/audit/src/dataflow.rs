//! Interprocedural taint dataflow over the cell-compute region.
//!
//! The incremental-evaluation plan (ROADMAP) memoizes one grid cell and
//! replays its stored result on a cache-key hit. That is only sound if
//! every value-influencing input of the cell computation is a component
//! of the declared key (`rein_core::cache_key::CellKey`). This module
//! provides the machinery the purity rules are built from:
//!
//! * the **compute region** — everything transitively callable from the
//!   cell-compute entry points ([`ENTRY_POINTS`]), with a parent map so
//!   findings can name the concrete call path that reaches a taint;
//! * **taint sources** — ambient channels a function can read that do
//!   not flow through the key: environment variables, filesystem reads,
//!   wall-clock time and global (`static` / `thread_local!`) state. A
//!   function whose inputs arrive only through its parameters is
//!   *key-pure* at the entry points, because every entry-point parameter
//!   traces to a declared key component;
//! * the **hot-loop allocation scan** — a ranked, non-blocking worklist
//!   of allocation calls inside detector/repair kernel loops, feeding
//!   the columnar-rewrite backlog;
//! * the **float reduction order check** — non-associative float
//!   accumulation (`.sum()` / `.product()`) downstream of a rayon
//!   parallel marker must route through a registered ordered reducer.
//!
//! Like the rest of the audit, everything here is deliberately
//! over-approximate: a rule that fires on a serial look-alike costs one
//! `audit:allow`, a rule that misses an ambient read costs a stale cache
//! hit in every future incremental run.

use std::collections::{BTreeMap, VecDeque};

use crate::callgraph::{CallGraph, FnNode};
use crate::lexer::{has_token, lex, SourceLine};
use crate::parser::{tokenize, Call, Callee, TokKind};
use crate::semantic::{Sink, WorkspaceModel};

/// The cell-compute entry points: `(impl type, function name)`, matched
/// against functions defined under `crates/core/src/`. `None` matches a
/// free function. These are exactly the guarded dispatch surfaces the
/// `guard-coverage` rule funnels every detector/repair/eval call
/// through, plus the grid driver itself — certifying them key-pure
/// certifies every cell computation.
pub const ENTRY_POINTS: [(Option<&str>, &str); 6] = [
    (Some("DetectorHarness"), "run"),
    (None, "detect_with_context"),
    (None, "run_repair_guarded"),
    (None, "eval_classifier_guarded"),
    (None, "eval_regressor_guarded"),
    (Some("Controller"), "run_grid"),
];

/// The entry-point table, exposed for the dogfood/certificate tests.
pub fn entry_points() -> &'static [(Option<&'static str>, &'static str)] {
    &ENTRY_POINTS
}

/// Allocation-shaped tokens the hot-loop scan looks for inside
/// detector/repair kernel loops.
pub const ALLOC_TOKENS: [&str; 9] = [
    "Vec::new",
    "vec!",
    ".clone()",
    ".to_string()",
    ".to_owned()",
    ".to_vec()",
    "format!",
    "String::new",
    ".collect()",
];

/// The alloc-token list, exposed for docs and the worklist generator.
pub fn alloc_tokens() -> &'static [&'static str] {
    &ALLOC_TOKENS
}

/// Whether `n` participates in cell-compute dataflow at all. The
/// telemetry crate is carved out as a pure observer: spans, counters
/// and manifests record what happened but never feed a computed value
/// back (the `par-atomic-ordering` allowlist and the ledger's
/// deterministic merges own that boundary). Tests and test support pin
/// concrete inputs by design.
fn in_region_scope(n: &FnNode) -> bool {
    n.crate_name != "telemetry" && !n.class.is_test_support && !n.func.in_test
}

/// The cell-compute region: membership plus a BFS parent map for
/// rendering the call path from an entry point to any member.
pub(crate) struct ComputeRegion {
    /// Node is transitively callable from an entry point.
    pub member: Vec<bool>,
    /// First-discovery BFS parent (deterministic: FIFO over sorted
    /// adjacency), `None` for entry points.
    parent: Vec<Option<usize>>,
}

/// Finds the entry-point nodes of `g` (functions under
/// `crates/core/src/` matching [`ENTRY_POINTS`]).
pub(crate) fn entry_nodes(g: &CallGraph) -> Vec<usize> {
    (0..g.nodes.len())
        .filter(|&ix| {
            let n = &g.nodes[ix];
            n.file.starts_with("crates/core/src/")
                && in_region_scope(n)
                && n.func.has_body
                && ENTRY_POINTS.iter().any(|(ty, name)| {
                    *name == n.func.name
                        && match ty {
                            Some(t) => n.func.impl_type.as_deref() == Some(*t),
                            None => true,
                        }
                })
        })
        .collect()
}

/// Forward region from `roots`, honoring the region scope (telemetry
/// and test code are never entered).
pub(crate) fn compute_region_from(g: &CallGraph, roots: &[usize]) -> ComputeRegion {
    let mut member = vec![false; g.nodes.len()];
    let mut parent = vec![None; g.nodes.len()];
    let mut queue: VecDeque<usize> = VecDeque::new();
    for &r in roots {
        if !member[r] {
            member[r] = true;
            queue.push_back(r);
        }
    }
    while let Some(cur) = queue.pop_front() {
        for &t in &g.edges[cur] {
            if member[t] || !in_region_scope(&g.nodes[t]) {
                continue;
            }
            member[t] = true;
            parent[t] = Some(cur);
            queue.push_back(t);
        }
    }
    ComputeRegion { member, parent }
}

/// The full cell-compute region from every entry point.
pub(crate) fn compute_region(g: &CallGraph) -> ComputeRegion {
    let roots = entry_nodes(g);
    compute_region_from(g, &roots)
}

/// `Type::name` or bare `name` for call-path rendering.
pub(crate) fn display_name(n: &FnNode) -> String {
    match &n.func.impl_type {
        Some(t) => format!("{t}::{}", n.func.name),
        None => n.func.name.clone(),
    }
}

/// Renders the entry-to-node call path along the BFS parent chain,
/// e.g. `Controller::run_grid -> eval_cell -> load_dictionary`.
pub(crate) fn call_path(g: &CallGraph, region: &ComputeRegion, ix: usize) -> String {
    let mut names = vec![display_name(&g.nodes[ix])];
    let mut cur = ix;
    while let Some(p) = region.parent[cur] {
        names.push(display_name(&g.nodes[p]));
        cur = p;
    }
    names.reverse();
    names.join(" -> ")
}

/// One ambient input a function reads without going through the key.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct TaintSource {
    pub line: usize,
    /// Channel: `environment` / `filesystem` / `wall-clock` /
    /// `global state`.
    pub kind: &'static str,
    /// What is read (callee or static name).
    pub what: String,
}

/// Environment-read detection: `std::env::var` and friends. Returns the
/// rendered callee on a match. Shared with the `env-read-confinement`
/// rule so the two stay in sync.
pub(crate) fn env_read(call: &Call) -> Option<String> {
    let name = call.callee.name();
    let is_read = matches!(name, "var" | "var_os" | "vars" | "vars_os");
    if is_read && call.callee.qualifier() == Some("env") {
        return Some(format!("env::{name}"));
    }
    None
}

fn fs_read(call: &Call) -> Option<String> {
    let name = call.callee.name();
    match call.callee.qualifier() {
        Some("fs")
            if matches!(
                name,
                "read" | "read_to_string" | "read_dir" | "read_link" | "metadata"
            ) =>
        {
            Some(format!("fs::{name}"))
        }
        Some("File") if name == "open" => Some("File::open".to_string()),
        _ => None,
    }
}

fn wallclock_read(call: &Call) -> Option<String> {
    let name = call.callee.name();
    match call.callee.qualifier() {
        Some(q @ ("Instant" | "SystemTime" | "perf")) if name == "now" => Some(format!("{q}::now")),
        Some(q @ "Stopwatch") if name == "start" => Some(format!("{q}::start")),
        _ => None,
    }
}

/// Every `static` item name in the workspace (outside test regions),
/// mapped to its declaration site. `thread_local!` bodies declare with
/// the same `static NAME` grammar, so per-thread state is covered too —
/// a worker-local counter still varies between runs. `'static` lifetimes
/// lex as lifetime tokens, so only real declarations match.
pub(crate) fn workspace_statics(model: &WorkspaceModel) -> BTreeMap<String, (String, usize)> {
    let mut out: BTreeMap<String, (String, usize)> = BTreeMap::new();
    for f in &model.files {
        if f.class.is_test_support {
            continue;
        }
        let lines = lex(&f.source);
        let tests = crate::rules::test_region_mask(&lines);
        let toks = tokenize(&lines);
        let mut i = 0usize;
        while i < toks.len() {
            if toks[i].kind == TokKind::Ident
                && toks[i].text == "static"
                && !tests.get(toks[i].line - 1).copied().unwrap_or(false)
            {
                let mut j = i + 1;
                if toks.get(j).is_some_and(|t| t.kind == TokKind::Ident && t.text == "mut") {
                    j += 1;
                }
                if let Some(t) = toks.get(j) {
                    if t.kind == TokKind::Ident
                        && t.text.chars().next().is_some_and(|c| c.is_ascii_uppercase())
                    {
                        out.entry(t.text.clone()).or_insert((f.path.clone(), t.line));
                    }
                }
                i = j;
            }
            i += 1;
        }
    }
    out
}

/// Ambient reads of one region member: env/fs/wall-clock calls plus
/// references to workspace `static`s. Static references are located at
/// their first token occurrence at or after the function header so the
/// suppressing `audit:allow` can sit on the offending line.
pub(crate) fn taint_sources(
    n: &FnNode,
    statics: &BTreeMap<String, (String, usize)>,
    lines: &[SourceLine],
) -> Vec<TaintSource> {
    let mut out = Vec::new();
    for call in &n.func.calls {
        let hit = env_read(call)
            .map(|w| ("environment", w))
            .or_else(|| fs_read(call).map(|w| ("filesystem", w)))
            .or_else(|| wallclock_read(call).map(|w| ("wall-clock", w)));
        if let Some((kind, what)) = hit {
            out.push(TaintSource { line: call.line, kind, what });
        }
    }
    for (name, (decl_file, decl_line)) in statics {
        if !n.func.body_idents.contains(name) {
            continue;
        }
        // Skip the declaration itself when the static is declared inside
        // this very function's span start.
        let line = lines
            .iter()
            .enumerate()
            .skip(n.func.line.saturating_sub(1))
            .find(|(_, l)| has_token(&l.code, name))
            .map_or(n.func.line, |(i, _)| i + 1);
        if decl_file == &n.file && *decl_line == line {
            continue;
        }
        out.push(TaintSource {
            line,
            kind: "global state",
            what: format!("static `{name}` ({decl_file}:{decl_line})"),
        });
    }
    out.sort_by(|a, b| (a.line, a.kind, &a.what).cmp(&(b.line, b.kind, &b.what)));
    out
}

// ------------------------------------------------------- hot-loop-alloc

/// Per-line mask of loop bodies (`for` / `while` / `loop` brace
/// regions), tracked by brace depth like the test-region mask. Lines
/// mentioning `impl` are never treated as loop headers (`impl Trait for
/// Type`), and the header line itself counts as inside — `for x in
/// v.clone()` allocates per iteration of the *enclosing* loop only, but
/// flagging the header is the cheap over-approximation.
pub(crate) fn loop_region_mask(lines: &[SourceLine]) -> Vec<bool> {
    let mut mask = Vec::with_capacity(lines.len());
    let mut depth: i64 = 0;
    let mut pending = false;
    let mut stack: Vec<i64> = Vec::new();
    for line in lines {
        let header = !has_token(&line.code, "impl")
            && (has_token(&line.code, "for")
                || has_token(&line.code, "while")
                || has_token(&line.code, "loop"));
        if header {
            pending = true;
        }
        let mut inside = !stack.is_empty() || pending;
        for c in line.code.chars() {
            match c {
                '{' => {
                    if pending {
                        stack.push(depth);
                        pending = false;
                        inside = true;
                    }
                    depth += 1;
                }
                '}' => {
                    depth -= 1;
                    if stack.last() == Some(&depth) {
                        stack.pop();
                    }
                }
                // A braceless `for`-ish line (e.g. a `for` inside a
                // string-adjacent macro) is spent at the semicolon.
                ';' if pending && stack.is_empty() => pending = false,
                _ => {}
            }
        }
        mask.push(inside || !stack.is_empty());
    }
    mask
}

/// Non-blocking scan: allocation-shaped calls inside detector/repair
/// kernel loops. Emitted as ranked advisories — the machine-checked
/// worklist for the columnar rewrite, not a gate (a correct-but-slow
/// kernel is shippable; a nondeterministic one is not).
pub(crate) fn hot_loop_alloc(model: &WorkspaceModel, sink: &mut Sink) {
    for f in &model.files {
        let kernel = (f.path.starts_with("crates/detect/src/")
            || f.path.starts_with("crates/repair/src/"))
            && !f.path.ends_with("/lib.rs")
            && !f.class.is_test_support;
        if !kernel {
            continue;
        }
        let lines = lex(&f.source);
        let tests = crate::rules::test_region_mask(&lines);
        let loops = loop_region_mask(&lines);
        for (i, line) in lines.iter().enumerate() {
            if tests[i] || !loops[i] {
                continue;
            }
            for token in ALLOC_TOKENS {
                if has_token(&line.code, token) {
                    sink.emit_advisory(
                        &f.path,
                        i + 1,
                        "hot-loop-alloc",
                        format!(
                            "`{token}` inside a kernel loop allocates per \
                             row/cell — hoist the buffer out of the loop or \
                             switch this kernel to the columnar path"
                        ),
                    );
                    break; // one advisory per line
                }
            }
        }
    }
}

// --------------------------------------------------- float-reduce-order

/// Blocking: `.sum()` / `.product()` downstream of a rayon parallel
/// marker in the same function, with no interposed `collect()` and no
/// registered ordered reducer in the function. Float addition is not
/// associative, so the reduction order — which rayon picks per
/// scheduling — leaks into the result bytes. This closes the
/// closure-less gap `par-merge-registered` cannot see (a bare `.sum()`
/// takes no closure argument).
pub(crate) fn float_reduce_order(g: &CallGraph, sink: &mut Sink) {
    for n in &g.nodes {
        if !n.lib_scope() {
            continue;
        }
        let merged = n
            .func
            .calls
            .iter()
            .any(|k| crate::concurrency::registered_merges().contains(&k.callee.name()));
        if merged {
            continue;
        }
        for (ci, call) in n.func.calls.iter().enumerate() {
            if !matches!(call.callee, Callee::Method(_))
                || !matches!(call.callee.name(), "sum" | "product")
            {
                continue;
            }
            let Some(m) = n.func.calls[..ci]
                .iter()
                .rposition(|k| crate::concurrency::PAR_MARKERS.contains(&k.callee.name()))
            else {
                continue;
            };
            if n.func.calls[m..ci].iter().any(|k| k.callee.name() == "collect") {
                continue;
            }
            sink.emit(
                &n.file,
                call.line,
                "float-reduce-order",
                format!(
                    "`.{}()` after a parallel iterator marker accumulates \
                     floats in scheduling order — collect() into an ordered \
                     container first or route through a registered merge ({})",
                    call.callee.name(),
                    crate::concurrency::registered_merges().join("/"),
                ),
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::semantic::WorkspaceModel;

    fn model(files: &[(&str, &str)]) -> WorkspaceModel {
        let owned: Vec<(String, String)> =
            files.iter().map(|(p, s)| (p.to_string(), s.to_string())).collect();
        WorkspaceModel::build(&owned)
    }

    fn graph_of(m: &WorkspaceModel) -> CallGraph {
        let parsed: Vec<(String, &crate::parser::ParsedFile)> =
            m.files.iter().map(|f| (f.path.clone(), &f.parsed)).collect();
        CallGraph::build(&parsed)
    }

    #[test]
    fn region_follows_calls_and_skips_telemetry() {
        let m = model(&[
            (
                "crates/core/src/controller.rs",
                "impl Controller { pub fn run_grid(&self) { helper(); \
                 rein_telemetry::span(\"x\"); } }\n\
                 fn helper() { leaf(); }\nfn leaf() {}\nfn island() {}\n",
            ),
            (
                "crates/telemetry/src/span.rs",
                "pub fn span(name: &str) { emit(name); }\n\
              fn emit(name: &str) {}\n",
            ),
        ]);
        let g = graph_of(&m);
        let region = compute_region(&g);
        let ix = |name: &str| g.by_name[name][0];
        assert!(region.member[ix("run_grid")]);
        assert!(region.member[ix("helper")]);
        assert!(region.member[ix("leaf")]);
        assert!(!region.member[ix("island")]);
        assert!(!region.member[ix("span")], "telemetry is an observer, not a region member");
        assert_eq!(call_path(&g, &region, ix("leaf")), "Controller::run_grid -> helper -> leaf");
    }

    #[test]
    fn taint_sources_cover_all_four_channels() {
        let m = model(&[(
            "crates/core/src/x.rs",
            "static COUNTER: u64 = 0;\n\
             fn f() {\n\
                 let v = std::env::var(\"X\");\n\
                 let t = fs::read_to_string(path);\n\
                 let n = Instant::now();\n\
                 let c = COUNTER;\n\
             }\n",
        )]);
        let g = graph_of(&m);
        let statics = workspace_statics(&m);
        assert_eq!(statics.get("COUNTER"), Some(&("crates/core/src/x.rs".to_string(), 1)));
        let lines = lex(&m.files[0].source);
        let n = &g.nodes[g.by_name["f"][0]];
        let taints = taint_sources(n, &statics, &lines);
        let kinds: Vec<&str> = taints.iter().map(|t| t.kind).collect();
        assert_eq!(kinds, ["environment", "filesystem", "wall-clock", "global state"]);
        assert_eq!(taints[3].line, 6, "static read located at its use, not the fn header");
    }

    #[test]
    fn statics_scan_skips_lifetimes_and_tests() {
        let m = model(&[(
            "crates/core/src/y.rs",
            "fn f(s: &'static str) {}\n\
             #[cfg(test)]\nmod tests {\n    static ONLY_IN_TESTS: u64 = 0;\n}\n",
        )]);
        assert!(workspace_statics(&m).is_empty());
    }

    #[test]
    fn loop_mask_covers_bodies_not_impl_headers() {
        let lines = lex("impl Detector for Katara {\n\
             fn detect(&self) {\n\
             let x = 1;\n\
             for row in rows {\n\
             let c = row.clone();\n\
             }\n\
             let y = 2;\n\
             }\n\
             }\n");
        let mask = loop_region_mask(&lines);
        assert!(!mask[0], "impl … for … is not a loop header");
        assert!(!mask[2]);
        assert!(mask[3] && mask[4]);
        assert!(!mask[6]);
    }
}
