//! Quickstart: generate a dirty dataset, detect errors, repair them, and
//! measure what the cleaning did to a downstream classifier.
//!
//! Run with: `cargo run --example quickstart`

// Examples narrate their results on stdout by design.
#![allow(clippy::print_stdout)]

use rein::core::{eval_classifier, run_repair, DetectorHarness, Scenario, VersionTable};
use rein::datasets::{DatasetId, Params};
use rein::detect::DetectorKind;
use rein::ml::model::ClassifierKind;
use rein::repair::RepairKind;

fn main() {
    // 1. A benchmark dataset: the Beers catalogue with missing values,
    //    rule violations and typos at a 16% cell error rate.
    let ds = DatasetId::Beers.generate(&Params::scaled(0.25, 42));
    println!(
        "beers: {} rows, {} columns, {:.1}% of cells erroneous",
        ds.dirty.n_rows(),
        ds.dirty.n_cols(),
        100.0 * ds.error_rate()
    );

    // 2. Detect errors with the Max-Entropy ensemble.
    let harness = DetectorHarness::new(&ds, 100, 1);
    let detection = harness.run(&ds, DetectorKind::MaxEntropy);
    println!(
        "max_entropy detected {} cells (precision {:.2}, recall {:.2}, F1 {:.2})",
        detection.quality.detected(),
        detection.quality.precision,
        detection.quality.recall,
        detection.quality.f1
    );

    // 3. Repair the detected cells with missForest-style imputation.
    let repair = run_repair(&ds, &detection.mask, RepairKind::MissMix, 1);
    let repaired = repair.version.expect("generic repairers return a table");

    // 4. Train a decision tree on each version and compare (scenario S1)
    //    against the ground-truth upper bound (S4).
    let dirty_version = VersionTable::identity(ds.dirty.clone());
    let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
    let f1_dirty = mean(&eval_classifier(
        Scenario::S1,
        &ds,
        &dirty_version,
        ClassifierKind::DecisionTree,
        5,
        7,
    ));
    let f1_repaired =
        mean(&eval_classifier(Scenario::S1, &ds, &repaired, ClassifierKind::DecisionTree, 5, 7));
    let f1_truth = mean(&eval_classifier(
        Scenario::S4,
        &ds,
        &dirty_version,
        ClassifierKind::DecisionTree,
        5,
        7,
    ));

    println!("\ndecision-tree macro F1:");
    println!("  trained on dirty data     {f1_dirty:.3}");
    println!("  trained on repaired data  {f1_repaired:.3}");
    println!("  ground-truth upper bound  {f1_truth:.3}");
}
