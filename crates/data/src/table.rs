//! Columnar tables.

use serde::{Deserialize, Serialize};

use crate::schema::{ColumnType, Schema};
use crate::value::Value;

/// A cell address: `(row, column)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct CellRef {
    /// Row index.
    pub row: usize,
    /// Column index.
    pub col: usize,
}

impl CellRef {
    /// Constructs a cell reference.
    pub fn new(row: usize, col: usize) -> Self {
        Self { row, col }
    }
}

/// An in-memory columnar table: a [`Schema`] plus one value vector per column.
///
/// Column-major storage keeps the per-attribute scans that dominate the
/// benchmark (outlier statistics, pattern profiling, imputation) cache
/// friendly, as recommended for analytical layouts.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Table {
    schema: Schema,
    columns: Vec<Vec<Value>>,
    n_rows: usize,
}

impl Table {
    /// Creates an empty table with the given schema.
    pub fn empty(schema: Schema) -> Self {
        let n = schema.len();
        Self { schema, columns: vec![Vec::new(); n], n_rows: 0 }
    }

    /// Builds a table from column vectors.
    ///
    /// # Panics
    /// Panics if the number of columns or their lengths disagree with the
    /// schema — table construction sites are all internal, so a mismatch is
    /// a bug, not a recoverable condition.
    pub fn from_columns(schema: Schema, columns: Vec<Vec<Value>>) -> Self {
        assert_eq!(schema.len(), columns.len(), "column count mismatch");
        let n_rows = columns.first().map_or(0, Vec::len);
        for (i, c) in columns.iter().enumerate() {
            assert_eq!(c.len(), n_rows, "column {i} has inconsistent length");
        }
        Self { schema, columns, n_rows }
    }

    /// Builds a table from row vectors.
    pub fn from_rows(schema: Schema, rows: Vec<Vec<Value>>) -> Self {
        let mut t = Table::empty(schema);
        for row in rows {
            t.push_row(row);
        }
        t
    }

    /// The table's schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Number of rows.
    pub fn n_rows(&self) -> usize {
        self.n_rows
    }

    /// Number of columns.
    pub fn n_cols(&self) -> usize {
        self.columns.len()
    }

    /// Total number of cells (`rows × cols`).
    pub fn n_cells(&self) -> usize {
        self.n_rows * self.n_cols()
    }

    /// Immutable view of column `col`.
    pub fn column(&self, col: usize) -> &[Value] {
        &self.columns[col]
    }

    /// The value at `(row, col)`.
    pub fn cell(&self, row: usize, col: usize) -> &Value {
        &self.columns[col][row]
    }

    /// Replaces the value at `(row, col)`.
    pub fn set_cell(&mut self, row: usize, col: usize, v: Value) {
        self.columns[col][row] = v;
    }

    /// Materialises row `row`.
    pub fn row(&self, row: usize) -> Vec<Value> {
        self.columns.iter().map(|c| c[row].clone()).collect()
    }

    /// Appends a row.
    ///
    /// # Panics
    /// Panics if `row.len()` differs from the column count.
    pub fn push_row(&mut self, row: Vec<Value>) {
        assert_eq!(row.len(), self.columns.len(), "row arity mismatch");
        for (c, v) in self.columns.iter_mut().zip(row) {
            c.push(v);
        }
        self.n_rows += 1;
    }

    /// A new table containing only the rows at `indices`, in that order.
    /// Indices may repeat (used by bootstrap sampling).
    pub fn select_rows(&self, indices: &[usize]) -> Table {
        let columns =
            self.columns.iter().map(|c| indices.iter().map(|&i| c[i].clone()).collect()).collect();
        Table { schema: self.schema.clone(), columns, n_rows: indices.len() }
    }

    /// A new table containing only the columns at `indices`, in that order.
    pub fn select_columns(&self, indices: &[usize]) -> Table {
        let columns: Vec<Vec<Value>> = indices.iter().map(|&i| self.columns[i].clone()).collect();
        Table { schema: self.schema.select(indices), columns, n_rows: self.n_rows }
    }

    /// Numeric view of column `col`: `Some(x)` per cell when convertible.
    pub fn numeric_column(&self, col: usize) -> Vec<Option<f64>> {
        self.columns[col].iter().map(Value::as_f64).collect()
    }

    /// The finite numeric values present in column `col` (nulls and
    /// non-numeric cells skipped).
    pub fn numeric_values(&self, col: usize) -> Vec<f64> {
        self.columns[col].iter().filter_map(Value::as_f64).collect()
    }

    /// Distinct values of column `col` with their frequencies, most frequent
    /// first (ties broken by value order for determinism). Nulls excluded.
    pub fn value_counts(&self, col: usize) -> Vec<(Value, usize)> {
        let mut map: std::collections::BTreeMap<&Value, usize> = std::collections::BTreeMap::new();
        for v in &self.columns[col] {
            if !v.is_null() {
                *map.entry(v).or_insert(0) += 1;
            }
        }
        let mut out: Vec<(Value, usize)> = map.into_iter().map(|(v, n)| (v.clone(), n)).collect();
        out.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.total_cmp(&b.0)));
        out
    }

    /// The most frequent non-null value of column `col` (the mode).
    pub fn mode(&self, col: usize) -> Option<Value> {
        self.value_counts(col).into_iter().next().map(|(v, _)| v)
    }

    /// Infers the *observed* type of a column from its current values: the
    /// majority variant among non-null cells. Falls back to the declared
    /// type on an all-null column.
    pub fn observed_type(&self, col: usize) -> ColumnType {
        let mut counts = [0usize; 4]; // int, float, str, bool
        for v in &self.columns[col] {
            match v {
                Value::Int(_) => counts[0] += 1,
                Value::Float(_) => counts[1] += 1,
                Value::Str(_) => counts[2] += 1,
                Value::Bool(_) => counts[3] += 1,
                Value::Null => {}
            }
        }
        if counts.iter().all(|&c| c == 0) {
            return self.schema.column(col).ctype;
        }
        // audit:allow(panic, the range 0..4 is never empty)
        let best = (0..4).max_by_key(|&i| counts[i]).unwrap();
        [ColumnType::Int, ColumnType::Float, ColumnType::Str, ColumnType::Bool][best]
    }

    /// Iterates over all cell addresses in row-major order.
    pub fn cell_refs(&self) -> impl Iterator<Item = CellRef> + '_ {
        let cols = self.n_cols();
        (0..self.n_rows).flat_map(move |r| (0..cols).map(move |c| CellRef::new(r, c)))
    }

    /// Vertically concatenates `other` below `self`.
    ///
    /// # Panics
    /// Panics on schema mismatch.
    pub fn vstack(&self, other: &Table) -> Table {
        assert_eq!(self.schema, other.schema, "vstack schema mismatch");
        let columns = self
            .columns
            .iter()
            .zip(&other.columns)
            .map(|(a, b)| {
                let mut v = a.clone();
                v.extend(b.iter().cloned());
                v
            })
            .collect();
        Table { schema: self.schema.clone(), columns, n_rows: self.n_rows + other.n_rows }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::ColumnMeta;

    fn schema() -> Schema {
        Schema::new(vec![
            ColumnMeta::new("a", ColumnType::Int),
            ColumnMeta::new("b", ColumnType::Str),
        ])
    }

    fn table() -> Table {
        Table::from_rows(
            schema(),
            vec![
                vec![Value::Int(1), Value::str("x")],
                vec![Value::Int(2), Value::str("y")],
                vec![Value::Int(3), Value::str("x")],
            ],
        )
    }

    #[test]
    fn construction_and_access() {
        let t = table();
        assert_eq!(t.n_rows(), 3);
        assert_eq!(t.n_cols(), 2);
        assert_eq!(t.n_cells(), 6);
        assert_eq!(t.cell(1, 0), &Value::Int(2));
        assert_eq!(t.row(2), vec![Value::Int(3), Value::str("x")]);
    }

    #[test]
    fn from_columns_matches_from_rows() {
        let by_cols = Table::from_columns(
            schema(),
            vec![
                vec![Value::Int(1), Value::Int(2), Value::Int(3)],
                vec![Value::str("x"), Value::str("y"), Value::str("x")],
            ],
        );
        assert_eq!(by_cols, table());
    }

    #[test]
    #[should_panic(expected = "inconsistent length")]
    fn ragged_columns_rejected() {
        Table::from_columns(
            schema(),
            vec![vec![Value::Int(1)], vec![Value::str("x"), Value::str("y")]],
        );
    }

    #[test]
    fn set_cell_mutates() {
        let mut t = table();
        t.set_cell(0, 1, Value::str("z"));
        assert_eq!(t.cell(0, 1), &Value::str("z"));
    }

    #[test]
    fn select_rows_allows_repeats() {
        let t = table().select_rows(&[2, 0, 0]);
        assert_eq!(t.n_rows(), 3);
        assert_eq!(t.cell(0, 0), &Value::Int(3));
        assert_eq!(t.cell(1, 0), &Value::Int(1));
        assert_eq!(t.cell(2, 0), &Value::Int(1));
    }

    #[test]
    fn select_columns_projects_schema() {
        let t = table().select_columns(&[1]);
        assert_eq!(t.n_cols(), 1);
        assert_eq!(t.schema().column(0).name, "b");
        assert_eq!(t.cell(0, 0), &Value::str("x"));
    }

    #[test]
    fn mode_and_value_counts() {
        let t = table();
        assert_eq!(t.mode(1), Some(Value::str("x")));
        let counts = t.value_counts(1);
        assert_eq!(counts[0], (Value::str("x"), 2));
        assert_eq!(counts[1], (Value::str("y"), 1));
    }

    #[test]
    fn numeric_views_skip_nulls() {
        let mut t = table();
        t.set_cell(1, 0, Value::Null);
        assert_eq!(t.numeric_values(0), vec![1.0, 3.0]);
        assert_eq!(t.numeric_column(0), vec![Some(1.0), None, Some(3.0)]);
    }

    #[test]
    fn observed_type_follows_majority() {
        let mut t = table();
        assert_eq!(t.observed_type(0), ColumnType::Int);
        t.set_cell(0, 0, Value::str("oops"));
        t.set_cell(1, 0, Value::str("bad"));
        assert_eq!(t.observed_type(0), ColumnType::Str);
    }

    #[test]
    fn vstack_appends_rows() {
        let t = table().vstack(&table());
        assert_eq!(t.n_rows(), 6);
        assert_eq!(t.cell(3, 0), &Value::Int(1));
    }

    #[test]
    fn cell_refs_enumerate_all_cells() {
        let refs: Vec<CellRef> = table().cell_refs().collect();
        assert_eq!(refs.len(), 6);
        assert_eq!(refs[0], CellRef::new(0, 0));
        assert_eq!(refs[5], CellRef::new(2, 1));
    }
}
