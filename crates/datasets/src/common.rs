//! The generated-dataset container and the finishing step shared by all
//! fourteen generators.

use rein_constraints::fd::FunctionalDependency;
use rein_data::rng::derive_seed;
use rein_data::{CellMask, DatasetInfo, ErrorProfile, MlTask, Table};
use rein_errors::compose::{compose_with_target_rate, ErrorSpec};

/// A fully prepared benchmark dataset: ground truth, dirty version, exact
/// error mask, and the cleaning signals the tools need.
#[derive(Debug, Clone)]
pub struct GeneratedDataset {
    /// Static description (one row of Table 4).
    pub info: DatasetInfo,
    /// Ground-truth table.
    pub clean: Table,
    /// Dirty table (may have extra rows when duplicates were injected).
    pub dirty: Table,
    /// Exact error mask, sized to `dirty`.
    pub mask: CellMask,
    /// Ground-truth duplicate pairs `(original, injected)`.
    pub duplicate_pairs: Vec<(usize, usize)>,
    /// Functional dependencies that hold on the clean data (NADEEF /
    /// HoloClean signals).
    pub fds: Vec<FunctionalDependency>,
    /// Indices of key columns assumed unique (duplicate detection signal).
    pub key_columns: Vec<usize>,
}

impl GeneratedDataset {
    /// Realised cell error rate of the dirty version.
    pub fn error_rate(&self) -> f64 {
        if self.dirty.n_cells() == 0 {
            0.0
        } else {
            self.mask.count() as f64 / self.dirty.n_cells() as f64
        }
    }
}

/// Applies the error profile and packages the dataset.
#[allow(clippy::too_many_arguments)]
pub fn finish(
    name: &str,
    domain: &str,
    task: MlTask,
    clean: Table,
    specs: &[ErrorSpec],
    target_rate: f64,
    seed: u64,
    fds: Vec<FunctionalDependency>,
    key_columns: Vec<usize>,
) -> GeneratedDataset {
    let dirty = compose_with_target_rate(&clean, specs, target_rate, derive_seed(seed, 0xD17));
    let error_types = dirty.error_types.clone();
    let info = DatasetInfo {
        name: name.to_string(),
        domain: domain.to_string(),
        task,
        errors: ErrorProfile { types: error_types, rate: target_rate },
        key_columns: key_columns.iter().map(|&c| clean.schema().column(c).name.clone()).collect(),
    };
    GeneratedDataset {
        info,
        clean,
        dirty: dirty.dirty,
        mask: dirty.mask,
        duplicate_pairs: dirty.duplicate_pairs,
        fds,
        key_columns,
    }
}
