//! Missing-value injection: explicit NULLs, implicit placeholders, and
//! disguised values (the FAHES target, e.g. `999999` in a phone column).

use rand::prelude::*;
use rand::rngs::StdRng;
use rein_data::{CellMask, Table, Value};

use crate::common::{cells_of_columns, pick_cells, Injection};

/// Placeholder spellings used for implicit missing values, as produced by
/// the `error-generator` library the paper uses.
pub const IMPLICIT_TOKENS: [&str; 5] = ["?", "unknown", "-", "N/A", "missing"];

/// Disguised numeric sentinels (FAHES's motivating examples).
pub const DISGUISED_NUMBERS: [i64; 4] = [99999, 999999, -1, 0];

/// Replaces `rate` of the non-null cells in `cols` with explicit NULLs.
pub fn inject_explicit_missing(table: &Table, cols: &[usize], rate: f64, seed: u64) -> Injection {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut out = table.clone();
    let mut mask = CellMask::new(table.n_rows(), table.n_cols());
    for cell in pick_cells(&cells_of_columns(table, cols), rate, &mut rng) {
        out.set_cell(cell.row, cell.col, Value::Null);
        mask.set(cell.row, cell.col, true);
    }
    Injection { table: out, cells: mask }
}

/// Replaces `rate` of the non-null cells in `cols` with implicit
/// missing-value placeholders (`"?"`, `"unknown"`, …).
pub fn inject_implicit_missing(table: &Table, cols: &[usize], rate: f64, seed: u64) -> Injection {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut out = table.clone();
    let mut mask = CellMask::new(table.n_rows(), table.n_cols());
    for cell in pick_cells(&cells_of_columns(table, cols), rate, &mut rng) {
        // audit:allow(panic, IMPLICIT_TOKENS is a non-empty const array)
        let token = *IMPLICIT_TOKENS.choose(&mut rng).expect("non-empty");
        out.set_cell(cell.row, cell.col, Value::str(token));
        mask.set(cell.row, cell.col, true);
    }
    Injection { table: out, cells: mask }
}

/// Replaces `rate` of the non-null *numeric* cells in `cols` with disguised
/// sentinels (`999999`, `-1`, …) that sit inside the column's domain type
/// but outside its plausible range.
pub fn inject_disguised_missing(table: &Table, cols: &[usize], rate: f64, seed: u64) -> Injection {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut out = table.clone();
    let mut mask = CellMask::new(table.n_rows(), table.n_cols());
    let candidates: Vec<_> = cells_of_columns(table, cols)
        .into_iter()
        .filter(|c| table.cell(c.row, c.col).as_f64().is_some())
        .collect();
    for cell in pick_cells(&candidates, rate, &mut rng) {
        // audit:allow(panic, DISGUISED_NUMBERS is a non-empty const array)
        let sentinel = *DISGUISED_NUMBERS.choose(&mut rng).expect("non-empty");
        // Avoid a no-op when the true value equals the sentinel.
        let current = table.cell(cell.row, cell.col).as_f64().unwrap_or(f64::NAN);
        let sentinel = if (current - sentinel as f64).abs() < f64::EPSILON {
            DISGUISED_NUMBERS[0]
        } else {
            sentinel
        };
        out.set_cell(cell.row, cell.col, Value::Int(sentinel));
        mask.set(cell.row, cell.col, true);
    }
    Injection { table: out, cells: mask }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rein_data::{diff::diff_mask, ColumnMeta, ColumnType, Schema};

    fn table() -> Table {
        let schema = Schema::new(vec![
            ColumnMeta::new("x", ColumnType::Float),
            ColumnMeta::new("s", ColumnType::Str),
        ]);
        Table::from_rows(
            schema,
            (0..40)
                .map(|i| vec![Value::Float(i as f64 + 0.5), Value::str(format!("v{i}"))])
                .collect(),
        )
    }

    #[test]
    fn explicit_nulls_land_where_reported() {
        let t = table();
        let inj = inject_explicit_missing(&t, &[0], 0.25, 7);
        assert_eq!(inj.cells.count(), 10);
        for c in inj.cells.iter() {
            assert!(inj.table.cell(c.row, c.col).is_null());
        }
        // The mask exactly matches the ground-truth diff.
        assert_eq!(diff_mask(&t, &inj.table), inj.cells);
    }

    #[test]
    fn implicit_tokens_are_strings() {
        let t = table();
        let inj = inject_implicit_missing(&t, &[0, 1], 0.1, 3);
        assert_eq!(inj.cells.count(), 8);
        for c in inj.cells.iter() {
            let v = inj.table.cell(c.row, c.col);
            assert!(IMPLICIT_TOKENS.contains(&v.to_string().as_str()), "value {v}");
        }
        assert_eq!(diff_mask(&t, &inj.table), inj.cells);
    }

    #[test]
    fn disguised_values_are_numeric_sentinels() {
        let t = table();
        let inj = inject_disguised_missing(&t, &[0], 0.2, 5);
        assert_eq!(inj.cells.count(), 8);
        for c in inj.cells.iter() {
            let v = inj.table.cell(c.row, c.col).as_i64().unwrap();
            assert!(DISGUISED_NUMBERS.contains(&v));
        }
        assert_eq!(diff_mask(&t, &inj.table), inj.cells);
    }

    #[test]
    fn disguised_skips_non_numeric_columns() {
        let t = table();
        let inj = inject_disguised_missing(&t, &[1], 0.5, 5);
        assert!(inj.cells.is_empty());
    }

    #[test]
    fn injection_is_deterministic() {
        let t = table();
        let a = inject_explicit_missing(&t, &[0, 1], 0.3, 11);
        let b = inject_explicit_missing(&t, &[0, 1], 0.3, 11);
        assert_eq!(a.table, b.table);
        assert_eq!(a.cells, b.cells);
    }

    #[test]
    fn zero_rate_changes_nothing() {
        let t = table();
        let inj = inject_explicit_missing(&t, &[0], 0.0, 1);
        assert!(inj.cells.is_empty());
        assert_eq!(inj.table, t);
    }
}
