//! ED2 (Neutatz et al.): active learning for error detection. Cells are
//! represented by attribute/tuple/dataset-level content features; a
//! classifier is trained on a growing labelled set where each batch is
//! chosen by uncertainty sampling, until the labelling budget is spent.

use rand::prelude::*;
use rand::rngs::StdRng;
use rein_data::{CellMask, CellRef};
use rein_ml::encode::select_matrix_rows;
use rein_ml::forest::{ForestParams, RandomForestClassifier};
use rein_ml::linalg::Matrix;
use rein_ml::model::Classifier;

use crate::context::{DetectContext, Detector};
use crate::features::{CellFeaturizer, N_CONTENT_FEATURES};

/// ED2 detector.
#[derive(Debug, Clone)]
pub struct Ed2 {
    /// Labels acquired per active-learning round.
    pub batch_size: usize,
}

impl Default for Ed2 {
    fn default() -> Self {
        Self { batch_size: 10 }
    }
}

impl Detector for Ed2 {
    fn name(&self) -> &'static str {
        "ed2"
    }

    fn detect(&self, ctx: &DetectContext<'_>) -> CellMask {
        let _span = rein_telemetry::span("detect:ed2");
        let t = ctx.dirty;
        let mut mask = CellMask::new(t.n_rows(), t.n_cols());
        let Some(oracle) = ctx.oracle else { return mask };
        let n_cells = t.n_cells();
        if n_cells == 0 {
            return mask;
        }

        // Cell features: content features + column one-hot (attribute id is
        // a strong ED2 signal).
        let featurizer = CellFeaturizer::fit(t);
        let width = N_CONTENT_FEATURES + t.n_cols();
        let mut x = Matrix::zeros(n_cells, width);
        for r in 0..t.n_rows() {
            rein_guard::checkpoint(t.n_cols() as u64);
            for c in 0..t.n_cols() {
                let idx = r * t.n_cols() + c;
                let row = x.row_mut(idx);
                featurizer.features_into(t, r, c, &mut row[..N_CONTENT_FEATURES]);
                row[N_CONTENT_FEATURES + c] = 1.0;
            }
        }

        let mut rng = StdRng::seed_from_u64(ctx.seed);
        let budget = ctx.labeling_budget.max(2 * self.batch_size).min(n_cells);

        // Seed batch: random cells.
        let mut labelled: Vec<usize> = Vec::new();
        let mut labels: Vec<usize> = Vec::new();
        let mut unlabelled: Vec<usize> = (0..n_cells).collect();
        unlabelled.shuffle(&mut rng);
        let query = |cells: &[usize], labelled: &mut Vec<usize>, labels: &mut Vec<usize>| {
            for &i in cells {
                let cell = CellRef::new(i / t.n_cols(), i % t.n_cols());
                labelled.push(i);
                labels.push(usize::from(oracle.is_dirty(cell)));
            }
        };
        let first: Vec<usize> =
            unlabelled.split_off(unlabelled.len().saturating_sub(self.batch_size));
        query(&first, &mut labelled, &mut labels);

        let mut model = RandomForestClassifier::new(
            ForestParams { n_trees: 15, ..Default::default() },
            ctx.seed,
        );
        while labelled.len() < budget && !unlabelled.is_empty() {
            if labels.contains(&1) && labels.contains(&0) {
                let xs = select_matrix_rows(&x, &labelled);
                model.fit(&xs, &labels, 2);
                // Uncertainty sampling over a capped candidate pool.
                let pool_size = unlabelled.len().min(4000);
                let pool = &unlabelled[unlabelled.len() - pool_size..];
                let xp = select_matrix_rows(&x, pool);
                let probs = model.predict_proba(&xp, 2);
                let mut scored: Vec<(usize, f64)> = pool
                    .iter()
                    .enumerate()
                    .map(|(local, &global)| (global, (probs[(local, 1)] - 0.5).abs()))
                    .collect();
                scored.sort_by(|a, b| a.1.total_cmp(&b.1));
                let batch: Vec<usize> =
                    scored.iter().take(self.batch_size).map(|&(g, _)| g).collect();
                unlabelled.retain(|i| !batch.contains(i));
                query(&batch, &mut labelled, &mut labels);
            } else {
                // No positive seen yet: keep sampling randomly.
                let batch: Vec<usize> =
                    unlabelled.split_off(unlabelled.len().saturating_sub(self.batch_size));
                query(&batch, &mut labelled, &mut labels);
            }
        }

        if labels.iter().all(|&l| l == 0) {
            return mask; // no errors ever witnessed
        }
        if labels.iter().all(|&l| l == 1) {
            return CellMask::full(t.n_rows(), t.n_cols());
        }
        let xs = select_matrix_rows(&x, &labelled);
        model.fit(&xs, &labels, 2);
        let preds = model.predict(&x);
        for (i, &p) in preds.iter().enumerate() {
            if p == 1 {
                mask.set(i / t.n_cols(), i % t.n_cols(), true);
            }
        }
        // Every labelled-dirty cell is certainly dirty.
        for (&i, &l) in labelled.iter().zip(&labels) {
            if l == 1 {
                mask.set(i / t.n_cols(), i % t.n_cols(), true);
            }
        }
        mask
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::Oracle;
    use rein_data::diff::diff_mask;
    use rein_data::{ColumnMeta, ColumnType, Schema, Table, Value};
    use rein_stats::evaluate_detection;

    fn dataset() -> (Table, Table) {
        let schema = Schema::new(vec![
            ColumnMeta::new("x", ColumnType::Float),
            ColumnMeta::new("c", ColumnType::Str),
        ]);
        let clean = Table::from_rows(
            schema,
            (0..250)
                .map(|i| vec![Value::Float(10.0 + (i % 6) as f64), Value::str(["u", "v"][i % 2])])
                .collect(),
        );
        let mut dirty = clean.clone();
        for i in 0..20 {
            dirty.set_cell(i * 12, 0, Value::Float(500.0 + i as f64));
        }
        for i in 0..8 {
            dirty.set_cell(i * 30 + 1, 1, Value::Null);
        }
        (clean, dirty)
    }

    #[test]
    fn active_learning_finds_errors() {
        let (clean, dirty) = dataset();
        let actual = diff_mask(&clean, &dirty);
        let oracle = Oracle::new(actual.clone());
        let ctx = DetectContext {
            oracle: Some(&oracle),
            labeling_budget: 80,
            seed: 7,
            ..DetectContext::bare(&dirty)
        };
        let m = Ed2::default().detect(&ctx);
        let q = evaluate_detection(&m, &actual);
        assert!(q.f1 > 0.7, "f1 {}", q.f1);
        assert!(oracle.queries_used() <= 80 + 10, "queries {}", oracle.queries_used());
    }

    #[test]
    fn ed2_without_oracle_is_silent() {
        let (_, dirty) = dataset();
        assert!(Ed2::default().detect(&DetectContext::bare(&dirty)).is_empty());
    }

    #[test]
    fn clean_table_yields_nothing() {
        let (clean, _) = dataset();
        let actual = CellMask::new(clean.n_rows(), clean.n_cols());
        let oracle = Oracle::new(actual);
        let ctx = DetectContext {
            oracle: Some(&oracle),
            labeling_budget: 40,
            ..DetectContext::bare(&clean)
        };
        assert!(Ed2::default().detect(&ctx).is_empty());
    }
}
