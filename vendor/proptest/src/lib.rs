//! Offline vendored stand-in for `proptest`.
//!
//! Provides the property-testing subset the REIN-RS workspace uses: the
//! [`proptest!`] macro, [`Strategy`] over numeric ranges / tuples /
//! `Just` / simple `[class]{lo,hi}` string patterns / `any::<T>()`,
//! `prop::collection::vec`, `prop_oneof!`, and the `prop_assert*`
//! macros. Cases are generated from a deterministic per-test RNG (seeded
//! by the test name) so failures reproduce exactly; shrinking is not
//! implemented — the failing input is printed instead.

use std::ops::Range;

/// Deterministic generator driving all strategies (SplitMix64).
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds the generator from a test name.
    pub fn deterministic(name: &str) -> Self {
        let mut state = 0xA076_1D64_78BD_642Fu64;
        for b in name.bytes() {
            state = (state ^ b as u64).wrapping_mul(0x100_0000_01B3);
        }
        TestRng { state }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform in `[0, n)`.
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "below(0)");
        self.next_u64() % n
    }
}

/// Test-case generation strategy.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

impl<T> Strategy for Box<dyn Strategy<Value = T>> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        (**self).generate(rng)
    }
}

/// [`Strategy::prop_map`] adaptor.
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Constant strategy.
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let draw = (rng.next_u64() as u128) % span;
                (self.start as i128 + draw as i128) as $t
            }
        }
    )*};
}
impl_int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                self.start + (self.end - self.start) * rng.unit_f64() as $t
            }
        }
    )*};
}
impl_float_range_strategy!(f32, f64);

impl<A: Strategy, B: Strategy> Strategy for (A, B) {
    type Value = (A::Value, B::Value);

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (self.0.generate(rng), self.1.generate(rng))
    }
}

impl<A: Strategy, B: Strategy, C: Strategy> Strategy for (A, B, C) {
    type Value = (A::Value, B::Value, C::Value);

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (self.0.generate(rng), self.1.generate(rng), self.2.generate(rng))
    }
}

impl<A: Strategy, B: Strategy, C: Strategy, D: Strategy> Strategy for (A, B, C, D) {
    type Value = (A::Value, B::Value, C::Value, D::Value);

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (
            self.0.generate(rng),
            self.1.generate(rng),
            self.2.generate(rng),
            self.3.generate(rng),
        )
    }
}

/// String strategy from a `[class]{lo,hi}` pattern (the regex subset the
/// workspace uses). Panics on unsupported patterns.
impl Strategy for &str {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        let (alphabet, lo, hi) = parse_char_class_pattern(self)
            .unwrap_or_else(|| panic!("unsupported string strategy pattern {self:?}"));
        let len = lo + rng.below((hi - lo + 1) as u64) as usize;
        (0..len).map(|_| alphabet[rng.below(alphabet.len() as u64) as usize]).collect()
    }
}

/// Parses `[chars]{lo,hi}` / `[chars]{n}` / `[chars]` (single char).
fn parse_char_class_pattern(pattern: &str) -> Option<(Vec<char>, usize, usize)> {
    let rest = pattern.strip_prefix('[')?;
    let close = rest.find(']')?;
    let class: Vec<char> = rest[..close].chars().collect();
    let mut alphabet = Vec::new();
    let mut i = 0;
    while i < class.len() {
        if i + 2 < class.len() && class[i + 1] == '-' {
            let (lo, hi) = (class[i], class[i + 2]);
            for c in lo..=hi {
                alphabet.push(c);
            }
            i += 3;
        } else {
            alphabet.push(class[i]);
            i += 1;
        }
    }
    if alphabet.is_empty() {
        return None;
    }
    let tail = &rest[close + 1..];
    if tail.is_empty() {
        return Some((alphabet, 1, 1));
    }
    let counts = tail.strip_prefix('{')?.strip_suffix('}')?;
    let (lo, hi) = match counts.split_once(',') {
        Some((lo, hi)) => (lo.trim().parse().ok()?, hi.trim().parse().ok()?),
        None => {
            let n = counts.trim().parse().ok()?;
            (n, n)
        }
    };
    Some((alphabet, lo, hi))
}

/// Types with a default "any value" strategy.
pub trait Arbitrary: Sized {
    /// Generates an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    /// Finite floats across a wide magnitude range (no NaN/inf — the
    /// workspace's float invariants assume finite inputs from `any`).
    fn arbitrary(rng: &mut TestRng) -> Self {
        let magnitude = (rng.unit_f64() * 2.0 - 1.0) * 1e12;
        if rng.next_u64() % 8 == 0 {
            0.0
        } else {
            magnitude
        }
    }
}

/// `any::<T>()` strategy.
pub struct Any<T> {
    _marker: std::marker::PhantomData<T>,
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The default strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any { _marker: std::marker::PhantomData }
}

/// Uniform choice over boxed strategies (built by [`prop_oneof!`]).
pub struct Union<T> {
    arms: Vec<Box<dyn Strategy<Value = T>>>,
}

impl<T> Union<T> {
    /// Builds the union; panics when empty.
    pub fn new(arms: Vec<Box<dyn Strategy<Value = T>>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let pick = rng.below(self.arms.len() as u64) as usize;
        self.arms[pick].generate(rng)
    }
}

/// Boxes a strategy (helper for [`prop_oneof!`] type unification).
pub fn boxed_strategy<S>(s: S) -> Box<dyn Strategy<Value = S::Value>>
where
    S: Strategy + 'static,
{
    Box::new(s)
}

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::{Range, RangeInclusive};

    /// Length bounds for [`vec`] — half-open `[lo, hi)`, accepted from
    /// `Range`, `RangeInclusive`, or an exact `usize`.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            SizeRange { lo: r.start, hi: r.end }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            SizeRange { lo: *r.start(), hi: *r.end() + 1 }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    /// `Vec` strategy with element strategy and length range.
    pub struct VecStrategy<S> {
        element: S,
        len: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            assert!(self.len.lo < self.len.hi, "empty vec length range");
            let span = (self.len.hi - self.len.lo) as u64;
            let len = self.len.lo + rng.below(span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Builds a `Vec` strategy.
    pub fn vec<S: Strategy>(element: S, len: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, len: len.into() }
    }
}

/// Runner configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // The real crate defaults to 256; 64 keeps the offline suite fast
        // while still exercising a spread of inputs.
        ProptestConfig { cases: 64 }
    }
}

/// Property-test entry point: expands each `fn name(pat in strategy, ..)`
/// into a `#[test]` that runs the body over generated cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest! { @inner ($cfg); $($rest)* }
    };
    (@inner ($cfg:expr); $(
        $(#[$attr:meta])*
        fn $name:ident($($p:pat in $s:expr),+ $(,)?) $body:block
    )*) => {
        $(
            $(#[$attr])*
            fn $name() {
                let __config: $crate::ProptestConfig = $cfg;
                let mut __rng = $crate::TestRng::deterministic(concat!(module_path!(), "::", stringify!($name)));
                for __case in 0..__config.cases {
                    $(let $p = $crate::Strategy::generate(&($s), &mut __rng);)+
                    $body
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest! { @inner ($crate::ProptestConfig::default()); $($rest)* }
    };
}

/// Asserts a property (panics with the message on failure).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Asserts equality of two expressions.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Asserts inequality of two expressions.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Skips the current case when its precondition fails.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            continue;
        }
    };
}

/// Uniform choice among strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($s:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::boxed_strategy($s)),+])
    };
}

/// The customary glob import.
pub mod prelude {
    pub use super::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
        Arbitrary, Just, ProptestConfig, Strategy,
    };
    /// `prop::collection::vec` etc.
    pub use crate as prop;
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        #[test]
        fn ranges_stay_in_bounds(a in 3usize..17, b in -2.0f64..2.0) {
            prop_assert!((3..17).contains(&a));
            prop_assert!((-2.0..2.0).contains(&b));
        }

        #[test]
        fn tuples_and_vecs(pairs in prop::collection::vec((0u8..4, 0u8..4), 1..30)) {
            prop_assert!(!pairs.is_empty() && pairs.len() < 30);
            for (x, y) in pairs {
                prop_assert!(x < 4 && y < 4);
            }
        }

        #[test]
        fn string_patterns_match_class(s in "[a-c0-1]{2,5}") {
            prop_assert!((2..=5).contains(&s.len()));
            prop_assert!(s.chars().all(|c| "abc01".contains(c)));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]

        #[test]
        fn oneof_and_map(v in prop_oneof![Just(-1i64), any::<i64>().prop_map(|x| x.saturating_abs())]) {
            prop_assert!(v == -1 || v >= 0);
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let mut a = super::TestRng::deterministic("x");
        let mut b = super::TestRng::deterministic("x");
        assert_eq!(a.next_u64(), b.next_u64());
    }
}
