//! CleanLab (Northcutt et al.): confident learning for mislabel detection.
//! Out-of-fold predicted probabilities feed the *confident joint* — the
//! matrix counting examples whose predicted probability for another class
//! exceeds that class's self-confidence threshold; off-diagonal entries
//! are flagged label errors.

use rein_data::CellMask;
use rein_ml::encode::{select_matrix_rows, Encoder, LabelMap};
use rein_ml::linalg::Matrix;
use rein_ml::model::Classifier;
use rein_ml::tree::{DecisionTreeClassifier, TreeParams};

use crate::context::{DetectContext, Detector};

/// CleanLab detector.
#[derive(Debug, Clone)]
pub struct CleanLab {
    /// Cross-validation folds for out-of-sample probabilities.
    pub folds: usize,
}

impl Default for CleanLab {
    fn default() -> Self {
        Self { folds: 3 }
    }
}

/// Out-of-fold class probabilities for every labelled row.
fn out_of_fold_probs(x: &Matrix, y: &[usize], n_classes: usize, folds: usize, seed: u64) -> Matrix {
    let n = x.rows();
    let mut probs = Matrix::zeros(n, n_classes);
    let splits = rein_data::split::k_fold_indices(n, folds.max(2), seed);
    for split in splits {
        let xtr = select_matrix_rows(x, &split.train);
        let ytr: Vec<usize> = split.train.iter().map(|&i| y[i]).collect();
        let mut model = DecisionTreeClassifier::new(TreeParams::default());
        model.fit(&xtr, &ytr, n_classes);
        let xte = select_matrix_rows(x, &split.test);
        let p = model.predict_proba(&xte, n_classes);
        for (local, &global) in split.test.iter().enumerate() {
            probs.row_mut(global).copy_from_slice(p.row(local));
        }
    }
    probs
}

impl Detector for CleanLab {
    fn name(&self) -> &'static str {
        "cleanlab"
    }

    fn detect(&self, ctx: &DetectContext<'_>) -> CellMask {
        let _span = rein_telemetry::span("detect:cleanlab");
        let t = ctx.dirty;
        let mut mask = CellMask::new(t.n_rows(), t.n_cols());
        let Some(label_col) = ctx.label_col else { return mask };

        let feature_cols: Vec<usize> = (0..t.n_cols()).filter(|&c| c != label_col).collect();
        if feature_cols.is_empty() {
            return mask;
        }
        let labels = LabelMap::fit([t], label_col);
        let n_classes = labels.n_classes();
        if n_classes < 2 {
            return mask;
        }
        let (rows, y) = labels.encode(t, label_col);
        if rows.len() < 10 {
            return mask;
        }
        let encoder = Encoder::fit(t, &feature_cols);
        let x_all = encoder.transform(t);
        let x = select_matrix_rows(&x_all, &rows);

        let probs = out_of_fold_probs(&x, &y, n_classes, self.folds, ctx.seed);

        // Per-class self-confidence thresholds: mean predicted probability
        // of class j among examples labelled j.
        let mut thresholds = vec![0.0f64; n_classes];
        let mut counts = vec![0usize; n_classes];
        for (i, &yi) in y.iter().enumerate() {
            thresholds[yi] += probs[(i, yi)];
            counts[yi] += 1;
        }
        for (th, &c) in thresholds.iter_mut().zip(&counts) {
            if c > 0 {
                *th /= c as f64;
            } else {
                *th = 1.0;
            }
        }

        // Confident joint: example i labelled yi is confidently of class j
        // when p(j|i) ≥ threshold_j and j is the argmax above threshold.
        for (i, &yi) in y.iter().enumerate() {
            let mut best: Option<(usize, f64)> = None;
            for j in 0..n_classes {
                let p = probs[(i, j)];
                if p >= thresholds[j] && best.is_none_or(|(_, bp)| p > bp) {
                    best = Some((j, p));
                }
            }
            if let Some((j, _)) = best {
                if j != yi {
                    mask.set(rows[i], label_col, true);
                }
            }
        }
        mask
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rein_data::{ColumnMeta, ColumnType, Schema, Table, Value};

    /// Two well-separated classes; rows in `flipped` carry the wrong label.
    fn table(flipped: &[usize]) -> Table {
        let schema = Schema::new(vec![
            ColumnMeta::new("x", ColumnType::Float),
            ColumnMeta::new("y", ColumnType::Str).label(),
        ]);
        let mut rows: Vec<Vec<Value>> = (0..120)
            .map(|i| {
                let pos = i % 2 == 0;
                // Unique x per row: duplicated feature values would let a
                // flipped row hide behind clean twins in its leaf.
                vec![
                    Value::Float(if pos { 10.0 } else { -10.0 } + i as f64 * 0.01),
                    Value::str(if pos { "pos" } else { "neg" }),
                ]
            })
            .collect();
        for &f in flipped {
            let cur = rows[f][1].to_string();
            rows[f][1] = Value::str(if cur == "pos" { "neg" } else { "pos" });
        }
        Table::from_rows(schema, rows)
    }

    #[test]
    fn finds_flipped_labels() {
        let flipped = [5, 28, 61, 90];
        let t = table(&flipped);
        let ctx = DetectContext { label_col: Some(1), seed: 1, ..DetectContext::bare(&t) };
        let m = CleanLab::default().detect(&ctx);
        for &f in &flipped {
            assert!(m.get(f, 1), "flip at row {f} missed");
        }
        // Precision: few clean labels flagged.
        assert!(m.count() <= flipped.len() + 3, "count {}", m.count());
    }

    #[test]
    fn detections_restricted_to_label_column() {
        let t = table(&[3]);
        let ctx = DetectContext { label_col: Some(1), ..DetectContext::bare(&t) };
        let m = CleanLab::default().detect(&ctx);
        for cell in m.iter() {
            assert_eq!(cell.col, 1);
        }
    }

    #[test]
    fn clean_labels_mostly_unflagged() {
        let t = table(&[]);
        let ctx = DetectContext { label_col: Some(1), ..DetectContext::bare(&t) };
        let m = CleanLab::default().detect(&ctx);
        assert!(m.count() <= 2, "count {}", m.count());
    }

    #[test]
    fn no_label_column_is_a_noop() {
        let t = table(&[3]);
        assert!(CleanLab::default().detect(&DetectContext::bare(&t)).is_empty());
    }
}
