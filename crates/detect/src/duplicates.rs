//! Duplicate detection: Key Collision (normalised key matching) and
//! ZeroER (Wu et al.) — blocking + similarity features + a two-component
//! Gaussian mixture separating matches from unmatches with **zero**
//! labelled examples.

use std::collections::BTreeMap;

use rein_constraints::pattern::fingerprint;
use rein_data::{CellMask, Table};

use crate::context::{DetectContext, Detector};

/// Marks all cells of every row in a duplicate group except its first
/// occurrence (the convention matching the injector's ground truth, which
/// flags appended duplicates).
fn flag_duplicate_rows(mask: &mut CellMask, groups: &[Vec<usize>]) {
    for group in groups {
        for &r in &group[1..] {
            mask.set_row(r, true);
        }
    }
}

/// Key-collision duplicate detector: rows sharing the fingerprint of their
/// key columns are duplicates.
#[derive(Debug, Default, Clone)]
pub struct KeyCollision;

impl Detector for KeyCollision {
    fn name(&self) -> &'static str {
        "key_collision"
    }

    fn detect(&self, ctx: &DetectContext<'_>) -> CellMask {
        let _span = rein_telemetry::span("detect:duplicates");
        let t = ctx.dirty;
        let mut mask = CellMask::new(t.n_rows(), t.n_cols());
        if ctx.key_columns.is_empty() {
            return mask;
        }
        let mut groups: BTreeMap<String, Vec<usize>> = BTreeMap::new();
        for r in 0..t.n_rows() {
            rein_guard::checkpoint(1);
            let mut key = String::new();
            for &c in ctx.key_columns {
                key.push_str(&fingerprint(&t.cell(r, c).to_string()));
                key.push('\u{1f}');
            }
            groups.entry(key).or_default().push(r);
        }
        let dup_groups: Vec<Vec<usize>> = groups.into_values().filter(|g| g.len() > 1).collect();
        flag_duplicate_rows(&mut mask, &dup_groups);
        mask
    }
}

/// Jaccard similarity of word-token sets.
fn token_jaccard(a: &str, b: &str) -> f64 {
    let la = a.to_lowercase();
    let lb = b.to_lowercase();
    let ta: std::collections::BTreeSet<&str> = la.split_whitespace().collect();
    let tb: std::collections::BTreeSet<&str> = lb.split_whitespace().collect();
    if ta.is_empty() && tb.is_empty() {
        return 1.0;
    }
    let inter = ta.intersection(&tb).count();
    inter as f64 / (ta.len() + tb.len() - inter) as f64
}

/// Normalised character trigram overlap (robust to typos).
fn trigram_sim(a: &str, b: &str) -> f64 {
    let grams = |s: &str| -> std::collections::BTreeSet<String> {
        let lower = s.to_lowercase();
        let cs: Vec<char> = lower.chars().collect();
        if cs.len() < 3 {
            return [lower].into_iter().collect();
        }
        cs.windows(3).map(|w| w.iter().collect()).collect()
    };
    let ga = grams(a);
    let gb = grams(b);
    if ga.is_empty() && gb.is_empty() {
        return 1.0;
    }
    let inter = ga.intersection(&gb).count();
    inter as f64 / (ga.len() + gb.len() - inter) as f64
}

/// Magellan-style similarity features for a row pair.
fn pair_features(t: &Table, a: usize, b: usize) -> Vec<f64> {
    let mut feats = Vec::with_capacity(t.n_cols() * 2);
    for c in 0..t.n_cols() {
        let va = t.cell(a, c);
        let vb = t.cell(b, c);
        match (va.as_f64(), vb.as_f64()) {
            (Some(x), Some(y)) => {
                let scale = x.abs().max(y.abs()).max(1.0);
                feats.push(1.0 - ((x - y).abs() / scale).min(1.0));
                feats.push(f64::from(x == y));
            }
            _ => {
                let sa = va.to_string();
                let sb = vb.to_string();
                feats.push(token_jaccard(&sa, &sb));
                feats.push(trigram_sim(&sa, &sb));
            }
        }
    }
    feats
}

/// ZeroER duplicate detector.
#[derive(Debug, Clone)]
pub struct ZeroEr {
    /// Maximum candidate pairs per block (guards quadratic blow-up).
    pub max_block_pairs: usize,
}

impl Default for ZeroEr {
    fn default() -> Self {
        Self { max_block_pairs: 50_000 }
    }
}

impl ZeroEr {
    /// Blocking key: fingerprint prefix of the textiest column (or the key
    /// column when provided).
    fn block_column(&self, ctx: &DetectContext<'_>) -> usize {
        if let Some(&c) = ctx.key_columns.first() {
            return c;
        }
        // Pick the categorical column with the most distinct values.
        ctx.categorical_columns()
            .into_iter()
            .max_by_key(|&c| ctx.dirty.value_counts(c).len())
            .unwrap_or(0)
    }
}

impl Detector for ZeroEr {
    fn name(&self) -> &'static str {
        "zeroer"
    }

    fn detect(&self, ctx: &DetectContext<'_>) -> CellMask {
        let _span = rein_telemetry::span("detect:duplicates");
        let t = ctx.dirty;
        let mut mask = CellMask::new(t.n_rows(), t.n_cols());
        if t.n_rows() < 4 {
            return mask;
        }
        let bc = self.block_column(ctx);

        // Blocking on the first two fingerprint tokens.
        let mut blocks: BTreeMap<String, Vec<usize>> = BTreeMap::new();
        for r in 0..t.n_rows() {
            let fp = fingerprint(&t.cell(r, bc).to_string());
            let key: String = fp.split(' ').take(2).collect::<Vec<_>>().join(" ");
            blocks.entry(key).or_default().push(r);
        }

        // Candidate pairs + features.
        let mut pairs: Vec<(usize, usize)> = Vec::new();
        for members in blocks.values() {
            let mut count = 0usize;
            for (i, &a) in members.iter().enumerate() {
                for &b in &members[i + 1..] {
                    pairs.push((a, b));
                    count += 1;
                    if count >= self.max_block_pairs {
                        break;
                    }
                }
                if count >= self.max_block_pairs {
                    break;
                }
            }
        }
        if pairs.is_empty() {
            return mask;
        }
        let feats: Vec<Vec<f64>> = pairs.iter().map(|&(a, b)| pair_features(t, a, b)).collect();
        // Scalar similarity score per pair (mean feature) then a 1-D
        // two-component GMM — the essence of ZeroER's generative match /
        // unmatch separation, with zero labels.
        let scores: Vec<f64> =
            feats.iter().map(|f| f.iter().sum::<f64>() / f.len().max(1) as f64).collect();
        let (mut m1, mut m2) = (0.25f64, 0.9f64); // unmatch, match priors
        let (mut s1, mut s2) = (0.2f64, 0.1f64);
        for _ in 0..15 {
            let (mut sum1, mut sum2, mut w1, mut w2, mut v1, mut v2) =
                (0.0, 0.0, 0.0, 0.0, 0.0, 0.0);
            for &x in &scores {
                let p1 = (-(x - m1).powi(2) / (2.0 * s1 * s1)).exp() / s1.max(1e-9);
                let p2 = (-(x - m2).powi(2) / (2.0 * s2 * s2)).exp() / s2.max(1e-9);
                let r1 = p1 / (p1 + p2).max(1e-300);
                sum1 += r1 * x;
                sum2 += (1.0 - r1) * x;
                w1 += r1;
                w2 += 1.0 - r1;
                v1 += r1 * (x - m1).powi(2);
                v2 += (1.0 - r1) * (x - m2).powi(2);
            }
            m1 = sum1 / w1.max(1e-12);
            m2 = sum2 / w2.max(1e-12);
            s1 = (v1 / w1.max(1e-12)).sqrt().max(0.02);
            s2 = (v2 / w2.max(1e-12)).sqrt().max(0.02);
        }
        let (match_mean, match_std, unmatch_mean, unmatch_std) =
            if m1 > m2 { (m1, s1, m2, s2) } else { (m2, s2, m1, s1) };

        // Union-find over matched pairs so groups flag consistently.
        let mut parent: Vec<usize> = (0..t.n_rows()).collect();
        fn find(parent: &mut Vec<usize>, x: usize) -> usize {
            if parent[x] != x {
                let root = find(parent, parent[x]);
                parent[x] = root;
            }
            parent[x]
        }
        let mut any_match = false;
        for (&(a, b), &score) in pairs.iter().zip(&scores) {
            let p_match =
                (-(score - match_mean).powi(2) / (2.0 * match_std * match_std)).exp() / match_std;
            let p_un = (-(score - unmatch_mean).powi(2) / (2.0 * unmatch_std * unmatch_std)).exp()
                / unmatch_std;
            // Guard against degenerate EM: a "match" must also be
            // absolutely similar — and near-identical pairs always match
            // (few candidate pairs starve the mixture fit).
            if (p_match > p_un && score > 0.75) || score > 0.9 {
                let (ra, rb) = (find(&mut parent, a), find(&mut parent, b));
                if ra != rb {
                    parent[ra.max(rb)] = ra.min(rb);
                }
                any_match = true;
            }
        }
        if !any_match {
            return mask;
        }
        let mut groups: BTreeMap<usize, Vec<usize>> = BTreeMap::new();
        for r in 0..t.n_rows() {
            let root = find(&mut parent, r);
            groups.entry(root).or_default().push(r);
        }
        let dup_groups: Vec<Vec<usize>> = groups.into_values().filter(|g| g.len() > 1).collect();
        flag_duplicate_rows(&mut mask, &dup_groups);
        mask
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rein_data::{ColumnMeta, ColumnType, Schema, Value};

    fn table_with_duplicates() -> Table {
        let schema = Schema::new(vec![
            ColumnMeta::new("title", ColumnType::Str),
            ColumnMeta::new("year", ColumnType::Int),
        ]);
        let mut rows: Vec<Vec<Value>> = (0..40)
            .map(|i| {
                vec![Value::str(format!("unique study of topic number {i}")), Value::Int(2000 + i)]
            })
            .collect();
        // Exact duplicate of row 3 and fuzzy duplicate of row 7.
        rows.push(vec![Value::str("unique study of topic number 3"), Value::Int(2003)]);
        rows.push(vec![Value::str("Unique Study of Topic Number 7"), Value::Int(2007)]);
        Table::from_rows(schema, rows)
    }

    #[test]
    fn key_collision_finds_normalised_matches() {
        let t = table_with_duplicates();
        let keys = [0usize];
        let ctx = DetectContext { key_columns: &keys, ..DetectContext::bare(&t) };
        let m = KeyCollision.detect(&ctx);
        // Both appended rows flagged entirely.
        assert_eq!(m.dirty_rows(), vec![40, 41]);
        assert_eq!(m.count(), 4);
    }

    #[test]
    fn key_collision_without_keys_is_silent() {
        let t = table_with_duplicates();
        assert!(KeyCollision.detect(&DetectContext::bare(&t)).is_empty());
    }

    #[test]
    fn zeroer_finds_duplicates_without_labels() {
        let t = table_with_duplicates();
        let keys = [0usize];
        let ctx = DetectContext { key_columns: &keys, ..DetectContext::bare(&t) };
        let m = ZeroEr::default().detect(&ctx);
        let rows = m.dirty_rows();
        assert!(rows.contains(&40), "exact duplicate found");
        assert!(rows.contains(&41), "fuzzy duplicate found");
        assert!(rows.len() <= 4, "few false positive rows: {rows:?}");
    }

    #[test]
    fn similarity_features_behave() {
        assert_eq!(token_jaccard("a b", "a b"), 1.0);
        assert!(token_jaccard("a b", "a c") < 1.0);
        assert!(trigram_sim("hello world", "hello w0rld") > 0.4);
        assert!(trigram_sim("hello", "zzzzz") < 0.1);
    }

    #[test]
    fn clean_table_produces_no_matches() {
        let schema = Schema::new(vec![ColumnMeta::new("t", ColumnType::Str)]);
        let t = Table::from_rows(
            schema,
            (0..30).map(|i| vec![Value::str(format!("completely different {i} entry"))]).collect(),
        );
        let keys = [0usize];
        let ctx = DetectContext { key_columns: &keys, ..DetectContext::bare(&t) };
        assert!(ZeroEr::default().detect(&ctx).is_empty());
        assert!(KeyCollision.detect(&ctx).is_empty());
    }
}
