//! Ridge regression and the ridge classifier (closed-form solves).

use crate::linalg::{solve_spd, Matrix};
use crate::model::{Classifier, Regressor};

/// Fits ridge weights for design `x` (bias handled by augmentation):
/// `w = (XᵀX + αI)⁻¹ Xᵀ y`, bias unregularised via mean-centering.
fn ridge_fit(x: &Matrix, y: &[f64], alpha: f64) -> (Vec<f64>, f64) {
    let d = x.cols();
    let n = x.rows();
    if n == 0 || d == 0 {
        let mean = if y.is_empty() { 0.0 } else { y.iter().sum::<f64>() / y.len() as f64 };
        return (vec![0.0; d], mean);
    }
    // Centre X and y so the intercept is not penalised.
    let mut x_mean = vec![0.0; d];
    for r in 0..n {
        for (m, &v) in x_mean.iter_mut().zip(x.row(r)) {
            *m += v;
        }
    }
    for m in &mut x_mean {
        *m /= n as f64;
    }
    let y_mean = y.iter().sum::<f64>() / n as f64;

    let mut xc = Matrix::zeros(n, d);
    for r in 0..n {
        for c in 0..d {
            xc[(r, c)] = x[(r, c)] - x_mean[c];
        }
    }
    let yc: Vec<f64> = y.iter().map(|v| v - y_mean).collect();

    let mut gram = xc.gram();
    for i in 0..d {
        gram[(i, i)] += alpha;
    }
    let rhs = xc.t_vec(&yc);
    let w = solve_spd(&gram, &rhs).unwrap_or_else(|| vec![0.0; d]);
    let bias = y_mean - w.iter().zip(&x_mean).map(|(a, b)| a * b).sum::<f64>();
    (w, bias)
}

/// Ridge regressor.
#[derive(Debug, Clone)]
pub struct RidgeRegressor {
    /// L2 penalty.
    pub alpha: f64,
    weights: Vec<f64>,
    bias: f64,
}

impl RidgeRegressor {
    /// Builds a ridge regressor with penalty `alpha`.
    pub fn new(alpha: f64) -> Self {
        Self { alpha, weights: Vec::new(), bias: 0.0 }
    }

    /// Fitted coefficient vector (empty before `fit`).
    pub fn coefficients(&self) -> &[f64] {
        &self.weights
    }

    /// Fitted intercept.
    pub fn intercept(&self) -> f64 {
        self.bias
    }
}

impl Regressor for RidgeRegressor {
    fn fit(&mut self, x: &Matrix, y: &[f64]) {
        let (w, b) = ridge_fit(x, y, self.alpha);
        self.weights = w;
        self.bias = b;
    }

    fn predict(&self, x: &Matrix) -> Vec<f64> {
        (0..x.rows()).map(|r| self.bias + crate::linalg::dot(x.row(r), &self.weights)).collect()
    }
}

/// Ridge classifier: one ridge regression per class on ±1 targets,
/// predicting the argmax score (scikit-learn's `RidgeClassifier`).
#[derive(Debug, Clone)]
pub struct RidgeClassifier {
    /// L2 penalty.
    pub alpha: f64,
    per_class: Vec<(Vec<f64>, f64)>,
}

impl RidgeClassifier {
    /// Builds a ridge classifier with penalty `alpha`.
    pub fn new(alpha: f64) -> Self {
        Self { alpha, per_class: Vec::new() }
    }
}

impl Classifier for RidgeClassifier {
    fn fit(&mut self, x: &Matrix, y: &[usize], n_classes: usize) {
        self.per_class = (0..n_classes)
            .map(|c| {
                let targets: Vec<f64> =
                    y.iter().map(|&yc| if yc == c { 1.0 } else { -1.0 }).collect();
                ridge_fit(x, &targets, self.alpha)
            })
            .collect();
    }

    fn predict(&self, x: &Matrix) -> Vec<usize> {
        (0..x.rows())
            .map(|r| {
                let xr = x.row(r);
                self.per_class
                    .iter()
                    .enumerate()
                    .map(|(c, (w, b))| (c, b + crate::linalg::dot(xr, w)))
                    .max_by(|a, b| a.1.total_cmp(&b.1))
                    .map_or(0, |(c, _)| c)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{
        blob_classification, linear_regression_data, train_test_accuracy, train_test_rmse,
    };

    #[test]
    fn ridge_recovers_linear_coefficients() {
        let (x, y) = linear_regression_data(200, 0.01, 1);
        let mut m = RidgeRegressor::new(1e-6);
        m.fit(&x, &y);
        assert!((m.coefficients()[0] - 3.0).abs() < 0.05);
        assert!((m.coefficients()[1] + 2.0).abs() < 0.05);
        assert!((m.intercept() - 1.0).abs() < 0.05);
    }

    #[test]
    fn ridge_generalises() {
        let (x, y) = linear_regression_data(200, 0.5, 2);
        let mut m = RidgeRegressor::new(1.0);
        let err = train_test_rmse(&mut m, &x, &y);
        assert!(err < 1.0, "rmse {err}");
    }

    #[test]
    fn larger_alpha_shrinks_weights() {
        let (x, y) = linear_regression_data(100, 0.1, 3);
        let mut small = RidgeRegressor::new(1e-6);
        let mut large = RidgeRegressor::new(1e4);
        small.fit(&x, &y);
        large.fit(&x, &y);
        let norm = |w: &[f64]| w.iter().map(|v| v * v).sum::<f64>();
        assert!(norm(large.coefficients()) < norm(small.coefficients()));
    }

    #[test]
    fn classifier_separates_blobs() {
        let (x, y) = blob_classification(120, 3, 5);
        let mut m = RidgeClassifier::new(1.0);
        let acc = train_test_accuracy(&mut m, &x, &y, 3);
        assert!(acc > 0.9, "accuracy {acc}");
    }

    #[test]
    fn empty_input_is_safe() {
        let mut m = RidgeRegressor::new(1.0);
        m.fit(&Matrix::zeros(0, 3), &[]);
        assert_eq!(m.predict(&Matrix::zeros(2, 3)), vec![0.0, 0.0]);
    }

    #[test]
    fn constant_target_predicts_constant() {
        let x = Matrix::from_rows(&[vec![1.0], vec![2.0], vec![3.0]]);
        let mut m = RidgeRegressor::new(1.0);
        m.fit(&x, &[5.0, 5.0, 5.0]);
        let p = m.predict(&x);
        for v in p {
            assert!((v - 5.0).abs() < 1e-6);
        }
    }
}
