//! RAHA (Mahdavi et al.): configuration-free detection. A large ensemble
//! of cheap *strategies* (outlier rules at several tightnesses, pattern
//! checks, null checks, rare-value checks, rule checks) produces a feature
//! vector per cell; cells of each column are clustered by feature
//! similarity, a few labels are acquired per cluster from the oracle, and
//! the labels propagate cluster-wide.

use rand::prelude::*;
use rand::rngs::StdRng;
use rein_constraints::fd;
use rein_constraints::pattern;
use rein_data::{CellMask, CellRef, Table};
use rein_stats::descriptive;

use crate::context::{DetectContext, Detector};

/// RAHA detector.
#[derive(Debug, Clone)]
pub struct Raha {
    /// Label budget per column (clusters per column).
    pub labels_per_column: usize,
}

impl Default for Raha {
    fn default() -> Self {
        Self { labels_per_column: 6 }
    }
}

/// Strategy verdict bitstrings for one column: `verdicts[cell_row]` is the
/// per-strategy flag vector packed into a u64.
fn column_strategy_verdicts(t: &Table, col: usize, fds: &[fd::FunctionalDependency]) -> Vec<u64> {
    let n = t.n_rows();
    let mut verdicts = vec![0u64; n];
    let mut strategy = 0u32;
    let mark = |verdicts: &mut Vec<u64>, rows: &[usize], strategy: u32| {
        for &r in rows {
            verdicts[r] |= 1 << strategy;
        }
    };

    // Null / empty checks.
    let null_rows: Vec<usize> = (0..n).filter(|&r| t.cell(r, col).is_null()).collect();
    mark(&mut verdicts, &null_rows, strategy);
    strategy += 1;

    // Outlier strategies at several tightnesses (SD and IQR).
    let xs = t.numeric_values(col);
    if xs.len() >= 8 {
        let mean = descriptive::mean(&xs);
        let std = descriptive::std_dev(&xs).max(1e-12);
        for n_std in [2.0, 3.0, 4.5] {
            let rows: Vec<usize> = (0..n)
                .filter(|&r| {
                    t.cell(r, col).as_f64().is_some_and(|x| (x - mean).abs() > n_std * std)
                })
                .collect();
            mark(&mut verdicts, &rows, strategy);
            strategy += 1;
        }
        let q1 = descriptive::quantile(&xs, 0.25);
        let q3 = descriptive::quantile(&xs, 0.75);
        let iqr = (q3 - q1).max(1e-12);
        for k in [1.5, 3.0] {
            let rows: Vec<usize> = (0..n)
                .filter(|&r| {
                    t.cell(r, col).as_f64().is_some_and(|x| x < q1 - k * iqr || x > q3 + k * iqr)
                })
                .collect();
            mark(&mut verdicts, &rows, strategy);
            strategy += 1;
        }
        // Non-numeric cell in a numeric column.
        let rows: Vec<usize> = (0..n)
            .filter(|&r| !t.cell(r, col).is_null() && t.cell(r, col).as_f64().is_none())
            .collect();
        mark(&mut verdicts, &rows, strategy);
        strategy += 1;
    }

    // Pattern strategies at two supports.
    for support in [0.7, 0.9] {
        let rows = pattern::pattern_outliers(t, col, support);
        mark(&mut verdicts, &rows, strategy);
        strategy += 1;
    }

    // Rare-value strategies.
    let counts = t.value_counts(col);
    let total: usize = counts.iter().map(|(_, c)| c).sum();
    for share in [0.002, 0.01] {
        let rare: std::collections::BTreeSet<String> = counts
            .iter()
            .filter(|(_, c)| (*c as f64) < total.max(1) as f64 * share)
            .map(|(v, _)| v.as_key().into_owned())
            .collect();
        if !rare.is_empty() {
            let rows: Vec<usize> = (0..n)
                .filter(|&r| {
                    let v = t.cell(r, col);
                    !v.is_null() && rare.contains(v.as_key().as_ref())
                })
                .collect();
            mark(&mut verdicts, &rows, strategy);
        }
        strategy += 1;
    }

    // FD strategies touching this column.
    for f in fds {
        if f.rhs == col || f.lhs.contains(&col) {
            let viol = fd::fd_violations(t, f);
            let rows: Vec<usize> = (0..n)
                .filter(|&r| {
                    viol.get(r, col.min(viol.cols() - 1)) && viol.get(r, f.rhs) || viol.get(r, col)
                })
                .collect();
            mark(&mut verdicts, &rows, strategy);
        }
        strategy += 1;
        if strategy >= 63 {
            break;
        }
    }
    verdicts
}

impl Detector for Raha {
    fn name(&self) -> &'static str {
        "raha"
    }

    fn detect(&self, ctx: &DetectContext<'_>) -> CellMask {
        let _span = rein_telemetry::span("detect:raha");
        let t = ctx.dirty;
        let mut mask = CellMask::new(t.n_rows(), t.n_cols());
        let Some(oracle) = ctx.oracle else { return mask };
        let mut rng = StdRng::seed_from_u64(ctx.seed);

        for col in 0..t.n_cols() {
            rein_guard::checkpoint(t.n_rows() as u64);
            let verdicts = column_strategy_verdicts(t, col, ctx.fds);
            // Group cells by identical strategy signatures.
            let mut groups: std::collections::BTreeMap<u64, Vec<usize>> = Default::default();
            for (r, &v) in verdicts.iter().enumerate() {
                groups.entry(v).or_default().push(r);
            }
            let mut groups: Vec<(u64, Vec<usize>)> = groups.into_iter().collect();
            // Largest groups first get their own label; small leftover
            // groups inherit from the nearest labelled signature.
            groups.sort_by(|a, b| b.1.len().cmp(&a.1.len()).then(a.0.cmp(&b.0)));
            let budget = self.labels_per_column.max(2);
            let mut labelled: Vec<(u64, bool)> = Vec::new();
            for (sig, rows) in groups.iter().take(budget) {
                // audit:allow(panic, signature groups are built from at least one row each)
                let &probe = rows.choose(&mut rng).expect("non-empty group");
                let dirty = oracle.is_dirty(CellRef::new(probe, col));
                labelled.push((*sig, dirty));
                if dirty {
                    for &r in rows {
                        mask.set(r, col, true);
                    }
                }
            }
            for (sig, rows) in groups.iter().skip(budget) {
                // Propagate from nearest labelled signature (Hamming).
                let nearest = labelled
                    .iter()
                    .min_by_key(|(ls, _)| (ls ^ sig).count_ones())
                    .map(|&(_, dirty)| dirty)
                    .unwrap_or(false);
                if nearest {
                    for &r in rows {
                        mask.set(r, col, true);
                    }
                }
            }
        }
        mask
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::Oracle;
    use rein_data::diff::diff_mask;
    use rein_data::{ColumnMeta, ColumnType, Schema, Value};
    use rein_stats::evaluate_detection;

    fn dataset() -> (Table, Table) {
        let schema = Schema::new(vec![
            ColumnMeta::new("x", ColumnType::Float),
            ColumnMeta::new("c", ColumnType::Str),
        ]);
        let clean = Table::from_rows(
            schema,
            (0..300)
                .map(|i| {
                    vec![Value::Float(10.0 + (i % 8) as f64), Value::str(["red", "blue"][i % 2])]
                })
                .collect(),
        );
        let mut dirty = clean.clone();
        for i in 0..15 {
            dirty.set_cell(i * 19, 0, Value::Float(900.0 + i as f64));
        }
        for i in 0..10 {
            dirty.set_cell(i * 29 + 2, 1, Value::str("r3d"));
        }
        (clean, dirty)
    }

    #[test]
    fn raha_detects_with_few_labels() {
        let (clean, dirty) = dataset();
        let actual = diff_mask(&clean, &dirty);
        let oracle = Oracle::new(actual.clone());
        let ctx = DetectContext { oracle: Some(&oracle), seed: 3, ..DetectContext::bare(&dirty) };
        let m = Raha::default().detect(&ctx);
        let q = evaluate_detection(&m, &actual);
        assert!(q.f1 > 0.8, "f1 {}", q.f1);
        // Label budget: at most labels_per_column × columns oracle queries.
        assert!(oracle.queries_used() <= 6 * 2);
    }

    #[test]
    fn without_oracle_raha_is_silent() {
        let (_, dirty) = dataset();
        assert!(Raha::default().detect(&DetectContext::bare(&dirty)).is_empty());
    }

    #[test]
    fn strategy_signatures_separate_clean_from_dirty() {
        let (_, dirty) = dataset();
        let verdicts = column_strategy_verdicts(&dirty, 0, &[]);
        // The planted outlier rows (0, 19, …) must have different
        // signatures from a typical clean row.
        assert_ne!(verdicts[1], verdicts[19]);
    }

    #[test]
    fn deterministic_per_seed() {
        let (clean, dirty) = dataset();
        let actual = diff_mask(&clean, &dirty);
        let run = || {
            let oracle = Oracle::new(actual.clone());
            let ctx =
                DetectContext { oracle: Some(&oracle), seed: 9, ..DetectContext::bare(&dirty) };
            Raha::default().detect(&ctx)
        };
        assert_eq!(run(), run());
    }
}
