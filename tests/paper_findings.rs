//! Integration tests asserting the *qualitative findings* of the paper's
//! §6.5 — the shapes the reproduction must preserve, independent of
//! absolute numbers.

use rein::core::{eval_classifier, eval_regressor, DetectorHarness, Scenario, VersionTable};
use rein::datasets::{DatasetId, Params};
use rein::detect::DetectorKind;
use rein::ml::model::{ClassifierKind, RegressorKind};
use rein::stats::mean;

#[test]
fn ensemble_detectors_beat_single_purpose_detectors_on_mixed_errors() {
    // Beers has MVs + rule violations + typos: no single-purpose detector
    // can cover them all, the ensembles can (paper: Figure 2a).
    let ds = DatasetId::Beers.generate(&Params::scaled(0.15, 21));
    let h = DetectorHarness::new(&ds, 100, 1);
    let min_k = h.run(&ds, DetectorKind::MinK).quality.f1;
    let raha = h.run(&ds, DetectorKind::Raha).quality.f1;
    let mvd = h.run(&ds, DetectorKind::MvDetector).quality.f1;
    let katara = h.run(&ds, DetectorKind::Katara).quality.f1;
    assert!(min_k > mvd, "min_k {min_k} vs mvd {mvd}");
    assert!(raha > katara, "raha {raha} vs katara {katara}");
    assert!(raha > 0.6, "raha f1 {raha}");
}

#[test]
fn ml_detectors_cost_more_runtime_than_simple_ones() {
    // Paper: Figure 2c — ML-based methods require long execution times.
    let ds = DatasetId::SmartFactory.generate(&Params::scaled(0.05, 22));
    let h = DetectorHarness::new(&ds, 100, 1);
    let sd = h.run(&ds, DetectorKind::Sd).runtime;
    let ed2 = h.run(&ds, DetectorKind::Ed2).runtime;
    assert!(ed2 > sd, "ED2 ({ed2:?}) must cost more than the SD rule ({sd:?})");
}

#[test]
fn classifiers_are_more_robust_to_attribute_errors_than_regressors() {
    // Paper §6.5: S1-vs-S4 gaps are small for classifiers, large for
    // regressors — cleaning matters more for regression.
    let cls = DatasetId::SmartFactory.generate(&Params::scaled(0.02, 23));
    let version = VersionTable::identity(cls.dirty.clone());
    let s1 =
        mean(&eval_classifier(Scenario::S1, &cls, &version, ClassifierKind::RandomForest, 3, 1));
    let s4 =
        mean(&eval_classifier(Scenario::S4, &cls, &version, ClassifierKind::RandomForest, 3, 1));
    let cls_gap = (s4 - s1).max(0.0) / s4.max(1e-9);

    let reg = DatasetId::Nasa.generate(&Params::scaled(0.3, 24));
    let version = VersionTable::identity(reg.dirty.clone());
    let r1 =
        mean(&eval_regressor(Scenario::S1, &reg, &version, RegressorKind::LinearRegression, 3, 1));
    let r4 =
        mean(&eval_regressor(Scenario::S4, &reg, &version, RegressorKind::LinearRegression, 3, 1));
    let reg_gap = (r1 - r4).max(0.0) / r4.max(1e-9); // RMSE: higher is worse

    assert!(
        reg_gap > cls_gap,
        "regression degradation ({reg_gap:.3}) should exceed classification ({cls_gap:.3})"
    );
}

#[test]
fn models_trained_dirty_but_served_clean_perform_well() {
    // Paper Figures 7n/7o: S2 (train dirty, test clean) beats S3
    // (train clean, test dirty) for regression models.
    let ds = DatasetId::Nasa.generate(&Params::scaled(0.4, 25));
    let version = VersionTable::identity(ds.dirty.clone());
    for model in [RegressorKind::Ransac, RegressorKind::BayesRidge] {
        let s2 = mean(&eval_regressor(Scenario::S2, &ds, &version, model, 4, 3));
        let s3 = mean(&eval_regressor(Scenario::S3, &ds, &version, model, 4, 3));
        assert!(s2 < s3, "{}: S2 RMSE ({s2:.3}) should beat S3 ({s3:.3})", model.name());
    }
}

#[test]
fn detection_false_negatives_hurt_more_than_false_positives_under_gt_repair() {
    // Paper §6.5: with a highly effective repairer (GT), false negatives
    // cap repair recall while false positives are harmless.
    use rein::core::run_repair;
    use rein::repair::RepairKind;
    let ds = DatasetId::Beers.generate(&Params::scaled(0.15, 26));

    // Low-recall detection: only half the true errors.
    let mut low_recall = rein::data::CellMask::new(ds.dirty.n_rows(), ds.dirty.n_cols());
    for (i, cell) in ds.mask.iter().enumerate() {
        if i % 2 == 0 {
            low_recall.set(cell.row, cell.col, true);
        }
    }
    // Low-precision detection: all true errors plus as many false alarms.
    let mut low_precision = ds.mask.clone();
    let mut added = 0usize;
    'outer: for r in 0..ds.dirty.n_rows() {
        for c in 0..ds.dirty.n_cols() {
            if !ds.mask.get(r, c) {
                low_precision.set(r, c, true);
                added += 1;
                if added >= ds.mask.count() {
                    break 'outer;
                }
            }
        }
    }

    let remaining = |mask: &rein::data::CellMask| {
        let run = run_repair(&ds, mask, RepairKind::GroundTruth, 1);
        let table = run.version.unwrap().table;
        rein::data::diff::diff_mask(&ds.clean, &table).count()
    };
    let after_low_recall = remaining(&low_recall);
    let after_low_precision = remaining(&low_precision);
    assert!(
        after_low_precision < after_low_recall,
        "under GT repair, low precision ({after_low_precision} left) must beat \
         low recall ({after_low_recall} left)"
    );
    assert_eq!(after_low_precision, 0, "perfect recall + GT repair fixes everything");
}
