#!/usr/bin/env bash
# Local mirror of .github/workflows/ci.yml — run before pushing.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q"
cargo test -q

echo "==> cargo run -p rein-audit (determinism & integrity audit, semantic rules + SARIF)"
cargo run -q -p rein-audit -- --quiet --sarif artifacts/audit/report.sarif

echo "==> perf smoke (comparator self-test + small-scale suite vs committed baseline, report-only)"
cargo run -q --release -p rein-bench --bin bench_compare -- --self-test
REIN_SCALE=0.01 cargo run -q --release -p rein-bench --bin perf_baseline -- \
  --out artifacts/perf/BENCH_ci.json
# Report-only: shared CI runners are too noisy to gate merges on wall
# clock, and the committed baseline was recorded on different hardware
# at a different scale. The table in the log is the signal.
cargo run -q --release -p rein-bench --bin bench_compare -- \
  BENCH_0.json artifacts/perf/BENCH_ci.json --report-only

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo clippy --all-targets -- -D warnings"
cargo clippy --all-targets -- -D warnings

echo "CI checks passed."
