//! Negative fixture: a float sum directly off a parallel iterator —
//! accumulation order follows the scheduler, not the data.

pub fn mean(xs: &[f64]) -> f64 {
    let total = xs.par_iter().map(|x| x * 0.5).sum::<f64>();
    total / xs.len() as f64
}
