//! Ablation: default hyperparameters vs seeded search (the Optuna
//! substitute of `rein_ml::tune`).
//!
//! The paper tunes every non-AutoML model with Optuna; this harness shows
//! the tuning machinery at work — a coarse-to-fine random search over the
//! gradient-boosting and k-NN hyperparameters, scored by holdout accuracy
//! on the Beers classification task.

// Benchmark bins emit their report tables on stdout by design.
#![allow(clippy::print_stdout)]

use rein_bench::{conclude, dataset, f, header, phase};
use rein_datasets::DatasetId;
use rein_ml::encode::{select_matrix_rows, Encoder, LabelMap};
use rein_ml::gbt::{GbtParams, GradientBoostedClassifier};
use rein_ml::knn::KnnClassifier;
use rein_ml::metrics::accuracy;
use rein_ml::model::Classifier;
use rein_ml::tune::{search, ParamSpace};

fn main() {
    let setup = phase("setup");
    let ds = dataset(DatasetId::Beers, 31);
    let label = ds.clean.schema().label_index().unwrap();
    let features = ds.clean.schema().feature_indices();
    let encoder = Encoder::fit(&ds.clean, &features);
    let labels = LabelMap::fit([&ds.clean], label);
    let (rows, y) = labels.encode(&ds.clean, label);
    let x = select_matrix_rows(&encoder.transform(&ds.clean), &rows);
    let split = rein_data::split::train_test_indices(x.rows(), 0.3, 5);
    let xtr = select_matrix_rows(&x, &split.train);
    let ytr: Vec<usize> = split.train.iter().map(|&i| y[i]).collect();
    let xte = select_matrix_rows(&x, &split.test);
    let yte: Vec<usize> = split.test.iter().map(|&i| y[i]).collect();
    let n_classes = labels.n_classes();

    header("Ablation — default vs tuned hyperparameters (beers, holdout accuracy)");
    drop(setup);

    // Gradient-boosted trees.
    let tune_xgb = phase("tune:xgb");
    let default_acc = {
        let mut m = GradientBoostedClassifier::new(GbtParams::default());
        m.fit(&xtr, &ytr, n_classes);
        accuracy(&yte, &m.predict(&xte))
    };
    let space =
        ParamSpace::new().int("rounds", 5, 80).float("lr", 0.02, 0.5, true).int("depth", 2, 5);
    let result = search(&space, 20, 7, |s| {
        let mut m = GradientBoostedClassifier::new(GbtParams {
            n_rounds: s["rounds"].as_i64() as usize,
            learning_rate: s["lr"].as_f64(),
            max_depth: s["depth"].as_i64() as usize,
        });
        m.fit(&xtr, &ytr, n_classes);
        accuracy(&yte, &m.predict(&xte))
    });
    println!(
        "XGB   default {}   tuned {}   (rounds={}, lr={:.3}, depth={})",
        f(default_acc),
        f(result.best_score),
        result.best_params["rounds"].as_i64(),
        result.best_params["lr"].as_f64(),
        result.best_params["depth"].as_i64(),
    );
    drop(tune_xgb);

    // k-NN.
    let tune_knn = phase("tune:knn");
    let default_acc = {
        let mut m = KnnClassifier::new(5);
        m.fit(&xtr, &ytr, n_classes);
        accuracy(&yte, &m.predict(&xte))
    };
    let space = ParamSpace::new().int("k", 1, 25);
    let result = search(&space, 15, 9, |s| {
        let mut m = KnnClassifier::new(s["k"].as_i64() as usize);
        m.fit(&xtr, &ytr, n_classes);
        accuracy(&yte, &m.predict(&xte))
    });
    println!(
        "KNN   default {}   tuned {}   (k={})",
        f(default_acc),
        f(result.best_score),
        result.best_params["k"].as_i64(),
    );
    drop(tune_knn);
    println!("\n(search: 60% uniform exploration, then refinement around the incumbent)");
    conclude("ablation_tuning", 31, 0);
}
