//! Concurrency fixture (negative): interior mutability in a file
//! hosting a parallel region — `par-shared-mutable` must fire on the
//! `static mut` and on the `RefCell` field, but not on the `use` line.

use std::cell::RefCell;

static mut HITS: usize = 0;

pub struct Tally {
    slots: RefCell<Vec<usize>>,
}

pub fn tally(xs: &[usize]) -> Vec<usize> {
    xs.par_iter().map(|x| bump(*x)).collect()
}

fn bump(x: usize) -> usize {
    x + 1
}
