//! The ledger index: `artifacts/ledger/index.json`.
//!
//! One deterministic, byte-stable record of every artifact the
//! benchmark has produced, keyed by content hash of the run identity
//! (see [`crate::hash`]). Ingesting the same artifacts twice is a
//! no-op: entries already present by key are skipped, the generation
//! counter only advances when something actually changed, and the
//! serialized index is byte-identical.

use std::collections::BTreeMap;
use std::io;
use std::path::{Path, PathBuf};

use serde::{Deserialize, Serialize};

/// Schema version stamped into the index.
pub const INDEX_SCHEMA: u32 = 1;

/// Directory ledger artifacts live in, relative to the repo root.
pub fn ledger_dir(root: &Path) -> PathBuf {
    root.join("artifacts").join("ledger")
}

/// The index file path under `root`.
pub fn index_path(root: &Path) -> PathBuf {
    ledger_dir(root).join("index.json")
}

/// Guard-failure taxonomy counts, classified from rendered causes:
/// `panic:` → panics, `budget exhausted` → deadlines, `transient
/// failure persisted` → retries, `invalid output` → corrupt.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FailureTaxonomy {
    /// Strategy panicked (caught and recorded by rein-guard).
    pub panics: u64,
    /// Cooperative deadline budget exhausted.
    pub deadlines: u64,
    /// Transient failure persisted through the retry allowance.
    pub retries: u64,
    /// Output failed validation (corrupt / invalid shape).
    pub corrupt: u64,
}

impl FailureTaxonomy {
    /// Classifies one rendered failure cause into the taxonomy.
    pub fn count(&mut self, cause: &str) {
        if cause.starts_with("panic:") {
            self.panics += 1;
        } else if cause.starts_with("budget exhausted") {
            self.deadlines += 1;
        } else if cause.starts_with("transient failure persisted") {
            self.retries += 1;
        } else {
            // `invalid output:` plus anything a future guard adds —
            // an unknown cause is still a corrupt result, never silent.
            self.corrupt += 1;
        }
    }

    /// Total failures across the taxonomy.
    pub fn total(&self) -> u64 {
        self.panics + self.deadlines + self.retries + self.corrupt
    }

    /// Component-wise sum.
    pub fn add(&mut self, other: &FailureTaxonomy) {
        self.panics += other.panics;
        self.deadlines += other.deadlines;
        self.retries += other.retries;
        self.corrupt += other.corrupt;
    }
}

/// Deterministic per-artifact aggregates, flat across entry kinds
/// (fields that do not apply to a kind stay zero).
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct EntrySummary {
    /// Spans recorded (full count — from the rollup in summary mode).
    pub spans: u64,
    /// Distinct span names.
    pub span_names: u64,
    /// Guard-failure taxonomy of the run.
    pub failures: FailureTaxonomy,
    /// `cells_scanned` counter, when present.
    pub cells_scanned: u64,
    /// Macro-benchmarks in a `BENCH_*.json` report.
    pub benchmarks: u64,
    /// Violations in an audit report.
    pub violations: u64,
}

/// One ledger entry: a content-addressed pointer to an ingested
/// artifact plus its deterministic aggregates.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LedgerEntry {
    /// Content key: FNV-1a 64 of the run identity, 16 hex digits.
    pub key: String,
    /// Artifact class: `run_manifest`, `bench_report`, `audit_report`
    /// or `trace_export`.
    pub kind: String,
    /// Repo-relative source path, forward slashes.
    pub source: String,
    /// Producing binary (`binary` / `created_by` / `tool`).
    pub bin: String,
    /// Run seed (0 for artifacts without one, e.g. audit reports).
    pub seed: u64,
    /// Dataset scale factor (0 when not applicable).
    pub scale: f64,
    /// Worker threads echoed by the artifact (0 = unrecorded).
    pub threads: u32,
    /// Manifest mode (`full`, `summary`, or empty for non-manifests).
    pub mode: String,
    /// Sorted strategy set the run exercised (`phase:strategy` names).
    pub strategies: Vec<String>,
    /// Ledger generation that first saw this key.
    pub generation: u32,
    /// Deterministic aggregates.
    pub summary: EntrySummary,
    /// Per-benchmark median milliseconds (bench reports only) — the
    /// raw material of the cross-generation trend series.
    pub bench_medians: BTreeMap<String, f64>,
}

/// The whole index.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LedgerIndex {
    /// [`INDEX_SCHEMA`].
    pub schema: u32,
    /// Highest generation any entry carries; bumped only when an ingest
    /// pass actually adds or replaces entries.
    pub generation: u32,
    /// Entries sorted by (kind, source, key) — the byte-stable order.
    pub entries: Vec<LedgerEntry>,
}

impl Default for LedgerIndex {
    fn default() -> Self {
        LedgerIndex { schema: INDEX_SCHEMA, generation: 0, entries: Vec::new() }
    }
}

/// Outcome of ingesting one artifact into the index.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IngestOutcome {
    /// The key was new: the entry was added.
    Added,
    /// An entry for the same (kind, source) existed under a different
    /// key — the artifact changed identity and the entry was replaced.
    Replaced,
    /// The key was already present: nothing changed.
    AlreadyKnown,
}

impl LedgerIndex {
    /// Loads the index from `path`; a missing file is an empty index.
    pub fn load(path: &Path) -> Result<LedgerIndex, String> {
        match std::fs::read_to_string(path) {
            Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(LedgerIndex::default()),
            Err(e) => Err(format!("read {}: {e}", path.display())),
            Ok(text) => {
                serde_json::from_str(&text).map_err(|e| format!("parse {}: {e}", path.display()))
            }
        }
    }

    /// Serializes to pretty JSON with a trailing newline — the on-disk
    /// format. Entries are kept sorted by [`LedgerIndex::normalize`],
    /// so the bytes depend only on the content.
    pub fn to_json(&self) -> String {
        let mut text = serde_json::to_string_pretty(self).unwrap_or_else(|e|
            // audit:allow(panic, serializing plain owned data cannot fail)
            panic!("index serializes: {e}"));
        text.push('\n');
        text
    }

    /// Writes the index to `path`, creating parent directories.
    pub fn save(&self, path: &Path) -> io::Result<()> {
        if let Some(dir) = path.parent() {
            std::fs::create_dir_all(dir)?;
        }
        std::fs::write(path, self.to_json())
    }

    /// Restores the canonical entry order.
    pub fn normalize(&mut self) {
        self.entries
            .sort_by(|a, b| (&a.kind, &a.source, &a.key).cmp(&(&b.kind, &b.source, &b.key)));
    }

    /// Whether `key` is already present.
    pub fn contains(&self, key: &str) -> bool {
        self.entries.iter().any(|e| e.key == key)
    }

    /// Ingests one entry (its `generation` field is overwritten):
    /// same-key entries are no-ops, a (kind, source) match under a
    /// different key is replaced, everything else is added. The caller
    /// stamps the generation via [`LedgerIndex::apply`].
    fn ingest_at(&mut self, mut entry: LedgerEntry, generation: u32) -> IngestOutcome {
        if self.contains(&entry.key) {
            return IngestOutcome::AlreadyKnown;
        }
        entry.generation = generation;
        let existing =
            self.entries.iter().position(|e| e.kind == entry.kind && e.source == entry.source);
        match existing {
            Some(i) => {
                self.entries[i] = entry;
                IngestOutcome::Replaced
            }
            None => {
                self.entries.push(entry);
                IngestOutcome::Added
            }
        }
    }

    /// Applies a batch of candidate entries as one ingest pass: if any
    /// of them is new, the generation advances once and all new entries
    /// are stamped with it. Returns `true` when the index changed.
    pub fn apply(&mut self, candidates: Vec<LedgerEntry>) -> bool {
        let any_new = candidates.iter().any(|c| !self.contains(&c.key));
        if !any_new {
            return false;
        }
        let generation = self.generation + 1;
        let mut changed = false;
        for c in candidates {
            if self.ingest_at(c, generation) != IngestOutcome::AlreadyKnown {
                changed = true;
            }
        }
        if changed {
            self.generation = generation;
            self.normalize();
        }
        changed
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(key: &str, source: &str) -> LedgerEntry {
        LedgerEntry {
            key: key.to_string(),
            kind: "run_manifest".to_string(),
            source: source.to_string(),
            bin: "fig2".to_string(),
            seed: 11,
            scale: 0.05,
            threads: 1,
            mode: "full".to_string(),
            strategies: vec!["detect:raha".to_string()],
            generation: 0,
            summary: EntrySummary::default(),
            bench_medians: BTreeMap::new(),
        }
    }

    #[test]
    fn double_apply_is_a_noop_byte_identically() {
        let mut index = LedgerIndex::default();
        assert!(index.apply(vec![entry("aa", "artifacts/telemetry/fig2-11.json")]));
        assert_eq!(index.generation, 1);
        let bytes = index.to_json();
        assert!(!index.apply(vec![entry("aa", "artifacts/telemetry/fig2-11.json")]));
        assert_eq!(index.generation, 1, "no-op ingest must not advance the generation");
        assert_eq!(index.to_json(), bytes, "no-op ingest must not change a single byte");
    }

    #[test]
    fn changed_source_replaces_instead_of_duplicating() {
        let mut index = LedgerIndex::default();
        assert!(index.apply(vec![entry("aa", "artifacts/audit/report.json")]));
        assert!(index.apply(vec![entry("bb", "artifacts/audit/report.json")]));
        assert_eq!(index.entries.len(), 1, "same (kind, source) must replace, not accumulate");
        assert_eq!(index.entries[0].key, "bb");
        assert_eq!(index.entries[0].generation, 2);
    }

    #[test]
    fn generations_advance_once_per_changing_pass() {
        let mut index = LedgerIndex::default();
        assert!(index.apply(vec![entry("aa", "a.json"), entry("bb", "b.json")]));
        assert_eq!(index.generation, 1);
        assert_eq!(index.entries.iter().filter(|e| e.generation == 1).count(), 2);
        assert!(index.apply(vec![entry("aa", "a.json"), entry("cc", "c.json")]));
        assert_eq!(index.generation, 2);
        let gen_of = |key: &str| index.entries.iter().find(|e| e.key == key).map(|e| e.generation);
        assert_eq!(gen_of("aa"), Some(1), "existing entries keep their first generation");
        assert_eq!(gen_of("cc"), Some(2));
    }

    #[test]
    fn taxonomy_classifies_guard_causes() {
        let mut t = FailureTaxonomy::default();
        t.count("panic: chaos: injected panic for detect:raha");
        t.count("budget exhausted: 15 of 10 ticks");
        t.count("transient failure persisted: still down");
        t.count("invalid output: nonzero 7");
        t.count("something new");
        assert_eq!(t.panics, 1);
        assert_eq!(t.deadlines, 1);
        assert_eq!(t.retries, 1);
        assert_eq!(t.corrupt, 2);
        assert_eq!(t.total(), 5);
    }

    #[test]
    fn index_roundtrips_and_orders_deterministically() {
        let mut index = LedgerIndex::default();
        assert!(index.apply(vec![entry("zz", "z.json"), entry("aa", "a.json")]));
        let back: LedgerIndex = serde_json::from_str(&index.to_json()).expect("parses back");
        assert_eq!(back, index);
        let sources: Vec<&str> = index.entries.iter().map(|e| e.source.as_str()).collect();
        assert_eq!(sources, ["a.json", "z.json"], "entries sort by (kind, source, key)");
    }
}
