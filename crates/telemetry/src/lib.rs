//! Observability for the REIN benchmark pipeline.
//!
//! Four pieces, all backed by process-global state so instrumentation
//! never threads handles through APIs:
//!
//! * **Spans** ([`span`], [`span_under`]) — hierarchical wall-clock
//!   timers. Nesting is tracked per thread; a parent context can be
//!   captured with [`current`] and handed across a rayon fan-out so
//!   worker-thread spans attach to the right parent.
//! * **Traces** ([`span_traced`], [`instant`], [`trace`]) — causal
//!   per-cell trace trees. A cell root span carries a `trace_id`
//!   derived from its `CellKey` digest; descendants and instant events
//!   inherit it through the thread-local stack, and [`trace`]
//!   reconstructs the merged stream into per-cell trees with canonical
//!   Chrome trace-event / flamegraph SVG / cost-table exports.
//! * **Metrics** ([`counter`], [`histogram`]) — named monotonic
//!   counters and log-bucketed duration histograms with percentile
//!   summaries. Counter increments are single relaxed atomic adds and
//!   safe to call from parallel iterators.
//! * **Log emitter** ([`info!`], [`debug!`]) — stderr events gated by
//!   the `REIN_LOG` environment variable (`off`, `info`, `debug`).
//!   When a level is disabled the macro costs one atomic load; the
//!   message is never formatted.
//! * **Run manifests** ([`RunManifest`]) — a serializable snapshot of
//!   the run configuration, every finished span, and all metric values,
//!   written to `artifacts/telemetry/<binary>-<seed>.json` by each
//!   benchmark binary.
//! * **Performance primitives** ([`perf`]) — the single audit-sanctioned
//!   wall-clock source ([`perf::now`], [`perf::Stopwatch`]), an optional
//!   counting global allocator, and the span-tree profiler
//!   ([`perf::span_profile`]) behind the `BENCH_*.json` baselines.
//!
//! Typical binary skeleton:
//!
//! ```no_run
//! let _run = rein_telemetry::span("run");
//! {
//!     let _p = rein_telemetry::span("phase:setup");
//!     // ... load datasets ...
//! }
//! {
//!     let _p = rein_telemetry::span("phase:detect");
//!     rein_telemetry::counter("detector_invocations").incr();
//! }
//! drop(_run);
//! let config = rein_telemetry::RunConfig {
//!     scale: 0.05,
//!     repeats: 3,
//!     seed: 7,
//!     label_budget: 100,
//!     threads: 1,
//! };
//! let manifest = rein_telemetry::RunManifest::collect("fig2_detection", config);
//! manifest.write().expect("manifest written");
//! ```

mod failures;
mod log;
mod manifest;
mod metrics;
pub mod perf;
mod span;
pub mod trace;

pub use failures::{failures_snapshot, record_failure, FailureRecord};
pub use log::{emit, enabled, level, set_level, Level};
pub use manifest::{
    manifest_dir, manifest_mode, summarize_spans, ManifestMode, RunConfig, RunManifest, SpanRollup,
    SUMMARY_SPANS_PER_NAME,
};
pub use metrics::{
    counter, counters_snapshot, histogram, histograms_snapshot, Counter, Histogram,
    HistogramSummary,
};
pub use span::{
    current, current_trace, drain_spans, instant, snapshot_spans, span, span_shard_count,
    span_traced, span_under, Span, SpanCtx, SpanRecord, TraceContext,
};
pub use trace::{
    build_traces, cell_costs, chrome_trace_json, flamegraph_svg, CellCost, CellTrace, OrphanSpan,
    TraceForest, TraceNode,
};

/// Clears all recorded spans, metric values (counters reset to zero,
/// histograms emptied) and failure records. Intended for tests and for
/// binaries that run several independent experiments in one process.
pub fn reset() {
    span::reset_spans();
    metrics::reset_metrics();
    failures::reset_failures();
}
