//! Model-quality metrics: classification P/R/F1, regression RMSE/MAE/R²,
//! and the silhouette index used to score clusterings (§6.1).

use crate::linalg::{euclid, Matrix};
use crate::model::NOISE_LABEL;

/// Fraction of exact matches.
pub fn accuracy(truth: &[usize], pred: &[usize]) -> f64 {
    assert_eq!(truth.len(), pred.len());
    if truth.is_empty() {
        return 0.0;
    }
    truth.iter().zip(pred).filter(|(a, b)| a == b).count() as f64 / truth.len() as f64
}

/// Macro-averaged precision, recall and F1 over `n_classes` classes
/// (classes absent from the truth contribute zero, as scikit-learn does
/// with `zero_division=0`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ClassificationReport {
    /// Macro precision.
    pub precision: f64,
    /// Macro recall.
    pub recall: f64,
    /// Macro F1.
    pub f1: f64,
    /// Plain accuracy.
    pub accuracy: f64,
}

/// Computes the macro-averaged classification report.
pub fn classification_report(
    truth: &[usize],
    pred: &[usize],
    n_classes: usize,
) -> ClassificationReport {
    assert_eq!(truth.len(), pred.len());
    let mut tp = vec![0usize; n_classes];
    let mut fp = vec![0usize; n_classes];
    let mut fneg = vec![0usize; n_classes];
    for (&t, &p) in truth.iter().zip(pred) {
        if t == p {
            tp[t] += 1;
        } else {
            if p < n_classes {
                fp[p] += 1;
            }
            fneg[t] += 1;
        }
    }
    // Average over classes that appear in truth or predictions.
    let mut used = 0usize;
    let (mut sp, mut sr, mut sf) = (0.0, 0.0, 0.0);
    for c in 0..n_classes {
        if tp[c] + fp[c] + fneg[c] == 0 {
            continue;
        }
        used += 1;
        let p = if tp[c] + fp[c] == 0 { 0.0 } else { tp[c] as f64 / (tp[c] + fp[c]) as f64 };
        let r = if tp[c] + fneg[c] == 0 { 0.0 } else { tp[c] as f64 / (tp[c] + fneg[c]) as f64 };
        let f = if p + r == 0.0 { 0.0 } else { 2.0 * p * r / (p + r) };
        sp += p;
        sr += r;
        sf += f;
    }
    let denom = used.max(1) as f64;
    ClassificationReport {
        precision: sp / denom,
        recall: sr / denom,
        f1: sf / denom,
        accuracy: accuracy(truth, pred),
    }
}

/// Root mean squared error.
pub fn rmse(truth: &[f64], pred: &[f64]) -> f64 {
    assert_eq!(truth.len(), pred.len());
    if truth.is_empty() {
        return f64::NAN;
    }
    (truth.iter().zip(pred).map(|(t, p)| (t - p).powi(2)).sum::<f64>() / truth.len() as f64).sqrt()
}

/// Mean absolute error.
pub fn mae(truth: &[f64], pred: &[f64]) -> f64 {
    assert_eq!(truth.len(), pred.len());
    if truth.is_empty() {
        return f64::NAN;
    }
    truth.iter().zip(pred).map(|(t, p)| (t - p).abs()).sum::<f64>() / truth.len() as f64
}

/// Coefficient of determination R².
pub fn r2(truth: &[f64], pred: &[f64]) -> f64 {
    assert_eq!(truth.len(), pred.len());
    if truth.is_empty() {
        return f64::NAN;
    }
    let mean = truth.iter().sum::<f64>() / truth.len() as f64;
    let ss_tot: f64 = truth.iter().map(|t| (t - mean).powi(2)).sum();
    let ss_res: f64 = truth.iter().zip(pred).map(|(t, p)| (t - p).powi(2)).sum();
    if ss_tot == 0.0 {
        if ss_res == 0.0 {
            1.0
        } else {
            f64::NEG_INFINITY
        }
    } else {
        1.0 - ss_res / ss_tot
    }
}

/// Mean silhouette coefficient of a clustering.
///
/// Noise points ([`NOISE_LABEL`]) are excluded; returns `NaN` when fewer
/// than two clusters contain points. O(n²) distances — fine at benchmark
/// scale; subsample upstream for very large inputs.
pub fn silhouette(x: &Matrix, labels: &[usize]) -> f64 {
    assert_eq!(x.rows(), labels.len());
    let valid: Vec<usize> = (0..labels.len()).filter(|&i| labels[i] != NOISE_LABEL).collect();
    let mut clusters: std::collections::BTreeMap<usize, Vec<usize>> = Default::default();
    for &i in &valid {
        clusters.entry(labels[i]).or_default().push(i);
    }
    if clusters.len() < 2 {
        return f64::NAN;
    }
    let mut total = 0.0;
    let mut count = 0usize;
    for &i in &valid {
        let own = &clusters[&labels[i]];
        if own.len() <= 1 {
            // Singleton clusters get silhouette 0 by convention.
            count += 1;
            continue;
        }
        let a: f64 =
            own.iter().filter(|&&j| j != i).map(|&j| euclid(x.row(i), x.row(j))).sum::<f64>()
                / (own.len() - 1) as f64;
        let b = clusters
            .iter()
            .filter(|(&l, _)| l != labels[i])
            .map(|(_, members)| {
                members.iter().map(|&j| euclid(x.row(i), x.row(j))).sum::<f64>()
                    / members.len() as f64
            })
            .fold(f64::INFINITY, f64::min);
        let s = if a.max(b) > 0.0 { (b - a) / a.max(b) } else { 0.0 };
        total += s;
        count += 1;
    }
    if count == 0 {
        f64::NAN
    } else {
        total / count as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accuracy_basic() {
        assert_eq!(accuracy(&[0, 1, 2], &[0, 1, 1]), 2.0 / 3.0);
        assert_eq!(accuracy(&[], &[]), 0.0);
    }

    #[test]
    fn perfect_classification_report() {
        let r = classification_report(&[0, 1, 0, 1], &[0, 1, 0, 1], 2);
        assert_eq!(r.precision, 1.0);
        assert_eq!(r.recall, 1.0);
        assert_eq!(r.f1, 1.0);
        assert_eq!(r.accuracy, 1.0);
    }

    #[test]
    fn macro_average_weights_classes_equally() {
        // Class 0: 2/2 correct; class 1: 0/2 correct, all predicted as 0.
        let r = classification_report(&[0, 0, 1, 1], &[0, 0, 0, 0], 2);
        assert!((r.recall - 0.5).abs() < 1e-12); // (1.0 + 0.0)/2
        assert!(r.precision < 1.0);
    }

    #[test]
    fn absent_classes_do_not_dilute() {
        // 5 declared classes, only 2 present.
        let r = classification_report(&[0, 1], &[0, 1], 5);
        assert_eq!(r.f1, 1.0);
    }

    #[test]
    fn regression_metrics_known_values() {
        let t = [1.0, 2.0, 3.0];
        let p = [1.0, 2.0, 5.0];
        assert!((rmse(&t, &p) - (4.0f64 / 3.0).sqrt()).abs() < 1e-12);
        assert!((mae(&t, &p) - 2.0 / 3.0).abs() < 1e-12);
        assert!(r2(&t, &t) == 1.0);
        assert!(r2(&t, &p) < 1.0);
    }

    #[test]
    fn silhouette_separated_clusters_near_one() {
        let mut rows = Vec::new();
        let mut labels = Vec::new();
        for i in 0..10 {
            rows.push(vec![0.0 + 0.01 * i as f64, 0.0]);
            labels.push(0);
            rows.push(vec![100.0 + 0.01 * i as f64, 0.0]);
            labels.push(1);
        }
        let x = Matrix::from_rows(&rows);
        let s = silhouette(&x, &labels);
        assert!(s > 0.95, "s = {s}");
    }

    #[test]
    fn silhouette_random_labels_near_zero() {
        let rows: Vec<Vec<f64>> = (0..20).map(|i| vec![i as f64, 0.0]).collect();
        let labels: Vec<usize> = (0..20).map(|i| i % 2).collect();
        let x = Matrix::from_rows(&rows);
        let s = silhouette(&x, &labels);
        assert!(s.abs() < 0.3, "s = {s}");
    }

    #[test]
    fn silhouette_single_cluster_is_nan() {
        let x = Matrix::from_rows(&[vec![0.0], vec![1.0]]);
        assert!(silhouette(&x, &[0, 0]).is_nan());
    }

    #[test]
    fn silhouette_ignores_noise() {
        let x = Matrix::from_rows(&[vec![0.0], vec![0.1], vec![10.0], vec![10.1], vec![500.0]]);
        let labels = [0, 0, 1, 1, NOISE_LABEL];
        let s = silhouette(&x, &labels);
        assert!(s > 0.9);
    }
}
