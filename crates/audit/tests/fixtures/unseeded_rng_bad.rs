//! Fixture: entropy-seeded randomness breaks reproducibility.
pub fn noise() -> f64 {
    let mut rng = rand::thread_rng();
    rand::Rng::gen(&mut rng)
}
