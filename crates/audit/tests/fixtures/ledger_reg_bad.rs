//! Negative fixture: a manifest collected in the bench crate but never
//! registered in the cross-run ledger.

pub fn finish(binary: &str, config: RunConfig) {
    let manifest = RunManifest::collect(binary, config);
    if let Err(e) = manifest.write() {
        rein_telemetry::emit(&format!("manifest write failed: {e}"));
    }
}
