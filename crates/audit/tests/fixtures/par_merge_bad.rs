//! Concurrency fixture (negative): a parallel float reduction with an
//! ad hoc combiner — the result depends on worker interleaving because
//! float addition is not associative. `par-merge-registered` must fire
//! once on the `reduce` call.

pub fn total(xs: &[f64]) -> f64 {
    xs.par_iter().map(|x| x * 2.0).reduce(|| 0.0, |a, b| a + b)
}
