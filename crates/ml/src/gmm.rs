//! Gaussian mixture model with diagonal covariances, fitted by EM and
//! initialised from k-means.

use crate::kmeans::KMeans;
use crate::linalg::Matrix;
use crate::logistic::softmax_in_place;
use crate::model::Clusterer;

/// Diagonal-covariance GMM.
#[derive(Debug, Clone)]
pub struct GaussianMixture {
    /// Number of components.
    pub k: usize,
    /// EM iterations.
    pub max_iter: usize,
    seed: u64,
    weights: Vec<f64>,
    means: Vec<Vec<f64>>,
    vars: Vec<Vec<f64>>,
}

impl GaussianMixture {
    /// Builds a GMM clusterer.
    pub fn new(k: usize, seed: u64) -> Self {
        Self {
            k: k.max(1),
            max_iter: 50,
            seed,
            weights: Vec::new(),
            means: Vec::new(),
            vars: Vec::new(),
        }
    }

    /// Log density of row `xr` under component `c` (up to shared constants).
    fn log_prob(&self, xr: &[f64], c: usize) -> f64 {
        let mut lp = self.weights[c].max(1e-12).ln();
        for (f, &x) in xr.iter().enumerate() {
            let var = self.vars[c][f];
            lp += -0.5 * ((x - self.means[c][f]).powi(2) / var + var.ln());
        }
        lp
    }

    /// Posterior responsibilities for one sample.
    fn responsibilities(&self, xr: &[f64]) -> Vec<f64> {
        let mut lp: Vec<f64> = (0..self.k).map(|c| self.log_prob(xr, c)).collect();
        softmax_in_place(&mut lp);
        lp
    }
}

impl Clusterer for GaussianMixture {
    fn fit_predict(&mut self, x: &Matrix) -> Vec<usize> {
        let n = x.rows();
        let d = x.cols();
        if n == 0 {
            return Vec::new();
        }
        let k = self.k.min(n);
        self.k = k;

        // Init from k-means.
        let mut km = KMeans::new(k, self.seed);
        let init_labels = km.fit_predict(x);
        self.means = km.centroids().to_vec();
        self.weights = vec![1.0 / k as f64; k];
        self.vars = vec![vec![1.0; d]; k];
        // Initial variances from the k-means partition.
        let mut counts = vec![0usize; k];
        let mut sq = vec![vec![0.0; d]; k];
        for (r, &l) in init_labels.iter().enumerate() {
            counts[l] += 1;
            for (s, (&v, &m)) in sq[l].iter_mut().zip(x.row(r).iter().zip(&self.means[l])) {
                *s += (v - m).powi(2);
            }
        }
        for c in 0..k {
            if counts[c] > 0 {
                for (vv, s) in self.vars[c].iter_mut().zip(&sq[c]) {
                    *vv = (s / counts[c] as f64).max(1e-6);
                }
            }
        }

        for _ in 0..self.max_iter {
            // E step.
            let resp: Vec<Vec<f64>> = (0..n).map(|r| self.responsibilities(x.row(r))).collect();
            // M step.
            let mut nk = vec![0.0; k];
            let mut means = vec![vec![0.0; d]; k];
            for (r, rr) in resp.iter().enumerate() {
                for c in 0..k {
                    nk[c] += rr[c];
                    for (m, &v) in means[c].iter_mut().zip(x.row(r)) {
                        *m += rr[c] * v;
                    }
                }
            }
            for c in 0..k {
                let denom = nk[c].max(1e-12);
                for m in &mut means[c] {
                    *m /= denom;
                }
            }
            let mut vars = vec![vec![0.0; d]; k];
            for (r, rr) in resp.iter().enumerate() {
                for c in 0..k {
                    for (vv, (&v, &m)) in vars[c].iter_mut().zip(x.row(r).iter().zip(&means[c])) {
                        *vv += rr[c] * (v - m).powi(2);
                    }
                }
            }
            let mut max_delta = 0.0f64;
            for c in 0..k {
                let denom = nk[c].max(1e-12);
                for vv in &mut vars[c] {
                    *vv = (*vv / denom).max(1e-6);
                }
                for (new, old) in means[c].iter().zip(&self.means[c]) {
                    max_delta = max_delta.max((new - old).abs());
                }
                self.weights[c] = nk[c] / n as f64;
            }
            self.means = means;
            self.vars = vars;
            if max_delta < 1e-6 {
                break;
            }
        }

        (0..n).map(|r| crate::linalg::argmax(&self.responsibilities(x.row(r)))).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::blob_classification;

    #[test]
    fn separates_blobs() {
        let (x, truth) = blob_classification(150, 3, 171);
        let mut gmm = GaussianMixture::new(3, 1);
        let labels = gmm.fit_predict(&x);
        let mut purity = 0usize;
        for class in 0..3 {
            let members: Vec<usize> = (0..truth.len()).filter(|&i| truth[i] == class).collect();
            let mut counts = std::collections::BTreeMap::new();
            for &m in &members {
                *counts.entry(labels[m]).or_insert(0usize) += 1;
            }
            purity += counts.values().copied().max().unwrap_or(0);
        }
        assert!(purity as f64 / truth.len() as f64 > 0.9);
    }

    #[test]
    fn mixture_weights_sum_to_one() {
        let (x, _) = blob_classification(90, 3, 173);
        let mut gmm = GaussianMixture::new(3, 2);
        gmm.fit_predict(&x);
        let s: f64 = gmm.weights.iter().sum();
        assert!((s - 1.0).abs() < 1e-9);
    }

    #[test]
    fn handles_k_larger_than_n() {
        let x = Matrix::from_rows(&[vec![0.0], vec![5.0]]);
        let mut gmm = GaussianMixture::new(5, 1);
        let labels = gmm.fit_predict(&x);
        assert_eq!(labels.len(), 2);
    }

    #[test]
    fn deterministic_per_seed() {
        let (x, _) = blob_classification(60, 2, 179);
        let a = GaussianMixture::new(2, 9).fit_predict(&x);
        let b = GaussianMixture::new(2, 9).fit_predict(&x);
        assert_eq!(a, b);
    }
}
