//! Bench binary stub that exercises the registered detector.

use rein_detect::good;

fn main() {
    let d = good::Detector::new();
    let flags = d.detect(&[0.1, 0.9]);
    drop(flags);
}
