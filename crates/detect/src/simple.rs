//! The simplest non-learning detectors: explicit missing values (MVD) and
//! the SD / IQR statistical outlier rules of §3.1.

use rein_data::{CellMask, Value};
use rein_stats::descriptive;

use crate::context::{DetectContext, Detector};

/// Explicit missing-value detector: flags NULL/NaN/empty cells (the paper's
/// Pandas-based "MV Detector").
#[derive(Debug, Default, Clone)]
pub struct MvDetector;

impl Detector for MvDetector {
    fn name(&self) -> &'static str {
        "mv_detector"
    }

    fn detect(&self, ctx: &DetectContext<'_>) -> CellMask {
        let _span = rein_telemetry::span("detect:simple");
        let t = ctx.dirty;
        let mut mask = CellMask::new(t.n_rows(), t.n_cols());
        for c in 0..t.n_cols() {
            for (r, v) in t.column(c).iter().enumerate() {
                let empty = match v {
                    Value::Null => true,
                    Value::Str(s) => s.trim().is_empty(),
                    _ => false,
                };
                if empty {
                    mask.set(r, c, true);
                }
            }
        }
        mask
    }
}

/// Standard-deviation rule: a numeric cell is an outlier when it lies more
/// than `n_std` standard deviations from its column mean.
#[derive(Debug, Clone)]
pub struct SdDetector {
    /// Threshold in standard deviations (the paper's `n` hyperparameter).
    pub n_std: f64,
}

impl Default for SdDetector {
    fn default() -> Self {
        Self { n_std: 3.0 }
    }
}

impl Detector for SdDetector {
    fn name(&self) -> &'static str {
        "sd"
    }

    fn detect(&self, ctx: &DetectContext<'_>) -> CellMask {
        let _span = rein_telemetry::span("detect:simple");
        let t = ctx.dirty;
        let mut mask = CellMask::new(t.n_rows(), t.n_cols());
        for c in ctx.numeric_columns() {
            let xs = t.numeric_values(c);
            if xs.len() < 3 {
                continue;
            }
            let mean = descriptive::mean(&xs);
            let std = descriptive::std_dev(&xs).max(1e-12);
            for r in 0..t.n_rows() {
                rein_guard::checkpoint(1);
                if let Some(x) = t.cell(r, c).as_f64() {
                    if (x - mean).abs() > self.n_std * std {
                        mask.set(r, c, true);
                    }
                }
            }
        }
        mask
    }
}

/// Interquartile-range rule: outliers lie outside
/// `[Q1 − k·IQR, Q3 + k·IQR]` (§3.1).
#[derive(Debug, Clone)]
pub struct IqrDetector {
    /// The `k` multiplier (1.5 = Tukey's fences).
    pub k: f64,
}

impl Default for IqrDetector {
    fn default() -> Self {
        Self { k: 1.5 }
    }
}

impl Detector for IqrDetector {
    fn name(&self) -> &'static str {
        "iqr"
    }

    fn detect(&self, ctx: &DetectContext<'_>) -> CellMask {
        let _span = rein_telemetry::span("detect:simple");
        let t = ctx.dirty;
        let mut mask = CellMask::new(t.n_rows(), t.n_cols());
        for c in ctx.numeric_columns() {
            let xs = t.numeric_values(c);
            if xs.len() < 4 {
                continue;
            }
            let q1 = descriptive::quantile(&xs, 0.25);
            let q3 = descriptive::quantile(&xs, 0.75);
            let iqr = (q3 - q1).max(1e-12);
            let (lo, hi) = (q1 - self.k * iqr, q3 + self.k * iqr);
            for r in 0..t.n_rows() {
                if let Some(x) = t.cell(r, c).as_f64() {
                    if x < lo || x > hi {
                        mask.set(r, c, true);
                    }
                }
            }
        }
        mask
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rein_data::{ColumnMeta, ColumnType, Schema, Table};

    fn table_with_outlier() -> Table {
        let schema = Schema::new(vec![
            ColumnMeta::new("x", ColumnType::Float),
            ColumnMeta::new("s", ColumnType::Str),
        ]);
        let mut rows: Vec<Vec<Value>> = (0..50)
            .map(|i| vec![Value::Float(10.0 + (i % 5) as f64 * 0.1), Value::str("ok")])
            .collect();
        rows[7][0] = Value::Float(1000.0); // outlier
        rows[3][0] = Value::Null; // missing
        rows[9][1] = Value::str(""); // empty string counts as missing
        Table::from_rows(schema, rows)
    }

    #[test]
    fn mv_detector_finds_nulls_and_empties() {
        let t = table_with_outlier();
        let m = MvDetector.detect(&DetectContext::bare(&t));
        assert_eq!(m.count(), 2);
        assert!(m.get(3, 0));
        assert!(m.get(9, 1));
    }

    #[test]
    fn sd_detector_flags_the_outlier_only() {
        let t = table_with_outlier();
        let m = SdDetector::default().detect(&DetectContext::bare(&t));
        assert!(m.get(7, 0));
        assert_eq!(m.count(), 1);
    }

    #[test]
    fn iqr_detector_flags_the_outlier() {
        let t = table_with_outlier();
        let m = IqrDetector::default().detect(&DetectContext::bare(&t));
        assert!(m.get(7, 0));
    }

    #[test]
    fn thresholds_control_sensitivity() {
        let t = table_with_outlier();
        let strict = SdDetector { n_std: 0.5 }.detect(&DetectContext::bare(&t));
        let lax = SdDetector { n_std: 50000.0 }.detect(&DetectContext::bare(&t));
        assert!(strict.count() > lax.count());
        assert!(lax.is_empty());
    }

    #[test]
    fn string_columns_are_never_flagged_as_outliers() {
        let t = table_with_outlier();
        let m = SdDetector::default().detect(&DetectContext::bare(&t));
        assert_eq!(m.count_col(1), 0);
    }
}
