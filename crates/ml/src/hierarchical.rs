//! Agglomerative hierarchical clustering with average linkage
//! (Lance–Williams update), cut at `k` clusters.

use crate::linalg::{euclid, Matrix};
use crate::model::Clusterer;

/// Average-linkage agglomerative clustering.
#[derive(Debug, Clone)]
pub struct Agglomerative {
    /// Number of clusters to cut the dendrogram at.
    pub k: usize,
}

impl Agglomerative {
    /// Builds an agglomerative clusterer.
    pub fn new(k: usize) -> Self {
        Self { k: k.max(1) }
    }
}

impl Clusterer for Agglomerative {
    fn fit_predict(&mut self, x: &Matrix) -> Vec<usize> {
        let n = x.rows();
        if n == 0 {
            return Vec::new();
        }
        let k = self.k.min(n);

        // Active cluster list with sizes; pairwise average-linkage distances.
        let mut active: Vec<bool> = vec![true; n];
        let mut size: Vec<f64> = vec![1.0; n];
        let mut members: Vec<Vec<usize>> = (0..n).map(|i| vec![i]).collect();
        // Distance matrix (upper triangle used).
        let mut dist = vec![vec![0.0f64; n]; n];
        for i in 0..n {
            for j in i + 1..n {
                let d = euclid(x.row(i), x.row(j));
                dist[i][j] = d;
                dist[j][i] = d;
            }
        }

        let mut n_clusters = n;
        while n_clusters > k {
            // Find the closest active pair.
            let mut best = (f64::INFINITY, 0usize, 0usize);
            for i in 0..n {
                if !active[i] {
                    continue;
                }
                for j in i + 1..n {
                    if active[j] && dist[i][j] < best.0 {
                        best = (dist[i][j], i, j);
                    }
                }
            }
            let (_, a, b) = best;
            // Merge b into a; Lance–Williams average-linkage update.
            for m in 0..n {
                if m != a && m != b && active[m] {
                    let d = (size[a] * dist[a][m] + size[b] * dist[b][m]) / (size[a] + size[b]);
                    dist[a][m] = d;
                    dist[m][a] = d;
                }
            }
            size[a] += size[b];
            let moved = std::mem::take(&mut members[b]);
            members[a].extend(moved);
            active[b] = false;
            n_clusters -= 1;
        }

        let mut labels = vec![0usize; n];
        let mut next = 0usize;
        for (i, act) in active.iter().enumerate() {
            if *act {
                for &m in &members[i] {
                    labels[m] = next;
                }
                next += 1;
            }
        }
        labels
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::blob_classification;

    #[test]
    fn separates_blobs() {
        let (x, truth) = blob_classification(90, 3, 181);
        let labels = Agglomerative::new(3).fit_predict(&x);
        let mut purity = 0usize;
        for class in 0..3 {
            let members: Vec<usize> = (0..truth.len()).filter(|&i| truth[i] == class).collect();
            let mut counts = std::collections::BTreeMap::new();
            for &m in &members {
                *counts.entry(labels[m]).or_insert(0usize) += 1;
            }
            purity += counts.values().copied().max().unwrap_or(0);
        }
        assert!(purity as f64 / truth.len() as f64 > 0.9);
    }

    #[test]
    fn produces_exactly_k_clusters() {
        let (x, _) = blob_classification(40, 2, 191);
        let labels = Agglomerative::new(4).fit_predict(&x);
        let mut distinct: Vec<usize> = labels.clone();
        distinct.sort_unstable();
        distinct.dedup();
        assert_eq!(distinct.len(), 4);
        assert_eq!(distinct, vec![0, 1, 2, 3], "labels are compacted");
    }

    #[test]
    fn k_one_merges_everything() {
        let (x, _) = blob_classification(20, 2, 193);
        let labels = Agglomerative::new(1).fit_predict(&x);
        assert!(labels.iter().all(|&l| l == 0));
    }

    #[test]
    fn k_at_least_n_keeps_singletons() {
        let x = Matrix::from_rows(&[vec![0.0], vec![1.0], vec![2.0]]);
        let labels = Agglomerative::new(5).fit_predict(&x);
        let mut d = labels.clone();
        d.sort_unstable();
        d.dedup();
        assert_eq!(d.len(), 3);
    }

    #[test]
    fn nearest_points_merge_first() {
        // Two tight pairs far apart -> k=2 groups the pairs.
        let x = Matrix::from_rows(&[vec![0.0], vec![0.1], vec![10.0], vec![10.1]]);
        let labels = Agglomerative::new(2).fit_predict(&x);
        assert_eq!(labels[0], labels[1]);
        assert_eq!(labels[2], labels[3]);
        assert_ne!(labels[0], labels[2]);
    }
}
