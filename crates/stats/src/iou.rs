//! Intersection-over-union between detector outputs (§6.1).
//!
//! REIN quantifies how similar two detectors' findings are via
//! `IoU(a, b) = |Nₐ ∩ N_b| / (|Nₐ| + |N_b| - |Nₐ ∩ N_b|)`, computed **over
//! true positives only** — false positives "may lead to misleading results".

use rein_data::CellMask;

/// IoU of two raw cell sets.
pub fn iou(a: &CellMask, b: &CellMask) -> f64 {
    let inter = a.intersect(b).count();
    let union = a.count() + b.count() - inter;
    if union == 0 {
        // Two empty detections are identical by convention.
        1.0
    } else {
        inter as f64 / union as f64
    }
}

/// IoU restricted to true positives: each detection mask is intersected with
/// the ground-truth error mask first (the paper's definition).
pub fn iou_true_positives(a: &CellMask, b: &CellMask, actual: &CellMask) -> f64 {
    iou(&a.intersect(actual), &b.intersect(actual))
}

/// Pairwise IoU matrix over a set of named detections (Figures 2b/2e/2g/…).
///
/// Returns a symmetric `n × n` matrix with ones on the diagonal.
#[allow(clippy::needless_range_loop)] // symmetric matrix fill reads clearer indexed
pub fn iou_matrix(detections: &[(&str, &CellMask)], actual: &CellMask) -> Vec<Vec<f64>> {
    let tps: Vec<CellMask> = detections.iter().map(|(_, m)| m.intersect(actual)).collect();
    let n = tps.len();
    let mut out = vec![vec![0.0; n]; n];
    for i in 0..n {
        out[i][i] = 1.0;
        for j in i + 1..n {
            let v = iou(&tps[i], &tps[j]);
            out[i][j] = v;
            out[j][i] = v;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rein_data::CellRef;

    fn mask(cells: &[(usize, usize)]) -> CellMask {
        CellMask::from_cells(8, 3, cells.iter().map(|&(r, c)| CellRef::new(r, c)))
    }

    #[test]
    fn identical_masks_have_iou_one() {
        let m = mask(&[(0, 0), (1, 1)]);
        assert_eq!(iou(&m, &m), 1.0);
    }

    #[test]
    fn disjoint_masks_have_iou_zero() {
        assert_eq!(iou(&mask(&[(0, 0)]), &mask(&[(1, 1)])), 0.0);
    }

    #[test]
    fn half_overlap() {
        let a = mask(&[(0, 0), (1, 1)]);
        let b = mask(&[(1, 1), (2, 2)]);
        // inter 1, union 3
        assert!((iou(&a, &b) - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn both_empty_is_one() {
        assert_eq!(iou(&mask(&[]), &mask(&[])), 1.0);
    }

    #[test]
    fn true_positive_restriction_ignores_false_positives() {
        let actual = mask(&[(0, 0)]);
        // Both detectors found the real error but disagree wildly on FPs.
        let a = mask(&[(0, 0), (3, 0), (4, 0)]);
        let b = mask(&[(0, 0), (5, 1), (6, 2)]);
        assert!(iou(&a, &b) < 0.5);
        assert_eq!(iou_true_positives(&a, &b, &actual), 1.0);
    }

    #[test]
    fn matrix_is_symmetric_with_unit_diagonal() {
        let actual = mask(&[(0, 0), (1, 1), (2, 2)]);
        let a = mask(&[(0, 0), (1, 1)]);
        let b = mask(&[(1, 1), (2, 2)]);
        let c = mask(&[(0, 0)]);
        let m = iou_matrix(&[("a", &a), ("b", &b), ("c", &c)], &actual);
        for (i, row) in m.iter().enumerate() {
            assert_eq!(row[i], 1.0);
            for (j, v) in row.iter().enumerate() {
                assert_eq!(*v, m[j][i]);
            }
        }
        assert!((m[0][1] - 1.0 / 3.0).abs() < 1e-12);
        assert!((m[0][2] - 0.5).abs() < 1e-12);
    }
}
