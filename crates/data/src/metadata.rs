//! Dataset-level metadata: ML task, error profile, descriptors.
//!
//! This is the "design-time knowledge" the REIN benchmark controller uses to
//! sidestep unnecessary experiments (§2 of the paper): which error types a
//! dataset contains and which ML task it serves.

use serde::{Deserialize, Serialize};

/// The downstream ML task associated with a dataset (Table 4, last column).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MlTask {
    /// Supervised classification.
    Classification,
    /// Supervised regression.
    Regression,
    /// Unsupervised clustering.
    Clustering,
    /// No associated predictive task (the Soccer dataset).
    None,
}

/// The error taxonomy of the paper (§1 and Table 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum ErrorType {
    /// Explicit missing values (NULL / NaN / empty cells).
    MissingValue,
    /// Implicit or disguised missing values ("?", "unknown", 999999).
    ImplicitMissingValue,
    /// Numeric outliers.
    Outlier,
    /// Typographical errors in text or stringified numbers.
    Typo,
    /// Functional-dependency / denial-constraint violations.
    RuleViolation,
    /// Pattern violations (format errors).
    PatternViolation,
    /// Representation inconsistencies (same entity, different spellings).
    Inconsistency,
    /// Duplicate records.
    Duplicate,
    /// Wrong class labels.
    Mislabel,
    /// Additive Gaussian noise on numeric cells.
    GaussianNoise,
    /// Values swapped between cells of one attribute.
    ValueSwap,
}

impl ErrorType {
    /// All error types, for capability tables and exhaustive iteration.
    pub const ALL: [ErrorType; 11] = [
        ErrorType::MissingValue,
        ErrorType::ImplicitMissingValue,
        ErrorType::Outlier,
        ErrorType::Typo,
        ErrorType::RuleViolation,
        ErrorType::PatternViolation,
        ErrorType::Inconsistency,
        ErrorType::Duplicate,
        ErrorType::Mislabel,
        ErrorType::GaussianNoise,
        ErrorType::ValueSwap,
    ];

    /// Whether this error type affects labels rather than features
    /// ("class errors" vs "attribute errors" in the paper's terminology).
    pub fn is_class_error(self) -> bool {
        matches!(self, ErrorType::Mislabel)
    }
}

/// The set of error types present in a dataset, with the overall cell error
/// rate (Table 4's "Error Rate" / "Errors" columns).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct ErrorProfile {
    /// Error types present.
    pub types: Vec<ErrorType>,
    /// Target fraction of erroneous cells.
    pub rate: f64,
}

impl ErrorProfile {
    /// Builds a profile.
    pub fn new(types: impl Into<Vec<ErrorType>>, rate: f64) -> Self {
        Self { types: types.into(), rate }
    }

    /// Whether the profile contains the given error type.
    pub fn has(&self, t: ErrorType) -> bool {
        self.types.contains(&t)
    }

    /// Whether any class (label) errors are present.
    pub fn has_class_errors(&self) -> bool {
        self.types.iter().any(|t| t.is_class_error())
    }
}

/// Static description of a benchmark dataset (one row of Table 4).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DatasetInfo {
    /// Dataset name, e.g. "beers".
    pub name: String,
    /// Application domain, e.g. "Business".
    pub domain: String,
    /// Associated ML task.
    pub task: MlTask,
    /// Error profile of the dirty version.
    pub errors: ErrorProfile,
    /// Names of key columns assumed unique (for duplicate detection); empty
    /// if none are designated.
    pub key_columns: Vec<String>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn class_vs_attribute_errors() {
        assert!(ErrorType::Mislabel.is_class_error());
        assert!(!ErrorType::Outlier.is_class_error());
        let p = ErrorProfile::new([ErrorType::Duplicate, ErrorType::Mislabel], 0.2);
        assert!(p.has_class_errors());
        assert!(p.has(ErrorType::Duplicate));
        assert!(!p.has(ErrorType::Typo));
    }

    #[test]
    fn all_error_types_enumerated_once() {
        let mut v = ErrorType::ALL.to_vec();
        v.sort();
        v.dedup();
        assert_eq!(v.len(), ErrorType::ALL.len());
    }

    #[test]
    fn profile_serialises() {
        let p = ErrorProfile::new([ErrorType::MissingValue], 0.16);
        let json = serde_json::to_string(&p).unwrap();
        let back: ErrorProfile = serde_json::from_str(&json).unwrap();
        assert_eq!(p, back);
    }
}
