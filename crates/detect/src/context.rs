//! Detection context: the dirty table plus every cleaning signal a
//! detector may require (Table 1's "Configs" column) — constraints, a
//! knowledge base, key columns, and a ground-truth-backed labelling oracle
//! for the ML-supported detectors (the paper uses the ground truth "to
//! simulate a human annotator").

use std::cell::Cell;

use rein_constraints::dc::DenialConstraint;
use rein_constraints::fd::FunctionalDependency;
use rein_data::{CellMask, CellRef, ColumnType, Table};

/// A labelling oracle backed by the ground-truth error mask.
///
/// Detectors query whether individual cells are erroneous; the oracle
/// counts queries so labelling budgets are auditable.
#[derive(Debug)]
pub struct Oracle {
    mask: CellMask,
    // audit:allow(par-shared-mutable, the oracle is constructed per detector invocation and owned by a single worker; the query counter never crosses the parallel boundary)
    queries: Cell<usize>,
}

impl Oracle {
    /// Builds an oracle from the ground-truth error mask.
    pub fn new(mask: CellMask) -> Self {
        // audit:allow(par-shared-mutable, single-owner counter, see the field declaration above)
        Self { mask, queries: Cell::new(0) }
    }

    /// Whether the cell is actually erroneous (one labelling query).
    pub fn is_dirty(&self, cell: CellRef) -> bool {
        self.queries.set(self.queries.get() + 1);
        self.mask.get(cell.row, cell.col)
    }

    /// Number of labels handed out so far.
    pub fn queries_used(&self) -> usize {
        self.queries.get()
    }
}

/// KATARA's crowdsourced knowledge base, simulated from clean-domain
/// knowledge: per-column sets of valid categorical values and plausible
/// numeric ranges.
#[derive(Debug, Clone, Default)]
pub struct KnowledgeBase {
    /// `(column, valid values)` for categorical columns.
    pub domains: Vec<(usize, std::collections::BTreeSet<String>)>,
    /// `(column, lo, hi)` plausible ranges for numeric columns.
    pub ranges: Vec<(usize, f64, f64)>,
}

impl KnowledgeBase {
    /// Builds a KB from a reference (clean) table: categorical domains are
    /// the observed value sets; numeric ranges are the observed min/max
    /// stretched by 10%.
    pub fn from_reference(table: &Table) -> Self {
        let _span = rein_telemetry::span("detect:context:build_kb");
        let mut kb = KnowledgeBase::default();
        for c in 0..table.n_cols() {
            if table.schema().column(c).ctype.is_numeric() {
                let xs = table.numeric_values(c);
                if xs.is_empty() {
                    continue;
                }
                let lo = xs.iter().copied().fold(f64::INFINITY, f64::min);
                let hi = xs.iter().copied().fold(f64::NEG_INFINITY, f64::max);
                let pad = (hi - lo).abs().max(1.0) * 0.1;
                kb.ranges.push((c, lo - pad, hi + pad));
            } else {
                let values: std::collections::BTreeSet<String> = table
                    .column(c)
                    .iter()
                    .filter(|v| !v.is_null())
                    .map(|v| v.as_key().into_owned())
                    .collect();
                kb.domains.push((c, values));
            }
        }
        kb
    }
}

/// Everything a detector may consume.
pub struct DetectContext<'a> {
    /// The dirty table under inspection.
    pub dirty: &'a Table,
    /// FD rules (NADEEF / HoloClean signal).
    pub fds: &'a [FunctionalDependency],
    /// Denial constraints (HoloClean signal).
    pub dcs: &'a [DenialConstraint],
    /// Knowledge base (KATARA signal).
    pub kb: Option<&'a KnowledgeBase>,
    /// Key columns assumed unique (Key-Collision signal).
    pub key_columns: &'a [usize],
    /// Labelling oracle (ML-supported detectors).
    pub oracle: Option<&'a Oracle>,
    /// Label column, when the dataset has one (CleanLab signal).
    pub label_col: Option<usize>,
    /// Labelling budget for ML-supported detectors (total cell labels).
    pub labeling_budget: usize,
    /// Seed for stochastic detectors.
    pub seed: u64,
}

impl<'a> DetectContext<'a> {
    /// Minimal context: just the dirty table (configuration-free methods).
    pub fn bare(dirty: &'a Table) -> Self {
        Self {
            dirty,
            fds: &[],
            dcs: &[],
            kb: None,
            key_columns: &[],
            oracle: None,
            label_col: None,
            labeling_budget: 20,
            seed: 0,
        }
    }

    /// Numeric columns by *observed* majority type (dirty data may have
    /// type-shifted cells).
    pub fn numeric_columns(&self) -> Vec<usize> {
        (0..self.dirty.n_cols()).filter(|&c| self.dirty.observed_type(c).is_numeric()).collect()
    }

    /// Categorical (non-numeric) columns by observed type.
    pub fn categorical_columns(&self) -> Vec<usize> {
        (0..self.dirty.n_cols())
            .filter(|&c| matches!(self.dirty.observed_type(c), ColumnType::Str | ColumnType::Bool))
            .collect()
    }
}

/// A detector: produces the mask of cells it believes are erroneous.
pub trait Detector: Send + Sync {
    /// Stable name used in figures and result tables.
    fn name(&self) -> &'static str;
    /// Runs detection.
    fn detect(&self, ctx: &DetectContext<'_>) -> CellMask;
}

#[cfg(test)]
mod tests {
    use super::*;
    use rein_data::{ColumnMeta, Schema, Value};

    fn table() -> Table {
        let schema = Schema::new(vec![
            ColumnMeta::new("x", ColumnType::Float),
            ColumnMeta::new("c", ColumnType::Str),
        ]);
        Table::from_rows(
            schema,
            vec![
                vec![Value::Float(1.0), Value::str("a")],
                vec![Value::Float(2.0), Value::str("b")],
            ],
        )
    }

    #[test]
    fn oracle_counts_queries() {
        let mut mask = CellMask::new(2, 2);
        mask.set(0, 1, true);
        let oracle = Oracle::new(mask);
        assert!(oracle.is_dirty(CellRef::new(0, 1)));
        assert!(!oracle.is_dirty(CellRef::new(1, 1)));
        assert_eq!(oracle.queries_used(), 2);
    }

    #[test]
    fn kb_from_reference_covers_both_types() {
        let kb = KnowledgeBase::from_reference(&table());
        assert_eq!(kb.ranges.len(), 1);
        assert_eq!(kb.domains.len(), 1);
        let (col, lo, hi) = kb.ranges[0];
        assert_eq!(col, 0);
        assert!(lo < 1.0 && hi > 2.0);
        assert!(kb.domains[0].1.contains("a"));
    }

    #[test]
    fn context_column_typing_follows_observations() {
        let mut t = table();
        // Shift the numeric column mostly to strings.
        t.set_cell(0, 0, Value::str("oops"));
        t.set_cell(1, 0, Value::str("bad"));
        let ctx = DetectContext::bare(&t);
        assert!(ctx.numeric_columns().is_empty());
        assert_eq!(ctx.categorical_columns(), vec![0, 1]);
    }
}
