//! Repair context and outcome types.
//!
//! A repairer consumes the dirty table plus the cells a detector flagged
//! and produces either a repaired table (generic methods, category I) or a
//! trained model (ML-oriented methods, category II — their output *is* the
//! model, evaluated under scenario S5).

use rein_constraints::fd::FunctionalDependency;
use rein_data::{CellMask, Table};
use rein_ml::encode::{Encoder, LabelMap};
use rein_ml::linalg::Matrix;
use rein_ml::model::Classifier;

/// Everything a repair method may consume.
pub struct RepairContext<'a> {
    /// The dirty table.
    pub dirty: &'a Table,
    /// Cells flagged by the upstream detector — the set to repair.
    pub detections: &'a CellMask,
    /// Ground truth, for the GT upper bound and for simulated oracles
    /// (BARAN's labelled corrections, ActiveClean/CPClean's cleaning
    /// oracle) — exactly the paper's use of it.
    pub clean: Option<&'a Table>,
    /// FD rules (HoloClean signal).
    pub fds: &'a [FunctionalDependency],
    /// Label column for model-producing methods.
    pub label_col: Option<usize>,
    /// Oracle/label budget for methods that consume labelled corrections.
    pub label_budget: usize,
    /// Seed for stochastic repairers.
    pub seed: u64,
}

impl<'a> RepairContext<'a> {
    /// Minimal context.
    pub fn new(dirty: &'a Table, detections: &'a CellMask) -> Self {
        Self {
            dirty,
            detections,
            clean: None,
            fds: &[],
            label_col: None,
            label_budget: 20,
            seed: 0,
        }
    }
}

/// A model produced by an ML-oriented repairer, bundled with its encoding
/// so it can be applied to any compatible data version.
pub struct TrainedPipeline {
    /// The trained classifier.
    pub model: Box<dyn Classifier>,
    /// Feature encoder fitted during training.
    pub encoder: Encoder,
    /// Label map fitted during training.
    pub labels: LabelMap,
    /// Feature column indices.
    pub feature_cols: Vec<usize>,
    /// Label column index.
    pub label_col: usize,
}

impl TrainedPipeline {
    /// Predicts class ids for every row of `table`.
    pub fn predict(&self, table: &Table) -> Vec<usize> {
        let _span = rein_telemetry::span("repair:context:predict");
        let x = self.encoder.transform(table);
        self.model.predict(&x)
    }

    /// Macro-F1 of the pipeline on `table` (rows with unknown labels are
    /// skipped).
    pub fn f1_on(&self, table: &Table) -> f64 {
        let (rows, truth) = self.labels.encode(table, self.label_col);
        if rows.is_empty() {
            return f64::NAN;
        }
        let x = self.encoder.transform(table);
        let xs = rein_ml::encode::select_matrix_rows(&x, &rows);
        let preds = self.model.predict(&xs);
        rein_ml::metrics::classification_report(&truth, &preds, self.labels.n_classes()).f1
    }

    /// Encoded features for external use.
    pub fn encode(&self, table: &Table) -> Matrix {
        self.encoder.transform(table)
    }
}

/// Outcome of a repair method.
pub enum RepairOutcome {
    /// A repaired data version plus the cells actually modified (rows may
    /// shrink for the Delete strategy — `row_map[i]` gives the original
    /// dirty-row index of output row `i`).
    Repaired {
        /// The repaired table.
        table: Table,
        /// Cells modified, sized to the *output* table.
        repaired_cells: CellMask,
        /// Output-row → dirty-row mapping.
        row_map: Vec<usize>,
    },
    /// A trained model (ML-oriented methods; scenario S5).
    Model(TrainedPipeline),
}

impl RepairOutcome {
    /// Convenience constructor for same-shape repairs.
    pub fn repaired(table: Table, repaired_cells: CellMask) -> Self {
        let row_map = (0..table.n_rows()).collect();
        RepairOutcome::Repaired { table, repaired_cells, row_map }
    }

    /// The repaired table, if this outcome carries one.
    pub fn table(&self) -> Option<&Table> {
        match self {
            RepairOutcome::Repaired { table, .. } => Some(table),
            RepairOutcome::Model(_) => None,
        }
    }
}

/// A repair method.
pub trait Repairer: Send + Sync {
    /// Stable name used in figures and result tables.
    fn name(&self) -> &'static str;
    /// Runs the repair.
    fn repair(&self, ctx: &RepairContext<'_>) -> RepairOutcome;
}

#[cfg(test)]
mod tests {
    use super::*;
    use rein_data::{ColumnMeta, ColumnType, Schema, Value};

    #[test]
    fn outcome_accessors() {
        let schema = Schema::new(vec![ColumnMeta::new("x", ColumnType::Int)]);
        let t = Table::from_rows(schema, vec![vec![Value::Int(1)]]);
        let out = RepairOutcome::repaired(t.clone(), CellMask::new(1, 1));
        assert_eq!(out.table().unwrap().n_rows(), 1);
        match out {
            RepairOutcome::Repaired { row_map, .. } => assert_eq!(row_map, vec![0]),
            _ => panic!("expected repaired"),
        }
    }
}
