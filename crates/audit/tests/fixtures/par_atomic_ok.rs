//! Concurrency fixture (positive): sequentially-consistent atomics are
//! always fine — `par-atomic-ordering` only gates `Relaxed`.

use std::sync::atomic::{AtomicU64, Ordering};

static COUNT: AtomicU64 = AtomicU64::new(0);

pub fn bump() -> u64 {
    COUNT.fetch_add(1, Ordering::SeqCst)
}

pub fn read() -> u64 {
    COUNT.load(Ordering::Acquire)
}
