//! Fixture: a detector module opening its span.
pub fn detect(xs: &[f64]) -> Vec<bool> {
    let _span = rein_telemetry::span("detect:fixture");
    xs.iter().map(|x| x.is_nan()).collect()
}
