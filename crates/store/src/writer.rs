//! The sharded commit writer: rayon workers stage freshly-computed
//! cell results into per-shard buffers without contending on one lock,
//! and the grid's sequential merge points drain every shard through a
//! registered deterministic merge ([`StoreWriter::merge_shards`]) before
//! the store appends them to the journal — so the journal's byte order
//! is a function of the grid coordinates, never of worker scheduling.

use std::sync::Mutex;

use rein_ledger::fnv1a64;

use crate::Record;

/// Staging buffer for cell commits produced on rayon workers.
#[derive(Debug)]
pub struct StoreWriter {
    shards: Vec<Mutex<Vec<Record>>>,
}

impl StoreWriter {
    /// A writer with `n` shards (at least one).
    pub fn with_shards(n: usize) -> Self {
        let shards = (0..n.max(1)).map(|_| Mutex::new(Vec::new())).collect();
        StoreWriter { shards }
    }

    /// Stages one freshly-computed cell for the next commit. Callable
    /// from parallel workers: the shard is picked by hashing the cell
    /// coordinate, so the same cell always lands in the same shard and
    /// no global lock serializes the fan-out.
    pub fn stage(&self, key: &str, coordinate: &str, payload: &str, aux: Option<&str>) {
        let shard = (fnv1a64(coordinate.as_bytes()) % self.shards.len() as u64) as usize;
        let record = Record {
            key: key.to_string(),
            coordinate: coordinate.to_string(),
            payload: payload.to_string(),
            aux: aux.map(str::to_string),
        };
        // audit:allow(panic, shard lock poisoning only follows another panic)
        self.shards[shard].lock().expect("store writer shard lock").push(record);
    }

    /// Drains every shard and merges the staged records into one
    /// deterministic batch, sorted by `(coordinate, key)` — the merge
    /// output is invariant under worker count and arrival order. This is
    /// one of the audit's registered deterministic merges
    /// (`par-merge-registered`).
    pub fn merge_shards(&self) -> Vec<Record> {
        let mut out = Vec::new();
        for shard in &self.shards {
            // audit:allow(panic, shard lock poisoning only follows another panic)
            out.append(&mut shard.lock().expect("store writer shard lock"));
        }
        out.sort_by(|a, b| (&a.coordinate, &a.key).cmp(&(&b.coordinate, &b.key)));
        out
    }

    /// Number of currently staged records across all shards.
    pub fn staged_len(&self) -> usize {
        // audit:allow(panic, shard lock poisoning only follows another panic)
        self.shards.iter().map(|s| s.lock().expect("store writer shard lock").len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_is_sorted_and_scheduling_invariant() {
        let a = StoreWriter::with_shards(4);
        a.stage("k2", "repair:b#a", "two", None);
        a.stage("k1", "detect:a", "one", Some("v:aux"));
        a.stage("k3", "eval:S1:b#a", "three", None);

        let b = StoreWriter::with_shards(1);
        // Same records staged in a different order into a different
        // shard layout must merge to the same batch.
        b.stage("k3", "eval:S1:b#a", "three", None);
        b.stage("k1", "detect:a", "one", Some("v:aux"));
        b.stage("k2", "repair:b#a", "two", None);

        let ma = a.merge_shards();
        let mb = b.merge_shards();
        assert_eq!(ma, mb);
        assert_eq!(ma[0].coordinate, "detect:a");
        assert_eq!(ma[0].aux.as_deref(), Some("v:aux"));
        assert_eq!(a.staged_len(), 0, "merge drains the shards");
    }
}
