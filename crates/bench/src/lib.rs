//! # rein-bench
//!
//! The experiment harness reproducing every table and figure of the
//! paper's evaluation (§6). Each `src/bin/` binary regenerates one
//! artefact and prints the same rows/series the paper reports; the
//! `benches/` directory holds the Criterion runtime benchmarks.
//!
//! All binaries honour the `REIN_SCALE` environment variable (default
//! `0.05`): dataset row counts are `REIN_SCALE ×` the paper's Table 4
//! sizes, so a laptop run finishes in minutes while `REIN_SCALE=1` runs
//! the full-size study.

use rein_core::{DetectorHarness, DetectorRun};
use rein_datasets::{DatasetId, GeneratedDataset, Params};
use rein_detect::DetectorKind;

/// Reads the global scale factor (`REIN_SCALE`, default 0.05).
pub fn scale() -> f64 {
    std::env::var("REIN_SCALE")
        .ok()
        .and_then(|s| s.parse::<f64>().ok())
        .filter(|s| *s > 0.0)
        .unwrap_or(0.05)
}

/// Reads the repeat count for stochastic experiments (`REIN_REPEATS`,
/// default 3; the paper uses 10).
pub fn repeats() -> usize {
    std::env::var("REIN_REPEATS")
        .ok()
        .and_then(|s| s.parse::<usize>().ok())
        .filter(|r| *r > 0)
        .unwrap_or(3)
}

/// Generates a dataset at the global scale.
pub fn dataset(id: DatasetId, seed: u64) -> GeneratedDataset {
    id.generate(&Params::scaled(scale(), seed))
}

/// Generates a dataset at an explicit scale.
pub fn dataset_at(id: DatasetId, size_factor: f64, seed: u64) -> GeneratedDataset {
    id.generate(&Params::scaled(size_factor, seed))
}

/// Runs a list of detectors on a dataset (planned signals supplied).
pub fn run_detectors(
    ds: &GeneratedDataset,
    kinds: &[DetectorKind],
    budget: usize,
    seed: u64,
) -> Vec<DetectorRun> {
    let harness = DetectorHarness::new(ds, budget, seed);
    kinds.iter().map(|&k| harness.run(ds, k)).collect()
}

/// Section header in the emitted reports.
pub fn header(title: &str) {
    println!("\n=== {title} ===");
}

/// Prints a row of fixed-width cells.
pub fn row(cells: &[String]) {
    let line: Vec<String> = cells.iter().map(|c| format!("{c:>12}")).collect();
    println!("{}", line.join(" "));
}

/// Formats a float for report output.
pub fn f(v: f64) -> String {
    if v.is_nan() {
        "-".to_string()
    } else if v.abs() >= 1000.0 {
        format!("{v:.0}")
    } else {
        format!("{v:.3}")
    }
}

/// Formats an optional float.
pub fn fo(v: Option<f64>) -> String {
    v.map_or("-".to_string(), f)
}

/// Formats a duration in seconds with millisecond resolution.
pub fn secs(d: std::time::Duration) -> String {
    format!("{:.3}s", d.as_secs_f64())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_default_and_override() {
        // Default path (env var may be absent in tests).
        let s = scale();
        assert!(s > 0.0);
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(f(0.5), "0.500");
        assert_eq!(f(f64::NAN), "-");
        assert_eq!(f(12345.0), "12345");
        assert_eq!(fo(None), "-");
        assert_eq!(fo(Some(1.0)), "1.000");
    }

    #[test]
    fn dataset_helper_generates() {
        let ds = dataset_at(DatasetId::BreastCancer, 0.2, 1);
        assert!(ds.clean.n_rows() >= 20);
    }
}
