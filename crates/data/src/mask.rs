//! Cell masks: bitsets over the `rows × cols` cell grid.
//!
//! Detection results, injected-error ground truth and repair footprints are
//! all sets of cells; [`CellMask`] gives them compact storage and fast set
//! algebra (the IoU computations of §6.1 are pure mask intersections).

use serde::{Deserialize, Serialize};

use crate::table::CellRef;

/// A dense bitset over the cells of a `rows × cols` table.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CellMask {
    rows: usize,
    cols: usize,
    bits: Vec<u64>,
}

impl CellMask {
    /// An empty mask for a `rows × cols` grid.
    pub fn new(rows: usize, cols: usize) -> Self {
        let words = (rows * cols).div_ceil(64);
        Self { rows, cols, bits: vec![0; words] }
    }

    /// A mask with every cell set.
    pub fn full(rows: usize, cols: usize) -> Self {
        let mut m = Self::new(rows, cols);
        for i in 0..rows * cols {
            m.bits[i / 64] |= 1 << (i % 64);
        }
        m
    }

    /// Builds a mask from an iterator of cell references.
    pub fn from_cells(rows: usize, cols: usize, cells: impl IntoIterator<Item = CellRef>) -> Self {
        let mut m = Self::new(rows, cols);
        for c in cells {
            m.set(c.row, c.col, true);
        }
        m
    }

    /// Grid height.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Grid width.
    pub fn cols(&self) -> usize {
        self.cols
    }

    fn idx(&self, row: usize, col: usize) -> usize {
        debug_assert!(row < self.rows && col < self.cols, "cell ({row},{col}) out of bounds");
        row * self.cols + col
    }

    /// Whether cell `(row, col)` is set.
    pub fn get(&self, row: usize, col: usize) -> bool {
        let i = self.idx(row, col);
        self.bits[i / 64] >> (i % 64) & 1 == 1
    }

    /// Sets or clears cell `(row, col)`.
    pub fn set(&mut self, row: usize, col: usize, on: bool) {
        let i = self.idx(row, col);
        if on {
            self.bits[i / 64] |= 1 << (i % 64);
        } else {
            self.bits[i / 64] &= !(1 << (i % 64));
        }
    }

    /// Sets every cell of `row`.
    pub fn set_row(&mut self, row: usize, on: bool) {
        for c in 0..self.cols {
            self.set(row, c, on);
        }
    }

    /// Sets every cell of `col`.
    pub fn set_col(&mut self, col: usize, on: bool) {
        for r in 0..self.rows {
            self.set(r, col, on);
        }
    }

    /// Number of set cells.
    pub fn count(&self) -> usize {
        self.bits.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Whether no cell is set.
    pub fn is_empty(&self) -> bool {
        self.bits.iter().all(|&w| w == 0)
    }

    /// Iterates over set cells in row-major order.
    pub fn iter(&self) -> impl Iterator<Item = CellRef> + '_ {
        self.bits
            .iter()
            .enumerate()
            .flat_map(move |(w, &word)| {
                let mut word = word;
                std::iter::from_fn(move || {
                    if word == 0 {
                        return None;
                    }
                    let bit = word.trailing_zeros() as usize;
                    word &= word - 1;
                    Some(w * 64 + bit)
                })
            })
            .filter(move |&i| i < self.rows * self.cols)
            .map(move |i| CellRef::new(i / self.cols, i % self.cols))
    }

    /// Rows that contain at least one set cell.
    pub fn dirty_rows(&self) -> Vec<usize> {
        let mut rows: Vec<usize> = self.iter().map(|c| c.row).collect();
        rows.dedup();
        rows
    }

    /// Number of set cells within column `col`.
    pub fn count_col(&self, col: usize) -> usize {
        (0..self.rows).filter(|&r| self.get(r, col)).count()
    }

    fn check_dims(&self, other: &CellMask) {
        assert!(
            self.rows == other.rows && self.cols == other.cols,
            "mask dimension mismatch: {}x{} vs {}x{}",
            self.rows,
            self.cols,
            other.rows,
            other.cols
        );
    }

    /// Set union.
    pub fn union(&self, other: &CellMask) -> CellMask {
        self.check_dims(other);
        let bits = self.bits.iter().zip(&other.bits).map(|(a, b)| a | b).collect();
        CellMask { rows: self.rows, cols: self.cols, bits }
    }

    /// Set intersection.
    pub fn intersect(&self, other: &CellMask) -> CellMask {
        self.check_dims(other);
        let bits = self.bits.iter().zip(&other.bits).map(|(a, b)| a & b).collect();
        CellMask { rows: self.rows, cols: self.cols, bits }
    }

    /// Set difference (`self \ other`).
    pub fn difference(&self, other: &CellMask) -> CellMask {
        self.check_dims(other);
        let bits = self.bits.iter().zip(&other.bits).map(|(a, b)| a & !b).collect();
        CellMask { rows: self.rows, cols: self.cols, bits }
    }

    /// In-place union.
    pub fn union_with(&mut self, other: &CellMask) {
        self.check_dims(other);
        for (a, b) in self.bits.iter_mut().zip(&other.bits) {
            *a |= b;
        }
    }

    /// Restricts the mask to the given columns (clears all others).
    pub fn restrict_to_columns(&self, cols: &[usize]) -> CellMask {
        let mut m = CellMask::new(self.rows, self.cols);
        for c in self.iter() {
            if cols.contains(&c.col) {
                m.set(c.row, c.col, true);
            }
        }
        m
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_get_count() {
        let mut m = CellMask::new(3, 4);
        assert!(m.is_empty());
        m.set(0, 0, true);
        m.set(2, 3, true);
        assert!(m.get(0, 0));
        assert!(m.get(2, 3));
        assert!(!m.get(1, 1));
        assert_eq!(m.count(), 2);
        m.set(0, 0, false);
        assert_eq!(m.count(), 1);
    }

    #[test]
    fn full_mask_counts_all_cells() {
        let m = CellMask::full(5, 7);
        assert_eq!(m.count(), 35);
        assert!(m.get(4, 6));
    }

    #[test]
    fn iter_is_row_major_and_complete() {
        let mut m = CellMask::new(2, 3);
        m.set(1, 0, true);
        m.set(0, 2, true);
        let cells: Vec<CellRef> = m.iter().collect();
        assert_eq!(cells, vec![CellRef::new(0, 2), CellRef::new(1, 0)]);
    }

    #[test]
    fn iter_handles_word_boundary() {
        // 70 cells > one u64 word.
        let mut m = CellMask::new(7, 10);
        m.set(6, 9, true); // index 69, second word
        m.set(0, 0, true);
        assert_eq!(m.iter().count(), 2);
        assert_eq!(m.count(), 2);
    }

    #[test]
    fn set_algebra() {
        let mut a = CellMask::new(2, 2);
        a.set(0, 0, true);
        a.set(0, 1, true);
        let mut b = CellMask::new(2, 2);
        b.set(0, 1, true);
        b.set(1, 1, true);
        assert_eq!(a.union(&b).count(), 3);
        assert_eq!(a.intersect(&b).count(), 1);
        assert!(a.intersect(&b).get(0, 1));
        assert_eq!(a.difference(&b).count(), 1);
        assert!(a.difference(&b).get(0, 0));
        let mut c = a.clone();
        c.union_with(&b);
        assert_eq!(c, a.union(&b));
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn mismatched_dims_panic() {
        let _ = CellMask::new(2, 2).union(&CellMask::new(3, 2));
    }

    #[test]
    fn row_and_col_helpers() {
        let mut m = CellMask::new(3, 3);
        m.set_row(1, true);
        assert_eq!(m.count(), 3);
        m.set_col(0, true);
        assert_eq!(m.count(), 5);
        assert_eq!(m.count_col(0), 3);
        assert_eq!(m.dirty_rows(), vec![0, 1, 2]);
    }

    #[test]
    fn restrict_to_columns_clears_others() {
        let m = CellMask::full(2, 3).restrict_to_columns(&[1]);
        assert_eq!(m.count(), 2);
        assert!(m.get(0, 1) && m.get(1, 1));
        assert!(!m.get(0, 0));
    }

    #[test]
    fn from_cells_builder() {
        let m = CellMask::from_cells(2, 2, [CellRef::new(1, 1), CellRef::new(0, 0)]);
        assert_eq!(m.count(), 2);
        assert!(m.get(1, 1));
    }
}
