//! Approximate FD discovery (the paper's FDX-profiler substitute).
//!
//! FDX casts FD discovery as structure learning over noisy data. We keep the
//! spirit — tolerate a bounded violation rate instead of demanding exact
//! satisfaction — using the classical `g3` error: the minimum fraction of
//! rows whose removal makes the FD hold. Candidate LHSs are single columns
//! and column pairs; key-like determinants (almost-unique columns) are
//! rejected because they induce vacuous FDs that are useless as cleaning
//! signals.

use std::collections::BTreeMap;

use rein_data::Table;

use crate::fd::FunctionalDependency;

/// Configuration for FD discovery.
#[derive(Debug, Clone)]
pub struct DiscoveryConfig {
    /// Maximum tolerated g3 error for an FD to be reported.
    pub max_error: f64,
    /// Determinants with more than this fraction of distinct values are
    /// treated as keys and skipped.
    pub max_lhs_uniqueness: f64,
    /// Also try composite (two-column) determinants.
    pub composite_lhs: bool,
    /// Minimum average group size on the LHS; groups of one satisfy any FD
    /// vacuously.
    pub min_avg_group: f64,
}

impl Default for DiscoveryConfig {
    fn default() -> Self {
        Self { max_error: 0.02, max_lhs_uniqueness: 0.85, composite_lhs: false, min_avg_group: 1.5 }
    }
}

/// `g3` error of `lhs → rhs`: fraction of rows to delete so the FD holds.
///
/// For each LHS group, all rows except those with the group's most frequent
/// RHS value must be removed. Rows with NULL in LHS or RHS are skipped.
pub fn g3_error(table: &Table, lhs: &[usize], rhs: usize) -> f64 {
    let mut groups: BTreeMap<String, BTreeMap<String, usize>> = BTreeMap::new();
    let mut considered = 0usize;
    'rows: for r in 0..table.n_rows() {
        let rv = table.cell(r, rhs);
        if rv.is_null() {
            continue;
        }
        let mut key = String::new();
        for &c in lhs {
            let v = table.cell(r, c);
            if v.is_null() {
                continue 'rows;
            }
            key.push_str(&v.as_key());
            key.push('\u{1f}');
        }
        *groups.entry(key).or_default().entry(rv.as_key().into_owned()).or_insert(0) += 1;
        considered += 1;
    }
    if considered == 0 {
        return 0.0;
    }
    let keep: usize = groups.values().map(|m| m.values().copied().max().unwrap_or(0)).sum();
    (considered - keep) as f64 / considered as f64
}

fn distinct_fraction(table: &Table, cols: &[usize]) -> (f64, f64) {
    let mut groups: BTreeMap<String, usize> = BTreeMap::new();
    let mut n = 0usize;
    'rows: for r in 0..table.n_rows() {
        let mut key = String::new();
        for &c in cols {
            let v = table.cell(r, c);
            if v.is_null() {
                continue 'rows;
            }
            key.push_str(&v.as_key());
            key.push('\u{1f}');
        }
        *groups.entry(key).or_insert(0) += 1;
        n += 1;
    }
    if n == 0 {
        return (1.0, 0.0);
    }
    let uniq = groups.len() as f64 / n as f64;
    let avg_group = n as f64 / groups.len() as f64;
    (uniq, avg_group)
}

/// Discovers approximate FDs in a table.
///
/// Returns FDs ordered by ascending g3 error (most reliable first). Implied
/// duplicates are pruned: when `A → B` is reported, `(A, C) → B` is not.
pub fn discover_fds(table: &Table, config: &DiscoveryConfig) -> Vec<FunctionalDependency> {
    let n_cols = table.n_cols();
    let mut found: Vec<(FunctionalDependency, f64)> = Vec::new();

    let consider = |found: &mut Vec<(FunctionalDependency, f64)>, lhs: Vec<usize>, rhs: usize| {
        let (uniq, avg_group) = distinct_fraction(table, &lhs);
        if uniq > config.max_lhs_uniqueness || avg_group < config.min_avg_group {
            return;
        }
        let err = g3_error(table, &lhs, rhs);
        if err <= config.max_error {
            found.push((FunctionalDependency::new(lhs, rhs), err));
        }
    };

    for rhs in 0..n_cols {
        for a in 0..n_cols {
            if a == rhs {
                continue;
            }
            consider(&mut found, vec![a], rhs);
        }
    }

    if config.composite_lhs {
        // Only add composite FDs whose single-column projections were not
        // already accepted.
        let singles: Vec<(usize, usize)> = found
            .iter()
            .filter(|(fd, _)| fd.lhs.len() == 1)
            .map(|(fd, _)| (fd.lhs[0], fd.rhs))
            .collect();
        for rhs in 0..n_cols {
            for a in 0..n_cols {
                for b in a + 1..n_cols {
                    if a == rhs || b == rhs {
                        continue;
                    }
                    if singles.contains(&(a, rhs)) || singles.contains(&(b, rhs)) {
                        continue;
                    }
                    consider(&mut found, vec![a, b], rhs);
                }
            }
        }
    }

    found.sort_by(|x, y| x.1.total_cmp(&y.1).then_with(|| x.0.lhs.cmp(&y.0.lhs)));
    found.into_iter().map(|(fd, _)| fd).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rein_data::{ColumnMeta, ColumnType, Schema, Value};

    /// zip -> city holds, id is a key, noise column is random.
    fn table(noise_in_city: usize) -> Table {
        let schema = Schema::new(vec![
            ColumnMeta::new("id", ColumnType::Int),
            ColumnMeta::new("zip", ColumnType::Str),
            ColumnMeta::new("city", ColumnType::Str),
        ]);
        let zips = ["10115", "80331", "20095", "50667"];
        let cities = ["Berlin", "Munich", "Hamburg", "Cologne"];
        let mut rows = Vec::new();
        for i in 0..200usize {
            let z = i % 4;
            let city = if i < noise_in_city { "WRONG" } else { cities[z] };
            rows.push(vec![Value::Int(i as i64), Value::str(zips[z]), Value::str(city)]);
        }
        Table::from_rows(schema, rows)
    }

    #[test]
    fn g3_error_zero_on_exact_fd() {
        assert_eq!(g3_error(&table(0), &[1], 2), 0.0);
    }

    #[test]
    fn g3_error_counts_minimal_removals() {
        // 4 corrupted rows out of 200.
        let err = g3_error(&table(4), &[1], 2);
        assert!((err - 0.02).abs() < 1e-12, "err = {err}");
    }

    #[test]
    fn discovery_finds_zip_to_city() {
        let fds = discover_fds(&table(0), &DiscoveryConfig::default());
        assert!(fds.contains(&FunctionalDependency::new(vec![1usize], 2)));
        // And the reverse holds too (city -> zip) in this data.
        assert!(fds.contains(&FunctionalDependency::new(vec![2usize], 1)));
    }

    #[test]
    fn keys_are_not_determinants() {
        let fds = discover_fds(&table(0), &DiscoveryConfig::default());
        assert!(fds.iter().all(|fd| fd.lhs != vec![0]), "id must not determine anything");
    }

    #[test]
    fn noisy_fd_found_within_tolerance() {
        let cfg = DiscoveryConfig { max_error: 0.03, ..Default::default() };
        let fds = discover_fds(&table(4), &cfg);
        assert!(fds.contains(&FunctionalDependency::new(vec![1usize], 2)));
        let strict = DiscoveryConfig { max_error: 0.001, ..Default::default() };
        let fds = discover_fds(&table(4), &strict);
        assert!(!fds.contains(&FunctionalDependency::new(vec![1usize], 2)));
    }

    #[test]
    fn composite_lhs_only_when_singles_fail() {
        // c = f(a, b) but neither a nor b alone determines c.
        let schema = Schema::new(vec![
            ColumnMeta::new("a", ColumnType::Int),
            ColumnMeta::new("b", ColumnType::Int),
            ColumnMeta::new("c", ColumnType::Int),
        ]);
        let mut rows = Vec::new();
        for i in 0..120usize {
            let a = (i % 4) as i64;
            let b = ((i / 4) % 4) as i64;
            rows.push(vec![Value::Int(a), Value::Int(b), Value::Int(a * 10 + b)]);
        }
        let t = Table::from_rows(schema, rows);
        let cfg = DiscoveryConfig { composite_lhs: true, ..Default::default() };
        let fds = discover_fds(&t, &cfg);
        assert!(fds.contains(&FunctionalDependency::new(vec![0usize, 1], 2)));
        assert!(!fds.contains(&FunctionalDependency::new(vec![0usize], 2)));
    }

    #[test]
    fn nulls_are_ignored_in_g3() {
        let mut t = table(0);
        t.set_cell(0, 2, Value::Null);
        t.set_cell(1, 1, Value::Null);
        assert_eq!(g3_error(&t, &[1], 2), 0.0);
    }
}
