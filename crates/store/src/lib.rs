//! # rein-store
//!
//! The durable content-addressed cell-result store behind the grid's
//! crash-safe incremental execution (ROADMAP: "content-addressed
//! incremental evaluation"; DESIGN.md §6j).
//!
//! Results are keyed by the 16-hex FNV-1a-64 digest of a cell's
//! [`CellKey`] identity (`rein_core::cache_key`) and persisted under a
//! store root (conventionally `artifacts/store/`) as a **write-ahead
//! journal** of checksummed, length-prefixed, append-only records:
//!
//! ```text
//! file      := magic record*
//! magic     := "REINWAL1"                      (8 bytes)
//! record    := len:u32le checksum:u64le payload[len]
//! checksum  := FNV-1a-64 over the payload bytes
//! payload   := JSON of { key, coordinate, payload, aux }
//! ```
//!
//! A commit appends records and fsyncs, so a `kill -9` loses at most
//! the batch in flight. [`Store::open`] recovers: it scans each file,
//! verifies every checksum, truncates at the first torn or corrupt
//! record, and **quarantines** the bad bytes into `<root>/quarantine/`
//! with a structured `report.json` — never silent repair, because a
//! record that fails its checksum is evidence of a storage fault the
//! operator must see, and "fixing" it would hide exactly the corruption
//! a benchmark's provenance chain exists to surface. Recovery replays
//! the surviving records (duplicates resolve last-wins, so re-running
//! an interrupted grid is idempotent).
//!
//! When the active journal tail outgrows its rotation limit, open
//! compacts the full record set into a sealed `seg-NNNN.wal` segment
//! via the hardened atomic-write pattern ([`atomic_write`]: temp file +
//! fsync + rename + parent-directory fsync) and truncates the tail —
//! crash-safe at every step because the compacted segment is a
//! superset of what it replaces.
//!
//! All filesystem *reads* are confined to [`Store::open`]: the lookup
//! and commit paths used inside `Controller::run_grid` touch only the
//! in-memory index and the already-open journal handle, which keeps the
//! grid's `cache-key-completeness` purity certificate intact.

use std::collections::BTreeMap;
use std::fs::File;
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::Mutex;

use rein_ledger::fnv1a64;
use serde::{Deserialize, Serialize};

mod atomic;
mod writer;

pub use atomic::{atomic_write, fsync_dir};
pub use writer::StoreWriter;

/// Journal file magic: identifies the format and its version.
pub const MAGIC: &[u8; 8] = b"REINWAL1";

/// The active journal tail's file name inside the store root.
pub const JOURNAL_FILE: &str = "journal.wal";

/// Upper bound on one record's payload, rejecting absurd length
/// prefixes produced by corruption before they drive a huge allocation.
pub const MAX_RECORD_BYTES: u32 = 1 << 30;

/// Default rotation limit for the journal tail: once the tail exceeds
/// this many bytes at open, it is compacted into a sealed segment.
pub const DEFAULT_ROTATE_TAIL_BYTES: u64 = 1 << 20;

/// One stored cell result.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct StoredCell {
    /// The grid coordinate (`detect:…`, `repair:…#…`, `eval:…:…#…`).
    pub coordinate: String,
    /// The cell's serialized result — exactly the bytes
    /// `Controller::run_grid` puts in its cell map.
    pub payload: String,
    /// Auxiliary identity needed to key downstream cells without
    /// rehydrating the payload (for repair cells: the produced version's
    /// `content_identity`).
    pub aux: Option<String>,
}

/// One journal record: a [`StoredCell`] plus its content key.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Record {
    /// 16-hex FNV-1a-64 digest of the cell's `CellKey` identity.
    pub key: String,
    /// Grid coordinate.
    pub coordinate: String,
    /// Serialized cell result.
    pub payload: String,
    /// Auxiliary identity (see [`StoredCell::aux`]).
    pub aux: Option<String>,
}

/// One quarantined stretch of journal bytes.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct QuarantineEntry {
    /// Journal file name (relative to the store root).
    pub file: String,
    /// Byte offset where the bad record starts.
    pub offset: u64,
    /// Diagnosis: `bad-magic`, `torn-header`, `bad-length`,
    /// `torn-payload`, `checksum-mismatch` or `bad-payload`.
    pub reason: String,
    /// Quarantine blob file holding the removed bytes (relative to the
    /// store root).
    pub quarantined_as: String,
}

/// What one [`Store::open`] recovered.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct RecoveryReport {
    /// Records replayed into the in-memory index (before last-wins
    /// deduplication).
    pub replayed: u64,
    /// Bad stretches quarantined by this open.
    pub quarantined: Vec<QuarantineEntry>,
}

/// Where a [`CrashPoint`] fires relative to a record's durable append.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CrashPoint {
    /// Abort before the record reaches the journal (the cell is lost
    /// and recomputed on resume).
    Before,
    /// Abort after the record is appended and fsynced (the cell
    /// survives and is a hit on resume).
    After,
}

struct Inner {
    cells: BTreeMap<String, StoredCell>,
    journal: File,
}

/// The durable cell-result store. Cheap to share behind an `Arc`:
/// lookups and commits take an internal lock, and commits only happen
/// at the grid's sequential merge points.
pub struct Store {
    root: PathBuf,
    inner: Mutex<Inner>,
    recovery: RecoveryReport,
}

impl std::fmt::Debug for Store {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Store")
            .field("root", &self.root)
            .field("cells", &self.cell_count())
            .field("recovery", &self.recovery)
            .finish()
    }
}

impl Store {
    /// Opens (creating if needed) the store at `root`, running recovery
    /// and — when the journal tail outgrew [`DEFAULT_ROTATE_TAIL_BYTES`]
    /// — atomic segment rotation.
    pub fn open(root: impl Into<PathBuf>) -> std::io::Result<Store> {
        Self::open_with_rotation(root, DEFAULT_ROTATE_TAIL_BYTES)
    }

    /// [`Store::open`] with an explicit tail rotation limit (tests).
    pub fn open_with_rotation(
        root: impl Into<PathBuf>,
        rotate_tail: u64,
    ) -> std::io::Result<Store> {
        let root = root.into();
        std::fs::create_dir_all(&root)?;
        let mut report = RecoveryReport::default();
        let mut cells: BTreeMap<String, StoredCell> = BTreeMap::new();

        // Sealed segments first (oldest first), then the journal tail:
        // replay order is file order, and within a file record order, so
        // last-wins deduplication gives the newest committed value.
        let mut files = list_segments(&root)?;
        files.push(JOURNAL_FILE.to_string());
        for name in &files {
            recover_file(&root, name, &mut cells, &mut report)?;
        }

        // Atomic segment rotation: compact everything into a fresh
        // sealed segment, then truncate the tail. Crash-safe in every
        // interleaving — the compacted segment is a superset of the
        // files it replaces, and replay is last-wins idempotent.
        let journal_path = root.join(JOURNAL_FILE);
        let tail_len = std::fs::metadata(&journal_path).map(|m| m.len()).unwrap_or(0);
        if tail_len > rotate_tail && !cells.is_empty() {
            let next = 1 + list_segments(&root)?
                .iter()
                .filter_map(|n| segment_index(n))
                .max()
                .unwrap_or(0);
            let mut seg = Vec::from(&MAGIC[..]);
            for (key, cell) in &cells {
                let record = Record {
                    key: key.clone(),
                    coordinate: cell.coordinate.clone(),
                    payload: cell.payload.clone(),
                    aux: cell.aux.clone(),
                };
                append_frame(&mut seg, &record)?;
            }
            atomic_write(&root.join(format!("seg-{next:04}.wal")), &seg)?;
            atomic_write(&journal_path, MAGIC)?;
            for name in files.iter().filter(|n| *n != JOURNAL_FILE) {
                if segment_index(name).is_some_and(|i| i < next) {
                    let _ = std::fs::remove_file(root.join(name));
                }
            }
            fsync_dir(&root)?;
        } else if !journal_path.exists() {
            atomic_write(&journal_path, MAGIC)?;
        }

        if !report.quarantined.is_empty() {
            write_quarantine_report(&root, &report.quarantined)?;
        }

        let journal = std::fs::OpenOptions::new().append(true).open(&journal_path)?;
        rein_telemetry::counter("store_replayed").add(report.replayed);
        rein_telemetry::counter("store_quarantined").add(report.quarantined.len() as u64);
        Ok(Store { root, inner: Mutex::new(Inner { cells, journal }), recovery: report })
    }

    /// The store root directory.
    pub fn store_root(&self) -> &Path {
        &self.root
    }

    /// What this open's recovery replayed and quarantined.
    pub fn recovery(&self) -> &RecoveryReport {
        &self.recovery
    }

    /// Number of distinct cells currently in the index.
    pub fn cell_count(&self) -> usize {
        // audit:allow(panic, store lock poisoning only follows another panic)
        self.inner.lock().expect("store lock").cells.len()
    }

    /// Looks up a committed cell by its content key. Pure in-memory:
    /// no filesystem read happens outside [`Store::open`].
    pub fn lookup(&self, key: &str) -> Option<StoredCell> {
        // audit:allow(panic, store lock poisoning only follows another panic)
        self.inner.lock().expect("store lock").cells.get(key).cloned()
    }

    /// Commits every record staged in `writer` as one durable batch:
    /// the shards merge deterministically ([`StoreWriter::merge_shards`]),
    /// each record appends to the journal, and the batch fsyncs once.
    ///
    /// `crash` is the `REIN_CRASH` injection gate: when it returns a
    /// [`CrashPoint`] for a record's coordinate, the process aborts at
    /// exactly that commit point (after fsyncing what is already
    /// appended) — a faithful `kill -9` with no unwinding and no
    /// buffered-write flushing. Returns the number of records committed.
    pub fn commit_staged(
        &self,
        writer: &StoreWriter,
        crash: &dyn Fn(&str) -> Option<CrashPoint>,
    ) -> std::io::Result<usize> {
        let records = writer.merge_shards();
        if records.is_empty() {
            return Ok(0);
        }
        // audit:allow(panic, store lock poisoning only follows another panic)
        let mut inner = self.inner.lock().expect("store lock");
        let mut committed = 0usize;
        for record in records {
            let point = crash(&record.coordinate);
            if matches!(point, Some(CrashPoint::Before)) {
                inner.journal.sync_data()?;
                std::process::abort();
            }
            let mut frame = Vec::new();
            append_frame(&mut frame, &record)?;
            inner.journal.write_all(&frame)?;
            if matches!(point, Some(CrashPoint::After)) {
                inner.journal.sync_data()?;
                std::process::abort();
            }
            inner.cells.insert(
                record.key,
                StoredCell {
                    coordinate: record.coordinate,
                    payload: record.payload,
                    aux: record.aux,
                },
            );
            committed += 1;
        }
        inner.journal.sync_data()?;
        rein_telemetry::counter("store_commits").add(committed as u64);
        Ok(committed)
    }

    /// Convenience single-record commit (no crash injection).
    pub fn commit_one(
        &self,
        key: &str,
        coordinate: &str,
        payload: &str,
        aux: Option<&str>,
    ) -> std::io::Result<()> {
        let staged = StoreWriter::with_shards(1);
        staged.stage(key, coordinate, payload, aux);
        self.commit_staged(&staged, &|_| None).map(|_| ())
    }

    /// Path of the cumulative quarantine report.
    pub fn quarantine_report_path(root: &Path) -> PathBuf {
        root.join("quarantine").join("report.json")
    }
}

/// Sealed segment file names under `root`, sorted (oldest first).
fn list_segments(root: &Path) -> std::io::Result<Vec<String>> {
    let mut out = Vec::new();
    for entry in std::fs::read_dir(root)? {
        let name = entry?.file_name().to_string_lossy().into_owned();
        if segment_index(&name).is_some() {
            out.push(name);
        }
    }
    out.sort();
    Ok(out)
}

/// `seg-0007.wal` → `Some(7)`.
fn segment_index(name: &str) -> Option<u64> {
    name.strip_prefix("seg-")?.strip_suffix(".wal")?.parse().ok()
}

/// Serializes one record into the journal frame format, appending to
/// `out`.
fn append_frame(out: &mut Vec<u8>, record: &Record) -> std::io::Result<()> {
    let payload = serde_json::to_string(record)
        .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))?;
    let bytes = payload.as_bytes();
    if bytes.len() as u64 > MAX_RECORD_BYTES as u64 {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            format!("record payload of {} bytes exceeds MAX_RECORD_BYTES", bytes.len()),
        ));
    }
    out.extend_from_slice(&(bytes.len() as u32).to_le_bytes());
    out.extend_from_slice(&fnv1a64(bytes).to_le_bytes());
    out.extend_from_slice(bytes);
    Ok(())
}

/// Recovers one journal file: replays the good prefix into `cells`,
/// quarantines the bad suffix (if any) and truncates the file back to
/// its good prefix via the atomic-write pattern.
fn recover_file(
    root: &Path,
    name: &str,
    cells: &mut BTreeMap<String, StoredCell>,
    report: &mut RecoveryReport,
) -> std::io::Result<()> {
    let path = root.join(name);
    let bytes = match std::fs::read(&path) {
        Ok(b) => b,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(()),
        Err(e) => return Err(e),
    };
    if bytes.is_empty() {
        return Ok(());
    }
    let scan = scan_file(&bytes);
    for record in scan.records {
        report.replayed += 1;
        cells.insert(
            record.key,
            StoredCell { coordinate: record.coordinate, payload: record.payload, aux: record.aux },
        );
    }
    if let Some((offset, reason)) = scan.bad {
        let blob_name = format!("quarantine/{name}.{offset}.bin");
        atomic_write(&root.join(&blob_name), &bytes[offset..])?;
        report.quarantined.push(QuarantineEntry {
            file: name.to_string(),
            offset: offset as u64,
            reason: reason.to_string(),
            quarantined_as: blob_name,
        });
        // Truncate back to the good prefix — atomically, so a crash
        // mid-recovery cannot make things worse. An all-bad file (bad
        // magic) resets to a fresh empty journal.
        let good = if scan.good_len >= MAGIC.len() { &bytes[..scan.good_len] } else { &MAGIC[..] };
        atomic_write(&path, good)?;
    }
    Ok(())
}

/// Outcome of scanning one journal file's bytes.
struct ScanOutcome {
    records: Vec<Record>,
    /// Byte length of the valid prefix (including magic).
    good_len: usize,
    /// First bad stretch: (offset, reason). Everything from `offset` on
    /// is untrustworthy — a corrupt length prefix poisons all later
    /// framing — so recovery truncates here.
    bad: Option<(usize, &'static str)>,
}

/// The recovery state machine over one file's bytes (DESIGN.md §6j):
/// validate magic, then walk frames; stop at the first torn or corrupt
/// record.
fn scan_file(bytes: &[u8]) -> ScanOutcome {
    if bytes.len() < MAGIC.len() || &bytes[..MAGIC.len()] != MAGIC {
        return ScanOutcome { records: Vec::new(), good_len: 0, bad: Some((0, "bad-magic")) };
    }
    let mut records = Vec::new();
    let mut offset = MAGIC.len();
    while offset < bytes.len() {
        let remaining = bytes.len() - offset;
        if remaining < 12 {
            return ScanOutcome { records, good_len: offset, bad: Some((offset, "torn-header")) };
        }
        // The 4- and 8-byte reads are bounds-checked by the
        // `remaining >= 12` guard above.
        let mut word = [0u8; 4];
        word.copy_from_slice(&bytes[offset..offset + 4]);
        let len = u32::from_le_bytes(word);
        let mut sum = [0u8; 8];
        sum.copy_from_slice(&bytes[offset + 4..offset + 12]);
        let checksum = u64::from_le_bytes(sum);
        if len > MAX_RECORD_BYTES {
            return ScanOutcome { records, good_len: offset, bad: Some((offset, "bad-length")) };
        }
        if remaining - 12 < len as usize {
            return ScanOutcome { records, good_len: offset, bad: Some((offset, "torn-payload")) };
        }
        let payload = &bytes[offset + 12..offset + 12 + len as usize];
        if fnv1a64(payload) != checksum {
            return ScanOutcome {
                records,
                good_len: offset,
                bad: Some((offset, "checksum-mismatch")),
            };
        }
        match serde_json::from_slice::<Record>(payload) {
            Ok(record) => records.push(record),
            // A checksum-valid but unparsable payload means writer
            // version skew or a writer bug — quarantine, never guess.
            Err(_) => {
                return ScanOutcome {
                    records,
                    good_len: offset,
                    bad: Some((offset, "bad-payload")),
                }
            }
        }
        offset += 12 + len as usize;
    }
    ScanOutcome { records, good_len: bytes.len(), bad: None }
}

/// Merges this recovery's quarantine entries into the cumulative
/// structured report at `quarantine/report.json` (atomic rewrite).
fn write_quarantine_report(root: &Path, fresh: &[QuarantineEntry]) -> std::io::Result<()> {
    let path = Store::quarantine_report_path(root);
    let mut entries: Vec<QuarantineEntry> = match std::fs::read_to_string(&path) {
        Ok(text) => serde_json::from_str(&text).unwrap_or_default(),
        Err(_) => Vec::new(),
    };
    for entry in fresh {
        if !entries.iter().any(|e| e.file == entry.file && e.offset == entry.offset) {
            entries.push(entry.clone());
        }
    }
    let json = serde_json::to_string_pretty(&entries)
        .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))?;
    atomic_write(&path, json.as_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_root(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("rein-store-{name}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn no_crash(_: &str) -> Option<CrashPoint> {
        None
    }

    #[test]
    fn commit_then_reopen_replays_every_cell() {
        let root = tmp_root("roundtrip");
        {
            let store = Store::open(&root).unwrap();
            assert_eq!(store.cell_count(), 0);
            let w = StoreWriter::with_shards(4);
            w.stage("aaaa", "detect:raha", "mask-bytes", None);
            w.stage("bbbb", "repair:mm#raha", "csv\nmask\nrowmap", Some("v:0123"));
            assert_eq!(store.commit_staged(&w, &no_crash).unwrap(), 2);
            assert_eq!(store.lookup("aaaa").unwrap().payload, "mask-bytes");
        }
        let store = Store::open(&root).unwrap();
        assert_eq!(store.cell_count(), 2);
        assert_eq!(store.recovery().replayed, 2);
        assert!(store.recovery().quarantined.is_empty());
        let cell = store.lookup("bbbb").unwrap();
        assert_eq!(cell.coordinate, "repair:mm#raha");
        assert_eq!(cell.aux.as_deref(), Some("v:0123"));
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn duplicate_keys_replay_last_wins() {
        let root = tmp_root("lastwins");
        {
            let store = Store::open(&root).unwrap();
            store.commit_one("k", "detect:a", "old", None).unwrap();
            store.commit_one("k", "detect:a", "new", None).unwrap();
        }
        let store = Store::open(&root).unwrap();
        assert_eq!(store.cell_count(), 1);
        assert_eq!(store.lookup("k").unwrap().payload, "new");
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn torn_tail_is_quarantined_and_truncated() {
        let root = tmp_root("torn");
        {
            let store = Store::open(&root).unwrap();
            store.commit_one("k1", "detect:a", "good", None).unwrap();
        }
        // Simulate a torn append: a partial frame at the tail.
        let path = root.join(JOURNAL_FILE);
        let mut bytes = std::fs::read(&path).unwrap();
        let good_len = bytes.len();
        bytes.extend_from_slice(&[7, 0, 0, 0, 1, 2]); // 6 bytes < 12-byte header
        std::fs::write(&path, &bytes).unwrap();

        let store = Store::open(&root).unwrap();
        assert_eq!(store.cell_count(), 1, "the good record survives");
        let q = &store.recovery().quarantined;
        assert_eq!(q.len(), 1);
        assert_eq!(q[0].reason, "torn-header");
        assert_eq!(q[0].offset, good_len as u64);
        assert_eq!(std::fs::read(&path).unwrap().len(), good_len, "tail truncated");
        // The quarantined bytes and the structured report exist.
        assert!(root.join(&q[0].quarantined_as).exists());
        let report: Vec<QuarantineEntry> = serde_json::from_str(
            &std::fs::read_to_string(Store::quarantine_report_path(&root)).unwrap(),
        )
        .unwrap();
        assert_eq!(report, *q);
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn rotation_compacts_into_a_sealed_segment() {
        let root = tmp_root("rotate");
        {
            let store = Store::open(&root).unwrap();
            for i in 0..20 {
                store.commit_one(&format!("k{i}"), &format!("detect:d{i}"), "x", None).unwrap();
            }
        }
        // Tiny rotation limit forces compaction on reopen.
        let store = Store::open_with_rotation(&root, 16).unwrap();
        assert_eq!(store.cell_count(), 20);
        let segs = list_segments(&root).unwrap();
        assert_eq!(segs, vec!["seg-0001.wal".to_string()]);
        let tail = std::fs::read(root.join(JOURNAL_FILE)).unwrap();
        assert_eq!(tail, MAGIC, "tail truncated to a fresh journal");
        // Everything still replays from the sealed segment.
        let again = Store::open(&root).unwrap();
        assert_eq!(again.cell_count(), 20);
        assert_eq!(again.lookup("k7").unwrap().coordinate, "detect:d7");
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn scan_rejects_oversized_length_prefixes_without_allocating() {
        let mut bytes = Vec::from(&MAGIC[..]);
        bytes.extend_from_slice(&u32::MAX.to_le_bytes());
        bytes.extend_from_slice(&0u64.to_le_bytes());
        bytes.extend_from_slice(b"garbage");
        let scan = scan_file(&bytes);
        assert!(scan.records.is_empty());
        assert_eq!(scan.bad, Some((MAGIC.len(), "bad-length")));
    }

    #[test]
    fn bad_magic_quarantines_the_whole_file() {
        let root = tmp_root("badmagic");
        std::fs::create_dir_all(&root).unwrap();
        std::fs::write(root.join(JOURNAL_FILE), b"NOTAWAL!rest").unwrap();
        let store = Store::open(&root).unwrap();
        assert_eq!(store.cell_count(), 0);
        let q = &store.recovery().quarantined;
        assert_eq!(q.len(), 1);
        assert_eq!((q[0].offset, q[0].reason.as_str()), (0, "bad-magic"));
        assert_eq!(std::fs::read(root.join(JOURNAL_FILE)).unwrap(), MAGIC);
        let _ = std::fs::remove_dir_all(&root);
    }
}
