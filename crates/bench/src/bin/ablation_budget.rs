//! Ablation: ML-supported detectors vs labelling budget.
//!
//! RAHA, ED2 and the metadata-driven method all trade oracle labels for
//! accuracy; this harness sweeps the label budget on the Beers dataset and
//! reports each method's F1 and the labels it actually consumed.

// Benchmark bins emit their report tables on stdout by design.
#![allow(clippy::print_stdout)]

use rein_bench::{conclude, dataset, f, header, phase};
use rein_datasets::DatasetId;
use rein_detect::{DetectContext, DetectorKind, KnowledgeBase, Oracle};
use rein_stats::evaluate_detection;

fn main() {
    let setup = phase("setup");
    let ds = dataset(DatasetId::Beers, 13);
    header("Ablation — ML-supported detector F1 vs labelling budget (beers)");
    let budgets = [10usize, 20, 50, 100, 200, 400];
    println!("{:<18} {}", "detector", budgets.map(|b| format!("{b:>8}")).join(""));
    let kb = KnowledgeBase::from_reference(&ds.clean);
    drop(setup);
    let policy = rein_bench::guard_policy();
    let sweep = phase("sweep");
    for kind in [DetectorKind::Raha, DetectorKind::Ed2, DetectorKind::MetadataDriven] {
        print!("{:<18}", kind.name());
        for &budget in &budgets {
            let oracle = Oracle::new(ds.mask.clone());
            let ctx = DetectContext {
                dirty: &ds.dirty,
                fds: &ds.fds,
                dcs: &[],
                kb: Some(&kb),
                key_columns: &ds.key_columns,
                oracle: Some(&oracle),
                label_col: ds.clean.schema().label_index(),
                labeling_budget: budget,
                seed: 5,
            };
            let (outcome, _) = rein_core::detect_with_context(kind, &ctx, &ds.info.name, &policy);
            let mask = outcome
                .unwrap_or_else(|_| rein_data::CellMask::new(ds.dirty.n_rows(), ds.dirty.n_cols()));
            let q = evaluate_detection(&mask, &ds.mask);
            print!("{:>8}", f(q.f1));
        }
        println!();
    }
    drop(sweep);
    let report = phase("report");
    println!("\n(RAHA's per-cluster labelling keeps its budget per column; ED2's");
    println!("active learning and the metadata-driven classifier consume the");
    println!("global budget directly.)");
    drop(report);
    conclude("ablation_budget", 13, 400);
}
