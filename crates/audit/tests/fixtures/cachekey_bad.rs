//! Negative fixture: ambient reads (environment + global state) reach
//! the `Controller::run_grid` entry point through helpers.

static DRAWS: u64 = 7;

pub struct Controller;

impl Controller {
    pub fn run_grid(&self) -> u64 {
        let spec = helper();
        spec + tally()
    }
}

fn helper() -> u64 {
    std::env::var("REIN_SCALE").map(|v| v.len() as u64).unwrap_or(0)
}

fn tally() -> u64 {
    DRAWS
}
