//! Keyboard-realistic typo injection (the `error-generator` library's
//! signature feature): neighbouring-key substitutions, transpositions,
//! drops and duplications. Applied to numeric cells a typo yields a string,
//! reproducing the type-shift effect the paper discusses (numeric columns
//! "converted" to categorical by typos).

use rand::prelude::*;
use rand::rngs::StdRng;
use rein_data::{CellMask, Table, Value};

use crate::common::{cells_of_columns, pick_cells, Injection};

/// QWERTY adjacency used for realistic substitutions.
fn neighbours(c: char) -> &'static str {
    match c.to_ascii_lowercase() {
        'q' => "wa",
        'w' => "qes",
        'e' => "wrd",
        'r' => "etf",
        't' => "ryg",
        'y' => "tuh",
        'u' => "yij",
        'i' => "uok",
        'o' => "ipl",
        'p' => "o",
        'a' => "qsz",
        's' => "awdx",
        'd' => "sefc",
        'f' => "drgv",
        'g' => "fthb",
        'h' => "gyjn",
        'j' => "hukm",
        'k' => "jil",
        'l' => "ko",
        'z' => "asx",
        'x' => "zsdc",
        'c' => "xdfv",
        'v' => "cfgb",
        'b' => "vghn",
        'n' => "bhjm",
        'm' => "njk",
        '0' => "19",
        '1' => "02",
        '2' => "13",
        '3' => "24",
        '4' => "35",
        '5' => "46",
        '6' => "57",
        '7' => "68",
        '8' => "79",
        '9' => "80",
        _ => "",
    }
}

/// The four typo mechanisms.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum TypoKind {
    Substitute,
    Transpose,
    Drop,
    Duplicate,
}

/// Applies one random typo to `s`. Returns `None` when no typo is possible
/// (empty string, or single char for transposition).
fn apply_typo(s: &str, rng: &mut StdRng) -> Option<String> {
    let chars: Vec<char> = s.chars().collect();
    if chars.is_empty() {
        return None;
    }
    let kinds = [TypoKind::Substitute, TypoKind::Transpose, TypoKind::Drop, TypoKind::Duplicate];
    // Try kinds in random order until one applies.
    let mut order = kinds.to_vec();
    order.shuffle(rng);
    for kind in order {
        let pos = rng.random_range(0..chars.len());
        let mut out = chars.clone();
        match kind {
            TypoKind::Substitute => {
                let ns = neighbours(chars[pos]);
                if ns.is_empty() {
                    continue;
                }
                // audit:allow(panic, ns checked non-empty before indexing)
                let repl = ns.chars().nth(rng.random_range(0..ns.len())).expect("non-empty");
                let repl =
                    if chars[pos].is_ascii_uppercase() { repl.to_ascii_uppercase() } else { repl };
                if repl == chars[pos] {
                    continue;
                }
                out[pos] = repl;
            }
            TypoKind::Transpose => {
                if chars.len() < 2 {
                    continue;
                }
                let p = pos.min(chars.len() - 2);
                if out[p] == out[p + 1] {
                    continue;
                }
                out.swap(p, p + 1);
            }
            TypoKind::Drop => {
                if chars.len() < 2 {
                    continue; // dropping the only char yields empty = NULL
                }
                out.remove(pos);
            }
            TypoKind::Duplicate => {
                out.insert(pos, chars[pos]);
            }
        }
        let result: String = out.into_iter().collect();
        if result != s {
            return Some(result);
        }
    }
    None
}

/// Applies a single random typo to a string; `None` when impossible.
/// Exposed for the duplicate injector's fuzzing.
pub fn fuzz_once(s: &str, rng: &mut StdRng) -> Option<String> {
    apply_typo(s, rng)
}

/// Injects keyboard typos into `rate` of the non-null cells of `cols`.
///
/// The corrupted value is always stored as a **string**, so typos in
/// numeric columns shift the cell's type, as in the paper's setup.
pub fn inject_typos(table: &Table, cols: &[usize], rate: f64, seed: u64) -> Injection {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut out = table.clone();
    let mut mask = CellMask::new(table.n_rows(), table.n_cols());
    for cell in pick_cells(&cells_of_columns(table, cols), rate, &mut rng) {
        let original = table.cell(cell.row, cell.col).to_string();
        if let Some(typo) = apply_typo(&original, &mut rng) {
            // Guard against the typo'd string parsing back to (numerically)
            // the same value — e.g. "5.0" -> "5.00", or a digit typo deep in
            // a float's mantissa that falls below the diff tolerance and
            // would be an error no ground-truth diff can see.
            if Value::parse(&typo)
                .approx_eq(table.cell(cell.row, cell.col), rein_data::diff::NUMERIC_TOL)
            {
                continue;
            }
            out.set_cell(cell.row, cell.col, Value::str(typo));
            mask.set(cell.row, cell.col, true);
        }
    }
    Injection { table: out, cells: mask }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rein_data::diff::diff_mask;
    use rein_data::{ColumnMeta, ColumnType, Schema};

    fn table() -> Table {
        let schema = Schema::new(vec![
            ColumnMeta::new("name", ColumnType::Str),
            ColumnMeta::new("x", ColumnType::Float),
        ]);
        Table::from_rows(
            schema,
            (0..50)
                .map(|i| vec![Value::str(format!("product{i}")), Value::Float(10.0 + i as f64)])
                .collect(),
        )
    }

    #[test]
    fn typo_changes_string() {
        let mut rng = StdRng::seed_from_u64(1);
        for s in ["hello", "Pale Ale", "x", "12345"] {
            let t = apply_typo(s, &mut rng).unwrap();
            assert_ne!(t, s);
        }
    }

    #[test]
    fn empty_string_yields_no_typo() {
        let mut rng = StdRng::seed_from_u64(1);
        assert!(apply_typo("", &mut rng).is_none());
    }

    #[test]
    fn injected_cells_differ_and_mask_matches_diff() {
        let t = table();
        let inj = inject_typos(&t, &[0], 0.2, 7);
        assert!(inj.cells.count() >= 8, "count = {}", inj.cells.count());
        assert_eq!(diff_mask(&t, &inj.table), inj.cells);
    }

    #[test]
    fn typos_on_numeric_columns_type_shift() {
        let t = table();
        let inj = inject_typos(&t, &[1], 0.3, 3);
        assert!(!inj.cells.is_empty());
        let mut shifted = 0;
        for c in inj.cells.iter() {
            if matches!(inj.table.cell(c.row, c.col), Value::Str(_)) {
                shifted += 1;
            }
        }
        // All corrupted cells are stored as strings.
        assert_eq!(shifted, inj.cells.count());
    }

    #[test]
    fn deterministic_by_seed() {
        let t = table();
        assert_eq!(inject_typos(&t, &[0], 0.2, 5).table, inject_typos(&t, &[0], 0.2, 5).table);
    }
}
