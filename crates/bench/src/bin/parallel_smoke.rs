//! Parallel-determinism smoke test: runs the full S1–S5 benchmark grid
//! (detection → repair → scenario evaluation) under scoped rayon pools
//! of 1, 4 and N worker threads in one process, and asserts that every
//! serialized grid cell is byte-identical across the three runs.
//!
//! This is the runtime half of the parallel-grid certification: the
//! static half is `rein-audit`'s `par-*` rule family, which proves the
//! sharded code derives seeds per cell, merges through registered
//! combiners, and shares no unsynchronized state. The smoke test closes
//! the loop chaos-style — if any worker-count-dependent behaviour slips
//! past the analyzer, the byte comparison catches it here.
//!
//! Exit codes: `0` on success, `4` when any cell differs between thread
//! counts, `5` when a run degraded cells (the grid must be fault-free
//! under the default policy), `2` for a bad environment.

// Benchmark bins emit their report tables on stdout by design.
#![allow(clippy::print_stdout)]

use std::collections::BTreeMap;

use rein_bench::{conclude, dataset, dump_cells, header, phase, worker_threads};
use rein_core::{Controller, Scenario};
use rein_datasets::{DatasetId, GeneratedDataset};

const SEED: u64 = 31;
const LABEL_BUDGET: usize = 50;
const REPEATS: usize = 1;

/// Runs the S1–S5 grid inside a scoped pool of exactly `threads`
/// workers and returns the serialized cells. Telemetry is reset first
/// so each run's failure set stands alone.
fn grid_at(threads: usize, ds: &GeneratedDataset) -> BTreeMap<String, String> {
    rein_telemetry::reset();
    let run = phase(&format!("grid-{threads}"));
    let pool = match rayon::ThreadPoolBuilder::new().num_threads(threads).build() {
        Ok(p) => p,
        Err(e) => {
            eprintln!("error: cannot build a {threads}-thread pool: {e}");
            std::process::exit(2);
        }
    };
    let ctrl = Controller { label_budget: LABEL_BUDGET, seed: SEED, ..Controller::default() };
    let cells = pool.install(|| ctrl.run_grid(ds, &Scenario::ALL, REPEATS));
    drop(run);
    let failures = rein_telemetry::failures_snapshot();
    if !failures.is_empty() {
        eprintln!("error: the {threads}-thread run degraded {} cell(s):", failures.len());
        for f in &failures {
            eprintln!("  {}:{}@{}#{} -> {}", f.phase, f.strategy, f.dataset, f.scope, f.cause);
        }
        std::process::exit(5);
    }
    cells
}

/// Reports the cells that differ between two runs; returns their count.
fn diff(
    label: &str,
    reference: &BTreeMap<String, String>,
    other: &BTreeMap<String, String>,
) -> usize {
    let mut diverged = 0usize;
    for (key, bytes) in reference {
        match other.get(key) {
            Some(b) if b == bytes => {}
            Some(_) => {
                eprintln!("error: cell {key} diverged at {label}");
                diverged += 1;
            }
            None => {
                eprintln!("error: cell {key} missing at {label}");
                diverged += 1;
            }
        }
    }
    for key in other.keys() {
        if !reference.contains_key(key) {
            eprintln!("error: extra cell {key} at {label}");
            diverged += 1;
        }
    }
    diverged
}

fn main() {
    let setup = phase("setup");
    let dump_path = match parse_args() {
        Ok(p) => p,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    };
    let ds = dataset(DatasetId::BreastCancer, SEED);
    drop(setup);

    header("Parallel smoke — S1–S5 grid byte-identity across pool widths");
    println!("dataset: {} ({} rows)", ds.info.name, ds.dirty.n_rows());

    // 1, 4, and the configured width (REIN_THREADS or the machine's
    // core count) — deduplicated, reference first.
    let native = worker_threads() as usize;
    let mut widths = vec![1usize, 4, native];
    widths.sort_unstable();
    widths.dedup();
    println!("pool widths: {widths:?} (native {native})");

    let reference = grid_at(widths[0], &ds);
    println!("{} cell(s) at {} thread(s)", reference.len(), widths[0]);
    if let Some(path) = &dump_path {
        match dump_cells(path, &reference) {
            Ok(()) => println!("cells dump: {}", path.display()),
            Err(e) => {
                eprintln!("error: cannot write {}: {e}", path.display());
                std::process::exit(2);
            }
        }
    }

    let compare = phase("compare");
    let mut diverged = 0usize;
    for &w in &widths[1..] {
        let cells = grid_at(w, &ds);
        let label = format!("{w} thread(s) vs {}", widths[0]);
        diverged += diff(&label, &reference, &cells);
        if diverged == 0 {
            println!("{} cell(s) byte-identical at {label}", cells.len());
        }
    }
    drop(compare);

    if diverged > 0 {
        eprintln!("error: {diverged} cell(s) depend on the worker-thread count");
        std::process::exit(4);
    }
    println!("\ngrid is worker-count invariant across {widths:?} threads");
    conclude("parallel_smoke", SEED, LABEL_BUDGET as u64);
}

/// Parses the binary's arguments: only `--dump-cells PATH` is accepted.
fn parse_args() -> Result<Option<std::path::PathBuf>, String> {
    let mut args = std::env::args().skip(1);
    let mut dump = None;
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--dump-cells" => {
                let path = args.next().ok_or("--dump-cells needs a PATH argument")?;
                dump = Some(std::path::PathBuf::from(path));
            }
            other => return Err(format!("unknown argument {other:?}")),
        }
    }
    Ok(dump)
}
