//! Fixture-based tests for the semantic (call-graph) rules: each rule
//! has a negative fixture it must flag and a positive fixture it must
//! pass.
//!
//! Unlike the token rules, semantic rules see the *whole workspace* at
//! once, so a fixture here is an assembly of `(virtual path, file)`
//! pairs — e.g. toolbox parity needs a registry lib.rs, modules, a
//! bench binary and a test in one model.

use std::path::Path;

use rein_audit::{analyze, Violation, WorkspaceModel};

/// Parses the named fixtures under their virtual workspace paths and
/// runs the semantic pass.
fn analyze_assembly(files: &[(&str, &str)]) -> Vec<Violation> {
    let sources: Vec<(String, String)> = files
        .iter()
        .map(|(fixture, vpath)| {
            let path = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures").join(fixture);
            let source = std::fs::read_to_string(&path)
                .unwrap_or_else(|e| panic!("read {}: {e}", path.display()));
            (vpath.to_string(), source)
        })
        .collect();
    let model = WorkspaceModel::build(&sources);
    let errors = model.parse_errors();
    assert!(errors.is_empty(), "fixtures must parse cleanly: {errors:?}");
    analyze(&model).violations
}

fn of_rule<'a>(violations: &'a [Violation], rule: &str) -> Vec<&'a Violation> {
    violations.iter().filter(|v| v.rule == rule).collect()
}

#[test]
fn seed_provenance_flags_literals_and_interprocedural_sinks() {
    let violations = analyze_assembly(&[("seed_provenance_bad.rs", "crates/ml/src/fixture.rs")]);
    let hits = of_rule(&violations, "seed-provenance");
    // One direct literal construction plus one literal into a seed-sink
    // parameter of `make_rng`.
    assert_eq!(hits.len(), 2, "got {violations:?}");
    assert!(hits.iter().any(|v| v.message.contains("seed_from_u64")), "got {hits:?}");
    assert!(hits.iter().any(|v| v.message.contains("make_rng")), "got {hits:?}");
}

#[test]
fn seed_provenance_accepts_parameter_threading() {
    let violations = analyze_assembly(&[("seed_provenance_ok.rs", "crates/ml/src/fixture.rs")]);
    assert!(of_rule(&violations, "seed-provenance").is_empty(), "got {violations:?}");
}

#[test]
fn seed_provenance_is_scoped_to_library_code() {
    // The same source is fine in a test-support path: tests pin seeds.
    let violations = analyze_assembly(&[("seed_provenance_bad.rs", "crates/ml/tests/fixture.rs")]);
    assert!(of_rule(&violations, "seed-provenance").is_empty(), "got {violations:?}");
}

#[test]
fn split_leakage_flags_test_partition_into_fit() {
    let violations = analyze_assembly(&[("split_leakage_bad.rs", "crates/ml/src/fixture.rs")]);
    let hits = of_rule(&violations, "split-leakage");
    // Direct `x_test` into fit, plus the `holdout` rebinding of `xte`.
    assert_eq!(hits.len(), 2, "got {violations:?}");
    assert!(hits.iter().any(|v| v.message.contains("x_test")), "got {hits:?}");
}

#[test]
fn split_leakage_accepts_train_fit_test_predict() {
    let violations = analyze_assembly(&[("split_leakage_ok.rs", "crates/ml/src/fixture.rs")]);
    assert!(of_rule(&violations, "split-leakage").is_empty(), "got {violations:?}");
}

/// The shared part of the toolbox assemblies: a registered module, the
/// core toolbox, a bench binary and a test that exercise it.
const TOOLBOX_COMMON: [(&str, &str); 4] = [
    ("toolbox_mod_good.rs", "crates/detect/src/good.rs"),
    ("toolbox_core_toolbox.rs", "crates/core/src/toolbox.rs"),
    ("toolbox_bench_bin.rs", "crates/bench/src/bin/fixture_grid.rs"),
    ("toolbox_test.rs", "crates/detect/tests/fixture.rs"),
];

#[test]
fn toolbox_parity_flags_unregistered_unreached_module() {
    let mut files = vec![
        ("toolbox_lib_bad.rs", "crates/detect/src/lib.rs"),
        ("toolbox_mod_orphan.rs", "crates/detect/src/orphan.rs"),
    ];
    files.extend(TOOLBOX_COMMON);
    let violations = analyze_assembly(&files);
    let hits = of_rule(&violations, "toolbox-parity");
    // `orphan` misses registration, bench reachability and test
    // reachability — three findings, all anchored on its declaration.
    assert_eq!(hits.len(), 3, "got {violations:?}");
    assert!(hits.iter().all(|v| v.message.contains("`orphan`")), "got {hits:?}");
    assert!(hits.iter().all(|v| v.path == "crates/detect/src/lib.rs"), "got {hits:?}");
}

#[test]
fn toolbox_parity_accepts_fully_wired_module() {
    let mut files = vec![("toolbox_lib_ok.rs", "crates/detect/src/lib.rs")];
    files.extend(TOOLBOX_COMMON);
    let violations = analyze_assembly(&files);
    assert!(of_rule(&violations, "toolbox-parity").is_empty(), "got {violations:?}");
}

#[test]
fn toolbox_parity_requires_toolbox_registry_imports() {
    // Without crates/core/src/toolbox.rs the grid cannot be enumerated.
    let violations = analyze_assembly(&[
        ("toolbox_lib_ok.rs", "crates/detect/src/lib.rs"),
        ("toolbox_mod_good.rs", "crates/detect/src/good.rs"),
        ("toolbox_bench_bin.rs", "crates/bench/src/bin/fixture_grid.rs"),
        ("toolbox_test.rs", "crates/detect/tests/fixture.rs"),
    ]);
    let hits = of_rule(&violations, "toolbox-parity");
    assert!(hits.iter().any(|v| v.message.contains("toolbox.rs is missing")), "got {violations:?}");
}

#[test]
fn panic_reachability_flags_public_api_over_transitive_panic() {
    let violations = analyze_assembly(&[("panic_reach_bad.rs", "crates/data/src/fixture.rs")]);
    let hits = of_rule(&violations, "panic-reachability");
    assert_eq!(hits.len(), 1, "got {violations:?}");
    assert!(hits[0].message.contains("normalized_head"), "got {hits:?}");
    // The finding names the concrete panic site it can reach.
    assert!(hits[0].message.contains("crates/data/src/fixture.rs:"), "got {hits:?}");
}

#[test]
fn panic_reachability_respects_panic_annotations() {
    let violations = analyze_assembly(&[("panic_reach_ok.rs", "crates/data/src/fixture.rs")]);
    assert!(of_rule(&violations, "panic-reachability").is_empty(), "got {violations:?}");
}

#[test]
fn result_discard_flags_let_underscore_on_first_party_result() {
    let violations = analyze_assembly(&[("result_discard_bad.rs", "crates/core/src/fixture.rs")]);
    let hits = of_rule(&violations, "result-discard");
    assert_eq!(hits.len(), 1, "got {violations:?}");
    assert!(hits[0].message.contains("persist"), "got {hits:?}");
}

#[test]
fn result_discard_accepts_handled_results_and_plain_discards() {
    let violations = analyze_assembly(&[("result_discard_ok.rs", "crates/core/src/fixture.rs")]);
    assert!(of_rule(&violations, "result-discard").is_empty(), "got {violations:?}");
}

#[test]
fn result_discard_is_exempt_in_tests() {
    let violations = analyze_assembly(&[("result_discard_bad.rs", "crates/core/tests/fixture.rs")]);
    assert!(of_rule(&violations, "result-discard").is_empty(), "got {violations:?}");
}
