//! Shared per-cell feature extraction for the ML-supported detectors
//! (metadata-driven, RAHA, ED2, Picket).

use std::collections::BTreeMap;

use rein_constraints::pattern::{value_pattern, ValuePattern};
use rein_data::Table;
use rein_stats::descriptive;

use crate::context::{DetectContext, Detector};

/// Number of content features per cell produced by [`CellFeaturizer`].
pub const N_CONTENT_FEATURES: usize = 7;

/// Column-profile-based featurizer: computes, per cell, value frequency,
/// pattern frequency, normalised length, |z|-score, null flag, type
/// mismatch flag and row null fraction.
pub struct CellFeaturizer {
    value_freq: Vec<BTreeMap<String, f64>>,
    pattern_freq: Vec<BTreeMap<ValuePattern, f64>>,
    col_stats: Vec<Option<(f64, f64)>>,
    majority_numeric: Vec<bool>,
    row_null_frac: Vec<f64>,
    max_len: f64,
}

impl CellFeaturizer {
    /// Profiles a table.
    pub fn fit(t: &Table) -> Self {
        let _span = rein_telemetry::span("detect:features:fit");
        let n = t.n_rows();
        let mut value_freq = Vec::with_capacity(t.n_cols());
        let mut pattern_freq = Vec::with_capacity(t.n_cols());
        let mut col_stats = Vec::with_capacity(t.n_cols());
        let mut majority_numeric = Vec::with_capacity(t.n_cols());
        let mut max_len = 1.0f64;
        for c in 0..t.n_cols() {
            let mut vf: BTreeMap<String, f64> = BTreeMap::new();
            let mut pf: BTreeMap<ValuePattern, f64> = BTreeMap::new();
            for v in t.column(c) {
                *vf.entry(v.as_key().into_owned()).or_insert(0.0) += 1.0;
                *pf.entry(value_pattern(v)).or_insert(0.0) += 1.0;
                max_len = max_len.max(v.to_string().len() as f64);
            }
            let denom = n.max(1) as f64;
            vf.values_mut().for_each(|x| *x /= denom);
            pf.values_mut().for_each(|x| *x /= denom);
            value_freq.push(vf);
            pattern_freq.push(pf);
            let xs = t.numeric_values(c);
            if xs.len() * 2 >= n.max(1) && xs.len() >= 2 {
                // Robust location/scale (median, IQR) so a single gross
                // outlier cannot mask its own z-score.
                let median = descriptive::median(&xs);
                let scale = (descriptive::iqr(&xs) / 1.349).max(1e-9);
                col_stats.push(Some((median, scale)));
                majority_numeric.push(true);
            } else {
                col_stats.push(None);
                majority_numeric.push(false);
            }
        }
        let row_null_frac = (0..n)
            .map(|r| {
                (0..t.n_cols()).filter(|&c| t.cell(r, c).is_null()).count() as f64
                    / t.n_cols().max(1) as f64
            })
            .collect();
        Self { value_freq, pattern_freq, col_stats, majority_numeric, row_null_frac, max_len }
    }

    /// Features of cell `(row, col)` of `t`, written into `out`
    /// (length [`N_CONTENT_FEATURES`]).
    pub fn features_into(&self, t: &Table, row: usize, col: usize, out: &mut [f64]) {
        let v = t.cell(row, col);
        let key = v.as_key();
        out[0] = self.value_freq[col].get(key.as_ref()).copied().unwrap_or(0.0);
        out[1] = self.pattern_freq[col].get(&value_pattern(v)).copied().unwrap_or(0.0);
        out[2] = v.to_string().len() as f64 / self.max_len;
        out[3] = match (self.col_stats[col], v.as_f64()) {
            (Some((mean, std)), Some(x)) => ((x - mean).abs() / std).min(10.0) / 10.0,
            (Some(_), None) => 1.0, // numeric column, non-numeric cell
            _ => 0.0,
        };
        out[4] = f64::from(v.is_null());
        let is_numeric_cell = v.as_f64().is_some();
        out[5] = f64::from(self.majority_numeric[col] != is_numeric_cell && !v.is_null());
        out[6] = self.row_null_frac[row];
    }

    /// Features of cell `(row, col)` as a fresh vector.
    pub fn features(&self, t: &Table, row: usize, col: usize) -> Vec<f64> {
        let mut out = vec![0.0; N_CONTENT_FEATURES];
        self.features_into(t, row, col, &mut out);
        out
    }
}

/// Per-cell binary features from a pool of base detectors (the
/// metadata-driven method's representation): feature `i` is 1 iff detector
/// `i` flagged the cell.
pub fn detector_features(
    ctx: &DetectContext<'_>,
    pool: &[Box<dyn Detector>],
) -> Vec<rein_data::CellMask> {
    pool.iter().map(|d| d.detect(ctx)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rein_data::{ColumnMeta, ColumnType, Schema, Value};

    fn table() -> Table {
        let schema = Schema::new(vec![
            ColumnMeta::new("x", ColumnType::Float),
            ColumnMeta::new("c", ColumnType::Str),
        ]);
        let mut rows: Vec<Vec<Value>> = (0..50)
            .map(|i| vec![Value::Float(10.0 + (i % 5) as f64), Value::str(["a", "b"][i % 2])])
            .collect();
        rows[7][0] = Value::Float(999.0); // outlier
        rows[9][0] = Value::str("1o.0"); // type shift
        rows[11][1] = Value::Null;
        rows[13][1] = Value::str("zzz"); // rare value
        Table::from_rows(schema, rows)
    }

    #[test]
    fn outlier_cells_have_high_z_feature() {
        let t = table();
        let f = CellFeaturizer::fit(&t);
        let normal = f.features(&t, 0, 0);
        let outlier = f.features(&t, 7, 0);
        assert!(outlier[3] > normal[3]);
        assert!(outlier[3] > 0.9);
    }

    #[test]
    fn rare_values_have_low_frequency_feature() {
        let t = table();
        let f = CellFeaturizer::fit(&t);
        let common = f.features(&t, 0, 1);
        let rare = f.features(&t, 13, 1);
        assert!(rare[0] < common[0]);
    }

    #[test]
    fn null_and_type_mismatch_flags() {
        let t = table();
        let f = CellFeaturizer::fit(&t);
        assert_eq!(f.features(&t, 11, 1)[4], 1.0);
        assert_eq!(f.features(&t, 0, 1)[4], 0.0);
        assert_eq!(f.features(&t, 9, 0)[5], 1.0, "string in numeric column");
        assert_eq!(f.features(&t, 0, 0)[5], 0.0);
    }

    #[test]
    fn features_are_bounded() {
        let t = table();
        let f = CellFeaturizer::fit(&t);
        for r in 0..t.n_rows() {
            for c in 0..t.n_cols() {
                for (i, v) in f.features(&t, r, c).iter().enumerate() {
                    assert!((0.0..=1.0).contains(v), "feature {i} = {v} at ({r},{c})");
                }
            }
        }
    }
}
