//! Figure 5: repair RMSE and runtime over the numerical attributes of
//! Smart Factory, Breast Cancer, Bikes and Water.
//!
//! For each (detector, repairer) strategy the harness reports the RMSE
//! between the repaired values and the ground truth over the actually
//! erroneous cells, against the dirty version's RMSE (the red dashed
//! baseline — bars above it mean the "repair" made things worse).

// Benchmark bins emit their report tables on stdout by design.
#![allow(clippy::print_stdout)]

use rein_bench::{conclude, dataset, f, header, phase};
use rein_core::DetectorRun;
use rein_datasets::DatasetId;
use rein_repair::RepairKind;

fn run_dataset(id: DatasetId, seed: u64) {
    let generate = phase("generate");
    let ds = dataset(id, seed);
    drop(generate);
    let ctrl = rein_bench::controller(100, seed);
    header(&format!("Figure 5 — numerical repair RMSE ({})", ds.info.name));

    let detect = phase("detect");
    let mut detections: Vec<DetectorRun> = ctrl.run_detection(&ds);
    drop(detect);
    detections.retain(|d| d.quality.detected() > 0);
    detections.sort_by(|a, b| b.quality.f1.total_cmp(&a.quality.f1));
    detections.truncate(5);

    let _repair = phase("repair");
    let mut dirty_baseline: Option<f64> = None;
    println!(
        "{:<10} {:<18} {:>10} {:>12} {:>10}",
        "detector", "repairer", "rmse", "vs dirty", "runtime"
    );
    for det in &detections {
        let runs = ctrl.run_repairs(&ds, det);
        let records = ctrl.repair_records(&ds, det.kind, &runs);
        for rec in &records {
            if let Some(cause) = &rec.failure {
                println!("  DEGRADED {}+{} ({cause})", rec.detector, rec.repairer);
                continue;
            }
            let (Some(rmse), Some(dirty)) = (rec.rmse, rec.dirty_rmse) else { continue };
            if rec.repairer == RepairKind::Delete.name() {
                continue;
            }
            dirty_baseline.get_or_insert(dirty);
            let verdict = if rmse < dirty * 0.99 {
                "better"
            } else if rmse > dirty * 1.01 {
                "WORSE"
            } else {
                "same"
            };
            println!(
                "{:<10} {:<18} {:>10} {:>12} {:>9.3}s",
                det.kind.name().chars().take(10).collect::<String>(),
                rec.repairer,
                f(rmse),
                verdict,
                rec.runtime_ms / 1e3,
            );
        }
    }
    if let Some(d) = dirty_baseline {
        println!("\ndirty-version RMSE baseline (red dashed line): {}", f(d));
    }
}

fn main() {
    run_dataset(DatasetId::SmartFactory, 61);
    run_dataset(DatasetId::BreastCancer, 62);
    run_dataset(DatasetId::Bikes, 63);
    run_dataset(DatasetId::Water, 64);
    conclude("fig5_repair_numerical", 61, 100);
}
