//! Table schemas: column names, declared types and roles.

use serde::{Deserialize, Serialize};

/// Declared type of a column.
///
/// The declared type describes the *ground truth* semantics; dirty cells may
/// hold values of any variant (e.g. a typo turns a float into a string).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ColumnType {
    /// Integer-valued numeric column.
    Int,
    /// Real-valued numeric column.
    Float,
    /// Free-text or categorical string column.
    Str,
    /// Boolean column.
    Bool,
}

impl ColumnType {
    /// Whether the column is numeric (int or float).
    pub fn is_numeric(self) -> bool {
        matches!(self, ColumnType::Int | ColumnType::Float)
    }
}

/// The role a column plays in the downstream ML task.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum ColumnRole {
    /// Ordinary feature column.
    #[default]
    Feature,
    /// Prediction target (class label or regression response).
    Label,
    /// Identifier excluded from modeling (e.g. record id / key).
    Id,
}

/// Per-column metadata.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ColumnMeta {
    /// Column name, unique within a schema.
    pub name: String,
    /// Declared ground-truth type.
    pub ctype: ColumnType,
    /// Role in the ML task.
    pub role: ColumnRole,
}

impl ColumnMeta {
    /// Feature column shorthand.
    pub fn new(name: impl Into<String>, ctype: ColumnType) -> Self {
        Self { name: name.into(), ctype, role: ColumnRole::Feature }
    }

    /// Marks this column as the label.
    pub fn label(mut self) -> Self {
        self.role = ColumnRole::Label;
        self
    }

    /// Marks this column as an identifier.
    pub fn id(mut self) -> Self {
        self.role = ColumnRole::Id;
        self
    }
}

/// Ordered collection of column metadata.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct Schema {
    columns: Vec<ColumnMeta>,
}

impl Schema {
    /// Builds a schema from column metadata.
    ///
    /// # Panics
    /// Panics if two columns share a name — schemas are constructed from
    /// static dataset definitions, so a duplicate is a programming error.
    pub fn new(columns: Vec<ColumnMeta>) -> Self {
        for (i, c) in columns.iter().enumerate() {
            assert!(
                !columns[..i].iter().any(|p| p.name == c.name),
                "duplicate column name {:?}",
                c.name
            );
        }
        Self { columns }
    }

    /// Number of columns.
    pub fn len(&self) -> usize {
        self.columns.len()
    }

    /// Whether the schema has no columns.
    pub fn is_empty(&self) -> bool {
        self.columns.is_empty()
    }

    /// Metadata of column `idx`.
    pub fn column(&self, idx: usize) -> &ColumnMeta {
        &self.columns[idx]
    }

    /// All column metadata in order.
    pub fn columns(&self) -> &[ColumnMeta] {
        &self.columns
    }

    /// Index of the column named `name`.
    pub fn index_of(&self, name: &str) -> Option<usize> {
        self.columns.iter().position(|c| c.name == name)
    }

    /// Index of the label column, if any.
    pub fn label_index(&self) -> Option<usize> {
        self.columns.iter().position(|c| c.role == ColumnRole::Label)
    }

    /// Indices of feature columns (excludes label and id columns).
    pub fn feature_indices(&self) -> Vec<usize> {
        self.columns
            .iter()
            .enumerate()
            .filter(|(_, c)| c.role == ColumnRole::Feature)
            .map(|(i, _)| i)
            .collect()
    }

    /// Indices of numeric columns.
    pub fn numeric_indices(&self) -> Vec<usize> {
        self.columns
            .iter()
            .enumerate()
            .filter(|(_, c)| c.ctype.is_numeric())
            .map(|(i, _)| i)
            .collect()
    }

    /// Indices of non-numeric (categorical / text / bool) columns.
    pub fn categorical_indices(&self) -> Vec<usize> {
        self.columns
            .iter()
            .enumerate()
            .filter(|(_, c)| !c.ctype.is_numeric())
            .map(|(i, _)| i)
            .collect()
    }

    /// Returns a copy with column `idx` retyped (used when error injection
    /// permanently changes a column's effective type).
    pub fn with_type(&self, idx: usize, ctype: ColumnType) -> Self {
        let mut s = self.clone();
        s.columns[idx].ctype = ctype;
        s
    }

    /// Keeps only the given column indices, in the given order.
    pub fn select(&self, indices: &[usize]) -> Self {
        Schema { columns: indices.iter().map(|&i| self.columns[i].clone()).collect() }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Schema {
        Schema::new(vec![
            ColumnMeta::new("id", ColumnType::Int).id(),
            ColumnMeta::new("abv", ColumnType::Float),
            ColumnMeta::new("name", ColumnType::Str),
            ColumnMeta::new("style", ColumnType::Str).label(),
        ])
    }

    #[test]
    fn lookup_by_name_and_role() {
        let s = sample();
        assert_eq!(s.index_of("abv"), Some(1));
        assert_eq!(s.index_of("missing"), None);
        assert_eq!(s.label_index(), Some(3));
        assert_eq!(s.feature_indices(), vec![1, 2]);
    }

    #[test]
    fn type_partitions() {
        let s = sample();
        assert_eq!(s.numeric_indices(), vec![0, 1]);
        assert_eq!(s.categorical_indices(), vec![2, 3]);
        assert!(ColumnType::Int.is_numeric());
        assert!(!ColumnType::Str.is_numeric());
    }

    #[test]
    #[should_panic(expected = "duplicate column name")]
    fn duplicate_names_rejected() {
        Schema::new(vec![
            ColumnMeta::new("x", ColumnType::Int),
            ColumnMeta::new("x", ColumnType::Str),
        ]);
    }

    #[test]
    fn select_projects_in_order() {
        let s = sample().select(&[2, 1]);
        assert_eq!(s.column(0).name, "name");
        assert_eq!(s.column(1).name, "abv");
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn with_type_retypes_one_column() {
        let s = sample().with_type(1, ColumnType::Str);
        assert_eq!(s.column(1).ctype, ColumnType::Str);
        assert_eq!(s.column(0).ctype, ColumnType::Int);
    }
}
