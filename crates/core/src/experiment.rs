//! Serialisable experiment records — the rows behind the paper's figures.

use serde::{Deserialize, Serialize};

/// One detector execution on one dataset (Figure 2 accuracy/runtime rows).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DetectionRecord {
    /// Dataset name.
    pub dataset: String,
    /// Detector name.
    pub detector: String,
    /// Cells detected.
    pub detected: usize,
    /// True positives.
    pub true_positives: usize,
    /// Actual erroneous cells in the dataset.
    pub actual_errors: usize,
    /// Precision.
    pub precision: f64,
    /// Recall.
    pub recall: f64,
    /// F1.
    pub f1: f64,
    /// Runtime in milliseconds.
    pub runtime_ms: f64,
    /// Failure cause when the detector degraded under guard (the cell's
    /// mask is empty and its quality reflects zero recall).
    #[serde(default)]
    pub failure: Option<String>,
}

/// One (detector, repairer) execution (Figures 4 and 5 rows).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RepairRecord {
    /// Dataset name.
    pub dataset: String,
    /// Detector name.
    pub detector: String,
    /// Repairer name.
    pub repairer: String,
    /// Categorical repair precision (None for row-dropping methods).
    pub cat_precision: Option<f64>,
    /// Categorical repair recall.
    pub cat_recall: Option<f64>,
    /// Categorical repair F1.
    pub cat_f1: Option<f64>,
    /// RMSE over the numeric erroneous cells after repair.
    pub rmse: Option<f64>,
    /// RMSE of the dirty version (the dashed baseline).
    pub dirty_rmse: Option<f64>,
    /// Runtime in milliseconds.
    pub runtime_ms: f64,
    /// Failure cause when the repairer degraded under guard (the version
    /// is the dirty table unchanged).
    #[serde(default)]
    pub failure: Option<String>,
}

/// One (model, scenario, data version) evaluation (Figure 7 rows).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ModelRecord {
    /// Dataset name.
    pub dataset: String,
    /// Data version label, e.g. "dirty", "GT", or "R3" (detector letter +
    /// repairer index, the paper's figure labelling).
    pub version: String,
    /// Scenario name (S1–S5).
    pub scenario: String,
    /// Model name.
    pub model: String,
    /// Per-repeat scores (F1 / RMSE / silhouette by task).
    pub scores: Vec<f64>,
    /// Mean score.
    pub mean: f64,
    /// Sample standard deviation.
    pub std: f64,
}

impl ModelRecord {
    /// Builds a record, computing the summary statistics.
    pub fn new(
        dataset: &str,
        version: &str,
        scenario: &str,
        model: &str,
        scores: Vec<f64>,
    ) -> Self {
        let finite: Vec<f64> = scores.iter().copied().filter(|s| s.is_finite()).collect();
        let summary = rein_stats::mean_std(&finite);
        Self {
            dataset: dataset.to_string(),
            version: version.to_string(),
            scenario: scenario.to_string(),
            model: model.to_string(),
            scores,
            mean: summary.mean,
            std: summary.std,
        }
    }
}

/// A Wilcoxon A/B comparison between two scenarios of one model
/// (the filled/empty markers on Figure 7).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AbTestRecord {
    /// Dataset name.
    pub dataset: String,
    /// Model name.
    pub model: String,
    /// Data version label.
    pub version: String,
    /// First scenario.
    pub scenario_a: String,
    /// Second scenario.
    pub scenario_b: String,
    /// Two-tailed p-value.
    pub p_value: f64,
    /// Whether H0 (same behaviour) is rejected at α = 0.05.
    pub rejects_h0: bool,
}

/// Runs the paper's A/B test between two score series.
pub fn ab_test(
    dataset: &str,
    model: &str,
    version: &str,
    scenario_a: &str,
    a: &[f64],
    scenario_b: &str,
    b: &[f64],
) -> Option<AbTestRecord> {
    let result = rein_stats::wilcoxon_signed_rank(a, b).ok()?;
    Some(AbTestRecord {
        dataset: dataset.to_string(),
        model: model.to_string(),
        version: version.to_string(),
        scenario_a: scenario_a.to_string(),
        scenario_b: scenario_b.to_string(),
        p_value: result.p_value,
        rejects_h0: result.rejects_null(0.05),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn model_record_summarises() {
        let r = ModelRecord::new("beers", "D0", "S1", "MLP", vec![0.7, 0.8, 0.9]);
        assert!((r.mean - 0.8).abs() < 1e-12);
        assert!(r.std > 0.0);
    }

    #[test]
    fn nan_scores_are_excluded_from_summary() {
        let r = ModelRecord::new("x", "v", "S1", "m", vec![0.5, f64::NAN, 0.7]);
        assert!((r.mean - 0.6).abs() < 1e-12);
    }

    #[test]
    fn ab_test_detects_shift() {
        let a = vec![0.9, 0.91, 0.92, 0.89, 0.9, 0.93, 0.88, 0.9];
        let b = vec![0.5, 0.52, 0.51, 0.49, 0.5, 0.53, 0.48, 0.5];
        let r = ab_test("d", "m", "v", "S4", &a, "S1", &b).unwrap();
        assert!(r.rejects_h0);
    }

    #[test]
    fn ab_test_identical_series_is_none() {
        let a = vec![0.5; 5];
        assert!(ab_test("d", "m", "v", "S1", &a, "S4", &a).is_none());
    }

    #[test]
    fn records_serialise_to_json() {
        let r = DetectionRecord {
            dataset: "beers".into(),
            detector: "sd".into(),
            detected: 10,
            true_positives: 8,
            actual_errors: 12,
            precision: 0.8,
            recall: 0.66,
            f1: 0.72,
            runtime_ms: 1.5,
            failure: Some("panic: boom".into()),
        };
        let json = serde_json::to_string(&r).unwrap();
        let back: DetectionRecord = serde_json::from_str(&json).unwrap();
        assert_eq!(back.detector, "sd");
        assert_eq!(back.failure.as_deref(), Some("panic: boom"));
        // Pre-guard records carry no `failure` key; the field defaults.
        let legacy = json.replace("\"failure\"", "\"failure_legacy\"");
        let back: DetectionRecord = serde_json::from_str(&legacy).unwrap();
        assert!(back.failure.is_none());
    }
}
