//! Negative fixture: a static flows into the computation through a
//! struct-literal field initializer.

static BUMP: u64 = 3;

pub struct Plan {
    pub seed: u64,
}

pub fn run_repair_guarded() -> u64 {
    let p = Plan { seed: BUMP };
    p.seed
}
