//! Hyperparameter search — the Optuna substitute.
//!
//! Seeded random search with one coarse-to-fine refinement pass: after the
//! exploration budget, numeric ranges shrink around the best-quantile
//! region and the remaining trials sample there (the behaviour that makes
//! informed search beat pure random search, without Optuna's full TPE).

use std::collections::BTreeMap;

use rand::prelude::*;
use rand::rngs::StdRng;

/// A hyperparameter's sampling range.
#[derive(Debug, Clone)]
pub enum ParamRange {
    /// Uniform float in `[lo, hi]`; `log` samples in log space.
    Float {
        /// Lower bound.
        lo: f64,
        /// Upper bound.
        hi: f64,
        /// Sample on a log scale.
        log: bool,
    },
    /// Uniform integer in `[lo, hi]`.
    Int {
        /// Lower bound.
        lo: i64,
        /// Upper bound (inclusive).
        hi: i64,
    },
    /// Uniform choice.
    Choice(Vec<String>),
}

/// A sampled hyperparameter value.
#[derive(Debug, Clone, PartialEq)]
pub enum ParamValue {
    /// Float value.
    Float(f64),
    /// Integer value.
    Int(i64),
    /// Categorical value.
    Choice(String),
}

impl ParamValue {
    /// Float view (ints convert).
    pub fn as_f64(&self) -> f64 {
        match self {
            ParamValue::Float(f) => *f,
            ParamValue::Int(i) => *i as f64,
            ParamValue::Choice(_) => f64::NAN,
        }
    }

    /// Integer view.
    pub fn as_i64(&self) -> i64 {
        match self {
            ParamValue::Int(i) => *i,
            ParamValue::Float(f) => *f as i64,
            ParamValue::Choice(_) => 0,
        }
    }

    /// Choice view.
    pub fn as_str(&self) -> &str {
        match self {
            ParamValue::Choice(s) => s,
            _ => "",
        }
    }
}

/// A named parameter assignment.
pub type ParamSample = BTreeMap<String, ParamValue>;

/// Search space: named parameter ranges.
#[derive(Debug, Clone, Default)]
pub struct ParamSpace {
    params: Vec<(String, ParamRange)>,
}

impl ParamSpace {
    /// Empty space.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a float parameter.
    pub fn float(mut self, name: &str, lo: f64, hi: f64, log: bool) -> Self {
        self.params.push((name.to_string(), ParamRange::Float { lo, hi, log }));
        self
    }

    /// Adds an integer parameter.
    pub fn int(mut self, name: &str, lo: i64, hi: i64) -> Self {
        self.params.push((name.to_string(), ParamRange::Int { lo, hi }));
        self
    }

    /// Adds a categorical parameter.
    pub fn choice(mut self, name: &str, options: &[&str]) -> Self {
        self.params.push((
            name.to_string(),
            ParamRange::Choice(options.iter().map(|s| s.to_string()).collect()),
        ));
        self
    }

    fn sample(&self, rng: &mut StdRng) -> ParamSample {
        self.params
            .iter()
            .map(|(name, range)| {
                let v = match range {
                    ParamRange::Float { lo, hi, log } => {
                        if *log {
                            let l = lo.max(1e-12).ln();
                            let h = hi.max(1e-12).ln();
                            ParamValue::Float(rng.random_range(l..=h).exp())
                        } else {
                            ParamValue::Float(rng.random_range(*lo..=*hi))
                        }
                    }
                    ParamRange::Int { lo, hi } => ParamValue::Int(rng.random_range(*lo..=*hi)),
                    ParamRange::Choice(opts) => {
                        ParamValue::Choice(opts[rng.random_range(0..opts.len())].clone())
                    }
                };
                (name.clone(), v)
            })
            .collect()
    }

    /// A narrowed space around a centre sample (numeric ranges shrink to a
    /// ±25% window; choices collapse to the centre's value).
    fn refine_around(&self, centre: &ParamSample) -> ParamSpace {
        let params = self
            .params
            .iter()
            .map(|(name, range)| {
                let new_range = match (range, centre.get(name)) {
                    (ParamRange::Float { lo, hi, log }, Some(v)) => {
                        let c = v.as_f64();
                        let span = (hi - lo) * 0.25;
                        ParamRange::Float {
                            lo: (c - span).max(*lo),
                            hi: (c + span).min(*hi),
                            log: *log,
                        }
                    }
                    (ParamRange::Int { lo, hi }, Some(v)) => {
                        let c = v.as_i64();
                        let span = ((hi - lo) / 4).max(1);
                        ParamRange::Int { lo: (c - span).max(*lo), hi: (c + span).min(*hi) }
                    }
                    (ParamRange::Choice(_), Some(ParamValue::Choice(c))) => {
                        ParamRange::Choice(vec![c.clone()])
                    }
                    (r, _) => r.clone(),
                };
                (name.clone(), new_range)
            })
            .collect();
        ParamSpace { params }
    }
}

/// Outcome of a search.
#[derive(Debug, Clone)]
pub struct SearchResult {
    /// Best parameter sample found.
    pub best_params: ParamSample,
    /// Objective value of the best sample.
    pub best_score: f64,
    /// Every `(sample, score)` trial, in evaluation order.
    pub trials: Vec<(ParamSample, f64)>,
}

/// Maximises `objective` over `space` with `n_trials` evaluations: the
/// first 60% explore uniformly, the rest exploit a region around the
/// incumbent. Deterministic per seed.
pub fn search<F: FnMut(&ParamSample) -> f64>(
    space: &ParamSpace,
    n_trials: usize,
    seed: u64,
    mut objective: F,
) -> SearchResult {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut trials: Vec<(ParamSample, f64)> = Vec::with_capacity(n_trials);
    let explore = (n_trials * 3 / 5).max(1);
    let mut refined: Option<ParamSpace> = None;
    for t in 0..n_trials {
        if t == explore {
            if let Some((best, _)) = trials.iter().max_by(|a, b| a.1.total_cmp(&b.1)) {
                refined = Some(space.refine_around(best));
            }
        }
        let s = match (&refined, t >= explore) {
            (Some(r), true) => r.sample(&mut rng),
            _ => space.sample(&mut rng),
        };
        let score = objective(&s);
        trials.push((s, score));
    }
    let (best_params, best_score) = trials
        .iter()
        .max_by(|a, b| a.1.total_cmp(&b.1))
        .map(|(p, s)| (p.clone(), *s))
        .unwrap_or((ParamSample::new(), f64::NEG_INFINITY));
    SearchResult { best_params, best_score, trials }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn finds_good_float_optimum() {
        // Maximise -(x-3)^2: optimum at x = 3.
        let space = ParamSpace::new().float("x", 0.0, 10.0, false);
        let result = search(&space, 80, 1, |s| {
            let x = s["x"].as_f64();
            -(x - 3.0).powi(2)
        });
        assert!((result.best_params["x"].as_f64() - 3.0).abs() < 0.5);
        assert!(result.best_score > -0.25);
    }

    #[test]
    fn refinement_beats_pure_exploration_on_average() {
        let space = ParamSpace::new().float("x", 0.0, 100.0, false);
        let result = search(&space, 60, 7, |s| -(s["x"].as_f64() - 42.0).abs());
        // Later trials should cluster near the incumbent.
        let late: Vec<f64> = result.trials[40..].iter().map(|(p, _)| p["x"].as_f64()).collect();
        let close = late.iter().filter(|x| (**x - 42.0).abs() < 20.0).count();
        assert!(close > late.len() / 2, "late trials not concentrated");
    }

    #[test]
    fn int_and_choice_sampling() {
        let space = ParamSpace::new().int("k", 1, 10).choice("kind", &["a", "b"]);
        let result = search(&space, 40, 3, |s| {
            let k = s["k"].as_i64() as f64;
            let bonus = if s["kind"].as_str() == "b" { 5.0 } else { 0.0 };
            k + bonus
        });
        assert_eq!(result.best_params["k"].as_i64(), 10);
        assert_eq!(result.best_params["kind"].as_str(), "b");
    }

    #[test]
    fn log_scale_covers_magnitudes() {
        let space = ParamSpace::new().float("lr", 1e-6, 1.0, true);
        let result = search(&space, 60, 5, |s| {
            // Optimum at lr = 1e-3.
            let lr = s["lr"].as_f64();
            -((lr.ln() - (1e-3f64).ln()).powi(2))
        });
        let best = result.best_params["lr"].as_f64();
        assert!(best > 1e-5 && best < 1e-1, "best lr {best}");
    }

    #[test]
    fn deterministic_per_seed() {
        let space = ParamSpace::new().float("x", 0.0, 1.0, false);
        let a = search(&space, 20, 9, |s| s["x"].as_f64());
        let b = search(&space, 20, 9, |s| s["x"].as_f64());
        assert_eq!(a.best_params, b.best_params);
    }

    #[test]
    fn trials_are_recorded() {
        let space = ParamSpace::new().int("k", 0, 5);
        let r = search(&space, 15, 2, |s| s["k"].as_i64() as f64);
        assert_eq!(r.trials.len(), 15);
    }
}
