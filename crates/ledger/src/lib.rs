//! rein-ledger: the cross-run observability store.
//!
//! Every benchmark run in this repo already leaves an artifact behind —
//! telemetry run manifests under `artifacts/telemetry/`, macro-benchmark
//! reports at `BENCH_*.json`, the audit report under `artifacts/audit/`.
//! The ledger folds all of them into one deterministic, content-addressed
//! index at `artifacts/ledger/index.json`:
//!
//! * **Content addressed** — each entry is keyed by the FNV-1a 64 hash
//!   of the run identity (kind, bin, seed, scale, strategy set). Timings
//!   are never part of the key, so re-running the same configuration
//!   maps to the same key and the ledger never double-counts a run.
//! * **Generational** — the index carries a generation counter that
//!   advances once per ingest pass *that changes something*. Re-ingesting
//!   the same artifacts is a byte-identical no-op.
//! * **Byte stable** — entries sort by (kind, source, key), collections
//!   are `BTreeMap`s, serialization is pretty JSON with a trailing
//!   newline. Two ingest runs over the same artifacts produce the same
//!   file, byte for byte, which is what lets CI diff it.
//!
//! On top of the index, [`report`] renders the static observability
//! report (markdown + HTML) served by the `rein_report` binary:
//! per-strategy cost/failure tables, a guard-failure taxonomy, span
//! profile diffs between runs, and trend series across generations.
//!
//! Benchmark binaries register their manifests at write time through
//! [`register_run`]; the `ledger-registration` audit rule keeps that
//! path mandatory.

pub mod hash;
pub mod index;
pub mod ingest;
pub mod report;
pub mod trace;

pub use hash::{content_key, fnv1a64, run_identity};
pub use index::{
    index_path, ledger_dir, EntrySummary, FailureTaxonomy, IngestOutcome, LedgerEntry, LedgerIndex,
    INDEX_SCHEMA,
};
pub use ingest::{audit_entry, bench_entry, ingest_repo, manifest_entry};
pub use report::{
    build_report, profile_diff, trend_rows, DiffRow, PercentileRow, Report, StrategyRow,
    TaxonomyRow, TrendRow,
};
pub use trace::{
    export_json, export_manifest, trace_dir, trace_entry, write_exports, TraceExport, TRACE_SCHEMA,
};

use std::path::Path;

use rein_telemetry::RunManifest;

/// Registers one freshly written run manifest in the ledger index under
/// `root` (the working directory for benchmark binaries). Loads the
/// index, ingests the manifest as a single-candidate pass, and saves it
/// back only when the index changed. Returns whether it did.
///
/// Benchmark binaries call this right after
/// [`RunManifest::write`](rein_telemetry::RunManifest::write); the
/// `ledger-registration` audit rule enforces the pairing.
pub fn register_run(root: &Path, manifest: &RunManifest, source: &Path) -> Result<bool, String> {
    let source = source.strip_prefix(root).unwrap_or(source).to_string_lossy().replace('\\', "/");
    let entry = manifest_entry(manifest, &source);
    let path = index_path(root);
    let mut index = LedgerIndex::load(&path)?;
    let changed = index.apply(vec![entry]);
    if changed {
        index.save(&path).map_err(|e| format!("write {}: {e}", path.display()))?;
    }
    Ok(changed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rein_telemetry::RunConfig;
    use std::collections::BTreeMap;

    fn manifest(seed: u64) -> RunManifest {
        RunManifest {
            binary: "fig2_detection".into(),
            config: RunConfig { scale: 0.05, repeats: 3, seed, label_budget: 100, threads: 1 },
            mode: "full".into(),
            spans: Vec::new(),
            span_rollup: Vec::new(),
            counters: BTreeMap::new(),
            histograms: BTreeMap::new(),
            failures: Vec::new(),
        }
    }

    #[test]
    fn register_run_is_idempotent_on_disk() {
        let dir = std::env::temp_dir().join(format!("rein-ledger-reg-{}", std::process::id()));
        let _cleanup = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("temp dir");
        let m = manifest(11);
        let source = dir.join("artifacts/telemetry/fig2_detection-11.json");

        assert!(register_run(&dir, &m, &source).expect("first registration"));
        let bytes = std::fs::read(index_path(&dir)).expect("index written");
        assert!(!register_run(&dir, &m, &source).expect("second registration"));
        assert_eq!(
            std::fs::read(index_path(&dir)).expect("index still there"),
            bytes,
            "re-registering the same run must not change the index bytes"
        );

        assert!(register_run(&dir, &manifest(12), &source).expect("new seed registers"));
        let index = LedgerIndex::load(&index_path(&dir)).expect("index loads");
        assert_eq!(index.generation, 2);
        std::fs::remove_dir_all(&dir).expect("cleanup");
    }
}
