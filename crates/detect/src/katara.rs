//! KATARA (Chu et al.): aligns columns with knowledge-base semantic types
//! and flags cells violating the matched type. The crowdsourced KB is
//! simulated by [`crate::context::KnowledgeBase`] (valid value domains and
//! plausible numeric ranges); a column is *matched* to a KB domain when
//! enough of its cells conform, and the deviating cells are reported.

use rein_data::{CellMask, Value};

use crate::context::{DetectContext, Detector};

/// KATARA detector.
#[derive(Debug, Clone)]
pub struct Katara {
    /// Minimum fraction of cells that must conform for a column to be
    /// considered aligned with a KB type.
    pub match_threshold: f64,
}

impl Default for Katara {
    fn default() -> Self {
        Self { match_threshold: 0.5 }
    }
}

impl Detector for Katara {
    fn name(&self) -> &'static str {
        "katara"
    }

    fn detect(&self, ctx: &DetectContext<'_>) -> CellMask {
        let _span = rein_telemetry::span("detect:katara");
        let t = ctx.dirty;
        let mut mask = CellMask::new(t.n_rows(), t.n_cols());
        let Some(kb) = ctx.kb else { return mask };

        // Categorical domains.
        for (col, domain) in &kb.domains {
            if *col >= t.n_cols() || domain.is_empty() {
                continue;
            }
            let mut conforming = 0usize;
            let mut non_null = 0usize;
            for v in t.column(*col) {
                if v.is_null() {
                    continue;
                }
                non_null += 1;
                if domain.contains(v.as_key().as_ref()) {
                    conforming += 1;
                }
            }
            if non_null == 0 || (conforming as f64) < self.match_threshold * non_null as f64 {
                continue; // column does not align with this KB type
            }
            for (r, v) in t.column(*col).iter().enumerate() {
                rein_guard::checkpoint(1);
                if !v.is_null() && !domain.contains(v.as_key().as_ref()) {
                    mask.set(r, *col, true);
                }
            }
        }

        // Numeric ranges: anything outside the plausible range, plus cells
        // that are no longer numeric at all (KATARA's semantic-type
        // mismatch on converted columns — the source of its false-positive
        // behaviour the paper highlights).
        for &(col, lo, hi) in &kb.ranges {
            if col >= t.n_cols() {
                continue;
            }
            for (r, v) in t.column(col).iter().enumerate() {
                match v {
                    Value::Null => {}
                    other => match other.as_f64() {
                        Some(x) if x >= lo && x <= hi => {}
                        _ => mask.set(r, col, true),
                    },
                }
            }
        }
        mask
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::KnowledgeBase;
    use rein_data::{ColumnMeta, ColumnType, Schema, Table};

    fn setup() -> (Table, KnowledgeBase) {
        let schema = Schema::new(vec![
            ColumnMeta::new("state", ColumnType::Str),
            ColumnMeta::new("abv", ColumnType::Float),
        ]);
        let clean = Table::from_rows(
            schema.clone(),
            (0..50)
                .map(|i| {
                    vec![
                        Value::str(["OR", "CA", "WA"][i % 3]),
                        Value::Float(4.0 + (i % 6) as f64 * 0.5),
                    ]
                })
                .collect(),
        );
        let kb = KnowledgeBase::from_reference(&clean);
        (clean, kb)
    }

    #[test]
    fn flags_out_of_domain_categoricals() {
        let (mut t, kb) = setup();
        t.set_cell(4, 0, Value::str("XX"));
        let ctx = DetectContext { kb: Some(&kb), ..DetectContext::bare(&t) };
        let m = Katara::default().detect(&ctx);
        assert!(m.get(4, 0));
        assert_eq!(m.count(), 1);
    }

    #[test]
    fn flags_out_of_range_numerics_and_type_shifts() {
        let (mut t, kb) = setup();
        t.set_cell(7, 1, Value::Float(500.0)); // far out of range
        t.set_cell(9, 1, Value::str("4.x")); // typo: no longer numeric
        let ctx = DetectContext { kb: Some(&kb), ..DetectContext::bare(&t) };
        let m = Katara::default().detect(&ctx);
        assert!(m.get(7, 1));
        assert!(m.get(9, 1));
    }

    #[test]
    fn unaligned_columns_are_ignored() {
        let (t, _) = setup();
        // A KB whose domain matches almost nothing in the column.
        let mut kb = KnowledgeBase::default();
        kb.domains.push((0, ["Berlin".to_string()].into_iter().collect()));
        let ctx = DetectContext { kb: Some(&kb), ..DetectContext::bare(&t) };
        let m = Katara::default().detect(&ctx);
        assert!(m.is_empty(), "no alignment -> no detections");
    }

    #[test]
    fn no_kb_means_no_detections() {
        let (t, _) = setup();
        let m = Katara::default().detect(&DetectContext::bare(&t));
        assert!(m.is_empty());
    }

    #[test]
    fn nulls_are_not_domain_violations() {
        let (mut t, kb) = setup();
        t.set_cell(3, 0, Value::Null);
        let ctx = DetectContext { kb: Some(&kb), ..DetectContext::bare(&t) };
        assert!(Katara::default().detect(&ctx).is_empty());
    }
}
