//! Seeded fault injection for the benchmark grid.
//!
//! A [`ChaosSpec`] is a list of deterministic injection rules matched
//! against the [`GuardSpec`](crate::GuardSpec) of each guarded call. The
//! spec travels on the policy object (never global state), so parallel
//! tests and rayon fan-outs cannot observe each other's injections, and
//! the same spec + seed always injects at exactly the same grid cells.
//!
//! The `REIN_CHAOS` environment variable carries a spec for the bench
//! binaries. Grammar (comma-separated rules):
//!
//! ```text
//! phase:strategy[@dataset][#scope]=mode
//! ```
//!
//! * `phase` — `detect`, `repair` or `model`.
//! * `strategy` — the toolbox method name, e.g. `raha`.
//! * `@dataset` — optional dataset filter.
//! * `#scope` — optional sub-grid filter; for repair cells this is the
//!   detector feeding the repairer, so one `(detector, repairer)` cell
//!   can be targeted without hitting the whole repairer column.
//! * `mode` — `panic`, `stall` (zero budget), `corrupt` (output is
//!   mangled so the validator rejects it) or `flaky` (transient failure
//!   on the first attempt, clean on retry).
//!
//! Example: `detect:raha=panic,repair:impute_mean_mode#max_entropy=stall`.

use crate::{GuardSpec, Phase};

/// What an injection rule does to its matching cells.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChaosMode {
    /// The strategy panics instead of running.
    Panic,
    /// The strategy runs with a zero tick allowance, so its first
    /// checkpoint exhausts the budget.
    Stall,
    /// The strategy runs, then its output is corrupted before
    /// validation.
    Corrupt,
    /// The first attempt raises a transient failure; retries succeed.
    Flaky,
}

impl ChaosMode {
    fn parse(s: &str) -> Result<Self, String> {
        match s {
            "panic" => Ok(ChaosMode::Panic),
            "stall" => Ok(ChaosMode::Stall),
            "corrupt" => Ok(ChaosMode::Corrupt),
            "flaky" => Ok(ChaosMode::Flaky),
            other => Err(format!("unknown chaos mode `{other}` (want panic|stall|corrupt|flaky)")),
        }
    }
}

/// One injection rule.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChaosRule {
    /// Phase the rule applies to.
    pub phase: Phase,
    /// Strategy name the rule applies to.
    pub strategy: String,
    /// Optional dataset filter.
    pub dataset: Option<String>,
    /// Optional scope filter (detector name for repair cells).
    pub scope: Option<String>,
    /// Injected behaviour.
    pub mode: ChaosMode,
}

impl ChaosRule {
    fn matches(&self, spec: &GuardSpec<'_>) -> bool {
        self.phase == spec.phase
            && self.strategy == spec.strategy
            && self.dataset.as_deref().is_none_or(|d| d == spec.dataset)
            && self.scope.as_deref().is_none_or(|s| s == spec.scope)
    }
}

/// A parsed set of injection rules. The default (empty) spec injects
/// nothing.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ChaosSpec {
    rules: Vec<ChaosRule>,
}

impl ChaosSpec {
    /// Parses the `REIN_CHAOS` grammar (see the module docs).
    pub fn parse(text: &str) -> Result<Self, String> {
        let mut rules = Vec::new();
        for raw in text.split(',') {
            let raw = raw.trim();
            if raw.is_empty() {
                continue;
            }
            let (target, mode) = raw
                .split_once('=')
                .ok_or_else(|| format!("chaos rule `{raw}` is missing `=mode`"))?;
            let mode = ChaosMode::parse(mode.trim())?;
            let (phase, rest) = target
                .split_once(':')
                .ok_or_else(|| format!("chaos rule `{raw}` is missing `phase:`"))?;
            let phase = Phase::parse(phase.trim()).ok_or_else(|| {
                format!("unknown chaos phase `{phase}` (want detect|repair|model)")
            })?;
            let (rest, scope) = match rest.split_once('#') {
                Some((r, s)) => (r, Some(s.trim().to_string())),
                None => (rest, None),
            };
            let (strategy, dataset) = match rest.split_once('@') {
                Some((s, d)) => (s, Some(d.trim().to_string())),
                None => (rest, None),
            };
            let strategy = strategy.trim();
            if strategy.is_empty() {
                return Err(format!("chaos rule `{raw}` has an empty strategy name"));
            }
            rules.push(ChaosRule { phase, strategy: strategy.to_string(), dataset, scope, mode });
        }
        Ok(ChaosSpec { rules })
    }

    /// Reads `REIN_CHAOS`; unset or empty means no injection. A set but
    /// unparsable spec is an error — silently running fault-free when the
    /// operator asked for chaos would invalidate the experiment.
    pub fn from_env() -> Result<Self, String> {
        // audit:allow(env-read-confinement, REIN_CHAOS is snapshotted once at startup by the bench binaries and folded into the guard policy, which is a declared cache-key component)
        match std::env::var("REIN_CHAOS") {
            Err(_) => Ok(ChaosSpec::default()),
            Ok(raw) => Self::parse(&raw),
        }
    }

    /// Whether the spec injects nothing.
    pub fn is_empty(&self) -> bool {
        self.rules.is_empty()
    }

    /// Number of rules.
    pub fn len(&self) -> usize {
        self.rules.len()
    }

    /// The rules, in spec order.
    pub fn rules(&self) -> &[ChaosRule] {
        &self.rules
    }

    /// The injection mode for a guarded call, if any rule matches (first
    /// match wins).
    pub fn mode_for(&self, spec: &GuardSpec<'_>) -> Option<ChaosMode> {
        self.rules.iter().find(|r| r.matches(spec)).map(|r| r.mode)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec<'a>(
        phase: Phase,
        strategy: &'a str,
        dataset: &'a str,
        scope: &'a str,
    ) -> GuardSpec<'a> {
        GuardSpec { phase, strategy, dataset, scope, cells: 10, seed: 1 }
    }

    #[test]
    fn parses_the_full_grammar() {
        let c = ChaosSpec::parse("detect:raha=panic, repair:baran@beers#ed2=stall").unwrap();
        assert_eq!(c.len(), 2);
        assert_eq!(c.mode_for(&spec(Phase::Detect, "raha", "beers", "")), Some(ChaosMode::Panic));
        assert_eq!(c.mode_for(&spec(Phase::Detect, "ed2", "beers", "")), None);
        assert_eq!(
            c.mode_for(&spec(Phase::Repair, "baran", "beers", "ed2")),
            Some(ChaosMode::Stall)
        );
        // Scope filter keeps other detector pairings fault-free.
        assert_eq!(c.mode_for(&spec(Phase::Repair, "baran", "beers", "raha")), None);
        // Dataset filter.
        assert_eq!(c.mode_for(&spec(Phase::Repair, "baran", "nasa", "ed2")), None);
    }

    #[test]
    fn rejects_malformed_rules() {
        assert!(ChaosSpec::parse("detect:raha").is_err());
        assert!(ChaosSpec::parse("raha=panic").is_err());
        assert!(ChaosSpec::parse("detect:raha=explode").is_err());
        assert!(ChaosSpec::parse("orbit:raha=panic").is_err());
        assert!(ChaosSpec::parse("detect:=panic").is_err());
    }

    #[test]
    fn empty_spec_matches_nothing() {
        let c = ChaosSpec::parse("").unwrap();
        assert!(c.is_empty());
        assert_eq!(c.mode_for(&spec(Phase::Detect, "raha", "beers", "")), None);
    }
}
