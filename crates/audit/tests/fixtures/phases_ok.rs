//! Fixture: benchmark binary marking its phases and writing a manifest.
fn main() {
    {
        let _p = rein_bench::phase("generate");
    }
    {
        let _p = rein_bench::phase("detect");
    }
    {
        let _p = rein_bench::phase("report");
    }
    rein_bench::write_run_manifest("fixture", 0, 0);
}
