//! The audit's own acceptance test: the workspace it ships in must pass it.

use std::path::Path;

#[test]
fn workspace_audit_is_clean() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let report = rein_audit::audit_workspace(&root).expect("walk workspace sources");
    assert!(
        report.violations.is_empty(),
        "workspace must be audit-clean; run `cargo run -p rein-audit` for the report:\n{}",
        report.render_text()
    );
    assert!(report.files_scanned > 100, "walker found only {} files", report.files_scanned);
}
