//! Metadata-driven error detection (Visengeriyeva & Abedjan): each cell is
//! represented by the binary verdicts of a suite of non-learning detectors
//! plus metadata-profile features; a classifier trained on an
//! oracle-labelled sample predicts dirtiness for every cell.

use rand::prelude::*;
use rand::rngs::StdRng;
use rein_data::{CellMask, CellRef};
use rein_ml::forest::{ForestParams, RandomForestClassifier};
use rein_ml::linalg::Matrix;
use rein_ml::model::Classifier;

use crate::context::{DetectContext, Detector};
use crate::ensemble::default_base_pool;
use crate::features::{detector_features, CellFeaturizer, N_CONTENT_FEATURES};

/// Metadata-driven detector.
pub struct MetadataDriven {
    base: Vec<Box<dyn Detector>>,
}

impl Default for MetadataDriven {
    fn default() -> Self {
        Self { base: default_base_pool() }
    }
}

impl Detector for MetadataDriven {
    fn name(&self) -> &'static str {
        "metadata_driven"
    }

    fn detect(&self, ctx: &DetectContext<'_>) -> CellMask {
        let _span = rein_telemetry::span("detect:metadata");
        let t = ctx.dirty;
        let empty = CellMask::new(t.n_rows(), t.n_cols());
        let Some(oracle) = ctx.oracle else { return empty };
        let n_cells = t.n_cells();
        if n_cells == 0 {
            return empty;
        }

        // Feature matrix: one row per cell.
        let verdicts = detector_features(ctx, &self.base);
        let featurizer = CellFeaturizer::fit(t);
        let width = self.base.len() + N_CONTENT_FEATURES;
        let mut x = Matrix::zeros(n_cells, width);
        for r in 0..t.n_rows() {
            for c in 0..t.n_cols() {
                let idx = r * t.n_cols() + c;
                let row = x.row_mut(idx);
                for (vi, verdict) in verdicts.iter().enumerate() {
                    row[vi] = f64::from(verdict.get(r, c));
                }
                featurizer.features_into(t, r, c, &mut row[self.base.len()..]);
            }
        }

        // Oracle-labelled training sample within the labelling budget,
        // stratified toward cells that at least one detector flagged so the
        // dirty class is represented.
        let mut rng = StdRng::seed_from_u64(ctx.seed);
        let flagged: Vec<usize> = (0..n_cells)
            .filter(|&i| verdicts.iter().any(|v| v.get(i / t.n_cols(), i % t.n_cols())))
            .collect();
        let unflagged: Vec<usize> = (0..n_cells).filter(|&i| !flagged.contains(&i)).collect();
        let budget = ctx.labeling_budget.max(8).min(n_cells);
        let mut sample: Vec<usize> = Vec::with_capacity(budget);
        let half = budget / 2;
        let pick = |src: &[usize], k: usize, rng: &mut StdRng, out: &mut Vec<usize>| {
            let mut idx: Vec<usize> = src.to_vec();
            idx.shuffle(rng);
            out.extend(idx.into_iter().take(k));
        };
        pick(&flagged, half, &mut rng, &mut sample);
        pick(&unflagged, budget - sample.len(), &mut rng, &mut sample);

        let labels: Vec<usize> = sample
            .iter()
            .map(|&i| {
                let cell = CellRef::new(i / t.n_cols(), i % t.n_cols());
                usize::from(oracle.is_dirty(cell))
            })
            .collect();
        if labels.iter().all(|&l| l == 0) || labels.iter().all(|&l| l == 1) {
            // Degenerate sample: fall back to the strongest base signal
            // (majority vote of the suite).
            let mut mask = CellMask::new(t.n_rows(), t.n_cols());
            for r in 0..t.n_rows() {
                for c in 0..t.n_cols() {
                    let votes = verdicts.iter().filter(|v| v.get(r, c)).count();
                    if votes * 2 >= 3 {
                        mask.set(r, c, true);
                    }
                }
            }
            return mask;
        }

        let xs = rein_ml::encode::select_matrix_rows(&x, &sample);
        let mut model = RandomForestClassifier::new(
            ForestParams { n_trees: 20, ..Default::default() },
            ctx.seed,
        );
        model.fit(&xs, &labels, 2);

        let preds = model.predict(&x);
        let mut mask = CellMask::new(t.n_rows(), t.n_cols());
        for (i, &p) in preds.iter().enumerate() {
            if p == 1 {
                mask.set(i / t.n_cols(), i % t.n_cols(), true);
            }
        }
        mask
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::Oracle;
    use rein_data::diff::diff_mask;
    use rein_data::{ColumnMeta, ColumnType, Schema, Table, Value};
    use rein_stats::evaluate_detection;

    fn dirty_dataset() -> (Table, Table) {
        let schema = Schema::new(vec![
            ColumnMeta::new("x", ColumnType::Float),
            ColumnMeta::new("c", ColumnType::Str),
        ]);
        let clean = Table::from_rows(
            schema,
            (0..200)
                .map(|i| vec![Value::Float(10.0 + (i % 6) as f64), Value::str(["a", "b"][i % 2])])
                .collect(),
        );
        let mut dirty = clean.clone();
        for i in 0..12 {
            dirty.set_cell(i * 16, 0, Value::Float(700.0 + i as f64));
        }
        for i in 0..6 {
            dirty.set_cell(i * 31 + 3, 1, Value::Null);
        }
        (clean, dirty)
    }

    #[test]
    fn learns_from_oracle_labels() {
        let (clean, dirty) = dirty_dataset();
        let actual = diff_mask(&clean, &dirty);
        let oracle = Oracle::new(actual.clone());
        let ctx = DetectContext {
            oracle: Some(&oracle),
            labeling_budget: 40,
            seed: 5,
            ..DetectContext::bare(&dirty)
        };
        let m = MetadataDriven::default().detect(&ctx);
        let q = evaluate_detection(&m, &actual);
        assert!(q.f1 > 0.7, "f1 {}", q.f1);
        assert!(oracle.queries_used() <= 40);
    }

    #[test]
    fn without_oracle_no_detections() {
        let (_, dirty) = dirty_dataset();
        assert!(MetadataDriven::default().detect(&DetectContext::bare(&dirty)).is_empty());
    }
}
