//! # rein-errors
//!
//! Seeded error injection — the substitute for BART [Arocena et al., VLDB
//! 2015] and the BigDaMa `error-generator` library used by the paper to
//! prepare its dirty datasets offline (§5). Every injector is a pure
//! function of `(table, config, seed)` and returns the corrupted table plus
//! the exact mask of changed cells, which doubles as detection ground truth.
//!
//! Supported error types (Table 4's "Errors" column): explicit/implicit/
//! disguised missing values, outliers with a controllable *outlier degree*,
//! keyboard typos (with numeric→string type shifts), Gaussian noise, value
//! swaps, FD/rule violations with BART's detectability guarantee, spelling
//! inconsistencies, fuzzy duplicates, and mislabels.

pub mod common;
pub mod compose;
pub mod duplicates;
pub mod inconsistencies;
pub mod mislabels;
pub mod missing;
pub mod outliers;
pub mod rules;
pub mod swaps;
pub mod typos;

pub use common::Injection;
pub use compose::{compose, compose_with_target_rate, DirtyDataset, ErrorSpec};
pub use duplicates::{inject_duplicates, DuplicateInjection};
pub use inconsistencies::inject_inconsistencies;
pub use mislabels::inject_mislabels;
pub use missing::{inject_disguised_missing, inject_explicit_missing, inject_implicit_missing};
pub use outliers::{inject_gaussian_noise, inject_outliers};
pub use rules::inject_fd_violations;
pub use swaps::inject_value_swaps;
pub use typos::inject_typos;

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;
    use rein_data::{diff::diff_mask, ColumnMeta, ColumnType, Schema, Table, Value};

    fn clean_table(n: usize) -> Table {
        let schema = Schema::new(vec![
            ColumnMeta::new("num", ColumnType::Float),
            ColumnMeta::new("cat", ColumnType::Str),
        ]);
        Table::from_rows(
            schema,
            (0..n)
                .map(|i| {
                    vec![Value::Float(10.0 + (i % 13) as f64), Value::str(format!("cat{}", i % 5))]
                })
                .collect(),
        )
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn every_injector_mask_equals_diff(
            n in 10usize..60,
            rate in 0.01f64..0.4,
            seed in 0u64..1000,
        ) {
            let t = clean_table(n);
            let injections = [
                inject_explicit_missing(&t, &[0, 1], rate, seed),
                inject_implicit_missing(&t, &[0, 1], rate, seed),
                inject_disguised_missing(&t, &[0], rate, seed),
                inject_outliers(&t, &[0], rate, 4.0, seed),
                inject_gaussian_noise(&t, &[0], rate, 1.0, seed),
                inject_typos(&t, &[1], rate, seed),
                inject_value_swaps(&t, &[1], rate, seed),
                inject_inconsistencies(&t, &[1], rate, seed),
                inject_mislabels(&t, 1, rate, seed),
            ];
            for inj in injections {
                prop_assert_eq!(&diff_mask(&t, &inj.table), &inj.cells);
            }
        }

        #[test]
        fn injection_never_exceeds_candidate_rate_bound(
            n in 20usize..80,
            rate in 0.01f64..0.5,
            seed in 0u64..500,
        ) {
            let t = clean_table(n);
            let inj = inject_explicit_missing(&t, &[0, 1], rate, seed);
            let expected = ((2 * n) as f64 * rate).round() as usize;
            prop_assert!(inj.cells.count() <= expected.max(1));
        }

        #[test]
        fn compose_error_types_are_deduplicated(
            seed in 0u64..200,
        ) {
            let t = clean_table(40);
            let d = compose::compose(
                &t,
                &[
                    compose::ErrorSpec::ExplicitMissing { cols: vec![0], rate: 0.1 },
                    compose::ErrorSpec::ExplicitMissing { cols: vec![1], rate: 0.1 },
                ],
                seed,
            );
            prop_assert_eq!(d.error_types.len(), 1);
        }

        #[test]
        fn duplicate_pairs_reference_valid_rows(
            rate in 0.01f64..0.5,
            fuzz in 0.0f64..1.0,
            seed in 0u64..500,
        ) {
            let t = clean_table(30);
            let inj = inject_duplicates(&t, rate, fuzz, seed);
            for &(src, dup) in &inj.pairs {
                prop_assert!(src < 30);
                prop_assert!(dup >= 30 && dup < inj.table.n_rows());
            }
        }
    }
}
