//! Generators for the clustering datasets (Water, HAR, Power) and the
//! task-free Soccer dataset used in the scalability study.

use rand::prelude::*;
use rand::rngs::StdRng;
use rein_constraints::fd::FunctionalDependency;
use rein_data::rng::{derive_seed, randn};
use rein_data::{ColumnRole, ColumnType, MlTask, Value};
use rein_errors::compose::ErrorSpec;

use crate::common::{finish, GeneratedDataset};
use crate::gen::*;

/// Water Treatment (527 × 38, manufacturing, UC): plant measurements with
/// a planted operational-regime cluster structure; outliers and implicit
/// missing values at rate 0.14.
pub fn water(p: &Params) -> GeneratedDataset {
    let n = p.rows(527);
    let d = 38;
    let mut rng = StdRng::seed_from_u64(derive_seed(p.seed, 21));
    let (features, _) = cluster_features(&mut rng, n, d, 4, 1.0);
    let mut b = TableBuilder::new();
    for (i, f) in features.into_iter().enumerate() {
        b = b.column(&format!("q_{i:02}"), ColumnType::Float, ColumnRole::Feature, floats(f));
    }
    let clean = b.build();
    let all: Vec<usize> = (0..d).collect();
    let specs = [
        ErrorSpec::Outliers { cols: all.clone(), rate: 0.08, degree: 4.0 },
        ErrorSpec::DisguisedMissing { cols: all, rate: 0.07 },
    ];
    finish(
        "water",
        "Manufacturing",
        MlTask::Clustering,
        clean,
        &specs,
        0.14,
        p.seed,
        vec![],
        vec![],
    )
}

/// HAR (70000 × 4, wearables, UC): tri-axial accelerometer summaries with
/// one activity tag column; outliers and missing values at rate 0.13.
pub fn har(p: &Params) -> GeneratedDataset {
    let n = p.rows(70000);
    let mut rng = StdRng::seed_from_u64(derive_seed(p.seed, 22));
    let activities = ["walking", "standing", "sitting", "stairs", "laying", "running"];
    let (features, assignment) = cluster_features(&mut rng, n, 3, activities.len(), 0.8);
    let mut b = TableBuilder::new();
    for (i, f) in features.into_iter().enumerate() {
        b = b.column(
            &format!("acc_{}", ["x", "y", "z"][i]),
            ColumnType::Float,
            ColumnRole::Feature,
            floats(f),
        );
    }
    let tags: Vec<Value> = assignment.iter().map(|&a| Value::str(activities[a])).collect();
    let clean = b.column("activity", ColumnType::Str, ColumnRole::Feature, tags).build();
    let specs = [
        ErrorSpec::Outliers { cols: vec![0, 1, 2], rate: 0.1, degree: 4.0 },
        ErrorSpec::ExplicitMissing { cols: vec![0, 1, 2, 3], rate: 0.07 },
    ];
    finish("har", "Wearables", MlTask::Clustering, clean, &specs, 0.13, p.seed, vec![], vec![])
}

/// Power (1456 × 24, energy, UC): daily load curves (one column per hour)
/// with day-type cluster structure; typos, missing and implicit missing
/// values at the small rate 0.037.
pub fn power(p: &Params) -> GeneratedDataset {
    let n = p.rows(1456);
    let mut rng = StdRng::seed_from_u64(derive_seed(p.seed, 23));
    let mut cols: Vec<Vec<Value>> = (0..24).map(|_| Vec::with_capacity(n)).collect();
    for i in 0..n {
        // Weekday vs weekend load shapes.
        let weekend = i % 7 >= 5;
        for (h, col) in cols.iter_mut().enumerate() {
            let hour = h as f64;
            let base = if weekend {
                1.2 + 0.6 * (-(hour - 12.0).powi(2) / 40.0).exp()
            } else {
                1.0 + 0.9 * (-(hour - 8.0).powi(2) / 10.0).exp()
                    + 1.1 * (-(hour - 19.0).powi(2) / 12.0).exp()
            };
            col.push(Value::float(base + 0.08 * randn(&mut rng)));
        }
    }
    let mut b = TableBuilder::new();
    for (h, col) in cols.into_iter().enumerate() {
        b = b.column(&format!("kw_h{h:02}"), ColumnType::Float, ColumnRole::Feature, col);
    }
    let clean = b.build();
    let all: Vec<usize> = (0..24).collect();
    let specs = [
        ErrorSpec::Typos { cols: all.clone(), rate: 0.013 },
        ErrorSpec::ExplicitMissing { cols: all.clone(), rate: 0.012 },
        ErrorSpec::ImplicitMissing { cols: all, rate: 0.012 },
    ];
    finish("power", "Energy", MlTask::Clustering, clean, &specs, 0.037, p.seed, vec![], vec![])
}

/// Soccer (180228 × 44, business, no ML task): the scalability stress
/// dataset with the FD `league → country`; rule violations, outliers and
/// (implicit) missing values at rate 0.27.
pub fn soccer(p: &Params) -> GeneratedDataset {
    let n = p.rows(180228);
    let mut rng = StdRng::seed_from_u64(derive_seed(p.seed, 24));
    let leagues = [
        ("premier_league", "england"),
        ("la_liga", "spain"),
        ("bundesliga", "germany"),
        ("serie_a", "italy"),
        ("ligue_1", "france"),
    ];
    let positions = ["gk", "def", "mid", "fwd"];
    let n_stats = 40;
    let mut league = Vec::with_capacity(n);
    let mut country = Vec::with_capacity(n);
    let mut position = Vec::with_capacity(n);
    let mut name = Vec::with_capacity(n);
    let mut stats: Vec<Vec<Value>> = (0..n_stats).map(|_| Vec::with_capacity(n)).collect();
    for i in 0..n {
        let l = rng.random_range(0..leagues.len());
        league.push(Value::str(leagues[l].0));
        country.push(Value::str(leagues[l].1));
        position.push(Value::str(positions[rng.random_range(0..positions.len())]));
        name.push(Value::str(format!("player_{i}")));
        let skill = 50.0 + 15.0 * randn(&mut rng);
        for s in stats.iter_mut() {
            s.push(Value::float((skill + 8.0 * randn(&mut rng)).clamp(1.0, 99.0)));
        }
    }
    let mut b = TableBuilder::new()
        .column("player_name", ColumnType::Str, ColumnRole::Id, name)
        .column("league", ColumnType::Str, ColumnRole::Feature, league)
        .column("country", ColumnType::Str, ColumnRole::Feature, country)
        .column("position", ColumnType::Str, ColumnRole::Feature, position);
    for (si, s) in stats.into_iter().enumerate() {
        b = b.column(&format!("stat_{si:02}"), ColumnType::Float, ColumnRole::Feature, s);
    }
    let clean = b.build();
    let fds = vec![FunctionalDependency::new([1], 2)];
    let stat_cols: Vec<usize> = (4..4 + n_stats).collect();
    let specs = [
        ErrorSpec::FdViolations { fd: fds[0].clone(), rate: 0.3 },
        ErrorSpec::Outliers { cols: stat_cols.clone(), rate: 0.1, degree: 4.0 },
        ErrorSpec::ExplicitMissing { cols: stat_cols.clone(), rate: 0.1 },
        ErrorSpec::ImplicitMissing { cols: stat_cols, rate: 0.08 },
    ];
    finish("soccer", "Business", MlTask::None, clean, &specs, 0.27, p.seed, fds, vec![0])
}

#[cfg(test)]
mod tests {
    use super::*;
    use rein_constraints::fd;

    #[test]
    fn water_shape_and_rate() {
        let d = water(&Params::scaled(0.3, 1));
        assert_eq!(d.clean.n_cols(), 38);
        assert_eq!(d.info.task, rein_data::MlTask::Clustering);
        assert!((d.error_rate() - 0.14).abs() < 0.08, "rate {}", d.error_rate());
    }

    #[test]
    fn har_has_one_categorical_column() {
        let d = har(&Params::scaled(0.003, 2));
        assert_eq!(d.clean.n_cols(), 4);
        assert_eq!(d.clean.schema().categorical_indices(), vec![3]);
    }

    #[test]
    fn power_low_error_rate() {
        let d = power(&Params::scaled(0.2, 3));
        assert_eq!(d.clean.n_cols(), 24);
        assert!(d.error_rate() < 0.1, "rate {}", d.error_rate());
        assert!(d.error_rate() > 0.0);
    }

    #[test]
    fn soccer_fd_and_no_task() {
        let d = soccer(&Params::scaled(0.005, 4));
        assert_eq!(d.clean.n_cols(), 44);
        assert_eq!(d.info.task, rein_data::MlTask::None);
        assert!(fd::holds(&d.clean, &d.fds[0]));
        assert!(d.error_rate() > 0.15, "rate {}", d.error_rate());
    }

    #[test]
    fn clustering_datasets_have_no_label() {
        for d in [water(&Params::scaled(0.1, 5)), power(&Params::scaled(0.05, 5))] {
            assert_eq!(d.clean.schema().label_index(), None);
        }
    }
}
