//! Figure 3d–e: detector scalability on the Soccer dataset.
//!
//! Runs a detector panel over increasing fractions of the (scaled) Soccer
//! dataset and reports F1 and runtime per fraction — the experiment behind
//! the paper's "ML-based detectors do not scale past ~50k rows" finding.

// Benchmark bins emit their report tables on stdout by design.
#![allow(clippy::print_stdout)]

use rein_bench::{conclude, dataset_at, f, header, phase, scale};
use rein_core::DetectorHarness;
use rein_datasets::DatasetId;
use rein_detect::DetectorKind;

const PANEL: [DetectorKind; 8] = [
    DetectorKind::Sd,
    DetectorKind::Iqr,
    DetectorKind::DBoost,
    DetectorKind::Nadeef,
    DetectorKind::Katara,
    DetectorKind::MinK,
    DetectorKind::Raha,
    DetectorKind::Ed2,
];

fn main() {
    let setup = phase("setup");
    let fractions = [0.1, 0.25, 0.5, 0.75, 1.0];
    header("Figure 3d/3e — Soccer scalability (F1 and runtime per data fraction)");
    println!("base scale REIN_SCALE={} of 180228 rows\n", scale());

    let mut f1: Vec<(DetectorKind, Vec<f64>)> = PANEL.iter().map(|&k| (k, Vec::new())).collect();
    let mut rt: Vec<(DetectorKind, Vec<f64>)> = PANEL.iter().map(|&k| (k, Vec::new())).collect();
    let mut rows_per_fraction = Vec::new();
    drop(setup);
    let sweep = phase("sweep");
    for (fi, frac) in fractions.iter().enumerate() {
        let generate = phase("generate");
        let ds = dataset_at(DatasetId::Soccer, scale() * frac, 40 + fi as u64);
        rows_per_fraction.push(ds.dirty.n_rows());
        drop(generate);
        let harness = DetectorHarness::new(&ds, 100, 9);
        for (kind, series) in f1.iter_mut() {
            let run = harness.run(&ds, *kind);
            series.push(run.quality.f1);
            rt.iter_mut()
                .find(|(k, _)| k == kind)
                .expect("same panel")
                .1
                .push(run.runtime.as_secs_f64());
        }
    }
    drop(sweep);

    let _report = phase("report");
    print!("{:<18}", "fraction");
    for (frac, rows) in fractions.iter().zip(&rows_per_fraction) {
        print!("{:>12}", format!("{frac} ({rows})"));
    }
    println!("\n\nF1:");
    for (kind, series) in &f1 {
        print!("{:<18}", kind.name());
        for v in series {
            print!("{:>12}", f(*v));
        }
        println!();
    }
    println!("\nruntime (s):");
    for (kind, series) in &rt {
        print!("{:<18}", kind.name());
        for v in series {
            print!("{:>12}", format!("{v:.3}"));
        }
        println!();
    }
    conclude("fig3_scalability", 9, 100);
}
