//! Two-tailed Wilcoxon signed-rank test with continuity correction (§4).
//!
//! REIN uses this non-parametric A/B test to decide whether an ML model
//! "behaves similarly" in two scenarios (e.g. S1 vs S4) across the ten
//! repeated runs. The implementation mirrors the classical procedure:
//! zero differences are discarded, absolute differences are ranked with
//! average ranks for ties, and the rank-sum statistic is referenced to the
//! exact null distribution for small samples (no ties) or to a normal
//! approximation with tie correction and a 0.5 continuity correction.

use serde::{Deserialize, Serialize};

/// Result of a Wilcoxon signed-rank test.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct WilcoxonResult {
    /// The smaller of the positive/negative rank sums (the W statistic).
    pub statistic: f64,
    /// Two-tailed p-value.
    pub p_value: f64,
    /// Number of non-zero differences that entered the test.
    pub n_used: usize,
}

impl WilcoxonResult {
    /// Whether the null hypothesis ("same behaviour") is rejected at `alpha`.
    pub fn rejects_null(&self, alpha: f64) -> bool {
        self.p_value < alpha
    }
}

/// Errors from [`wilcoxon_signed_rank`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WilcoxonError {
    /// The two samples had different lengths.
    LengthMismatch,
    /// After discarding zero differences nothing remained.
    AllZeroDifferences,
}

impl std::fmt::Display for WilcoxonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WilcoxonError::LengthMismatch => write!(f, "paired samples differ in length"),
            WilcoxonError::AllZeroDifferences => {
                write!(f, "all paired differences are zero; test undefined")
            }
        }
    }
}

impl std::error::Error for WilcoxonError {}

/// Standard normal CDF via the Abramowitz–Stegun 7.1.26 erf approximation
/// (absolute error < 1.5e-7, ample for p-value thresholds).
pub fn std_normal_cdf(x: f64) -> f64 {
    let t = x / std::f64::consts::SQRT_2;
    0.5 * (1.0 + erf(t))
}

fn erf(x: f64) -> f64 {
    let sign = if x < 0.0 { -1.0 } else { 1.0 };
    let x = x.abs();
    let t = 1.0 / (1.0 + 0.327_591_1 * x);
    let y = 1.0
        - (((((1.061_405_429 * t - 1.453_152_027) * t) + 1.421_413_741) * t - 0.284_496_736) * t
            + 0.254_829_592)
            * t
            * (-x * x).exp();
    sign * y
}

/// Average ranks of `xs` (1-based; ties get the mean of their rank range).
fn average_ranks(xs: &[f64]) -> Vec<f64> {
    let mut order: Vec<usize> = (0..xs.len()).collect();
    order.sort_by(|&a, &b| xs[a].total_cmp(&xs[b]));
    let mut ranks = vec![0.0; xs.len()];
    let mut i = 0;
    while i < order.len() {
        let mut j = i;
        while j + 1 < order.len() && xs[order[j + 1]] == xs[order[i]] {
            j += 1;
        }
        let avg = (i + 1 + j + 1) as f64 / 2.0;
        for &k in &order[i..=j] {
            ranks[k] = avg;
        }
        i = j + 1;
    }
    ranks
}

/// Exact two-tailed p-value for the signed-rank statistic with `n` untied
/// observations: `P(W⁻ ≤ w or W⁺ ≤ w)` from the exact null distribution,
/// computed by dynamic programming over the 2ⁿ sign assignments.
fn exact_p_value(w_min: f64, n: usize) -> f64 {
    let max_sum = n * (n + 1) / 2;
    // counts[s] = number of sign assignments with positive-rank-sum s.
    let mut counts = vec![0f64; max_sum + 1];
    counts[0] = 1.0;
    for rank in 1..=n {
        for s in (rank..=max_sum).rev() {
            counts[s] += counts[s - rank];
        }
    }
    let total = 2f64.powi(n as i32);
    let w = w_min.floor() as usize;
    let lower: f64 = counts[..=w.min(max_sum)].iter().sum();
    (2.0 * lower / total).min(1.0)
}

/// Two-tailed Wilcoxon signed-rank test on paired samples `a`, `b`.
///
/// Uses the exact distribution when `n ≤ 25` and the differences are untied;
/// otherwise the normal approximation with tie correction and continuity
/// correction.
pub fn wilcoxon_signed_rank(a: &[f64], b: &[f64]) -> Result<WilcoxonResult, WilcoxonError> {
    if a.len() != b.len() {
        return Err(WilcoxonError::LengthMismatch);
    }
    let diffs: Vec<f64> = a.iter().zip(b).map(|(x, y)| x - y).filter(|d| *d != 0.0).collect();
    let n = diffs.len();
    if n == 0 {
        return Err(WilcoxonError::AllZeroDifferences);
    }

    let abs: Vec<f64> = diffs.iter().map(|d| d.abs()).collect();
    let ranks = average_ranks(&abs);
    let w_plus: f64 = diffs.iter().zip(&ranks).filter(|(d, _)| **d > 0.0).map(|(_, r)| r).sum();
    let w_minus: f64 = n as f64 * (n + 1) as f64 / 2.0 - w_plus;
    let w = w_plus.min(w_minus);

    let mut sorted = abs.clone();
    sorted.sort_by(|x, y| x.total_cmp(y));
    let has_ties = sorted.windows(2).any(|p| p[0] == p[1]);

    let p_value = if n <= 25 && !has_ties {
        exact_p_value(w, n)
    } else {
        // Tie-corrected normal approximation.
        let mean = n as f64 * (n + 1) as f64 / 4.0;
        let mut var = n as f64 * (n + 1) as f64 * (2 * n + 1) as f64 / 24.0;
        let mut i = 0;
        while i < sorted.len() {
            let mut j = i;
            while j + 1 < sorted.len() && sorted[j + 1] == sorted[i] {
                j += 1;
            }
            let t = (j - i + 1) as f64;
            if t > 1.0 {
                var -= (t * t * t - t) / 48.0;
            }
            i = j + 1;
        }
        if var <= 0.0 {
            // All differences tied at one magnitude with n too small: fall
            // back to p = 1 (no evidence either way).
            1.0
        } else {
            // Continuity correction pulls |W - mean| toward zero by 0.5.
            let num = (w - mean).abs() - 0.5;
            let z = num.max(0.0) / var.sqrt();
            (2.0 * (1.0 - std_normal_cdf(z))).min(1.0)
        }
    };

    Ok(WilcoxonResult { statistic: w, p_value, n_used: n })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_samples_are_degenerate() {
        let a = [1.0, 2.0, 3.0];
        assert_eq!(wilcoxon_signed_rank(&a, &a).unwrap_err(), WilcoxonError::AllZeroDifferences);
    }

    #[test]
    fn length_mismatch_is_error() {
        assert_eq!(
            wilcoxon_signed_rank(&[1.0], &[1.0, 2.0]).unwrap_err(),
            WilcoxonError::LengthMismatch
        );
    }

    #[test]
    fn normal_cdf_reference_points() {
        assert!((std_normal_cdf(0.0) - 0.5).abs() < 1e-7);
        assert!((std_normal_cdf(1.96) - 0.975).abs() < 1e-3);
        assert!((std_normal_cdf(-1.96) - 0.025).abs() < 1e-3);
    }

    #[test]
    fn exact_small_sample_matches_reference() {
        // R: wilcox.test(c(125,115,130,140,140,115,140,125,140,135),
        //                c(110,122,125,120,140,124,123,137,135,145),
        //                paired=TRUE, correct=TRUE)
        // -> ties + one zero: corrected normal approximation, p = 0.6353.
        let a = [125.0, 115.0, 130.0, 140.0, 140.0, 115.0, 140.0, 125.0, 140.0, 135.0];
        let b = [110.0, 122.0, 125.0, 120.0, 140.0, 124.0, 123.0, 137.0, 135.0, 145.0];
        let r = wilcoxon_signed_rank(&a, &b).unwrap();
        assert_eq!(r.n_used, 9);
        assert!((r.statistic - 18.0).abs() < 1e-9); // min(W+, W-) = min(27, 18)
        assert!((r.p_value - 0.6353).abs() < 0.001, "p = {}", r.p_value);
    }

    #[test]
    fn clearly_shifted_samples_reject_null() {
        let a: Vec<f64> = (0..15).map(|i| i as f64).collect();
        let b: Vec<f64> = (0..15).map(|i| i as f64 + 10.0 + 0.01 * i as f64).collect();
        let r = wilcoxon_signed_rank(&a, &b).unwrap();
        assert!(r.rejects_null(0.05), "p = {}", r.p_value);
        assert!(r.p_value < 0.01);
    }

    #[test]
    fn symmetric_noise_fails_to_reject() {
        // Alternating ±1 differences: perfectly symmetric.
        let a: Vec<f64> = (0..20).map(|i| i as f64).collect();
        let b: Vec<f64> = (0..20).map(|i| i as f64 + if i % 2 == 0 { 1.0 } else { -1.0 }).collect();
        let r = wilcoxon_signed_rank(&a, &b).unwrap();
        assert!(!r.rejects_null(0.05), "p = {}", r.p_value);
        assert!(r.p_value > 0.5);
    }

    #[test]
    fn test_is_symmetric_in_its_arguments() {
        let a = [1.0, 4.0, 2.5, 7.0, 3.0, 9.0, 0.5, 6.0];
        let b = [2.0, 3.0, 5.0, 1.0, 4.0, 8.0, 2.5, 5.5];
        let r1 = wilcoxon_signed_rank(&a, &b).unwrap();
        let r2 = wilcoxon_signed_rank(&b, &a).unwrap();
        assert_eq!(r1.p_value, r2.p_value);
        assert_eq!(r1.statistic, r2.statistic);
    }

    #[test]
    fn large_sample_normal_path() {
        // 30 pairs with a consistent shift: strongly significant.
        let a: Vec<f64> = (0..30).map(|i| (i as f64).sin()).collect();
        let b: Vec<f64> = a.iter().map(|x| x + 0.5).collect();
        let r = wilcoxon_signed_rank(&a, &b).unwrap();
        assert!(r.p_value < 1e-4);
        // All differences tied (-0.5): exercises tie-corrected variance path.
        assert_eq!(r.n_used, 30);
    }

    #[test]
    fn p_value_bounded() {
        let a = [1.0, 2.0];
        let b = [0.5, 2.5];
        let r = wilcoxon_signed_rank(&a, &b).unwrap();
        assert!((0.0..=1.0).contains(&r.p_value));
    }

    #[test]
    fn exact_distribution_sanity_n3() {
        // n=3, W=0 -> 2 * P(W<=0) = 2 * 1/8 = 0.25
        let p = exact_p_value(0.0, 3);
        assert!((p - 0.25).abs() < 1e-12);
        // W at max/2 covers everything.
        assert_eq!(exact_p_value(6.0, 3), 1.0);
    }
}
