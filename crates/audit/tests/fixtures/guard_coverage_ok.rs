//! Positive fixture: the dispatch site is itself a guard dispatcher.

pub fn dispatch(detector: &dyn Detector, ctx: &Ctx, spec: &GuardSpec, policy: &Policy) -> Mask {
    let report = rein_guard::run(
        spec,
        policy,
        |_seed| detector.detect(ctx),
        |_mask| Ok(()),
        |_mask| {},
    );
    report.outcome.unwrap_or_default()
}
