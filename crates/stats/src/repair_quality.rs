//! Repair-phase quality metrics (§6.1).
//!
//! Categorical attributes are scored with precision/recall/F1 over repaired
//! cells; numerical attributes with RMSE between repaired values and their
//! ground truth. Following the paper, numerical cells whose error turned
//! them categorical (typos/disguised values) and which were *not* repaired
//! are filtered out of the RMSE computation.

use rein_data::{CellMask, Table};
use serde::{Deserialize, Serialize};

use crate::confusion::DetectionQuality;

/// Relative tolerance for judging a numerical repair "correct" in the
/// categorical-style P/R/F1 accounting.
pub const REPAIR_TOL: f64 = 1e-6;

/// Precision/recall/F1 of a repair pass over categorical columns.
///
/// * `precision` — correctly repaired cells / repaired cells;
/// * `recall` — correctly repaired cells / actually erroneous cells.
///
/// `repaired` marks the cells the repairer modified; `actual` marks the
/// truly erroneous cells (ground-truth diff of the dirty table).
pub fn categorical_repair_quality(
    dirty: &Table,
    repaired_table: &Table,
    clean: &Table,
    repaired: &CellMask,
    actual: &CellMask,
    columns: &[usize],
) -> DetectionQuality {
    let mut correct = 0usize;
    let mut total_repaired = 0usize;
    let shared = clean.n_rows().min(repaired_table.n_rows());
    for cell in repaired.iter() {
        if !columns.contains(&cell.col) || cell.row >= shared {
            continue;
        }
        // Only count repairs that changed the cell.
        if repaired_table.cell(cell.row, cell.col) == dirty.cell(cell.row, cell.col) {
            continue;
        }
        total_repaired += 1;
        if repaired_table
            .cell(cell.row, cell.col)
            .approx_eq(clean.cell(cell.row, cell.col), REPAIR_TOL)
        {
            correct += 1;
        }
    }
    let actual_in_cols =
        actual.iter().filter(|c| columns.contains(&c.col) && c.row < shared).count();
    let fp = total_repaired - correct;
    let fneg = actual_in_cols.saturating_sub(correct);
    DetectionQuality::from_counts(correct, fp, fneg)
}

/// RMSE summary over numerical columns.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RmseReport {
    /// Root mean squared error over the compared cells.
    pub rmse: f64,
    /// Number of cells that entered the computation.
    pub compared_cells: usize,
    /// Cells skipped because their value was not numeric (e.g. an undetected
    /// typo left a string in a numeric column) — the paper's filtering rule.
    pub skipped_cells: usize,
}

/// RMSE between a data version and the ground truth over `columns`,
/// restricted to the cells in `scope` (normally the actually-erroneous
/// cells, so the metric reflects repair quality, not untouched data).
pub fn numerical_rmse(
    version: &Table,
    clean: &Table,
    scope: &CellMask,
    columns: &[usize],
) -> RmseReport {
    let mut sum_sq = 0.0;
    let mut n = 0usize;
    let mut skipped = 0usize;
    let shared = clean.n_rows().min(version.n_rows());
    for cell in scope.iter() {
        if !columns.contains(&cell.col) || cell.row >= shared {
            continue;
        }
        let truth = clean.cell(cell.row, cell.col).as_f64();
        let got = version.cell(cell.row, cell.col).as_f64();
        match (truth, got) {
            (Some(t), Some(g)) => {
                sum_sq += (t - g).powi(2);
                n += 1;
            }
            _ => skipped += 1,
        }
    }
    let rmse = if n == 0 { f64::NAN } else { (sum_sq / n as f64).sqrt() };
    RmseReport { rmse, compared_cells: n, skipped_cells: skipped }
}

/// Convenience: RMSE of the *dirty* version (the red dashed baseline of
/// Figure 5).
pub fn dirty_rmse(
    dirty: &Table,
    clean: &Table,
    actual: &CellMask,
    columns: &[usize],
) -> RmseReport {
    numerical_rmse(dirty, clean, actual, columns)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rein_data::{ColumnMeta, ColumnType, Schema, Value};

    fn schema() -> Schema {
        Schema::new(vec![
            ColumnMeta::new("num", ColumnType::Float),
            ColumnMeta::new("cat", ColumnType::Str),
        ])
    }

    fn clean() -> Table {
        Table::from_rows(
            schema(),
            vec![
                vec![Value::Float(1.0), Value::str("a")],
                vec![Value::Float(2.0), Value::str("b")],
                vec![Value::Float(3.0), Value::str("c")],
            ],
        )
    }

    #[test]
    fn categorical_quality_counts_correct_repairs() {
        let c = clean();
        let mut dirty = c.clone();
        dirty.set_cell(0, 1, Value::str("x"));
        dirty.set_cell(1, 1, Value::str("y"));
        let actual = rein_data::diff::diff_mask(&c, &dirty);

        let mut repaired_table = dirty.clone();
        repaired_table.set_cell(0, 1, Value::str("a")); // correct
        repaired_table.set_cell(1, 1, Value::str("wrong")); // wrong
        let mut repaired = CellMask::new(3, 2);
        repaired.set(0, 1, true);
        repaired.set(1, 1, true);

        let q = categorical_repair_quality(&dirty, &repaired_table, &c, &repaired, &actual, &[1]);
        assert_eq!(q.true_positives, 1);
        assert_eq!(q.false_positives, 1);
        assert_eq!(q.false_negatives, 1);
        assert_eq!(q.precision, 0.5);
        assert_eq!(q.recall, 0.5);
    }

    #[test]
    fn unchanged_cells_do_not_count_as_repairs() {
        let c = clean();
        let mut dirty = c.clone();
        dirty.set_cell(0, 1, Value::str("x"));
        let actual = rein_data::diff::diff_mask(&c, &dirty);
        // Repairer claims the whole column but changed nothing.
        let mut repaired = CellMask::new(3, 2);
        repaired.set_col(1, true);
        let q = categorical_repair_quality(&dirty, &dirty, &c, &repaired, &actual, &[1]);
        assert_eq!(q.detected(), 0);
        assert_eq!(q.false_negatives, 1);
    }

    #[test]
    fn rmse_over_erroneous_cells() {
        let c = clean();
        let mut dirty = c.clone();
        dirty.set_cell(0, 0, Value::Float(4.0)); // err 3
        dirty.set_cell(2, 0, Value::Float(7.0)); // err 4
        let actual = rein_data::diff::diff_mask(&c, &dirty);
        let r = numerical_rmse(&dirty, &c, &actual, &[0]);
        assert_eq!(r.compared_cells, 2);
        assert!((r.rmse - (12.5f64).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn non_numeric_cells_are_skipped_per_paper_rule() {
        let c = clean();
        let mut dirty = c.clone();
        dirty.set_cell(0, 0, Value::str("9x9")); // typo turned number into string
        dirty.set_cell(1, 0, Value::Float(5.0));
        let actual = rein_data::diff::diff_mask(&c, &dirty);
        let r = numerical_rmse(&dirty, &c, &actual, &[0]);
        assert_eq!(r.compared_cells, 1);
        assert_eq!(r.skipped_cells, 1);
        assert!((r.rmse - 3.0).abs() < 1e-12);
    }

    #[test]
    fn rmse_empty_scope_is_nan() {
        let c = clean();
        let r = numerical_rmse(&c, &c, &CellMask::new(3, 2), &[0]);
        assert!(r.rmse.is_nan());
        assert_eq!(r.compared_cells, 0);
    }

    #[test]
    fn perfect_repair_has_zero_rmse() {
        let c = clean();
        let mut dirty = c.clone();
        dirty.set_cell(0, 0, Value::Float(10.0));
        let actual = rein_data::diff::diff_mask(&c, &dirty);
        let repaired = rein_data::diff::apply_ground_truth(&dirty, &c, &actual);
        let r = numerical_rmse(&repaired, &c, &actual, &[0]);
        assert_eq!(r.rmse, 0.0);
    }
}
