//! Concurrency fixture (negative): an RNG constructed inside a parallel
//! closure from a loop-shared seed — every worker sees the same stream.
//! `par-seed-derivation` must fire even though the seed traces to a
//! parameter (so plain `seed-provenance` is satisfied).

pub fn shard_scores(xs: &[u64], seed: u64) -> Vec<u64> {
    xs.par_iter()
        .map(|x| {
            let mut rng = StdRng::seed_from_u64(seed);
            step(&mut rng, *x)
        })
        .collect()
}

fn step(rng: &mut StdRng, x: u64) -> u64 {
    x
}
