//! A module nobody registers, benches or tests.

pub struct Forgotten;

impl Forgotten {
    pub fn flag_missing(&self, values: &[f64]) -> Vec<bool> {
        values.iter().map(|v| v.is_nan()).collect()
    }
}
