//! Table 4: dataset characteristics.
//!
//! Generates all 14 benchmark datasets at the configured scale and prints
//! rows, columns, numeric/categorical split, realised error rate, error
//! types, domain and ML task — the columns of the paper's Table 4.

// Benchmark bins emit their report tables on stdout by design.
#![allow(clippy::print_stdout)]

use rein_bench::{conclude, dataset, f, header, phase};
use rein_datasets::DatasetId;

fn main() {
    let setup = phase("setup");
    header("Table 4: dataset characteristics");
    println!(
        "{:<14} {:>7} {:>5} {:>5} {:>5} {:>7}  {:<14} {:<14} {:?}",
        "dataset", "rows", "cols", "#num", "#cat", "rate", "domain", "task", "errors"
    );
    drop(setup);
    let generate = phase("generate");
    for (i, id) in DatasetId::ALL.iter().enumerate() {
        let ds = dataset(*id, 100 + i as u64);
        let schema = ds.clean.schema();
        println!(
            "{:<14} {:>7} {:>5} {:>5} {:>5} {:>7}  {:<14} {:<14} {:?}",
            ds.info.name,
            ds.dirty.n_rows(),
            schema.len(),
            schema.numeric_indices().len(),
            schema.categorical_indices().len(),
            f(ds.error_rate()),
            ds.info.domain,
            format!("{:?}", ds.info.task),
            ds.info.errors.types,
        );
    }
    drop(generate);
    let report = phase("report");
    println!(
        "\n(rows scaled by REIN_SCALE={}; paper-size rows via REIN_SCALE=1)",
        rein_bench::scale()
    );
    drop(report);
    conclude("table4_datasets", 100, 0);
}
