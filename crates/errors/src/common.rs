//! Shared plumbing for error injectors.

use rand::prelude::*;
use rand::rngs::StdRng;
use rein_data::{CellMask, CellRef, Table};

/// The outcome of one injection pass: the corrupted table and the mask of
/// cells that were actually modified.
#[derive(Debug, Clone)]
pub struct Injection {
    /// The corrupted table.
    pub table: Table,
    /// Cells changed by this pass (sized to `table`).
    pub cells: CellMask,
}

impl Injection {
    /// An identity injection (nothing changed).
    pub fn unchanged(table: Table) -> Self {
        let cells = CellMask::new(table.n_rows(), table.n_cols());
        Self { table, cells }
    }
}

/// Picks `rate × |candidates|` cells (rounded, at least one when the rate is
/// positive and candidates exist) uniformly without replacement.
pub fn pick_cells(candidates: &[CellRef], rate: f64, rng: &mut StdRng) -> Vec<CellRef> {
    if candidates.is_empty() || rate <= 0.0 {
        return Vec::new();
    }
    let k = ((candidates.len() as f64 * rate).round() as usize).clamp(1, candidates.len());
    let mut idx: Vec<usize> = (0..candidates.len()).collect();
    idx.shuffle(rng);
    let mut out: Vec<CellRef> = idx[..k].iter().map(|&i| candidates[i]).collect();
    out.sort_unstable();
    out
}

/// All non-null cells of the listed columns.
pub fn cells_of_columns(table: &Table, cols: &[usize]) -> Vec<CellRef> {
    let mut out = Vec::new();
    for &c in cols {
        for r in 0..table.n_rows() {
            if !table.cell(r, c).is_null() {
                out.push(CellRef::new(r, c));
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rein_data::{ColumnMeta, ColumnType, Schema, Value};

    fn table() -> Table {
        let schema = Schema::new(vec![
            ColumnMeta::new("a", ColumnType::Int),
            ColumnMeta::new("b", ColumnType::Str),
        ]);
        Table::from_rows(
            schema,
            (0..10).map(|i| vec![Value::Int(i), Value::str(format!("v{i}"))]).collect(),
        )
    }

    #[test]
    fn pick_cells_respects_rate() {
        let t = table();
        let cands = cells_of_columns(&t, &[0, 1]);
        assert_eq!(cands.len(), 20);
        let mut rng = StdRng::seed_from_u64(1);
        let picked = pick_cells(&cands, 0.25, &mut rng);
        assert_eq!(picked.len(), 5);
        // Distinct.
        let mut d = picked.clone();
        d.dedup();
        assert_eq!(d.len(), 5);
    }

    #[test]
    fn pick_cells_minimum_one() {
        let t = table();
        let cands = cells_of_columns(&t, &[0]);
        let mut rng = StdRng::seed_from_u64(1);
        assert_eq!(pick_cells(&cands, 0.001, &mut rng).len(), 1);
        assert!(pick_cells(&cands, 0.0, &mut rng).is_empty());
        assert!(pick_cells(&[], 0.5, &mut rng).is_empty());
    }

    #[test]
    fn cells_of_columns_skips_nulls() {
        let mut t = table();
        t.set_cell(0, 0, Value::Null);
        assert_eq!(cells_of_columns(&t, &[0]).len(), 9);
    }

    #[test]
    fn pick_cells_deterministic_per_seed() {
        let t = table();
        let cands = cells_of_columns(&t, &[0, 1]);
        let a = pick_cells(&cands, 0.3, &mut StdRng::seed_from_u64(9));
        let b = pick_cells(&cands, 0.3, &mut StdRng::seed_from_u64(9));
        assert_eq!(a, b);
    }
}
