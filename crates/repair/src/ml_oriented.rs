//! ML-oriented repair methods (category II of Table 1): their output is a
//! trained model, not a repaired table — ActiveClean, BoostClean and
//! CPClean, evaluated under scenario S5.

use rand::prelude::*;
use rand::rngs::StdRng;
use rein_data::{CellMask, Table};
use rein_ml::encode::{select_matrix_rows, Encoder, LabelMap};
use rein_ml::knn::KnnClassifier;
use rein_ml::linalg::Matrix;
use rein_ml::model::Classifier;
use rein_ml::sgd::{SgdClassifier, SgdParams};
use rein_ml::tree::{DecisionTreeClassifier, TreeParams};

use crate::context::{RepairContext, RepairOutcome, Repairer, TrainedPipeline};

fn feature_cols(t: &Table, label_col: usize) -> Vec<usize> {
    (0..t.n_cols()).filter(|&c| c != label_col).collect()
}

fn dirty_rows(det: &CellMask, n_rows: usize, n_cols: usize) -> Vec<usize> {
    (0..n_rows).filter(|&r| (0..n_cols).any(|c| det.get(r, c))).collect()
}

/// Applies the ground truth to all detected cells of the given rows
/// (the cleaning oracle the paper simulates for these methods).
fn oracle_clean_rows(table: &mut Table, clean: &Table, det: &CellMask, rows: &[usize]) {
    for &r in rows {
        if r >= clean.n_rows() {
            continue;
        }
        for c in 0..table.n_cols() {
            if det.get(r, c) {
                table.set_cell(r, c, clean.cell(r, c).clone());
            }
        }
    }
}

/// ActiveClean (Krishnan et al.): starts from a model trained on the clean
/// partition, then iteratively samples dirty records, has the oracle clean
/// them, and updates the convex model with further SGD passes over the
/// cleaned data — progressive cleaning along the steepest descent.
#[derive(Debug, Clone)]
pub struct ActiveClean {
    /// Records cleaned per iteration.
    pub batch: usize,
    /// Number of cleaning iterations.
    pub iterations: usize,
}

impl Default for ActiveClean {
    fn default() -> Self {
        Self { batch: 10, iterations: 5 }
    }
}

impl Repairer for ActiveClean {
    fn name(&self) -> &'static str {
        "activeclean"
    }

    fn repair(&self, ctx: &RepairContext<'_>) -> RepairOutcome {
        let _span = rein_telemetry::span("repair:ml_oriented");
        let t = ctx.dirty;
        // audit:allow(panic, documented precondition: ActiveClean only runs on labelled datasets)
        let label_col = ctx.label_col.expect("ActiveClean requires a label column");
        let feats = feature_cols(t, label_col);
        let labels = LabelMap::fit([t], label_col);
        let encoder = Encoder::fit(t, &feats);

        let dirty_set = dirty_rows(ctx.detections, t.n_rows(), t.n_cols());
        let clean_fraction: Vec<usize> =
            (0..t.n_rows()).filter(|r| !dirty_set.contains(r)).collect();

        // Working table that gets progressively cleaned.
        let mut working = t.clone();
        let mut available: Vec<usize> = dirty_set.clone();
        let mut rng = StdRng::seed_from_u64(ctx.seed);
        available.shuffle(&mut rng);

        // The paper notes ActiveClean fails when no clean partition covers
        // all classes; we warm-start on whatever clean fraction exists and
        // fall back to the dirty data when it is empty.
        let mut train_rows: Vec<usize> =
            if clean_fraction.is_empty() { (0..t.n_rows()).collect() } else { clean_fraction };

        let mut model = SgdClassifier::new(SgdParams::default(), ctx.seed);
        // One fixed encoder (fitted on the dirty data) keeps the feature
        // space stable across cleaning iterations and at deployment.
        let fit = |model: &mut SgdClassifier, working: &Table, rows: &[usize]| {
            let x = encoder.transform(working);
            let (kept, y) = labels.encode(working, label_col);
            let keep: Vec<(usize, usize)> = kept
                .iter()
                .zip(&y)
                .filter(|(r, _)| rows.contains(r))
                .map(|(&r, &v)| (r, v))
                .collect();
            if keep.is_empty() {
                return;
            }
            let rows2: Vec<usize> = keep.iter().map(|(r, _)| *r).collect();
            let ys: Vec<usize> = keep.iter().map(|(_, v)| *v).collect();
            let xs = select_matrix_rows(&x, &rows2);
            model.fit(&xs, &ys, labels.n_classes());
        };
        fit(&mut model, &working, &train_rows);

        if let Some(clean) = ctx.clean {
            let budget = ctx.label_budget.max(self.batch);
            let mut used = 0usize;
            for _ in 0..self.iterations {
                rein_guard::checkpoint(self.batch as u64);
                if available.is_empty() || used >= budget {
                    break;
                }
                let take = self.batch.min(available.len()).min(budget - used);
                let batch: Vec<usize> = available.split_off(available.len() - take);
                used += take;
                oracle_clean_rows(&mut working, clean, ctx.detections, &batch);
                train_rows.extend(batch);
                fit(&mut model, &working, &train_rows);
            }
        }

        RepairOutcome::Model(TrainedPipeline {
            model: Box::new(model),
            encoder,
            labels,
            feature_cols: feats,
            label_col,
        })
    }
}

/// An AdaBoost-style ensemble of trees trained on different repaired data
/// versions (BoostClean's strong learner).
pub struct BoostEnsemble {
    learners: Vec<(DecisionTreeClassifier, f64)>,
    n_classes: usize,
}

impl Classifier for BoostEnsemble {
    fn fit(&mut self, _x: &Matrix, _y: &[usize], _n: usize) {
        // Trained by BoostClean itself; refitting is not meaningful.
    }

    fn predict(&self, x: &Matrix) -> Vec<usize> {
        if self.learners.is_empty() {
            return vec![0; x.rows()];
        }
        (0..x.rows())
            .map(|r| {
                let mut scores = vec![0.0; self.n_classes];
                for (tree, alpha) in &self.learners {
                    let p = tree.proba_row(x.row(r));
                    scores[rein_ml::linalg::argmax(&p)] += alpha;
                }
                rein_ml::linalg::argmax(&scores)
            })
            .collect()
    }
}

/// BoostClean (Krishnan et al.): treats error correction as statistical
/// boosting. Each round trains a weak learner on every candidate repaired
/// version of the training data (detector × repair pairs) and keeps the
/// one minimising the weighted validation error; the weak learners are
/// combined à la AdaBoost.
#[derive(Debug, Clone)]
pub struct BoostClean {
    /// Boosting rounds.
    pub rounds: usize,
}

impl Default for BoostClean {
    fn default() -> Self {
        Self { rounds: 5 }
    }
}

impl Repairer for BoostClean {
    fn name(&self) -> &'static str {
        "boostclean"
    }

    fn repair(&self, ctx: &RepairContext<'_>) -> RepairOutcome {
        let _span = rein_telemetry::span("repair:ml_oriented");
        let t = ctx.dirty;
        // audit:allow(panic, documented precondition: BoostClean only runs on labelled datasets)
        let label_col = ctx.label_col.expect("BoostClean requires a label column");
        let feats = feature_cols(t, label_col);
        let labels = LabelMap::fit([t], label_col);
        let encoder = Encoder::fit(t, &feats);

        // Candidate repaired versions from the generic repair library.
        let candidates: Vec<Table> = {
            use crate::generic::StandardImpute;
            let mut out = vec![t.clone()]; // "no repair" candidate
            for rep in [
                StandardImpute::mean_mode(),
                StandardImpute::median_mode(),
                StandardImpute::mode_mode(),
            ] {
                if let RepairOutcome::Repaired { table, .. } =
                    rep.repair(&RepairContext::new(t, ctx.detections))
                {
                    out.push(table);
                }
            }
            out
        };

        // Shared label encoding (row-aligned across candidates).
        let (rows, y) = labels.encode(t, label_col);
        if rows.len() < 10 || labels.n_classes() < 2 {
            // Degenerate: train a plain tree on the dirty data.
            let x = encoder.transform(t);
            let xs = select_matrix_rows(&x, &rows);
            let mut tree = DecisionTreeClassifier::new(TreeParams::default());
            tree.fit(&xs, &y, labels.n_classes().max(2));
            return RepairOutcome::Model(TrainedPipeline {
                model: Box::new(BoostEnsemble {
                    learners: vec![(tree, 1.0)],
                    n_classes: labels.n_classes().max(2),
                }),
                encoder,
                labels,
                feature_cols: feats,
                label_col,
            });
        }
        let n_classes = labels.n_classes();
        let k = n_classes as f64;
        // Encoded features per candidate version (aligned rows).
        let encoded: Vec<Matrix> = candidates
            .iter()
            .map(|cand| {
                let enc = Encoder::fit(cand, &feats);
                let x = enc.transform(cand);
                select_matrix_rows(&x, &rows)
            })
            .collect();

        let n = rows.len();
        let mut weights = vec![1.0 / n as f64; n];
        let mut learners: Vec<(DecisionTreeClassifier, f64)> = Vec::new();
        for round in 0..self.rounds {
            rein_guard::checkpoint(n as u64);
            // Train one weak learner per candidate; keep the best.
            let mut best: Option<(DecisionTreeClassifier, f64, Vec<usize>)> = None;
            for x in &encoded {
                let mut tree = DecisionTreeClassifier::new(TreeParams {
                    max_depth: 3,
                    seed: round as u64,
                    ..Default::default()
                });
                tree.fit(x, &y, n_classes);
                let preds = tree.predict(x);
                let err: f64 = weights
                    .iter()
                    .zip(preds.iter().zip(&y))
                    .filter(|(_, (p, t))| p != t)
                    .map(|(w, _)| w)
                    .sum();
                if best.as_ref().is_none_or(|(_, e, _)| err < *e) {
                    best = Some((tree, err, preds));
                }
            }
            // audit:allow(panic, the candidate loop always runs at least once)
            let (tree, err, preds) = best.expect("candidates non-empty");
            let err = err.clamp(1e-10, 1.0);
            if err >= 1.0 - 1.0 / k {
                break;
            }
            let alpha = ((1.0 - err) / err).ln() + (k - 1.0).ln();
            for (w, (p, t)) in weights.iter_mut().zip(preds.iter().zip(&y)) {
                if p != t {
                    *w *= alpha.exp().min(1e12);
                }
            }
            let total: f64 = weights.iter().sum();
            weights.iter_mut().for_each(|w| *w /= total);
            learners.push((tree, alpha));
            if err < 1e-8 {
                break;
            }
        }

        RepairOutcome::Model(TrainedPipeline {
            model: Box::new(BoostEnsemble { learners, n_classes }),
            encoder,
            labels,
            feature_cols: feats,
            label_col,
        })
    }
}

/// CPClean (Karlaš et al.): incremental cleaning until the k-NN model's
/// predictions are *certain* — cleaning a training row can no longer flip
/// any validation prediction. Greedily cleans the dirty rows that appear
/// in the most uncertain neighbourhoods.
#[derive(Debug, Clone)]
pub struct CpClean {
    /// k of the underlying k-NN classifier.
    pub k: usize,
}

impl Default for CpClean {
    fn default() -> Self {
        Self { k: 3 }
    }
}

impl Repairer for CpClean {
    fn name(&self) -> &'static str {
        "cpclean"
    }

    fn repair(&self, ctx: &RepairContext<'_>) -> RepairOutcome {
        let _span = rein_telemetry::span("repair:ml_oriented");
        let t = ctx.dirty;
        // audit:allow(panic, documented precondition: CPClean only runs on labelled datasets)
        let label_col = ctx.label_col.expect("CPClean requires a label column");
        let feats = feature_cols(t, label_col);
        let labels = LabelMap::fit([t], label_col);

        let mut working = t.clone();
        let dirty_set = dirty_rows(ctx.detections, t.n_rows(), t.n_cols());

        if let Some(clean) = ctx.clean {
            // Validation split for certainty checking.
            let split = rein_data::split::train_test_indices(t.n_rows(), 0.2, ctx.seed);
            let mut budget = ctx.label_budget;
            let mut remaining: Vec<usize> =
                dirty_set.iter().copied().filter(|r| split.train.contains(r)).collect();
            while budget > 0 && !remaining.is_empty() {
                // Certainty check: which validation points have a dirty row
                // among their k nearest training rows?
                let enc = Encoder::fit(&working, &feats);
                let x = enc.transform(&working);
                let mut influence: std::collections::BTreeMap<usize, usize> = Default::default();
                for &v in &split.test {
                    let mut dists: Vec<(f64, usize)> = split
                        .train
                        .iter()
                        .map(|&tr| (rein_ml::linalg::sq_dist(x.row(v), x.row(tr)), tr))
                        .collect();
                    let kk = self.k.min(dists.len());
                    if kk == 0 {
                        continue;
                    }
                    dists.select_nth_unstable_by(kk - 1, |a, b| a.0.total_cmp(&b.0));
                    for &(_, tr) in &dists[..kk] {
                        if remaining.contains(&tr) {
                            *influence.entry(tr).or_insert(0) += 1;
                        }
                    }
                }
                if influence.is_empty() {
                    break; // predictions are certain
                }
                // Clean the most influential dirty rows this round.
                let mut ranked: Vec<(usize, usize)> = influence.into_iter().collect();
                ranked.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
                let take = ranked.len().min(budget).min(8);
                let batch: Vec<usize> = ranked.into_iter().take(take).map(|(r, _)| r).collect();
                budget -= batch.len();
                oracle_clean_rows(&mut working, clean, ctx.detections, &batch);
                remaining.retain(|r| !batch.contains(r));
            }
        }

        // Final k-NN model on the (partially) cleaned data.
        let encoder = Encoder::fit(&working, &feats);
        let x = encoder.transform(&working);
        let (rows, y) = labels.encode(&working, label_col);
        let xs = select_matrix_rows(&x, &rows);
        let mut model = KnnClassifier::new(self.k);
        model.fit(&xs, &y, labels.n_classes().max(2));
        RepairOutcome::Model(TrainedPipeline {
            model: Box::new(model),
            encoder,
            labels,
            feature_cols: feats,
            label_col,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rein_data::diff::diff_mask;
    use rein_data::{ColumnMeta, ColumnType, Schema, Value};

    /// Separable classification data with feature corruption.
    fn dataset() -> (Table, Table, CellMask) {
        let schema = Schema::new(vec![
            ColumnMeta::new("x1", ColumnType::Float),
            ColumnMeta::new("x2", ColumnType::Float),
            ColumnMeta::new("y", ColumnType::Str).label(),
        ]);
        let clean = Table::from_rows(
            schema,
            (0..160)
                .map(|i| {
                    let pos = i % 2 == 0;
                    let base = if pos { 8.0 } else { -8.0 };
                    vec![
                        Value::Float(base + (i % 7) as f64 * 0.1),
                        Value::Float(base - (i % 5) as f64 * 0.1),
                        Value::str(if pos { "pos" } else { "neg" }),
                    ]
                })
                .collect(),
        );
        let mut dirty = clean.clone();
        // Corrupt 25% of x1 so the dirty model is hurt.
        for i in 0..40 {
            dirty.set_cell(i * 4, 0, Value::Float(if i % 2 == 0 { -100.0 } else { 100.0 }));
        }
        let det = diff_mask(&clean, &dirty);
        (clean, dirty, det)
    }

    #[test]
    fn activeclean_improves_with_oracle() {
        let (clean, dirty, det) = dataset();
        let ctx = RepairContext {
            clean: Some(&clean),
            label_col: Some(2),
            label_budget: 40,
            ..RepairContext::new(&dirty, &det)
        };
        let out = ActiveClean::default().repair(&ctx);
        match out {
            RepairOutcome::Model(p) => {
                let f1 = p.f1_on(&clean);
                assert!(f1 > 0.85, "f1 {f1}");
            }
            _ => panic!("expected model"),
        }
    }

    #[test]
    fn boostclean_produces_working_ensemble() {
        let (clean, dirty, det) = dataset();
        let ctx = RepairContext {
            clean: Some(&clean),
            label_col: Some(2),
            ..RepairContext::new(&dirty, &det)
        };
        let out = BoostClean::default().repair(&ctx);
        match out {
            RepairOutcome::Model(p) => {
                let f1 = p.f1_on(&clean);
                assert!(f1 > 0.8, "f1 {f1}");
            }
            _ => panic!("expected model"),
        }
    }

    #[test]
    fn cpclean_cleans_influential_rows_first() {
        let (clean, dirty, det) = dataset();
        let ctx = RepairContext {
            clean: Some(&clean),
            label_col: Some(2),
            label_budget: 30,
            ..RepairContext::new(&dirty, &det)
        };
        let out = CpClean::default().repair(&ctx);
        match out {
            RepairOutcome::Model(p) => {
                let f1 = p.f1_on(&clean);
                assert!(f1 > 0.8, "f1 {f1}");
            }
            _ => panic!("expected model"),
        }
    }

    #[test]
    fn methods_work_without_oracle_as_dirty_baseline() {
        let (_, dirty, det) = dataset();
        for (name, out) in [
            (
                "activeclean",
                ActiveClean::default().repair(&RepairContext {
                    label_col: Some(2),
                    ..RepairContext::new(&dirty, &det)
                }),
            ),
            (
                "cpclean",
                CpClean::default().repair(&RepairContext {
                    label_col: Some(2),
                    ..RepairContext::new(&dirty, &det)
                }),
            ),
        ] {
            match out {
                RepairOutcome::Model(p) => {
                    let f1 = p.f1_on(&dirty);
                    assert!(f1 > 0.5, "{name} f1 {f1}");
                }
                _ => panic!("{name}: expected model"),
            }
        }
    }
}
