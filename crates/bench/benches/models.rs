//! Criterion benchmarks for the model zoo: per-family training cost on a
//! fixed encoded dataset (the hidden cost behind the (ε+1)·h·s experiment
//! explosion of §2).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rein_datasets::{DatasetId, Params};
use rein_ml::encode::{Encoder, LabelMap};
use rein_ml::model::{ClassifierKind, ClustererKind, RegressorKind};

fn bench_models(c: &mut Criterion) {
    // Classification on beers.
    let ds = DatasetId::Beers.generate(&Params::scaled(0.1, 1));
    let label = ds.clean.schema().label_index().unwrap();
    let features = ds.clean.schema().feature_indices();
    let encoder = Encoder::fit(&ds.clean, &features);
    let x = encoder.transform(&ds.clean);
    let labels = LabelMap::fit([&ds.clean], label);
    let (_, y) = labels.encode(&ds.clean, label);
    let n_classes = labels.n_classes();

    let mut group = c.benchmark_group("classifier_fit");
    group.sample_size(10);
    for kind in ClassifierKind::ALL {
        group.bench_with_input(BenchmarkId::from_parameter(kind.name()), &kind, |b, &kind| {
            b.iter(|| {
                let mut m = kind.build(1);
                m.fit(&x, &y, n_classes);
                m.predict(&x)
            });
        });
    }
    group.finish();

    // Regression on nasa.
    let ds = DatasetId::Nasa.generate(&Params::scaled(0.2, 2));
    let label = ds.clean.schema().label_index().unwrap();
    let features = ds.clean.schema().feature_indices();
    let encoder = Encoder::fit(&ds.clean, &features);
    let x = encoder.transform(&ds.clean);
    let (_, y) = rein_ml::encode::regression_target(&ds.clean, label);

    let mut group = c.benchmark_group("regressor_fit");
    group.sample_size(10);
    for kind in RegressorKind::ALL {
        group.bench_with_input(BenchmarkId::from_parameter(kind.name()), &kind, |b, &kind| {
            b.iter(|| {
                let mut m = kind.build(1);
                m.fit(&x, &y);
                m.predict(&x)
            });
        });
    }
    group.finish();

    // Clustering on water.
    let ds = DatasetId::Water.generate(&Params::scaled(0.3, 3));
    let features = ds.clean.schema().feature_indices();
    let encoder = Encoder::fit(&ds.clean, &features);
    let x = encoder.transform(&ds.clean);

    let mut group = c.benchmark_group("clusterer_fit");
    group.sample_size(10);
    for kind in ClustererKind::ALL {
        group.bench_with_input(BenchmarkId::from_parameter(kind.name()), &kind, |b, &kind| {
            b.iter(|| kind.build(4, 1).fit_predict(&x));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_models);
criterion_main!(benches);
