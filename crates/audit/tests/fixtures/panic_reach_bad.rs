//! Negative fixture: a public API transitively reaches an unannotated
//! panic in library code.

fn first_value(values: &[f64]) -> f64 {
    values.first().copied().unwrap()
}

fn summarize(values: &[f64]) -> f64 {
    first_value(values) / values.len() as f64
}

pub fn normalized_head(values: &[f64]) -> f64 {
    summarize(values)
}
