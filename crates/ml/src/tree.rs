//! CART decision trees (classification by Gini impurity, regression by
//! variance reduction), with optional per-node feature subsampling so the
//! same machinery drives random forests.

use rand::prelude::*;
use rand::rngs::StdRng;

use crate::linalg::Matrix;
use crate::model::{Classifier, Regressor};

/// Tree growth limits.
#[derive(Debug, Clone)]
pub struct TreeParams {
    /// Maximum depth.
    pub max_depth: usize,
    /// Minimum samples required to split a node.
    pub min_samples_split: usize,
    /// Minimum samples in each leaf.
    pub min_samples_leaf: usize,
    /// Features considered per split (`None` = all); forests set √d.
    pub max_features: Option<usize>,
    /// Seed for feature subsampling.
    pub seed: u64,
}

impl Default for TreeParams {
    fn default() -> Self {
        Self {
            max_depth: 12,
            min_samples_split: 4,
            min_samples_leaf: 2,
            max_features: None,
            seed: 0,
        }
    }
}

#[derive(Debug, Clone)]
enum Node {
    Split {
        feature: usize,
        threshold: f64,
        left: usize,
        right: usize,
    },
    /// Leaf payload: class histogram (classification) or mean (regression,
    /// stored as a one-element histogram with the mean in `value`).
    Leaf {
        value: Vec<f64>,
    },
}

#[derive(Debug, Clone)]
struct Tree {
    nodes: Vec<Node>,
}

enum Target<'a> {
    Class { y: &'a [usize], n_classes: usize },
    Reg { y: &'a [f64] },
}

impl Target<'_> {
    /// Leaf payload for the given samples.
    fn leaf_value(&self, rows: &[usize]) -> Vec<f64> {
        match self {
            Target::Class { y, n_classes } => {
                let mut hist = vec![0.0; *n_classes];
                for &r in rows {
                    hist[y[r]] += 1.0;
                }
                let total: f64 = hist.iter().sum();
                if total > 0.0 {
                    for h in &mut hist {
                        *h /= total;
                    }
                }
                hist
            }
            Target::Reg { y } => {
                let mean = if rows.is_empty() {
                    0.0
                } else {
                    rows.iter().map(|&r| y[r]).sum::<f64>() / rows.len() as f64
                };
                vec![mean]
            }
        }
    }

    /// Impurity of a sample set (Gini or variance).
    fn impurity(&self, rows: &[usize]) -> f64 {
        match self {
            Target::Class { y, n_classes } => {
                let mut hist = vec![0usize; *n_classes];
                for &r in rows {
                    hist[y[r]] += 1;
                }
                let n = rows.len() as f64;
                if n == 0.0 {
                    return 0.0;
                }
                1.0 - hist.iter().map(|&h| (h as f64 / n).powi(2)).sum::<f64>()
            }
            Target::Reg { y } => {
                if rows.is_empty() {
                    return 0.0;
                }
                let n = rows.len() as f64;
                let mean = rows.iter().map(|&r| y[r]).sum::<f64>() / n;
                rows.iter().map(|&r| (y[r] - mean).powi(2)).sum::<f64>() / n
            }
        }
    }
}

/// Finds the best (feature, threshold) split of `rows`, or `None` when no
/// split improves impurity.
fn best_split(
    x: &Matrix,
    target: &Target<'_>,
    rows: &[usize],
    features: &[usize],
    min_leaf: usize,
) -> Option<(usize, f64, Vec<usize>, Vec<usize>)> {
    let parent_impurity = target.impurity(rows);
    if parent_impurity <= 1e-12 {
        return None;
    }
    let n = rows.len() as f64;
    // (score, imbalance, feature, threshold); ties on score prefer the more
    // balanced split — on XOR-like data every split has equal gain and the
    // balanced choice keeps the tree shallow enough to reach purity.
    let mut best: Option<(f64, f64, usize, f64)> = None;

    for &f in features {
        // Sort row indices by feature value.
        let mut sorted: Vec<usize> = rows.to_vec();
        sorted.sort_by(|&a, &b| x[(a, f)].total_cmp(&x[(b, f)]));
        // Candidate thresholds at value changes; evaluate impurity
        // incrementally by walking the sorted order.
        match target {
            Target::Class { y, n_classes } => {
                let mut left_hist = vec![0usize; *n_classes];
                let mut right_hist = vec![0usize; *n_classes];
                for &r in &sorted {
                    right_hist[y[r]] += 1;
                }
                let gini = |hist: &[usize], cnt: f64| -> f64 {
                    if cnt == 0.0 {
                        return 0.0;
                    }
                    1.0 - hist.iter().map(|&h| (h as f64 / cnt).powi(2)).sum::<f64>()
                };
                for i in 0..sorted.len() - 1 {
                    let r = sorted[i];
                    left_hist[y[r]] += 1;
                    right_hist[y[r]] -= 1;
                    let nl = (i + 1) as f64;
                    let nr = n - nl;
                    if (i + 1) < min_leaf || (sorted.len() - i - 1) < min_leaf {
                        continue;
                    }
                    let v_here = x[(r, f)];
                    let v_next = x[(sorted[i + 1], f)];
                    if v_here == v_next {
                        continue;
                    }
                    let score = (nl / n) * gini(&left_hist, nl) + (nr / n) * gini(&right_hist, nr);
                    let imbalance = (nl - nr).abs();
                    let better = match best {
                        None => true,
                        Some((bs, bi, _, _)) => {
                            score < bs - 1e-12 || ((score - bs).abs() <= 1e-12 && imbalance < bi)
                        }
                    };
                    if better {
                        best = Some((score, imbalance, f, (v_here + v_next) / 2.0));
                    }
                }
            }
            Target::Reg { y } => {
                let total_sum: f64 = sorted.iter().map(|&r| y[r]).sum();
                let total_sq: f64 = sorted.iter().map(|&r| y[r] * y[r]).sum();
                let mut left_sum = 0.0;
                let mut left_sq = 0.0;
                for i in 0..sorted.len() - 1 {
                    let r = sorted[i];
                    left_sum += y[r];
                    left_sq += y[r] * y[r];
                    let nl = (i + 1) as f64;
                    let nr = n - nl;
                    if (i + 1) < min_leaf || (sorted.len() - i - 1) < min_leaf {
                        continue;
                    }
                    let v_here = x[(r, f)];
                    let v_next = x[(sorted[i + 1], f)];
                    if v_here == v_next {
                        continue;
                    }
                    let var_l = left_sq / nl - (left_sum / nl).powi(2);
                    let right_sum = total_sum - left_sum;
                    let right_sq = total_sq - left_sq;
                    let var_r = right_sq / nr - (right_sum / nr).powi(2);
                    let score = (nl / n) * var_l.max(0.0) + (nr / n) * var_r.max(0.0);
                    let imbalance = (nl - nr).abs();
                    let better = match best {
                        None => true,
                        Some((bs, bi, _, _)) => {
                            score < bs - 1e-12 || ((score - bs).abs() <= 1e-12 && imbalance < bi)
                        }
                    };
                    if better {
                        best = Some((score, imbalance, f, (v_here + v_next) / 2.0));
                    }
                }
            }
        }
    }

    // Zero-gain splits are allowed (as in scikit-learn): on XOR-like data
    // no single split improves impurity, yet the children become separable.
    // Recursion still terminates because both children are strictly smaller.
    let (_, _, f, threshold) = best?;
    let (left, right): (Vec<usize>, Vec<usize>) =
        rows.iter().partition(|&&r| x[(r, f)] <= threshold);
    if left.is_empty() || right.is_empty() {
        return None;
    }
    Some((f, threshold, left, right))
}

fn build_tree(x: &Matrix, target: &Target<'_>, rows: &[usize], params: &TreeParams) -> Tree {
    let mut tree = Tree { nodes: Vec::new() };
    let mut rng = StdRng::seed_from_u64(params.seed);
    build_node(x, target, rows, params, 0, &mut tree, &mut rng);
    tree
}

fn build_node(
    x: &Matrix,
    target: &Target<'_>,
    rows: &[usize],
    params: &TreeParams,
    depth: usize,
    tree: &mut Tree,
    rng: &mut StdRng,
) -> usize {
    rein_guard::checkpoint(rows.len() as u64);
    let make_leaf = depth >= params.max_depth || rows.len() < params.min_samples_split;
    if !make_leaf {
        let all: Vec<usize> = (0..x.cols()).collect();
        let features: Vec<usize> = match params.max_features {
            Some(k) if k < x.cols() => {
                let mut f = all.clone();
                f.shuffle(rng);
                f.truncate(k.max(1));
                f
            }
            _ => all,
        };
        if let Some((f, thr, left_rows, right_rows)) =
            best_split(x, target, rows, &features, params.min_samples_leaf)
        {
            let id = tree.nodes.len();
            tree.nodes.push(Node::Leaf { value: Vec::new() }); // placeholder
            let left = build_node(x, target, &left_rows, params, depth + 1, tree, rng);
            let right = build_node(x, target, &right_rows, params, depth + 1, tree, rng);
            tree.nodes[id] = Node::Split { feature: f, threshold: thr, left, right };
            return id;
        }
    }
    let id = tree.nodes.len();
    tree.nodes.push(Node::Leaf { value: target.leaf_value(rows) });
    id
}

impl Tree {
    fn leaf_of(&self, xr: &[f64]) -> &[f64] {
        let mut node = 0usize;
        loop {
            match &self.nodes[node] {
                Node::Split { feature, threshold, left, right } => {
                    node = if xr[*feature] <= *threshold { *left } else { *right };
                }
                Node::Leaf { value } => return value,
            }
        }
    }
}

/// CART classifier.
#[derive(Debug, Clone)]
pub struct DecisionTreeClassifier {
    params: TreeParams,
    tree: Option<Tree>,
    n_classes: usize,
}

impl DecisionTreeClassifier {
    /// Builds an (unfitted) tree classifier.
    pub fn new(params: TreeParams) -> Self {
        Self { params, tree: None, n_classes: 0 }
    }

    /// Class-probability row for one sample (exposed for boosting/forests).
    pub fn proba_row(&self, xr: &[f64]) -> Vec<f64> {
        match &self.tree {
            Some(t) => t.leaf_of(xr).to_vec(),
            None => vec![0.0; self.n_classes],
        }
    }
}

impl Classifier for DecisionTreeClassifier {
    fn fit(&mut self, x: &Matrix, y: &[usize], n_classes: usize) {
        assert_eq!(x.rows(), y.len());
        self.n_classes = n_classes.max(1);
        let rows: Vec<usize> = (0..x.rows()).collect();
        if rows.is_empty() {
            self.tree = Some(Tree { nodes: vec![Node::Leaf { value: vec![0.0; self.n_classes] }] });
            return;
        }
        let target = Target::Class { y, n_classes: self.n_classes };
        self.tree = Some(build_tree(x, &target, &rows, &self.params));
    }

    fn predict(&self, x: &Matrix) -> Vec<usize> {
        (0..x.rows()).map(|r| crate::linalg::argmax(&self.proba_row(x.row(r)))).collect()
    }

    fn predict_proba(&self, x: &Matrix, n_classes: usize) -> Matrix {
        let mut out = Matrix::zeros(x.rows(), n_classes);
        for r in 0..x.rows() {
            let p = self.proba_row(x.row(r));
            let w = p.len().min(n_classes);
            out.row_mut(r)[..w].copy_from_slice(&p[..w]);
        }
        out
    }
}

/// CART regressor.
#[derive(Debug, Clone)]
pub struct DecisionTreeRegressor {
    params: TreeParams,
    tree: Option<Tree>,
}

impl DecisionTreeRegressor {
    /// Builds an (unfitted) tree regressor.
    pub fn new(params: TreeParams) -> Self {
        Self { params, tree: None }
    }
}

impl Regressor for DecisionTreeRegressor {
    fn fit(&mut self, x: &Matrix, y: &[f64]) {
        assert_eq!(x.rows(), y.len());
        let rows: Vec<usize> = (0..x.rows()).collect();
        if rows.is_empty() {
            self.tree = Some(Tree { nodes: vec![Node::Leaf { value: vec![0.0] }] });
            return;
        }
        let target = Target::Reg { y };
        self.tree = Some(build_tree(x, &target, &rows, &self.params));
    }

    fn predict(&self, x: &Matrix) -> Vec<f64> {
        (0..x.rows()).map(|r| self.tree.as_ref().map_or(0.0, |t| t.leaf_of(x.row(r))[0])).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{
        blob_classification, linear_regression_data, train_test_accuracy, train_test_rmse,
    };

    #[test]
    fn classifier_learns_blobs() {
        let (x, y) = blob_classification(150, 3, 41);
        let mut m = DecisionTreeClassifier::new(TreeParams::default());
        let acc = train_test_accuracy(&mut m, &x, &y, 3);
        assert!(acc > 0.9, "accuracy {acc}");
    }

    #[test]
    fn classifier_fits_xor_which_linear_models_cannot() {
        // XOR pattern with random jitter: needs at least depth 2; no single
        // split has positive gain, exercising the zero-gain/balance logic.
        use rand::prelude::*;
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        let mut rows = Vec::new();
        let mut ys = Vec::new();
        for i in 0..200 {
            let a = (i / 2) % 2;
            let b = i % 2;
            rows.push(vec![
                a as f64 + rng.random_range(-0.05..0.05),
                b as f64 + rng.random_range(-0.05..0.05),
            ]);
            ys.push(a ^ b);
        }
        let x = Matrix::from_rows(&rows);
        let mut m = DecisionTreeClassifier::new(TreeParams::default());
        m.fit(&x, &ys, 2);
        let acc = crate::metrics::accuracy(&ys, &m.predict(&x));
        assert!(acc > 0.98, "accuracy {acc}");
    }

    #[test]
    fn regressor_fits_nonlinear_target() {
        let (x, _) = linear_regression_data(300, 0.0, 43);
        // y = x0^2
        let y: Vec<f64> = (0..x.rows()).map(|r| x[(r, 0)].powi(2)).collect();
        let mut m = DecisionTreeRegressor::new(TreeParams::default());
        let err = train_test_rmse(&mut m, &x, &y);
        assert!(err < 1.0, "rmse {err}");
    }

    #[test]
    fn depth_limit_is_respected() {
        let (x, y) = blob_classification(100, 2, 47);
        let mut stump =
            DecisionTreeClassifier::new(TreeParams { max_depth: 1, ..Default::default() });
        stump.fit(&x, &y, 2);
        // Depth-1 tree has at most 3 nodes.
        assert!(stump.tree.as_ref().unwrap().nodes.len() <= 3);
    }

    #[test]
    fn pure_node_stops_splitting() {
        let x = Matrix::from_rows(&[vec![0.0], vec![1.0], vec![2.0], vec![3.0]]);
        let mut m = DecisionTreeClassifier::new(TreeParams::default());
        m.fit(&x, &[1, 1, 1, 1], 2);
        assert_eq!(m.tree.as_ref().unwrap().nodes.len(), 1);
        assert_eq!(m.predict(&x), vec![1, 1, 1, 1]);
    }

    #[test]
    fn proba_rows_are_distributions() {
        let (x, y) = blob_classification(90, 3, 53);
        let mut m = DecisionTreeClassifier::new(TreeParams::default());
        m.fit(&x, &y, 3);
        let p = m.predict_proba(&x, 3);
        for r in 0..p.rows() {
            let s: f64 = p.row(r).iter().sum();
            assert!((s - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn empty_fit_safe() {
        let mut m = DecisionTreeRegressor::new(TreeParams::default());
        m.fit(&Matrix::zeros(0, 2), &[]);
        assert_eq!(m.predict(&Matrix::zeros(2, 2)), vec![0.0, 0.0]);
    }

    #[test]
    fn feature_subsampling_still_learns() {
        let (x, y) = blob_classification(150, 3, 59);
        let mut m = DecisionTreeClassifier::new(TreeParams {
            max_features: Some(1),
            seed: 3,
            ..Default::default()
        });
        let acc = train_test_accuracy(&mut m, &x, &y, 3);
        assert!(acc > 0.7, "accuracy {acc}");
    }
}
