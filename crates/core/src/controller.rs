//! The benchmark controller (§2): connects the repository, toolbox and
//! evaluation module, and exploits design-time knowledge (error types, ML
//! task, available signals) to sidestep unnecessary experiments.

use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

use rayon::prelude::*;
use rein_data::rng::derive_seed;
use rein_data::{CellMask, MlTask};
use rein_datasets::GeneratedDataset;
use rein_detect::DetectorKind;
use rein_guard::{CrashWhen, GuardPolicy, StrategyFailure};
use rein_ml::model::{ClassifierKind, ClustererKind, RegressorKind};
use rein_repair::{RepairCategory, RepairKind};
use rein_store::{CrashPoint, Store, StoreWriter};

use crate::evaluate::{
    eval_classifier_guarded, eval_clusterer, eval_regressor_guarded, repair_quality_categorical,
    repair_quality_numerical, replay_detector_run, run_repair_guarded, table_identity,
    DetectorHarness, DetectorRun, RepairRun, VersionTable,
};
use crate::experiment::{DetectionRecord, RepairRecord};
use crate::scenario::Scenario;
use crate::toolbox::{applicable_detectors, applicable_repairers, AvailableSignals};

/// A cleaning strategy: one detector feeding one repairer (the paper's
/// figure labels, e.g. "R3" = RAHA + mean-mode imputation).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CleaningStrategy {
    /// Detector.
    pub detector: DetectorKind,
    /// Repairer.
    pub repairer: RepairKind,
}

impl CleaningStrategy {
    /// Paper-style label: detector index letter + repairer index, e.g.
    /// `"X3"` for Max-Entropy + mean-mode.
    pub fn label(&self) -> String {
        format!("{}{}", self.detector.index_letter(), self.repairer.index())
    }
}

/// The benchmark controller.
#[derive(Debug, Clone)]
pub struct Controller {
    /// Labelling budget for ML-supported detectors.
    pub label_budget: usize,
    /// Master seed.
    pub seed: u64,
    /// Supervision policy for every toolbox dispatch (chaos injection,
    /// retries, budget override).
    pub policy: GuardPolicy,
    /// Dataset scale factor the grid runs at — a [`CellKey`]
    /// component, so it participates in every cell's trace id.
    ///
    /// [`CellKey`]: crate::cache_key::CellKey
    pub scale: f64,
    /// Opt-in live progress heartbeat (`REIN_PROGRESS`, plumbed by
    /// rein-bench): when true, the grid's sequential merge points print
    /// deterministic-content progress lines (cell counts, never timing
    /// or worker identity) to stderr.
    pub progress: bool,
    /// Durable cell-result store (`REIN_STORE`, plumbed by rein-bench):
    /// when set, [`Controller::run_grid`] consults the store before
    /// dispatching each cell, replays hits without executing the
    /// strategy, and commits every computed cell through the store's
    /// write-ahead journal at the grid's sequential merge points
    /// (DESIGN.md §6j). `None` runs the grid store-less, byte-identical
    /// to the pre-store behaviour.
    pub store: Option<Arc<Store>>,
}

impl Default for Controller {
    fn default() -> Self {
        Self {
            label_budget: crate::evaluate::DEFAULT_LABEL_BUDGET,
            seed: 0,
            policy: GuardPolicy::default(),
            scale: 1.0,
            progress: false,
            store: None,
        }
    }
}

/// The pruned experiment plan for one dataset.
#[derive(Debug, Clone)]
pub struct Plan {
    /// Detectors worth running.
    pub detectors: Vec<DetectorKind>,
    /// Generic repairers worth running (per detector).
    pub generic_repairers: Vec<RepairKind>,
    /// ML-oriented repairers worth running.
    pub ml_repairers: Vec<RepairKind>,
}

impl Controller {
    /// Signals the benchmark can supply for a generated dataset (the
    /// ground truth exists, so KB and oracle are always available; the
    /// rest depends on the dataset).
    pub fn signals_for(ds: &GeneratedDataset) -> AvailableSignals {
        AvailableSignals {
            fds: !ds.fds.is_empty(),
            knowledge_base: true,
            key_columns: !ds.key_columns.is_empty(),
            oracle: true,
            label_column: ds.clean.schema().label_index().is_some(),
        }
    }

    /// Builds the pruned plan for a dataset.
    pub fn plan(&self, ds: &GeneratedDataset) -> Plan {
        let _span = rein_telemetry::span("controller:plan");
        let signals = Self::signals_for(ds);
        let detectors = applicable_detectors(&ds.info.errors, &signals);
        let repairers = applicable_repairers(&ds.info.errors, ds.info.task, &signals);
        let (ml, generic): (Vec<RepairKind>, Vec<RepairKind>) =
            repairers.into_iter().partition(|r| r.category() == RepairCategory::MlOriented);
        Plan { detectors, generic_repairers: generic, ml_repairers: ml }
    }

    /// Runs the detection phase: every planned detector, in parallel.
    /// Each worker opens a **cell trace root** named for its grid
    /// coordinate and keyed by the cell's [`CellKey`] digest, so every
    /// span and instant the detector produces reconstructs into that
    /// cell's tree after the sharded sink merges (DESIGN.md §6i).
    ///
    /// [`CellKey`]: crate::cache_key::CellKey
    pub fn run_detection(&self, ds: &GeneratedDataset) -> Vec<DetectorRun> {
        let plan = self.plan(ds);
        let span = rein_telemetry::span("controller:detect");
        // Detector spans open on rayon worker threads; hand them the
        // phase span explicitly so nesting survives the fan-out.
        let parent = Some(span.ctx());
        let dirty_id = table_identity(&ds.dirty);
        let runs: Vec<DetectorRun> = plan
            .detectors
            .par_iter()
            .map(|&kind| {
                let strategy = format!("detect:{}", kind.name());
                let cell_seed = derive_seed(self.seed, kind.index_letter() as u64);
                let trace = self.cell_key(ds, &dirty_id, &strategy, self.scale, cell_seed).hash();
                let _worker =
                    rein_telemetry::span_traced(format!("cell:{strategy}"), parent, trace);
                let harness = DetectorHarness::new(ds, self.label_budget, cell_seed)
                    .with_policy(self.policy.clone());
                harness.run(ds, kind)
            })
            .collect();
        let failed = runs.iter().filter(|r| r.failure.is_some()).count();
        self.emit_progress(&format!(
            "dataset={} phase=detect done={} failed={failed} total={}",
            ds.info.name,
            runs.len(),
            runs.len()
        ));
        runs
    }

    /// Runs the repair phase for one detector's detections: every planned
    /// generic repairer plus the ML-oriented ones.
    pub fn run_repairs(&self, ds: &GeneratedDataset, detection: &DetectorRun) -> Vec<RepairRun> {
        let plan = self.plan(ds);
        let kinds: Vec<RepairKind> =
            plan.generic_repairers.iter().chain(plan.ml_repairers.iter()).copied().collect();
        let span = rein_telemetry::span("controller:repair");
        let parent = Some(span.ctx());
        // Repair cells consume the dirty table (plus the detector's
        // mask, named in the strategy coordinate): its identity is the
        // `dataset_version` component of the cell trace id.
        let dirty_id = table_identity(&ds.dirty);
        let runs: Vec<RepairRun> = kinds
            .par_iter()
            .map(|&kind| {
                let strategy = format!("repair:{}#{}", kind.name(), detection.kind.name());
                let cell_seed = derive_seed(self.seed, kind.index() as u64);
                let trace = self.cell_key(ds, &dirty_id, &strategy, self.scale, cell_seed).hash();
                let _worker =
                    rein_telemetry::span_traced(format!("cell:{strategy}"), parent, trace);
                run_repair_guarded(
                    ds,
                    &detection.mask,
                    kind,
                    cell_seed,
                    detection.kind.name(),
                    &self.policy,
                )
            })
            .collect();
        let failed = runs.iter().filter(|r| r.failure.is_some()).count();
        self.emit_progress(&format!(
            "dataset={} phase=repair detector={} done={} failed={failed} total={}",
            ds.info.name,
            detection.kind.name(),
            runs.len(),
            runs.len()
        ));
        runs
    }

    /// Runs the full benchmark grid — detection, repair, and (when
    /// `scenarios` is non-empty) model evaluation — and serializes every
    /// cell's output, keyed by cell coordinates:
    ///
    /// - `detect:<detector>` — the detected cell mask,
    /// - `repair:<repairer>#<detector>` — the repaired table, modified
    ///   cells and row map (or a pipeline marker for ML-oriented
    ///   repairers),
    /// - `eval:<scenario>:<repairer>#<detector>` — the scenario scores
    ///   for each table-producing repair.
    ///
    /// The map is the grid's deterministic fingerprint: every seed is
    /// derived per cell from the controller seed and the cell's
    /// coordinates, never from worker identity or arrival order, so the
    /// serialized bytes are identical at any rayon pool width. The
    /// `parallel_smoke` binary asserts exactly that (1 ≡ 4 ≡ N threads),
    /// and `chaos_smoke` compares fault-free and fault-injected runs of
    /// the same map.
    pub fn run_grid(
        &self,
        ds: &GeneratedDataset,
        scenarios: &[Scenario],
        repeats: usize,
    ) -> BTreeMap<String, String> {
        match self.store.as_deref() {
            // audit:allow(seed-provenance, store only selects persistence; every cell seed still derives from self.seed and the cell coordinates)
            Some(store) => self.run_grid_stored(store, ds, scenarios, repeats),
            None => self.run_grid_direct(ds, scenarios, repeats),
        }
    }

    /// The store-less grid: every cell computes, nothing persists.
    fn run_grid_direct(
        &self,
        ds: &GeneratedDataset,
        scenarios: &[Scenario],
        repeats: usize,
    ) -> BTreeMap<String, String> {
        let _span = rein_telemetry::span("controller:grid");
        let mut cells = BTreeMap::new();
        let detections = self.run_detection(ds);
        for (det_ix, det) in detections.iter().enumerate() {
            let key = format!("detect:{}", det.kind.name());
            cells.insert(key, detect_payload(&det.mask));
            // audit:allow(seed-provenance, det only names the guard scope; every repair seed is derived inside run_repairs from self.seed and the repair kind)
            let repairs = self.run_repairs(ds, det);
            for rep in &repairs {
                let key = format!("repair:{}#{}", rep.kind.name(), det.kind.name());
                cells.insert(key, repair_payload(rep));
            }
            cells.extend(self.eval_cells(ds, det, det_ix, &repairs, scenarios, repeats));
        }
        self.emit_progress(&format!(
            "dataset={} grid complete cells={}",
            ds.info.name,
            cells.len()
        ));
        cells
    }

    /// The store-backed grid (DESIGN.md §6j): per phase, consult the
    /// store sequentially, compute only the misses in parallel (under
    /// exactly the per-cell seeds and trace roots the direct grid
    /// uses), and commit the computed cells through the write-ahead
    /// journal at the phase's sequential merge point. Hits replay the
    /// stored payload bytes verbatim, so a warm grid's cell map is
    /// byte-identical to a cold one.
    fn run_grid_stored(
        &self,
        store: &Store,
        ds: &GeneratedDataset,
        scenarios: &[Scenario],
        repeats: usize,
    ) -> BTreeMap<String, String> {
        let _span = rein_telemetry::span("controller:grid");
        let plan = self.plan(ds);
        let dirty_id = table_identity(&ds.dirty);
        let mut cells = BTreeMap::new();
        let detections = self.stored_detection(store, ds, &plan, &dirty_id);
        for (det_ix, (det, coordinate, payload)) in detections.iter().enumerate() {
            cells.insert(coordinate.clone(), payload.clone());
            // audit:allow(seed-provenance, det names the guard scope and det_ix the plan position; repair and eval seeds derive from self.seed exactly like the direct grid)
            let repairs = self.stored_repairs(store, ds, &plan, &dirty_id, det);
            for slot in &repairs {
                cells.insert(slot.coordinate.clone(), slot.payload.clone());
            }
            // audit:allow(seed-provenance, det_ix is the detector's plan position; eval seeds derive from self.seed and the cell coordinates as in eval_cells)
            cells.extend(self.stored_evals(store, ds, det, det_ix, repairs, scenarios, repeats));
        }
        self.emit_progress(&format!(
            "dataset={} grid complete cells={}",
            ds.info.name,
            cells.len()
        ));
        cells
    }

    /// Store-backed detection: hits deserialize the stored mask and
    /// replay ([`replay_detector_run`]); misses run the detector under
    /// the same seed/trace the direct phase would use, then commit.
    /// Returns `(run, coordinate, payload)` in plan order.
    fn stored_detection(
        &self,
        store: &Store,
        ds: &GeneratedDataset,
        plan: &Plan,
        dirty_id: &str,
    ) -> Vec<(DetectorRun, String, String)> {
        let span = rein_telemetry::span("controller:detect");
        let parent = Some(span.ctx());
        let slots: Vec<(DetectorKind, String, u64, String, u64)> = plan
            .detectors
            .iter()
            .map(|&kind| {
                let coordinate = format!("detect:{}", kind.name());
                let seed = derive_seed(self.seed, kind.index_letter() as u64);
                let key = self.cell_key(ds, dirty_id, &coordinate, self.scale, seed);
                (kind, coordinate, seed, key.content_key(), key.hash())
            })
            .collect();
        // Sequential store consultation. A stored payload that fails to
        // parse back into a mask is treated as a miss, never trusted.
        let mut out: Vec<Option<(DetectorRun, String)>> = slots
            .iter()
            .map(|(kind, _, _, digest, _)| {
                let cell = store.lookup(digest)?;
                let mask: CellMask = serde_json::from_str(&cell.payload).ok()?;
                Some((replay_detector_run(ds, *kind, mask), cell.payload))
            })
            .collect();
        let hits = out.iter().filter(|o| o.is_some()).count();
        rein_telemetry::counter("store_hits").add(hits as u64);
        rein_telemetry::counter("store_misses").add((slots.len() - hits) as u64);
        let writer = StoreWriter::with_shards(rayon::current_num_threads().max(1));
        let missing: Vec<usize> = (0..slots.len()).filter(|&i| out[i].is_none()).collect();
        let computed: Vec<(usize, DetectorRun, String)> = missing
            .par_iter()
            .map(|&i| {
                let (kind, coordinate, seed, digest, trace) = &slots[i];
                let _worker =
                    rein_telemetry::span_traced(format!("cell:{coordinate}"), parent, *trace);
                let harness = DetectorHarness::new(ds, self.label_budget, *seed)
                    .with_policy(self.policy.clone());
                let run = harness.run(ds, *kind);
                let payload = detect_payload(&run.mask);
                writer.stage(digest, coordinate, &payload, None);
                (i, run, payload)
            })
            .collect();
        self.commit(store, &writer);
        for (i, run, payload) in computed {
            out[i] = Some((run, payload));
        }
        let runs: Vec<(DetectorRun, String, String)> = slots
            .into_iter()
            .zip(out)
            .map(|((_, coordinate, _, _, _), resolved)| {
                // audit:allow(panic, every store miss was computed in the loop above)
                let (run, payload) = resolved.expect("detect cell resolved");
                (run, coordinate, payload)
            })
            .collect();
        let failed = runs.iter().filter(|(r, _, _)| r.failure.is_some()).count();
        self.emit_progress(&format!(
            "dataset={} phase=detect done={} failed={failed} total={} hits={hits}",
            ds.info.name,
            runs.len(),
            runs.len()
        ));
        runs
    }

    /// Store-backed repair phase for one detector's detections. Hits
    /// keep the stored payload bytes (and the produced version's
    /// content identity from the record's aux field) without
    /// rehydrating the table; misses run the repairer live and commit.
    fn stored_repairs(
        &self,
        store: &Store,
        ds: &GeneratedDataset,
        plan: &Plan,
        dirty_id: &str,
        det: &DetectorRun,
    ) -> Vec<RepairSlot> {
        let kinds: Vec<RepairKind> =
            plan.generic_repairers.iter().chain(plan.ml_repairers.iter()).copied().collect();
        let span = rein_telemetry::span("controller:repair");
        let parent = Some(span.ctx());
        let metas: Vec<(RepairKind, String, u64, String, u64, Option<rein_store::StoredCell>)> =
            kinds
                .iter()
                .map(|&kind| {
                    let coordinate = format!("repair:{}#{}", kind.name(), det.kind.name());
                    let seed = derive_seed(self.seed, kind.index() as u64);
                    let key = self.cell_key(ds, dirty_id, &coordinate, self.scale, seed);
                    let digest = key.content_key();
                    let hit = store.lookup(&digest);
                    (kind, coordinate, seed, digest, key.hash(), hit)
                })
                .collect();
        let hits = metas.iter().filter(|m| m.5.is_some()).count();
        rein_telemetry::counter("store_hits").add(hits as u64);
        rein_telemetry::counter("store_misses").add((metas.len() - hits) as u64);
        let writer = StoreWriter::with_shards(rayon::current_num_threads().max(1));
        let missing: Vec<usize> = (0..metas.len()).filter(|&i| metas[i].5.is_none()).collect();
        let computed: Vec<(usize, RepairRun, String, Option<String>)> = missing
            .par_iter()
            .map(|&i| {
                let (kind, coordinate, seed, digest, trace, _) = &metas[i];
                let _worker =
                    rein_telemetry::span_traced(format!("cell:{coordinate}"), parent, *trace);
                let run =
                    run_repair_guarded(ds, &det.mask, *kind, *seed, det.kind.name(), &self.policy);
                let payload = repair_payload(&run);
                let version_id = run.version.as_ref().map(|v| v.content_identity());
                writer.stage(digest, coordinate, &payload, version_id.as_deref());
                (i, run, payload, version_id)
            })
            .collect();
        self.commit(store, &writer);
        let mut live: BTreeMap<usize, (RepairRun, String, Option<String>)> =
            computed.into_iter().map(|(i, run, payload, vid)| (i, (run, payload, vid))).collect();
        let failed = live.values().filter(|(run, _, _)| run.failure.is_some()).count();
        let slots: Vec<RepairSlot> = metas
            .into_iter()
            .enumerate()
            .map(|(i, (kind, coordinate, seed, _, trace, hit))| match hit {
                Some(cell) => RepairSlot {
                    kind,
                    coordinate,
                    seed,
                    trace,
                    payload: cell.payload,
                    version_id: cell.aux,
                    run: None,
                },
                None => {
                    // audit:allow(panic, every store miss was computed in the loop above)
                    let (run, payload, version_id) = live.remove(&i).expect("repair cell resolved");
                    RepairSlot {
                        kind,
                        coordinate,
                        seed,
                        trace,
                        payload,
                        version_id,
                        run: Some(run),
                    }
                }
            })
            .collect();
        self.emit_progress(&format!(
            "dataset={} phase=repair detector={} done={} failed={failed} total={} hits={hits}",
            ds.info.name,
            det.kind.name(),
            slots.len(),
            slots.len()
        ));
        slots
    }

    /// Store-backed evaluation layer. Eval misses whose repair was a
    /// store hit first rehydrate that repair live (same seed — the
    /// audit's purity certificate makes the recompute byte-identical;
    /// any payload mismatch is counted as `store_divergence`, never
    /// silently accepted), then evaluate and commit.
    #[allow(clippy::too_many_arguments)]
    fn stored_evals(
        &self,
        store: &Store,
        ds: &GeneratedDataset,
        det: &DetectorRun,
        det_ix: usize,
        mut repairs: Vec<RepairSlot>,
        scenarios: &[Scenario],
        repeats: usize,
    ) -> Vec<(String, String)> {
        if scenarios.is_empty() || repeats == 0 {
            return Vec::new();
        }
        let span = rein_telemetry::span("controller:evaluate");
        let parent = Some(span.ctx());
        let work: Vec<(usize, usize)> = (0..scenarios.len())
            .flat_map(|si| {
                repairs
                    .iter()
                    .enumerate()
                    .filter(|(_, r)| r.version_id.is_some())
                    .map(move |(ri, _)| (si, ri))
            })
            .collect();
        let metas: Vec<EvalMeta> = work
            .iter()
            .map(|&(si, ri)| {
                let rep = &repairs[ri];
                // audit:allow(panic, the work list above is filtered to versioned repairs)
                let version_id = rep.version_id.as_deref().expect("versioned repair identity");
                let key = format!(
                    "eval:{}:{}#{}",
                    scenarios[si].name(),
                    rep.kind.name(),
                    det.kind.name()
                );
                let seed = derive_seed(
                    self.seed,
                    40_000 + (det_ix as u64) * 1_000 + (si as u64) * 100 + ri as u64,
                );
                let ck = self.cell_key(ds, version_id, &key, self.scale, seed);
                let hit = store.lookup(&ck.content_key()).map(|c| c.payload);
                EvalMeta { si, ri, key, seed, digest: ck.content_key(), trace: ck.hash(), hit }
            })
            .collect();
        let hits = metas.iter().filter(|m| m.hit.is_some()).count();
        rein_telemetry::counter("store_hits").add(hits as u64);
        rein_telemetry::counter("store_misses").add((metas.len() - hits) as u64);
        // Rehydrate each stored repair version that an eval miss needs,
        // exactly once, in parallel.
        let need: BTreeSet<usize> = metas
            .iter()
            .filter(|m| m.hit.is_none() && repairs[m.ri].run.is_none())
            .map(|m| m.ri)
            .collect();
        let need: Vec<usize> = need.into_iter().collect();
        let rehydrated: Vec<(usize, RepairRun)> = need
            .par_iter()
            .map(|&ri| {
                let slot = &repairs[ri];
                let _worker = rein_telemetry::span_traced(
                    format!("cell:{}", slot.coordinate),
                    parent,
                    slot.trace,
                );
                let run = run_repair_guarded(
                    ds,
                    &det.mask,
                    slot.kind,
                    slot.seed,
                    det.kind.name(),
                    &self.policy,
                );
                (ri, run)
            })
            .collect();
        rein_telemetry::counter("store_rehydrated").add(rehydrated.len() as u64);
        for (ri, run) in rehydrated {
            if repair_payload(&run) != repairs[ri].payload {
                rein_telemetry::counter("store_divergence").incr();
            }
            repairs[ri].run = Some(run);
        }
        let writer = StoreWriter::with_shards(rayon::current_num_threads().max(1));
        let missing: Vec<usize> = (0..metas.len()).filter(|&i| metas[i].hit.is_none()).collect();
        let computed: Vec<(usize, String)> = missing
            .par_iter()
            .map(|&i| {
                let EvalMeta { si, ri, key, seed, digest, trace, .. } = &metas[i];
                let slot = &repairs[*ri];
                // audit:allow(panic, every eval-missed stored repair was rehydrated above)
                let run = slot.run.as_ref().expect("rehydrated repair");
                // audit:allow(panic, purity-certified recompute of a version-producing repair yields a version)
                let version = run.version.as_ref().expect("versioned repair");
                let _worker = rein_telemetry::span_traced(format!("cell:{key}"), parent, *trace);
                let payload = self.eval_cell(ds, scenarios[*si], version, repeats, *seed);
                writer.stage(digest, key, &payload, None);
                (i, payload)
            })
            .collect();
        self.commit(store, &writer);
        let mut live: BTreeMap<usize, String> = computed.into_iter().collect();
        let cells: Vec<(String, String)> = metas
            .into_iter()
            .enumerate()
            .map(|(i, m)| match m.hit {
                Some(payload) => (m.key, payload),
                // audit:allow(panic, every store miss was computed in the loop above)
                None => (m.key, live.remove(&i).expect("eval cell resolved")),
            })
            .collect();
        let failed = cells.iter().filter(|(_, v)| v.contains(" failure:")).count();
        self.emit_progress(&format!(
            "dataset={} phase=eval detector={} done={} failed={failed} total={} hits={hits}",
            ds.info.name,
            det.kind.name(),
            cells.len(),
            cells.len()
        ));
        cells
    }

    /// Commits everything staged in `writer` through the store's
    /// write-ahead journal, translating the policy's `REIN_CRASH` rules
    /// into the store's commit-point injection. A commit I/O failure
    /// degrades to recompute-next-run: it is counted, never fatal to
    /// the in-flight grid (the in-memory cell map is already correct).
    fn commit(&self, store: &Store, writer: &StoreWriter) {
        let crash = |coordinate: &str| {
            self.policy.crash.when_for(coordinate).map(|when| match when {
                CrashWhen::Before => CrashPoint::Before,
                CrashWhen::After => CrashPoint::After,
            })
        };
        if store.commit_staged(writer, &crash).is_err() {
            rein_telemetry::counter("store_commit_errors").incr();
        }
    }

    /// The evaluation layer of [`Controller::run_grid`]: every
    /// (scenario × table-producing repair) cell for one detector, in
    /// parallel, each under its own coordinate-derived seed.
    fn eval_cells(
        &self,
        ds: &GeneratedDataset,
        det: &DetectorRun,
        det_ix: usize,
        repairs: &[RepairRun],
        scenarios: &[Scenario],
        repeats: usize,
    ) -> Vec<(String, String)> {
        if scenarios.is_empty() || repeats == 0 {
            return Vec::new();
        }
        let span = rein_telemetry::span("controller:evaluate");
        let parent = Some(span.ctx());
        // Per-repair version identities, computed once at the sequential
        // merge point: each eval cell's trace id keys on the exact table
        // version it consumes.
        let version_ids: Vec<Option<String>> =
            repairs.iter().map(|r| r.version.as_ref().map(|v| v.content_identity())).collect();
        let work: Vec<(usize, usize)> = (0..scenarios.len())
            .flat_map(|si| {
                repairs
                    .iter()
                    .enumerate()
                    .filter(|(_, r)| r.version.is_some())
                    .map(move |(ri, _)| (si, ri))
            })
            .collect();
        let cells: Vec<(String, String)> = work
            .par_iter()
            .map(|&(si, ri)| {
                let scenario = scenarios[si];
                let rep = &repairs[ri];
                // audit:allow(panic, the work list above is filtered to table-producing repairs)
                let version = rep.version.as_ref().expect("versioned repair");
                // audit:allow(panic, the work list above is filtered to table-producing repairs)
                let version_id = version_ids[ri].as_deref().expect("versioned repair identity");
                let cell_seed = derive_seed(
                    self.seed,
                    40_000 + (det_ix as u64) * 1_000 + (si as u64) * 100 + ri as u64,
                );
                let key =
                    format!("eval:{}:{}#{}", scenario.name(), rep.kind.name(), det.kind.name());
                let trace = self.cell_key(ds, version_id, &key, self.scale, cell_seed).hash();
                let _worker = rein_telemetry::span_traced(format!("cell:{key}"), parent, trace);
                (key, self.eval_cell(ds, scenario, version, repeats, cell_seed))
            })
            .collect();
        let failed = cells.iter().filter(|(_, v)| v.contains(" failure:")).count();
        self.emit_progress(&format!(
            "dataset={} phase=eval detector={} done={} failed={failed} total={}",
            ds.info.name,
            det.kind.name(),
            cells.len(),
            cells.len()
        ));
        cells
    }

    /// Prints one deterministic-content progress line when the opt-in
    /// `REIN_PROGRESS` heartbeat is on. Only called from the grid's
    /// sequential merge points, so line order is scheduling-invariant;
    /// content is counts and coordinates, never timing or worker ids.
    fn emit_progress(&self, line: &str) {
        if self.progress {
            // audit:allow(print, opt-in REIN_PROGRESS heartbeat; deterministic content, emitted only at sequential merge points)
            eprintln!("[progress] {line}");
        }
    }

    /// The canonical cache key of one grid cell, exactly as the
    /// ROADMAP's content-addressed incremental store will compute it.
    /// `strategy` is the cell's `run_grid` coordinate string
    /// (`detect:…`, `repair:…#…` or `eval:…:…#…`), `dataset_version`
    /// the consumed version's [`VersionTable::content_identity`] (the
    /// dirty table's identity for detection cells), `cell_seed` the
    /// fully-derived per-cell seed, and `scale` the dataset generation
    /// factor. rein-audit's `cache-key-completeness` rule certifies the
    /// cell-compute entry points pure against exactly these components
    /// (DESIGN.md §6h), so a key hit is provably a byte-identical
    /// recompute.
    pub fn cell_key(
        &self,
        ds: &GeneratedDataset,
        dataset_version: &str,
        strategy: &str,
        scale: f64,
        cell_seed: u64,
    ) -> crate::cache_key::CellKey {
        crate::cache_key::CellKey {
            dataset: ds.info.name.clone(),
            dataset_version: dataset_version.to_string(),
            strategy: strategy.to_string(),
            seed: cell_seed,
            scale,
            guard_policy: self.policy.cache_identity(),
        }
    }

    /// Serializes one evaluation cell: the task-appropriate model's
    /// scores (plus the failure cause when the guarded fit degraded).
    fn eval_cell(
        &self,
        ds: &GeneratedDataset,
        scenario: Scenario,
        version: &VersionTable,
        repeats: usize,
        seed: u64,
    ) -> String {
        match ds.info.task {
            MlTask::Classification => {
                let (scores, failure) = eval_classifier_guarded(
                    scenario,
                    ds,
                    version,
                    ClassifierKind::DecisionTree,
                    repeats,
                    seed,
                    &self.policy,
                );
                render_scores(&scores, failure.as_ref())
            }
            MlTask::Regression => {
                let (scores, failure) = eval_regressor_guarded(
                    scenario,
                    ds,
                    version,
                    RegressorKind::LinearRegression,
                    repeats,
                    seed,
                    &self.policy,
                );
                render_scores(&scores, failure.as_ref())
            }
            MlTask::Clustering => {
                let score = eval_clusterer(&version.table, ClustererKind::KMeans, 6, seed);
                format!("silhouette:{score:?}")
            }
            MlTask::None => "task:none".to_string(),
        }
    }

    /// Detection records for result tables.
    pub fn detection_records(
        &self,
        ds: &GeneratedDataset,
        runs: &[DetectorRun],
    ) -> Vec<DetectionRecord> {
        runs.iter()
            .map(|run| DetectionRecord {
                dataset: ds.info.name.clone(),
                detector: run.kind.name().to_string(),
                detected: run.quality.detected(),
                true_positives: run.quality.true_positives,
                actual_errors: run.quality.actual_errors(),
                precision: run.quality.precision,
                recall: run.quality.recall,
                f1: run.quality.f1,
                runtime_ms: run.runtime.as_secs_f64() * 1e3,
                failure: run.failure.as_ref().map(|f| f.cause.to_string()),
            })
            .collect()
    }

    /// Repair records for result tables.
    pub fn repair_records(
        &self,
        ds: &GeneratedDataset,
        detector: DetectorKind,
        runs: &[RepairRun],
    ) -> Vec<RepairRecord> {
        runs.iter()
            .map(|run| {
                let cat = repair_quality_categorical(ds, run);
                let num = repair_quality_numerical(ds, run);
                RepairRecord {
                    dataset: ds.info.name.clone(),
                    detector: detector.name().to_string(),
                    repairer: run.kind.name().to_string(),
                    cat_precision: cat.map(|q| q.precision),
                    cat_recall: cat.map(|q| q.recall),
                    cat_f1: cat.map(|q| q.f1),
                    rmse: num.map(|(r, _)| r.rmse).filter(|v| v.is_finite()),
                    dirty_rmse: num.map(|(_, d)| d.rmse).filter(|v| v.is_finite()),
                    runtime_ms: run.runtime.as_secs_f64() * 1e3,
                    failure: run.failure.as_ref().map(|f| f.cause.to_string()),
                }
            })
            .collect()
    }
}

/// One repair coordinate's state in the store-backed grid: the stored
/// or freshly-computed cell payload, the produced version's content
/// identity (the downstream eval cells' `dataset_version` key
/// component), and — for live or rehydrated repairs — the run itself.
struct RepairSlot {
    kind: RepairKind,
    coordinate: String,
    seed: u64,
    trace: u64,
    payload: String,
    version_id: Option<String>,
    run: Option<RepairRun>,
}

/// One eval coordinate's store-consultation state: the scenario/repair
/// indices it evaluates, its cell key material, and the stored payload
/// when the lookup hit.
struct EvalMeta {
    si: usize,
    ri: usize,
    key: String,
    seed: u64,
    digest: String,
    trace: u64,
    hit: Option<String>,
}

/// The canonical `detect:…` cell payload: the mask as JSON.
fn detect_payload(mask: &CellMask) -> String {
    // audit:allow(panic, CellMask serialization to JSON strings is infallible)
    serde_json::to_string(mask).expect("mask serializes")
}

/// The canonical `repair:…#…` cell payload: repaired CSV + modified
/// cells + row map for version-producing repairs, a pipeline marker
/// otherwise. Shared by the direct and store-backed grids so the
/// store's committed bytes are exactly the direct grid's cell bytes.
fn repair_payload(rep: &RepairRun) -> String {
    match (&rep.version, &rep.repaired_cells) {
        (Some(v), Some(m)) => format!(
            "{}\n{}\n{:?}",
            rein_data::csv::write_str(&v.table),
            // audit:allow(panic, CellMask serialization to JSON strings is infallible)
            serde_json::to_string(m).expect("mask serializes"),
            v.row_map
        ),
        _ => format!("pipeline:{}", rep.pipeline.is_some()),
    }
}

/// The `scores:…` cell text shared by the supervised tasks.
fn render_scores(scores: &[f64], failure: Option<&StrategyFailure>) -> String {
    match failure {
        Some(f) => format!("scores:{scores:?} failure:{}", f.cause),
        None => format!("scores:{scores:?}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rein_datasets::{DatasetId, Params};

    #[test]
    fn citation_plan_prunes_outlier_detectors() {
        let ds = DatasetId::Citation.generate(&Params::scaled(0.05, 1));
        let plan = Controller::default().plan(&ds);
        assert!(plan.detectors.contains(&DetectorKind::KeyCollision));
        assert!(plan.detectors.contains(&DetectorKind::CleanLab));
        assert!(!plan.detectors.contains(&DetectorKind::Sd));
        assert!(!plan.detectors.contains(&DetectorKind::Nadeef));
        // Classification dataset with oracle: ML-oriented repairs planned.
        assert!(plan.ml_repairers.contains(&RepairKind::ActiveClean));
    }

    #[test]
    fn nasa_plan_keeps_outlier_and_mv_detectors_only() {
        let ds = DatasetId::Nasa.generate(&Params::scaled(0.1, 2));
        let plan = Controller::default().plan(&ds);
        assert!(plan.detectors.contains(&DetectorKind::Sd));
        assert!(plan.detectors.contains(&DetectorKind::MvDetector));
        assert!(!plan.detectors.contains(&DetectorKind::KeyCollision));
        // Regression: no ML-oriented repairers.
        assert!(plan.ml_repairers.is_empty());
    }

    #[test]
    fn detection_phase_produces_records() {
        let ds = DatasetId::BreastCancer.generate(&Params::scaled(0.4, 3));
        let ctrl = Controller { label_budget: 40, seed: 1, ..Controller::default() };
        let runs = ctrl.run_detection(&ds);
        assert!(!runs.is_empty());
        let records = ctrl.detection_records(&ds, &runs);
        assert_eq!(records.len(), runs.len());
        // At least one detector achieves decent recall on this dataset.
        assert!(records.iter().any(|r| r.recall > 0.5), "no detector found errors");
    }

    #[test]
    fn repair_phase_covers_generic_and_ml_methods() {
        let ds = DatasetId::BreastCancer.generate(&Params::scaled(0.3, 4));
        let ctrl = Controller { label_budget: 30, seed: 2, ..Controller::default() };
        let harness = DetectorHarness::new(&ds, 30, 1);
        let det = harness.run(&ds, DetectorKind::MaxEntropy);
        let runs = ctrl.run_repairs(&ds, &det);
        assert!(runs.iter().any(|r| r.version.is_some()), "generic repairs ran");
        assert!(runs.iter().any(|r| r.pipeline.is_some()), "ML-oriented repairs ran");
        let records = ctrl.repair_records(&ds, det.kind, &runs);
        // Numeric dataset: RMSE defined for same-shape repairs.
        assert!(records.iter().any(|r| r.rmse.is_some()));
    }

    #[test]
    fn grid_covers_detect_repair_and_eval_cells() {
        let ds = DatasetId::BreastCancer.generate(&Params::scaled(0.2, 6));
        let ctrl = Controller { label_budget: 30, seed: 7, ..Controller::default() };
        let cells = ctrl.run_grid(&ds, &[Scenario::S1], 1);
        assert!(cells.keys().any(|k| k.starts_with("detect:")), "got {:?}", cells.keys());
        assert!(cells.keys().any(|k| k.starts_with("repair:")), "got {:?}", cells.keys());
        let evals: Vec<&String> = cells.keys().filter(|k| k.starts_with("eval:S1:")).collect();
        assert!(!evals.is_empty(), "got {:?}", cells.keys());
        // Eval cells carry rendered scores, not placeholders.
        for key in evals {
            assert!(cells[key].starts_with("scores:"), "{key} -> {}", cells[key]);
        }
        // Byte-identity across pool widths is parallel_smoke's job; here
        // we only pin the cell taxonomy.
    }

    #[test]
    fn cell_keys_are_content_addressed_per_coordinate() {
        let ds = DatasetId::BreastCancer.generate(&Params::scaled(0.2, 6));
        let ctrl = Controller { label_budget: 30, seed: 7, ..Controller::default() };
        let version = VersionTable::identity(ds.dirty.clone());
        let seed_a = derive_seed(ctrl.seed, 40_000);
        let seed_b = derive_seed(ctrl.seed, 40_001);
        let vid = version.content_identity();
        let a = ctrl.cell_key(&ds, &vid, "eval:S1:ImputeMeanMode#Raha", 0.2, seed_a);
        let b = ctrl.cell_key(&ds, &vid, "eval:S1:ImputeMeanMode#MaxEntropy", 0.2, seed_b);
        assert_ne!(a.content_key(), b.content_key());
        // Rebuilding the key from the same coordinates is byte-stable.
        let again = ctrl.cell_key(&ds, &vid, "eval:S1:ImputeMeanMode#Raha", 0.2, seed_a);
        assert_eq!(a, again);
        assert_eq!(a.content_key(), again.content_key());
        // The version component really is content-addressed: the same
        // table rebuilt from scratch hashes to the same identity.
        assert_eq!(vid, VersionTable::identity(ds.dirty.clone()).content_identity());
        assert!(vid.starts_with("v:") && vid.len() == 18, "got {vid}");
    }

    #[test]
    fn grid_cells_open_trace_roots_keyed_by_cell_key_digest() {
        let ds = DatasetId::BreastCancer.generate(&Params::scaled(0.2, 6));
        // A seed no other test's grid uses: the span sink is process-
        // global, so this run's roots are isolated by their trace ids.
        let ctrl =
            Controller { label_budget: 30, seed: 0xC311, scale: 0.2, ..Controller::default() };
        let _ = ctrl.run_grid(&ds, &[Scenario::S1], 1);
        let spans = rein_telemetry::snapshot_spans();
        let roots: Vec<_> =
            spans.iter().filter(|s| s.name.starts_with("cell:") && !s.instant).collect();
        assert!(!roots.is_empty(), "grid must open cell trace roots");
        assert!(roots.iter().all(|s| s.trace_id != 0), "cell roots are never ambient");
        // Every planned detection cell's trace id is recomputable from
        // its CellKey — and the recorded roots carry exactly those ids.
        // (The snapshot is process-global, so selection is by trace id,
        // which this test's unique seed scopes to this run.)
        let dirty_id = table_identity(&ds.dirty);
        let this_run: Vec<(String, u64)> = ctrl
            .plan(&ds)
            .detectors
            .iter()
            .map(|k| {
                let strat = format!("detect:{}", k.name());
                let seed = derive_seed(ctrl.seed, k.index_letter() as u64);
                let id = ctrl.cell_key(&ds, &dirty_id, &strat, ctrl.scale, seed).hash();
                (strat, id)
            })
            .collect();
        let mut unique: Vec<u64> = this_run.iter().map(|(_, id)| *id).collect();
        unique.sort_unstable();
        unique.dedup();
        assert_eq!(unique.len(), this_run.len(), "detection cell trace ids are distinct");
        for (strategy, id) in &this_run {
            let root = roots
                .iter()
                .find(|s| s.trace_id == *id)
                .unwrap_or_else(|| panic!("no trace root recorded for {strategy}"));
            assert_eq!(root.name, format!("cell:{strategy}"), "root named for its coordinate");
            // Guard spans opened inside the cell inherit the root's trace.
            let inherited = spans
                .iter()
                .any(|s| s.trace_id == *id && s.id != root.id && s.name.starts_with("detect:"));
            assert!(inherited, "guard span under {strategy} must inherit its trace id");
        }
    }

    #[test]
    fn stored_grid_matches_direct_grid_cold_and_warm() {
        let ds = DatasetId::BreastCancer.generate(&Params::scaled(0.2, 6));
        let root = std::env::temp_dir().join(format!("rein-ctrl-store-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&root);
        let direct = Controller { label_budget: 30, seed: 7, ..Controller::default() };
        let want = direct.run_grid(&ds, &[Scenario::S1], 1);

        // Cold store: every cell misses, computes, and commits — and the
        // resulting map is byte-identical to the store-less grid.
        let store = Arc::new(Store::open(&root).unwrap());
        let ctrl = Controller { store: Some(store.clone()), ..direct.clone() };
        let cold = ctrl.run_grid(&ds, &[Scenario::S1], 1);
        assert_eq!(want, cold, "cold store-backed grid diverges from direct grid");
        assert_eq!(store.cell_count(), want.len(), "every grid cell committed");
        drop(ctrl);
        drop(store);

        // Reopen from disk: the journal replays every committed cell and
        // a fully-warm grid replays byte-identical payloads.
        let reopened = Arc::new(Store::open(&root).unwrap());
        assert_eq!(reopened.cell_count(), want.len(), "journal replay is lossless");
        assert!(reopened.recovery().quarantined.is_empty());
        let warm_ctrl = Controller { store: Some(reopened), ..direct };
        let warm = warm_ctrl.run_grid(&ds, &[Scenario::S1], 1);
        assert_eq!(want, warm, "warm store-backed grid diverges from direct grid");
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn cell_keys_ignore_crash_injection_but_not_chaos() {
        let ds = DatasetId::BreastCancer.generate(&Params::scaled(0.2, 6));
        let base = Controller { label_budget: 30, seed: 7, ..Controller::default() };
        let mut crashy = base.clone();
        crashy.policy.crash = rein_guard::CrashSpec::parse("detect:raha=before").unwrap();
        let vid = table_identity(&ds.dirty);
        let seed = derive_seed(base.seed, 40_000);
        // A crashed run and its resume (without REIN_CRASH) must address
        // the same cells: the crash spec is not a cache-key component.
        assert_eq!(
            base.cell_key(&ds, &vid, "detect:raha", 0.2, seed).content_key(),
            crashy.cell_key(&ds, &vid, "detect:raha", 0.2, seed).content_key(),
        );
        // Chaos degrades what a cell computes, so it still keys.
        let mut chaotic = base.clone();
        chaotic.policy.chaos = rein_guard::ChaosSpec::parse("detect:raha=panic").unwrap();
        assert_ne!(
            base.cell_key(&ds, &vid, "detect:raha", 0.2, seed).content_key(),
            chaotic.cell_key(&ds, &vid, "detect:raha", 0.2, seed).content_key(),
        );
    }

    #[test]
    fn strategy_labels_follow_paper_convention() {
        let s = CleaningStrategy {
            detector: DetectorKind::MaxEntropy,
            repairer: RepairKind::ImputeMeanMode,
        };
        assert_eq!(s.label(), "X3");
        let s =
            CleaningStrategy { detector: DetectorKind::Raha, repairer: RepairKind::GroundTruth };
        assert_eq!(s.label(), "R1");
    }
}
