//! Hierarchical wall-clock spans.
//!
//! Each thread keeps a stack of open spans; [`span`] parents a new span
//! under the top of the current thread's stack. Rayon fan-out runs
//! closures on worker threads whose stacks start empty, so parallel code
//! captures the parent context first and opens children explicitly:
//!
//! ```ignore
//! let parent = rein_telemetry::current();
//! items.par_iter().map(|it| {
//!     let _s = rein_telemetry::span_under("detect:one", parent);
//!     ...
//! })
//! ```
//!
//! Finished spans accumulate in a process-global *sharded* sink: each
//! worker thread appends to its own buffer (round-robin shard
//! assignment on first use, `REIN_SPAN_SHARDS` buffers, default one per
//! core), so parallel stages never contend on one list lock. Snapshots
//! merge the shards deterministically — ordered by the global close
//! epoch each record was stamped with, tie-broken by span path and
//! per-shard sequence — so the merged stream is byte-identical no
//! matter how many shards the records were scattered across, and a
//! one-shard sink reproduces the historical single-stream completion
//! order exactly.

use std::cell::{Cell, RefCell};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::{Duration, Instant};

use serde::{Deserialize, Serialize};

use crate::log::{emit, enabled, Level};

/// A lightweight handle to an open span, safe to copy into closures
/// running on other threads.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanCtx {
    /// Process-unique span id (ids start at 1; 0 means "no parent").
    pub id: u64,
    /// Nesting depth, 0 for root spans.
    pub depth: u32,
    /// Cell trace this span belongs to (0 = ambient, outside any cell).
    pub trace_id: u64,
}

/// Explicit causal coordinates of one span: which cell trace it belongs
/// to and where it hangs in that trace's tree. `trace_id` is the
/// FNV-1a-64 digest of the owning cell's `CellKey` identity (see
/// DESIGN.md §6i), so the same grid cell maps to the same trace id at
/// any thread or shard count.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TraceContext {
    /// Cell trace id (`CellKey::hash()`); 0 for ambient spans.
    pub trace_id: u64,
    /// This span's process-unique id.
    pub span_id: u64,
    /// Parent span id, 0 at the roots.
    pub parent_id: u64,
}

/// One finished span.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SpanRecord {
    /// Span name, e.g. `"phase:detect"` or `"detect:raha"`.
    pub name: String,
    /// Process-unique id.
    pub id: u64,
    /// Parent span id, or 0 for root spans.
    pub parent_id: u64,
    /// Nesting depth, 0 for root spans.
    pub depth: u32,
    /// Start offset in milliseconds from the first telemetry event of
    /// the process.
    pub start_ms: f64,
    /// Wall-clock duration in milliseconds.
    pub duration_ms: f64,
    /// Cell trace this span belongs to: the FNV-1a-64 digest of the
    /// owning cell's `CellKey` identity, inherited from the enclosing
    /// span. 0 (the serde default, covering pre-trace manifests) marks
    /// ambient spans outside any cell.
    #[serde(default)]
    pub trace_id: u64,
    /// True for zero-duration instant events (guard retries/failures)
    /// attached to the trace at a point in time rather than an interval.
    #[serde(default)]
    pub instant: bool,
}

static NEXT_ID: AtomicU64 = AtomicU64::new(1);

/// Process start reference for `start_ms` offsets. Reads the clock
/// through [`crate::perf::now`] — the one sanctioned wall-clock source.
fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(crate::perf::now)
}

/// One shard entry: the global close epoch the record was stamped with
/// when it finished, and the record itself. The epoch never reaches the
/// serialized manifest — it exists only to give the merge a total order
/// that is independent of which shard held the record.
type ShardEntry = (u64, SpanRecord);

/// The sharded span sink: per-worker buffers plus the global close
/// epoch. Worker threads are assigned shards round-robin on their first
/// finished span; a single-threaded process therefore lands every
/// record in one shard regardless of the shard count, and the merge of
/// one shard is the historical completion-order stream unchanged.
pub(crate) struct SpanSink {
    shards: Vec<Mutex<Vec<ShardEntry>>>,
    close_epoch: AtomicU64,
    next_worker: AtomicUsize,
}

impl SpanSink {
    /// A sink with `shards` buffers (clamped to at least one).
    pub(crate) fn new(shards: usize) -> SpanSink {
        SpanSink {
            shards: (0..shards.max(1)).map(|_| Mutex::new(Vec::new())).collect(),
            close_epoch: AtomicU64::new(0),
            next_worker: AtomicUsize::new(0),
        }
    }

    /// Number of shard buffers.
    pub(crate) fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Round-robin shard assignment for a newly seen worker thread.
    fn assign_shard(&self) -> usize {
        self.next_worker.fetch_add(1, Ordering::Relaxed) % self.shards.len()
    }

    /// Appends a finished record to `shard`, stamping it with the next
    /// global close epoch. The epoch increment is a single relaxed
    /// atomic add; only the per-shard lock is taken, so workers on
    /// different shards never contend.
    pub(crate) fn record(&self, shard: usize, record: SpanRecord) {
        let epoch = self.close_epoch.fetch_add(1, Ordering::Relaxed);
        let buffer = &self.shards[shard % self.shards.len()];
        // audit:allow(panic, span shard lock poisoning only follows another panic)
        buffer.lock().expect("span shard lock").push((epoch, record));
    }

    /// Copies every shard out and merges deterministically.
    pub(crate) fn snapshot(&self) -> Vec<SpanRecord> {
        let shards = self
            .shards
            .iter()
            // audit:allow(panic, span shard lock poisoning only follows another panic)
            .map(|s| s.lock().expect("span shard lock").clone())
            .collect();
        merge_shards(shards)
    }

    /// Removes every record from every shard and merges them.
    pub(crate) fn drain(&self) -> Vec<SpanRecord> {
        let shards = self
            .shards
            .iter()
            // audit:allow(panic, span shard lock poisoning only follows another panic)
            .map(|s| std::mem::take(&mut *s.lock().expect("span shard lock")))
            .collect();
        merge_shards(shards)
    }

    /// Clears every shard without touching the epoch (epochs, like span
    /// ids, are process-monotonic).
    pub(crate) fn clear(&self) {
        for s in &self.shards {
            // audit:allow(panic, span shard lock poisoning only follows another panic)
            s.lock().expect("span shard lock").clear();
        }
    }
}

/// Total order over shard entries for the deterministic merge: the
/// global close epoch first, then span path and the remaining record
/// fields so the comparator is total even under synthetic epoch ties.
/// Because the key never mentions the shard an entry came from, the
/// merged order is invariant under any re-sharding of the same records
/// — merging is associative and commutative in the shard list.
fn cmp_entries(a: &ShardEntry, b: &ShardEntry) -> std::cmp::Ordering {
    let (ea, ra) = a;
    let (eb, rb) = b;
    ea.cmp(eb)
        .then_with(|| ra.name.cmp(&rb.name))
        .then_with(|| ra.id.cmp(&rb.id))
        .then_with(|| ra.parent_id.cmp(&rb.parent_id))
        .then_with(|| ra.depth.cmp(&rb.depth))
        .then_with(|| ra.start_ms.total_cmp(&rb.start_ms))
        .then_with(|| ra.duration_ms.total_cmp(&rb.duration_ms))
        .then_with(|| ra.trace_id.cmp(&rb.trace_id))
        .then_with(|| ra.instant.cmp(&rb.instant))
}

/// Merges shard buffers into one deterministic stream, keeping the
/// epoch stamps (so a merged stream can itself be treated as a shard —
/// the associativity tests rely on this).
pub(crate) fn merge_entries(shards: Vec<Vec<ShardEntry>>) -> Vec<ShardEntry> {
    let mut all: Vec<ShardEntry> = shards.into_iter().flatten().collect();
    all.sort_by(cmp_entries);
    all
}

/// Merges shard buffers into the final record stream (epoch stamps
/// stripped). With real (process-unique) epochs this reconstructs the
/// exact global completion order, so shard count cannot perturb a
/// manifest's span list.
pub(crate) fn merge_shards(shards: Vec<Vec<ShardEntry>>) -> Vec<SpanRecord> {
    merge_entries(shards).into_iter().map(|(_, r)| r).collect()
}

/// Shard count for the global sink: `REIN_SPAN_SHARDS` when set,
/// otherwise one buffer per available core. A value that is set but not
/// a positive integer is a hard error, never a silent default —
/// consistent with the bench crate's environment handling.
fn span_shards() -> usize {
    // audit:allow(env-read-confinement, REIN_SPAN_SHARDS only sizes the span sink's buffer pool; shards are merged deterministically before any report)
    match std::env::var("REIN_SPAN_SHARDS") {
        Err(_) => std::thread::available_parallelism().map(|p| p.get()).unwrap_or(1),
        Ok(raw) => match raw.parse::<usize>() {
            Ok(n) if n > 0 => n,
            _ => {
                // audit:allow(print, a bad environment must fail loudly before any telemetry exists)
                eprintln!(
                    "error: REIN_SPAN_SHARDS={raw:?} is invalid: want a positive \
                     integer (unset it to use one shard per core)"
                );
                std::process::exit(2);
            }
        },
    }
}

fn sink() -> &'static SpanSink {
    static SINK: OnceLock<SpanSink> = OnceLock::new();
    SINK.get_or_init(|| SpanSink::new(span_shards()))
}

thread_local! {
    static STACK: RefCell<Vec<SpanCtx>> = const { RefCell::new(Vec::new()) };
    /// The shard this worker thread writes finished spans to, assigned
    /// round-robin by the sink the first time the thread records one.
    static WORKER_SHARD: Cell<Option<usize>> = const { Cell::new(None) };
}

/// The calling thread's shard in the global sink.
fn worker_shard() -> usize {
    WORKER_SHARD.with(|c| match c.get() {
        Some(s) => s,
        None => {
            let s = sink().assign_shard();
            c.set(Some(s));
            s
        }
    })
}

/// Shard count of the process-global span sink (`REIN_SPAN_SHARDS`,
/// default one per core). Exposed so manifests and tests can echo the
/// effective collection configuration.
pub fn span_shard_count() -> usize {
    sink().shard_count()
}

/// The innermost span open on the current thread, if any. Capture this
/// before a rayon fan-out and pass it to [`span_under`] inside the
/// parallel closure.
pub fn current() -> Option<SpanCtx> {
    STACK.with(|s| s.borrow().last().copied())
}

/// An open span; records itself when dropped or [`finish`](Span::finish)ed.
#[derive(Debug)]
pub struct Span {
    name: String,
    id: u64,
    parent_id: u64,
    depth: u32,
    trace_id: u64,
    start_ms: f64,
    start: Instant,
    closed: bool,
}

/// Opens a span parented under the current thread's innermost open span,
/// inheriting its trace context.
pub fn span(name: impl Into<String>) -> Span {
    span_under(name, current())
}

/// Opens a span under an explicit parent (or as a root when `None`).
/// This is the fan-out form: the parent context travels into worker
/// threads by value, so nesting stays correct under rayon. The trace id
/// is inherited from the parent; parallel worker roots must instead use
/// [`span_traced`] with their cell-derived trace id (the `trace-context`
/// audit rule enforces this inside the certified parallel region).
pub fn span_under(name: impl Into<String>, parent: Option<SpanCtx>) -> Span {
    span_traced(name, parent, parent.map_or(0, |p| p.trace_id))
}

/// Opens a **cell trace root** (or a span pinned to an explicit trace):
/// parented under `parent` for tree structure, but carrying `trace_id`
/// — the FNV-1a-64 digest of the owning cell's `CellKey` identity —
/// instead of the ambient one. Every span subsequently opened on the
/// same thread (guard spans, kernel spans, instant events) inherits the
/// id through the thread-local stack, so the whole per-cell subtree is
/// reconstructible from the merged stream no matter which rayon worker
/// or sink shard carried each record.
pub fn span_traced(name: impl Into<String>, parent: Option<SpanCtx>, trace_id: u64) -> Span {
    let name = name.into();
    let id = NEXT_ID.fetch_add(1, Ordering::Relaxed);
    let depth = parent.map_or(0, |p| p.depth + 1);
    let parent_id = parent.map_or(0, |p| p.id);
    let start_ms = epoch().elapsed().as_secs_f64() * 1e3;
    STACK.with(|s| s.borrow_mut().push(SpanCtx { id, depth, trace_id }));
    if enabled(Level::Debug) {
        emit(Level::Debug, &format!("{}+ open {name} depth={depth}", Indent(depth)));
    }
    Span {
        name,
        id,
        parent_id,
        depth,
        trace_id,
        start_ms,
        start: crate::perf::now(),
        closed: false,
    }
}

/// Records a zero-duration **instant event** attached to the current
/// thread's innermost open span (guard failures, retries, deadline
/// exhaustion). The event lands in the sink immediately, carrying the
/// enclosing span's trace id, so a degraded cell's trace shows *when*
/// inside the guarded call the failure happened.
pub fn instant(name: impl Into<String>) {
    let parent = current();
    let record = SpanRecord {
        name: name.into(),
        id: NEXT_ID.fetch_add(1, Ordering::Relaxed),
        parent_id: parent.map_or(0, |p| p.id),
        depth: parent.map_or(0, |p| p.depth + 1),
        start_ms: epoch().elapsed().as_secs_f64() * 1e3,
        duration_ms: 0.0,
        trace_id: parent.map_or(0, |p| p.trace_id),
        instant: true,
    };
    if enabled(Level::Debug) {
        emit(Level::Debug, &format!("{}! instant {}", Indent(record.depth), record.name));
    }
    sink().record(worker_shard(), record);
}

/// The trace context of the current thread's innermost open span, if
/// any. Guard code captures this when building failure records so the
/// report's failure taxonomy can link each row to its cell trace.
pub fn current_trace() -> Option<TraceContext> {
    STACK.with(|s| {
        let stack = s.borrow();
        let top = stack.last()?;
        let parent_id = stack.len().checked_sub(2).map_or(0, |i| stack[i].id);
        Some(TraceContext { trace_id: top.trace_id, span_id: top.id, parent_id })
    })
}

/// Depth-proportional indentation for debug span events.
struct Indent(u32);

impl std::fmt::Display for Indent {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        for _ in 0..self.0 {
            f.write_str("  ")?;
        }
        Ok(())
    }
}

impl Span {
    /// Handle for parenting children (possibly on other threads).
    pub fn ctx(&self) -> SpanCtx {
        SpanCtx { id: self.id, depth: self.depth, trace_id: self.trace_id }
    }

    /// This span's explicit causal coordinates.
    pub fn trace_context(&self) -> TraceContext {
        TraceContext { trace_id: self.trace_id, span_id: self.id, parent_id: self.parent_id }
    }

    /// Closes the span now and returns its wall-clock duration.
    pub fn finish(mut self) -> Duration {
        self.close()
    }

    fn close(&mut self) -> Duration {
        if self.closed {
            return Duration::ZERO;
        }
        self.closed = true;
        let duration = self.start.elapsed();
        // Pop by id rather than blindly popping the top: a guard moved
        // across threads or dropped out of order must not corrupt the
        // stack of unrelated spans.
        STACK.with(|s| {
            let mut stack = s.borrow_mut();
            if let Some(pos) = stack.iter().rposition(|c| c.id == self.id) {
                stack.remove(pos);
            }
        });
        let record = SpanRecord {
            name: std::mem::take(&mut self.name),
            id: self.id,
            parent_id: self.parent_id,
            depth: self.depth,
            start_ms: self.start_ms,
            duration_ms: duration.as_secs_f64() * 1e3,
            trace_id: self.trace_id,
            instant: false,
        };
        if enabled(Level::Debug) {
            emit(
                Level::Debug,
                &format!(
                    "{}- close {} depth={} ({:.3}ms)",
                    Indent(record.depth),
                    record.name,
                    record.depth,
                    record.duration_ms
                ),
            );
        }
        sink().record(worker_shard(), record);
        duration
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        self.close();
    }
}

/// Copies out every finished span, in global completion order (the
/// deterministic merge of the per-worker shards).
pub fn snapshot_spans() -> Vec<SpanRecord> {
    sink().snapshot()
}

/// Removes and returns every finished span, in global completion order.
pub fn drain_spans() -> Vec<SpanRecord> {
    sink().drain()
}

pub(crate) fn reset_spans() {
    sink().clear();
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(name: &str, id: u64) -> SpanRecord {
        SpanRecord {
            name: name.to_string(),
            id,
            parent_id: 0,
            depth: 0,
            start_ms: id as f64,
            duration_ms: 1.0,
            trace_id: 0,
            instant: false,
        }
    }

    /// A fixed stream of records with unique epochs, as a real run
    /// produces (the close epoch is a process-global atomic).
    fn stream() -> Vec<ShardEntry> {
        ["phase:detect", "detect:raha", "detect:raha", "repair:mean", "phase:repair", "detect:sd"]
            .iter()
            .enumerate()
            .map(|(i, name)| (i as u64, rec(name, 100 + i as u64)))
            .collect()
    }

    /// Distributes a stream round-robin over `n` shards, as round-robin
    /// worker assignment would under an adversarial scheduler.
    fn scatter(entries: &[ShardEntry], n: usize) -> Vec<Vec<ShardEntry>> {
        let mut shards = vec![Vec::new(); n];
        for (i, e) in entries.iter().enumerate() {
            shards[i % n].push(e.clone());
        }
        shards
    }

    #[test]
    fn one_shard_merge_is_the_identity_stream() {
        let s = stream();
        let merged = merge_shards(vec![s.clone()]);
        let plain: Vec<SpanRecord> = s.into_iter().map(|(_, r)| r).collect();
        assert_eq!(merged, plain, "a single shard must reproduce the single-stream order");
    }

    #[test]
    fn one_vs_n_shards_merge_byte_identically() {
        let s = stream();
        let one = merge_shards(vec![s.clone()]);
        for n in [2, 3, 4, 7] {
            let scattered = merge_shards(scatter(&s, n));
            let a = serde_json::to_string(&one).expect("serializes");
            let b = serde_json::to_string(&scattered).expect("serializes");
            assert_eq!(a, b, "{n}-shard merge must be byte-identical to the 1-shard stream");
        }
    }

    #[test]
    fn merge_is_commutative_in_shard_order() {
        let s = stream();
        let shards = scatter(&s, 3);
        let forward = merge_shards(shards.clone());
        let mut reversed = shards.clone();
        reversed.reverse();
        assert_eq!(merge_shards(reversed), forward);
        let rotated = vec![shards[1].clone(), shards[2].clone(), shards[0].clone()];
        assert_eq!(merge_shards(rotated), forward);
    }

    #[test]
    fn merge_is_associative() {
        let s = stream();
        let shards = scatter(&s, 3);
        let all_at_once = merge_entries(shards.clone());
        let ab_then_c = merge_entries(vec![
            merge_entries(vec![shards[0].clone(), shards[1].clone()]),
            shards[2].clone(),
        ]);
        let a_then_bc = merge_entries(vec![
            shards[0].clone(),
            merge_entries(vec![shards[1].clone(), shards[2].clone()]),
        ]);
        assert_eq!(ab_then_c, all_at_once);
        assert_eq!(a_then_bc, all_at_once);
    }

    #[test]
    fn epoch_ties_break_by_span_path_then_record_fields() {
        // Synthetic duplicate epochs (cannot happen with the atomic
        // epoch, but the comparator must stay total): path decides.
        let a = (5u64, rec("detect:zeta", 1));
        let b = (5u64, rec("detect:alpha", 2));
        let merged = merge_shards(vec![vec![a.clone()], vec![b.clone()]]);
        assert_eq!(merged[0].name, "detect:alpha");
        assert_eq!(merged[1].name, "detect:zeta");
        let swapped = merge_shards(vec![vec![b], vec![a]]);
        assert_eq!(merged, swapped);
    }

    #[test]
    fn trace_id_inherits_through_nested_spans_and_instants() {
        // A traced root on this thread: children and instants opened
        // with no explicit context must inherit its trace id.
        let root = span_traced("cell:detect:unit", None, 0xFEED);
        assert_eq!(root.trace_context().trace_id, 0xFEED);
        let child = span("detect:unit");
        assert_eq!(child.ctx().trace_id, 0xFEED, "ambient child inherits the trace");
        assert_eq!(current_trace().map(|t| t.trace_id), Some(0xFEED));
        instant("guard:retry");
        let child_id = child.ctx().id;
        drop(child);
        drop(root);
        let spans = drain_spans();
        let inst =
            spans.iter().find(|r| r.instant && r.name == "guard:retry").expect("instant recorded");
        assert_eq!(inst.trace_id, 0xFEED);
        assert_eq!(inst.parent_id, child_id, "instant parents under the innermost span");
        assert_eq!(inst.duration_ms, 0.0);
        for r in spans.iter().filter(|r| !r.instant) {
            if r.name == "cell:detect:unit" || r.name == "detect:unit" {
                assert_eq!(r.trace_id, 0xFEED, "{}", r.name);
            }
        }
    }

    #[test]
    fn pre_trace_records_deserialize_with_zero_trace_id() {
        // A span serialized before the trace fields existed.
        let old = r#"{"name":"detect:raha","id":3,"parent_id":1,"depth":1,
                      "start_ms":0.5,"duration_ms":2.0}"#;
        let r: SpanRecord = serde_json::from_str(old).expect("old record parses");
        assert_eq!(r.trace_id, 0);
        assert!(!r.instant);
    }

    #[test]
    fn sink_round_robins_workers_and_merges_deterministically() {
        let sink = SpanSink::new(4);
        assert_eq!(sink.shard_count(), 4);
        // Simulate three workers, each recording into its assigned shard.
        let shards: Vec<usize> = (0..3).map(|_| sink.assign_shard()).collect();
        assert_eq!(shards, [0, 1, 2]);
        sink.record(shards[1], rec("b", 2));
        sink.record(shards[0], rec("a", 1));
        sink.record(shards[2], rec("c", 3));
        let snap = sink.snapshot();
        // Order is the global close epoch: b (epoch 0), a (1), c (2).
        let names: Vec<&str> = snap.iter().map(|r| r.name.as_str()).collect();
        assert_eq!(names, ["b", "a", "c"]);
        assert_eq!(sink.drain(), snap);
        assert!(sink.snapshot().is_empty());
    }
}
