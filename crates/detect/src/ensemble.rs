//! Ensembles of non-learning detectors (Abedjan et al., "Detecting data
//! errors: where are we and what needs to be done?"): **Min-K** flags
//! cells reported by at least `k` base detectors; **Max Entropy** orders
//! the detectors greedily by the information (new evidence) each adds and
//! unions their output until the marginal gain vanishes.

use rein_data::CellMask;

use crate::context::{DetectContext, Detector};
use crate::dboost::DBoost;
use crate::fahes::Fahes;
use crate::holoclean::HoloCleanDetect;
use crate::isolation_forest::IsolationForest;
use crate::katara::Katara;
use crate::nadeef::Nadeef;
use crate::openrefine::OpenRefine;
use crate::simple::{IqrDetector, MvDetector, SdDetector};

/// The default base pool: every non-learning single-purpose detector.
/// Signal-dependent members (NADEEF, HoloClean, KATARA) degrade to no-ops
/// when their signals are absent from the context.
pub fn default_base_pool() -> Vec<Box<dyn Detector>> {
    vec![
        Box::new(MvDetector),
        Box::new(SdDetector::default()),
        Box::new(IqrDetector::default()),
        Box::new(IsolationForest::default()),
        Box::new(DBoost::default()),
        Box::new(Fahes::default()),
        Box::new(Nadeef::default()),
        Box::new(HoloCleanDetect),
        Box::new(Katara::default()),
        Box::new(OpenRefine),
    ]
}

/// Min-K voting ensemble.
pub struct MinK {
    /// Minimum number of agreeing detectors.
    pub k: usize,
    base: Vec<Box<dyn Detector>>,
}

impl MinK {
    /// Min-K over the default pool.
    pub fn new(k: usize) -> Self {
        Self { k: k.max(1), base: default_base_pool() }
    }

    /// Min-K over a custom pool.
    pub fn with_pool(k: usize, base: Vec<Box<dyn Detector>>) -> Self {
        Self { k: k.max(1), base }
    }
}

impl Detector for MinK {
    fn name(&self) -> &'static str {
        "min_k"
    }

    fn detect(&self, ctx: &DetectContext<'_>) -> CellMask {
        let _span = rein_telemetry::span("detect:ensemble");
        let t = ctx.dirty;
        let mut votes = vec![0u16; t.n_rows() * t.n_cols()];
        for d in &self.base {
            for cell in d.detect(ctx).iter() {
                votes[cell.row * t.n_cols() + cell.col] += 1;
            }
        }
        let mut mask = CellMask::new(t.n_rows(), t.n_cols());
        for r in 0..t.n_rows() {
            for c in 0..t.n_cols() {
                if votes[r * t.n_cols() + c] as usize >= self.k {
                    mask.set(r, c, true);
                }
            }
        }
        mask
    }
}

/// Max-Entropy ordered ensemble.
pub struct MaxEntropy {
    /// Stop when a detector's marginal contribution (new cells / its total
    /// detections) falls below this fraction.
    pub min_gain: f64,
    base: Vec<Box<dyn Detector>>,
}

impl Default for MaxEntropy {
    fn default() -> Self {
        Self { min_gain: 0.05, base: default_base_pool() }
    }
}

impl MaxEntropy {
    /// Max Entropy over a custom pool.
    pub fn with_pool(min_gain: f64, base: Vec<Box<dyn Detector>>) -> Self {
        Self { min_gain, base }
    }
}

impl Detector for MaxEntropy {
    fn name(&self) -> &'static str {
        "max_entropy"
    }

    fn detect(&self, ctx: &DetectContext<'_>) -> CellMask {
        let _span = rein_telemetry::span("detect:ensemble");
        let t = ctx.dirty;
        // Precompute every detector's output (the original runs detectors
        // lazily; at our scale precomputation matches the semantics and the
        // orderly greedy selection below reproduces the entropy ordering).
        let mut outputs: Vec<(usize, CellMask)> = self
            .base
            .iter()
            .enumerate()
            .map(|(i, d)| (i, d.detect(ctx)))
            .filter(|(_, m)| !m.is_empty())
            .collect();

        let mut union = CellMask::new(t.n_rows(), t.n_cols());
        while !outputs.is_empty() {
            // Detector adding the most new cells = highest-entropy pick.
            let (best_pos, gain) = outputs
                .iter()
                .enumerate()
                .map(|(pos, (_, m))| (pos, m.difference(&union).count()))
                .max_by_key(|&(_, gain)| gain)
                // audit:allow(panic, outputs checked non-empty by the loop condition)
                .expect("non-empty");
            let (_, mask) = outputs.swap_remove(best_pos);
            let total = mask.count().max(1);
            if (gain as f64) / (total as f64) < self.min_gain || gain == 0 {
                break;
            }
            union.union_with(&mask);
        }
        union
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rein_data::{ColumnMeta, ColumnType, Schema, Table, Value};

    /// Table with a numeric outlier (caught by SD/IQR/IF/dBoost) and a
    /// missing value (caught only by MVD/HoloClean).
    fn table() -> Table {
        let schema = Schema::new(vec![ColumnMeta::new("x", ColumnType::Float)]);
        let mut rows: Vec<Vec<Value>> =
            (0..100).map(|i| vec![Value::Float(5.0 + (i % 9) as f64 * 0.1)]).collect();
        rows[11][0] = Value::Float(800.0);
        rows[23][0] = Value::Null;
        Table::from_rows(schema, rows)
    }

    #[test]
    fn min_k_with_k1_is_the_union() {
        let t = table();
        let m = MinK::new(1).detect(&DetectContext::bare(&t));
        assert!(m.get(11, 0));
        assert!(m.get(23, 0));
    }

    #[test]
    fn higher_k_is_stricter() {
        let t = table();
        let k1 = MinK::new(1).detect(&DetectContext::bare(&t)).count();
        let k3 = MinK::new(3).detect(&DetectContext::bare(&t)).count();
        let k9 = MinK::new(9).detect(&DetectContext::bare(&t)).count();
        assert!(k1 >= k3);
        assert!(k3 >= k9);
        // The outlier is caught by at least 3 outlier detectors.
        assert!(MinK::new(3).detect(&DetectContext::bare(&t)).get(11, 0));
    }

    #[test]
    fn max_entropy_covers_both_error_kinds() {
        let t = table();
        let m = MaxEntropy::default().detect(&DetectContext::bare(&t));
        assert!(m.get(11, 0), "outlier covered");
        assert!(m.get(23, 0), "missing value covered");
    }

    #[test]
    fn max_entropy_on_clean_data_is_quiet() {
        let schema = Schema::new(vec![ColumnMeta::new("x", ColumnType::Float)]);
        let t = Table::from_rows(
            schema,
            (0..100).map(|i| vec![Value::Float(5.0 + (i % 9) as f64 * 0.1)]).collect(),
        );
        let m = MaxEntropy::default().detect(&DetectContext::bare(&t));
        assert!(m.count() <= 3, "count {}", m.count());
    }

    #[test]
    fn custom_pool_is_respected() {
        let t = table();
        let m = MinK::with_pool(1, vec![Box::new(MvDetector)]).detect(&DetectContext::bare(&t));
        assert_eq!(m.count(), 1);
        assert!(m.get(23, 0));
    }
}
