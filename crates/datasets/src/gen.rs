//! Shared generation helpers: planted feature–label structure so model
//! accuracy responds to data corruption the way the paper's real datasets
//! do (classification = cluster structure + label rule; regression =
//! smooth function + noise; clustering = Gaussian mixtures).

use rand::prelude::*;
use rand::rngs::StdRng;
use rein_data::rng::randn;
use rein_data::{ColumnMeta, ColumnRole, ColumnType, Schema, Table, Value};

/// Generation parameters shared by every dataset generator.
#[derive(Debug, Clone, Copy)]
pub struct Params {
    /// Scales the paper's row count (1.0 = Table 4 size). Benches use 1.0
    /// or explicit fractions; tests use small factors.
    pub size_factor: f64,
    /// Master seed; all randomness derives from it.
    pub seed: u64,
}

impl Params {
    /// Full-size dataset with the given seed.
    pub fn full(seed: u64) -> Self {
        Self { size_factor: 1.0, seed }
    }

    /// Scaled dataset (e.g. `0.05` for unit tests).
    pub fn scaled(size_factor: f64, seed: u64) -> Self {
        Self { size_factor, seed }
    }

    /// Number of rows for a paper-size `base` count (at least 20).
    pub fn rows(&self, base: usize) -> usize {
        ((base as f64 * self.size_factor).round() as usize).max(20)
    }
}

/// A typed column under construction.
pub struct ColumnBuilder {
    /// Column metadata.
    pub meta: ColumnMeta,
    /// Values (filled per-row).
    pub values: Vec<Value>,
}

/// Incremental clean-table builder used by the dataset generators.
pub struct TableBuilder {
    columns: Vec<ColumnBuilder>,
}

impl TableBuilder {
    /// Empty builder.
    pub fn new() -> Self {
        Self { columns: Vec::new() }
    }

    /// Adds a fully materialised column.
    pub fn column(
        mut self,
        name: &str,
        ctype: ColumnType,
        role: ColumnRole,
        values: Vec<Value>,
    ) -> Self {
        let mut meta = ColumnMeta::new(name, ctype);
        meta.role = role;
        self.columns.push(ColumnBuilder { meta, values });
        self
    }

    /// Finalises into a table.
    ///
    /// # Panics
    /// Panics when column lengths disagree.
    pub fn build(self) -> Table {
        let schema = Schema::new(self.columns.iter().map(|c| c.meta.clone()).collect());
        Table::from_columns(schema, self.columns.into_iter().map(|c| c.values).collect())
    }
}

impl Default for TableBuilder {
    fn default() -> Self {
        Self::new()
    }
}

/// `n` Gaussian values around `mean` with `std`.
pub fn gaussian_column(rng: &mut StdRng, n: usize, mean: f64, std: f64) -> Vec<f64> {
    (0..n).map(|_| mean + std * randn(rng)).collect()
}

/// `n` uniform values in `[lo, hi)`.
pub fn uniform_column(rng: &mut StdRng, n: usize, lo: f64, hi: f64) -> Vec<f64> {
    (0..n).map(|_| rng.random_range(lo..hi)).collect()
}

/// `n` categorical draws with the given (unnormalised) weights.
pub fn categorical_column(
    rng: &mut StdRng,
    n: usize,
    options: &[&str],
    weights: &[f64],
) -> Vec<String> {
    (0..n)
        .map(|_| {
            let i = rein_data::rng::weighted_index(rng, weights);
            options[i].to_string()
        })
        .collect()
}

/// Cluster-structured features: `n` points assigned round-robin to `k`
/// centres in `d` dimensions (centres on a seeded random lattice, cluster
/// σ = `spread`). Returns `(features[d][n], assignment[n])`.
pub fn cluster_features(
    rng: &mut StdRng,
    n: usize,
    d: usize,
    k: usize,
    spread: f64,
) -> (Vec<Vec<f64>>, Vec<usize>) {
    let centres: Vec<Vec<f64>> =
        (0..k).map(|_| (0..d).map(|_| rng.random_range(-10.0..10.0)).collect()).collect();
    let mut features: Vec<Vec<f64>> = (0..d).map(|_| Vec::with_capacity(n)).collect();
    let mut assignment = Vec::with_capacity(n);
    for i in 0..n {
        let c = i % k;
        assignment.push(c);
        for (dim, f) in features.iter_mut().enumerate() {
            f.push(centres[c][dim] + spread * randn(rng));
        }
    }
    (features, assignment)
}

/// Converts floats to `Value::Float` cells.
pub fn floats(xs: Vec<f64>) -> Vec<Value> {
    xs.into_iter().map(Value::float).collect()
}

/// Converts floats to rounded `Value::Int` cells.
pub fn ints(xs: Vec<f64>) -> Vec<Value> {
    xs.into_iter().map(|x| Value::Int(x.round() as i64)).collect()
}

/// Converts strings to `Value::Str` cells.
pub fn strs(xs: Vec<String>) -> Vec<Value> {
    xs.into_iter().map(Value::Str).collect()
}

/// Linear response `w·x + b + σ·ε` over column-major features.
pub fn linear_response(
    rng: &mut StdRng,
    features: &[&[f64]],
    weights: &[f64],
    bias: f64,
    noise: f64,
) -> Vec<f64> {
    let n = features.first().map_or(0, |f| f.len());
    (0..n)
        .map(|i| {
            let mut y = bias;
            for (f, w) in features.iter().zip(weights) {
                y += f[i] * w;
            }
            y + noise * randn(rng)
        })
        .collect()
}

/// Binary labels from a logistic rule over features (planted decision
/// boundary with `flip_noise` label noise).
pub fn logistic_labels(
    rng: &mut StdRng,
    features: &[&[f64]],
    weights: &[f64],
    bias: f64,
    flip_noise: f64,
    pos: &str,
    neg: &str,
) -> Vec<String> {
    let n = features.first().map_or(0, |f| f.len());
    (0..n)
        .map(|i| {
            let mut z = bias;
            for (f, w) in features.iter().zip(weights) {
                z += f[i] * w;
            }
            let mut label = z > 0.0;
            if rng.random::<f64>() < flip_noise {
                label = !label;
            }
            if label {
                pos.to_string()
            } else {
                neg.to_string()
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn params_scale_rows() {
        let p = Params::scaled(0.1, 1);
        assert_eq!(p.rows(1000), 100);
        assert_eq!(p.rows(50), 20, "floor at 20");
        assert_eq!(Params::full(1).rows(2410), 2410);
    }

    #[test]
    fn builder_assembles_table() {
        let t = TableBuilder::new()
            .column("a", ColumnType::Float, ColumnRole::Feature, floats(vec![1.0, 2.0]))
            .column("y", ColumnType::Str, ColumnRole::Label, strs(vec!["x".into(), "y".into()]))
            .build();
        assert_eq!(t.n_rows(), 2);
        assert_eq!(t.schema().label_index(), Some(1));
    }

    #[test]
    fn cluster_features_have_structure() {
        let mut rng = StdRng::seed_from_u64(3);
        let (features, assignment) = cluster_features(&mut rng, 120, 2, 3, 0.3);
        assert_eq!(features.len(), 2);
        assert_eq!(features[0].len(), 120);
        // Within-cluster variance far below total variance.
        let total_var = {
            let m = features[0].iter().sum::<f64>() / 120.0;
            features[0].iter().map(|v| (v - m).powi(2)).sum::<f64>() / 120.0
        };
        let c0: Vec<f64> =
            (0..120).filter(|&i| assignment[i] == 0).map(|i| features[0][i]).collect();
        let within = {
            let m = c0.iter().sum::<f64>() / c0.len() as f64;
            c0.iter().map(|v| (v - m).powi(2)).sum::<f64>() / c0.len() as f64
        };
        assert!(within < total_var / 3.0, "within {within} total {total_var}");
    }

    #[test]
    fn logistic_labels_follow_boundary() {
        let mut rng = StdRng::seed_from_u64(5);
        let f: Vec<f64> = (0..200).map(|i| i as f64 - 100.0).collect();
        let labels = logistic_labels(&mut rng, &[&f], &[1.0], 0.0, 0.0, "p", "n");
        assert_eq!(labels[0], "n");
        assert_eq!(labels[199], "p");
    }

    #[test]
    fn linear_response_matches_weights() {
        let mut rng = StdRng::seed_from_u64(7);
        let f1: Vec<f64> = vec![1.0, 2.0, 3.0];
        let f2: Vec<f64> = vec![0.0, 1.0, 0.0];
        let y = linear_response(&mut rng, &[&f1, &f2], &[2.0, -1.0], 0.5, 0.0);
        assert_eq!(y, vec![2.5, 3.5, 6.5]);
    }

    #[test]
    fn categorical_respects_weights() {
        let mut rng = StdRng::seed_from_u64(9);
        let xs = categorical_column(&mut rng, 3000, &["a", "b"], &[3.0, 1.0]);
        let a = xs.iter().filter(|s| *s == "a").count();
        assert!((a as f64 / 3000.0 - 0.75).abs() < 0.05);
    }
}
