//! k-nearest-neighbour classification and regression (brute force with a
//! partial selection of the k smallest distances).

use crate::linalg::{sq_dist, Matrix};
use crate::model::{Classifier, Regressor};

/// Indices of the `k` nearest training rows to `query`.
fn k_nearest(train: &Matrix, query: &[f64], k: usize) -> Vec<usize> {
    let mut dists: Vec<(f64, usize)> =
        (0..train.rows()).map(|r| (sq_dist(train.row(r), query), r)).collect();
    let k = k.min(dists.len());
    if k == 0 {
        return Vec::new();
    }
    dists.select_nth_unstable_by(k - 1, |a, b| a.0.total_cmp(&b.0));
    let mut nearest: Vec<(f64, usize)> = dists[..k].to_vec();
    nearest.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
    nearest.into_iter().map(|(_, r)| r).collect()
}

/// k-NN classifier (majority vote; ties broken by the nearer neighbour).
#[derive(Debug, Clone)]
pub struct KnnClassifier {
    /// Neighbour count.
    pub k: usize,
    x: Option<Matrix>,
    y: Vec<usize>,
    n_classes: usize,
}

impl KnnClassifier {
    /// Builds a k-NN classifier.
    pub fn new(k: usize) -> Self {
        Self { k: k.max(1), x: None, y: Vec::new(), n_classes: 0 }
    }
}

impl Classifier for KnnClassifier {
    fn fit(&mut self, x: &Matrix, y: &[usize], n_classes: usize) {
        self.x = Some(x.clone());
        self.y = y.to_vec();
        self.n_classes = n_classes.max(1);
    }

    fn predict(&self, x: &Matrix) -> Vec<usize> {
        let Some(train) = &self.x else { return vec![0; x.rows()] };
        if train.rows() == 0 {
            return vec![0; x.rows()];
        }
        (0..x.rows())
            .map(|r| {
                let nn = k_nearest(train, x.row(r), self.k);
                let mut votes = vec![0usize; self.n_classes];
                for &i in &nn {
                    votes[self.y[i]] += 1;
                }
                // Break ties toward the class of the nearest neighbour.
                let max = votes.iter().copied().max().unwrap_or(0);
                nn.iter().map(|&i| self.y[i]).find(|&c| votes[c] == max).unwrap_or(0)
            })
            .collect()
    }

    fn predict_proba(&self, x: &Matrix, n_classes: usize) -> Matrix {
        let mut out = Matrix::zeros(x.rows(), n_classes);
        let Some(train) = &self.x else { return out };
        if train.rows() == 0 {
            return out;
        }
        for r in 0..x.rows() {
            let nn = k_nearest(train, x.row(r), self.k);
            let w = 1.0 / nn.len().max(1) as f64;
            for &i in &nn {
                if self.y[i] < n_classes {
                    out[(r, self.y[i])] += w;
                }
            }
        }
        out
    }
}

/// k-NN regressor (mean of neighbour targets).
#[derive(Debug, Clone)]
pub struct KnnRegressor {
    /// Neighbour count.
    pub k: usize,
    x: Option<Matrix>,
    y: Vec<f64>,
}

impl KnnRegressor {
    /// Builds a k-NN regressor.
    pub fn new(k: usize) -> Self {
        Self { k: k.max(1), x: None, y: Vec::new() }
    }
}

impl Regressor for KnnRegressor {
    fn fit(&mut self, x: &Matrix, y: &[f64]) {
        self.x = Some(x.clone());
        self.y = y.to_vec();
    }

    fn predict(&self, x: &Matrix) -> Vec<f64> {
        let Some(train) = &self.x else { return vec![0.0; x.rows()] };
        if train.rows() == 0 {
            return vec![0.0; x.rows()];
        }
        (0..x.rows())
            .map(|r| {
                let nn = k_nearest(train, x.row(r), self.k);
                nn.iter().map(|&i| self.y[i]).sum::<f64>() / nn.len().max(1) as f64
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{
        blob_classification, linear_regression_data, train_test_accuracy, train_test_rmse,
    };

    #[test]
    fn knn_classifier_learns_blobs() {
        let (x, y) = blob_classification(150, 3, 81);
        let mut m = KnnClassifier::new(5);
        let acc = train_test_accuracy(&mut m, &x, &y, 3);
        assert!(acc > 0.9, "accuracy {acc}");
    }

    #[test]
    fn k1_memorises_training_data() {
        let (x, y) = blob_classification(60, 3, 83);
        let mut m = KnnClassifier::new(1);
        m.fit(&x, &y, 3);
        assert_eq!(m.predict(&x), y);
    }

    #[test]
    fn knn_regressor_interpolates() {
        let (x, y) = linear_regression_data(300, 0.05, 87);
        let mut m = KnnRegressor::new(5);
        let err = train_test_rmse(&mut m, &x, &y);
        assert!(err < 1.2, "rmse {err}");
    }

    #[test]
    fn proba_counts_neighbours() {
        let x = Matrix::from_rows(&[vec![0.0], vec![0.1], vec![10.0]]);
        let mut m = KnnClassifier::new(3);
        m.fit(&x, &[0, 0, 1], 2);
        let p = m.predict_proba(&Matrix::from_rows(&[vec![0.05]]), 2);
        assert!((p[(0, 0)] - 2.0 / 3.0).abs() < 1e-12);
        assert!((p[(0, 1)] - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn k_larger_than_dataset_is_clamped() {
        let x = Matrix::from_rows(&[vec![0.0], vec![1.0]]);
        let mut m = KnnRegressor::new(10);
        m.fit(&x, &[2.0, 4.0]);
        let p = m.predict(&Matrix::from_rows(&[vec![0.5]]));
        assert!((p[0] - 3.0).abs() < 1e-12);
    }

    #[test]
    fn unfitted_predicts_default() {
        let m = KnnClassifier::new(3);
        assert_eq!(m.predict(&Matrix::zeros(2, 1)), vec![0, 0]);
    }
}
