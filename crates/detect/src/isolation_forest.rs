//! Isolation Forest (Liu & Zhou): outliers are rows with short average
//! isolation-path lengths. Row anomalies are attributed to the numeric
//! cells that deviate most within their column, giving the cell-level
//! verdicts REIN scores.

use rand::prelude::*;
use rand::rngs::StdRng;
use rein_data::rng::derive_seed;
use rein_data::{CellMask, Table};

use crate::context::{DetectContext, Detector};

/// One isolation tree node.
enum ITree {
    Leaf { size: usize },
    Split { feature: usize, threshold: f64, left: Box<ITree>, right: Box<ITree> },
}

/// Average unsuccessful-search path length of a BST with `n` nodes
/// (the `c(n)` normaliser from the paper).
fn c_factor(n: usize) -> f64 {
    if n <= 1 {
        return 0.0;
    }
    let n = n as f64;
    2.0 * ((n - 1.0).ln() + 0.577_215_664_9) - 2.0 * (n - 1.0) / n
}

fn build_itree(
    data: &[Vec<f64>],
    rows: &[usize],
    depth: usize,
    max_depth: usize,
    rng: &mut StdRng,
) -> ITree {
    if rows.len() <= 1 || depth >= max_depth {
        return ITree::Leaf { size: rows.len() };
    }
    let d = data.len();
    // Pick a feature with spread.
    for _ in 0..4 {
        let f = rng.random_range(0..d);
        let lo = rows.iter().map(|&r| data[f][r]).fold(f64::INFINITY, f64::min);
        let hi = rows.iter().map(|&r| data[f][r]).fold(f64::NEG_INFINITY, f64::max);
        if hi > lo {
            let threshold = rng.random_range(lo..hi);
            let (left, right): (Vec<usize>, Vec<usize>) =
                rows.iter().partition(|&&r| data[f][r] < threshold);
            if left.is_empty() || right.is_empty() {
                continue;
            }
            return ITree::Split {
                feature: f,
                threshold,
                left: Box::new(build_itree(data, &left, depth + 1, max_depth, rng)),
                right: Box::new(build_itree(data, &right, depth + 1, max_depth, rng)),
            };
        }
    }
    ITree::Leaf { size: rows.len() }
}

fn path_length(tree: &ITree, point: &[f64], depth: usize) -> f64 {
    match tree {
        ITree::Leaf { size } => depth as f64 + c_factor(*size),
        ITree::Split { feature, threshold, left, right } => {
            if point[*feature] < *threshold {
                path_length(left, point, depth + 1)
            } else {
                path_length(right, point, depth + 1)
            }
        }
    }
}

/// Isolation-forest detector.
#[derive(Debug, Clone)]
pub struct IsolationForest {
    /// Number of trees.
    pub n_trees: usize,
    /// Sub-sample size per tree.
    pub sample_size: usize,
    /// Anomaly-score threshold (paper default 0.5 = "average"; higher =
    /// stricter).
    pub score_threshold: f64,
}

impl Default for IsolationForest {
    fn default() -> Self {
        Self { n_trees: 50, sample_size: 256, score_threshold: 0.6 }
    }
}

impl IsolationForest {
    /// Row anomaly scores in `[0, 1]` over the numeric columns of `t`
    /// (mean-imputed where non-numeric).
    pub fn row_scores(&self, t: &Table, numeric_cols: &[usize], seed: u64) -> Vec<f64> {
        let n = t.n_rows();
        if n == 0 || numeric_cols.is_empty() {
            return vec![0.0; n];
        }
        // Column-major numeric view with mean imputation.
        let data: Vec<Vec<f64>> = numeric_cols
            .iter()
            .map(|&c| {
                let xs = t.numeric_values(c);
                let mean =
                    if xs.is_empty() { 0.0 } else { xs.iter().sum::<f64>() / xs.len() as f64 };
                (0..n).map(|r| t.cell(r, c).as_f64().unwrap_or(mean)).collect()
            })
            .collect();

        let sample = self.sample_size.min(n);
        let max_depth = (sample as f64).log2().ceil() as usize + 1;
        let mut total = vec![0.0f64; n];
        for ti in 0..self.n_trees {
            let mut rng = StdRng::seed_from_u64(derive_seed(seed, ti as u64));
            let mut rows: Vec<usize> = (0..n).collect();
            rows.shuffle(&mut rng);
            rows.truncate(sample);
            let tree = build_itree(&data, &rows, 0, max_depth, &mut rng);
            let point: &mut Vec<f64> = &mut vec![0.0; data.len()];
            for r in 0..n {
                rein_guard::checkpoint(1);
                for (f, col) in data.iter().enumerate() {
                    point[f] = col[r];
                }
                total[r] += path_length(&tree, point, 0);
            }
        }
        let c = c_factor(sample).max(1e-12);
        total
            .into_iter()
            .map(|sum| {
                let avg = sum / self.n_trees as f64;
                2f64.powf(-avg / c)
            })
            .collect()
    }
}

impl Detector for IsolationForest {
    fn name(&self) -> &'static str {
        "isolation_forest"
    }

    fn detect(&self, ctx: &DetectContext<'_>) -> CellMask {
        let _span = rein_telemetry::span("detect:isolation_forest");
        let t = ctx.dirty;
        let numeric = ctx.numeric_columns();
        let mut mask = CellMask::new(t.n_rows(), t.n_cols());
        if numeric.is_empty() {
            return mask;
        }
        let scores = self.row_scores(t, &numeric, ctx.seed);
        // Per-column stats for cell attribution.
        // Robust location/scale (median, IQR): contamination inflates the
        // plain standard deviation and would mask the very cells the rows
        // were flagged for.
        let stats: Vec<(f64, f64)> = numeric
            .iter()
            .map(|&c| {
                let xs = t.numeric_values(c);
                if xs.is_empty() {
                    return (0.0, 1.0);
                }
                let median = rein_stats::median(&xs);
                let scale = (rein_stats::descriptive::iqr(&xs) / 1.349).max(1e-12);
                (median, scale)
            })
            .collect();
        for (r, &score) in scores.iter().enumerate() {
            if score < self.score_threshold {
                continue;
            }
            // Attribute the anomaly to cells ≥ 2.5σ from their column mean.
            for (ci, &c) in numeric.iter().enumerate() {
                if let Some(x) = t.cell(r, c).as_f64() {
                    let (mean, std) = stats[ci];
                    if (x - mean).abs() > 2.5 * std {
                        mask.set(r, c, true);
                    }
                }
            }
        }
        mask
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rein_data::{ColumnMeta, ColumnType, Schema, Value};

    fn table() -> Table {
        let schema = Schema::new(vec![
            ColumnMeta::new("a", ColumnType::Float),
            ColumnMeta::new("b", ColumnType::Float),
        ]);
        let mut rows: Vec<Vec<Value>> = (0..200)
            .map(|i| {
                vec![
                    Value::Float(5.0 + (i % 7) as f64 * 0.1),
                    Value::Float(-3.0 + (i % 5) as f64 * 0.1),
                ]
            })
            .collect();
        rows[13][0] = Value::Float(500.0);
        rows[77][1] = Value::Float(-400.0);
        Table::from_rows(schema, rows)
    }

    #[test]
    fn outlier_rows_score_higher() {
        let t = table();
        let iforest = IsolationForest::default();
        let scores = iforest.row_scores(&t, &[0, 1], 1);
        let normal_max = scores
            .iter()
            .enumerate()
            .filter(|(i, _)| *i != 13 && *i != 77)
            .map(|(_, s)| *s)
            .fold(0.0, f64::max);
        assert!(scores[13] > normal_max, "{} vs {normal_max}", scores[13]);
        assert!(scores[77] > normal_max);
    }

    #[test]
    fn detection_attributes_to_the_right_cells() {
        let t = table();
        let m = IsolationForest::default().detect(&DetectContext::bare(&t));
        assert!(m.get(13, 0));
        assert!(m.get(77, 1));
        assert!(!m.get(13, 1), "unaffected cell of an outlier row stays clean");
        assert!(m.count() <= 4, "few false positives, got {}", m.count());
    }

    #[test]
    fn scores_are_probabilities() {
        let t = table();
        let scores = IsolationForest::default().row_scores(&t, &[0, 1], 3);
        assert!(scores.iter().all(|s| (0.0..=1.0).contains(s)));
    }

    #[test]
    fn c_factor_monotone() {
        assert_eq!(c_factor(1), 0.0);
        assert!(c_factor(10) < c_factor(100));
    }

    #[test]
    fn deterministic_per_seed() {
        let t = table();
        let ctx = DetectContext { seed: 9, ..DetectContext::bare(&t) };
        let a = IsolationForest::default().detect(&ctx);
        let b = IsolationForest::default().detect(&ctx);
        assert_eq!(a, b);
    }
}
