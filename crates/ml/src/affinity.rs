//! Affinity propagation (Frey & Dueck): message passing on similarities,
//! the cluster count emerging from the preference value.

use crate::linalg::{sq_dist, Matrix};
use crate::model::Clusterer;

/// Affinity propagation clusterer.
#[derive(Debug, Clone)]
pub struct AffinityPropagation {
    /// Damping factor in `[0.5, 1)`.
    pub damping: f64,
    /// Message-passing iterations.
    pub max_iter: usize,
    /// Preference (self-similarity); `None` = median of similarities.
    pub preference: Option<f64>,
}

impl Default for AffinityPropagation {
    fn default() -> Self {
        Self { damping: 0.7, max_iter: 200, preference: None }
    }
}

impl Clusterer for AffinityPropagation {
    fn fit_predict(&mut self, x: &Matrix) -> Vec<usize> {
        let n = x.rows();
        if n == 0 {
            return Vec::new();
        }
        if n == 1 {
            return vec![0];
        }

        // Similarity = negative squared distance.
        let mut s = vec![vec![0.0f64; n]; n];
        let mut off_diag = Vec::with_capacity(n * (n - 1));
        for i in 0..n {
            for j in 0..n {
                if i != j {
                    s[i][j] = -sq_dist(x.row(i), x.row(j));
                    off_diag.push(s[i][j]);
                }
            }
        }
        off_diag.sort_by(|a, b| a.total_cmp(b));
        let median = off_diag[off_diag.len() / 2];
        let pref = self.preference.unwrap_or(median);
        // Deterministic symmetry-breaking noise (as scikit-learn does with
        // random noise): exactly symmetric inputs otherwise make both points
        // of a tight pair exemplars, oscillating forever.
        let scale = off_diag.iter().map(|v| v.abs()).fold(1e-12, f64::max);
        for (i, row) in s.iter_mut().enumerate() {
            for (j, v) in row.iter_mut().enumerate() {
                let h = ((i * 31 + j * 17) % 101) as f64 / 101.0;
                *v += scale * 1e-9 * h;
            }
            row[i] = pref;
        }

        let mut r = vec![vec![0.0f64; n]; n]; // responsibilities
        let mut a = vec![vec![0.0f64; n]; n]; // availabilities
        let damp = self.damping.clamp(0.5, 0.99);

        for _ in 0..self.max_iter {
            // Update responsibilities.
            for i in 0..n {
                // Two largest of a[i][k] + s[i][k].
                let (mut max1, mut max2, mut arg1) = (f64::NEG_INFINITY, f64::NEG_INFINITY, 0usize);
                for k in 0..n {
                    let v = a[i][k] + s[i][k];
                    if v > max1 {
                        max2 = max1;
                        max1 = v;
                        arg1 = k;
                    } else if v > max2 {
                        max2 = v;
                    }
                }
                for k in 0..n {
                    let other = if k == arg1 { max2 } else { max1 };
                    r[i][k] = damp * r[i][k] + (1.0 - damp) * (s[i][k] - other);
                }
            }
            // Update availabilities.
            for k in 0..n {
                let col_pos_sum: f64 = (0..n).filter(|&i| i != k).map(|i| r[i][k].max(0.0)).sum();
                for i in 0..n {
                    if i == k {
                        a[k][k] = damp * a[k][k] + (1.0 - damp) * col_pos_sum;
                    } else {
                        let v = (r[k][k] + col_pos_sum - r[i][k].max(0.0)).min(0.0);
                        a[i][k] = damp * a[i][k] + (1.0 - damp) * v;
                    }
                }
            }
        }

        // Exemplars: points where r(k,k) + a(k,k) > 0.
        let mut exemplars: Vec<usize> = (0..n).filter(|&k| r[k][k] + a[k][k] > 0.0).collect();
        if exemplars.is_empty() {
            // Fall back to the best-scoring point as a single exemplar.
            let best = (0..n)
                .max_by(|&p, &q| (r[p][p] + a[p][p]).total_cmp(&(r[q][q] + a[q][q])))
                .unwrap_or(0);
            exemplars.push(best);
        }

        (0..n)
            .map(|i| {
                // Exemplars label themselves.
                if let Some(pos) = exemplars.iter().position(|&e| e == i) {
                    return pos;
                }
                exemplars
                    .iter()
                    .enumerate()
                    .max_by(|(_, &e1), (_, &e2)| s[i][e1].total_cmp(&s[i][e2]))
                    .map_or(0, |(pos, _)| pos)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::blob_classification;

    #[test]
    fn finds_blob_structure() {
        let (x, truth) = blob_classification(90, 3, 201);
        let labels = AffinityPropagation::default().fit_predict(&x);
        // AP chooses its own k; require the partition to be pure w.r.t.
        // the true blobs (each true class maps mostly to one AP cluster).
        let mut purity = 0usize;
        for class in 0..3 {
            let members: Vec<usize> = (0..truth.len()).filter(|&i| truth[i] == class).collect();
            let mut counts = std::collections::BTreeMap::new();
            for &m in &members {
                *counts.entry(labels[m]).or_insert(0usize) += 1;
            }
            purity += counts.values().copied().max().unwrap_or(0);
        }
        assert!(purity as f64 / truth.len() as f64 > 0.85, "purity too low");
    }

    #[test]
    fn exemplars_label_themselves_consistently() {
        let (x, _) = blob_classification(40, 2, 211);
        let labels = AffinityPropagation::default().fit_predict(&x);
        // Labels are contiguous cluster ids.
        let max = *labels.iter().max().unwrap();
        for l in 0..=max {
            assert!(labels.contains(&l), "label {l} unused");
        }
    }

    #[test]
    fn single_point() {
        let x = Matrix::from_rows(&[vec![1.0, 2.0]]);
        assert_eq!(AffinityPropagation::default().fit_predict(&x), vec![0]);
    }

    #[test]
    fn two_far_points_get_two_clusters() {
        let x = Matrix::from_rows(&[vec![0.0], vec![0.2], vec![100.0], vec![100.2]]);
        let labels = AffinityPropagation::default().fit_predict(&x);
        assert_eq!(labels[0], labels[1]);
        assert_eq!(labels[2], labels[3]);
        assert_ne!(labels[0], labels[2]);
    }
}
