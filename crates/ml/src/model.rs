//! Model traits and the model zoo enumeration (Table 2 of the paper).

use serde::{Deserialize, Serialize};

use crate::linalg::Matrix;

/// A trainable classifier over encoded feature matrices.
pub trait Classifier: Send + Sync {
    /// Fits on features `x` and class ids `y` (`0..n_classes`).
    fn fit(&mut self, x: &Matrix, y: &[usize], n_classes: usize);
    /// Predicts a class id per row of `x`.
    fn predict(&self, x: &Matrix) -> Vec<usize>;
    /// Class-probability estimates (rows × classes). The default lifts hard
    /// predictions to one-hot rows; probabilistic models override it.
    fn predict_proba(&self, x: &Matrix, n_classes: usize) -> Matrix {
        let preds = self.predict(x);
        let mut p = Matrix::zeros(x.rows(), n_classes);
        for (r, &c) in preds.iter().enumerate() {
            if c < n_classes {
                p[(r, c)] = 1.0;
            }
        }
        p
    }
}

/// A trainable regressor.
pub trait Regressor: Send + Sync {
    /// Fits on features `x` and targets `y`.
    fn fit(&mut self, x: &Matrix, y: &[f64]);
    /// Predicts a target per row of `x`.
    fn predict(&self, x: &Matrix) -> Vec<f64>;
}

/// A clustering algorithm.
pub trait Clusterer: Send + Sync {
    /// Clusters the rows of `x`; returns one label per row.
    /// [`NOISE_LABEL`] marks noise points (density-based methods).
    fn fit_predict(&mut self, x: &Matrix) -> Vec<usize>;
}

/// Cluster label reserved for noise points.
pub const NOISE_LABEL: usize = usize::MAX;

/// The classification models of Table 2.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ClassifierKind {
    /// Logistic regression ("Logit").
    Logit,
    /// CART decision tree.
    DecisionTree,
    /// Random forest.
    RandomForest,
    /// Linear SVM (hinge loss).
    LinearSvc,
    /// SGD classifier (log loss).
    SgdClassifier,
    /// k-nearest neighbours.
    Knn,
    /// AdaBoost (SAMME over stumps).
    AdaBoost,
    /// Gaussian naïve Bayes.
    GaussianNb,
    /// Multinomial naïve Bayes.
    MultinomialNb,
    /// Gradient-boosted trees (the XGBoost stand-in).
    XgBoost,
    /// Ridge classifier.
    Ridge,
    /// Multi-layer perceptron.
    Mlp,
}

impl ClassifierKind {
    /// All twelve classifiers, in Table 2 order.
    pub const ALL: [ClassifierKind; 12] = [
        ClassifierKind::Logit,
        ClassifierKind::DecisionTree,
        ClassifierKind::RandomForest,
        ClassifierKind::LinearSvc,
        ClassifierKind::SgdClassifier,
        ClassifierKind::Knn,
        ClassifierKind::AdaBoost,
        ClassifierKind::GaussianNb,
        ClassifierKind::MultinomialNb,
        ClassifierKind::XgBoost,
        ClassifierKind::Ridge,
        ClassifierKind::Mlp,
    ];

    /// Short display name as used in the paper's figures.
    pub fn name(self) -> &'static str {
        match self {
            ClassifierKind::Logit => "Logit",
            ClassifierKind::DecisionTree => "DT",
            ClassifierKind::RandomForest => "RF",
            ClassifierKind::LinearSvc => "SVC",
            ClassifierKind::SgdClassifier => "SGD",
            ClassifierKind::Knn => "KNN",
            ClassifierKind::AdaBoost => "AdaB",
            ClassifierKind::GaussianNb => "GNB",
            ClassifierKind::MultinomialNb => "MNB",
            ClassifierKind::XgBoost => "XGB",
            ClassifierKind::Ridge => "Ridge",
            ClassifierKind::Mlp => "MLP",
        }
    }

    /// Builds the model with its default hyperparameters. The returned
    /// model is wrapped so its fit/predict calls feed the telemetry
    /// metrics registry (`model_fits`, `model_fit`, `model_predict`).
    pub fn build(self, seed: u64) -> Box<dyn Classifier> {
        use crate::*;
        let inner: Box<dyn Classifier> = match self {
            ClassifierKind::Logit => Box::new(logistic::LogisticRegression::default()),
            ClassifierKind::DecisionTree => {
                Box::new(tree::DecisionTreeClassifier::new(tree::TreeParams::default()))
            }
            ClassifierKind::RandomForest => {
                Box::new(forest::RandomForestClassifier::new(forest::ForestParams::default(), seed))
            }
            ClassifierKind::LinearSvc => {
                Box::new(svc::LinearSvc::new(svc::SvcParams::default(), seed))
            }
            ClassifierKind::SgdClassifier => {
                Box::new(sgd::SgdClassifier::new(sgd::SgdParams::default(), seed))
            }
            ClassifierKind::Knn => Box::new(knn::KnnClassifier::new(5)),
            ClassifierKind::AdaBoost => Box::new(adaboost::AdaBoostClassifier::new(50, seed)),
            ClassifierKind::GaussianNb => Box::new(naive_bayes::GaussianNb::default()),
            ClassifierKind::MultinomialNb => Box::new(naive_bayes::MultinomialNb::default()),
            ClassifierKind::XgBoost => {
                Box::new(gbt::GradientBoostedClassifier::new(gbt::GbtParams::default()))
            }
            ClassifierKind::Ridge => Box::new(ridge::RidgeClassifier::new(1.0)),
            ClassifierKind::Mlp => {
                Box::new(mlp::MlpClassifier::new(mlp::MlpParams::default(), seed))
            }
        };
        Box::new(instrument::InstrumentedClassifier::new(self.name(), inner))
    }
}

/// The regression models of Table 2.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum RegressorKind {
    /// Ordinary least squares.
    LinearRegression,
    /// Bayesian ridge regression ("BRidge").
    BayesRidge,
    /// RANSAC robust regression.
    Ransac,
    /// CART regression tree.
    DecisionTree,
    /// Random forest regressor.
    RandomForest,
    /// Linear support-vector regression.
    LinearSvr,
    /// k-nearest neighbours regressor.
    Knn,
    /// AdaBoost.R2 regressor.
    AdaBoost,
    /// Gradient-boosted trees (XGBoost stand-in).
    XgBoost,
    /// Ridge regression.
    Ridge,
    /// Multi-layer perceptron regressor.
    Mlp,
}

impl RegressorKind {
    /// All eleven regressors, in Table 2 order.
    pub const ALL: [RegressorKind; 11] = [
        RegressorKind::LinearRegression,
        RegressorKind::BayesRidge,
        RegressorKind::Ransac,
        RegressorKind::DecisionTree,
        RegressorKind::RandomForest,
        RegressorKind::LinearSvr,
        RegressorKind::Knn,
        RegressorKind::AdaBoost,
        RegressorKind::XgBoost,
        RegressorKind::Ridge,
        RegressorKind::Mlp,
    ];

    /// Short display name as used in the paper's figures.
    pub fn name(self) -> &'static str {
        match self {
            RegressorKind::LinearRegression => "LinReg",
            RegressorKind::BayesRidge => "BRidge",
            RegressorKind::Ransac => "RANSAC",
            RegressorKind::DecisionTree => "DT",
            RegressorKind::RandomForest => "RF",
            RegressorKind::LinearSvr => "SVR",
            RegressorKind::Knn => "KNN",
            RegressorKind::AdaBoost => "AdaB",
            RegressorKind::XgBoost => "XGB",
            RegressorKind::Ridge => "Ridge",
            RegressorKind::Mlp => "MLP",
        }
    }

    /// Builds the model with its default hyperparameters. Wrapped for
    /// telemetry like [`ClassifierKind::build`].
    pub fn build(self, seed: u64) -> Box<dyn Regressor> {
        use crate::*;
        let inner: Box<dyn Regressor> = match self {
            RegressorKind::LinearRegression => Box::new(linreg::LinearRegression::default()),
            RegressorKind::BayesRidge => Box::new(linreg::BayesianRidge::default()),
            RegressorKind::Ransac => {
                Box::new(linreg::Ransac::new(linreg::RansacParams::default(), seed))
            }
            RegressorKind::DecisionTree => {
                Box::new(tree::DecisionTreeRegressor::new(tree::TreeParams::default()))
            }
            RegressorKind::RandomForest => {
                Box::new(forest::RandomForestRegressor::new(forest::ForestParams::default(), seed))
            }
            RegressorKind::LinearSvr => {
                Box::new(svc::LinearSvr::new(svc::SvcParams::default(), seed))
            }
            RegressorKind::Knn => Box::new(knn::KnnRegressor::new(5)),
            RegressorKind::AdaBoost => Box::new(adaboost::AdaBoostRegressor::new(50, seed)),
            RegressorKind::XgBoost => {
                Box::new(gbt::GradientBoostedRegressor::new(gbt::GbtParams::default()))
            }
            RegressorKind::Ridge => Box::new(ridge::RidgeRegressor::new(1.0)),
            RegressorKind::Mlp => Box::new(mlp::MlpRegressor::new(mlp::MlpParams::default(), seed)),
        };
        Box::new(instrument::InstrumentedRegressor::new(self.name(), inner))
    }
}

/// The clustering methods of Table 2.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ClustererKind {
    /// Gaussian mixture (EM).
    Gmm,
    /// Lloyd's k-means.
    KMeans,
    /// Affinity propagation.
    AffinityPropagation,
    /// Agglomerative (average-linkage) clustering.
    Hierarchical,
    /// OPTICS density ordering.
    Optics,
    /// BIRCH CF-tree clustering.
    Birch,
}

impl ClustererKind {
    /// All six clusterers, in Table 2 order.
    pub const ALL: [ClustererKind; 6] = [
        ClustererKind::Gmm,
        ClustererKind::KMeans,
        ClustererKind::AffinityPropagation,
        ClustererKind::Hierarchical,
        ClustererKind::Optics,
        ClustererKind::Birch,
    ];

    /// Short display name.
    pub fn name(self) -> &'static str {
        match self {
            ClustererKind::Gmm => "GMM",
            ClustererKind::KMeans => "KMeans",
            ClustererKind::AffinityPropagation => "AP",
            ClustererKind::Hierarchical => "HC",
            ClustererKind::Optics => "OPTICS",
            ClustererKind::Birch => "BIRCH",
        }
    }

    /// Builds the clusterer; `k` is the cluster count for methods that need
    /// it (ignored by AP and OPTICS which infer it). Wrapped for
    /// telemetry like [`ClassifierKind::build`].
    pub fn build(self, k: usize, seed: u64) -> Box<dyn Clusterer> {
        use crate::*;
        let inner: Box<dyn Clusterer> = match self {
            ClustererKind::Gmm => Box::new(gmm::GaussianMixture::new(k, seed)),
            ClustererKind::KMeans => Box::new(kmeans::KMeans::new(k, seed)),
            ClustererKind::AffinityPropagation => {
                Box::new(affinity::AffinityPropagation::default())
            }
            ClustererKind::Hierarchical => Box::new(hierarchical::Agglomerative::new(k)),
            ClustererKind::Optics => Box::new(optics::Optics::default()),
            ClustererKind::Birch => Box::new(birch::Birch::new(k)),
        };
        Box::new(instrument::InstrumentedClusterer::new(self.name(), inner))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zoo_sizes_match_table_2() {
        assert_eq!(ClassifierKind::ALL.len(), 12);
        assert_eq!(RegressorKind::ALL.len(), 11);
        assert_eq!(ClustererKind::ALL.len(), 6);
    }

    #[test]
    fn names_are_unique() {
        let mut names: Vec<&str> = ClassifierKind::ALL.iter().map(|k| k.name()).collect();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), 12);
    }

    #[test]
    fn default_proba_is_one_hot() {
        struct Constant;
        impl Classifier for Constant {
            fn fit(&mut self, _: &Matrix, _: &[usize], _: usize) {}
            fn predict(&self, x: &Matrix) -> Vec<usize> {
                vec![1; x.rows()]
            }
        }
        let p = Constant.predict_proba(&Matrix::zeros(3, 2), 3);
        for r in 0..3 {
            assert_eq!(p.row(r), &[0.0, 1.0, 0.0]);
        }
    }
}
