//! `rein_report`: ingest every observability artifact into the ledger
//! and render the static report.
//!
//! ```text
//! rein_report [--root DIR] [--out DIR] [--diff MANIFEST_A MANIFEST_B]
//! ```
//!
//! * `--root` — repository root to scan (default `.`).
//! * `--out`  — output directory (default `<root>/artifacts/ledger`);
//!   receives `index.json`, `report.md` and `report.html`.
//! * `--diff` — include a span-profile diff between two run manifests,
//!   given as repo-relative paths.
//!
//! The whole pipeline is deterministic: running it twice over the same
//! artifacts leaves `index.json` and both reports byte-identical (CI
//! asserts exactly that). Exit codes: 0 on success, 1 on ingest or IO
//! failure, 2 on usage errors.

// Binaries are the report surface.
#![allow(clippy::print_stdout)]

use std::path::PathBuf;
use std::process::ExitCode;

use rein_ledger::{build_report, index_path, ingest_repo, LedgerIndex};

struct Args {
    root: PathBuf,
    out: Option<PathBuf>,
    diff: Option<(String, String)>,
}

fn usage() -> ExitCode {
    eprintln!("usage: rein_report [--root DIR] [--out DIR] [--diff MANIFEST_A MANIFEST_B]");
    ExitCode::from(2)
}

fn parse_args() -> Result<Args, ExitCode> {
    let mut args = Args { root: PathBuf::from("."), out: None, diff: None };
    let mut raw = std::env::args().skip(1);
    while let Some(flag) = raw.next() {
        match flag.as_str() {
            "--root" => match raw.next() {
                Some(dir) => args.root = PathBuf::from(dir),
                None => return Err(usage()),
            },
            "--out" => match raw.next() {
                Some(dir) => args.out = Some(PathBuf::from(dir)),
                None => return Err(usage()),
            },
            "--diff" => match (raw.next(), raw.next()) {
                (Some(a), Some(b)) => args.diff = Some((a, b)),
                _ => return Err(usage()),
            },
            _ => {
                eprintln!("error: unknown argument {flag:?}");
                return Err(usage());
            }
        }
    }
    Ok(args)
}

fn run(args: &Args) -> Result<(), String> {
    let index_file = match &args.out {
        Some(out) => out.join("index.json"),
        None => index_path(&args.root),
    };
    let out_dir = index_file
        .parent()
        .map(PathBuf::from)
        .ok_or_else(|| "output path has no parent directory".to_string())?;

    let candidates = ingest_repo(&args.root)?;
    let scanned = candidates.len();
    let mut index = LedgerIndex::load(&index_file)?;
    let changed = index.apply(candidates);
    if changed {
        index.save(&index_file).map_err(|e| format!("write {}: {e}", index_file.display()))?;
    }
    println!(
        "ledger: {} artifacts scanned, {} entries, generation {}{}",
        scanned,
        index.entries.len(),
        index.generation,
        if changed { " (updated)" } else { " (unchanged)" }
    );

    let diff = args.diff.as_ref().map(|(a, b)| (a.as_str(), b.as_str()));
    let report = build_report(&args.root, &index, diff)?;
    std::fs::create_dir_all(&out_dir).map_err(|e| format!("mkdir {}: {e}", out_dir.display()))?;
    let md_path = out_dir.join("report.md");
    let html_path = out_dir.join("report.html");
    std::fs::write(&md_path, report.to_markdown())
        .map_err(|e| format!("write {}: {e}", md_path.display()))?;
    std::fs::write(&html_path, report.to_html())
        .map_err(|e| format!("write {}: {e}", html_path.display()))?;
    println!(
        "report: {} strategies, {} failing cells -> {} + {}",
        report.strategies.len(),
        report.taxonomy.len(),
        md_path.display(),
        html_path.display()
    );
    Ok(())
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(args) => args,
        Err(code) => return code,
    };
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
