//! Concurrency fixture (negative): a span opened directly inside a
//! parallel closure with the ambient constructor — on a worker thread
//! the thread-local parent stack is empty, so the span (and everything
//! under it) is an unattributable ambient root outside every causal
//! cell trace. `trace-context` must fire.

pub fn shard_cells(xs: &[u64]) -> Vec<u64> {
    xs.par_iter()
        .enumerate()
        .map(|(i, x)| {
            let _cell = span("cell");
            step(i as u64, *x)
        })
        .collect()
}

fn step(i: u64, x: u64) -> u64 {
    i + x
}
