//! Semantic rules over the parsed workspace: seed provenance, split
//! leakage, toolbox parity, panic reachability and Result discards.
//!
//! Each rule works on the [`CallGraph`] built from every first-party
//! file, and reuses the `audit:allow(rule, reason)` suppression
//! convention via [`AllowTable`] — a semantic finding is suppressed
//! exactly like a token finding: an annotation on (or directly above)
//! the reported line, with a mandatory reason.

use std::collections::{BTreeMap, BTreeSet};

use crate::callgraph::{CallGraph, FnNode};
use crate::parser::{parse_file, Call, Callee, Function, ParsedFile};
use crate::rules::{classify, AllowTable, FileClass, Violation};

/// One file prepared for semantic analysis.
#[derive(Debug)]
pub struct FileModel {
    /// Workspace-relative path (forward slashes).
    pub path: String,
    pub class: FileClass,
    pub parsed: ParsedFile,
    pub allows: AllowTable,
    /// Raw source, kept for token-level passes (concurrency rules).
    pub source: String,
}

/// Every first-party file, parsed.
#[derive(Debug, Default)]
pub struct WorkspaceModel {
    pub files: Vec<FileModel>,
}

impl WorkspaceModel {
    /// Builds the model from `(workspace-relative path, source)` pairs.
    pub fn build(files: &[(String, String)]) -> WorkspaceModel {
        let mut model = WorkspaceModel::default();
        for (path, source) in files {
            model.files.push(FileModel {
                path: path.clone(),
                class: classify(path),
                parsed: parse_file(source),
                allows: AllowTable::build(source),
                source: source.clone(),
            });
        }
        model
    }

    /// Total parse errors across the workspace (the smoke test wants 0).
    pub fn parse_errors(&self) -> Vec<(String, String)> {
        let mut out = Vec::new();
        for f in &self.files {
            for e in &f.parsed.errors {
                out.push((f.path.clone(), e.clone()));
            }
        }
        out
    }
}

/// Result of the semantic pass.
#[derive(Debug, Default)]
pub struct SemanticOutcome {
    pub violations: Vec<Violation>,
    /// Non-blocking findings (ranked reports like `hot-loop-alloc`).
    pub advisories: Vec<Violation>,
    pub suppressed: usize,
    /// Per file: `audit:allow` entries that suppressed at least one
    /// finding, keyed as [`AllowTable::match_keys`] keys. The report
    /// layer diffs this against every annotation to find stale allows.
    pub consumed: BTreeMap<String, BTreeSet<(usize, String, bool)>>,
}

/// Collects findings, applying suppressions per file/line.
pub(crate) struct Sink<'a> {
    allows: BTreeMap<&'a str, &'a AllowTable>,
    seen: BTreeSet<(String, usize, String, String)>,
    out: SemanticOutcome,
}

impl<'a> Sink<'a> {
    fn new(model: &'a WorkspaceModel) -> Sink<'a> {
        Sink {
            allows: model.files.iter().map(|f| (f.path.as_str(), &f.allows)).collect(),
            seen: BTreeSet::new(),
            out: SemanticOutcome::default(),
        }
    }

    /// Suppression check shared by blocking and advisory findings:
    /// `true` when the finding was silenced (and its annotation marked
    /// consumed).
    fn suppress(&mut self, path: &str, line: usize, rule: &str) -> bool {
        let Some(t) = self.allows.get(path) else { return false };
        if !t.allows(line, rule) {
            return false;
        }
        self.out.suppressed += 1;
        self.out.consumed.entry(path.to_string()).or_default().extend(t.match_keys(line, rule));
        true
    }

    pub(crate) fn emit(&mut self, path: &str, line: usize, rule: &str, message: String) {
        if !self.seen.insert((path.to_string(), line, rule.to_string(), message.clone())) {
            return;
        }
        if self.suppress(path, line, rule) {
            return;
        }
        self.out.violations.push(Violation {
            path: path.to_string(),
            line,
            rule: rule.to_string(),
            message,
        });
    }

    /// Like [`Sink::emit`] but lands in the non-blocking advisory list.
    pub(crate) fn emit_advisory(&mut self, path: &str, line: usize, rule: &str, message: String) {
        if !self.seen.insert((path.to_string(), line, rule.to_string(), message.clone())) {
            return;
        }
        if self.suppress(path, line, rule) {
            return;
        }
        self.out.advisories.push(Violation {
            path: path.to_string(),
            line,
            rule: rule.to_string(),
            message,
        });
    }
}

/// Runs every semantic rule over the workspace model.
pub fn analyze(model: &WorkspaceModel) -> SemanticOutcome {
    let parsed: Vec<(String, &ParsedFile)> =
        model.files.iter().map(|f| (f.path.clone(), &f.parsed)).collect();
    let graph = CallGraph::build(&parsed);
    let mut sink = Sink::new(model);
    seed_provenance(model, &graph, &mut sink);
    split_leakage(&graph, &mut sink);
    toolbox_parity(model, &graph, &mut sink);
    panic_reachability(model, &graph, &mut sink);
    result_discard(&graph, &mut sink);
    crate::concurrency::analyze_concurrency(model, &graph, &mut sink);
    crate::purity::analyze_purity(model, &graph, &mut sink);
    let mut out = sink.out;
    out.violations.sort();
    out.advisories.sort();
    out
}

// ---------------------------------------------------------------- taint

/// Forward taint: idents derived from the function's parameters (and
/// `self`), propagated through `let` bindings.
pub(crate) fn param_taint(f: &Function) -> BTreeSet<String> {
    let mut t: BTreeSet<String> = f.params.iter().flat_map(|p| p.names.iter().cloned()).collect();
    if f.has_self {
        t.insert("self".to_string());
    }
    for _ in 0..2 {
        for l in &f.lets {
            if l.init_idents.iter().any(|i| t.contains(i)) {
                t.extend(l.names.iter().cloned());
            }
        }
    }
    t
}

/// Backward slice: starting from `seeds`, adds every ident whose `let`
/// binding flows into the set.
pub(crate) fn backward_slice(f: &Function, seeds: BTreeSet<String>) -> BTreeSet<String> {
    let mut s = seeds;
    for _ in 0..2 {
        for l in f.lets.iter().rev() {
            if l.names.iter().any(|n| s.contains(n)) {
                s.extend(l.init_idents.iter().cloned());
            }
        }
    }
    s
}

// ------------------------------------------------------ seed-provenance

/// An RNG construction whose first argument is the seed material.
pub(crate) fn is_rng_construction(call: &Call) -> bool {
    match call.callee.name() {
        "seed_from_u64" | "from_seed" => true,
        "new" => {
            call.callee.qualifier().is_some_and(|q| q.ends_with("Rng") || q.ends_with("Rng64"))
        }
        _ => false,
    }
}

/// Scope where concrete seeds are forbidden: library code outside the
/// bench crate (tests, benches and binaries legitimately pin seeds).
fn seed_scope(n: &FnNode) -> bool {
    n.lib_scope() && n.crate_name != "bench"
}

fn seed_provenance(model: &WorkspaceModel, g: &CallGraph, sink: &mut Sink) {
    let _ = model;
    // 1. Direct rule: every RNG construction in scope must consume a
    //    param-derived ident, and those params become seed sinks.
    let mut sinks: BTreeSet<(usize, usize)> = BTreeSet::new();
    for (ix, n) in g.nodes.iter().enumerate() {
        let taint = param_taint(&n.func);
        for call in &n.func.calls {
            if !is_rng_construction(call) {
                continue;
            }
            let arg_idents: BTreeSet<String> =
                call.args.iter().flat_map(|a| a.idents.iter().cloned()).collect();
            let slice = backward_slice(&n.func, arg_idents.clone());
            for (pi, p) in n.func.params.iter().enumerate() {
                if p.names.iter().any(|nm| slice.contains(nm)) {
                    sinks.insert((ix, pi));
                }
            }
            if seed_scope(n) && !arg_idents.iter().any(|i| taint.contains(i)) {
                sink.emit(
                    &n.file,
                    call.line,
                    "seed-provenance",
                    format!(
                        "RNG construction `{}` does not trace its seed to a \
                         function parameter — derive it from a seed argument \
                         instead of a literal or local constant",
                        call.callee.name()
                    ),
                );
            }
        }
    }
    // 2. Interprocedural fixpoint: a param feeding a seed-sink position
    //    of a callee is itself a seed sink.
    for _ in 0..10 {
        let before = sinks.len();
        for caller in 0..g.nodes.len() {
            let n = &g.nodes[caller];
            for call in &n.func.calls {
                for target in g.resolve(caller, call) {
                    let target_sinks: Vec<usize> =
                        sinks.iter().filter(|(t, _)| *t == target).map(|(_, pi)| *pi).collect();
                    for pi in target_sinks {
                        // UFCS path calls to methods shift args by the
                        // explicit receiver.
                        let shift = usize::from(
                            matches!(call.callee, Callee::Path(_)) && g.nodes[target].func.has_self,
                        );
                        let Some(arg) = call.args.get(pi + shift) else { continue };
                        let idents: BTreeSet<String> = arg.idents.iter().cloned().collect();
                        let slice = backward_slice(&n.func, idents);
                        for (qi, p) in n.func.params.iter().enumerate() {
                            if p.names.iter().any(|nm| slice.contains(nm)) {
                                sinks.insert((caller, qi));
                            }
                        }
                    }
                }
            }
        }
        if sinks.len() == before {
            break;
        }
    }
    // 3. Literal-into-sink: in-scope callers must not pass a constant
    //    into a seed-sink position.
    for caller in 0..g.nodes.len() {
        let n = &g.nodes[caller];
        if !seed_scope(n) {
            continue;
        }
        let taint = param_taint(&n.func);
        for call in &n.func.calls {
            for target in g.resolve(caller, call) {
                let target_sinks: Vec<usize> =
                    sinks.iter().filter(|(t, _)| *t == target).map(|(_, pi)| *pi).collect();
                for pi in target_sinks {
                    let shift = usize::from(
                        matches!(call.callee, Callee::Path(_)) && g.nodes[target].func.has_self,
                    );
                    let Some(arg) = call.args.get(pi + shift) else { continue };
                    if !arg.idents.iter().any(|i| taint.contains(i)) {
                        sink.emit(
                            &n.file,
                            call.line,
                            "seed-provenance",
                            format!(
                                "seed parameter of `{}` receives a \
                                 literal/constant here — thread a seed \
                                 argument through instead",
                                call.callee.name()
                            ),
                        );
                    }
                }
            }
        }
    }
}

// -------------------------------------------------------- split-leakage

const TEST_COMPONENTS: [&str; 5] = ["test", "te", "xte", "yte", "tst"];

/// `x_test`, `xte`, `te_idx`… — idents naming the test partition.
fn is_test_tagged(name: &str) -> bool {
    name.split('_').any(|c| TEST_COMPONENTS.contains(&c))
}

/// `fit`, `fit_*`, `train`, `train_*` — callees that learn parameters
/// (excluding names that legitimately mention the test split, like
/// `train_test_split`).
fn is_fit_like(name: &str) -> bool {
    (name == "fit" || name.starts_with("fit_") || name == "train" || name.starts_with("train_"))
        && !name.contains("test")
}

fn split_leakage(g: &CallGraph, sink: &mut Sink) {
    for n in &g.nodes {
        if !n.lib_scope() || !matches!(n.crate_name.as_str(), "detect" | "repair" | "ml") {
            continue;
        }
        // Test-partition idents: tagged params, plus bindings derived
        // from tagged idents (covers `split.test` field access, whose
        // `test` component surfaces as an ident occurrence).
        let mut tagged: BTreeSet<String> = n
            .func
            .params
            .iter()
            .flat_map(|p| p.names.iter())
            .filter(|nm| is_test_tagged(nm))
            .cloned()
            .collect();
        for _ in 0..2 {
            for l in &n.func.lets {
                if l.init_idents.iter().any(|i| tagged.contains(i) || is_test_tagged(i)) {
                    tagged.extend(l.names.iter().cloned());
                }
            }
        }
        for call in &n.func.calls {
            if !is_fit_like(call.callee.name()) {
                continue;
            }
            let leak = call
                .args
                .iter()
                .flat_map(|a| a.idents.iter())
                .find(|i| tagged.contains(*i) || is_test_tagged(i));
            if let Some(ident) = leak {
                sink.emit(
                    &n.file,
                    call.line,
                    "split-leakage",
                    format!(
                        "test partition `{ident}` flows into fit-like callee \
                         `{}` — models must never learn from the held-out \
                         split",
                        call.callee.name()
                    ),
                );
            }
        }
    }
}

// ------------------------------------------------------- toolbox-parity

/// Module names referenced by a file: `use` idents plus first segments
/// of every path (calls and plain paths) in its functions.
fn file_refs(f: &FileModel) -> BTreeSet<String> {
    let mut refs: BTreeSet<String> = f.parsed.use_idents.iter().cloned().collect();
    for func in &f.parsed.functions {
        refs.extend(func.path_refs.iter().cloned());
    }
    refs
}

fn toolbox_parity(model: &WorkspaceModel, g: &CallGraph, sink: &mut Sink) {
    let toolbox = model.files.iter().find(|f| f.path == "crates/core/src/toolbox.rs");
    let has_grid_crates = model
        .files
        .iter()
        .any(|f| f.path.starts_with("crates/detect/") || f.path.starts_with("crates/repair/"));
    if has_grid_crates {
        match toolbox {
            None => {
                // Anchor the finding on a grid crate's lib.rs so the
                // path exists in the workspace being analyzed.
                if let Some(lib) = model
                    .files
                    .iter()
                    .find(|f| f.path.ends_with("/src/lib.rs") && f.path.starts_with("crates/"))
                {
                    sink.emit(
                        &lib.path,
                        1,
                        "toolbox-parity",
                        "crates/core/src/toolbox.rs is missing — the \
                         detector/repair registries are not wired into the \
                         toolbox"
                            .to_string(),
                    );
                }
            }
            Some(t) => {
                for kind in ["DetectorKind", "RepairKind"] {
                    if !t.parsed.use_idents.contains(kind) {
                        sink.emit(
                            &t.path,
                            1,
                            "toolbox-parity",
                            format!(
                                "rein-core::toolbox does not import `{kind}` — \
                                 the toolbox cannot enumerate that registry"
                            ),
                        );
                    }
                }
            }
        }
    }

    // Reachability roots.
    let bench_roots: Vec<usize> = (0..g.nodes.len())
        .filter(|&i| g.nodes[i].file.starts_with("crates/bench/src/bin/"))
        .collect();
    let test_roots: Vec<usize> = (0..g.nodes.len())
        .filter(|&i| g.nodes[i].func.in_test || g.nodes[i].class.is_test_support)
        .collect();
    let from_bench = g.reachable_from(&bench_roots);
    let from_test = g.reachable_from(&test_roots);

    for krate in ["detect", "repair"] {
        let lib_path = format!("crates/{krate}/src/lib.rs");
        let Some(lib) = model.files.iter().find(|f| f.path == lib_path) else {
            continue;
        };
        let declared: BTreeMap<String, usize> =
            lib.parsed.mod_decls.iter().map(|m| (m.name.clone(), m.line)).collect();
        if declared.is_empty() {
            continue;
        }
        // Registration closure: referenced from lib.rs, or from the
        // file of an already-registered module.
        let module_file = |m: &str| {
            model.files.iter().find(|f| {
                f.path == format!("crates/{krate}/src/{m}.rs")
                    || f.path.starts_with(&format!("crates/{krate}/src/{m}/"))
            })
        };
        let mut registered: BTreeSet<String> = BTreeSet::new();
        let mut frontier: Vec<BTreeSet<String>> = vec![file_refs(lib)];
        while let Some(refs) = frontier.pop() {
            for m in declared.keys() {
                if refs.contains(m) && registered.insert(m.clone()) {
                    if let Some(f) = module_file(m) {
                        frontier.push(file_refs(f));
                    }
                }
            }
        }
        // Module reachability: a module counts as exercised when a
        // reachable node lives in it, or a reachable node references it
        // by path (covers `katara::Katara::default()`, which resolves
        // to no parsed fn because the impl is derived).
        let reached = |reach: &[bool]| -> BTreeSet<String> {
            let mut out = BTreeSet::new();
            for (i, n) in g.nodes.iter().enumerate() {
                if !reach[i] {
                    continue;
                }
                if n.crate_name == krate && declared.contains_key(&n.module) {
                    out.insert(n.module.clone());
                }
                // Attribute path references to this crate only when the
                // caller is in it, or outside both grid crates (the
                // same module name can exist in detect *and* repair).
                let attributable =
                    n.crate_name == krate || !matches!(n.crate_name.as_str(), "detect" | "repair");
                if attributable {
                    for seg in &n.func.path_refs {
                        if declared.contains_key(seg) {
                            out.insert(seg.clone());
                        }
                    }
                }
            }
            out
        };
        let bench_reached = reached(&from_bench);
        let test_reached = reached(&from_test);
        for (m, line) in &declared {
            if !registered.contains(m) {
                sink.emit(
                    &lib.path,
                    *line,
                    "toolbox-parity",
                    format!(
                        "module `{m}` is declared but never referenced from \
                         {krate}'s registry (lib.rs) or another registered \
                         module"
                    ),
                );
            }
            if !bench_reached.contains(m) {
                sink.emit(
                    &lib.path,
                    *line,
                    "toolbox-parity",
                    format!("module `{m}` is not reachable from any bench binary"),
                );
            }
            if !test_reached.contains(m) {
                sink.emit(
                    &lib.path,
                    *line,
                    "toolbox-parity",
                    format!("module `{m}` is not reachable from any test"),
                );
            }
        }
    }
}

// --------------------------------------------------- panic-reachability

fn panic_reachability(model: &WorkspaceModel, g: &CallGraph, sink: &mut Sink) {
    let allows: BTreeMap<&str, &AllowTable> =
        model.files.iter().map(|f| (f.path.as_str(), &f.allows)).collect();
    // Sources: unannotated panic sites in library code.
    let sources: Vec<usize> = (0..g.nodes.len())
        .filter(|&i| {
            let n = &g.nodes[i];
            n.lib_scope()
                && n.func.panics.iter().any(|p| {
                    !allows.get(n.file.as_str()).is_some_and(|t| t.allows(p.line, "panic"))
                })
        })
        .collect();
    if sources.is_empty() {
        return;
    }
    let source_set: BTreeSet<usize> = sources.iter().copied().collect();
    let reaching = g.reaching(&sources);
    for (i, n) in g.nodes.iter().enumerate() {
        if !reaching[i] || !n.lib_scope() || !n.func.is_pub {
            continue;
        }
        // Deterministic representative: the least (file, line) panic
        // source this API can reach.
        let fwd = g.reachable_from(&[i]);
        let rep = source_set
            .iter()
            .filter(|&&s| fwd[s])
            .map(|&s| {
                let sn = &g.nodes[s];
                let line = sn.func.panics.iter().map(|p| p.line).min().unwrap_or(sn.func.line);
                (sn.file.clone(), line)
            })
            .min();
        let Some((sfile, sline)) = rep else { continue };
        sink.emit(
            &n.file,
            n.func.line,
            "panic-reachability",
            format!(
                "public API `{}` can reach an unannotated panic \
                 ({sfile}:{sline}) through the call graph",
                n.func.name
            ),
        );
    }
}

// ------------------------------------------------------- result-discard

fn result_discard(g: &CallGraph, sink: &mut Sink) {
    for (i, n) in g.nodes.iter().enumerate() {
        if n.class.is_test_support || n.func.in_test {
            continue;
        }
        for l in &n.func.lets {
            if !l.underscore {
                continue;
            }
            let Some(&last) = l.init_top_calls.last() else { continue };
            let Some(call) = n.func.calls.get(last) else { continue };
            let discards_result =
                g.resolve(i, call).into_iter().any(|t| g.nodes[t].func.returns_result);
            if discards_result {
                sink.emit(
                    &n.file,
                    l.line,
                    "result-discard",
                    format!(
                        "`let _ =` discards the Result returned by \
                         first-party `{}` — handle the error or match \
                         explicitly",
                        call.callee.name()
                    ),
                );
            }
        }
    }
}
