//! Fixture-based rule tests: every rule has a negative fixture it must
//! flag and a positive fixture it must pass.
//!
//! Each fixture under `tests/fixtures/` is a real `.rs` file (excluded
//! from workspace scans by the source walker) audited under a *declared*
//! virtual path, since rule scoping is path-driven — the same wall-clock
//! read is a violation in `crates/core/` and legitimate in
//! `crates/telemetry/`.

use std::path::Path;

use rein_audit::{audit_source, FileAudit};

fn audit_fixture(fixture: &str, virtual_path: &str) -> FileAudit {
    let path = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures").join(fixture);
    let source =
        std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {}: {e}", path.display()));
    audit_source(virtual_path, &source)
}

fn rules_of(audit: &FileAudit) -> Vec<&str> {
    audit.violations.iter().map(|v| v.rule.as_str()).collect()
}

#[track_caller]
fn assert_fires(fixture: &str, virtual_path: &str, rule: &str) {
    let audit = audit_fixture(fixture, virtual_path);
    assert!(
        rules_of(&audit).contains(&rule),
        "{fixture} @ {virtual_path}: expected `{rule}` to fire, got {:?}",
        audit.violations
    );
}

#[track_caller]
fn assert_clean(fixture: &str, virtual_path: &str) {
    let audit = audit_fixture(fixture, virtual_path);
    assert!(
        audit.violations.is_empty(),
        "{fixture} @ {virtual_path}: expected no violations, got {:?}",
        audit.violations
    );
}

#[test]
fn wallclock_rule() {
    assert_fires("wallclock_bad.rs", "crates/core/src/fixture.rs", "wallclock");
    // The carve-out is exactly rein-telemetry::perf: the same read is
    // legal there and a violation anywhere else in the telemetry crate
    // or the ml instrumentation shim.
    assert_clean("wallclock_ok.rs", "crates/telemetry/src/perf.rs");
    assert_fires("wallclock_ok.rs", "crates/telemetry/src/fixture.rs", "wallclock");
    assert_fires("wallclock_bad.rs", "crates/telemetry/src/span.rs", "wallclock");
    assert_fires("wallclock_bad.rs", "crates/ml/src/instrument.rs", "wallclock");
    // Timing through perf::Stopwatch carries no raw wall-clock token.
    assert_clean("wallclock_stopwatch_ok.rs", "crates/core/src/fixture.rs");
}

#[test]
fn hash_iter_rule() {
    assert_fires("hash_iter_bad.rs", "crates/core/src/fixture.rs", "hash-iter");
    assert_clean("hash_iter_ok.rs", "crates/core/src/fixture.rs");
}

#[test]
fn unseeded_rng_rule() {
    assert_fires("unseeded_rng_bad.rs", "crates/ml/src/fixture.rs", "unseeded-rng");
    assert_clean("unseeded_rng_ok.rs", "crates/ml/src/fixture.rs");
}

#[test]
fn panic_rule() {
    assert_fires("panic_bad.rs", "crates/data/src/fixture.rs", "panic");
    let ok = audit_fixture("panic_ok.rs", "crates/data/src/fixture.rs");
    assert!(ok.violations.is_empty(), "annotated panic must pass: {:?}", ok.violations);
    assert_eq!(ok.suppressed, 1, "the annotation must be counted as a suppression");
}

#[test]
fn annotation_rule() {
    // A reason-less allow is itself a violation *and* fails to suppress,
    // so the underlying panic fires too.
    let audit = audit_fixture("annotation_bad.rs", "crates/data/src/fixture.rs");
    let rules = rules_of(&audit);
    assert!(rules.contains(&"annotation"), "got {:?}", audit.violations);
    assert!(rules.contains(&"panic"), "got {:?}", audit.violations);
}

#[test]
fn telemetry_phases_rule() {
    assert_fires("phases_bad.rs", "crates/bench/src/bin/fixture.rs", "telemetry-phases");
    assert_clean("phases_ok.rs", "crates/bench/src/bin/fixture.rs");
}

#[test]
fn telemetry_span_rule() {
    assert_fires("span_bad.rs", "crates/detect/src/fixture.rs", "telemetry-span");
    assert_clean("span_ok.rs", "crates/detect/src/fixture.rs");
    // The rule covers repair modules identically.
    assert_fires("span_bad.rs", "crates/repair/src/fixture.rs", "telemetry-span");
}

#[test]
fn print_rule() {
    assert_fires("print_bad.rs", "crates/core/src/fixture.rs", "print");
    // The bench emission helpers are the sanctioned stdout path.
    assert_clean("print_ok.rs", "crates/bench/src/lib.rs");
    // Binaries print their reports by design (the phases rule still
    // applies to a bench-bin path, so only assert `print` stays quiet).
    let bin = audit_fixture("print_bad.rs", "crates/bench/src/bin/fixture.rs");
    assert!(!rules_of(&bin).contains(&"print"), "got {:?}", bin.violations);
}

#[test]
fn guard_coverage_rule() {
    assert_fires("guard_coverage_bad.rs", "crates/core/src/fixture.rs", "guard-coverage");
    assert_fires("guard_coverage_bad.rs", "crates/bench/src/fixture.rs", "guard-coverage");
    // A file that calls rein_guard::run is the sanctioned dispatcher.
    assert_clean("guard_coverage_ok.rs", "crates/core/src/fixture.rs");
    // Outside rein-core and rein-bench the rule does not apply (the
    // detect/repair crates invoke their own kernels freely), and test
    // support paths are exempt everywhere.
    let out = audit_fixture("guard_coverage_bad.rs", "crates/detect/src/fixture.rs");
    assert!(!rules_of(&out).contains(&"guard-coverage"), "got {:?}", out.violations);
    let out = audit_fixture("guard_coverage_bad.rs", "crates/core/tests/fixture.rs");
    assert!(!rules_of(&out).contains(&"guard-coverage"), "got {:?}", out.violations);
}

#[test]
fn ledger_registration_rule() {
    assert_fires("ledger_reg_bad.rs", "crates/bench/src/fixture.rs", "ledger-registration");
    assert_clean("ledger_reg_ok.rs", "crates/bench/src/fixture.rs");
    // Only the bench crate is scoped: tools and tests may collect
    // manifests for inspection without registering them.
    let out = audit_fixture("ledger_reg_bad.rs", "crates/ledger/src/fixture.rs");
    assert!(!rules_of(&out).contains(&"ledger-registration"), "got {:?}", out.violations);
    let out = audit_fixture("ledger_reg_bad.rs", "crates/bench/tests/fixture.rs");
    assert!(!rules_of(&out).contains(&"ledger-registration"), "got {:?}", out.violations);
}

#[test]
fn store_atomic_write_rule() {
    assert_fires("store_write_bad.rs", "crates/core/src/fixture.rs", "store-atomic-write");
    // Binaries are in scope too: a smoke bin poking the journal with a
    // raw write needs an explicit audit:allow.
    assert_fires("store_write_bad.rs", "crates/bench/src/bin/fixture.rs", "store-atomic-write");
    assert_clean("store_write_ok.rs", "crates/core/src/fixture.rs");
    // The store crate owns the raw fsync + rename machinery, and test
    // support may corrupt journals on purpose.
    let out = audit_fixture("store_write_bad.rs", "crates/store/src/fixture.rs");
    assert!(!rules_of(&out).contains(&"store-atomic-write"), "got {:?}", out.violations);
    let out = audit_fixture("store_write_bad.rs", "crates/store/tests/fixture.rs");
    assert!(!rules_of(&out).contains(&"store-atomic-write"), "got {:?}", out.violations);
}

#[test]
fn comments_and_strings_do_not_fire() {
    assert_clean("lexer_ok.rs", "crates/core/src/fixture.rs");
}

#[test]
fn test_support_paths_are_exempt_from_panic_and_print() {
    assert_clean("panic_bad.rs", "crates/data/tests/fixture.rs");
    assert_clean("print_bad.rs", "tests/fixture.rs");
}
