//! Gradient-boosted trees — the XGBoost stand-in.
//!
//! Regression boosts squared error; classification boosts the multinomial
//! deviance with one regression tree per class per round (softmax of the
//! accumulated raw scores), with shrinkage. This is the algorithmic core
//! of XGBoost minus its second-order leaf weights and sparsity-aware
//! splits, which do not change the benchmark's qualitative behaviour.

use crate::linalg::Matrix;
use crate::logistic::softmax_in_place;
use crate::model::{Classifier, Regressor};
use crate::tree::{DecisionTreeRegressor, TreeParams};

/// Boosting hyperparameters.
#[derive(Debug, Clone)]
pub struct GbtParams {
    /// Boosting rounds.
    pub n_rounds: usize,
    /// Learning rate (shrinkage).
    pub learning_rate: f64,
    /// Depth of each tree.
    pub max_depth: usize,
}

impl Default for GbtParams {
    fn default() -> Self {
        Self { n_rounds: 60, learning_rate: 0.2, max_depth: 3 }
    }
}

fn tree_params(p: &GbtParams, seed: u64) -> TreeParams {
    TreeParams {
        max_depth: p.max_depth,
        min_samples_split: 4,
        min_samples_leaf: 2,
        max_features: None,
        seed,
    }
}

/// Gradient-boosted regressor.
pub struct GradientBoostedRegressor {
    params: GbtParams,
    base: f64,
    trees: Vec<DecisionTreeRegressor>,
}

impl GradientBoostedRegressor {
    /// Builds an (unfitted) boosted regressor.
    pub fn new(params: GbtParams) -> Self {
        Self { params, base: 0.0, trees: Vec::new() }
    }
}

impl Regressor for GradientBoostedRegressor {
    fn fit(&mut self, x: &Matrix, y: &[f64]) {
        self.trees.clear();
        let n = x.rows();
        if n == 0 {
            self.base = 0.0;
            return;
        }
        self.base = y.iter().sum::<f64>() / n as f64;
        let mut preds = vec![self.base; n];
        for round in 0..self.params.n_rounds {
            rein_guard::checkpoint(n as u64);
            let residuals: Vec<f64> = y.iter().zip(&preds).map(|(t, p)| t - p).collect();
            let mut tree = DecisionTreeRegressor::new(tree_params(&self.params, round as u64));
            tree.fit(x, &residuals);
            let update = tree.predict(x);
            for (p, u) in preds.iter_mut().zip(&update) {
                *p += self.params.learning_rate * u;
            }
            self.trees.push(tree);
        }
    }

    fn predict(&self, x: &Matrix) -> Vec<f64> {
        let mut out = vec![self.base; x.rows()];
        for tree in &self.trees {
            for (o, u) in out.iter_mut().zip(tree.predict(x)) {
                *o += self.params.learning_rate * u;
            }
        }
        out
    }
}

/// Gradient-boosted classifier (multinomial deviance).
pub struct GradientBoostedClassifier {
    params: GbtParams,
    n_classes: usize,
    base: Vec<f64>,
    /// `rounds × classes` trees.
    trees: Vec<Vec<DecisionTreeRegressor>>,
}

impl GradientBoostedClassifier {
    /// Builds an (unfitted) boosted classifier.
    pub fn new(params: GbtParams) -> Self {
        Self { params, n_classes: 0, base: Vec::new(), trees: Vec::new() }
    }

    fn raw_scores(&self, x: &Matrix) -> Matrix {
        let mut scores = Matrix::zeros(x.rows(), self.n_classes);
        for r in 0..x.rows() {
            scores.row_mut(r).copy_from_slice(&self.base);
        }
        for round in &self.trees {
            for (c, tree) in round.iter().enumerate() {
                for (r, u) in tree.predict(x).into_iter().enumerate() {
                    scores[(r, c)] += self.params.learning_rate * u;
                }
            }
        }
        scores
    }
}

impl Classifier for GradientBoostedClassifier {
    fn fit(&mut self, x: &Matrix, y: &[usize], n_classes: usize) {
        self.n_classes = n_classes.max(2);
        self.trees.clear();
        let n = x.rows();
        self.base = vec![0.0; self.n_classes];
        if n == 0 {
            return;
        }
        // Log-prior initial scores.
        let mut counts = vec![0usize; self.n_classes];
        for &c in y {
            counts[c] += 1;
        }
        for c in 0..self.n_classes {
            self.base[c] = ((counts[c] as f64 + 1.0) / (n as f64 + self.n_classes as f64)).ln();
        }

        let mut scores = Matrix::zeros(n, self.n_classes);
        for r in 0..n {
            scores.row_mut(r).copy_from_slice(&self.base);
        }
        for round in 0..self.params.n_rounds {
            // Negative gradient: (one-hot − softmax).
            let mut probs = scores.clone();
            for r in 0..n {
                softmax_in_place(probs.row_mut(r));
            }
            let mut round_trees = Vec::with_capacity(self.n_classes);
            for c in 0..self.n_classes {
                let residuals: Vec<f64> =
                    (0..n).map(|r| if y[r] == c { 1.0 } else { 0.0 } - probs[(r, c)]).collect();
                let mut tree = DecisionTreeRegressor::new(tree_params(
                    &self.params,
                    (round * self.n_classes + c) as u64,
                ));
                tree.fit(x, &residuals);
                for (r, u) in tree.predict(x).into_iter().enumerate() {
                    scores[(r, c)] += self.params.learning_rate * u;
                }
                round_trees.push(tree);
            }
            self.trees.push(round_trees);
        }
    }

    fn predict(&self, x: &Matrix) -> Vec<usize> {
        let scores = self.raw_scores(x);
        (0..x.rows()).map(|r| crate::linalg::argmax(scores.row(r))).collect()
    }

    fn predict_proba(&self, x: &Matrix, n_classes: usize) -> Matrix {
        let mut scores = self.raw_scores(x);
        for r in 0..scores.rows() {
            softmax_in_place(scores.row_mut(r));
        }
        debug_assert!(scores.cols() <= n_classes || scores.cols() == self.n_classes);
        let mut out = Matrix::zeros(x.rows(), n_classes);
        for r in 0..x.rows() {
            let w = scores.cols().min(n_classes);
            out.row_mut(r)[..w].copy_from_slice(&scores.row(r)[..w]);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{
        blob_classification, linear_regression_data, train_test_accuracy, train_test_rmse,
    };

    #[test]
    fn regressor_fits_nonlinear_target() {
        let (x, _) = linear_regression_data(300, 0.0, 111);
        let y: Vec<f64> = (0..x.rows()).map(|r| (x[(r, 0)]).sin() * 2.0 + x[(r, 1)]).collect();
        let mut m = GradientBoostedRegressor::new(GbtParams::default());
        let err = train_test_rmse(&mut m, &x, &y);
        assert!(err < 0.6, "rmse {err}");
    }

    #[test]
    fn more_rounds_reduce_training_error() {
        let (x, y) = linear_regression_data(200, 0.1, 113);
        let mut short =
            GradientBoostedRegressor::new(GbtParams { n_rounds: 3, ..Default::default() });
        let mut long =
            GradientBoostedRegressor::new(GbtParams { n_rounds: 60, ..Default::default() });
        short.fit(&x, &y);
        long.fit(&x, &y);
        let short_err = crate::metrics::rmse(&y, &short.predict(&x));
        let long_err = crate::metrics::rmse(&y, &long.predict(&x));
        assert!(long_err < short_err, "long {long_err} vs short {short_err}");
    }

    #[test]
    fn classifier_learns_blobs() {
        let (x, y) = blob_classification(150, 3, 117);
        let mut m =
            GradientBoostedClassifier::new(GbtParams { n_rounds: 20, ..Default::default() });
        let acc = train_test_accuracy(&mut m, &x, &y, 3);
        assert!(acc > 0.9, "accuracy {acc}");
    }

    #[test]
    fn classifier_proba_normalised() {
        let (x, y) = blob_classification(60, 2, 119);
        let mut m =
            GradientBoostedClassifier::new(GbtParams { n_rounds: 10, ..Default::default() });
        m.fit(&x, &y, 2);
        let p = m.predict_proba(&x, 2);
        for r in 0..p.rows() {
            assert!((p.row(r).iter().sum::<f64>() - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn empty_fit_safe() {
        let mut m = GradientBoostedClassifier::new(GbtParams::default());
        m.fit(&Matrix::zeros(0, 2), &[], 2);
        assert_eq!(m.predict(&Matrix::zeros(2, 2)).len(), 2);
    }
}
