//! Offline vendored stand-in for `serde_derive`.
//!
//! Implements `#[derive(Serialize)]` and `#[derive(Deserialize)]` for the
//! item shapes the REIN-RS workspace actually derives — structs with named
//! fields, and enums whose variants are unit or single-field newtypes —
//! without `syn`/`quote` (unavailable offline): the input item is walked
//! as raw [`proc_macro::TokenTree`]s and the impl is emitted as formatted
//! source text parsed back into a `TokenStream`.
//!
//! Unsupported shapes (tuple structs, struct variants, generics) produce
//! a `compile_error!` naming the limitation rather than silently-wrong
//! code.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// A parsed derive target.
enum Item {
    /// Struct with named fields.
    Struct { name: String, fields: Vec<Field> },
    /// Single-field tuple struct, serialized transparently as its inner value.
    NewtypeStruct { name: String },
    /// Enum of unit and single-field (newtype) variants.
    Enum { name: String, variants: Vec<Variant> },
}

struct Variant {
    name: String,
    newtype: bool,
}

struct Field {
    name: String,
    /// `#[serde(default)]`: a missing key deserializes to `T::default()`.
    default: bool,
}

/// Whether a `#`-introduced attribute group is `#[serde(... default ...)]`.
fn attr_is_serde_default(attr: &TokenTree) -> bool {
    let TokenTree::Group(g) = attr else { return false };
    if g.delimiter() != Delimiter::Bracket {
        return false;
    }
    let tokens: Vec<TokenTree> = g.stream().into_iter().collect();
    match &tokens[..] {
        [TokenTree::Ident(id), TokenTree::Group(inner)] if id.to_string() == "serde" => inner
            .stream()
            .into_iter()
            .any(|t| matches!(&t, TokenTree::Ident(i) if i.to_string() == "default")),
        _ => false,
    }
}

/// Derives the vendored `serde::Serialize`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    match parse_item(input) {
        Ok(item) => gen_serialize(&item).parse().expect("generated Serialize impl parses"),
        Err(msg) => compile_error(&msg),
    }
}

/// Derives the vendored `serde::Deserialize`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    match parse_item(input) {
        Ok(item) => gen_deserialize(&item).parse().expect("generated Deserialize impl parses"),
        Err(msg) => compile_error(&msg),
    }
}

fn compile_error(msg: &str) -> TokenStream {
    format!("compile_error!({msg:?});").parse().expect("compile_error parses")
}

/// Walks the item's top-level tokens: skips attributes and visibility,
/// then expects `struct`/`enum`, the type name, and the brace body.
fn parse_item(input: TokenStream) -> Result<Item, String> {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    let mut kind: Option<&'static str> = None;
    let mut name: Option<String> = None;
    while i < tokens.len() {
        match &tokens[i] {
            TokenTree::Punct(p) if p.as_char() == '#' => {
                i += 2; // `#` + the bracketed attribute group
            }
            TokenTree::Ident(id) if id.to_string() == "pub" => {
                i += 1;
                // `pub(crate)` and friends carry a parenthesised group.
                if matches!(&tokens.get(i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
                {
                    i += 1;
                }
            }
            TokenTree::Ident(id) if id.to_string() == "struct" => {
                kind = Some("struct");
                i += 1;
            }
            TokenTree::Ident(id) if id.to_string() == "enum" => {
                kind = Some("enum");
                i += 1;
            }
            TokenTree::Ident(id) if kind.is_some() && name.is_none() => {
                name = Some(id.to_string());
                i += 1;
            }
            TokenTree::Punct(p) if p.as_char() == '<' && name.is_some() => {
                return Err(format!(
                    "vendored serde_derive does not support generic type `{}`",
                    name.unwrap()
                ));
            }
            TokenTree::Group(g) if g.delimiter() == Delimiter::Brace && name.is_some() => {
                let name = name.unwrap();
                let body: Vec<TokenTree> = g.stream().into_iter().collect();
                return match kind {
                    Some("struct") => Ok(Item::Struct { fields: parse_fields(&body)?, name }),
                    Some("enum") => Ok(Item::Enum { variants: parse_variants(&body, &name)?, name }),
                    _ => Err("expected struct or enum".to_string()),
                };
            }
            TokenTree::Group(g) if g.delimiter() == Delimiter::Parenthesis && name.is_some() => {
                let name = name.unwrap();
                // Only single-field (newtype) tuple structs are supported;
                // they serialize transparently as the inner value.
                let mut angle_depth = 0i32;
                let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                for (j, t) in inner.iter().enumerate() {
                    match t {
                        TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
                        TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
                        TokenTree::Punct(p)
                            if p.as_char() == ','
                                && angle_depth == 0
                                && j + 1 < inner.len() =>
                        {
                            return Err(format!(
                                "vendored serde_derive: tuple struct `{name}` with multiple \
                                 fields is not supported"
                            ));
                        }
                        _ => {}
                    }
                }
                return Ok(Item::NewtypeStruct { name });
            }
            _ => i += 1,
        }
    }
    Err("vendored serde_derive: could not find a struct or enum body".to_string())
}

/// Extracts field names from a named-struct body, skipping attributes,
/// visibility, and type tokens (angle-bracket depth tracked so commas
/// inside generics don't split fields).
fn parse_fields(body: &[TokenTree]) -> Result<Vec<Field>, String> {
    let mut fields = Vec::new();
    let mut i = 0;
    while i < body.len() {
        // Skip per-field attributes (doc comments arrive as `#[doc = ..]`),
        // noting a `#[serde(default)]` when present.
        let mut default = false;
        while i + 1 < body.len()
            && matches!(&body[i], TokenTree::Punct(p) if p.as_char() == '#')
        {
            default |= attr_is_serde_default(&body[i + 1]);
            i += 2;
        }
        if i >= body.len() {
            break;
        }
        if let TokenTree::Ident(id) = &body[i] {
            if id.to_string() == "pub" {
                i += 1;
                if matches!(&body.get(i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
                {
                    i += 1;
                }
            }
        }
        let field = match &body[i] {
            TokenTree::Ident(id) => id.to_string(),
            other => return Err(format!("expected field name, found `{other}`")),
        };
        i += 1;
        match &body.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
            other => {
                return Err(format!("expected `:` after field `{field}`, found {other:?}"))
            }
        }
        // Skip the type until a top-level comma.
        let mut angle_depth = 0i32;
        while i < body.len() {
            match &body[i] {
                TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => {
                    i += 1;
                    break;
                }
                _ => {}
            }
            i += 1;
        }
        fields.push(Field { name: field, default });
    }
    Ok(fields)
}

/// Extracts variants from an enum body: `Name`, or `Name(SingleType)`.
fn parse_variants(body: &[TokenTree], enum_name: &str) -> Result<Vec<Variant>, String> {
    let mut variants = Vec::new();
    let mut i = 0;
    while i < body.len() {
        while i + 1 < body.len()
            && matches!(&body[i], TokenTree::Punct(p) if p.as_char() == '#')
        {
            i += 2;
        }
        if i >= body.len() {
            break;
        }
        let name = match &body[i] {
            TokenTree::Ident(id) => id.to_string(),
            other => return Err(format!("expected variant name in {enum_name}, found `{other}`")),
        };
        i += 1;
        let mut newtype = false;
        match &body.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let mut angle_depth = 0i32;
                for t in g.stream() {
                    match &t {
                        TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
                        TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
                        TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => {
                            return Err(format!(
                                "vendored serde_derive: tuple variant `{enum_name}::{name}` \
                                 with multiple fields is not supported"
                            ));
                        }
                        _ => {}
                    }
                }
                newtype = true;
                i += 1;
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                return Err(format!(
                    "vendored serde_derive: struct variant `{enum_name}::{name}` is not supported"
                ));
            }
            _ => {}
        }
        // Skip the trailing comma (and any discriminant — unsupported but
        // none exist in this workspace).
        while i < body.len() {
            if matches!(&body[i], TokenTree::Punct(p) if p.as_char() == ',') {
                i += 1;
                break;
            }
            i += 1;
        }
        variants.push(Variant { name, newtype });
    }
    Ok(variants)
}

fn gen_serialize(item: &Item) -> String {
    match item {
        Item::Struct { name, fields } => {
            let entries: Vec<String> = fields
                .iter()
                .map(|f| {
                    let f = &f.name;
                    format!(
                        "(::std::string::String::from({f:?}), \
                         ::serde::Serialize::serialize_content(&self.{f}))"
                    )
                })
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn serialize_content(&self) -> ::serde::Content {{\n\
                         ::serde::Content::Map(::std::vec![{}])\n\
                     }}\n\
                 }}",
                entries.join(", ")
            )
        }
        Item::NewtypeStruct { name } => format!(
            "impl ::serde::Serialize for {name} {{\n\
                 fn serialize_content(&self) -> ::serde::Content {{\n\
                     ::serde::Serialize::serialize_content(&self.0)\n\
                 }}\n\
             }}"
        ),
        Item::Enum { name, variants } => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| {
                    let vn = &v.name;
                    if v.newtype {
                        format!(
                            "{name}::{vn}(__payload) => ::serde::Content::Map(::std::vec![\
                             (::std::string::String::from({vn:?}), \
                             ::serde::Serialize::serialize_content(__payload))]),"
                        )
                    } else {
                        format!(
                            "{name}::{vn} => \
                             ::serde::Content::Str(::std::string::String::from({vn:?})),"
                        )
                    }
                })
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn serialize_content(&self) -> ::serde::Content {{\n\
                         match self {{ {} }}\n\
                     }}\n\
                 }}",
                arms.join("\n")
            )
        }
    }
}

fn gen_deserialize(item: &Item) -> String {
    match item {
        Item::Struct { name, fields } => {
            let inits: Vec<String> = fields
                .iter()
                .map(|field| {
                    let f = &field.name;
                    if field.default {
                        format!("{f}: ::serde::de_field_or_default(__map, {f:?})?,")
                    } else {
                        format!("{f}: ::serde::de_field(__map, {f:?}, {name:?})?,")
                    }
                })
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn deserialize_content(__content: &::serde::Content) \
                         -> ::std::result::Result<Self, ::serde::DeError> {{\n\
                         let __map = __content.as_map().ok_or_else(|| \
                             ::serde::DeError::expected(\"object\", {name:?}))?;\n\
                         ::std::result::Result::Ok({name} {{ {} }})\n\
                     }}\n\
                 }}",
                inits.join(" ")
            )
        }
        Item::NewtypeStruct { name } => format!(
            "impl ::serde::Deserialize for {name} {{\n\
                 fn deserialize_content(__content: &::serde::Content) \
                     -> ::std::result::Result<Self, ::serde::DeError> {{\n\
                     ::std::result::Result::Ok({name}(\
                         ::serde::Deserialize::deserialize_content(__content)?))\n\
                 }}\n\
             }}"
        ),
        Item::Enum { name, variants } => {
            let unit_arms: Vec<String> = variants
                .iter()
                .filter(|v| !v.newtype)
                .map(|v| {
                    let vn = &v.name;
                    format!("{vn:?} => ::std::result::Result::Ok({name}::{vn}),")
                })
                .collect();
            let newtype_arms: Vec<String> = variants
                .iter()
                .filter(|v| v.newtype)
                .map(|v| {
                    let vn = &v.name;
                    format!(
                        "{vn:?} => ::std::result::Result::Ok({name}::{vn}(\
                         ::serde::Deserialize::deserialize_content(__v)?)),"
                    )
                })
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn deserialize_content(__content: &::serde::Content) \
                         -> ::std::result::Result<Self, ::serde::DeError> {{\n\
                         match __content {{\n\
                             ::serde::Content::Str(__s) => match __s.as_str() {{\n\
                                 {}\n\
                                 __other => ::std::result::Result::Err(::serde::DeError(\
                                     ::std::format!(\"unknown variant `{{}}` of {name}\", __other))),\n\
                             }},\n\
                             ::serde::Content::Map(__m) if __m.len() == 1 => {{\n\
                                 let (__k, __v) = &__m[0];\n\
                                 match __k.as_str() {{\n\
                                     {}\n\
                                     __other => ::std::result::Result::Err(::serde::DeError(\
                                         ::std::format!(\"unknown variant `{{}}` of {name}\", __other))),\n\
                                 }}\n\
                             }}\n\
                             __other => ::std::result::Result::Err(\
                                 ::serde::DeError::expected(\"enum variant\", __other.kind())),\n\
                         }}\n\
                     }}\n\
                 }}",
                unit_arms.join("\n"),
                newtype_arms.join("\n")
            )
        }
    }
}
