//! Offline vendored stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this crate
//! reimplements exactly the subset of the `rand` 0.10 API the REIN-RS
//! workspace uses: [`Rng`]/[`RngExt`] with `random`, `random_range` and
//! `random_bool`, [`SeedableRng::seed_from_u64`], [`rngs::StdRng`]
//! (xoshiro256++ seeded via SplitMix64), and the slice helpers
//! [`seq::SliceRandom::shuffle`] / [`seq::IndexedRandom::choose`].
//!
//! Determinism is the only contract the benchmark relies on: the same
//! seed always yields the same stream. Statistical quality is provided
//! by xoshiro256++, the same generator family the real `rand` uses for
//! its small RNGs.

use std::ops::{Range, RangeInclusive};

/// Raw 64-bit generator interface.
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types that can be sampled uniformly from the generator's raw bits
/// (the `StandardUniform` distribution of the real crate).
pub trait SampleUniformly: Sized {
    /// Draws one value.
    fn sample_uniformly<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_sample_int {
    ($($t:ty),*) => {$(
        impl SampleUniformly for $t {
            fn sample_uniformly<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_sample_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniformly for bool {
    fn sample_uniformly<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl SampleUniformly for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn sample_uniformly<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl SampleUniformly for f32 {
    fn sample_uniformly<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Ranges that [`Rng::random_range`] accepts.
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample_range<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_range<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in random_range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let draw = (rng.next_u64() as u128) % span;
                (self.start as i128 + draw as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_range<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range in random_range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let draw = (rng.next_u64() as u128) % span;
                (lo as i128 + draw as i128) as $t
            }
        }
    )*};
}
impl_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_range_float {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_range<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in random_range");
                let unit = <$t as SampleUniformly>::sample_uniformly(rng);
                self.start + (self.end - self.start) * unit
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_range<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range in random_range");
                let unit = <$t as SampleUniformly>::sample_uniformly(rng);
                lo + (hi - lo) * unit
            }
        }
    )*};
}
impl_range_float!(f32, f64);

/// The user-facing generator trait: every [`RngCore`] gets these.
pub trait Rng: RngCore {
    /// A uniformly random value of `T`.
    fn random<T: SampleUniformly>(&mut self) -> T {
        T::sample_uniformly(self)
    }

    /// A uniformly random value within `range`.
    fn random_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_range(self)
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    fn random_bool(&mut self, p: f64) -> bool {
        f64::sample_uniformly(self) < p
    }

    /// `true` with probability `numerator / denominator`.
    fn random_ratio(&mut self, numerator: u32, denominator: u32) -> bool {
        assert!(denominator > 0, "zero denominator in random_ratio");
        self.random_range(0..denominator) < numerator
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Compatibility alias: `rand` 0.10 splits convenience methods into an
/// extension trait; here they all live on [`Rng`] and this is a marker.
pub trait RngExt: Rng {}
impl<R: Rng + ?Sized> RngExt for R {}

/// Seedable generators.
pub trait SeedableRng: Sized {
    /// Raw seed type.
    type Seed: Default + AsMut<[u8]>;

    /// Builds the generator from a raw seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Builds the generator from a `u64`, expanding it via SplitMix64.
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = splitmix64(state);
        for chunk in seed.as_mut().chunks_mut(8) {
            let bytes = sm.to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
            sm = splitmix64(sm);
        }
        Self::from_seed(seed)
    }
}

fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The named generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256++.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, word) in s.iter_mut().enumerate() {
                let mut b = [0u8; 8];
                b.copy_from_slice(&seed[i * 8..(i + 1) * 8]);
                *word = u64::from_le_bytes(b);
            }
            // An all-zero state would be a fixed point; nudge it.
            if s == [0; 4] {
                s = [0x9E37_79B9_7F4A_7C15, 1, 2, 3];
            }
            StdRng { s }
        }
    }

    /// Alias: the small generator is the same engine here.
    pub type SmallRng = StdRng;
}

/// Slice sampling helpers.
pub mod seq {
    use super::{Rng, RngCore};

    /// In-place slice shuffling (Fisher–Yates).
    pub trait SliceRandom {
        /// Shuffles the slice in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.random_range(0..=i);
                self.swap(i, j);
            }
        }
    }

    /// Uniform element selection.
    pub trait IndexedRandom {
        /// Element type.
        type Output;

        /// A uniformly random element, or `None` if empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Output>;
    }

    impl<T> IndexedRandom for [T] {
        type Output = T;

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                self.get(rng.random_range(0..self.len()))
            }
        }
    }
}

/// The customary glob import.
pub mod prelude {
    pub use super::rngs::{SmallRng, StdRng};
    pub use super::seq::{IndexedRandom, SliceRandom};
    pub use super::{Rng, RngCore, RngExt, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v: usize = rng.random_range(3..17);
            assert!((3..17).contains(&v));
            let f: f64 = rng.random_range(-2.0..2.0);
            assert!((-2.0..2.0).contains(&f));
            let u: f64 = rng.random();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert!(v.choose(&mut rng).is_some());
    }

    #[test]
    fn random_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(5);
        let hits = (0..10_000).filter(|_| rng.random_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "hits {hits}");
    }
}
