//! The evaluation scenarios S1–S5 of Table 3: which data version trains
//! the model and which one tests it.

use serde::{Deserialize, Serialize};

/// A data version role.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum VersionRole {
    /// The dirty or repaired version under evaluation.
    Version,
    /// The ground truth.
    GroundTruth,
}

/// The five scenarios of Table 3.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Scenario {
    /// S1 — train and test on the dirty/repaired version.
    S1,
    /// S2 — train on the version, test on the ground truth.
    S2,
    /// S3 — train on the ground truth, test on the version.
    S3,
    /// S4 — train and test on the ground truth (the upper bound).
    S4,
    /// S5 — the model produced by an ML-oriented repairer, tested on the
    /// dirty version.
    S5,
}

impl Scenario {
    /// All five scenarios.
    pub const ALL: [Scenario; 5] =
        [Scenario::S1, Scenario::S2, Scenario::S3, Scenario::S4, Scenario::S5];

    /// `(train, test)` roles (Table 3). S5 has no train role — the model
    /// comes from the repairer — so its train role is `Version` by
    /// convention.
    pub fn roles(self) -> (VersionRole, VersionRole) {
        match self {
            Scenario::S1 => (VersionRole::Version, VersionRole::Version),
            Scenario::S2 => (VersionRole::Version, VersionRole::GroundTruth),
            Scenario::S3 => (VersionRole::GroundTruth, VersionRole::Version),
            Scenario::S4 => (VersionRole::GroundTruth, VersionRole::GroundTruth),
            Scenario::S5 => (VersionRole::Version, VersionRole::Version),
        }
    }

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            Scenario::S1 => "S1",
            Scenario::S2 => "S2",
            Scenario::S3 => "S3",
            Scenario::S4 => "S4",
            Scenario::S5 => "S5",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_3_matrix() {
        assert_eq!(Scenario::S1.roles(), (VersionRole::Version, VersionRole::Version));
        assert_eq!(Scenario::S2.roles(), (VersionRole::Version, VersionRole::GroundTruth));
        assert_eq!(Scenario::S3.roles(), (VersionRole::GroundTruth, VersionRole::Version));
        assert_eq!(Scenario::S4.roles(), (VersionRole::GroundTruth, VersionRole::GroundTruth));
    }

    #[test]
    fn five_scenarios() {
        assert_eq!(Scenario::ALL.len(), 5);
        let names: Vec<&str> = Scenario::ALL.iter().map(|s| s.name()).collect();
        assert_eq!(names, vec!["S1", "S2", "S3", "S4", "S5"]);
    }
}
