//! The data repository — the PostgreSQL substitute.
//!
//! Stores every data version (ground truth, dirty, one repaired version
//! per cleaning strategy) in memory, optionally persisting each version as
//! CSV under a root directory, which is all the original uses its
//! database for.

use std::collections::BTreeMap;
use std::path::PathBuf;

use rein_data::{csv, Table};

/// Key of a stored data version.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum VersionKey {
    /// The clean ground truth.
    GroundTruth,
    /// The dirty version.
    Dirty,
    /// A repaired version, keyed by `(detector, repairer)` names.
    Repaired {
        /// Detector name.
        detector: String,
        /// Repairer name.
        repairer: String,
    },
}

impl VersionKey {
    fn file_stem(&self) -> String {
        match self {
            VersionKey::GroundTruth => "ground_truth".to_string(),
            VersionKey::Dirty => "dirty".to_string(),
            VersionKey::Repaired { detector, repairer } => {
                format!("repaired__{detector}__{repairer}")
            }
        }
    }
}

/// In-memory (optionally file-backed) repository of dataset versions.
#[derive(Debug, Default)]
pub struct Repository {
    versions: BTreeMap<(String, VersionKey), Table>,
    root: Option<PathBuf>,
}

impl Repository {
    /// Pure in-memory repository.
    pub fn in_memory() -> Self {
        Self::default()
    }

    /// Repository persisting every stored version as CSV under `root`.
    pub fn with_root(root: impl Into<PathBuf>) -> std::io::Result<Self> {
        let root = root.into();
        std::fs::create_dir_all(&root)?;
        Ok(Self { versions: BTreeMap::new(), root: Some(root) })
    }

    /// Stores a version (overwrites an existing one).
    ///
    /// On-disk persistence goes through [`rein_store::atomic_write`] —
    /// the same hardened temp-file + fsync + rename + parent-directory
    /// fsync path the durable cell store's segment writer uses — so a
    /// crash (or power loss) mid-write leaves either the old version or
    /// the new one durably on disk, never a torn file and never a
    /// rename that an unsynced directory entry forgets.
    pub fn store(&mut self, dataset: &str, key: VersionKey, table: Table) -> std::io::Result<()> {
        if let Some(root) = &self.root {
            let dir = root.join(dataset);
            let target = dir.join(format!("{}.csv", key.file_stem()));
            rein_store::atomic_write(&target, csv::write_str(&table).as_bytes())?;
        }
        self.versions.insert((dataset.to_string(), key), table);
        Ok(())
    }

    /// Fetches a version from memory (or from disk on a cold start).
    pub fn load(&self, dataset: &str, key: &VersionKey) -> Option<Table> {
        if let Some(t) = self.versions.get(&(dataset.to_string(), key.clone())) {
            return Some(t.clone());
        }
        let root = self.root.as_ref()?;
        let path = root.join(dataset).join(format!("{}.csv", key.file_stem()));
        csv::read_file(&path).ok()
    }

    /// Lists the stored version keys of a dataset (in-memory only).
    pub fn versions_of(&self, dataset: &str) -> Vec<VersionKey> {
        let mut keys: Vec<VersionKey> =
            self.versions.keys().filter(|(d, _)| d == dataset).map(|(_, k)| k.clone()).collect();
        keys.sort_by_key(|k| k.file_stem());
        keys
    }

    /// Number of stored versions across all datasets.
    pub fn len(&self) -> usize {
        self.versions.len()
    }

    /// Whether the repository is empty.
    pub fn is_empty(&self) -> bool {
        self.versions.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rein_data::{ColumnMeta, ColumnType, Schema, Value};

    fn table(v: i64) -> Table {
        let schema = Schema::new(vec![ColumnMeta::new("x", ColumnType::Int)]);
        Table::from_rows(schema, vec![vec![Value::Int(v)]])
    }

    #[test]
    fn memory_roundtrip() {
        let mut repo = Repository::in_memory();
        repo.store("beers", VersionKey::GroundTruth, table(1)).unwrap();
        repo.store("beers", VersionKey::Dirty, table(2)).unwrap();
        assert_eq!(
            repo.load("beers", &VersionKey::GroundTruth).unwrap().cell(0, 0),
            &Value::Int(1)
        );
        assert_eq!(repo.load("beers", &VersionKey::Dirty).unwrap().cell(0, 0), &Value::Int(2));
        assert!(repo
            .load(
                "beers",
                &VersionKey::Repaired { detector: "sd".into(), repairer: "delete".into() }
            )
            .is_none());
        assert_eq!(repo.versions_of("beers").len(), 2);
        assert_eq!(repo.len(), 2);
    }

    #[test]
    fn file_backed_roundtrip() {
        let dir = std::env::temp_dir().join(format!("rein_repo_test_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        {
            let mut repo = Repository::with_root(&dir).unwrap();
            let key = VersionKey::Repaired { detector: "sd".into(), repairer: "baran".into() };
            repo.store("nasa", key, table(7)).unwrap();
        }
        // Cold start reads from disk.
        let repo = Repository::with_root(&dir).unwrap();
        let key = VersionKey::Repaired { detector: "sd".into(), repairer: "baran".into() };
        let t = repo.load("nasa", &key).unwrap();
        assert_eq!(t.cell(0, 0), &Value::Int(7));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn store_leaves_no_temp_files_and_survives_torn_target() {
        let dir = std::env::temp_dir().join(format!("rein_repo_torn_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let mut repo = Repository::with_root(&dir).unwrap();
        repo.store("flights", VersionKey::Dirty, table(3)).unwrap();

        let target = dir.join("flights").join("dirty.csv");
        // Simulate a torn write from a crashed non-atomic writer: truncate
        // the target mid-record and drop a stale temp file beside it.
        std::fs::write(&target, "x\n\"torn").unwrap();
        std::fs::write(dir.join("flights").join("dirty.csv.tmp-999"), "garbage").unwrap();

        // A cold-started repository must treat the torn file as absent,
        // not return a partial table.
        let cold = Repository::with_root(&dir).unwrap();
        assert!(cold.load("flights", &VersionKey::Dirty).is_none());

        // Re-storing replaces the torn file atomically and cleans up after
        // itself: afterwards the version reads back whole and no temp file
        // from this process remains.
        repo.store("flights", VersionKey::Dirty, table(4)).unwrap();
        let cold = Repository::with_root(&dir).unwrap();
        assert_eq!(cold.load("flights", &VersionKey::Dirty).unwrap().cell(0, 0), &Value::Int(4));
        let own_tmp = dir.join("flights").join(format!("dirty.csv.tmp-{}", std::process::id()));
        assert!(!own_tmp.exists(), "temp file must be renamed away");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
