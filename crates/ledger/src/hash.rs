//! Content keys for ledger entries.
//!
//! A key is the FNV-1a 64-bit hash of a canonical identity string built
//! from the fields that define a run — never from the volatile bytes of
//! the artifact (timings change every run; the *run* they measure does
//! not). Re-running a benchmark at the same (bin, seed, scale, strategy
//! set) therefore maps to the same key, and the ledger never
//! double-counts it.

/// FNV-1a 64-bit over `bytes`. Chosen because it is tiny, dependency
/// free, and byte-stable across platforms; collision resistance at
/// ledger scale (hundreds of entries) is not a concern, and the
/// `(kind, source)` replace policy in the index disambiguates the
/// pathological case.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = OFFSET;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(PRIME);
    }
    h
}

/// A content key: 16 lowercase hex digits of [`fnv1a64`] over the
/// canonical identity string.
pub fn content_key(identity: &str) -> String {
    format!("{:016x}", fnv1a64(identity.as_bytes()))
}

/// The canonical identity string of a run artifact: `|`-joined fields,
/// strategies pre-sorted by the caller. `scale` is formatted with
/// Rust's shortest-roundtrip float formatting, which is deterministic.
pub fn run_identity(kind: &str, bin: &str, seed: u64, scale: f64, strategies: &[String]) -> String {
    format!("{kind}|{bin}|{seed}|{scale}|{}", strategies.join(","))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv_matches_reference_vectors() {
        // Published FNV-1a 64 test vectors.
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a64(b"foobar"), 0x8594_4171_f739_67e8);
    }

    #[test]
    fn keys_are_stable_and_distinguish_runs() {
        let strategies = vec!["detect:raha".to_string(), "repair:mean".to_string()];
        let a = content_key(&run_identity("run_manifest", "fig2", 11, 0.05, &strategies));
        let b = content_key(&run_identity("run_manifest", "fig2", 11, 0.05, &strategies));
        assert_eq!(a, b, "same run, same key");
        assert_eq!(a.len(), 16);
        let other_seed = content_key(&run_identity("run_manifest", "fig2", 12, 0.05, &strategies));
        assert_ne!(a, other_seed, "seed is part of the key");
        let other_scale = content_key(&run_identity("run_manifest", "fig2", 11, 0.1, &strategies));
        assert_ne!(a, other_scale, "scale is part of the key");
        let fewer = content_key(&run_identity("run_manifest", "fig2", 11, 0.05, &strategies[..1]));
        assert_ne!(a, fewer, "strategy set is part of the key");
    }
}
