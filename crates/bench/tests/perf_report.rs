//! Integration tests for the perf harness: report determinism and the
//! regression gate.

use rein_bench::perf::{comparator_self_test, compare_reports, CompareConfig, Verdict};

/// Two same-seed, same-scale suite runs must be byte-identical after
/// [`rein_bench::perf::BenchReport::normalized`] blanks the explicitly
/// volatile timing/allocation fields: same benchmark ids, cell counts,
/// repeat-vector lengths, span paths and span counts.
///
/// Both runs live in one test so the global span collector is not
/// drained concurrently (this is the only test in the binary touching
/// spans).
#[test]
fn same_seed_runs_are_byte_identical_modulo_timing() {
    let a = rein_bench::perf::run_perf_suite("test", 0.01, 2, 90);
    let b = rein_bench::perf::run_perf_suite("test", 0.01, 2, 90);
    assert_eq!(
        a.normalized().to_json(),
        b.normalized().to_json(),
        "normalized perf reports of same-seed runs must match byte-for-byte"
    );
    // The volatile fields really were populated before normalization.
    assert!(a.benchmarks.iter().all(|bench| bench.timing.median_ms > 0.0));
    assert!(a.benchmarks.iter().all(|bench| !bench.span_profile.is_empty()));
    // And a run compared against itself never regresses.
    let cmp = compare_reports(&a, &a, &CompareConfig::default());
    assert_eq!(cmp.regressions, 0);
    assert!(cmp.comparisons.iter().all(|c| c.verdict == Verdict::Unchanged));
}

/// The gate's own proof: identical reports compare clean and an injected
/// 2× slowdown is flagged at p < 0.05 — the same check `bench_compare
/// --self-test` runs.
#[test]
fn comparator_self_test_detects_injected_slowdown() {
    let summary = comparator_self_test().expect("comparator self-test must pass");
    assert!(summary.contains("p ="), "summary should report the p-value: {summary}");
}
