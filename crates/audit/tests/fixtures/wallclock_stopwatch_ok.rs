//! Fixture: timing through the sanctioned perf module — no raw
//! wall-clock token, legal anywhere.
pub fn timed_ms() -> f64 {
    let sw = rein_telemetry::perf::Stopwatch::start();
    sw.elapsed_ms()
}
