//! Fixture: the bench crate's emission helpers may print.
pub fn report(v: f64) {
    println!("value = {v}");
}
