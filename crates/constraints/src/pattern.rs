//! Syntactic patterns over cell values.
//!
//! Several detectors (KATARA, FAHES, NADEEF's pattern rules, OpenRefine)
//! reason about the *shape* of a value: its sequence of character classes.
//! `"10115"` has shape `D5`, `"A-12"` has shape `U-D2`. Columns usually
//! have one dominant shape; cells deviating from it are pattern violations.

use std::collections::BTreeMap;

use rein_data::{Table, Value};
use serde::{Deserialize, Serialize};

/// A run-length encoded character-class pattern.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct ValuePattern(String);

impl ValuePattern {
    /// The pattern's canonical text form, e.g. `"U1L+ D2"`.
    pub fn as_str(&self) -> &str {
        &self.0
    }
}

fn char_class(c: char) -> char {
    if c.is_ascii_digit() {
        'D'
    } else if c.is_ascii_uppercase() {
        'U'
    } else if c.is_ascii_lowercase() {
        'L'
    } else if c.is_whitespace() {
        '_'
    } else {
        'S' // symbol / punctuation / non-ascii
    }
}

/// Generalised (run-length collapsed) pattern of a string: consecutive
/// characters of one class collapse to `C+` when the run is longer than one.
///
/// Collapsing makes `"Pale Ale"` and `"Stout"` share the shape of "words",
/// matching how FAHES generalises syntactic patterns.
pub fn pattern_of(s: &str) -> ValuePattern {
    let mut out = String::new();
    let mut chars = s.chars().peekable();
    while let Some(c) = chars.next() {
        let class = char_class(c);
        let mut run = 1usize;
        while chars.peek().map(|&n| char_class(n)) == Some(class) {
            chars.next();
            run += 1;
        }
        out.push(class);
        if run > 1 {
            out.push('+');
        }
    }
    ValuePattern(out)
}

/// Exact (length-preserving) pattern: each character maps to its class.
pub fn exact_pattern_of(s: &str) -> ValuePattern {
    ValuePattern(s.chars().map(char_class).collect())
}

/// Pattern of a cell value (numbers and booleans pattern their display
/// form; NULL yields the empty pattern).
pub fn value_pattern(v: &Value) -> ValuePattern {
    pattern_of(&v.to_string())
}

/// The distribution of generalised patterns in a column.
#[derive(Debug, Clone)]
pub struct PatternProfile {
    /// Pattern → frequency, most frequent first.
    pub counts: Vec<(ValuePattern, usize)>,
    /// Number of non-null cells profiled.
    pub total: usize,
}

impl PatternProfile {
    /// Profiles column `col` of a table (nulls excluded).
    pub fn of_column(table: &Table, col: usize) -> Self {
        let mut map: BTreeMap<ValuePattern, usize> = BTreeMap::new();
        let mut total = 0usize;
        for v in table.column(col) {
            if v.is_null() {
                continue;
            }
            *map.entry(value_pattern(v)).or_insert(0) += 1;
            total += 1;
        }
        let mut counts: Vec<(ValuePattern, usize)> = map.into_iter().collect();
        counts.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0 .0.cmp(&b.0 .0)));
        Self { counts, total }
    }

    /// The dominant pattern, if it covers at least `min_support` of cells.
    pub fn dominant(&self, min_support: f64) -> Option<&ValuePattern> {
        let (p, n) = self.counts.first()?;
        if self.total > 0 && *n as f64 / self.total as f64 >= min_support {
            Some(p)
        } else {
            None
        }
    }

    /// Support (relative frequency) of a given pattern in this profile.
    pub fn support(&self, pattern: &ValuePattern) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        self.counts
            .iter()
            .find(|(p, _)| p == pattern)
            .map_or(0.0, |(_, n)| *n as f64 / self.total as f64)
    }
}

/// Rows of `col` whose pattern deviates from the dominant one (requires the
/// dominant pattern to have at least `min_support`); empty when no pattern
/// dominates.
pub fn pattern_outliers(table: &Table, col: usize, min_support: f64) -> Vec<usize> {
    let profile = PatternProfile::of_column(table, col);
    let Some(dominant) = profile.dominant(min_support) else {
        return Vec::new();
    };
    let dominant = dominant.clone();
    (0..table.n_rows())
        .filter(|&r| {
            let v = table.cell(r, col);
            !v.is_null() && value_pattern(v) != dominant
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rein_data::{ColumnMeta, ColumnType, Schema};

    #[test]
    fn pattern_shapes() {
        assert_eq!(pattern_of("10115").as_str(), "D+");
        assert_eq!(pattern_of("A-12").as_str(), "USD+");
        assert_eq!(pattern_of("Pale Ale").as_str(), "UL+_UL+");
        assert_eq!(pattern_of("").as_str(), "");
        assert_eq!(exact_pattern_of("Ab1 ").as_str(), "ULD_");
    }

    #[test]
    fn value_patterns_for_non_strings() {
        assert_eq!(value_pattern(&Value::Int(123)).as_str(), "D+");
        assert_eq!(value_pattern(&Value::Int(-5)).as_str(), "SD");
        assert_eq!(value_pattern(&Value::Null).as_str(), "");
        assert_eq!(value_pattern(&Value::Bool(true)).as_str(), "L+");
    }

    fn column(vals: Vec<Value>) -> Table {
        let schema = Schema::new(vec![ColumnMeta::new("x", ColumnType::Str)]);
        Table::from_rows(schema, vals.into_iter().map(|v| vec![v]).collect())
    }

    #[test]
    fn profile_finds_dominant_pattern() {
        let t = column(vec![
            Value::str("12345"),
            Value::str("54321"),
            Value::str("99999"),
            Value::str("abc"),
        ]);
        let p = PatternProfile::of_column(&t, 0);
        assert_eq!(p.total, 4);
        assert_eq!(p.dominant(0.7).unwrap().as_str(), "D+");
        assert!(p.dominant(0.9).is_none());
        assert!((p.support(&pattern_of("11")) - 0.75).abs() < 1e-12);
    }

    #[test]
    fn outliers_deviate_from_dominant() {
        let t = column(vec![
            Value::str("12345"),
            Value::str("54321"),
            Value::str("9999"),
            Value::str("ab-1"),
            Value::Null,
        ]);
        // D+ covers 3/4 non-null values.
        let out = pattern_outliers(&t, 0, 0.6);
        assert_eq!(out, vec![3]);
    }

    #[test]
    fn no_dominant_pattern_no_outliers() {
        let t =
            column(vec![Value::str("abc"), Value::str("123"), Value::str("a1"), Value::str("-")]);
        assert!(pattern_outliers(&t, 0, 0.6).is_empty());
    }

    #[test]
    fn empty_column_profile() {
        let t = column(vec![Value::Null, Value::Null]);
        let p = PatternProfile::of_column(&t, 0);
        assert_eq!(p.total, 0);
        assert!(p.dominant(0.5).is_none());
        assert_eq!(p.support(&pattern_of("D")), 0.0);
    }
}

/// OpenRefine's key fingerprint: lowercase alphanumeric tokens, sorted and
/// deduplicated. Variant spellings of one entity share a fingerprint.
pub fn fingerprint(s: &str) -> String {
    let mut tokens: Vec<String> = s
        .to_lowercase()
        .split(|c: char| !c.is_alphanumeric())
        .filter(|t| !t.is_empty())
        .map(str::to_string)
        .collect();
    tokens.sort();
    tokens.dedup();
    tokens.join(" ")
}

#[cfg(test)]
mod fingerprint_tests {
    use super::fingerprint;

    #[test]
    fn fingerprint_normalises() {
        assert_eq!(fingerprint("Pale Ale"), "ale pale");
        assert_eq!(fingerprint("  pale   ALE "), "ale pale");
        assert_eq!(fingerprint("ale-pale"), "ale pale");
        assert_ne!(fingerprint("stout"), fingerprint("porter"));
    }
}
