//! Integration tests for the perf harness: report determinism and the
//! regression gate.

use rein_bench::perf::{comparator_self_test, compare_reports, CompareConfig, Verdict};

/// Two same-seed, same-scale suite runs must be byte-identical after
/// [`rein_bench::perf::BenchReport::normalized`] blanks the explicitly
/// volatile timing/allocation fields: same benchmark ids, cell counts,
/// repeat-vector lengths, span paths and span counts.
///
/// Both runs live in one test so the global span collector is not
/// drained concurrently (this is the only test in the binary touching
/// spans).
#[test]
fn same_seed_runs_are_byte_identical_modulo_timing() {
    let a = rein_bench::perf::run_perf_suite("test", 0.01, 2, 90, &[1, 2]);
    let b = rein_bench::perf::run_perf_suite("test", 0.01, 2, 90, &[1, 2]);
    assert_eq!(
        a.normalized().to_json(),
        b.normalized().to_json(),
        "normalized perf reports of same-seed runs must match byte-for-byte"
    );
    // The volatile fields really were populated before normalization.
    assert!(a.benchmarks.iter().all(|bench| bench.timing.median_ms > 0.0));
    assert!(a.benchmarks.iter().all(|bench| !bench.span_profile.is_empty()));
    // And a run compared against itself never regresses.
    let cmp = compare_reports(&a, &a, &CompareConfig::default());
    assert_eq!(cmp.regressions, 0);
    assert!(cmp.comparisons.iter().all(|c| c.verdict == Verdict::Unchanged));
    // The threads axis was measured at both requested widths plus the
    // serial anchor, with speedups relative to that anchor.
    assert_eq!(a.thread_axis.iter().map(|p| p.threads).collect::<Vec<_>>(), vec![1, 2]);
    for p in &a.thread_axis {
        assert_eq!(p.repeat_ms.len(), 2, "threads={} repeats", p.threads);
        assert!(p.timing.median_ms > 0.0, "threads={} median", p.threads);
        assert!(p.speedup > 0.0, "threads={} speedup", p.threads);
    }
    let serial = a.thread_axis.iter().find(|p| p.threads == 1).expect("serial anchor");
    assert!((serial.speedup - 1.0).abs() < 1e-9, "serial speedup is 1 by construction");
}

/// Reports written before the threads axis existed (no `thread_axis`
/// key) must still load — the field defaults to empty.
#[test]
fn pre_axis_reports_still_parse() {
    let report = rein_bench::perf::BenchReport::load(std::path::Path::new(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../BENCH_0.json"
    )))
    .expect("BENCH_0.json parses");
    assert!(report.thread_axis.is_empty(), "schema-1 report has no measured axis");
    assert!(!report.benchmarks.is_empty());
}

/// The gate's own proof: identical reports compare clean and an injected
/// 2× slowdown is flagged at p < 0.05 — the same check `bench_compare
/// --self-test` runs.
#[test]
fn comparator_self_test_detects_injected_slowdown() {
    let summary = comparator_self_test().expect("comparator self-test must pass");
    assert!(summary.contains("p ="), "summary should report the p-value: {summary}");
}
