//! Property tests for write-ahead-journal recovery (DESIGN.md §6j):
//! arbitrary bit flips, truncations and record duplication must never
//! panic, never silently accept a corrupt record, and always yield a
//! store whose surviving cells are byte-identical to something that
//! was actually committed — with the exact bad stretch quarantined and
//! reported, never repaired in place.

use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};

use proptest::prelude::*;
use rein_store::{QuarantineEntry, Store};

/// Unique scratch root per case: proptest reruns cases concurrently
/// across test binaries, so pid alone is not enough.
fn scratch(name: &str) -> PathBuf {
    static NEXT: AtomicUsize = AtomicUsize::new(0);
    let n = NEXT.fetch_add(1, Ordering::Relaxed);
    let dir =
        std::env::temp_dir().join(format!("rein-store-prop-{name}-{}-{n}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Commits `n` deterministic cells and returns their (key, payload)
/// pairs alongside the store root. Rotation is disabled (huge limit) so
/// the whole journal stays in the tail the tests corrupt.
fn seeded(root: &PathBuf, n: usize) -> Vec<(String, String)> {
    let store = Store::open_with_rotation(root, u64::MAX).expect("open fresh store");
    let mut committed = Vec::new();
    for i in 0..n {
        let key = format!("{i:016x}");
        let payload = format!("payload-{i}:{}", "x".repeat(i * 7 % 41));
        store.commit_one(&key, &format!("detect:d{i}"), &payload, None).expect("commit");
        committed.push((key, payload));
    }
    committed
}

/// Every surviving cell must be byte-identical to a committed one —
/// corruption may lose records (quarantined, truncated) but must never
/// invent or mutate one.
fn assert_survivors_are_committed(store: &Store, committed: &[(String, String)]) {
    for (key, payload) in committed {
        if let Some(cell) = store.lookup(key) {
            assert_eq!(&cell.payload, payload, "surviving cell {key} mutated by recovery");
        }
    }
    let survivors = committed.iter().filter(|(k, _)| store.lookup(k).is_some()).count();
    assert_eq!(store.cell_count(), survivors, "recovery invented cells");
}

/// The in-memory recovery report and the on-disk structured report must
/// agree exactly — quarantine is never silent.
fn assert_quarantine_reported(root: &PathBuf, store: &Store) {
    let recovered = &store.recovery().quarantined;
    if recovered.is_empty() {
        return;
    }
    let path = Store::quarantine_report_path(root);
    let text = std::fs::read_to_string(&path).expect("quarantine report on disk");
    let reported: Vec<QuarantineEntry> = serde_json::from_str(&text).expect("report parses");
    assert_eq!(&reported, recovered, "on-disk quarantine report differs from recovery outcome");
    for entry in recovered {
        assert!(
            root.join(&entry.quarantined_as).exists(),
            "quarantined blob {} missing",
            entry.quarantined_as
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// A single flipped bit anywhere in the journal: recovery either
    /// keeps every record (flip landed in already-truncated slack — not
    /// possible here, so in practice it always quarantines) or
    /// truncates at the poisoned record; it never panics and never
    /// accepts mutated bytes.
    #[test]
    fn bit_flip_recovers_without_panic_or_silent_acceptance(
        n in 1usize..12,
        pos in 0usize..10_000,
        bit in 0u32..8,
    ) {
        let root = scratch("flip");
        let committed = seeded(&root, n);
        let journal = root.join("journal.wal");
        let mut bytes = std::fs::read(&journal).expect("journal bytes");
        let at = pos % bytes.len();
        bytes[at] ^= 1 << bit;
        std::fs::write(&journal, &bytes).expect("write corrupted journal");

        let store = Store::open_with_rotation(&root, u64::MAX).expect("recovery must not fail");
        assert_survivors_are_committed(&store, &committed);
        assert_quarantine_reported(&root, &store);
        // The flip changed real bytes, so either some record was lost
        // (and quarantined) or the flip was absorbed — absorption would
        // mean a checksum collision, which must not silently happen.
        if store.cell_count() == committed.len() {
            prop_assert!(
                store.recovery().quarantined.is_empty(),
                "full survival must not coexist with quarantine"
            );
            // Full survival with no quarantine is only legal if the
            // reread bytes equal a valid journal — i.e. recovery
            // truncated the tail back to a good prefix. Re-opening once
            // more must be stable.
            let again = Store::open_with_rotation(&root, u64::MAX).expect("stable reopen");
            prop_assert_eq!(again.cell_count(), store.cell_count());
        }
        let _ = std::fs::remove_dir_all(&root);
    }

    /// Truncating the journal at any byte: the good prefix replays, the
    /// torn tail (if the cut lands mid-record) quarantines, and a
    /// second open finds a fully valid journal.
    #[test]
    fn truncation_keeps_good_prefix_and_is_stable(
        n in 1usize..12,
        cut in 0usize..10_000,
    ) {
        let root = scratch("trunc");
        let committed = seeded(&root, n);
        let journal = root.join("journal.wal");
        let bytes = std::fs::read(&journal).expect("journal bytes");
        let keep = cut % (bytes.len() + 1);
        std::fs::write(&journal, &bytes[..keep]).expect("truncate journal");

        let store = Store::open_with_rotation(&root, u64::MAX).expect("recovery must not fail");
        assert_survivors_are_committed(&store, &committed);
        assert_quarantine_reported(&root, &store);
        // Survivors are exactly a prefix of the commit order: record i
        // survives only if every earlier record does.
        let alive: Vec<bool> =
            committed.iter().map(|(k, _)| store.lookup(k).is_some()).collect();
        let prefix_len = alive.iter().take_while(|a| **a).count();
        prop_assert!(
            alive.iter().skip(prefix_len).all(|a| !a),
            "truncation must lose a suffix, not arbitrary records: {alive:?}"
        );
        let again = Store::open_with_rotation(&root, u64::MAX).expect("stable reopen");
        prop_assert_eq!(again.cell_count(), store.cell_count());
        prop_assert!(again.recovery().quarantined.is_empty(), "second open must be clean");
        let _ = std::fs::remove_dir_all(&root);
    }

    /// Re-appending a stretch of already-committed frames (a crashed
    /// writer's replayed batch): duplicates deduplicate last-wins with
    /// no quarantine and no payload drift.
    #[test]
    fn duplicated_records_deduplicate_last_wins(
        n in 1usize..12,
        from in 0usize..10_000,
    ) {
        let root = scratch("dup");
        let committed = seeded(&root, n);
        let journal = root.join("journal.wal");
        let mut bytes = std::fs::read(&journal).expect("journal bytes");
        // Duplicate every frame from a record boundary on. Boundaries
        // are where scan stops cleanly; re-derive them by walking the
        // frame headers like recovery does.
        let mut boundaries = vec![8usize];
        let mut offset = 8usize;
        while offset + 12 <= bytes.len() {
            let len = u32::from_le_bytes(bytes[offset..offset + 4].try_into().unwrap()) as usize;
            offset += 12 + len;
            if offset <= bytes.len() {
                boundaries.push(offset);
            }
        }
        let start = boundaries[from % boundaries.len()];
        let tail = bytes[start..].to_vec();
        bytes.extend_from_slice(&tail);
        std::fs::write(&journal, &bytes).expect("write duplicated journal");

        let store = Store::open_with_rotation(&root, u64::MAX).expect("recovery must not fail");
        prop_assert_eq!(store.cell_count(), committed.len());
        for (key, payload) in &committed {
            prop_assert_eq!(&store.lookup(key).expect("cell survives").payload, payload);
        }
        prop_assert!(
            store.recovery().quarantined.is_empty(),
            "duplicated valid frames are not corruption"
        );
        let _ = std::fs::remove_dir_all(&root);
    }
}
