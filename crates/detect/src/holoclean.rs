//! HoloClean's detection stage (Rekatsinas et al.): cells participating in
//! denial-constraint violations (FDs compile to binary DCs) plus explicit
//! NULL cells, the two "qualitative + quantitative" signals HoloClean
//! grounds its factor graph on.

use rein_constraints::fd;
use rein_data::CellMask;

use crate::context::{DetectContext, Detector};

/// HoloClean detector (detection stage only; the repair stage lives in
/// `rein-repair`).
#[derive(Debug, Default, Clone)]
pub struct HoloCleanDetect;

impl Detector for HoloCleanDetect {
    fn name(&self) -> &'static str {
        "holoclean"
    }

    fn detect(&self, ctx: &DetectContext<'_>) -> CellMask {
        let _span = rein_telemetry::span("detect:holoclean");
        let t = ctx.dirty;
        let mut mask = CellMask::new(t.n_rows(), t.n_cols());
        // FDs ground to binary DCs, but HoloClean's statistical model prunes
        // the grounding with quantitative signals — the cells that survive
        // are the minority (majority-contradicting) cells of each violating
        // group, which is exactly the majority-vote violation scan.
        mask.union_with(&fd::all_fd_violations(t, ctx.fds));
        // Explicit DCs.
        for dc in ctx.dcs {
            mask.union_with(&dc.violations(t));
        }
        // NULL cells (HoloClean treats them as unresolved variables).
        for c in 0..t.n_cols() {
            for (r, v) in t.column(c).iter().enumerate() {
                if v.is_null() {
                    mask.set(r, c, true);
                }
            }
        }
        mask
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rein_constraints::fd::FunctionalDependency;
    use rein_data::{ColumnMeta, ColumnType, Schema, Table, Value};

    fn table() -> Table {
        let schema = Schema::new(vec![
            ColumnMeta::new("zip", ColumnType::Str),
            ColumnMeta::new("city", ColumnType::Str),
        ]);
        let mut rows: Vec<Vec<Value>> = (0..30)
            .map(|i| {
                vec![Value::str(["10115", "80331"][i % 2]), Value::str(["Berlin", "Munich"][i % 2])]
            })
            .collect();
        rows[4][1] = Value::str("Hamburg"); // DC violation
        rows[8][0] = Value::Null;
        Table::from_rows(schema, rows)
    }

    #[test]
    fn dc_violations_and_nulls_are_flagged() {
        let t = table();
        let fds = [FunctionalDependency::new([0], 1)];
        let ctx = DetectContext { fds: &fds, ..DetectContext::bare(&t) };
        let m = HoloCleanDetect.detect(&ctx);
        assert!(m.get(4, 1));
        assert!(m.get(8, 0));
    }

    #[test]
    fn fewer_rules_means_fewer_detections() {
        // The paper: HoloClean's F1 drops when the rule set shrinks.
        let t = table();
        let fds = [FunctionalDependency::new([0], 1)];
        let with_rules = {
            let ctx = DetectContext { fds: &fds, ..DetectContext::bare(&t) };
            HoloCleanDetect.detect(&ctx).count()
        };
        let without = HoloCleanDetect.detect(&DetectContext::bare(&t)).count();
        assert!(with_rules > without);
    }
}
