//! Rule/cluster-driven repairers: HoloClean's repair stage and the
//! OpenRefine canonicalisation transform.

use std::collections::BTreeMap;

use rein_data::{CellMask, Table, Value};

use crate::context::{RepairContext, RepairOutcome, Repairer};

/// HoloClean repair (Rekatsinas et al.), reduced to its inference core:
/// candidate values for each detected cell come from (a) FD-group majority
/// voting and (b) co-occurrence statistics with the row's other attributes;
/// candidates are scored by a pseudo-likelihood (weighted vote mass) and
/// the argmax wins. Numeric cells without rule evidence fall back to the
/// trusted-column mean, NULL-safe.
#[derive(Debug, Default, Clone)]
pub struct HoloCleanRepair;

impl HoloCleanRepair {
    /// Co-occurrence score of candidate `cand` for cell `(row, col)`:
    /// how often `cand` appears in `col` among rows agreeing with `row` on
    /// another attribute, aggregated over attributes.
    fn cooccurrence_votes(
        t: &Table,
        detections: &CellMask,
        row: usize,
        col: usize,
    ) -> BTreeMap<String, f64> {
        let mut votes: BTreeMap<String, f64> = BTreeMap::new();
        for other in 0..t.n_cols() {
            if other == col || detections.get(row, other) {
                continue;
            }
            let anchor = t.cell(row, other);
            if anchor.is_null() {
                continue;
            }
            let mut local: BTreeMap<String, usize> = BTreeMap::new();
            let mut group = 0usize;
            for r in 0..t.n_rows() {
                if r == row || detections.get(r, col) {
                    continue;
                }
                if t.cell(r, other) == anchor {
                    group += 1;
                    let v = t.cell(r, col);
                    if !v.is_null() {
                        *local.entry(v.as_key().into_owned()).or_insert(0) += 1;
                    }
                }
            }
            if group == 0 {
                continue;
            }
            // Attribute weight: discriminative anchors (small groups) count
            // more, mirroring HoloClean's learned feature weights.
            let weight = 1.0 / (group as f64).sqrt();
            for (cand, n) in local {
                *votes.entry(cand).or_insert(0.0) += weight * n as f64;
            }
        }
        votes
    }
}

impl Repairer for HoloCleanRepair {
    fn name(&self) -> &'static str {
        "holoclean"
    }

    fn repair(&self, ctx: &RepairContext<'_>) -> RepairOutcome {
        let _span = rein_telemetry::span("repair:rulebased");
        let dirty = ctx.dirty;
        let det = ctx.detections;
        let mut table = dirty.clone();
        let mut repaired = CellMask::new(dirty.n_rows(), dirty.n_cols());

        // Pass 1 — FD-majority candidates under the minimal-repair
        // principle: when several detected cells of one row carry FD
        // candidates (e.g. inverse FDs zip→city and city→zip both firing),
        // only the best-supported one is applied — repairing one side
        // usually resolves the sibling violation, and changing both would
        // overshoot. Candidates whose determinant cells are themselves
        // suspect rank below trusted ones.
        // (column, value, (lhs_trusted, support, support_ratio)) per row.
        type RowCandidates = Vec<(usize, Value, (bool, usize, f64))>;
        let mut per_row: BTreeMap<usize, RowCandidates> = BTreeMap::new();
        for f in ctx.fds {
            for cand in rein_constraints::fd::repair_candidates_with_support(dirty, f) {
                if !det.get(cand.row, f.rhs) {
                    continue;
                }
                let lhs_trusted = !f.lhs.iter().any(|&c| det.get(cand.row, c));
                let ratio = cand.support as f64 / cand.group_size.max(1) as f64;
                per_row.entry(cand.row).or_default().push((
                    f.rhs,
                    cand.value,
                    (lhs_trusted, cand.support, ratio),
                ));
            }
        }
        for (row, mut cands) in per_row {
            cands.sort_by(|a, b| {
                b.2 .0
                    .cmp(&a.2 .0)
                    .then(b.2 .1.cmp(&a.2 .1))
                    .then(b.2 .2.total_cmp(&a.2 .2))
                    .then(a.0.cmp(&b.0))
            });
            // audit:allow(panic, cands checked non-empty above)
            let (col, value, _) = cands.into_iter().next().expect("non-empty");
            table.set_cell(row, col, value);
            repaired.set(row, col, true);
        }

        // Recompute FD candidates on the partially repaired table: repairs
        // from pass 1 resolve violations, so stale candidates (derived from
        // now-fixed determinants) vanish — the sequential counterpart of
        // HoloClean's joint inference over the factor graph.
        let mut fd_candidates: BTreeMap<(usize, usize), Value> = BTreeMap::new();
        for f in ctx.fds {
            for (row, value) in rein_constraints::fd::repair_candidates(&table, f) {
                fd_candidates.insert((row, f.rhs), value);
            }
        }

        // Pass 2 — remaining cells: fresh FD candidates, then co-occurrence
        // voting, then the continuous-column mean fallback.
        let remaining: Vec<rein_data::CellRef> =
            det.iter().filter(|c| !repaired.get(c.row, c.col)).collect();
        for cell in remaining {
            if let Some(v) = fd_candidates.get(&(cell.row, cell.col)) {
                table.set_cell(cell.row, cell.col, v.clone());
                repaired.set(cell.row, cell.col, true);
                continue;
            }
            let votes = Self::cooccurrence_votes(&table, det, cell.row, cell.col);
            let best = votes
                .iter()
                .max_by(|a, b| a.1.total_cmp(b.1).then_with(|| b.0.cmp(a.0)))
                .map(|(v, _)| v.clone());
            match best {
                Some(v) => {
                    table.set_cell(cell.row, cell.col, Value::parse(&v));
                    repaired.set(cell.row, cell.col, true);
                }
                None => {
                    // Numeric fallback (continuous columns only — means are
                    // meaningless for id-like integer codes): trusted mean.
                    if dirty.observed_type(cell.col) != rein_data::ColumnType::Float {
                        continue;
                    }
                    let trusted: Vec<f64> = (0..dirty.n_rows())
                        .filter(|&r| !det.get(r, cell.col))
                        .filter_map(|r| dirty.cell(r, cell.col).as_f64())
                        .collect();
                    if !trusted.is_empty() {
                        let mean = trusted.iter().sum::<f64>() / trusted.len() as f64;
                        table.set_cell(cell.row, cell.col, Value::float(mean));
                        repaired.set(cell.row, cell.col, true);
                    }
                }
            }
        }
        RepairOutcome::repaired(table, repaired)
    }
}

/// OpenRefine repair: replaces detected cells whose cluster has a canonical
/// spelling with that spelling (GREL-style transform).
#[derive(Debug, Default, Clone)]
pub struct OpenRefineRepair;

impl Repairer for OpenRefineRepair {
    fn name(&self) -> &'static str {
        "openrefine"
    }

    fn repair(&self, ctx: &RepairContext<'_>) -> RepairOutcome {
        let _span = rein_telemetry::span("repair:rulebased");
        let dirty = ctx.dirty;
        let det = ctx.detections;
        let mut table = dirty.clone();
        let mut repaired = CellMask::new(dirty.n_rows(), dirty.n_cols());
        for c in 0..dirty.n_cols() {
            if det.count_col(c) == 0 {
                continue;
            }
            let map = rein_detect::openrefine::canonical_map(dirty, c);
            if map.is_empty() {
                continue;
            }
            for r in 0..dirty.n_rows() {
                rein_guard::checkpoint(1);
                if !det.get(r, c) {
                    continue;
                }
                if let Value::Str(s) = dirty.cell(r, c) {
                    let fp = rein_constraints::pattern::fingerprint(s);
                    if let Some(canon) = map.get(&fp) {
                        if canon != s {
                            table.set_cell(r, c, Value::str(canon.clone()));
                            repaired.set(r, c, true);
                        }
                    }
                }
            }
        }
        RepairOutcome::repaired(table, repaired)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rein_constraints::fd::FunctionalDependency;
    use rein_data::diff::diff_mask;
    use rein_data::{ColumnMeta, ColumnType, Schema};

    fn fd_dataset() -> (Table, Table, CellMask) {
        let schema = Schema::new(vec![
            ColumnMeta::new("zip", ColumnType::Str),
            ColumnMeta::new("city", ColumnType::Str),
        ]);
        let clean = Table::from_rows(
            schema,
            (0..40)
                .map(|i| {
                    vec![
                        Value::str(["10115", "80331"][i % 2]),
                        Value::str(["Berlin", "Munich"][i % 2]),
                    ]
                })
                .collect(),
        );
        let mut dirty = clean.clone();
        dirty.set_cell(4, 1, Value::str("Hamburg"));
        dirty.set_cell(9, 1, Value::str("Potsdam"));
        let det = diff_mask(&clean, &dirty);
        (clean, dirty, det)
    }

    #[test]
    fn holoclean_repairs_fd_violations_correctly() {
        let (clean, dirty, det) = fd_dataset();
        let fds = [FunctionalDependency::new([0], 1)];
        let ctx = RepairContext { fds: &fds, ..RepairContext::new(&dirty, &det) };
        let out = HoloCleanRepair.repair(&ctx);
        let t = out.table().unwrap();
        assert_eq!(t.cell(4, 1), clean.cell(4, 1));
        assert_eq!(t.cell(9, 1), clean.cell(9, 1));
    }

    #[test]
    fn holoclean_uses_cooccurrence_without_fds() {
        let (clean, dirty, det) = fd_dataset();
        let out = HoloCleanRepair.repair(&RepairContext::new(&dirty, &det));
        let t = out.table().unwrap();
        // zip co-occurrence still votes for the right city.
        assert_eq!(t.cell(4, 1), clean.cell(4, 1));
    }

    #[test]
    fn holoclean_numeric_fallback() {
        let schema = Schema::new(vec![ColumnMeta::new("x", ColumnType::Float)]);
        let mut dirty =
            Table::from_rows(schema, (0..20).map(|i| vec![Value::Float((i % 5) as f64)]).collect());
        dirty.set_cell(3, 0, Value::Float(900.0));
        let mut det = CellMask::new(20, 1);
        det.set(3, 0, true);
        let out = HoloCleanRepair.repair(&RepairContext::new(&dirty, &det));
        let v = out.table().unwrap().cell(3, 0).as_f64().unwrap();
        assert!(v < 10.0, "fallback {v}");
    }

    #[test]
    fn openrefine_canonicalises_detected_variants() {
        let schema = Schema::new(vec![ColumnMeta::new("style", ColumnType::Str)]);
        let mut dirty =
            Table::from_rows(schema, (0..20).map(|_| vec![Value::str("pale ale")]).collect());
        dirty.set_cell(3, 0, Value::str("PALE ALE"));
        dirty.set_cell(7, 0, Value::str(" pale ale"));
        let mut det = CellMask::new(20, 1);
        det.set(3, 0, true);
        det.set(7, 0, true);
        let out = OpenRefineRepair.repair(&RepairContext::new(&dirty, &det));
        let t = out.table().unwrap();
        assert_eq!(t.cell(3, 0), &Value::str("pale ale"));
        assert_eq!(t.cell(7, 0), &Value::str("pale ale"));
    }

    #[test]
    fn openrefine_leaves_unclustered_cells_alone() {
        let schema = Schema::new(vec![ColumnMeta::new("c", ColumnType::Str)]);
        let dirty =
            Table::from_rows(schema, (0..10).map(|i| vec![Value::str(format!("v{i}"))]).collect());
        let mut det = CellMask::new(10, 1);
        det.set(2, 0, true);
        let out = OpenRefineRepair.repair(&RepairContext::new(&dirty, &det));
        match out {
            RepairOutcome::Repaired { table, repaired_cells, .. } => {
                assert_eq!(&table, &dirty);
                assert!(repaired_cells.is_empty());
            }
            _ => panic!(),
        }
    }
}
