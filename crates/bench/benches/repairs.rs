//! Criterion runtime benchmarks for the repair methods (the runtime
//! panels of Figures 4b/4d and 5b/5f).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rein_datasets::{DatasetId, Params};
use rein_repair::{RepairContext, RepairKind};

fn bench_repairs(c: &mut Criterion) {
    let ds = DatasetId::Beers.generate(&Params::scaled(0.1, 1));
    let mut group = c.benchmark_group("repairs_beers");
    group.sample_size(10);
    for kind in [
        RepairKind::GroundTruth,
        RepairKind::Delete,
        RepairKind::ImputeMeanMode,
        RepairKind::ImputeMedianMode,
        RepairKind::ImputeModeMode,
        RepairKind::MissMix,
        RepairKind::DataWigMix,
        RepairKind::MissSep,
        RepairKind::DtMiss,
        RepairKind::BayesMiss,
        RepairKind::HoloClean,
        RepairKind::OpenRefine,
        RepairKind::Baran,
    ] {
        group.bench_with_input(BenchmarkId::from_parameter(kind.name()), &kind, |b, &kind| {
            let repairer = kind.build();
            b.iter(|| {
                let ctx = RepairContext {
                    clean: Some(&ds.clean),
                    fds: &ds.fds,
                    label_col: ds.clean.schema().label_index(),
                    ..RepairContext::new(&ds.dirty, &ds.mask)
                };
                repairer.repair(&ctx)
            });
        });
    }
    group.finish();

    // ML-oriented methods on a classification dataset.
    let bc = DatasetId::BreastCancer.generate(&Params::scaled(0.3, 2));
    let mut group = c.benchmark_group("repairs_ml_oriented");
    group.sample_size(10);
    for kind in [RepairKind::ActiveClean, RepairKind::BoostClean, RepairKind::CpClean] {
        group.bench_with_input(BenchmarkId::from_parameter(kind.name()), &kind, |b, &kind| {
            let repairer = kind.build();
            b.iter(|| {
                let ctx = RepairContext {
                    clean: Some(&bc.clean),
                    label_col: bc.clean.schema().label_index(),
                    label_budget: 20,
                    ..RepairContext::new(&bc.dirty, &bc.mask)
                };
                repairer.repair(&ctx)
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_repairs);
criterion_main!(benches);
