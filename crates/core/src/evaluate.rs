//! The evaluation module: runs detectors and repairers with their proper
//! signals, measures quality and runtime, and trains/evaluates ML models
//! on data versions under the S1–S5 scenarios.

use std::time::Duration;

use rein_data::rng::derive_seed;
use rein_data::{CellMask, Table};
use rein_datasets::GeneratedDataset;
use rein_detect::{DetectContext, DetectorKind, KnowledgeBase, Oracle};
use rein_guard::{GuardPolicy, GuardSpec, Phase, StrategyFailure};
use rein_ml::encode::{select_matrix_rows, Encoder, LabelMap};
use rein_ml::model::{ClassifierKind, ClustererKind, RegressorKind};
use rein_repair::{RepairContext, RepairKind, RepairOutcome, TrainedPipeline};
use rein_stats::repair_quality::RmseReport;
use rein_stats::{evaluate_detection, DetectionQuality};

use crate::scenario::{Scenario, VersionRole};

/// Default labelling budget handed to ML-supported detectors.
pub const DEFAULT_LABEL_BUDGET: usize = 100;

/// Holds the owned signals a [`DetectContext`] borrows.
pub struct DetectorHarness {
    kb: KnowledgeBase,
    oracle: Oracle,
    label_col: Option<usize>,
    budget: usize,
    seed: u64,
    policy: GuardPolicy,
}

impl DetectorHarness {
    /// Builds the harness for a dataset: KB simulated from the ground
    /// truth, oracle backed by the exact error mask. Supervision uses the
    /// default [`GuardPolicy`]; see [`DetectorHarness::with_policy`].
    pub fn new(ds: &GeneratedDataset, budget: usize, seed: u64) -> Self {
        Self {
            kb: KnowledgeBase::from_reference(&ds.clean),
            oracle: Oracle::new(ds.mask.clone()),
            label_col: ds.clean.schema().label_index(),
            budget,
            seed,
            policy: GuardPolicy::default(),
        }
    }

    /// Replaces the supervision policy (chaos injection, retry and
    /// budget knobs).
    pub fn with_policy(mut self, policy: GuardPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// The detect context over a dataset's dirty table.
    pub fn context<'a>(&'a self, ds: &'a GeneratedDataset) -> DetectContext<'a> {
        self.context_seeded(ds, self.seed)
    }

    /// The detect context with an explicit seed (guarded retries derive
    /// fresh seeds per attempt).
    fn context_seeded<'a>(&'a self, ds: &'a GeneratedDataset, seed: u64) -> DetectContext<'a> {
        DetectContext {
            dirty: &ds.dirty,
            fds: &ds.fds,
            dcs: &[],
            kb: Some(&self.kb),
            key_columns: &ds.key_columns,
            oracle: Some(&self.oracle),
            label_col: self.label_col,
            labeling_budget: self.budget,
            seed,
        }
    }

    /// Runs one detector under guard, returning its mask, quality and
    /// runtime. The detection runs inside `rein_guard::run`: a panicking
    /// or budget-exhausted detector degrades to an empty mask with a
    /// populated [`DetectorRun::failure`] instead of aborting the run.
    /// The guard opens the `detect:<name>` telemetry span; the reported
    /// runtime is that span's duration.
    pub fn run(&self, ds: &GeneratedDataset, kind: DetectorKind) -> DetectorRun {
        let rows = ds.dirty.n_rows();
        let cols = ds.dirty.n_cols();
        let spec = GuardSpec {
            phase: Phase::Detect,
            strategy: kind.name(),
            dataset: &ds.info.name,
            scope: "",
            cells: (rows * cols) as u64,
            seed: self.seed,
        };
        let report = rein_guard::run(
            &spec,
            &self.policy,
            |attempt_seed| {
                let ctx = self.context_seeded(ds, attempt_seed);
                kind.build().detect(&ctx)
            },
            |mask| {
                if mask.rows() == rows && mask.cols() == cols {
                    Ok(())
                } else {
                    Err(format!(
                        "mask shape {}x{} does not match table {rows}x{cols}",
                        mask.rows(),
                        mask.cols()
                    ))
                }
            },
            |mask| *mask = CellMask::new(0, 0),
        );
        rein_telemetry::counter("detector_invocations").incr();
        rein_telemetry::counter("cells_scanned").add((rows * cols) as u64);
        rein_telemetry::histogram("detector_runtime").record(report.elapsed);
        match report.outcome {
            Ok(mask) => {
                let quality = evaluate_detection(&mask, &ds.mask);
                DetectorRun { kind, mask, quality, runtime: report.elapsed, failure: None }
            }
            Err(failure) => {
                // Degrade to "detected nothing": the cell stays in the
                // grid with zero recall rather than silently vanishing.
                let mask = CellMask::new(rows, cols);
                let quality = evaluate_detection(&mask, &ds.mask);
                DetectorRun { kind, mask, quality, runtime: report.elapsed, failure: Some(failure) }
            }
        }
    }
}

/// Runs one detector under guard over an explicitly-built context (the
/// ablation binaries construct bespoke contexts instead of using the
/// harness). Returns the mask or the structured failure, plus the
/// guarded runtime.
pub fn detect_with_context(
    kind: DetectorKind,
    ctx: &DetectContext<'_>,
    dataset: &str,
    policy: &GuardPolicy,
) -> (Result<CellMask, StrategyFailure>, Duration) {
    let rows = ctx.dirty.n_rows();
    let cols = ctx.dirty.n_cols();
    let spec = GuardSpec {
        phase: Phase::Detect,
        strategy: kind.name(),
        dataset,
        scope: "",
        cells: (rows * cols) as u64,
        seed: ctx.seed,
    };
    let report = rein_guard::run(
        &spec,
        policy,
        |attempt_seed| {
            let attempt_ctx = DetectContext {
                dirty: ctx.dirty,
                fds: ctx.fds,
                dcs: ctx.dcs,
                kb: ctx.kb,
                key_columns: ctx.key_columns,
                oracle: ctx.oracle,
                label_col: ctx.label_col,
                labeling_budget: ctx.labeling_budget,
                seed: attempt_seed,
            };
            kind.build().detect(&attempt_ctx)
        },
        |mask| {
            if mask.rows() == rows && mask.cols() == cols {
                Ok(())
            } else {
                Err(format!(
                    "mask shape {}x{} does not match table {rows}x{cols}",
                    mask.rows(),
                    mask.cols()
                ))
            }
        },
        |mask| *mask = CellMask::new(0, 0),
    );
    (report.outcome, report.elapsed)
}

/// One detector execution.
pub struct DetectorRun {
    /// Which detector ran.
    pub kind: DetectorKind,
    /// Its detection mask (empty when the detector degraded).
    pub mask: CellMask,
    /// Cell-level quality vs the ground truth.
    pub quality: DetectionQuality,
    /// Wall-clock runtime.
    pub runtime: Duration,
    /// The structured failure when the detector degraded under guard.
    pub failure: Option<StrategyFailure>,
}

/// Rebuilds a [`DetectorRun`] from a stored detection mask (a durable
/// store hit): quality is recomputed against the ground truth — it is a
/// pure function of the mask, so the replayed run is observably
/// equivalent to the original except for `runtime`, which is zero
/// because nothing executed. A replayed run never carries a failure:
/// the store only ever holds the mask the original run committed, and
/// a degraded run's empty mask replays as exactly that empty mask.
pub fn replay_detector_run(
    ds: &GeneratedDataset,
    kind: DetectorKind,
    mask: CellMask,
) -> DetectorRun {
    let quality = evaluate_detection(&mask, &ds.mask);
    DetectorRun { kind, mask, quality, runtime: Duration::ZERO, failure: None }
}

/// A data version aligned to the clean-row space: `row_map[i]` is the
/// clean-row index of version row `i` (indices `>= clean.n_rows()` denote
/// injected duplicate rows).
#[derive(Debug, Clone)]
pub struct VersionTable {
    /// The data version.
    pub table: Table,
    /// Version-row → clean-row mapping.
    pub row_map: Vec<usize>,
}

impl VersionTable {
    /// Identity-mapped version (dirty table or ground truth).
    pub fn identity(table: Table) -> Self {
        let row_map = (0..table.n_rows()).collect();
        Self { table, row_map }
    }

    /// Content identity of this version: the ledger's 16-hex FNV-1a key
    /// over the CSV bytes and the row map. This is the
    /// `dataset_version` component of a
    /// [`crate::cache_key::CellKey`] — two versions with identical
    /// bytes share an identity no matter which repair produced them.
    pub fn content_identity(&self) -> String {
        let payload = format!("{}\n{:?}", rein_data::csv::write_str(&self.table), self.row_map);
        format!("v:{}", rein_ledger::content_key(&payload))
    }
}

/// Content identity of a bare table as an identity-mapped version —
/// byte-equal to `VersionTable::identity(table.clone()).content_identity()`
/// without cloning the table. The controller uses this for the dirty
/// table's identity when deriving detection/repair cell trace ids.
pub fn table_identity(table: &Table) -> String {
    let row_map: Vec<usize> = (0..table.n_rows()).collect();
    let payload = format!("{}\n{:?}", rein_data::csv::write_str(table), row_map);
    format!("v:{}", rein_ledger::content_key(&payload))
}

/// One repair execution: either a repaired version or a trained pipeline.
pub struct RepairRun {
    /// Which repairer ran.
    pub kind: RepairKind,
    /// Repaired version (generic methods).
    pub version: Option<VersionTable>,
    /// Cells the repairer modified.
    pub repaired_cells: Option<CellMask>,
    /// Trained pipeline (ML-oriented methods).
    pub pipeline: Option<TrainedPipeline>,
    /// Wall-clock runtime.
    pub runtime: Duration,
    /// The structured failure when the repairer degraded under guard.
    pub failure: Option<StrategyFailure>,
}

/// Runs one repairer on the detections of a detector with the default
/// supervision policy.
pub fn run_repair(
    ds: &GeneratedDataset,
    detections: &CellMask,
    kind: RepairKind,
    seed: u64,
) -> RepairRun {
    run_repair_guarded(ds, detections, kind, seed, "", &GuardPolicy::default())
}

/// Runs one repairer under guard. `detector_scope` names the detector
/// whose mask feeds this repair so chaos rules (and failure records) can
/// target a single grid cell; pass `""` outside the grid. A panicking or
/// budget-exhausted repairer degrades to a no-op version (the dirty
/// table, identity row map, zero repaired cells) with a populated
/// [`RepairRun::failure`].
pub fn run_repair_guarded(
    ds: &GeneratedDataset,
    detections: &CellMask,
    kind: RepairKind,
    seed: u64,
    detector_scope: &str,
    policy: &GuardPolicy,
) -> RepairRun {
    let spec = GuardSpec {
        phase: Phase::Repair,
        strategy: kind.name(),
        dataset: &ds.info.name,
        scope: detector_scope,
        cells: detections.count() as u64,
        seed,
    };
    let report = rein_guard::run(
        &spec,
        policy,
        |attempt_seed| {
            let ctx = RepairContext {
                dirty: &ds.dirty,
                detections,
                clean: Some(&ds.clean),
                fds: &ds.fds,
                label_col: ds.clean.schema().label_index(),
                label_budget: 50,
                seed: attempt_seed,
            };
            kind.build().repair(&ctx)
        },
        |outcome| match outcome {
            RepairOutcome::Repaired { table, row_map, .. } => {
                if table.n_rows() != row_map.len() {
                    Err(format!(
                        "row map length {} does not match repaired table rows {}",
                        row_map.len(),
                        table.n_rows()
                    ))
                } else if table.n_cols() != ds.dirty.n_cols() {
                    Err(format!(
                        "repaired table has {} columns, dirty table has {}",
                        table.n_cols(),
                        ds.dirty.n_cols()
                    ))
                } else {
                    Ok(())
                }
            }
            RepairOutcome::Model(_) => Ok(()),
        },
        |outcome| {
            if let RepairOutcome::Repaired { row_map, .. } = outcome {
                // Shear the row map so the validator rejects the output.
                row_map.clear();
            }
        },
    );
    rein_telemetry::counter("repair_applications").incr();
    rein_telemetry::histogram("repair_runtime").record(report.elapsed);
    let runtime = report.elapsed;
    match report.outcome {
        Ok(RepairOutcome::Repaired { table, repaired_cells, row_map }) => {
            rein_telemetry::counter("cells_repaired").add(repaired_cells.count() as u64);
            RepairRun {
                kind,
                version: Some(VersionTable { table, row_map }),
                repaired_cells: Some(repaired_cells),
                pipeline: None,
                runtime,
                failure: None,
            }
        }
        Ok(RepairOutcome::Model(p)) => RepairRun {
            kind,
            version: None,
            repaired_cells: None,
            pipeline: Some(p),
            runtime,
            failure: None,
        },
        Err(failure) => {
            // Degrade to "repaired nothing": the version is the dirty
            // table unchanged so downstream evaluation still runs.
            let rows = ds.dirty.n_rows();
            let cols = ds.dirty.n_cols();
            RepairRun {
                kind,
                version: Some(VersionTable::identity(ds.dirty.clone())),
                repaired_cells: Some(CellMask::new(rows, cols)),
                pipeline: None,
                runtime,
                failure: Some(failure),
            }
        }
    }
}

/// Categorical repair quality of a repaired version (paper §6.1).
pub fn repair_quality_categorical(
    ds: &GeneratedDataset,
    run: &RepairRun,
) -> Option<DetectionQuality> {
    let version = run.version.as_ref()?;
    let repaired_cells = run.repaired_cells.as_ref()?;
    // Quality is defined on same-shape repairs; row-dropping methods
    // (Delete) have no cell-wise repair accuracy.
    if version.table.n_rows() != ds.dirty.n_rows() {
        return None;
    }
    let cols = ds.clean.schema().categorical_indices();
    Some(rein_stats::categorical_repair_quality(
        &ds.dirty,
        &version.table,
        &ds.clean,
        repaired_cells,
        &ds.mask,
        &cols,
    ))
}

/// Numerical RMSE of a repaired version over the actually-erroneous cells,
/// plus the dirty baseline (the red dashed line of Figure 5).
pub fn repair_quality_numerical(
    ds: &GeneratedDataset,
    run: &RepairRun,
) -> Option<(RmseReport, RmseReport)> {
    let version = run.version.as_ref()?;
    if version.table.n_rows() != ds.dirty.n_rows() {
        return None;
    }
    let cols = ds.clean.schema().numeric_indices();
    let repaired = rein_stats::numerical_rmse(&version.table, &ds.clean, &ds.mask, &cols);
    let dirty = rein_stats::numerical_rmse(&ds.dirty, &ds.clean, &ds.mask, &cols);
    Some((repaired, dirty))
}

/// Resolves the `(train, test)` tables for a scenario given the version
/// under evaluation. Splitting happens in the clean-row space so train and
/// test never share an underlying record even across versions; injected
/// duplicate rows always go to the training side.
pub fn scenario_split(
    scenario: Scenario,
    ds: &GeneratedDataset,
    version: &VersionTable,
    test_fraction: f64,
    seed: u64,
) -> (Table, Table) {
    let n_clean = ds.clean.n_rows();
    let split = rein_data::split::train_test_indices(n_clean, test_fraction, seed);
    let in_test: Vec<bool> = {
        let mut v = vec![false; n_clean];
        for &r in &split.test {
            v[r] = true;
        }
        v
    };
    let rows_of = |role: VersionRole, want_test: bool| -> Vec<usize> {
        match role {
            VersionRole::GroundTruth => {
                if want_test {
                    split.test.clone()
                } else {
                    split.train.clone()
                }
            }
            VersionRole::Version => (0..version.table.n_rows())
                .filter(|&r| {
                    let orig = version.row_map[r];
                    if orig >= n_clean {
                        !want_test // duplicates train only
                    } else {
                        in_test[orig] == want_test
                    }
                })
                .collect(),
        }
    };
    let (train_role, test_role) = scenario.roles();
    let train = match train_role {
        VersionRole::GroundTruth => ds.clean.select_rows(&rows_of(train_role, false)),
        VersionRole::Version => version.table.select_rows(&rows_of(train_role, false)),
    };
    let test = match test_role {
        VersionRole::GroundTruth => ds.clean.select_rows(&rows_of(test_role, true)),
        VersionRole::Version => version.table.select_rows(&rows_of(test_role, true)),
    };
    (train, test)
}

/// Macro-F1 scores of a classifier over `repeats` seeded train/test splits
/// in the given scenario.
pub fn eval_classifier(
    scenario: Scenario,
    ds: &GeneratedDataset,
    version: &VersionTable,
    kind: ClassifierKind,
    repeats: usize,
    base_seed: u64,
) -> Vec<f64> {
    // audit:allow(panic, classification datasets carry a label column by construction)
    let label_col = ds.clean.schema().label_index().expect("classification dataset");
    let feature_cols = ds.clean.schema().feature_indices();
    let labels = LabelMap::fit([&ds.clean, &version.table], label_col);
    (0..repeats)
        .map(|rep| {
            let seed = derive_seed(base_seed, rep as u64);
            let (train, test) = scenario_split(scenario, ds, version, 0.25, seed);
            let encoder = Encoder::fit(&train, &feature_cols);
            let (tr_rows, tr_y) = labels.encode(&train, label_col);
            let (te_rows, te_y) = labels.encode(&test, label_col);
            if tr_rows.is_empty() || te_rows.is_empty() {
                return f64::NAN;
            }
            let xtr = select_matrix_rows(&encoder.transform(&train), &tr_rows);
            let xte = select_matrix_rows(&encoder.transform(&test), &te_rows);
            let mut model = kind.build(seed);
            model.fit(&xtr, &tr_y, labels.n_classes());
            let preds = model.predict(&xte);
            rein_ml::classification_report(&te_y, &preds, labels.n_classes()).f1
        })
        .collect()
}

/// [`eval_classifier`] under guard: a panicking or budget-exhausted
/// model degrades to all-NaN scores (excluded from summaries) with the
/// structured failure returned alongside.
#[allow(clippy::too_many_arguments)]
pub fn eval_classifier_guarded(
    scenario: Scenario,
    ds: &GeneratedDataset,
    version: &VersionTable,
    kind: ClassifierKind,
    repeats: usize,
    base_seed: u64,
    policy: &GuardPolicy,
) -> (Vec<f64>, Option<StrategyFailure>) {
    let spec = GuardSpec {
        phase: Phase::Model,
        strategy: kind.name(),
        dataset: &ds.info.name,
        scope: scenario.name(),
        cells: (version.table.n_rows() * version.table.n_cols()) as u64,
        seed: base_seed,
    };
    let report = rein_guard::run(
        &spec,
        policy,
        // audit:allow(seed-provenance, the closure seed is the guard's per-attempt derivation of the base_seed parameter)
        |seed| eval_classifier(scenario, ds, version, kind, repeats, seed),
        |scores| {
            if scores.len() == repeats {
                Ok(())
            } else {
                Err(format!("{} scores for {repeats} repeats", scores.len()))
            }
        },
        |scores| scores.clear(),
    );
    match report.outcome {
        Ok(scores) => (scores, None),
        Err(failure) => (vec![f64::NAN; repeats], Some(failure)),
    }
}

/// Test RMSE of a regressor over `repeats` splits in the given scenario.
pub fn eval_regressor(
    scenario: Scenario,
    ds: &GeneratedDataset,
    version: &VersionTable,
    kind: RegressorKind,
    repeats: usize,
    base_seed: u64,
) -> Vec<f64> {
    // audit:allow(panic, regression datasets carry a label column by construction)
    let label_col = ds.clean.schema().label_index().expect("regression dataset");
    let feature_cols = ds.clean.schema().feature_indices();
    (0..repeats)
        .map(|rep| {
            let seed = derive_seed(base_seed, rep as u64);
            let (train, test) = scenario_split(scenario, ds, version, 0.25, seed);
            let encoder = Encoder::fit(&train, &feature_cols);
            let (tr_rows, tr_y) = rein_ml::encode::regression_target(&train, label_col);
            let (te_rows, te_y) = rein_ml::encode::regression_target(&test, label_col);
            if tr_rows.is_empty() || te_rows.is_empty() {
                return f64::NAN;
            }
            let xtr = select_matrix_rows(&encoder.transform(&train), &tr_rows);
            let xte = select_matrix_rows(&encoder.transform(&test), &te_rows);
            let mut model = kind.build(seed);
            model.fit(&xtr, &tr_y);
            rein_ml::rmse(&te_y, &model.predict(&xte))
        })
        .collect()
}

/// [`eval_regressor`] under guard; see [`eval_classifier_guarded`].
#[allow(clippy::too_many_arguments)]
pub fn eval_regressor_guarded(
    scenario: Scenario,
    ds: &GeneratedDataset,
    version: &VersionTable,
    kind: RegressorKind,
    repeats: usize,
    base_seed: u64,
    policy: &GuardPolicy,
) -> (Vec<f64>, Option<StrategyFailure>) {
    let spec = GuardSpec {
        phase: Phase::Model,
        strategy: kind.name(),
        dataset: &ds.info.name,
        scope: scenario.name(),
        cells: (version.table.n_rows() * version.table.n_cols()) as u64,
        seed: base_seed,
    };
    let report = rein_guard::run(
        &spec,
        policy,
        // audit:allow(seed-provenance, the closure seed is the guard's per-attempt derivation of the base_seed parameter)
        |seed| eval_regressor(scenario, ds, version, kind, repeats, seed),
        |scores| {
            if scores.len() == repeats {
                Ok(())
            } else {
                Err(format!("{} scores for {repeats} repeats", scores.len()))
            }
        },
        |scores| scores.clear(),
    );
    match report.outcome {
        Ok(scores) => (scores, None),
        Err(failure) => (vec![f64::NAN; repeats], Some(failure)),
    }
}

/// Silhouette score of a clusterer on a data version. Methods requiring
/// `k` get the best silhouette over `k ∈ 2..=max_k` (the paper's
/// silhouette-driven choice of k); self-selecting methods run once.
pub fn eval_clusterer(table: &Table, kind: ClustererKind, max_k: usize, seed: u64) -> f64 {
    let feature_cols = table.schema().feature_indices();
    let encoder = Encoder::fit(table, &feature_cols);
    let x = encoder.transform(table);
    if x.rows() < 4 {
        return f64::NAN;
    }
    let self_selecting = matches!(kind, ClustererKind::AffinityPropagation | ClustererKind::Optics);
    if self_selecting {
        let labels = kind.build(2, seed).fit_predict(&x);
        return rein_ml::silhouette(&x, &labels);
    }
    (2..=max_k.max(2))
        .map(|k| {
            let labels = kind.build(k, seed).fit_predict(&x);
            rein_ml::silhouette(&x, &labels)
        })
        .fold(f64::NAN, |best, s| if best.is_nan() || s > best { s } else { best })
}

/// Evaluates an ML-oriented repairer's pipeline under scenario S5: F1 of
/// its model on a held-out slice of the dirty data.
pub fn eval_pipeline_s5(ds: &GeneratedDataset, pipeline: &TrainedPipeline, seed: u64) -> f64 {
    let split = rein_data::split::train_test_indices(ds.dirty.n_rows(), 0.25, seed);
    let test = ds.dirty.select_rows(&split.test);
    pipeline.f1_on(&test)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rein_datasets::{DatasetId, Params};

    fn small_beers() -> GeneratedDataset {
        DatasetId::Beers.generate(&Params::scaled(0.12, 7))
    }

    #[test]
    fn detector_harness_runs_and_scores() {
        let ds = small_beers();
        let h = DetectorHarness::new(&ds, 60, 1);
        let run = h.run(&ds, DetectorKind::MvDetector);
        assert!(run.quality.precision > 0.9, "MVD precision {}", run.quality.precision);
        assert!(run.runtime.as_secs() < 5);
        // RAHA (oracle-backed) should do well too.
        let raha = h.run(&ds, DetectorKind::Raha);
        assert!(raha.quality.f1 > 0.4, "raha f1 {}", raha.quality.f1);
    }

    #[test]
    fn repair_run_with_ground_truth_restores_clean() {
        let ds = small_beers();
        let run = run_repair(&ds, &ds.mask, RepairKind::GroundTruth, 1);
        let version = run.version.unwrap();
        assert_eq!(version.table, ds.clean);
    }

    #[test]
    fn scenario_split_never_leaks_rows() {
        let ds = small_beers();
        let version = VersionTable::identity(ds.dirty.clone());
        for scenario in [Scenario::S1, Scenario::S2, Scenario::S3, Scenario::S4] {
            let (train, test) = scenario_split(scenario, &ds, &version, 0.25, 3);
            assert!(train.n_rows() > 0 && test.n_rows() > 0, "{scenario:?}");
            // Train + test never exceed clean rows + duplicates.
            assert!(train.n_rows() + test.n_rows() <= ds.dirty.n_rows().max(ds.clean.n_rows()) + 1);
        }
    }

    #[test]
    fn s4_beats_dirty_s1_for_classification() {
        let ds = small_beers();
        let version = VersionTable::identity(ds.dirty.clone());
        let s1 = eval_classifier(Scenario::S1, &ds, &version, ClassifierKind::DecisionTree, 3, 5);
        let s4 = eval_classifier(Scenario::S4, &ds, &version, ClassifierKind::DecisionTree, 3, 5);
        let m = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
        assert!(m(&s4) >= m(&s1) - 0.05, "S4 {} vs S1 {}", m(&s4), m(&s1));
        assert!(m(&s4) > 0.7, "S4 {}", m(&s4));
    }

    #[test]
    fn regression_eval_produces_finite_rmse() {
        let ds = DatasetId::Nasa.generate(&Params::scaled(0.2, 3));
        let version = VersionTable::identity(ds.dirty.clone());
        let scores = eval_regressor(Scenario::S4, &ds, &version, RegressorKind::Ridge, 2, 1);
        assert!(scores.iter().all(|s| s.is_finite()));
    }

    #[test]
    fn clustering_eval_produces_silhouette() {
        let ds = DatasetId::Water.generate(&Params::scaled(0.3, 2));
        let s = eval_clusterer(&ds.clean, ClustererKind::KMeans, 5, 1);
        assert!(s.is_finite());
        assert!((-1.0..=1.0).contains(&s));
    }
}
