//! # rein-stats
//!
//! Evaluation metrics and statistical machinery of the REIN benchmark
//! (§6.1 and §4 of the paper): cell-level detection precision/recall/F1,
//! the true-positive-restricted IoU similarity between detectors, repair
//! quality metrics (categorical P/R/F1, numerical RMSE with the paper's
//! filtering rule), descriptive statistics, and the two-tailed Wilcoxon
//! signed-rank A/B test with continuity correction.

pub mod confusion;
pub mod descriptive;
pub mod iou;
pub mod repair_quality;
pub mod wilcoxon;

pub use confusion::{evaluate_detection, DetectionQuality};
pub use descriptive::{mean, mean_std, median, quantile, sample_std, std_dev, MeanStd};
pub use iou::{iou, iou_matrix, iou_true_positives};
pub use repair_quality::{categorical_repair_quality, numerical_rmse, RmseReport};
pub use wilcoxon::{wilcoxon_signed_rank, WilcoxonError, WilcoxonResult};

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #[test]
        fn detection_quality_invariants(tp in 0usize..500, fp in 0usize..500, fneg in 0usize..500) {
            let q = confusion::DetectionQuality::from_counts(tp, fp, fneg);
            prop_assert!((0.0..=1.0).contains(&q.precision));
            prop_assert!((0.0..=1.0).contains(&q.recall));
            prop_assert!((0.0..=1.0).contains(&q.f1));
            // F1 lies between min and max of P and R (or is 0 when both 0).
            if q.precision + q.recall > 0.0 {
                prop_assert!(q.f1 <= q.precision.max(q.recall) + 1e-12);
                prop_assert!(q.f1 >= q.precision.min(q.recall) - 1e-12);
            }
        }

        #[test]
        fn wilcoxon_p_value_in_unit_interval(
            pairs in prop::collection::vec((-100.0f64..100.0, -100.0f64..100.0), 2..40)
        ) {
            let a: Vec<f64> = pairs.iter().map(|p| p.0).collect();
            let b: Vec<f64> = pairs.iter().map(|p| p.1).collect();
            if let Ok(r) = wilcoxon::wilcoxon_signed_rank(&a, &b) {
                prop_assert!((0.0..=1.0).contains(&r.p_value), "p = {}", r.p_value);
                prop_assert!(r.statistic >= 0.0);
                prop_assert!(r.n_used <= a.len());
            }
        }

        #[test]
        fn wilcoxon_symmetry(
            pairs in prop::collection::vec((-10.0f64..10.0, -10.0f64..10.0), 3..25)
        ) {
            let a: Vec<f64> = pairs.iter().map(|p| p.0).collect();
            let b: Vec<f64> = pairs.iter().map(|p| p.1).collect();
            match (wilcoxon::wilcoxon_signed_rank(&a, &b), wilcoxon::wilcoxon_signed_rank(&b, &a)) {
                (Ok(r1), Ok(r2)) => {
                    prop_assert!((r1.p_value - r2.p_value).abs() < 1e-12);
                    prop_assert!((r1.statistic - r2.statistic).abs() < 1e-12);
                }
                (Err(e1), Err(e2)) => prop_assert_eq!(e1, e2),
                _ => prop_assert!(false, "asymmetric outcome"),
            }
        }

        #[test]
        fn quantile_is_monotone_in_q(
            xs in prop::collection::vec(-1e6f64..1e6, 1..60),
            q1 in 0.0f64..1.0,
            q2 in 0.0f64..1.0,
        ) {
            let (lo, hi) = if q1 <= q2 { (q1, q2) } else { (q2, q1) };
            prop_assert!(descriptive::quantile(&xs, lo) <= descriptive::quantile(&xs, hi) + 1e-9);
        }

        #[test]
        fn mean_bounded_by_extremes(xs in prop::collection::vec(-1e6f64..1e6, 1..60)) {
            let m = descriptive::mean(&xs);
            let lo = xs.iter().copied().fold(f64::INFINITY, f64::min);
            let hi = xs.iter().copied().fold(f64::NEG_INFINITY, f64::max);
            prop_assert!(m >= lo - 1e-6 && m <= hi + 1e-6);
        }
    }
}
