#!/usr/bin/env bash
# Local mirror of .github/workflows/ci.yml — run before pushing.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q"
cargo test -q

echo "==> cargo run -p rein-audit (determinism & integrity audit, semantic rules + SARIF)"
cargo run -q -p rein-audit -- --quiet --sarif artifacts/audit/report.sarif

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo clippy --all-targets -- -D warnings"
cargo clippy --all-targets -- -D warnings

echo "CI checks passed."
