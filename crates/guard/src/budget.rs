//! Cooperative, deterministic deadline budgets.
//!
//! A [`Budget`] is a tick allowance derived from the master seed and the
//! per-strategy cell count — never from the wall clock, so exhaustion is
//! byte-reproducible across machines and repeats. [`crate::run`] installs
//! the budget in a thread-local slot for the duration of one guarded
//! attempt; long-running kernels call [`checkpoint`] at loop boundaries,
//! which is a no-op outside a guarded region and debits the allowance
//! inside one. Crossing the allowance unwinds with a typed
//! [`BudgetExhausted`] payload that the guard converts into a structured
//! failure.
//!
//! The budget is cooperative by design: a kernel that never checkpoints
//! cannot be interrupted (that is the price of determinism), and worker
//! threads spawned inside a kernel (e.g. rayon fan-outs) do not see the
//! installing thread's slot — coverage there is best-effort via the
//! checkpoints that run on the calling thread.

use std::cell::Cell;

use rein_data::rng::derive_seed;

/// Ticks granted per grid cell of the strategy under guard.
pub const TICKS_PER_CELL: u64 = 10_000;

/// Floor on any allowance, so tiny datasets still get room to finish.
pub const MIN_ALLOWANCE: u64 = 1_000_000;

/// Width of the seeded jitter mixed into an allowance (see
/// [`Budget::derive`]).
const JITTER_WIDTH: u64 = 1024;

/// A tick allowance with its running spend.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Budget {
    /// Total ticks granted.
    pub allowance: u64,
    /// Ticks debited so far.
    pub spent: u64,
}

impl Budget {
    /// A budget with an explicit allowance (tests and stall injection).
    pub fn explicit(allowance: u64) -> Self {
        Budget { allowance, spent: 0 }
    }

    /// The standard allowance for a strategy: `max(MIN_ALLOWANCE,
    /// TICKS_PER_CELL × cells)` plus a small seed-derived jitter. The
    /// jitter decorrelates exhaustion boundaries across strategies and
    /// seeds while staying a pure function of `(seed, strategy, cells)`.
    pub fn derive(seed: u64, strategy: &str, cells: u64) -> Self {
        let base = MIN_ALLOWANCE.max(cells.saturating_mul(TICKS_PER_CELL));
        let jitter = derive_seed(seed, fnv1a(strategy) ^ cells) % JITTER_WIDTH;
        Budget { allowance: base.saturating_add(jitter), spent: 0 }
    }
}

/// Typed panic payload raised by [`checkpoint`] when the allowance is
/// crossed. Never printed by the default panic hook — the guard silences
/// hooks inside its supervision window and downcasts the payload.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BudgetExhausted {
    /// Ticks spent when the budget tripped.
    pub spent: u64,
    /// The allowance that was crossed.
    pub allowance: u64,
}

thread_local! {
    static ACTIVE: Cell<Option<Budget>> = const { Cell::new(None) };
}

/// Restores the previously-installed budget when a guarded attempt ends,
/// including by unwind.
pub(crate) struct BudgetScope {
    prev: Option<Budget>,
}

impl Drop for BudgetScope {
    fn drop(&mut self) {
        ACTIVE.with(|slot| slot.set(self.prev));
    }
}

/// Installs `budget` for the current thread until the scope drops.
pub(crate) fn install(budget: Budget) -> BudgetScope {
    let prev = ACTIVE.with(|slot| slot.replace(Some(budget)));
    BudgetScope { prev }
}

/// The installed budget's `(spent, allowance)`, if any. Diagnostic only.
pub fn current_budget() -> Option<(u64, u64)> {
    ACTIVE.with(|slot| slot.get().map(|b| (b.spent, b.allowance)))
}

/// Debits `cost` ticks from the installed budget, unwinding with
/// [`BudgetExhausted`] once the allowance is crossed. A no-op when no
/// budget is installed (code running outside a guard), so kernels can
/// checkpoint unconditionally.
pub fn checkpoint(cost: u64) {
    ACTIVE.with(|slot| {
        if let Some(mut budget) = slot.get() {
            budget.spent = budget.spent.saturating_add(cost);
            slot.set(Some(budget));
            if budget.spent > budget.allowance {
                std::panic::panic_any(BudgetExhausted {
                    spent: budget.spent,
                    allowance: budget.allowance,
                });
            }
        }
    });
}

/// FNV-1a over a strategy name: a stable, dependency-free way to give
/// each strategy its own jitter stream.
fn fnv1a(s: &str) -> u64 {
    let mut h = 0xCBF2_9CE4_8422_2325u64;
    for b in s.bytes() {
        h = (h ^ b as u64).wrapping_mul(0x100_0000_01B3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn checkpoint_is_a_noop_without_a_budget() {
        checkpoint(u64::MAX); // must not panic
        assert_eq!(current_budget(), None);
    }

    #[test]
    fn checkpoint_debits_and_trips() {
        let scope = install(Budget::explicit(5));
        checkpoint(3);
        assert_eq!(current_budget(), Some((3, 5)));
        let tripped = std::panic::catch_unwind(|| checkpoint(10)).unwrap_err();
        let payload = tripped.downcast::<BudgetExhausted>().expect("typed payload");
        assert_eq!(*payload, BudgetExhausted { spent: 13, allowance: 5 });
        drop(scope);
        assert_eq!(current_budget(), None);
    }

    #[test]
    fn scopes_nest_and_restore() {
        let outer = install(Budget::explicit(100));
        checkpoint(7);
        {
            let inner = install(Budget::explicit(50));
            checkpoint(1);
            assert_eq!(current_budget(), Some((1, 50)));
            drop(inner);
        }
        assert_eq!(current_budget(), Some((7, 100)));
        drop(outer);
    }

    #[test]
    fn derived_allowance_is_deterministic_and_floored() {
        let a = Budget::derive(7, "raha", 100);
        let b = Budget::derive(7, "raha", 100);
        assert_eq!(a, b);
        assert!(a.allowance >= MIN_ALLOWANCE);
        // Large grids scale past the floor.
        let big = Budget::derive(7, "raha", 1_000_000);
        assert!(big.allowance >= 1_000_000 * TICKS_PER_CELL);
        // Different strategies draw different jitter (overwhelmingly).
        let other = Budget::derive(7, "ed2", 100);
        assert_ne!(a.allowance, other.allowance);
    }
}
