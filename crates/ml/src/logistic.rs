//! Multinomial logistic regression trained by full-batch gradient descent
//! with L2 regularisation.

use crate::linalg::Matrix;
use crate::model::Classifier;

/// Softmax of a logit row, written in place (numerically stabilised).
pub(crate) fn softmax_in_place(row: &mut [f64]) {
    let max = row.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    let mut sum = 0.0;
    for v in row.iter_mut() {
        *v = (*v - max).exp();
        sum += *v;
    }
    if sum > 0.0 {
        for v in row.iter_mut() {
            *v /= sum;
        }
    }
}

/// Multinomial logistic regression.
#[derive(Debug, Clone)]
pub struct LogisticRegression {
    /// Learning rate.
    pub lr: f64,
    /// L2 regularisation strength.
    pub l2: f64,
    /// Gradient-descent epochs.
    pub epochs: usize,
    weights: Matrix, // (n_features + 1) × n_classes, last row = bias
    n_classes: usize,
}

impl Default for LogisticRegression {
    fn default() -> Self {
        Self { lr: 0.5, l2: 1e-4, epochs: 200, weights: Matrix::zeros(0, 0), n_classes: 0 }
    }
}

impl LogisticRegression {
    /// Builds with explicit hyperparameters.
    pub fn new(lr: f64, l2: f64, epochs: usize) -> Self {
        Self { lr, l2, epochs, ..Default::default() }
    }

    fn logits(&self, x: &Matrix) -> Matrix {
        let d = self.weights.rows() - 1;
        let mut out = Matrix::zeros(x.rows(), self.n_classes);
        for r in 0..x.rows() {
            let xr = x.row(r);
            for c in 0..self.n_classes {
                let mut z = self.weights[(d, c)]; // bias
                for (f, &xv) in xr.iter().enumerate() {
                    z += xv * self.weights[(f, c)];
                }
                out[(r, c)] = z;
            }
        }
        out
    }
}

impl Classifier for LogisticRegression {
    fn fit(&mut self, x: &Matrix, y: &[usize], n_classes: usize) {
        assert_eq!(x.rows(), y.len());
        self.n_classes = n_classes.max(1);
        let n = x.rows().max(1);
        let d = x.cols();
        self.weights = Matrix::zeros(d + 1, self.n_classes);
        if x.rows() == 0 {
            return;
        }
        let lr = self.lr;
        for _ in 0..self.epochs {
            // Gradient of mean cross-entropy.
            let mut probs = self.logits(x);
            for r in 0..probs.rows() {
                softmax_in_place(probs.row_mut(r));
            }
            let mut grad = Matrix::zeros(d + 1, self.n_classes);
            for r in 0..x.rows() {
                let xr = x.row(r);
                for c in 0..self.n_classes {
                    let err = probs[(r, c)] - if y[r] == c { 1.0 } else { 0.0 };
                    if err == 0.0 {
                        continue;
                    }
                    for (f, &xv) in xr.iter().enumerate() {
                        grad[(f, c)] += err * xv;
                    }
                    grad[(d, c)] += err;
                }
            }
            let scale = lr / n as f64;
            for f in 0..=d {
                for c in 0..self.n_classes {
                    let reg = if f < d { self.l2 * self.weights[(f, c)] } else { 0.0 };
                    self.weights[(f, c)] -= scale * grad[(f, c)] + lr * reg;
                }
            }
        }
    }

    fn predict(&self, x: &Matrix) -> Vec<usize> {
        let logits = self.logits(x);
        (0..x.rows()).map(|r| crate::linalg::argmax(logits.row(r))).collect()
    }

    fn predict_proba(&self, x: &Matrix, n_classes: usize) -> Matrix {
        let mut p = self.logits(x);
        for r in 0..p.rows() {
            softmax_in_place(p.row_mut(r));
        }
        debug_assert_eq!(p.cols(), n_classes);
        p
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{blob_classification, train_test_accuracy};

    #[test]
    fn separable_blobs_are_learned() {
        let (x, y) = blob_classification(120, 3, 1);
        let mut m = LogisticRegression::default();
        let acc = train_test_accuracy(&mut m, &x, &y, 3);
        assert!(acc > 0.9, "accuracy {acc}");
    }

    #[test]
    fn binary_problem() {
        let (x, y) = blob_classification(80, 2, 7);
        let mut m = LogisticRegression::default();
        let acc = train_test_accuracy(&mut m, &x, &y, 2);
        assert!(acc > 0.9, "accuracy {acc}");
    }

    #[test]
    fn probabilities_sum_to_one() {
        let (x, y) = blob_classification(60, 3, 2);
        let mut m = LogisticRegression::default();
        m.fit(&x, &y, 3);
        let p = m.predict_proba(&x, 3);
        for r in 0..p.rows() {
            let s: f64 = p.row(r).iter().sum();
            assert!((s - 1.0).abs() < 1e-9);
            assert!(p.row(r).iter().all(|&v| (0.0..=1.0).contains(&v)));
        }
    }

    #[test]
    fn softmax_is_stable_for_large_logits() {
        let mut row = [1000.0, 1001.0, 999.0];
        softmax_in_place(&mut row);
        assert!((row.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        assert!(row[1] > row[0] && row[0] > row[2]);
    }

    #[test]
    fn empty_fit_predicts_class_zero() {
        let mut m = LogisticRegression::default();
        m.fit(&Matrix::zeros(0, 2), &[], 2);
        assert_eq!(m.predict(&Matrix::zeros(3, 2)), vec![0, 0, 0]);
    }
}
