//! Telemetry wrappers for the model zoo.
//!
//! [`ClassifierKind::build`](crate::model::ClassifierKind::build) and
//! friends wrap every model they hand out, so each `fit`/`predict` call
//! anywhere in the pipeline lands in the global metrics registry:
//! counters `model_fits` / `model_predictions`, histograms `model_fit` /
//! `model_predict`. Wrappers add two atomic updates and one stopwatch
//! read per call — noise next to any actual model fit. Timing goes
//! through [`rein_telemetry::perf::Stopwatch`], the audit-sanctioned
//! wall-clock source, so this file needs no wallclock carve-out.

use rein_telemetry::perf::Stopwatch;
use rein_telemetry::{counter, histogram};

use crate::linalg::Matrix;
use crate::model::{Classifier, Clusterer, Regressor};

/// Classifier wrapper feeding the metrics registry.
pub struct InstrumentedClassifier {
    name: &'static str,
    inner: Box<dyn Classifier>,
}

impl InstrumentedClassifier {
    pub fn new(name: &'static str, inner: Box<dyn Classifier>) -> Self {
        Self { name, inner }
    }
}

impl Classifier for InstrumentedClassifier {
    fn fit(&mut self, x: &Matrix, y: &[usize], n_classes: usize) {
        // audit:allow(cache-key-completeness, elapsed time feeds only the telemetry histograms and counters, never the fitted model or its predictions)
        let start = Stopwatch::start();
        self.inner.fit(x, y, n_classes);
        histogram("model_fit").record(start.elapsed());
        counter("model_fits").incr();
        rein_telemetry::debug!("fit classifier {} on {}x{}", self.name, x.rows(), x.cols());
    }

    fn predict(&self, x: &Matrix) -> Vec<usize> {
        // audit:allow(cache-key-completeness, elapsed time feeds only the telemetry histograms and counters, never the fitted model or its predictions)
        let start = Stopwatch::start();
        let out = self.inner.predict(x);
        histogram("model_predict").record(start.elapsed());
        counter("model_predictions").add(x.rows() as u64);
        out
    }

    fn predict_proba(&self, x: &Matrix, n_classes: usize) -> Matrix {
        // audit:allow(cache-key-completeness, elapsed time feeds only the telemetry histograms and counters, never the fitted model or its predictions)
        let start = Stopwatch::start();
        let out = self.inner.predict_proba(x, n_classes);
        histogram("model_predict").record(start.elapsed());
        counter("model_predictions").add(x.rows() as u64);
        out
    }
}

/// Regressor wrapper feeding the metrics registry.
pub struct InstrumentedRegressor {
    name: &'static str,
    inner: Box<dyn Regressor>,
}

impl InstrumentedRegressor {
    pub fn new(name: &'static str, inner: Box<dyn Regressor>) -> Self {
        Self { name, inner }
    }
}

impl Regressor for InstrumentedRegressor {
    fn fit(&mut self, x: &Matrix, y: &[f64]) {
        // audit:allow(cache-key-completeness, elapsed time feeds only the telemetry histograms and counters, never the fitted model or its predictions)
        let start = Stopwatch::start();
        self.inner.fit(x, y);
        histogram("model_fit").record(start.elapsed());
        counter("model_fits").incr();
        rein_telemetry::debug!("fit regressor {} on {}x{}", self.name, x.rows(), x.cols());
    }

    fn predict(&self, x: &Matrix) -> Vec<f64> {
        // audit:allow(cache-key-completeness, elapsed time feeds only the telemetry histograms and counters, never the fitted model or its predictions)
        let start = Stopwatch::start();
        let out = self.inner.predict(x);
        histogram("model_predict").record(start.elapsed());
        counter("model_predictions").add(x.rows() as u64);
        out
    }
}

/// Clusterer wrapper feeding the metrics registry.
pub struct InstrumentedClusterer {
    name: &'static str,
    inner: Box<dyn Clusterer>,
}

impl InstrumentedClusterer {
    pub fn new(name: &'static str, inner: Box<dyn Clusterer>) -> Self {
        Self { name, inner }
    }
}

impl Clusterer for InstrumentedClusterer {
    fn fit_predict(&mut self, x: &Matrix) -> Vec<usize> {
        // audit:allow(cache-key-completeness, elapsed time feeds only the telemetry histograms and counters, never the fitted model or its predictions)
        let start = Stopwatch::start();
        let out = self.inner.fit_predict(x);
        histogram("model_fit").record(start.elapsed());
        counter("model_fits").incr();
        rein_telemetry::debug!("fit clusterer {} on {}x{}", self.name, x.rows(), x.cols());
        out
    }
}
