//! Functional dependencies and their violation scan.
//!
//! An FD `LHS → RHS` states that rows agreeing on all LHS attributes must
//! agree on the RHS attribute. NADEEF-style detection flags, for each group
//! of rows sharing an LHS value, every RHS cell that deviates from the
//! group's majority value (and, when the group is evenly split, the whole
//! group).

use std::collections::BTreeMap;

use rein_data::{CellMask, Table, Value};
use serde::{Deserialize, Serialize};

/// A functional dependency over column indices: `lhs → rhs`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct FunctionalDependency {
    /// Determinant column indices.
    pub lhs: Vec<usize>,
    /// Dependent column index.
    pub rhs: usize,
}

impl FunctionalDependency {
    /// Builds an FD.
    pub fn new(lhs: impl Into<Vec<usize>>, rhs: usize) -> Self {
        Self { lhs: lhs.into(), rhs }
    }

    /// Human-readable form using the table's column names.
    pub fn describe(&self, table: &Table) -> String {
        let lhs: Vec<&str> =
            self.lhs.iter().map(|&c| table.schema().column(c).name.as_str()).collect();
        format!("{} -> {}", lhs.join(","), table.schema().column(self.rhs).name)
    }
}

/// Groups row indices by their LHS key. Rows with a NULL in any LHS column
/// are skipped (they determine nothing).
fn lhs_groups(table: &Table, fd: &FunctionalDependency) -> BTreeMap<String, Vec<usize>> {
    let mut groups: BTreeMap<String, Vec<usize>> = BTreeMap::new();
    'rows: for r in 0..table.n_rows() {
        let mut key = String::new();
        for &c in &fd.lhs {
            let v = table.cell(r, c);
            if v.is_null() {
                continue 'rows;
            }
            key.push_str(&v.as_key());
            key.push('\u{1f}'); // unit separator avoids key collisions
        }
        groups.entry(key).or_default().push(r);
    }
    groups
}

/// Cells violating the FD, using majority voting within each LHS group.
///
/// The returned mask marks RHS cells that disagree with their group's
/// majority RHS value; when no strict majority exists every RHS cell of the
/// conflicting group is flagged (the conservative NADEEF behaviour).
pub fn fd_violations(table: &Table, fd: &FunctionalDependency) -> CellMask {
    let mut mask = CellMask::new(table.n_rows(), table.n_cols());
    for rows in lhs_groups(table, fd).values() {
        if rows.len() < 2 {
            continue;
        }
        // Count RHS values within the group.
        let mut counts: BTreeMap<&Value, usize> = BTreeMap::new();
        for &r in rows {
            *counts.entry(table.cell(r, fd.rhs)).or_insert(0) += 1;
        }
        if counts.len() <= 1 {
            continue; // group is consistent
        }
        let max = counts.values().copied().max().unwrap_or(0);
        let majority_unique = counts.values().filter(|&&c| c == max).count() == 1;
        if majority_unique {
            // audit:allow(panic, majority_unique guarantees a count equal to max exists)
            let majority: &Value = counts.iter().find(|(_, &c)| c == max).map(|(v, _)| *v).unwrap();
            let majority = majority.clone();
            for &r in rows {
                if table.cell(r, fd.rhs) != &majority {
                    mask.set(r, fd.rhs, true);
                }
            }
        } else {
            // No majority: all group members are suspect.
            for &r in rows {
                mask.set(r, fd.rhs, true);
            }
        }
    }
    mask
}

/// Violations of several FDs, unioned.
pub fn all_fd_violations(table: &Table, fds: &[FunctionalDependency]) -> CellMask {
    let mut mask = CellMask::new(table.n_rows(), table.n_cols());
    for fd in fds {
        mask.union_with(&fd_violations(table, fd));
    }
    mask
}

/// Whether the table satisfies the FD exactly (no two LHS-equal rows with
/// different RHS values).
pub fn holds(table: &Table, fd: &FunctionalDependency) -> bool {
    for rows in lhs_groups(table, fd).values() {
        let first = table.cell(rows[0], fd.rhs);
        if rows.iter().any(|&r| table.cell(r, fd.rhs) != first) {
            return false;
        }
    }
    true
}

/// A repair candidate with its evidence strength.
#[derive(Debug, Clone, PartialEq)]
pub struct RepairCandidate {
    /// Row whose RHS cell should change.
    pub row: usize,
    /// Proposed value (the group majority).
    pub value: Value,
    /// Number of group members supporting the majority value.
    pub support: usize,
    /// Total group size.
    pub group_size: usize,
}

/// Like [`repair_candidates`] but annotated with majority support and
/// group size, so repairers can arbitrate between conflicting FDs.
pub fn repair_candidates_with_support(
    table: &Table,
    fd: &FunctionalDependency,
) -> Vec<RepairCandidate> {
    let mut out = Vec::new();
    for rows in lhs_groups(table, fd).values() {
        if rows.len() < 2 {
            continue;
        }
        let mut counts: BTreeMap<&Value, usize> = BTreeMap::new();
        for &r in rows {
            *counts.entry(table.cell(r, fd.rhs)).or_insert(0) += 1;
        }
        if counts.len() <= 1 {
            continue;
        }
        // audit:allow(panic, counts checked non-empty above)
        let max = counts.values().copied().max().unwrap();
        if counts.values().filter(|&&c| c == max).count() != 1 {
            continue;
        }
        // audit:allow(panic, a key with the max count always exists in a non-empty map)
        let majority = counts.iter().find(|(_, &c)| c == max).map(|(v, _)| (*v).clone()).unwrap();
        for &r in rows {
            if table.cell(r, fd.rhs) != &majority {
                out.push(RepairCandidate {
                    row: r,
                    value: majority.clone(),
                    support: max,
                    group_size: rows.len(),
                });
            }
        }
    }
    out.sort_by_key(|c| c.row);
    out
}

/// For each violating LHS group, the majority RHS value — the natural FD
/// repair candidate used by rule-based repairers.
pub fn repair_candidates(table: &Table, fd: &FunctionalDependency) -> Vec<(usize, Value)> {
    let mut out = Vec::new();
    for rows in lhs_groups(table, fd).values() {
        if rows.len() < 2 {
            continue;
        }
        let mut counts: BTreeMap<&Value, usize> = BTreeMap::new();
        for &r in rows {
            *counts.entry(table.cell(r, fd.rhs)).or_insert(0) += 1;
        }
        if counts.len() <= 1 {
            continue;
        }
        // audit:allow(panic, counts checked non-empty above)
        let max = counts.values().copied().max().unwrap();
        if counts.values().filter(|&&c| c == max).count() != 1 {
            continue; // ambiguous, no candidate
        }
        // audit:allow(panic, a key with the max count always exists in a non-empty map)
        let majority = counts.iter().find(|(_, &c)| c == max).map(|(v, _)| (*v).clone()).unwrap();
        for &r in rows {
            if table.cell(r, fd.rhs) != &majority {
                out.push((r, majority.clone()));
            }
        }
    }
    out.sort_by_key(|(r, _)| *r);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rein_data::{ColumnMeta, ColumnType, Schema};

    fn table(rows: Vec<(&str, &str)>) -> Table {
        let schema = Schema::new(vec![
            ColumnMeta::new("zip", ColumnType::Str),
            ColumnMeta::new("city", ColumnType::Str),
        ]);
        Table::from_rows(
            schema,
            rows.into_iter().map(|(z, c)| vec![Value::str(z), Value::str(c)]).collect(),
        )
    }

    #[test]
    fn consistent_table_has_no_violations() {
        let t = table(vec![("1", "A"), ("1", "A"), ("2", "B")]);
        let fd = FunctionalDependency::new([0], 1);
        assert!(holds(&t, &fd));
        assert!(fd_violations(&t, &fd).is_empty());
    }

    #[test]
    fn minority_cell_is_flagged() {
        let t = table(vec![("1", "A"), ("1", "A"), ("1", "X"), ("2", "B")]);
        let fd = FunctionalDependency::new([0], 1);
        assert!(!holds(&t, &fd));
        let m = fd_violations(&t, &fd);
        assert_eq!(m.count(), 1);
        assert!(m.get(2, 1));
    }

    #[test]
    fn even_split_flags_whole_group() {
        let t = table(vec![("1", "A"), ("1", "X")]);
        let fd = FunctionalDependency::new([0], 1);
        let m = fd_violations(&t, &fd);
        assert_eq!(m.count(), 2);
    }

    #[test]
    fn null_lhs_rows_are_skipped() {
        let mut t = table(vec![("1", "A"), ("1", "X"), ("1", "A")]);
        t.set_cell(1, 0, Value::Null);
        let fd = FunctionalDependency::new([0], 1);
        assert!(fd_violations(&t, &fd).is_empty());
    }

    #[test]
    fn composite_lhs() {
        let schema = Schema::new(vec![
            ColumnMeta::new("a", ColumnType::Str),
            ColumnMeta::new("b", ColumnType::Str),
            ColumnMeta::new("c", ColumnType::Str),
        ]);
        let t = Table::from_rows(
            schema,
            vec![
                vec![Value::str("x"), Value::str("1"), Value::str("p")],
                vec![Value::str("x"), Value::str("1"), Value::str("p")],
                vec![Value::str("x"), Value::str("1"), Value::str("q")],
                vec![Value::str("x"), Value::str("2"), Value::str("r")],
            ],
        );
        let fd = FunctionalDependency::new([0, 1], 2);
        let m = fd_violations(&t, &fd);
        assert_eq!(m.count(), 1);
        assert!(m.get(2, 2));
    }

    #[test]
    fn repair_candidates_propose_majority() {
        let t = table(vec![("1", "A"), ("1", "A"), ("1", "X")]);
        let fd = FunctionalDependency::new([0], 1);
        let cands = repair_candidates(&t, &fd);
        assert_eq!(cands, vec![(2, Value::str("A"))]);
    }

    #[test]
    fn ambiguous_groups_yield_no_candidates() {
        let t = table(vec![("1", "A"), ("1", "X")]);
        let fd = FunctionalDependency::new([0], 1);
        assert!(repair_candidates(&t, &fd).is_empty());
    }

    #[test]
    fn union_of_multiple_fds() {
        let schema = Schema::new(vec![
            ColumnMeta::new("a", ColumnType::Str),
            ColumnMeta::new("b", ColumnType::Str),
            ColumnMeta::new("c", ColumnType::Str),
        ]);
        let t = Table::from_rows(
            schema,
            vec![
                vec![Value::str("x"), Value::str("1"), Value::str("p")],
                vec![Value::str("x"), Value::str("1"), Value::str("p")],
                vec![Value::str("x"), Value::str("9"), Value::str("p")],
            ],
        );
        let fds = vec![FunctionalDependency::new([0], 1), FunctionalDependency::new([0], 2)];
        let m = all_fd_violations(&t, &fds);
        assert_eq!(m.count(), 1);
        assert!(m.get(2, 1));
    }

    #[test]
    fn describe_uses_column_names() {
        let t = table(vec![("1", "A")]);
        let fd = FunctionalDependency::new([0], 1);
        assert_eq!(fd.describe(&t), "zip -> city");
    }
}
