//! `rein-audit` CLI: audits the workspace, prints the human report,
//! writes `artifacts/audit/report.json` and exits nonzero on violations.
//!
//! Usage: `cargo run -p rein-audit [-- --root DIR --json-out FILE
//! --sarif FILE --only RULE --deny-stale --quiet]`

// This binary is the audit's report surface; printing is its job.
#![allow(clippy::print_stdout)]

use std::path::PathBuf;
use std::process::ExitCode;

use rein_audit::{audit_workspace, to_sarif, RULES};

struct Args {
    root: PathBuf,
    json_out: Option<PathBuf>,
    sarif_out: Option<PathBuf>,
    only: Vec<String>,
    deny_stale: bool,
    quiet: bool,
}

fn parse_args() -> Result<Args, String> {
    // Default root: the workspace containing this crate
    // (crates/audit/../..), so `cargo run -p rein-audit` works from any
    // cwd inside the repo.
    let default_root = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../..");
    let mut args = Args {
        root: default_root,
        json_out: None,
        sarif_out: None,
        only: Vec::new(),
        deny_stale: false,
        quiet: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--root" => {
                args.root = PathBuf::from(it.next().ok_or("--root needs a directory argument")?);
            }
            "--json-out" => {
                args.json_out =
                    Some(PathBuf::from(it.next().ok_or("--json-out needs a file argument")?));
            }
            "--no-json" => args.json_out = Some(PathBuf::new()),
            "--sarif" => {
                args.sarif_out =
                    Some(PathBuf::from(it.next().ok_or("--sarif needs a file argument")?));
            }
            "--only" => {
                let rule = it.next().ok_or("--only needs a rule id argument")?;
                if !RULES.iter().any(|r| r.id == rule) {
                    return Err(format!(
                        "unknown rule `{rule}` for --only; known rules: {}",
                        RULES.iter().map(|r| r.id).collect::<Vec<_>>().join(", ")
                    ));
                }
                args.only.push(rule);
            }
            "--deny-stale" => args.deny_stale = true,
            "--quiet" | "-q" => args.quiet = true,
            other => return Err(format!("unknown argument: {other}")),
        }
    }
    Ok(args)
}

fn write_out(path: &PathBuf, content: &str, quiet: bool, what: &str) -> Result<(), ExitCode> {
    if let Some(dir) = path.parent() {
        if let Err(e) = std::fs::create_dir_all(dir) {
            eprintln!("rein-audit: cannot create {}: {e}", dir.display());
            return Err(ExitCode::from(2));
        }
    }
    if let Err(e) = std::fs::write(path, content) {
        eprintln!("rein-audit: cannot write {}: {e}", path.display());
        return Err(ExitCode::from(2));
    }
    if !quiet {
        println!("{what} written to {}", path.display());
    }
    Ok(())
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("rein-audit: {e}");
            return ExitCode::from(2);
        }
    };
    // Canonicalize so report paths are workspace-relative and
    // byte-identical no matter which directory the audit runs from.
    let root = std::fs::canonicalize(&args.root).unwrap_or_else(|_| args.root.clone());
    let mut report = match audit_workspace(&root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("rein-audit: failed to scan {}: {e}", root.display());
            return ExitCode::from(2);
        }
    };
    report.retain_rules(&args.only);
    if args.deny_stale {
        report.deny_stale();
    }
    if !args.quiet || !report.clean() {
        print!("{}", report.render_text());
    }
    let json_out = args.json_out.unwrap_or_else(|| root.join("artifacts/audit/report.json"));
    if !json_out.as_os_str().is_empty() {
        let mut json = report.to_json();
        json.push('\n');
        if let Err(code) = write_out(&json_out, &json, args.quiet, "report") {
            return code;
        }
    }
    if let Some(sarif_out) = &args.sarif_out {
        let sarif = to_sarif(&report);
        if let Err(code) = write_out(sarif_out, &sarif, args.quiet, "SARIF") {
            return code;
        }
    }
    if report.clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    }
}
