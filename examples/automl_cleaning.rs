//! AutoML meets data cleaning (the paper's §6.5 AutoML finding): a fully
//! automated pipeline — AutoSelect (the Auto-Sklearn stand-in) picks the
//! model family — run on the dirty data, an automatically repaired
//! version, and the ground truth. AutoML does *not* rescue a badly
//! repaired dataset.
//!
//! Run with: `cargo run --example automl_cleaning`

// Examples narrate their results on stdout by design.
#![allow(clippy::print_stdout)]

use rein::core::{run_repair, DetectorHarness};
use rein::datasets::{DatasetId, Params};
use rein::detect::DetectorKind;
use rein::ml::automl::AutoSelect;
use rein::ml::encode::{select_matrix_rows, Encoder, LabelMap};
use rein::repair::RepairKind;

fn f1_of_automl(table: &rein::data::Table, label_col: usize, seed: u64) -> (String, f64) {
    let features: Vec<usize> = (0..table.n_cols()).filter(|&c| c != label_col).collect();
    let encoder = Encoder::fit(table, &features);
    let labels = LabelMap::fit([table], label_col);
    let (rows, y) = labels.encode(table, label_col);
    let x = select_matrix_rows(&encoder.transform(table), &rows);

    // Hold out 25% for scoring.
    let split = rein::data::split::train_test_indices(x.rows(), 0.25, seed);
    let xtr = select_matrix_rows(&x, &split.train);
    let ytr: Vec<usize> = split.train.iter().map(|&i| y[i]).collect();
    let outcome = AutoSelect::new(seed).fit_classifier(&xtr, &ytr, labels.n_classes());
    let xte = select_matrix_rows(&x, &split.test);
    let yte: Vec<usize> = split.test.iter().map(|&i| y[i]).collect();
    let preds = outcome.model.predict(&xte);
    let f1 = rein::ml::classification_report(&yte, &preds, labels.n_classes()).f1;
    (outcome.family, f1)
}

fn main() {
    let ds = DatasetId::BreastCancer.generate(&Params::scaled(0.6, 11));
    let label_col = ds.clean.schema().label_index().expect("classification dataset");

    // Automatically repaired version: Max-Entropy detection + mean-mode.
    let harness = DetectorHarness::new(&ds, 80, 1);
    let detection = harness.run(&ds, DetectorKind::MaxEntropy);
    let run = run_repair(&ds, &detection.mask, RepairKind::ImputeMeanMode, 1);
    let repaired = run.version.expect("generic repair");

    println!("AutoSelect (Auto-Sklearn stand-in) on breast_cancer:");
    for (name, table) in
        [("dirty", &ds.dirty), ("auto-repaired", &repaired.table), ("ground truth", &ds.clean)]
    {
        let (family, f1) = f1_of_automl(table, label_col, 5);
        println!("  {name:<14} winner = {family:<8} holdout F1 = {f1:.3}");
    }
    println!("\nAutoML picks a good family each time, but its accuracy still");
    println!("tracks the quality of the data it was given — the paper's finding");
    println!("that automated pipelines cannot substitute for proper cleaning.");
}
