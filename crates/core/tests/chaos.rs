//! Integration tests for fault-isolated grid execution: chaos-injected
//! runs are deterministic, degrade exactly the injected cells, and leave
//! every other cell byte-identical to a fault-free run.
//!
//! All assertions read the `failure` field returned on each run — never
//! the global telemetry registry, which parallel tests share.

use rein_core::{
    run_repair_guarded, ChaosSpec, Controller, DetectorHarness, FailureCause, GuardPolicy,
};
use rein_data::CellMask;
use rein_datasets::{DatasetId, GeneratedDataset, Params};
use rein_detect::DetectorKind;
use rein_repair::RepairKind;

fn small_dataset() -> GeneratedDataset {
    DatasetId::BreastCancer.generate(&Params::scaled(0.1, 29))
}

fn harness(ds: &GeneratedDataset, policy: GuardPolicy) -> DetectorHarness {
    DetectorHarness::new(ds, 25, 29).with_policy(policy)
}

fn mask_bytes(mask: &CellMask) -> String {
    serde_json::to_string(mask).expect("mask serializes")
}

#[test]
fn injected_panic_degrades_only_the_target_cell() {
    let ds = small_dataset();
    let chaos = ChaosSpec::parse("detect:sd=panic").unwrap();
    let kinds = [DetectorKind::Sd, DetectorKind::Iqr, DetectorKind::MvDetector];

    let clean = harness(&ds, GuardPolicy::default());
    let faulty = harness(&ds, GuardPolicy::with_chaos(chaos));
    for kind in kinds {
        let base = clean.run(&ds, kind);
        let run = faulty.run(&ds, kind);
        if kind == DetectorKind::Sd {
            let failure = run.failure.expect("injected detector must degrade");
            assert!(
                matches!(failure.cause, FailureCause::Panic { .. }),
                "expected a panic cause, got {:?}",
                failure.cause
            );
            assert_eq!(failure.strategy, "sd");
            assert_eq!(run.mask.count(), 0, "degraded detector yields an empty mask");
            assert_eq!(run.mask.rows(), ds.dirty.n_rows());
        } else {
            assert!(run.failure.is_none(), "{} must not degrade", kind.name());
            assert_eq!(mask_bytes(&run.mask), mask_bytes(&base.mask), "{}", kind.name());
        }
    }
}

#[test]
fn chaos_runs_are_deterministic_across_repeats() {
    let ds = small_dataset();
    let policy =
        GuardPolicy::with_chaos(ChaosSpec::parse("detect:iqr=panic,detect:sd=stall").unwrap());
    let kinds = [DetectorKind::Sd, DetectorKind::Iqr, DetectorKind::MvDetector];

    let render = |h: &DetectorHarness| -> Vec<String> {
        kinds
            .iter()
            .map(|&kind| {
                let run = h.run(&ds, kind);
                // Compare everything but elapsed time: mask bytes plus the
                // failure identity (cause / strategy / attempts).
                let failure = run
                    .failure
                    .map(|f| {
                        format!("{}:{}:{}:{}", f.phase.name(), f.strategy, f.cause, f.attempts)
                    })
                    .unwrap_or_default();
                format!("{}|{}", mask_bytes(&run.mask), failure)
            })
            .collect()
    };

    let first = render(&harness(&ds, policy.clone()));
    let second = render(&harness(&ds, policy));
    assert_eq!(first, second, "a chaos-injected run must reproduce byte-for-byte");
}

#[test]
fn budget_exhaustion_mid_kernel_degrades_with_spend_figures() {
    let ds = small_dataset();
    // A three-tick allowance trips inside the first kernel loop of any
    // real detector on this dataset.
    let policy = GuardPolicy { budget_override: Some(3), ..GuardPolicy::default() };
    let run = harness(&ds, policy).run(&ds, DetectorKind::IsolationForest);
    let failure = run.failure.expect("tiny budget must exhaust");
    match failure.cause {
        FailureCause::BudgetExhausted { spent, allowance } => {
            assert_eq!(allowance, 3);
            assert!(spent > allowance, "spent {spent} must exceed the allowance");
        }
        other => panic!("expected budget exhaustion, got {other:?}"),
    }
}

#[test]
fn flaky_injection_retries_to_success() {
    let ds = small_dataset();
    let policy = GuardPolicy::with_chaos(ChaosSpec::parse("detect:mv_detector=flaky").unwrap());
    let run = harness(&ds, policy).run(&ds, DetectorKind::MvDetector);
    assert!(run.failure.is_none(), "one flake within the retry budget must recover");
    assert_eq!(run.mask.rows(), ds.dirty.n_rows());
}

#[test]
fn corrupt_injection_is_caught_by_output_validation() {
    let ds = small_dataset();
    let policy = GuardPolicy::with_chaos(ChaosSpec::parse("detect:iqr=corrupt").unwrap());
    let run = harness(&ds, policy).run(&ds, DetectorKind::Iqr);
    let failure = run.failure.expect("corrupted output must be rejected");
    assert!(
        matches!(failure.cause, FailureCause::InvalidOutput { .. }),
        "expected invalid output, got {:?}",
        failure.cause
    );
}

#[test]
fn stalled_repair_degrades_to_the_identity_version() {
    let ds = small_dataset();
    let chaos = ChaosSpec::parse("repair:impute_mean_mode=stall").unwrap();
    let policy = GuardPolicy::with_chaos(chaos);
    let detections =
        CellMask::from_cells(ds.dirty.n_rows(), ds.dirty.n_cols(), ds.mask.iter().take(10));

    let run = run_repair_guarded(&ds, &detections, RepairKind::ImputeMeanMode, 7, "sd", &policy);
    let failure = run.failure.expect("stalled repairer must degrade");
    assert!(
        matches!(failure.cause, FailureCause::BudgetExhausted { allowance: 0, .. }),
        "stall means a zero allowance, got {:?}",
        failure.cause
    );
    assert_eq!(failure.scope, "sd", "the failure carries the feeding detector");
    let version = run.version.expect("degraded repair falls back to the dirty version");
    assert_eq!(
        rein_data::csv::write_str(&version.table),
        rein_data::csv::write_str(&ds.dirty),
        "the fallback version is the dirty table untouched"
    );
    assert_eq!(run.repaired_cells.map(|m| m.count()), Some(0));

    // The same repair without chaos succeeds and reports no failure.
    let ok = run_repair_guarded(
        &ds,
        &detections,
        RepairKind::ImputeMeanMode,
        7,
        "sd",
        &GuardPolicy::default(),
    );
    assert!(ok.failure.is_none());
}

#[test]
fn controller_completes_the_plan_with_exactly_the_injected_failures() {
    let ds = small_dataset();
    let spec = "detect:sd=panic,detect:raha=stall";
    let chaos = ChaosSpec::parse(spec).unwrap();
    let expected = chaos.len();

    let ctrl = Controller {
        label_budget: 25,
        seed: 29,
        policy: GuardPolicy::with_chaos(chaos),
        ..Controller::default()
    };
    let baseline = Controller { label_budget: 25, seed: 29, ..Controller::default() };

    let runs = ctrl.run_detection(&ds);
    let base_runs = baseline.run_detection(&ds);
    assert_eq!(runs.len(), base_runs.len(), "degradation must not shrink the plan");

    let mut failures: Vec<String> = runs
        .iter()
        .filter_map(|r| r.failure.as_ref())
        .map(|f| format!("{}:{}", f.phase.name(), f.strategy))
        .collect();
    failures.sort();
    assert_eq!(failures.len(), expected, "exactly the injected cells degrade: {failures:?}");
    assert_eq!(failures, vec!["detect:raha".to_string(), "detect:sd".to_string()]);

    // Failure ordering in record form is stable: sorting the rendered
    // identities twice gives the same sequence (no wall-clock key).
    let rendered: Vec<String> = runs
        .iter()
        .filter_map(|r| r.failure.as_ref())
        .map(|f| f.to_record())
        .map(|rec| {
            format!("{}|{}|{}|{}|{}", rec.phase, rec.strategy, rec.dataset, rec.scope, rec.attempts)
        })
        .collect();
    let mut sorted = rendered.clone();
    sorted.sort();
    let mut again = rendered;
    again.sort();
    assert_eq!(sorted, again);

    // Every non-injected detector matches the fault-free run.
    for (run, base) in runs.iter().zip(base_runs.iter()) {
        assert_eq!(run.kind, base.kind);
        if run.failure.is_none() {
            assert_eq!(
                mask_bytes(&run.mask),
                mask_bytes(&base.mask),
                "{} diverged under chaos",
                run.kind.name()
            );
        }
    }
}
