//! Representation-inconsistency injection (the OpenRefine target): the same
//! logical value appears under variant spellings — case changes, padding,
//! punctuation, abbreviation. Clustering-based tools canonicalise these.

use rand::prelude::*;
use rand::rngs::StdRng;
use rein_data::{CellMask, Table, Value};

use crate::common::{pick_cells, Injection};

/// Produces a variant spelling of `s` that normalises back to the same
/// fingerprint (lowercased, alphanumeric only) — the OpenRefine clustering
/// invariant.
fn variant(s: &str, rng: &mut StdRng) -> String {
    match rng.random_range(0..5u8) {
        0 => s.to_uppercase(),
        1 => s.to_lowercase(),
        2 => format!(" {s}"),
        3 => format!("{s} "),
        _ => {
            // Title-case each word.
            s.split(' ')
                .map(|w| {
                    let mut cs = w.chars();
                    match cs.next() {
                        Some(f) => {
                            f.to_uppercase().chain(cs.flat_map(|c| c.to_lowercase())).collect()
                        }
                        None => String::new(),
                    }
                })
                .collect::<Vec<String>>()
                .join(" ")
        }
    }
}

/// Injects inconsistent spellings into `rate` of the string cells of `cols`.
pub fn inject_inconsistencies(table: &Table, cols: &[usize], rate: f64, seed: u64) -> Injection {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut out = table.clone();
    let mut mask = CellMask::new(table.n_rows(), table.n_cols());
    let candidates: Vec<_> = crate::common::cells_of_columns(table, cols)
        .into_iter()
        .filter(|c| matches!(table.cell(c.row, c.col), Value::Str(_)))
        .collect();
    for cell in pick_cells(&candidates, rate, &mut rng) {
        let original = table.cell(cell.row, cell.col).to_string();
        // Retry a few times: some strings are fixed points of some variants
        // (e.g. an already-lowercase word under the lowercase transform).
        let mut changed = None;
        for _ in 0..8 {
            let v = variant(&original, &mut rng);
            if v != original {
                changed = Some(v);
                break;
            }
        }
        if let Some(v) = changed {
            out.set_cell(cell.row, cell.col, Value::Str(v));
            mask.set(cell.row, cell.col, true);
        }
    }
    Injection { table: out, cells: mask }
}

/// Re-export of the shared OpenRefine key fingerprint (see
/// [`rein_constraints::pattern::fingerprint`]).
pub use rein_constraints::pattern::fingerprint;

#[cfg(test)]
mod tests {
    use super::*;
    use rein_data::diff::diff_mask;
    use rein_data::{ColumnMeta, ColumnType, Schema};

    fn table() -> Table {
        let schema = Schema::new(vec![ColumnMeta::new("style", ColumnType::Str)]);
        let styles = ["pale ale", "india pale ale", "stout", "porter"];
        Table::from_rows(schema, (0..60).map(|i| vec![Value::str(styles[i % 4])]).collect())
    }

    #[test]
    fn variants_share_fingerprint_with_original() {
        let t = table();
        let inj = inject_inconsistencies(&t, &[0], 0.3, 5);
        assert!(inj.cells.count() >= 15, "count = {}", inj.cells.count());
        for c in inj.cells.iter() {
            let orig = t.cell(c.row, c.col).to_string();
            let var = inj.table.cell(c.row, c.col).to_string();
            assert_ne!(orig, var);
            assert_eq!(fingerprint(&orig), fingerprint(&var));
        }
        assert_eq!(diff_mask(&t, &inj.table), inj.cells);
    }

    #[test]
    fn fingerprint_normalises() {
        assert_eq!(fingerprint("Pale Ale"), "ale pale");
        assert_eq!(fingerprint("  pale   ALE "), "ale pale");
        assert_eq!(fingerprint("ale-pale"), "ale pale");
        assert_ne!(fingerprint("stout"), fingerprint("porter"));
    }

    #[test]
    fn numeric_cells_untouched() {
        let schema = Schema::new(vec![ColumnMeta::new("x", ColumnType::Int)]);
        let t = Table::from_rows(schema, (0..10).map(|i| vec![Value::Int(i)]).collect());
        let inj = inject_inconsistencies(&t, &[0], 0.5, 1);
        assert!(inj.cells.is_empty());
    }

    #[test]
    fn deterministic_by_seed() {
        let t = table();
        assert_eq!(
            inject_inconsistencies(&t, &[0], 0.2, 9).table,
            inject_inconsistencies(&t, &[0], 0.2, 9).table
        );
    }
}
