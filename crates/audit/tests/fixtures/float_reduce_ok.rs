//! Positive fixture: the parallel results are collected into an ordered
//! container and folded through a registered deterministic merge.

pub fn mean(xs: &[f64]) -> f64 {
    let shards: Vec<f64> = xs.par_iter().map(|x| x * 0.5).collect();
    merge_shards(&shards) / xs.len() as f64
}

fn merge_shards(xs: &[f64]) -> f64 {
    xs.iter().sum()
}
