//! Positive fixture: store artifacts flow through rein-store's atomic
//! commit path, so a crash mid-write can never tear a journal segment
//! or leave a half-written quarantine report.

pub fn persist(store_root: &Path, journal: &[u8]) -> std::io::Result<()> {
    let target = store_root.join("journal.wal");
    rein_store::atomic_write(&target, journal)
}

pub fn report(store_root: &Path, quarantine: &str) -> std::io::Result<()> {
    let target = store_root.join("quarantine").join("report.json");
    rein_store::atomic_write(&target, quarantine.as_bytes())
}
